// Shape tests: every reproduction target from the paper's evaluation,
// asserted as a direction/magnitude check at Quick scale. These are the
// regression tests for the reproduction itself — if a model change
// breaks a paper claim, one of these fails.
package mmutricks_test

import (
	"context"
	"testing"

	"mmutricks/internal/ablate"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/kbuild"
	"mmutricks/internal/kernel"
	"mmutricks/internal/lmbench"
	"mmutricks/internal/machine"
	"mmutricks/internal/oscompare"
	"mmutricks/internal/report"
)

func newSuite(model clock.CPUModel, cfg kernel.Config) *lmbench.Suite {
	return lmbench.New(kernel.New(machine.New(model), cfg))
}

// TestAllExperimentsRun smoke-runs every registered experiment.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range report.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb := e.Run(context.Background(), report.Quick)
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if tb.Render() == "" {
				t.Fatal("empty render")
			}
		})
	}
}

// Table 1 (§6.2): bypassing the hash table lets the 603/180 keep pace
// with the 604/185 on the LmBench points.
func TestShapeTable1_603KeepsPace(t *testing.T) {
	noHtab := newSuite(clock.PPC603At180(), kernel.Optimized())
	m604 := newSuite(clock.PPC604At185(), kernel.Optimized())

	lat603 := noHtab.PipeLatency(60).Micros
	lat604 := m604.PipeLatency(60).Micros
	if lat603 > 2*lat604 {
		t.Errorf("603 no-htab pipe latency %.1f us not keeping pace with 604 %.1f us", lat603, lat604)
	}
	bw603 := noHtab.PipeBandwidth(1 << 20).MBps
	bw604 := m604.PipeBandwidth(1 << 20).MBps
	if bw603 < bw604/2 {
		t.Errorf("603 no-htab pipe bw %.1f MB/s not keeping pace with 604 %.1f MB/s", bw603, bw604)
	}
}

// Table 1/§6.2: on the 603, direct page-tree reloads beat hash-table
// searches for reload-heavy work.
func TestShapeSec62_DirectReloadsWin(t *testing.T) {
	run := func(useHtab bool) clock.Cycles {
		cfg := kernel.Optimized()
		cfg.UseHTAB = useHtab
		k := kernel.New(machine.New(clock.PPC603At180()), cfg)
		img := k.LoadImage("x", 4)
		k.Spawn(img)
		addr := k.SysMmap(512)
		k.UserTouchPages(addr, 512)
		start := k.M.Led.Now()
		for i := 0; i < 4; i++ {
			k.UserTouchPages(addr, 512)
		}
		return k.M.Led.Now() - start
	}
	htab, direct := run(true), run(false)
	if direct >= htab {
		t.Errorf("direct reloads (%d cycles) should beat hash-table reloads (%d)", direct, htab)
	}
}

// Table 2 / §7: the ~80x mmap-latency collapse from lazy flushing with
// the 20-page cutoff.
func TestShapeTable2_MmapCollapse(t *testing.T) {
	eager := kernel.Optimized()
	eager.UseHTAB = true
	eager.LazyFlush = false
	eager.FlushRangeCutoff = 0
	eager.IdleReclaim = false
	re := newSuite(clock.PPC603At133(), eager).MmapLatency(1024, 5)
	rt := newSuite(clock.PPC603At133(), kernel.Optimized()).MmapLatency(1024, 5)
	if ratio := re.Micros / rt.Micros; ratio < 20 {
		t.Errorf("mmap collapse only %.1fx (eager %.0f us, tuned %.1f us); paper reports ~80x", ratio, re.Micros, rt.Micros)
	}
	if re.Micros < 1000 {
		t.Errorf("eager mmap latency %.0f us — paper's is milliseconds", re.Micros)
	}
}

// Table 3: the OS ordering on every row.
func TestShapeTable3_Ordering(t *testing.T) {
	rows := oscompare.RunTable3(40)
	get := func(name string) oscompare.Row {
		for _, r := range rows {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("missing row %q", name)
		return oscompare.Row{}
	}
	l := get("Linux/PPC")
	u := get("Unoptimized Linux/PPC")
	mk := get("MkLinux")
	rh := get("Rhapsody 5.0")
	aix := get("AIX")

	// Optimized Linux wins everything.
	for _, o := range []oscompare.Row{u, mk, rh, aix} {
		if l.NullUS >= o.NullUS || l.CtxUS >= o.CtxUS || l.PipeUS >= o.PipeUS || l.PipeMBps <= o.PipeMBps {
			t.Errorf("Linux/PPC should beat %s on every row: %+v vs %+v", o.Name, l, o)
		}
	}
	// Null syscall: optimized is at least 3x the unoptimized figure
	// (paper: 9x).
	if u.NullUS < 3*l.NullUS {
		t.Errorf("unoptimized null %.2f us should be >=3x optimized %.2f us", u.NullUS, l.NullUS)
	}
	// Mach systems trail all monolithic kernels on pipes and ctxsw —
	// "the distance micro-kernel designs will have to travel".
	for _, m := range []oscompare.Row{mk, rh} {
		for _, mono := range []oscompare.Row{u, aix} {
			if m.PipeUS <= mono.PipeUS || m.CtxUS <= mono.CtxUS {
				t.Errorf("%s should trail %s on pipes/ctxsw", m.Name, mono.Name)
			}
		}
	}
	// AIX lands between optimized Linux and the Mach systems.
	if !(aix.NullUS > l.NullUS && aix.NullUS < mk.NullUS) {
		t.Errorf("AIX null syscall %.1f us should sit between Linux %.1f and MkLinux %.1f", aix.NullUS, l.NullUS, mk.NullUS)
	}
}

// §5.1: BAT-mapping the kernel reduces TLB and hash misses on the
// kernel compile and empties the kernel's TLB slots.
func TestShapeSec51_BATFootprint(t *testing.T) {
	cfg := kbuild.Default()
	cfg.Units = 3
	cfg.WorkPages = 320
	cfg.Passes = 2
	cfg.StrayRefs = 8

	base := kernel.Unoptimized()
	bat := base
	bat.KernelBAT = true

	kb := kernel.New(machine.New(clock.PPC604At185()), base)
	rb := kbuild.Run(kb, cfg)
	kbat := kernel.New(machine.New(clock.PPC604At185()), bat)
	rbat := kbuild.Run(kbat, cfg)

	if rbat.Counters.TLBMisses >= rb.Counters.TLBMisses {
		t.Errorf("BAT mapping should reduce TLB misses: %d vs %d", rbat.Counters.TLBMisses, rb.Counters.TLBMisses)
	}
	if rbat.Counters.HTABMisses >= rb.Counters.HTABMisses {
		t.Errorf("BAT mapping should reduce hash misses: %d vs %d", rbat.Counters.HTABMisses, rb.Counters.HTABMisses)
	}
	if got := kbat.M.MMU.TLB.KernelEntries(); got > 4 {
		t.Errorf("kernel TLB slots with BAT = %d, paper's high-water mark is 4", got)
	}
	if kb.M.MMU.TLB.KernelEntries() == 0 {
		t.Error("PTE-mapped kernel should occupy TLB slots")
	}
}

// §6.1: the fast handlers beat the C handlers on context switching and
// pipe latency.
func TestShapeSec61_FastHandlers(t *testing.T) {
	base := kernel.Unoptimized()
	fast := base
	fast.FastReload = true
	sb := newSuite(clock.PPC603At180(), base)
	sf := newSuite(clock.PPC603At180(), fast)
	cb, cf := sb.CtxSwitch(2, 4, 30).Micros, sf.CtxSwitch(2, 4, 30).Micros
	if cf >= cb {
		t.Errorf("fast handlers ctxsw %.2f us should beat C handlers %.2f us", cf, cb)
	}
	lb, lf := sb.PipeLatency(40).Micros, sf.PipeLatency(40).Micros
	if lf >= lb {
		t.Errorf("fast handlers pipe lat %.2f us should beat C handlers %.2f us", lf, lb)
	}
}

// §7: idle reclaim cuts the evict ratio in steady state.
func TestShapeSec7_IdleReclaim(t *testing.T) {
	churn := func(reclaim bool) (evict float64) {
		cfg := kernel.Optimized()
		cfg.UseHTAB = true
		cfg.IdleReclaim = reclaim
		k := kernel.New(machine.New(clock.PPC604At185()), cfg)
		img := k.LoadImage("churn", 8)
		tasks := make([]*kernel.Task, 8)
		for i := range tasks {
			tasks[i] = k.Spawn(img)
		}
		warm := func(rounds int) {
			for r := 0; r < rounds; r++ {
				for _, tk := range tasks {
					k.Switch(tk)
					if r%2 == 1 {
						k.Exec(img)
					}
					k.UserTouchPages(kernel.UserDataBase, 320)
				}
				k.RunIdleFor(60_000)
			}
		}
		warm(20)
		before := k.M.Mon.Snapshot()
		warm(10)
		d := k.M.Mon.Delta(before)
		if err := k.CheckConsistency(); err != nil {
			t.Fatalf("post-churn consistency sweep: %v", err)
		}
		return d.EvictRatio()
	}
	evOff := churn(false)
	evOn := churn(true)
	if evOff < 0.9 {
		t.Errorf("no-reclaim evict ratio %.2f, paper reports >90%%", evOff)
	}
	if evOn >= evOff {
		t.Errorf("idle reclaim should cut the evict ratio: %.2f vs %.2f", evOn, evOff)
	}
}

// §9: the page-clearing variants order as the paper found.
func TestShapeSec9_IdleClearOrdering(t *testing.T) {
	cfg := kbuild.Default()
	cfg.Units = 6
	cfg.HotPages = 6
	cfg.WaitEvery = 10
	run := func(mode kernel.IdleClearMode) float64 {
		kcfg := kernel.Unoptimized()
		kcfg.KernelBAT = true
		kcfg.FastReload = true
		kcfg.IdleClear = mode
		k := kernel.New(machine.New(clock.PPC604At185()), kcfg)
		return kbuild.Run(k, cfg).ComputeSeconds
	}
	off := run(kernel.IdleClearOff)
	cached := run(kernel.IdleClearCached)
	control := run(kernel.IdleClearUncached)
	list := run(kernel.IdleClearUncachedList)

	if cached <= off {
		t.Errorf("cached clearing (%.4f s) should be slower than no clearing (%.4f s)", cached, off)
	}
	if diff := control/off - 1; diff > 0.02 || diff < -0.02 {
		t.Errorf("uncached-no-list control should be neutral: %.4f vs %.4f", control, off)
	}
	if list >= off {
		t.Errorf("uncached+list (%.4f s) should beat no clearing (%.4f s)", list, off)
	}
	if list >= cached {
		t.Error("uncached+list should beat cached clearing")
	}
}

// §8 (future work): uncached table walks eliminate walk-caused cache
// pollution.
func TestShapeSec8_UncachedWalks(t *testing.T) {
	run := func(cached bool) uint64 {
		cfg := kernel.Unoptimized()
		cfg.KernelBAT = true
		cfg.CachePageTables = cached
		k := kernel.New(machine.New(clock.PPC604At185()), cfg)
		img := k.LoadImage("x", 4)
		k.Spawn(img)
		addr := k.SysMmap(512)
		for p := 0; p < 6; p++ {
			k.UserTouchPages(addr, 512)
		}
		st := k.M.DCache.Stats()
		return st.PollutionBy(cache.ClassPageTable) + st.PollutionBy(cache.ClassHashTable)
	}
	if pol := run(false); pol != 0 {
		t.Errorf("uncached walks still polluted the cache: %d lines", pol)
	}
	if pol := run(true); pol == 0 {
		t.Error("cached walks should show pollution under TLB thrash")
	}
}

// §4: the whole simulation is deterministic — identical runs, identical
// cycle counts.
func TestShapeDeterminism(t *testing.T) {
	run := func() clock.Cycles {
		k := kernel.New(machine.New(clock.PPC604At185()), kernel.Optimized())
		s := lmbench.New(k)
		s.NullSyscall(50)
		s.PipeLatency(20)
		s.CtxSwitch(4, 2, 10)
		return k.M.Led.Now()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic simulation: %d vs %d cycles", a, b)
	}
}

// ---------------------------------------------------------------------
// Extension-experiment shapes.
// ---------------------------------------------------------------------

// §4/§5.1: the interaction harness must show the BAT evaporation — a
// positive solo gain that shrinks inside the full stack.
func TestShapeInteractions_BATEvaporation(t *testing.T) {
	bcfg := kbuild.Default()
	bcfg.Units = 3
	bcfg.WorkPages = 320
	bcfg.Passes = 1
	bcfg.StrayRefs = 6
	metric := func(cfg kernel.Config) clock.Cycles {
		k := kernel.New(machine.New(clock.PPC603At180()), cfg)
		r := kbuild.Run(k, bcfg)
		return r.Cycles - r.IdleCycles
	}
	res := ablate.Run(metric, ablate.Knobs())
	if res.CombinedGain <= 0.2 {
		t.Fatalf("combined gain %.2f too small", res.CombinedGain)
	}
	bat := res.Rows[0]
	if bat.SoloGain <= 0 {
		t.Fatalf("BAT solo gain %.3f should be positive", bat.SoloGain)
	}
	if bat.MarginalGain > bat.SoloGain {
		t.Fatalf("BAT marginal (%.3f) should not exceed solo (%.3f) — §5.1's evaporation", bat.MarginalGain, bat.SoloGain)
	}
}

// Memory hierarchy: the latency cliffs sit at the architected
// capacities.
func TestShapeMemHierarchyCliffs(t *testing.T) {
	s := lmbench.New(kernel.New(machine.New(clock.PPC603At180()), kernel.Optimized()))
	l1 := s.MemReadLatency(8<<10, 3000)
	mem := s.MemReadLatency(64<<10, 3000)
	tlb := s.MemReadLatency(2<<20, 3000)
	if l1 > 2 {
		t.Errorf("L1-resident latency %.1f, want ~1 cycle", l1)
	}
	if mem < 20 {
		t.Errorf("past-L1 latency %.1f, want ~memory latency", mem)
	}
	if tlb <= mem+10 {
		t.Errorf("past-TLB latency %.1f should add reload cost over %.1f", tlb, mem)
	}
}

// §9's bzero note: dcbz clears faster (and pollutes just as much —
// covered by kernel tests).
func TestShapeBzeroDCBZFaster(t *testing.T) {
	s := lmbench.New(kernel.New(machine.New(clock.PPC604At185()), kernel.Optimized()))
	stores := s.BzeroBandwidth(64<<10, 4, lmbench.BzeroStores).MBps
	s2 := lmbench.New(kernel.New(machine.New(clock.PPC604At185()), kernel.Optimized()))
	dcbz := s2.BzeroBandwidth(64<<10, 4, lmbench.BzeroDCBZ).MBps
	if dcbz < 1.5*stores {
		t.Errorf("dcbz bzero (%.0f MB/s) should be well above stores (%.0f MB/s)", dcbz, stores)
	}
}

// Swap composes with §6.2: the no-htab kernel pays zero hash searches
// for page-out flushes and is never slower under thrash.
func TestShapeSwapFlush(t *testing.T) {
	run := func(useHtab bool) (clock.Cycles, uint64) {
		cfg := kernel.Optimized()
		cfg.UseHTAB = useHtab
		k := kernel.New(machine.New(clock.PPC603At180()), cfg)
		k.Spawn(k.LoadImage("thrash", 4))
		k.SysBrk(8300)
		k.UserTouchPages(kernel.UserDataBase, 8200)
		before := k.M.Mon.Snapshot()
		start := k.M.Led.Now()
		k.UserTouchPages(kernel.UserDataBase, 8200)
		if err := k.CheckConsistency(); err != nil {
			t.Fatalf("post-thrash consistency sweep: %v", err)
		}
		return k.M.Led.Now() - start, k.M.Mon.Delta(before).HTABFlushSearches
	}
	htabC, htabS := run(true)
	noC, noS := run(false)
	if noS != 0 {
		t.Errorf("no-htab kernel did %d flush searches", noS)
	}
	if htabS == 0 {
		t.Error("hash-table kernel should search on page-out flushes")
	}
	if noC > htabC {
		t.Errorf("no-htab thrash (%d cycles) should not exceed htab (%d)", noC, htabC)
	}
}
