# The paper-reproduction simulator is pure Go; these targets wrap the
# toolchain invocations the project treats as canonical.

.PHONY: build test lint prove check bench report

build:
	go build ./...

test:
	go test ./...

# lint runs the mmulint hygiene suite (tools/analyzers): the cyclecost,
# invariantcheck, and registry disciplines, enforced statically. check
# runs this too; lint alone is the fast iteration loop while annotating.
lint:
	go run ./cmd/mmulint ./...

# prove runs the mmuprove whole-program proof passes: transitive
# noalloc over the call graph, determinism of byte-identical-output
# packages, and hwmon↔mmtrace parity. check runs this too.
prove:
	go run ./cmd/mmuprove ./...

# check is the tier-1 gate: build, vet, gofmt, mmulint, mmuprove, and
# the race-enabled test suite. Run it before sending changes.
check:
	sh scripts/check.sh

# bench regenerates BENCH_harness.json (sequential vs parallel harness
# timing; see README.md).
bench: build
	go run ./cmd/mmureport -benchjson BENCH_harness.json

report: build
	go run ./cmd/mmureport -all
