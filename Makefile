# The paper-reproduction simulator is pure Go; these targets wrap the
# toolchain invocations the project treats as canonical.

.PHONY: build test lint check bench report

build:
	go build ./...

test:
	go test ./...

# lint runs the mmulint analyzer suite (tools/analyzers): the noalloc,
# cyclecost, invariantcheck, and registry disciplines, enforced
# statically. check runs this too; lint alone is the fast iteration
# loop while annotating.
lint:
	go run ./cmd/mmulint ./...

# check is the tier-1 gate: build, vet, gofmt, mmulint, and the
# race-enabled test suite. Run it before sending changes.
check:
	sh scripts/check.sh

# bench regenerates BENCH_harness.json (sequential vs parallel harness
# timing; see README.md).
bench: build
	go run ./cmd/mmureport -benchjson BENCH_harness.json

report: build
	go run ./cmd/mmureport -all
