# The paper-reproduction simulator is pure Go; these targets wrap the
# toolchain invocations the project treats as canonical.

.PHONY: build test lint prove check model bench benchsmoke pgo report mmudsmoke

build:
	go build ./...

test:
	go test ./...

# lint runs the mmulint hygiene suite (tools/analyzers): the cyclecost,
# invariantcheck, and registry disciplines, enforced statically. check
# runs this too; lint alone is the fast iteration loop while annotating.
lint:
	go run ./cmd/mmulint ./...

# prove runs the mmuprove whole-program proof passes: transitive
# noalloc over the call graph, determinism of byte-identical-output
# packages, hwmon↔mmtrace parity, model↔kernel transition parity,
# phase-span balance, the guardedby mutex discipline (every annotated
# field access provably under its lock), and the lockorder pinned
# acquisition DAG. check runs this too.
prove:
	go run ./cmd/mmuprove ./...

# model runs the mmumodel gates by hand: exhaustive exploration of the
# context-switch/MM state machine, the seeded kernel refinement, and
# the mutation gate (the planted mmumutant kernel bug must yield a
# counterexample — the `!` inverts mmumodel's exit status). check runs
# the first two; CI runs all three.
model:
	go run ./cmd/mmumodel -cpus 2 -tasks 3 -mms 2 -gens 2
	go run ./cmd/mmumodel -refine -tasks 3 -mms 2 -gens 3 -walks 25 -steps 60
	! go run -tags mmumutant ./cmd/mmumodel -refine -walks 25 -steps 60

# check is the tier-1 gate: build, vet, gofmt, mmulint, mmuprove, and
# the race-enabled test suite. Run it before sending changes.
check:
	sh scripts/check.sh

# bench regenerates BENCH_harness.json (sequential vs parallel harness
# timing, per-experiment sim cycles and counter checksums; see
# README.md). Regenerate it whenever simulated counters intentionally
# change — benchsmoke holds future runs to its checksums.
bench: build
	go run ./cmd/mmureport -benchjson BENCH_harness.json

# benchsmoke verifies the committed bench baseline still reproduces:
# per-experiment counter checksums, -j determinism, and a fresh,
# buildable PGO profile. CI runs this; wall times are NOT compared.
benchsmoke:
	sh scripts/bench_smoke.sh

# mmudsmoke drives the mmud daemon end to end over HTTP: cache-hit
# byte-identity, a chaos audit, SIGTERM drain, and journal replay.
# CI runs this and uploads the journal as an artifact.
mmudsmoke:
	sh scripts/mmud_smoke.sh

# pgo regenerates cmd/mmureport/default.pgo — the profile `go build`
# applies automatically when compiling the harness — from two merged
# quick-scale -all runs. Regenerate after changing hot simulation code.
pgo: build
	go build -o /tmp/mmureport_pgogen ./cmd/mmureport
	/tmp/mmureport_pgogen -all -j 1 -cpuprofile /tmp/mmureport_pgo1.pprof > /dev/null
	/tmp/mmureport_pgogen -all -j 1 -cpuprofile /tmp/mmureport_pgo2.pprof > /dev/null
	go tool pprof -proto /tmp/mmureport_pgo1.pprof /tmp/mmureport_pgo2.pprof > cmd/mmureport/default.pgo
	rm -f /tmp/mmureport_pgogen /tmp/mmureport_pgo1.pprof /tmp/mmureport_pgo2.pprof

report: build
	go run ./cmd/mmureport -all
