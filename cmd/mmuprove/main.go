// mmuprove runs the repo's whole-program proof passes: transitive
// //mmutricks:noalloc over the call graph (noalloctrans), determinism
// of the packages that promise byte-identical output (determinism),
// and counter↔trace parity between hwmon increments and mmtrace emits
// (parity). It shares its analyzer registry with cmd/mmulint
// (tools/analyzers/suite): -list shows every registered pass and -run
// selects any of them.
//
// Usage:
//
//	go run ./cmd/mmuprove [-tests=false] [-run name,name] [-list] ./...
//
// Diagnostics print vet-style (file:line:col: analyzer: message) and a
// non-empty report exits 1; load/type errors exit 2.
package main

import "mmutricks/tools/analyzers/suite"

func main() {
	suite.Main("mmuprove", suite.Prove)
}
