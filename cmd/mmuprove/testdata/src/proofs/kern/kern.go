// Package kern is half of the golden fixture: one noalloctrans chain
// and one parity violation, so the golden file pins those passes'
// messages and ordering.
package kern

import (
	"mmutricks/internal/hwmon"
	"mmutricks/internal/mmtrace"
)

type K struct {
	Mon hwmon.Counters
	Trc *mmtrace.Tracer
}

// Miss drops the counter's paired emit.
func (k *K) Miss() {
	k.Mon.TLBMisses++
}

// Hot is proven noalloc but reaches an allocating helper.
//
//mmutricks:noalloc
func (k *K) Hot() int {
	return helper()
}

func helper() int {
	p := new(int)
	return *p
}
