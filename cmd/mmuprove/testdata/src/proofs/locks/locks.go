// Package locks is the concurrency-proof golden fixture: one
// unguarded access for guardedby and one unpinned acquisition order
// for lockorder.
package locks

import "sync"

type box struct {
	mu sync.Mutex
	n  int //mmutricks:guarded-by(mu)
}

// bare reads box.n without taking the lock.
func bare(b *box) int { return b.n }

var (
	first  sync.Mutex
	second sync.Mutex
)

// unpinned nests second under first; no AllowedEdges row covers it.
func unpinned() {
	first.Lock()
	second.Lock()
	second.Unlock()
	first.Unlock()
}
