// Package mmtrace is a fixture double resolved at the real import
// path; KindTLBMiss keeps the real value zero.
package mmtrace

type Kind uint8

const KindTLBMiss Kind = 0

type Tracer struct{ n uint64 }

//mmutricks:noalloc
func (t *Tracer) Emit(kind Kind, aux uint32) {
	if t == nil {
		return
	}
	t.n++
	_ = kind
	_ = aux
}
