// Package hwmon is a fixture double resolved at the real import path
// so the parity pass's table applies to it.
package hwmon

type Counters struct {
	TLBMisses uint64
}
