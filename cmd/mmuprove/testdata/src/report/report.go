// Package report is the other half of the golden fixture: it shares
// its base name with the real byte-identical report package, so the
// determinism pass treats it as a zone.
package report

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
