package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmutricks/tools/analyzers/driver"
	"mmutricks/tools/analyzers/load"
	"mmutricks/tools/analyzers/suite"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from the current diagnostics")

// TestGolden pins mmuprove's rendered diagnostics — messages, file:line
// ordering, and the vet-style format — against a golden file, over a
// fixture tree holding one violation per proof pass.
func TestGolden(t *testing.T) {
	prog, err := load.Load(load.Config{FakeRoot: "testdata/src", Tests: true},
		"proofs/kern", "proofs/locks", "report", "mmutricks/internal/hwmon", "mmutricks/internal/mmtrace")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := driver.Run(prog, suite.Prove)
	if err != nil {
		t.Fatalf("running proofs: %v", err)
	}

	var b strings.Builder
	for _, d := range diags {
		d.Pos.Filename = strings.TrimPrefix(filepath.ToSlash(d.Pos.Filename), "testdata/src/")
		b.WriteString(suite.Format(d, ""))
		b.WriteByte('\n')
	}
	got := b.String()

	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from %s (run with -update to accept):\ngot:\n%swant:\n%s", golden, got, want)
	}
}
