// Command kcompile runs the kernel-compile macro benchmark — the
// paper's "informal Linux benchmark" (§4) — on one simulated machine
// and kernel configuration.
//
// Usage:
//
//	kcompile -cpu 604/185 -config optimized -units 24
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"

	"mmutricks/internal/clock"
	"mmutricks/internal/exitcode"
	"mmutricks/internal/kbuild"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
	"mmutricks/internal/report"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	// Contain a crashed or budget-tripped run and classify it through
	// the repo-wide exit-code contract instead of dying with status 2.
	// The recover defer is declared first so the profile-flushing defers
	// below still run during unwinding before the code is chosen.
	defer func() {
		if p := recover(); p != nil {
			reason := report.FailureReason(p)
			fmt.Fprintf(os.Stderr, "kcompile: FAILED(%s): %v\n%s", reason, p, debug.Stack())
			code = exitcode.ForFailReasons([]string{reason})
		}
	}()
	var (
		cpu        = flag.String("cpu", "604/185", "CPU model: 603/133, 603/180, 604/133, 604/185, 604/200")
		cfgName    = flag.String("config", "optimized", "kernel config: unoptimized, optimized, optimized+htab")
		units      = flag.Int("units", 24, "compilation units")
		work       = flag.Int("work-pages", 160, "compiler working set (pages)")
		strays     = flag.Int("strays", 0, "stray TLB-pressure references per compile step")
		counters   = flag.Bool("counters", false, "dump performance-monitor counters after the run")
		profile    = flag.Bool("profile", false, "print the kernel-path cycle profile after the run")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()

	model, ok := clock.ModelByName(*cpu)
	if !ok {
		fmt.Fprintf(os.Stderr, "kcompile: unknown cpu %q\n", *cpu)
		return exitcode.Usage
	}
	cfg, ok := kernel.Named(*cfgName)
	if !ok {
		fmt.Fprintf(os.Stderr, "kcompile: unknown config %q\n", *cfgName)
		return exitcode.Usage
	}
	bcfg := kbuild.Default()
	bcfg.Units = *units
	bcfg.WorkPages = *work
	bcfg.StrayRefs = *strays

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kcompile: %v\n", err)
			return exitcode.Internal
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "kcompile: %v\n", err)
			return exitcode.Internal
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kcompile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "kcompile: %v\n", err)
		}
	}()

	k := kernel.New(machine.New(model), cfg)
	if *profile {
		k.EnableProfiling()
	}
	r := kbuild.Run(k, bcfg)

	fmt.Printf("machine: %s   kernel: %s   units: %d\n\n", model.Name, *cfgName, *units)
	fmt.Printf("wall clock    %10.4f sim s\n", r.Seconds)
	fmt.Printf("compute       %10.4f sim s\n", r.ComputeSeconds)
	fmt.Printf("io wait       %10.4f sim s\n", r.Seconds-r.ComputeSeconds)
	fmt.Printf("tlb misses    %10d\n", r.Counters.TLBMisses)
	fmt.Printf("hash misses   %10d\n", r.Counters.HTABMisses)
	fmt.Printf("page faults   %10d major, %d minor\n", r.Counters.MajorFaults, r.Counters.MinorFaults)
	fmt.Printf("idle cleared  %10d pages (%d used by get_free_page)\n", r.Idle.Cleared, r.Counters.ClearedPageHits)
	fmt.Printf("zombies swept %10d\n", r.Idle.Reclaimed)
	if *counters {
		fmt.Printf("\n%s", k.M.Mon.String())
	}
	if *profile {
		fmt.Printf("\nkernel-path profile:\n%s", k.Profile().String())
	}
	return exitcode.OK
}
