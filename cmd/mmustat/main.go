// Command mmustat records and analyzes cycle-exact phase telemetry.
//
// Usage:
//
//	mmustat record -workload kbuild -cpu 604/185 -config optimized -o stat.json
//	mmustat timeline stat.json
//	mmustat phases stat.json
//	mmustat phases -pprof phases.pb.gz stat.json   (open with go tool pprof)
//	mmustat diff before.json after.json
//
// record runs a workload on a freshly booted simulated machine with
// the phase ledger and interval sampler enabled (tracing stays on too,
// so the file is also a valid mmutrace recording) and saves the
// capture. timeline prints the per-interval view — dominant phase,
// share, fault pressure per sample. phases prints the end-of-run phase
// profile with derived rates, attribution, and cost percentiles; with
// -pprof it also writes the aggregate profile in pprof format. diff
// compares two recordings phase by phase. Every view is a pure
// function of the recording bytes: the same file renders identically
// at any -j.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"mmutricks/internal/exitcode"
	"mmutricks/internal/report"
	"mmutricks/internal/telemetry"
	"mmutricks/internal/tracerec"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: mmustat <record|timeline|phases|diff> [flags]\n")
	os.Exit(exitcode.Usage)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "timeline":
		cmdTimeline(os.Args[2:])
	case "phases":
		cmdPhases(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	default:
		usage()
	}
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		workload = fs.String("workload", "lmbench", "workload: lmbench, kbuild, stress")
		cpu      = fs.String("cpu", "604/185", "CPU model: 603/133, 603/180, 604/133, 604/185, 604/200")
		cfg      = fs.String("config", "optimized", "kernel config: unoptimized, optimized, optimized+htab")
		iters    = fs.Int("iters", 100, "workload scale")
		interval = fs.Int("interval", 0, "sampler period in simulated cycles (0 = default)")
		samples  = fs.Int("samples", 0, "sample-ring capacity (0 = default)")
		j        = fs.Int("j", runtime.GOMAXPROCS(0), "worker-pool size across sections")
		out      = fs.String("o", "stat.json", "output file")
	)
	fs.Parse(args)
	report.SetParallelism(*j)

	rec, err := tracerec.Record(context.Background(), tracerec.RecordOptions{
		Workload:       *workload,
		CPU:            *cpu,
		Config:         *cfg,
		Iters:          *iters,
		Telemetry:      true,
		SampleInterval: *interval,
		SampleCapacity: *samples,
	})
	if err != nil {
		fatal(err)
	}
	if err := rec.Save(*out); err != nil {
		fatal(err)
	}
	var taken int
	var dropped uint64
	for _, s := range rec.Sections {
		if s.Telemetry != nil {
			taken += len(s.Telemetry.Samples)
			dropped += s.Telemetry.Dropped
		}
	}
	fmt.Printf("recorded %s: %d sections, %d samples (%d dropped by the ring) -> %s\n",
		*workload, len(rec.Sections), taken, dropped, *out)
}

func cmdTimeline(args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	fs.Parse(args)
	tracerec.StatTimeline(os.Stdout, load(fs, "timeline"))
}

func cmdPhases(args []string) {
	fs := flag.NewFlagSet("phases", flag.ExitOnError)
	pprofOut := fs.String("pprof", "", "also write the aggregate phase profile in pprof format to this file")
	fs.Parse(args)
	rec := load(fs, "phases")
	tracerec.StatPhases(os.Stdout, rec)
	if *pprofOut == "" {
		return
	}
	if !rec.HasTelemetry() {
		fatal(fmt.Errorf("recording has no telemetry — re-record with mmustat record"))
	}
	// Aggregate phase cycles across sections; the name vector of the
	// first section names the indices.
	names := rec.Sections[0].Telemetry.PhaseNames
	cycles := make([]uint64, len(names))
	for _, s := range rec.Sections {
		for i, c := range s.Telemetry.PhaseCycles {
			if i < len(cycles) {
				cycles[i] += c
			}
		}
	}
	f, err := os.Create(*pprofOut)
	if err != nil {
		fatal(err)
	}
	if err := telemetry.WriteProfileData(f, names, cycles, rec.Meta.MHz); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote pprof profile -> %s\n", *pprofOut)
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usageErr(fmt.Errorf("diff needs exactly two recordings"))
	}
	a, err := tracerec.Load(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := tracerec.Load(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	tracerec.StatDiff(os.Stdout, a, b)
}

// load reads the single recording argument of a subcommand.
func load(fs *flag.FlagSet, cmd string) *tracerec.Recording {
	if fs.NArg() != 1 {
		usageErr(fmt.Errorf("%s needs exactly one recording file", cmd))
	}
	rec, err := tracerec.Load(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	return rec
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mmustat: %v\n", err)
	os.Exit(exitcode.Internal)
}

func usageErr(err error) {
	fmt.Fprintf(os.Stderr, "mmustat: %v\n", err)
	os.Exit(exitcode.Usage)
}
