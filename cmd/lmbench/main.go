// Command lmbench runs the LmBench-style microbenchmark suite against
// one simulated machine and kernel configuration.
//
// Usage:
//
//	lmbench -cpu 604/185 -config optimized
//	lmbench -cpu 603/133 -config unoptimized -counters
//	lmbench -j 4
//
// Each benchmark runs in its own freshly booted kernel, so the
// benchmarks are independent and the -j worker pool can run them
// concurrently; results are gathered by index, making the output
// byte-identical at every -j. With -counters the per-kernel
// performance-monitor counters are summed into one machine-wide dump.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"

	"mmutricks/internal/clock"
	"mmutricks/internal/exitcode"
	"mmutricks/internal/hwmon"
	"mmutricks/internal/kernel"
	"mmutricks/internal/lmbench"
	"mmutricks/internal/machine"
	"mmutricks/internal/report"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	// Contain a crashed or budget-tripped run and classify it through
	// the repo-wide exit-code contract instead of dying with status 2.
	defer func() {
		if p := recover(); p != nil {
			reason := report.FailureReason(p)
			fmt.Fprintf(os.Stderr, "lmbench: FAILED(%s): %v\n%s", reason, p, debug.Stack())
			code = exitcode.ForFailReasons([]string{reason})
		}
	}()
	var (
		cpu      = flag.String("cpu", "604/185", "CPU model: 603/133, 603/180, 604/133, 604/185, 604/200")
		cfgName  = flag.String("config", "optimized", "kernel config: unoptimized, optimized, optimized+htab")
		iters    = flag.Int("iters", 100, "iteration count for latency benchmarks")
		mmapPg   = flag.Int("mmap-pages", 1024, "pages mapped by the mmap-latency benchmark")
		counters = flag.Bool("counters", false, "dump summed performance-monitor counters after the run")
		j        = flag.Int("j", runtime.GOMAXPROCS(0), "worker-pool size across benchmarks")
	)
	flag.Parse()

	model, ok := clock.ModelByName(*cpu)
	if !ok {
		fmt.Fprintf(os.Stderr, "lmbench: unknown cpu %q\n", *cpu)
		return exitcode.Usage
	}
	cfg, ok := kernel.Named(*cfgName)
	if !ok {
		fmt.Fprintf(os.Stderr, "lmbench: unknown config %q\n", *cfgName)
		return exitcode.Usage
	}
	report.SetParallelism(*j)

	benchmarks := []func(*lmbench.Suite) lmbench.Result{
		func(s *lmbench.Suite) lmbench.Result { return s.NullSyscall(*iters) },
		func(s *lmbench.Suite) lmbench.Result { return s.ProcStart(max(2, *iters/10)) },
		func(s *lmbench.Suite) lmbench.Result { return s.CtxSwitch(2, 0, *iters/2) },
		func(s *lmbench.Suite) lmbench.Result { return s.CtxSwitch(8, 4, *iters/4) },
		func(s *lmbench.Suite) lmbench.Result { return s.PipeLatency(*iters / 2) },
		func(s *lmbench.Suite) lmbench.Result { return s.PipeBandwidth(2 << 20) },
		func(s *lmbench.Suite) lmbench.Result { return s.FileReread(256, 4) },
		func(s *lmbench.Suite) lmbench.Result { return s.MmapLatency(*mmapPg, max(2, *iters/10)) },
		func(s *lmbench.Suite) lmbench.Result { return s.SignalLatency(*iters / 2) },
		func(s *lmbench.Suite) lmbench.Result { return s.FsLatency(*iters / 2) },
		func(s *lmbench.Suite) lmbench.Result { return s.ProtFaultLatency(*iters / 2) },
		func(s *lmbench.Suite) lmbench.Result { return s.BzeroBandwidth(64<<10, 8, lmbench.BzeroStores) },
		func(s *lmbench.Suite) lmbench.Result { return s.BcopyBandwidth(64<<10, 8) },
	}

	// One slot past the benchmarks holds the memrd latency pair, which
	// shares a kernel between its two sizes like the other rows share
	// their iterations.
	results := make([]lmbench.Result, len(benchmarks))
	mons := make([]hwmon.Counters, len(benchmarks)+1)
	var memrd64k, memrd2m float64
	report.RowSet(context.Background(), len(benchmarks)+1, func(i int) {
		k := kernel.New(machine.New(model), cfg)
		s := lmbench.New(k)
		if i < len(benchmarks) {
			results[i] = benchmarks[i](s)
		} else {
			memrd64k = s.MemReadLatency(64<<10, 4000)
			memrd2m = s.MemReadLatency(2<<20, 4000)
		}
		mons[i] = k.M.Mon.Snapshot()
	})

	fmt.Printf("machine: %s   kernel: %s\n\n", model.Name, *cfgName)
	for _, r := range results {
		fmt.Println(r)
	}
	fmt.Printf("%-12s %8.1f cycles/load (64K) / %.1f (2M)\n", "memrd", memrd64k, memrd2m)
	if *counters {
		var total hwmon.Counters
		for _, m := range mons {
			total.Add(m)
		}
		fmt.Printf("\n%s", total.String())
	}
	return exitcode.OK
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
