// Command lmbench runs the LmBench-style microbenchmark suite against
// one simulated machine and kernel configuration.
//
// Usage:
//
//	lmbench -cpu 604/185 -config optimized
//	lmbench -cpu 603/133 -config unoptimized -counters
package main

import (
	"flag"
	"fmt"
	"os"

	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
	"mmutricks/internal/lmbench"
	"mmutricks/internal/machine"
)

func main() {
	var (
		cpu      = flag.String("cpu", "604/185", "CPU model: 603/133, 603/180, 604/133, 604/185, 604/200")
		cfgName  = flag.String("config", "optimized", "kernel config: unoptimized, optimized, optimized+htab")
		iters    = flag.Int("iters", 100, "iteration count for latency benchmarks")
		mmapPg   = flag.Int("mmap-pages", 1024, "pages mapped by the mmap-latency benchmark")
		counters = flag.Bool("counters", false, "dump performance-monitor counters after the run")
	)
	flag.Parse()

	model, ok := clock.ModelByName(*cpu)
	if !ok {
		fmt.Fprintf(os.Stderr, "lmbench: unknown cpu %q\n", *cpu)
		os.Exit(1)
	}
	cfg, ok := kernel.Named(*cfgName)
	if !ok {
		fmt.Fprintf(os.Stderr, "lmbench: unknown config %q\n", *cfgName)
		os.Exit(1)
	}

	k := kernel.New(machine.New(model), cfg)
	s := lmbench.New(k)

	fmt.Printf("machine: %s   kernel: %s\n\n", model.Name, *cfgName)
	results := []lmbench.Result{
		s.NullSyscall(*iters),
		s.ProcStart(max(2, *iters/10)),
		s.CtxSwitch(2, 0, *iters/2),
		s.CtxSwitch(8, 4, *iters/4),
		s.PipeLatency(*iters / 2),
		s.PipeBandwidth(2 << 20),
		s.FileReread(256, 4),
		s.MmapLatency(*mmapPg, max(2, *iters/10)),
		s.SignalLatency(*iters / 2),
		s.FsLatency(*iters / 2),
		s.ProtFaultLatency(*iters / 2),
		s.BzeroBandwidth(64<<10, 8, lmbench.BzeroStores),
		s.BcopyBandwidth(64<<10, 8),
	}
	for _, r := range results {
		fmt.Println(r)
	}
	fmt.Printf("%-12s %8.1f cycles/load (64K) / %.1f (2M)\n", "memrd",
		s.MemReadLatency(64<<10, 4000), s.MemReadLatency(2<<20, 4000))
	if *counters {
		fmt.Printf("\n%s", k.M.Mon.String())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
