// Command ablate measures how the paper's optimizations combine —
// §4's observation as a tool: "many optimizations did not interact as
// we expected ... the end effect was not the sum off all the
// optimizations."
//
// Usage:
//
//	ablate                      # kernel compile on a 603/180
//	ablate -cpu 604/185 -units 6
//
// For each optimization it reports the gain of enabling it alone (solo)
// and the gain it still provides inside the full stack (marginal); a
// large solo with a tiny marginal is the §5.1 "evaporation".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"

	"mmutricks/internal/ablate"
	"mmutricks/internal/clock"
	"mmutricks/internal/exitcode"
	"mmutricks/internal/kbuild"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
	"mmutricks/internal/report"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	// Contain a crashed or budget-tripped run and classify it through
	// the repo-wide exit-code contract instead of dying with status 2.
	defer func() {
		if p := recover(); p != nil {
			reason := report.FailureReason(p)
			fmt.Fprintf(os.Stderr, "ablate: FAILED(%s): %v\n%s", reason, p, debug.Stack())
			code = exitcode.ForFailReasons([]string{reason})
		}
	}()
	var (
		cpu    = flag.String("cpu", "603/180", "CPU model: 603/133, 603/180, 604/133, 604/185, 604/200")
		units  = flag.Int("units", 4, "compile units per measured run (14 runs total)")
		strays = flag.Int("strays", 6, "TLB-pressure references per compile step")
		j      = flag.Int("j", runtime.GOMAXPROCS(0), "worker-pool size across the measured runs")
	)
	flag.Parse()

	model, ok := clock.ModelByName(*cpu)
	if !ok {
		fmt.Fprintf(os.Stderr, "ablate: unknown cpu %q\n", *cpu)
		return exitcode.Usage
	}
	bcfg := kbuild.Default()
	bcfg.Units = *units
	bcfg.WorkPages = 320
	bcfg.Passes = 2
	bcfg.StrayRefs = *strays

	metric := func(cfg kernel.Config) clock.Cycles {
		k := kernel.New(machine.New(model), cfg)
		r := kbuild.Run(k, bcfg)
		return r.Cycles - r.IdleCycles
	}

	report.SetParallelism(*j)
	fmt.Printf("interaction analysis: kernel compile on %s (%d units)\n\n", model.Name, *units)
	fmt.Print(ablate.RunWith(metric, ablate.Knobs(), func(n int, fn func(int)) { report.RowSet(context.Background(), n, fn) }).String())
	fmt.Println("\nA knob with a big solo gain and a small marginal gain has been")
	fmt.Println("subsumed by the rest of the stack — §5.1's \"nearly all the measured")
	fmt.Println("performance improvements ... evaporated when TLB miss handling was")
	fmt.Println("optimized\", measured.")
	return exitcode.OK
}
