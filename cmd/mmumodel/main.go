// mmumodel model-checks the context-switch/MM state machine of
// internal/kernel. Two modes:
//
// Exhaustive exploration (default): BFS over every reachable state of
// the abstract N-CPU machine (internal/model), checking the
// scheduling, mm-refcount, and VSID-generation invariants on each.
// The result is deterministic at any -j; a violation prints as a
// minimal replayable action script and exits 5.
//
// Refinement (-refine): seeded random walks at N=1, each step
// replayed against a real booted kernel with the abstract states
// compared after every step. A divergence is minimized and printed
// the same way. Run with `-tags mmumutant` this must find the planted
// UnuseMM bug — CI's mutation gate.
//
// Usage:
//
//	go run ./cmd/mmumodel [-cpus N] [-tasks N] [-mms N] [-gens N] [-j N]
//	    [-mutate name] [-refine] [-walks N] [-steps N] [-seed N] [-o file.json]
//
// Exit status (the internal/exitcode contract): 0 clean, 5
// violation/divergence found (an audit failure — the machine ran but
// its invariants did not hold), 2 usage error, 1 internal error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"mmutricks/internal/exitcode"
	"mmutricks/internal/model"
)

// output is the -o JSON document. The "counterexample" key is the
// machine-readable contract: CI greps for it to decide whether a
// mutation run actually produced one.
type output struct {
	Mode           string     `json:"mode"` // "explore" or "refine"
	CPUs           int        `json:"cpus"`
	Tasks          int        `json:"tasks"`
	MMs            int        `json:"mms"`
	Gens           int        `json:"gens"`
	Mutant         string     `json:"mutant"`
	States         uint64     `json:"states,omitempty"`
	Transitions    uint64     `json:"transitions,omitempty"`
	Depth          int        `json:"depth,omitempty"`
	Walks          int        `json:"walks,omitempty"`
	StepsExecuted  uint64     `json:"steps_executed,omitempty"`
	Seed           uint64     `json:"seed,omitempty"`
	ElapsedMS      float64    `json:"elapsed_ms"`
	Counterexample *counterex `json:"counterexample,omitempty"`
}

type counterex struct {
	Violation string   `json:"violation"`
	Trace     []string `json:"trace"`
	Script    string   `json:"script"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmumodel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cpus   = fs.Int("cpus", 1, "CPUs in the abstract machine")
		tasks  = fs.Int("tasks", 2, "user tasks")
		mms    = fs.Int("mms", 2, "user mm descriptors")
		gens   = fs.Int("gens", 2, "VSID generations per mm (1 disables vsid_reassign)")
		j      = fs.Int("j", runtime.NumCPU(), "exploration workers (result is identical at any -j)")
		mutate = fs.String("mutate", "none", "plant a model-side bug: none, skip-unuse-put, skip-switch-drop")
		refine = fs.Bool("refine", false, "replay seeded walks against the real kernel at N=1")
		walks  = fs.Int("walks", 50, "refinement walks")
		steps  = fs.Int("steps", 80, "max steps per walk")
		seed   = fs.Uint64("seed", 1, "refinement base seed")
		outX   = fs.String("o", "", "write a JSON summary to this file")
	)
	if err := fs.Parse(args); err != nil {
		return exitcode.Usage
	}
	mut, ok := model.MutantByName[*mutate]
	if !ok {
		names := make([]string, 0, len(model.MutantByName))
		for n := range model.MutantByName {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(stderr, "mmumodel: unknown mutant %q (have %v)\n", *mutate, names)
		return exitcode.Usage
	}
	p := model.Params{CPUs: *cpus, Tasks: *tasks, MMs: *mms, Gens: *gens}
	out := output{CPUs: p.CPUs, Tasks: p.Tasks, MMs: p.MMs, Gens: p.Gens, Mutant: mut.String()}
	start := time.Now()

	var script string
	if *refine {
		out.Mode = "refine"
		res, err := model.Refine(p, model.RefineOpts{Walks: *walks, Steps: *steps, Seed: *seed, Mutant: mut})
		if err != nil {
			// Refine only fails before the first walk, on parameter
			// validation: a usage error, not a harness one.
			fmt.Fprintf(stderr, "mmumodel: %v\n", err)
			return exitcode.Usage
		}
		out.Walks, out.StepsExecuted, out.Seed = res.Walks, res.StepsExecuted, res.Seed
		if v := res.Violation; v != nil {
			script = v.Script(p)
			out.Counterexample = &counterex{Violation: v.Err, Trace: stepStrings(v.Trace), Script: script}
		}
	} else {
		out.Mode = "explore"
		res, err := model.Explore(p, model.ExploreOpts{Workers: *j, Mutant: mut})
		if err != nil {
			// Explore only fails before the first state, on parameter
			// validation: a usage error, not a harness one.
			fmt.Fprintf(stderr, "mmumodel: %v\n", err)
			return exitcode.Usage
		}
		out.States, out.Transitions, out.Depth = res.States, res.Transitions, res.Depth
		if v := res.Violation; v != nil {
			script = v.Script(p, mut)
			out.Counterexample = &counterex{Violation: v.Err, Trace: stepStrings(v.Trace), Script: script}
		}
	}
	out.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000

	if *outX != "" {
		blob, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "mmumodel: %v\n", err)
			return exitcode.Internal
		}
		if err := os.WriteFile(*outX, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "mmumodel: %v\n", err)
			return exitcode.Internal
		}
	}

	if out.Counterexample != nil {
		fmt.Fprint(stdout, script)
		return exitcode.AuditFailure
	}
	if out.Mode == "refine" {
		fmt.Fprintf(stdout, "mmumodel: refine cpus=%d tasks=%d mms=%d gens=%d: %d walks, %d steps replayed, no divergence (%.1fms)\n",
			p.CPUs, p.Tasks, p.MMs, p.Gens, out.Walks, out.StepsExecuted, out.ElapsedMS)
	} else {
		fmt.Fprintf(stdout, "mmumodel: explore cpus=%d tasks=%d mms=%d gens=%d: %d states, %d transitions, depth %d, no violations (%.1fms)\n",
			p.CPUs, p.Tasks, p.MMs, p.Gens, out.States, out.Transitions, out.Depth, out.ElapsedMS)
	}
	return 0
}

func stepStrings(trace []model.Step) []string {
	out := make([]string, len(trace))
	for i, st := range trace {
		out[i] = st.String()
	}
	return out
}
