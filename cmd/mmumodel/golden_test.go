package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"mmutricks/internal/exitcode"
)

var update = flag.Bool("update", false, "rewrite the golden counterexample")

// TestCounterexampleGolden pins the exact bytes of a minimized
// counterexample script: exploring with the planted skip-unuse-put
// bug at the default 1/2/2/2 parameters. BFS order, the canonical
// step enumeration, and the script grammar are all load-bearing for
// reproducing recorded counterexamples, so any drift must be a
// conscious `go test ./cmd/mmumodel -update` away, not an accident.
func TestCounterexampleGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-mutate", "skip-unuse-put", "-j", "3"}, &stdout, &stderr); code != exitcode.AuditFailure {
		t.Fatalf("exit %d, want %d (violation); stderr: %s", code, exitcode.AuditFailure, stderr.String())
	}
	golden := filepath.Join("testdata", "counterexample.golden")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("counterexample drifted from golden:\n--- got ---\n%s--- want ---\n%s", stdout.Bytes(), want)
	}
}

// TestGoldenAtAnyWorkerCount re-runs the golden scenario at several
// -j values: the bytes must not depend on parallelism.
func TestGoldenAtAnyWorkerCount(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "counterexample.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{1, 2, runtime.NumCPU()} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-mutate", "skip-unuse-put", "-j", strconv.Itoa(j)}, &stdout, &stderr); code != exitcode.AuditFailure {
			t.Fatalf("-j %d: exit %d; stderr: %s", j, code, stderr.String())
		}
		if !bytes.Equal(stdout.Bytes(), want) {
			t.Errorf("-j %d: output differs from golden", j)
		}
	}
}

// TestCleanExploreExitsZero: the CI smoke contract — a clean
// exhaustive run exits 0 and the JSON summary carries the counts and
// no counterexample key.
func TestCleanExploreExitsZero(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "model.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-cpus", "2", "-tasks", "3", "-mms", "2", "-o", tmp}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d; stderr: %s; stdout: %s", code, stderr.String(), stdout.String())
	}
	blob, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got["mode"] != "explore" || got["states"].(float64) == 0 {
		t.Errorf("summary missing exploration counts: %s", blob)
	}
	if _, has := got["counterexample"]; has {
		t.Errorf("clean run wrote a counterexample: %s", blob)
	}
}

// TestMutantJSONHasCounterexample: the converse contract — the
// mutation gate greps the JSON for "counterexample".
func TestMutantJSONHasCounterexample(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "model.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-mutate", "skip-unuse-put", "-o", tmp}, &stdout, &stderr); code != exitcode.AuditFailure {
		t.Fatalf("exit %d, want %d", code, exitcode.AuditFailure)
	}
	blob, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(blob, []byte(`"counterexample"`)) {
		t.Errorf("mutant summary lacks the counterexample key: %s", blob)
	}
}

// TestBadFlagsExitTwo pins the usage-error exit code.
func TestBadFlagsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-mutate", "nonsense"},
		{"-cpus", "9"},
		{"-refine", "-cpus", "2"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != exitcode.Usage {
			t.Errorf("%v: exit %d, want %d", args, code, exitcode.Usage)
		}
	}
}
