// mmulint is the repo's structural static-analysis gate: a
// multichecker enforcing cycle-accounting completeness (cyclecost),
// consistency checking in state-mutating tests and experiments
// (invariantcheck), and experiment-registration hygiene (registry).
// The whole-program proof passes live in its sibling cmd/mmuprove;
// both tools share one analyzer registry (tools/analyzers/suite), so
// -run can select any registered pass from either binary and -list
// shows them all.
//
// Usage:
//
//	go run ./cmd/mmulint [-tests=false] [-run name,name] [-list] ./...
//
// Diagnostics print vet-style (file:line:col: analyzer: message) and a
// non-empty report exits 1; load/type errors exit 2.
package main

import "mmutricks/tools/analyzers/suite"

func main() {
	suite.Main("mmulint", suite.Lint)
}
