// mmulint is the repo's static-analysis gate: a multichecker running
// the custom go/analysis-style suite that enforces the simulator's
// measurement disciplines — allocation-free hot paths (noalloc),
// cycle-accounting completeness (cyclecost), consistency checking in
// state-mutating tests and experiments (invariantcheck), and
// experiment-registration hygiene (registry).
//
// Usage:
//
//	go run ./cmd/mmulint [-tests=false] [-run name,name] [-list] ./...
//
// Diagnostics print vet-style (file:line:col: analyzer: message) and a
// non-empty report exits 1; load/type errors exit 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mmutricks/tools/analyzers/analysis"
	"mmutricks/tools/analyzers/cyclecost"
	"mmutricks/tools/analyzers/driver"
	"mmutricks/tools/analyzers/invariantcheck"
	"mmutricks/tools/analyzers/load"
	"mmutricks/tools/analyzers/noalloc"
	"mmutricks/tools/analyzers/registry"
)

var suite = []*analysis.Analyzer{
	noalloc.Analyzer,
	cyclecost.Analyzer,
	invariantcheck.Analyzer,
	registry.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	tests := flag.Bool("tests", true, "analyze _test.go files too")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := suite
	if *run != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mmulint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	prog, err := load.Load(load.Config{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmulint: %v\n", err)
		os.Exit(2)
	}
	diags, err := driver.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmulint: %v\n", err)
		os.Exit(2)
	}
	wd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Category, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
