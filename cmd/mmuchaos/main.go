// Command mmuchaos soaks the simulated kernel under deterministic
// fault injection and audits its machine-check recovery.
//
// Usage:
//
//	mmuchaos -workload all -cpu 604/185 -config optimized \
//	         -schedule "seed=42 rate=500ppm burst=1 mix=all" -o chaos.json
//
// Each workload section runs on a fresh machine with its own seeded
// injector, so the JSON report is byte-identical for a given schedule
// at any -j. The exit status separates the failure classes
// (internal/exitcode): 5 if any section's audit failed — an injected
// fault not repaired (or not escalated), a dirty post-run consistency
// sweep, or a trace/counter reconciliation mismatch — and 1 when the
// harness itself could not run (bad options, I/O errors).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"mmutricks/internal/chaos"
	"mmutricks/internal/exitcode"
	"mmutricks/internal/report"
)

func main() {
	var (
		workload = flag.String("workload", "all", "workload: lmbench, kbuild, stress, escalate, all")
		cpu      = flag.String("cpu", "604/185", "CPU model: 603/133, 603/180, 604/133, 604/185, 604/200")
		cfg      = flag.String("config", "optimized", "kernel config: unoptimized, optimized, optimized+htab")
		iters    = flag.Int("iters", 100, "workload scale")
		schedule = flag.String("schedule", "seed=42 rate=500ppm burst=1 mix=all", "fault schedule (seed=N rate=Nppm burst=N mix=kind:w,... | all | none)")
		j        = flag.Int("j", runtime.GOMAXPROCS(0), "worker-pool size across sections")
		out      = flag.String("o", "", "output file (empty = stdout)")
	)
	flag.Parse()
	report.SetParallelism(*j)

	rep, err := chaos.Run(context.Background(), chaos.Options{
		Workload: *workload,
		CPU:      *cpu,
		Config:   *cfg,
		Iters:    *iters,
		Schedule: *schedule,
	})
	if err != nil {
		fatal(err)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}

	for _, s := range rep.Sections {
		status := "ok"
		if !s.OK {
			status = "FAILED"
		}
		fmt.Fprintf(os.Stderr, "%-14s %s  mc=%d repairs=%d escalations=%d spurious=%d\n",
			s.Name, status, s.MachineChecks,
			s.RepairsTLB+s.RepairsHTAB+s.RepairsBAT+s.RepairsCache,
			s.Escalations, s.Spurious)
		for _, f := range s.Failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
	}
	if !rep.OK {
		fmt.Fprintln(os.Stderr, "mmuchaos: audit FAILED")
		os.Exit(exitcode.AuditFailure)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mmuchaos: %v\n", err)
	os.Exit(exitcode.Internal)
}
