// Command mmureport regenerates the paper's tables and figures on the
// simulator.
//
// Usage:
//
//	mmureport -list                 list all experiments
//	mmureport -experiment table2    run one experiment
//	mmureport -all                  run everything
//	mmureport -all -full            run everything at full scale
//	mmureport -all -j 8             run everything on 8 workers
//	mmureport -benchjson out.json   benchmark the harness itself
//
// Each experiment prints a [measured] grid and, where the paper gives
// directly comparable numbers, a [paper] grid next to it. The -all
// output is byte-identical at every -j: results are gathered by index
// and rendered in registry order.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"mmutricks/internal/exitcode"
	"mmutricks/internal/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	// The harness's live heap is small (each cell frees its machine when
	// it finishes) but cells allocate steadily; the default GC target
	// spends measurable wall clock collecting garbage that a slightly
	// lazier target absorbs for free. GOGC still overrides.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(300)
	}
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		exp        = flag.String("experiment", "", "run a single experiment by id")
		all        = flag.Bool("all", false, "run every experiment")
		full       = flag.Bool("full", false, "run at full scale (slower, EXPERIMENTS.md sizes)")
		quick      = flag.Bool("quick", false, "run at quick scale (the default; explicit for scripts)")
		j          = flag.Int("j", runtime.GOMAXPROCS(0), "harness worker-pool size")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		benchjson  = flag.String("benchjson", "", "benchmark the harness (sequential vs -j) and write JSON to this file")
	)
	flag.Parse()

	if *quick && *full {
		fmt.Fprintln(os.Stderr, "mmureport: -quick and -full are mutually exclusive")
		return exitcode.Usage
	}
	scale := report.Quick
	if *full {
		scale = report.Full
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmureport: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mmureport: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer writeMemProfile(*memprofile)

	report.SetParallelism(*j)

	switch {
	case *list:
		for _, e := range report.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
	case *benchjson != "":
		return benchHarness(*benchjson, scale, *j)
	case *exp != "":
		e, ok := report.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mmureport: unknown experiment %q (try -list)\n", *exp)
			return exitcode.Usage
		}
		r := report.RunOne(context.Background(), e, scale)
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "mmureport: %v\n", r.Err)
		}
		fmt.Println(r.Table.Render())
		return exitcode.ForFailReasons([]string{r.FailReason})
	case *all:
		var reasons []string
		for _, r := range report.RunAll(context.Background(), scale, *j) {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "mmureport: %v\n", r.Err)
				reasons = append(reasons, r.FailReason)
			}
			// Panicked experiments still render — as a one-cell
			// FAILED(<reason>) grid — so the output keeps every registry
			// entry in order even when one degrades. The exit code
			// separates the failure classes: FAILED(panic) exits 4,
			// FAILED(cycle-budget) exits 3 (panic dominates when both
			// appear), anything else nonzero exits 1.
			fmt.Println(r.Table.Render())
		}
		return exitcode.ForFailReasons(reasons)
	default:
		flag.Usage()
		return exitcode.Usage
	}
	return 0
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmureport: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "mmureport: %v\n", err)
	}
}

// benchExperiment is one registry entry's cost in the sequential pass,
// where per-experiment sim-cycle attribution is exact.
type benchExperiment struct {
	ID        string  `json:"id"`
	WallMS    float64 `json:"wall_ms"`
	SimCycles uint64  `json:"sim_cycles"`
	// CounterChecksum fingerprints the experiment's rendered grid — the
	// hwmon counters and every value derived from them. It is
	// deterministic (the harness guarantees byte-identical output), so
	// any drift in simulated counters shows up as a checksum change
	// even when wall times move with the host.
	CounterChecksum string `json:"counter_checksum"`
}

type benchDoc struct {
	Scale       string `json:"scale"`
	Parallelism int    `json:"parallelism"`
	HostCPUs    int    `json:"host_cpus"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	// SimCyclesPerSec is the aggregate simulation rate of the
	// sequential pass: total simulated cycles charged divided by wall
	// time. It is the harness's throughput figure of merit — unlike
	// wall time alone it scales out differences in experiment mix.
	SimCyclesPerSec float64           `json:"sim_cycles_per_sec"`
	SequentialMS    float64           `json:"sequential_ms"`
	ParallelMS      float64           `json:"parallel_ms"`
	Speedup         float64           `json:"speedup"`
	IdenticalOutput bool              `json:"identical_output"`
	Experiments     []benchExperiment `json:"experiments"`
}

// counterChecksum fingerprints a rendered table: sha256, truncated to
// 16 hex digits (drift detection, not cryptography).
func counterChecksum(t *report.Table) string {
	sum := sha256.Sum256([]byte(t.Render()))
	return hex.EncodeToString(sum[:8])
}

// benchHarness times the full registry once sequentially (exact
// per-experiment attribution) and once on j workers, checks the two
// rendered outputs are byte-identical, and writes the comparison as
// JSON.
func benchHarness(path string, scale report.Scale, j int) int {
	scaleName := "quick"
	if scale == report.Full {
		scaleName = "full"
	}

	seqStart := time.Now()
	seq := report.RunAll(context.Background(), scale, 1)
	seqWall := time.Since(seqStart)

	parStart := time.Now()
	par := report.RunAll(context.Background(), scale, j)
	parWall := time.Since(parStart)

	doc := benchDoc{
		Scale:           scaleName,
		Parallelism:     j,
		HostCPUs:        runtime.NumCPU(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		SequentialMS:    float64(seqWall.Microseconds()) / 1000,
		ParallelMS:      float64(parWall.Microseconds()) / 1000,
		Speedup:         seqWall.Seconds() / parWall.Seconds(),
		IdenticalOutput: renderAll(seq) == renderAll(par),
	}
	var totalCycles uint64
	for _, r := range seq {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "mmureport: %v\n", r.Err)
			return 1
		}
		totalCycles += r.SimCycles
		doc.Experiments = append(doc.Experiments, benchExperiment{
			ID:              r.Experiment.ID,
			WallMS:          float64(r.Wall.Microseconds()) / 1000,
			SimCycles:       r.SimCycles,
			CounterChecksum: counterChecksum(r.Table),
		})
	}
	doc.SimCyclesPerSec = float64(totalCycles) / seqWall.Seconds()
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmureport: %v\n", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mmureport: %v\n", err)
		return 1
	}
	fmt.Printf("harness: sequential %.1fms, -j %d %.1fms (%.2fx), output identical: %v\n",
		doc.SequentialMS, j, doc.ParallelMS, doc.Speedup, doc.IdenticalOutput)
	if !doc.IdenticalOutput {
		return 1
	}
	return 0
}

func renderAll(rs []report.RunResult) string {
	var out string
	for _, r := range rs {
		if r.Table != nil {
			out += r.Table.Render() + "\n"
		}
	}
	return out
}
