// Command mmureport regenerates the paper's tables and figures on the
// simulator.
//
// Usage:
//
//	mmureport -list                 list all experiments
//	mmureport -experiment table2    run one experiment
//	mmureport -all                  run everything
//	mmureport -all -full            run everything at full scale
//
// Each experiment prints a [measured] grid and, where the paper gives
// directly comparable numbers, a [paper] grid next to it.
package main

import (
	"flag"
	"fmt"
	"os"

	"mmutricks/internal/report"
)

func main() {
	var (
		list = flag.Bool("list", false, "list experiments and exit")
		exp  = flag.String("experiment", "", "run a single experiment by id")
		all  = flag.Bool("all", false, "run every experiment")
		full = flag.Bool("full", false, "run at full scale (slower, EXPERIMENTS.md sizes)")
	)
	flag.Parse()

	scale := report.Quick
	if *full {
		scale = report.Full
	}

	switch {
	case *list:
		for _, e := range report.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
	case *exp != "":
		e, ok := report.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "mmureport: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		fmt.Println(e.Run(scale).Render())
	case *all:
		for _, e := range report.All() {
			fmt.Println(e.Run(scale).Render())
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
