// Command htabviz visualizes hash-table bucket occupancy for a sweep of
// VSID scatter constants — the tool-equivalent of the histogram the
// paper's authors used to tune the constant until the hot spots
// disappeared (§5.2).
//
// Usage:
//
//	htabviz -scatter 1,16,897 -procs 64
//	htabviz -scatter 897 -histogram
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mmutricks/internal/arch"
	"mmutricks/internal/kernel"
	"mmutricks/internal/ppc"
	"mmutricks/internal/vsid"
)

func main() {
	var (
		scatters  = flag.String("scatter", "1,2,16,256,2048,897", "comma-separated scatter constants to sweep")
		procs     = flag.Int("procs", 64, "simulated processes")
		kernelPTE = flag.Bool("kernel-ptes", false, "keep the kernel's 8192 linear-map PTEs in the table")
		histogram = flag.Bool("histogram", false, "print the full per-bucket occupancy histogram for each constant")
	)
	flag.Parse()

	var cs []uint32
	for _, f := range strings.Split(*scatters, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 32)
		if err != nil {
			fmt.Fprintf(os.Stderr, "htabviz: bad scatter %q: %v\n", f, err)
			os.Exit(1)
		}
		cs = append(cs, uint32(v))
	}

	pages := arch.DefaultHTABEntries / *procs
	fmt.Printf("%d processes x %d pages each (one table capacity offered)\n\n", *procs, pages)
	fmt.Printf("%-10s %-10s %-12s %-12s %s\n", "scatter", "retained", "occupancy", "max bucket", "empty buckets")
	for _, c := range cs {
		h := populate(c, *kernelPTE, *procs, pages)
		hist := h.OccupancyHistogram()
		maxOcc := 0
		for occ := len(hist.Buckets) - 1; occ >= 0; occ-- {
			if hist.Buckets[occ] > 0 {
				maxOcc = occ
				break
			}
		}
		retained := survey(h, c, *procs, pages)
		fmt.Printf("%-10d %-10s %-12s %-12s %d\n",
			c,
			fmt.Sprintf("%.1f%%", 100*retained),
			fmt.Sprintf("%.1f%%", 100*float64(h.Occupancy())/float64(h.Capacity())),
			fmt.Sprintf("%d/8", maxOcc),
			hist.Buckets[0])
		if *histogram {
			fmt.Printf("\noccupancy histogram (buckets holding N PTEs):\n%s\n", hist)
		}
	}
}

// populate fills a fresh table the way the §5.2 experiment does.
func populate(scatter uint32, kernelPTEs bool, procs, pages int) *ppc.HTAB {
	h := ppc.NewHTAB(arch.DefaultHTABGroups, 0x200000)
	if kernelPTEs {
		for pa := 0; pa < 32<<20; pa += arch.PageSize {
			ea := arch.EffectiveAddr(uint32(arch.KernelBase) + uint32(pa))
			v := vsid.For(0, ea.SegIndex(), scatter)
			h.Insert(arch.VPNOf(v, ea), arch.PhysAddr(pa).Frame(), false, nil, nil)
		}
	}
	for p := 1; p <= procs; p++ {
		for i := 0; i < pages; i++ {
			vpn := pageVPN(scatter, p, i)
			h.Insert(vpn, arch.PFN(i), false, nil, nil)
		}
	}
	return h
}

// survey reports what fraction of the offered user PTEs survived.
func survey(h *ppc.HTAB, scatter uint32, procs, pages int) float64 {
	found, total := 0, 0
	for p := 1; p <= procs; p++ {
		for i := 0; i < pages; i++ {
			total++
			if pte, _, _ := h.Search(pageVPN(scatter, p, i), nil); pte != nil {
				found++
			}
		}
	}
	return float64(found) / float64(total)
}

// pageVPN lays out the i'th page of process p the way similar UNIX
// address spaces look: text, heap, stack.
func pageVPN(scatter uint32, p, i int) arch.VPN {
	var ea arch.EffectiveAddr
	switch i % 4 {
	case 0, 1:
		ea = kernel.UserTextBase + arch.EffectiveAddr((i/2)*arch.PageSize)
	case 2:
		ea = kernel.UserDataBase + arch.EffectiveAddr((i/4)*arch.PageSize)
	default:
		ea = kernel.UserStackTop - arch.EffectiveAddr((i/4+1)*arch.PageSize)
	}
	return arch.VPNOf(vsid.For(uint32(p), ea.SegIndex(), scatter), ea)
}
