// Command mmud serves the experiment harness as a crash-tolerant
// daemon: clients POST experiment/trace/chaos job specs, the daemon
// runs them on the shared worker pool under per-job cycle budgets and
// wall-clock timeouts, retries panicking attempts with seeded
// decorrelated-jitter backoff, and serves every result from a
// content-addressed cache so a repeated job returns byte-identical
// bytes without re-running.
//
// Usage:
//
//	mmud -addr :8344 -journal mmud.journal
//
// SIGTERM (or SIGINT, or POST /drain) drains gracefully: admission
// closes, in-flight jobs finish (or are budget-killed at the drain
// deadline), and still-queued jobs remain in the journal, which the
// next start replays in submission order. A job failure never exits
// the daemon; mmud exits nonzero only when it cannot serve at all
// (bad flags, bind failure, unreadable journal).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mmutricks/internal/clock"
	"mmutricks/internal/exitcode"
	"mmutricks/internal/mmud"
	"mmutricks/internal/report"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8344", "listen address")
		journal      = flag.String("journal", "", "crash journal path (empty = no journal; submissions die with the process)")
		workers      = flag.Int("workers", 0, "job workers (0 = GOMAXPROCS, negative = admission-only: queue but never run)")
		j            = flag.Int("j", runtime.GOMAXPROCS(0), "harness worker-pool size shared by running jobs")
		queue        = flag.Int("queue", 64, "admission queue depth (submissions beyond it get 429)")
		perClient    = flag.Int("client-inflight", 8, "per-client queued+running cap (beyond it 429)")
		attempts     = flag.Int("attempts", 3, "max attempts per job (panicking attempts retry with seeded backoff)")
		backoffBase  = flag.Duration("backoff-base", 50*time.Millisecond, "retry backoff lower bound")
		backoffCap   = flag.Duration("backoff-cap", 2*time.Second, "retry backoff upper bound")
		budget       = flag.Uint64("budget", 1<<40, "default per-attempt simulated-cycle budget")
		timeout      = flag.Duration("timeout", 2*time.Minute, "default per-attempt wall-clock timeout")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain deadline before in-flight jobs are cancelled")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "mmud: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		return exitcode.Usage
	}
	logger := log.New(os.Stderr, "mmud: ", log.LstdFlags)
	report.SetParallelism(*j)

	srv, err := mmud.New(mmud.Config{
		QueueDepth:     *queue,
		ClientInflight: *perClient,
		Workers:        *workers,
		MaxAttempts:    *attempts,
		BackoffBase:    *backoffBase,
		BackoffCap:     *backoffCap,
		BudgetCycles:   clock.Cycles(*budget),
		WallTimeout:    *timeout,
		DrainTimeout:   *drainTimeout,
		JournalPath:    *journal,
		Logf:           logger.Printf,
	})
	if err != nil {
		logger.Printf("startup: %v", err)
		return exitcode.Internal
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		return exitcode.Internal
	}
	hs := &http.Server{Handler: srv.Handler()}
	logger.Printf("serving on %s (workers=%d journal=%q)", ln.Addr(), *workers, *journal)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go serve(hs, ln, errCh)

	select {
	case err := <-errCh:
		logger.Printf("serve: %v", err)
		return exitcode.Internal
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second SIGTERM kills hard

	// Drain order: close admission and settle jobs first, then stop
	// the HTTP server so status endpoints answer throughout the drain.
	clean := srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("exit (clean drain=%v)", clean)
	// A drain that had to budget-kill jobs is still a successful
	// daemon exit: the journal holds the unfinished work.
	return exitcode.OK
}

// serve runs the HTTP server, forwarding its terminal error.
func serve(hs *http.Server, ln net.Listener, errCh chan<- error) {
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		errCh <- err
	}
}
