// Command mmutrace records and analyzes MMU event traces.
//
// Usage:
//
//	mmutrace record -workload lmbench -cpu 604/185 -config optimized -o trace.json
//	mmutrace dump -format jsonl trace.json
//	mmutrace dump -format chrome trace.json > trace.chrome.json   (load in Perfetto)
//	mmutrace summarize trace.json
//	mmutrace diff before.json after.json
//
// record runs a workload (lmbench, kbuild, or the synthetic stress
// generators) on a freshly booted simulated machine with the mmtrace
// ring buffer enabled and saves the capture. summarize prints
// per-event-class cycle histograms, reconciles the trace totals
// against the hwmon counter deltas (exit status 5 on mismatch), and
// reports hottest pages and TLB-miss inter-arrival times.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"mmutricks/internal/exitcode"
	"mmutricks/internal/report"
	"mmutricks/internal/tracerec"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: mmutrace <record|dump|summarize|diff> [flags]\n")
	os.Exit(exitcode.Usage)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "dump":
		cmdDump(os.Args[2:])
	case "summarize":
		cmdSummarize(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	default:
		usage()
	}
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		workload = fs.String("workload", "lmbench", "workload: lmbench, kbuild, stress")
		cpu      = fs.String("cpu", "604/185", "CPU model: 603/133, 603/180, 604/133, 604/185, 604/200")
		cfg      = fs.String("config", "optimized", "kernel config: unoptimized, optimized, optimized+htab")
		iters    = fs.Int("iters", 100, "workload scale")
		capacity = fs.Int("capacity", 0, "trace ring capacity in events (0 = default)")
		j        = fs.Int("j", runtime.GOMAXPROCS(0), "worker-pool size across sections")
		out      = fs.String("o", "trace.json", "output file")
	)
	fs.Parse(args)
	report.SetParallelism(*j)

	rec, err := tracerec.Record(context.Background(), tracerec.RecordOptions{
		Workload: *workload,
		CPU:      *cpu,
		Config:   *cfg,
		Iters:    *iters,
		Capacity: *capacity,
	})
	if err != nil {
		fatal(err)
	}
	if err := rec.Save(*out); err != nil {
		fatal(err)
	}
	var events, dropped uint64
	for _, s := range rec.Sections {
		events += s.Emitted
		dropped += s.Dropped
	}
	fmt.Printf("recorded %s: %d sections, %d events (%d dropped by the ring) -> %s\n",
		*workload, len(rec.Sections), events, dropped, *out)
}

func cmdDump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	format := fs.String("format", "jsonl", "output format: jsonl, chrome")
	fs.Parse(args)
	rec := load(fs, "dump")
	var err error
	switch *format {
	case "jsonl":
		err = rec.WriteJSONL(os.Stdout)
	case "chrome":
		err = rec.WriteChromeTrace(os.Stdout)
	default:
		fatal(fmt.Errorf("unknown dump format %q (want jsonl or chrome)", *format))
	}
	if err != nil {
		fatal(err)
	}
}

func cmdSummarize(args []string) {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	topN := fs.Int("top", 10, "how many hottest pages to list")
	fs.Parse(args)
	rec := load(fs, "summarize")
	if mismatches := tracerec.Summarize(os.Stdout, rec, *topN); mismatches > 0 {
		// A failed trace↔counter reconciliation is an audit failure, not
		// a harness error: the run completed but its books don't balance.
		fmt.Fprintf(os.Stderr, "mmutrace: %d reconciliation mismatches\n", mismatches)
		os.Exit(exitcode.AuditFailure)
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usageErr(fmt.Errorf("diff needs exactly two recordings"))
	}
	a, err := tracerec.Load(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := tracerec.Load(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	tracerec.Diff(os.Stdout, a, b)
}

// load reads the single recording argument of a subcommand.
func load(fs *flag.FlagSet, cmd string) *tracerec.Recording {
	if fs.NArg() != 1 {
		usageErr(fmt.Errorf("%s needs exactly one recording file", cmd))
	}
	rec, err := tracerec.Load(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	return rec
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mmutrace: %v\n", err)
	os.Exit(exitcode.Internal)
}

func usageErr(err error) {
	fmt.Fprintf(os.Stderr, "mmutrace: %v\n", err)
	os.Exit(exitcode.Usage)
}
