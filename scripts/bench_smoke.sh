#!/bin/sh
# bench_smoke.sh — the harness performance-identity smoke. Wall times
# move with the host, so this gate checks everything about the bench
# that must NOT move:
#
#   1. the checked-in PGO profile (cmd/mmureport/default.pgo) parses,
#      and still profiles the batched cache path — a rename or removal
#      of the hot entry points makes the profile stale, and a stale
#      profile silently builds an unoptimized harness;
#   2. the harness builds with the profile applied explicitly;
#   3. a quick-scale bench run reproduces the committed
#      BENCH_harness.json experiment list and per-experiment hwmon
#      counter checksums exactly, and its sequential and parallel
#      outputs are byte-identical.
#
# A checksum diff here means simulated counters drifted: either a bug,
# or an intended behavior change that must regenerate the committed
# baseline with `make bench`.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo '== pgo profile freshness'
go tool pprof -top -nodecount=60 cmd/mmureport/default.pgo > "$tmp/pgo.top"
for sym in \
	'cache.(\*Cache).AccessRunCount' \
	'kernel.(\*Kernel).AccessRun' \
	'machine.(\*Machine).MemAccessRun'; do
	if ! grep -q "$sym" "$tmp/pgo.top"; then
		echo "bench_smoke: default.pgo has no samples for $sym — the profile is stale; regenerate it with 'make pgo'" >&2
		exit 1
	fi
done

echo '== build with the profile applied'
go build -pgo=cmd/mmureport/default.pgo -o "$tmp/mmureport" ./cmd/mmureport

echo '== quick-scale counter checksums vs committed BENCH_harness.json'
"$tmp/mmureport" -quick -benchjson "$tmp/bench.json"
for field in '"id"' '"counter_checksum"'; do
	grep "$field" BENCH_harness.json > "$tmp/want" || true
	grep "$field" "$tmp/bench.json" > "$tmp/got" || true
	if ! diff -u "$tmp/want" "$tmp/got"; then
		echo "bench_smoke: $field drifted from the committed BENCH_harness.json — simulated counters changed; if intended, regenerate the baseline with 'make bench'" >&2
		exit 1
	fi
done
if ! grep -q '"identical_output": true' "$tmp/bench.json"; then
	echo 'bench_smoke: sequential and parallel harness output differ — -j determinism is broken' >&2
	exit 1
fi

echo 'bench_smoke: counters identical, profile fresh, pgo build ok'
