#!/bin/sh
# mmud_smoke.sh — the daemon's end-to-end gate, run by CI and by hand.
#
# It drives the full robustness story over the wire:
#   1. start mmud with a journal, wait for /readyz;
#   2. run an lmbench trace job twice — the second submission must be
#      a content-addressed cache hit whose result bytes are identical
#      to the first run's;
#   3. run a chaos escalate job and require a passing audit;
#   4. SIGTERM the daemon with jobs queued behind a single worker —
#      it must drain gracefully (exit 0) leaving the unstarted jobs in
#      the journal;
#   5. restart on the same journal in admission-only mode (-workers
#      -1) and require the queued jobs to have been replayed, then
#      drain again via POST /drain.
#
# The journal is left in $MMUD_SMOKE_DIR for CI to upload as an
# artifact. Needs curl.
set -eu

cd "$(dirname "$0")/.."

dir=${MMUD_SMOKE_DIR:-$(mktemp -d)}
addr=${MMUD_SMOKE_ADDR:-127.0.0.1:8344}
base="http://$addr"
mkdir -p "$dir"
journal="$dir/mmud.journal"
log="$dir/mmud.log"

go build -o "$dir/mmud" ./cmd/mmud

pid=
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

fail() {
	echo "mmud_smoke: $*" >&2
	echo "--- daemon log ---" >&2
	cat "$log" >&2 || true
	exit 1
}

# wait_ready <url> — poll until the endpoint answers 200, failing
# fast if the daemon died (e.g. the port is taken by a stray run).
wait_ready() {
	i=0
	while ! curl -sf "$1" >/dev/null 2>&1; do
		kill -0 "$pid" 2>/dev/null || fail "daemon exited during startup"
		i=$((i + 1))
		[ "$i" -ge 100 ] && fail "daemon never became ready at $1"
		sleep 0.1
	done
}

# submit <json> — POST a job spec, print the job id.
submit() {
	out=$(curl -sS -X POST -d "$1" "$base/jobs")
	id=$(printf '%s' "$out" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1)
	[ -n "$id" ] || fail "submit returned no job id: $out"
	printf '%s' "$id"
}

# wait_done <id> — poll the job record until it settles done.
wait_done() {
	i=0
	while :; do
		rec=$(curl -sS "$base/jobs/$1")
		case $rec in
		*'"state": "done"'*) return 0 ;;
		*'"state": "failed"'*) fail "job $1 failed: $rec" ;;
		esac
		i=$((i + 1))
		[ "$i" -ge 600 ] && fail "job $1 never settled: $rec"
		sleep 0.1
	done
}

echo '== start mmud (1 worker, journalled)'
"$dir/mmud" -addr "$addr" -journal "$journal" -workers 1 >"$log" 2>&1 &
pid=$!
wait_ready "$base/readyz"
curl -sf "$base/healthz" >/dev/null || fail "healthz not serving"

echo '== lmbench trace job, twice: second must be a byte-identical cache hit'
spec='{"kind":"trace","workload":"lmbench","iters":20,"client":"smoke"}'
id1=$(submit "$spec")
wait_done "$id1"
curl -sS "$base/jobs/$id1/result" >"$dir/trace1.out"
hit=$(curl -sS -X POST -d "$spec" "$base/jobs")
case $hit in
*'"cache_hit": true'*) ;;
*) fail "second lmbench submission was not a cache hit: $hit" ;;
esac
id2=$(printf '%s' "$hit" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1)
curl -sS "$base/jobs/$id2/result" >"$dir/trace2.out"
cmp "$dir/trace1.out" "$dir/trace2.out" || fail "cache hit served different bytes"
test -s "$dir/trace1.out" || fail "empty trace result"

echo '== chaos escalate job: audit must pass'
cid=$(submit '{"kind":"chaos","workload":"escalate","iters":60,"schedule":"seed=7 rate=20000ppm burst=1 mix=pte-flip:4,tlb-flip:1","client":"smoke"}')
wait_done "$cid"
curl -sS "$base/jobs/$cid/result" >"$dir/chaos.json"
grep -q '"ok": true' "$dir/chaos.json" || fail "chaos audit did not pass"

echo '== SIGTERM with queued jobs: graceful drain, journal keeps the queue'
# Four chaos jobs behind one worker: the one running when the signal
# lands (plus at most one more the worker grabs before the drain flag
# settles) may finish, but the rest are still queued and must survive
# in the journal as submit-without-finish.
submit '{"kind":"chaos","workload":"all","iters":60,"client":"smoke","seed":1}' >/dev/null
submit '{"kind":"chaos","workload":"all","iters":60,"client":"smoke","seed":2}' >/dev/null
submit '{"kind":"chaos","workload":"all","iters":60,"client":"smoke","seed":3}' >/dev/null
submit '{"kind":"chaos","workload":"all","iters":60,"client":"smoke","seed":4}' >/dev/null
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
[ "$rc" -eq 0 ] || fail "daemon exited $rc after SIGTERM; a graceful drain must exit 0"
test -s "$journal" || fail "journal missing after drain"

echo '== restart on the journal (admission-only): queued jobs replay'
"$dir/mmud" -addr "$addr" -journal "$journal" -workers -1 >>"$log" 2>&1 &
pid=$!
wait_ready "$base/readyz"
stats=$(curl -sS "$base/statsz")
replayed=$(printf '%s' "$stats" | sed -n 's/.*"replayed": \([0-9]*\).*/\1/p')
[ -n "$replayed" ] || fail "statsz has no replayed count: $stats"
[ "$replayed" -ge 1 ] || fail "replayed $replayed jobs, want >= 1 (the drained queue): $stats"

echo '== POST /drain stops admission and exits cleanly'
curl -sf -X POST "$base/drain" >/dev/null || fail "drain request failed"
i=0
while curl -sf "$base/readyz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -ge 100 ] && fail "readyz still 200 after drain"
	sleep 0.1
done
rc=0
curl -sS -X POST -d "$spec" "$base/jobs" | grep -q 'draining' || rc=$?
# (The HTTP server may already be down; either a 503 body or a closed
# socket is an acceptable refusal.)
kill -TERM "$pid" 2>/dev/null || true
wait "$pid" || true

echo "mmud_smoke: all gates passed (journal at $journal, replayed=$replayed)"
