#!/bin/sh
# check.sh — the repo's tier-1 gate: build, vet, formatting, the
# mmulint hygiene suite, the mmuprove whole-program proofs (transitive
# noalloc, determinism zones, counter↔trace parity, model↔kernel
# transition parity), the full test suite under the race detector, and
# the mmumodel gates (exhaustive exploration of the context-switch/MM
# state machine plus a kernel refinement pass). CI and `make check`
# both run exactly this script. The test suite includes the
# fault-injection and chaos-soak audits (internal/faultinject,
# internal/chaos, internal/kernel machine-check tests), so passing
# this gate also certifies the machine-check recovery identities.
set -eu

cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

echo '== gofmt -l .'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo '== go run ./cmd/mmulint ./...'
go run ./cmd/mmulint ./...

echo '== go run ./cmd/mmuprove ./...'
go run ./cmd/mmuprove ./...

echo '== go test -race ./...'
go test -race ./...

echo '== mmumodel: exhaustive exploration (2 CPUs / 3 tasks / 2 mms)'
go run ./cmd/mmumodel -cpus 2 -tasks 3 -mms 2 -gens 2

echo '== mmumodel: kernel refinement (seeded walks at N=1)'
go run ./cmd/mmumodel -refine -tasks 3 -mms 2 -gens 3 -walks 25 -steps 60

echo 'check: all gates passed'
