#!/bin/sh
# check.sh — the repo's tier-1 gate: build, vet, formatting, the
# mmulint hygiene suite, the mmuprove whole-program proofs (transitive
# noalloc, determinism zones, counter↔trace parity), and the full test
# suite under the race detector. CI and `make check` both run exactly
# this script. The test suite includes the fault-injection and
# chaos-soak audits (internal/faultinject, internal/chaos,
# internal/kernel machine-check tests), so passing this gate also
# certifies the machine-check recovery identities.
set -eu

cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

echo '== gofmt -l .'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo '== go run ./cmd/mmulint ./...'
go run ./cmd/mmulint ./...

echo '== go run ./cmd/mmuprove ./...'
go run ./cmd/mmuprove ./...

echo '== go test -race ./...'
go test -race ./...

echo 'check: all gates passed'
