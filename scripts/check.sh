#!/bin/sh
# check.sh — the repo's tier-1 gate: build, vet, formatting, the
# mmulint hygiene suite, the mmuprove whole-program proofs (transitive
# noalloc, determinism zones, counter↔trace parity, model↔kernel
# transition parity, phase-span balance, the guarded-by mutex
# discipline, and the pinned lock-acquisition order), the full test
# suite under the race detector, and
# the mmumodel gates (exhaustive exploration of the context-switch/MM
# state machine plus a kernel refinement pass), and the CLI exit-code
# gates (quick mmureport -all and an mmuchaos escalate soak, whose
# distinct exit codes — 3 cycle-budget, 4 panic, 5 audit — propagate
# as this script's own exit status instead of collapsing to 1). CI
# and `make check` both run exactly this script. The test suite
# includes the
# fault-injection and chaos-soak audits (internal/faultinject,
# internal/chaos, internal/kernel machine-check tests), so passing
# this gate also certifies the machine-check recovery identities.
set -eu

cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

echo '== gofmt -l .'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo '== go run ./cmd/mmulint ./...'
go run ./cmd/mmulint ./...

echo '== go run ./cmd/mmuprove ./...'
go run ./cmd/mmuprove ./...

echo '== go test -race ./...'
go test -race ./...

echo '== mmumodel: exhaustive exploration (2 CPUs / 3 tasks / 2 mms)'
go run ./cmd/mmumodel -cpus 2 -tasks 3 -mms 2 -gens 2

echo '== mmumodel: kernel refinement (seeded walks at N=1)'
go run ./cmd/mmumodel -refine -tasks 3 -mms 2 -gens 3 -walks 25 -steps 60

# The CLI exit-code contract (internal/exitcode): a degraded registry
# run or a failed chaos audit must surface as its own code — 3 for
# cycle-budget, 4 for panic, 5 for audit failure — and this gate
# propagates that code instead of collapsing every failure to 1, so
# the caller (CI, a bisect script) can tell a hung experiment from a
# crashed one without parsing logs.
echo '== mmureport -all exit-code contract (quick registry)'
rc=0
go run ./cmd/mmureport -all -quick >/dev/null || rc=$?
if [ "$rc" -ne 0 ]; then
	echo "check: mmureport -all exited $rc (3=cycle-budget, 4=panic, 1=other)" >&2
	exit "$rc"
fi

echo '== mmuchaos exit-code contract (escalate soak)'
rc=0
go run ./cmd/mmuchaos -workload escalate -iters 60 \
	-schedule 'seed=7 rate=20000ppm burst=1 mix=pte-flip:4,tlb-flip:1' >/dev/null || rc=$?
if [ "$rc" -ne 0 ]; then
	echo "check: mmuchaos exited $rc (5=audit failure, 1=harness error)" >&2
	exit "$rc"
fi

echo 'check: all gates passed'
