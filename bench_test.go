// Benchmarks: one testing.B benchmark (or sub-benchmark group) per
// table and figure in the paper's evaluation, plus ablations over the
// cost constants DESIGN.md calls out. Each op is one unit of the
// corresponding workload on the simulator; the custom "sim-us/op" and
// "sim-MB/s" metrics report the *simulated* time, which is the quantity
// the paper's tables contain (host ns/op only measures the simulator).
package mmutricks_test

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/kbuild"
	"mmutricks/internal/kernel"
	"mmutricks/internal/lmbench"
	"mmutricks/internal/machine"
	"mmutricks/internal/oscompare"
	"mmutricks/internal/ppc"
)

// simKernel builds a machine+kernel+task ready for benchmarking.
func simKernel(model clock.CPUModel, cfg kernel.Config) *kernel.Kernel {
	k := kernel.New(machine.New(model), cfg)
	img := k.LoadImage("bench", 8)
	k.Spawn(img)
	return k
}

// reportSimMicros attaches the simulated per-op latency metric.
func reportSimMicros(b *testing.B, k *kernel.Kernel, start clock.Cycles) {
	b.ReportMetric(k.M.Led.Micros(k.M.Led.Now()-start)/float64(b.N), "sim-us/op")
}

// ---------------------------------------------------------------------
// Figure 1: the translation path itself.
// ---------------------------------------------------------------------

func BenchmarkFigure1Translate(b *testing.B) {
	b.Run("bat-hit", func(b *testing.B) {
		k := simKernel(clock.PPC604At185(), kernel.Optimized())
		mmu := k.M.MMU
		for i := 0; i < b.N; i++ {
			mmu.Translate(0xC0001000, false)
		}
	})
	b.Run("tlb-hit", func(b *testing.B) {
		k := simKernel(clock.PPC604At185(), kernel.Optimized())
		k.UserTouch(kernel.UserDataBase, 64) // fault the page in
		mmu := k.M.MMU
		for i := 0; i < b.N; i++ {
			mmu.Translate(kernel.UserDataBase, false)
		}
	})
	b.Run("hash-search", func(b *testing.B) {
		htab := ppc.NewHTAB(arch.DefaultHTABGroups, 0x200000)
		vpn := arch.VPNOf(0x42, 0x00001000)
		htab.Insert(vpn, 7, false, nil, nil)
		for i := 0; i < b.N; i++ {
			htab.Search(vpn, nil)
		}
	})
}

// ---------------------------------------------------------------------
// Table 1: direct TLB reloads. One sub-benchmark per machine column
// over the reload-heaviest row (a working set beyond TLB reach).
// ---------------------------------------------------------------------

func BenchmarkTable1Reloads(b *testing.B) {
	cols := []struct {
		name  string
		model clock.CPUModel
		htab  bool
	}{
		{"603-180-htab", clock.PPC603At180(), true},
		{"603-180-nohtab", clock.PPC603At180(), false},
		{"604-185", clock.PPC604At185(), false},
		{"604-200", clock.PPC604At200(), false},
	}
	for _, c := range cols {
		c := c
		b.Run(c.name, func(b *testing.B) {
			cfg := kernel.Optimized()
			cfg.UseHTAB = c.htab
			k := simKernel(c.model, cfg)
			addr := k.SysMmap(512)
			k.UserTouchPages(addr, 512)
			b.ResetTimer()
			start := k.M.Led.Now()
			for i := 0; i < b.N; i++ {
				k.UserTouchPages(addr, 512)
			}
			reportSimMicros(b, k, start)
		})
	}
}

func BenchmarkTable1PipeLatency(b *testing.B) {
	for _, c := range []struct {
		name  string
		model clock.CPUModel
		htab  bool
	}{
		{"603-180-htab", clock.PPC603At180(), true},
		{"603-180-nohtab", clock.PPC603At180(), false},
		{"604-185", clock.PPC604At185(), false},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			cfg := kernel.Optimized()
			cfg.UseHTAB = c.htab
			s := lmbench.New(kernel.New(machine.New(c.model), cfg))
			r := s.PipeLatency(b.N/2 + 2)
			b.ReportMetric(r.Micros, "sim-us/op")
		})
	}
}

// ---------------------------------------------------------------------
// Table 2: the mmap row under each flush strategy.
// ---------------------------------------------------------------------

func BenchmarkTable2Mmap(b *testing.B) {
	for _, c := range []struct {
		name string
		lazy bool
	}{{"eager", false}, {"tuned", true}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			cfg := kernel.Optimized()
			cfg.UseHTAB = true
			if !c.lazy {
				cfg.LazyFlush = false
				cfg.FlushRangeCutoff = 0
				cfg.IdleReclaim = false
			}
			k := simKernel(clock.PPC603At133(), cfg)
			b.ResetTimer()
			start := k.M.Led.Now()
			for i := 0; i < b.N; i++ {
				a := k.SysMmap(256)
				k.SysMunmap(a, 256)
			}
			reportSimMicros(b, k, start)
		})
	}
}

// ---------------------------------------------------------------------
// Table 3: null syscall and pipe latency per OS personality.
// ---------------------------------------------------------------------

func BenchmarkTable3(b *testing.B) {
	for _, p := range oscompare.Personalities() {
		p := p
		b.Run(p.Name+"/nullsys", func(b *testing.B) {
			r := oscompare.NewRunner(p, clock.PPC604At133())
			res := r.NullSyscall(b.N)
			b.ReportMetric(res.Micros, "sim-us/op")
		})
		b.Run(p.Name+"/pipelat", func(b *testing.B) {
			r := oscompare.NewRunner(p, clock.PPC604At133())
			res := r.PipeLatency(b.N/2 + 2)
			b.ReportMetric(res.Micros, "sim-us/op")
		})
	}
}

// ---------------------------------------------------------------------
// §5.1: kernel compile with and without the BAT-mapped kernel.
// ---------------------------------------------------------------------

func BenchmarkSec51Kbuild(b *testing.B) {
	cfg := kbuild.Default()
	cfg.Units = 2
	cfg.WorkPages = 320
	cfg.Passes = 1
	cfg.StrayRefs = 8
	for _, c := range []struct {
		name string
		bat  bool
	}{{"kernel-ptes", false}, {"kernel-bat", true}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kcfg := kernel.Unoptimized()
				kcfg.KernelBAT = c.bat
				k := kernel.New(machine.New(clock.PPC604At185()), kcfg)
				r := kbuild.Run(k, cfg)
				b.ReportMetric(r.ComputeSeconds*1000, "sim-ms/compile")
			}
		})
	}
}

// ---------------------------------------------------------------------
// §5.2: hash-table population quality per scatter constant.
// ---------------------------------------------------------------------

func BenchmarkSec52Scatter(b *testing.B) {
	for _, c := range []struct {
		name    string
		scatter uint32
	}{{"pid", 1}, {"pow2", 2048}, {"tuned", 897}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := ppc.NewHTAB(arch.DefaultHTABGroups, 0)
				for p := uint32(1); p <= 64; p++ {
					for pg := 0; pg < 256; pg++ {
						ea := kernel.UserTextBase + arch.EffectiveAddr(pg*arch.PageSize)
						h.Insert(arch.VPNOf(arch.VSID(p*c.scatter)&arch.VSIDMask, ea), arch.PFN(pg), false, nil, nil)
					}
				}
				b.ReportMetric(float64(h.Occupancy())/float64(h.Capacity())*100, "occupancy-%")
			}
		})
	}
}

// ---------------------------------------------------------------------
// §6.1: the reload handlers themselves.
// ---------------------------------------------------------------------

func BenchmarkSec61ReloadPath(b *testing.B) {
	for _, c := range []struct {
		name string
		fast bool
	}{{"c-handlers", false}, {"fast-handlers", true}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			cfg := kernel.Unoptimized()
			cfg.FastReload = c.fast
			k := simKernel(clock.PPC603At180(), cfg)
			k.UserTouchPages(kernel.UserDataBase, 64)
			b.ResetTimer()
			start := k.M.Led.Now()
			for i := 0; i < b.N; i++ {
				k.M.MMU.TLB.InvalidateAll()
				k.UserTouchPages(kernel.UserDataBase, 64)
			}
			reportSimMicros(b, k, start)
		})
	}
}

// ---------------------------------------------------------------------
// §6.2: kernel compile with and without the hash table on the 603.
// ---------------------------------------------------------------------

func BenchmarkSec62Kbuild(b *testing.B) {
	cfg := kbuild.Default()
	cfg.Units = 2
	cfg.WorkPages = 320
	cfg.Passes = 1
	cfg.StrayRefs = 8
	for _, c := range []struct {
		name string
		htab bool
	}{{"htab", true}, {"no-htab", false}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kcfg := kernel.Optimized()
				kcfg.UseHTAB = c.htab
				k := kernel.New(machine.New(clock.PPC603At180()), kcfg)
				r := kbuild.Run(k, cfg)
				b.ReportMetric(r.ComputeSeconds*1000, "sim-ms/compile")
			}
		})
	}
}

// ---------------------------------------------------------------------
// §7: flush strategies head to head.
// ---------------------------------------------------------------------

func BenchmarkSec7Flush(b *testing.B) {
	b.Run("eager-context-flush", func(b *testing.B) {
		cfg := kernel.Optimized()
		cfg.UseHTAB = true
		cfg.LazyFlush = false
		cfg.FlushRangeCutoff = 0
		k := simKernel(clock.PPC604At185(), cfg)
		addr := k.SysMmap(64)
		b.ResetTimer()
		start := k.M.Led.Now()
		for i := 0; i < b.N; i++ {
			k.UserTouchPages(addr, 64)
			k.FlushTaskContext()
		}
		reportSimMicros(b, k, start)
	})
	b.Run("lazy-context-flush", func(b *testing.B) {
		k := simKernel(clock.PPC604At185(), kernel.Optimized())
		addr := k.SysMmap(64)
		b.ResetTimer()
		start := k.M.Led.Now()
		for i := 0; i < b.N; i++ {
			k.UserTouchPages(addr, 64)
			k.FlushTaskContext()
		}
		reportSimMicros(b, k, start)
	})
}

func BenchmarkSec7ReclaimScan(b *testing.B) {
	k := simKernel(clock.PPC604At185(), kernel.Optimized())
	// Fill the table with zombies.
	for i := 0; i < 40; i++ {
		k.UserTouchPages(kernel.UserDataBase, 64)
		k.FlushTaskContext()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunIdleFor(10_000)
	}
}

// ---------------------------------------------------------------------
// §8: translation under cached vs uncached table walks.
// ---------------------------------------------------------------------

func BenchmarkSec8Walks(b *testing.B) {
	for _, c := range []struct {
		name   string
		cached bool
	}{{"cached-walks", true}, {"uncached-walks", false}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			cfg := kernel.Unoptimized()
			cfg.KernelBAT = true
			cfg.CachePageTables = c.cached
			k := simKernel(clock.PPC604At185(), cfg)
			addr := k.SysMmap(512)
			k.UserTouchPages(addr, 512)
			b.ResetTimer()
			start := k.M.Led.Now()
			for i := 0; i < b.N; i++ {
				k.UserTouchPages(addr, 512)
			}
			reportSimMicros(b, k, start)
		})
	}
}

// ---------------------------------------------------------------------
// §9: the four page-clearing variants.
// ---------------------------------------------------------------------

func BenchmarkSec9IdleClear(b *testing.B) {
	cfg := kbuild.Default()
	cfg.Units = 2
	cfg.HotPages = 6
	cfg.WaitEvery = 10
	for _, mode := range []kernel.IdleClearMode{
		kernel.IdleClearOff, kernel.IdleClearCached,
		kernel.IdleClearUncached, kernel.IdleClearUncachedList,
	} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kcfg := kernel.Unoptimized()
				kcfg.KernelBAT = true
				kcfg.FastReload = true
				kcfg.IdleClear = mode
				k := kernel.New(machine.New(clock.PPC604At185()), kcfg)
				r := kbuild.Run(k, cfg)
				b.ReportMetric(r.ComputeSeconds*1000, "sim-ms/compile")
			}
		})
	}
}

// ---------------------------------------------------------------------
// Ablations over the paper-derived cost constants (DESIGN.md §4): how
// sensitive the headline results are to the measured hardware costs.
// ---------------------------------------------------------------------

func BenchmarkAblationMemLatency(b *testing.B) {
	for _, lat := range []int{15, 34, 60} {
		lat := lat
		b.Run(clockName(lat), func(b *testing.B) {
			model := clock.PPC604At185()
			model.MemLatency = lat
			s := lmbench.New(kernel.New(machine.New(model), kernel.Optimized()))
			r := s.PipeBandwidth(1 << 20)
			b.ReportMetric(r.MBps, "sim-MB/s")
			for i := 0; i < b.N; i++ {
				_ = i
			}
		})
	}
}

func clockName(lat int) string {
	switch {
	case lat < 20:
		return "fast-memory"
	case lat < 40:
		return "stock-memory"
	default:
		return "slow-memory"
	}
}

func BenchmarkAblationHashMissInterrupt(b *testing.B) {
	for _, c := range []struct {
		name   string
		cycles int
	}{{"paper-91c", 91}, {"half-45c", 45}, {"double-182c", 182}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			model := clock.PPC604At185()
			model.HashMissInterrupt = c.cycles
			k := kernel.New(machine.New(model), kernel.Optimized())
			img := k.LoadImage("bench", 8)
			k.Spawn(img)
			addr := k.SysMmap(256)
			b.ResetTimer()
			start := k.M.Led.Now()
			for i := 0; i < b.N; i++ {
				k.UserTouchPages(addr, 256)
				k.FlushTaskContext() // force fresh hash misses each round
			}
			reportSimMicros(b, k, start)
		})
	}
}

// ---------------------------------------------------------------------
// Extension benchmarks: COW fork, the rejected on-demand reclaim, the
// per-process frame-buffer BAT, the §10 proposals, and the unified-vs-
// split TLB modeling ablation.
// ---------------------------------------------------------------------

func BenchmarkAblationCOWFork(b *testing.B) {
	for _, c := range []struct {
		name string
		cow  bool
	}{{"eager-copy", false}, {"cow", true}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			cfg := kernel.Optimized()
			cfg.COWFork = c.cow
			k := simKernel(clock.PPC604At185(), cfg)
			k.UserTouch(kernel.UserDataBase, 32*arch.PageSize)
			parent := k.Current()
			b.ResetTimer()
			start := k.M.Led.Now()
			for i := 0; i < b.N; i++ {
				child := k.Fork()
				k.Switch(child)
				k.UserTouch(kernel.UserDataBase, 2*arch.PageSize) // child dirties a little
				k.Exit()
				k.Switch(parent)
				k.Wait(child)
			}
			reportSimMicros(b, k, start)
		})
	}
}

func BenchmarkAblationSplitTLB(b *testing.B) {
	for _, c := range []struct {
		name  string
		split bool
	}{{"unified-128", false}, {"split-64+64", true}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			model := clock.PPC603At180()
			model.SplitTLB = c.split
			k := simKernel(model, kernel.Optimized())
			addr := k.SysMmap(192)
			k.UserTouchPages(addr, 192)
			b.ResetTimer()
			start := k.M.Led.Now()
			for i := 0; i < b.N; i++ {
				k.UserRun(0, 400) // instruction side
				k.UserTouchPages(addr, 192)
			}
			reportSimMicros(b, k, start)
		})
	}
}

func BenchmarkFBWrite(b *testing.B) {
	for _, c := range []struct {
		name string
		bat  bool
	}{{"pte-mapped", false}, {"fb-bat", true}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			cfg := kernel.Optimized()
			cfg.FBBAT = c.bat
			k := simKernel(clock.PPC604At185(), cfg)
			k.IoremapFB()
			// An X-server-like mix: blits interleaved with a working
			// set near TLB reach, so FB translations compete for slots
			// unless the BAT carries them.
			ws := k.SysMmap(224)
			k.UserTouchPages(ws, 224)
			k.FBWrite(0, 64*arch.PageSize) // fault in / warm
			b.ResetTimer()
			start := k.M.Led.Now()
			for i := 0; i < b.N; i++ {
				k.FBWrite(0, 64*arch.PageSize)
				k.UserTouchPages(ws, 224)
			}
			reportSimMicros(b, k, start)
		})
	}
}

func BenchmarkIdleCacheLock(b *testing.B) {
	for _, c := range []struct {
		name string
		lock bool
	}{{"unlocked", false}, {"locked", true}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			cfg := kernel.Optimized()
			cfg.UseHTAB = true
			cfg.IdleClear = kernel.IdleClearCached
			cfg.IdleCacheLock = c.lock
			k := simKernel(clock.PPC604At185(), cfg)
			k.UserTouch(kernel.UserDataBase, 24*1024)
			b.ResetTimer()
			start := k.M.Led.Now()
			for i := 0; i < b.N; i++ {
				k.RunIdleFor(50_000)
				k.UserTouch(kernel.UserDataBase, 24*1024) // refault the hot set
			}
			reportSimMicros(b, k, start)
		})
	}
}

func BenchmarkAblationL2Cache(b *testing.B) {
	for _, c := range []struct {
		name string
		l2   int
	}{{"no-l2", 0}, {"l2-512k", 512 * 1024}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			model := clock.PPC604At133() // the PowerMac 9500 shipped with L2
			model.L2Size = c.l2
			model.L2Latency = 9
			s := lmbench.New(kernel.New(machine.New(model), kernel.Optimized()))
			r := s.FileReread(256, b.N/2+1)
			b.ReportMetric(r.MBps, "sim-MB/s")
		})
	}
}

func BenchmarkLatSig(b *testing.B) {
	for _, cfgName := range []string{"unoptimized", "optimized"} {
		cfgName := cfgName
		b.Run(cfgName, func(b *testing.B) {
			cfg, _ := kernel.Named(cfgName)
			s := lmbench.New(kernel.New(machine.New(clock.PPC604At133()), cfg))
			r := s.SignalLatency(b.N + 1)
			b.ReportMetric(r.Micros, "sim-us/op")
		})
	}
}

func BenchmarkMemHierarchy(b *testing.B) {
	for _, c := range []struct {
		name string
		size int
	}{{"l1-resident-16k", 16 << 10}, {"mem-resident-256k", 256 << 10}, {"past-tlb-2m", 2 << 20}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			s := lmbench.New(kernel.New(machine.New(clock.PPC604At185()), kernel.Optimized()))
			cyc := s.MemReadLatency(c.size, b.N+1000)
			b.ReportMetric(cyc, "sim-cycles/load")
		})
	}
}
