module mmutricks

go 1.22
