package phys

import (
	"testing"
	"testing/quick"

	"mmutricks/internal/arch"
)

func TestDefaultLayout(t *testing.T) {
	m := NewDefault()
	if m.Frames() != 8192 {
		t.Fatalf("32 MB should be 8192 frames, got %d", m.Frames())
	}
	l := m.Layout()
	if l.HTABBytes != 128*1024 {
		t.Fatalf("hash table should be 128 KB, got %d", l.HTABBytes)
	}
	if l.HTABBase != arch.PhysAddr(l.KernelBytes) {
		t.Fatal("hash table must sit directly above the kernel image")
	}
	wantFirst := arch.PFN((l.KernelBytes + l.HTABBytes) / arch.PageSize)
	if l.FirstFree != wantFirst {
		t.Fatalf("FirstFree = %d want %d", l.FirstFree, wantFirst)
	}
	if m.FreeFrames() != m.Frames()-int(wantFirst) {
		t.Fatalf("free frames = %d", m.FreeFrames())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []struct{ ram, kern int }{
		{0, 4096}, {1<<20 + 1, 4096}, {1 << 20, 0}, {1 << 20, 4097}, {1 << 20, 16 << 20},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", c.ram, c.kern)
				}
			}()
			New(c.ram, c.kern)
		}()
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	m := NewDefault()
	pfn, ok := m.AllocFrame()
	if !ok {
		t.Fatal("alloc failed on fresh memory")
	}
	if !m.InUse(pfn) {
		t.Fatal("allocated frame not marked in use")
	}
	if pfn < m.Layout().FirstFree {
		t.Fatal("allocator handed out a reserved frame")
	}
	m.FreeFrame(pfn)
	if m.InUse(pfn) {
		t.Fatal("freed frame still in use")
	}
}

func TestAllocExhaustion(t *testing.T) {
	m := New(64*arch.PageSize, 4*arch.PageSize)
	want := m.FreeFrames()
	n := 0
	for {
		if _, ok := m.AllocFrame(); !ok {
			break
		}
		n++
	}
	if n != want {
		t.Fatalf("allocated %d frames, want %d", n, want)
	}
	if _, ok := m.AllocFrame(); ok {
		t.Fatal("alloc should keep failing once exhausted")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m := NewDefault()
	pfn, _ := m.AllocFrame()
	m.FreeFrame(pfn)
	defer func() {
		if recover() == nil {
			t.Error("double free should panic")
		}
	}()
	m.FreeFrame(pfn)
}

func TestFreeReservedPanics(t *testing.T) {
	m := NewDefault()
	defer func() {
		if recover() == nil {
			t.Error("freeing a reserved frame should panic")
		}
	}()
	m.FreeFrame(0)
}

func TestAllocNeverAliases(t *testing.T) {
	m := NewDefault()
	seen := map[arch.PFN]bool{}
	for i := 0; i < 1000; i++ {
		pfn, ok := m.AllocFrame()
		if !ok {
			t.Fatal("unexpected exhaustion")
		}
		if seen[pfn] {
			t.Fatalf("frame %#x handed out twice", uint32(pfn))
		}
		seen[pfn] = true
	}
}

func TestClearedListFastPath(t *testing.T) {
	m := NewDefault()
	// Without idle clearing, GetFreePage always takes the slow path.
	_, cleared, ok := m.GetFreePage()
	if !ok || cleared {
		t.Fatalf("expected slow-path page, cleared=%v ok=%v", cleared, ok)
	}
	if m.Stats().ClearedMisses != 1 {
		t.Fatal("slow path not counted")
	}
	// Idle task banks a page; next request takes the fast path.
	cand, ok := m.PopClearedCandidate()
	if !ok {
		t.Fatal("no candidate with free memory available")
	}
	m.PushCleared(cand)
	if m.ClearedLen() != 1 {
		t.Fatal("cleared list should hold one page")
	}
	pfn, cleared, ok := m.GetFreePage()
	if !ok || !cleared || pfn != cand {
		t.Fatalf("fast path broken: pfn=%v cleared=%v", pfn, cleared)
	}
	if m.Stats().ClearedHits != 1 {
		t.Fatal("fast path not counted")
	}
	if !m.InUse(pfn) {
		t.Fatal("fast-path page not marked in use")
	}
}

func TestClearedListSkipsReallocatedFrames(t *testing.T) {
	m := NewDefault()
	cand, _ := m.PopClearedCandidate()
	m.PushCleared(cand)
	// The frame gets allocated through the ordinary path before the
	// cleared list is consulted (the list is an overlay; the paper's
	// list is lock-free so this race is real there too).
	var grabbed arch.PFN
	for {
		pfn, ok := m.AllocFrame()
		if !ok {
			t.Fatal("exhausted before hitting candidate")
		}
		if pfn == cand {
			grabbed = pfn
			break
		}
	}
	_ = grabbed
	pfn, cleared, ok := m.GetFreePage()
	if !ok {
		t.Fatal("GetFreePage failed")
	}
	if cleared && pfn == cand {
		t.Fatal("handed out a frame that was already allocated")
	}
}

func TestPushClearedIgnoresBusyAndDuplicate(t *testing.T) {
	m := NewDefault()
	pfn, _ := m.AllocFrame()
	m.PushCleared(pfn) // busy: ignored
	if m.ClearedLen() != 0 {
		t.Fatal("busy frame accepted onto cleared list")
	}
	m.FreeFrame(pfn)
	m.PushCleared(pfn)
	m.PushCleared(pfn) // duplicate: ignored
	if m.ClearedLen() != 1 {
		t.Fatalf("cleared list length = %d, want 1", m.ClearedLen())
	}
}

func TestPopClearedCandidateDrains(t *testing.T) {
	m := New(64*arch.PageSize, 4*arch.PageSize)
	seen := map[arch.PFN]bool{}
	for {
		pfn, ok := m.PopClearedCandidate()
		if !ok {
			break
		}
		if seen[pfn] {
			t.Fatalf("candidate %v returned twice", pfn)
		}
		seen[pfn] = true
		m.PushCleared(pfn)
	}
	if len(seen) != m.FreeFrames() {
		t.Fatalf("cleared %d frames, %d free", len(seen), m.FreeFrames())
	}
}

func TestHTABFrames(t *testing.T) {
	m := NewDefault()
	first, count := m.HTABFrames()
	if first != m.Layout().HTABBase.Frame() {
		t.Fatal("HTAB first frame wrong")
	}
	if int(count)*arch.PageSize != m.Layout().HTABBytes {
		t.Fatal("HTAB frame count wrong")
	}
}

func TestAllocFreeProperty(t *testing.T) {
	m := NewDefault()
	var held []arch.PFN
	f := func(alloc bool) bool {
		if alloc {
			pfn, ok := m.AllocFrame()
			if !ok {
				return true
			}
			held = append(held, pfn)
			return m.InUse(pfn)
		}
		if len(held) == 0 {
			return true
		}
		pfn := held[len(held)-1]
		held = held[:len(held)-1]
		m.FreeFrame(pfn)
		return !m.InUse(pfn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
