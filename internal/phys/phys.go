// Package phys models the machine's physical memory: the frame
// allocator behind get_free_page(), the list of pre-cleared pages the
// idle task maintains (§9 of the paper), and the fixed physical layout
// of the kernel image and the hashed page table.
//
// Every machine in the paper has 32 MB of RAM (§4), keeping the ratio of
// RAM to hash-table PTEs to TLB entries constant; that is the default
// here too.
package phys

import (
	"fmt"

	"mmutricks/internal/arch"
)

// DefaultRAM is the 32 MB configuration used throughout the paper.
const DefaultRAM = 32 << 20

// Layout describes where the fixed kernel structures live in physical
// memory. The kernel image is one contiguous chunk starting at physical
// zero (which is what lets a single BAT entry map all of it, §5.1), and
// the hash table sits directly above it.
type Layout struct {
	// KernelBytes is the size of kernel text+static data.
	KernelBytes int
	// HTABBase is the physical base of the hashed page table.
	HTABBase arch.PhysAddr
	// HTABBytes is the size of the hash table (128 KB by default).
	HTABBytes int
	// FirstFree is the first frame available to the allocator.
	FirstFree arch.PFN
}

// Stats counts allocator activity.
type Stats struct {
	// Allocated and Freed count frame-allocator operations.
	Allocated, Freed uint64
	// ClearedHits counts GetFreePage requests satisfied from the
	// pre-cleared list; ClearedMisses those that were not.
	ClearedHits, ClearedMisses uint64
	// IdleCleared counts pages cleared by the idle task.
	IdleCleared uint64
}

// Memory is the physical memory of one simulated machine.
type Memory struct {
	frames  int
	layout  Layout
	free    []arch.PFN
	inUse   []bool
	cleared []arch.PFN
	onList  []bool
	stats   Stats
}

// New builds a memory of the given size with the given kernel image
// size and the architecture-recommended hash table. Sizes must be page
// multiples.
func New(ramBytes, kernelBytes int) *Memory {
	return NewWithHTAB(ramBytes, kernelBytes, arch.DefaultHTABGroups)
}

// NewWithHTAB builds a memory with a hash table of the given group
// count — used by the hash-table-size experiments ("we could have
// decreased the size of the hash table and free RAM for use by the
// system", §7).
func NewWithHTAB(ramBytes, kernelBytes, htabGroups int) *Memory {
	if ramBytes <= 0 || ramBytes&arch.PageMask != 0 {
		panic(fmt.Sprintf("phys: bad RAM size %d", ramBytes))
	}
	if kernelBytes <= 0 || kernelBytes&arch.PageMask != 0 {
		panic(fmt.Sprintf("phys: bad kernel size %d", kernelBytes))
	}
	if htabGroups <= 0 || htabGroups&(htabGroups-1) != 0 {
		panic(fmt.Sprintf("phys: bad hash-table group count %d", htabGroups))
	}
	htabBytes := htabGroups * arch.PTEGSize * arch.PTEBytes
	if htabBytes&arch.PageMask != 0 {
		panic(fmt.Sprintf("phys: hash table size %d not page-aligned", htabBytes))
	}
	reserved := kernelBytes + htabBytes
	if reserved >= ramBytes {
		panic("phys: kernel + hash table exceed RAM")
	}
	frames := ramBytes / arch.PageSize
	m := &Memory{
		frames: frames,
		layout: Layout{
			KernelBytes: kernelBytes,
			HTABBase:    arch.PhysAddr(kernelBytes),
			HTABBytes:   htabBytes,
			FirstFree:   arch.PFN(reserved / arch.PageSize),
		},
		inUse:  make([]bool, frames),
		onList: make([]bool, frames),
	}
	// Free frames are handed out low-to-high; keep the stack so the
	// next allocation is the lowest free frame, which is deterministic.
	for f := frames - 1; f >= int(m.layout.FirstFree); f-- {
		m.free = append(m.free, arch.PFN(f))
	}
	for f := arch.PFN(0); f < m.layout.FirstFree; f++ {
		m.inUse[f] = true
	}
	return m
}

// NewDefault builds the paper's 32 MB machine with a 2 MB kernel image.
func NewDefault() *Memory { return New(DefaultRAM, 2<<20) }

// Frames returns the total number of page frames.
func (m *Memory) Frames() int { return m.frames }

// FreeFrames returns how many frames are currently free.
func (m *Memory) FreeFrames() int { return len(m.free) }

// Layout returns the fixed physical layout.
func (m *Memory) Layout() Layout { return m.layout }

// Stats returns the live allocator counters.
func (m *Memory) Stats() *Stats { return &m.stats }

// AllocFrame removes a frame from the free list. ok is false when
// memory is exhausted. The frame is NOT taken from the cleared list and
// is not guaranteed zeroed; kernel code that needs a zeroed page uses
// GetFreePage.
func (m *Memory) AllocFrame() (pfn arch.PFN, ok bool) {
	if len(m.free) == 0 {
		return 0, false
	}
	pfn = m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.inUse[pfn] = true
	m.stats.Allocated++
	return pfn, true
}

// FreeFrame returns a frame to the allocator. Freeing a reserved or
// already-free frame panics: that is a kernel bug, not a runtime
// condition.
func (m *Memory) FreeFrame(pfn arch.PFN) {
	if int(pfn) >= m.frames || pfn < m.layout.FirstFree {
		panic(fmt.Sprintf("phys: free of reserved frame %#x", uint32(pfn)))
	}
	if !m.inUse[pfn] {
		panic(fmt.Sprintf("phys: double free of frame %#x", uint32(pfn)))
	}
	m.inUse[pfn] = false
	m.onList[pfn] = false
	m.free = append(m.free, pfn)
}

// InUse reports whether the frame is currently allocated (or reserved).
func (m *Memory) InUse(pfn arch.PFN) bool {
	return int(pfn) < m.frames && m.inUse[pfn]
}

// PopClearedCandidate removes one free frame for the idle task to
// clear, without marking it allocated. Returns false when nothing is
// free or everything free is already on the cleared list.
func (m *Memory) PopClearedCandidate() (arch.PFN, bool) {
	for i := len(m.free) - 1; i >= 0; i-- {
		pfn := m.free[i]
		if !m.onList[pfn] {
			return pfn, true
		}
	}
	return 0, false
}

// PushCleared records that the idle task cleared the frame, making it
// eligible for the GetFreePage fast path. The frame stays on the free
// list; the cleared list is an overlay, mirroring the paper's lock-free
// list of pre-cleared pages.
func (m *Memory) PushCleared(pfn arch.PFN) {
	if m.inUse[pfn] || m.onList[pfn] {
		return
	}
	m.onList[pfn] = true
	m.cleared = append(m.cleared, pfn)
	m.stats.IdleCleared++
}

// ClearedLen returns how many pre-cleared pages are banked.
func (m *Memory) ClearedLen() int { return len(m.cleared) }

// GetFreePage is the kernel's get_free_page(): it prefers a pre-cleared
// frame (fast path — "the only overhead is a check to see if there are
// any pre-cleared pages available", §9) and otherwise allocates a frame
// the caller must clear. cleared reports whether the returned frame was
// pre-cleared.
func (m *Memory) GetFreePage() (pfn arch.PFN, cleared, ok bool) {
	for len(m.cleared) > 0 {
		pfn = m.cleared[len(m.cleared)-1]
		m.cleared = m.cleared[:len(m.cleared)-1]
		m.onList[pfn] = false
		if m.inUse[pfn] {
			continue // frame was grabbed by AllocFrame since clearing
		}
		// Remove it from the free stack.
		for i := len(m.free) - 1; i >= 0; i-- {
			if m.free[i] == pfn {
				m.free = append(m.free[:i], m.free[i+1:]...)
				break
			}
		}
		m.inUse[pfn] = true
		m.stats.Allocated++
		m.stats.ClearedHits++
		return pfn, true, true
	}
	m.stats.ClearedMisses++
	pfn, ok = m.AllocFrame()
	return pfn, false, ok
}

// HTABFrames returns the physical frames occupied by the hash table,
// for mapping purposes.
func (m *Memory) HTABFrames() (first, count arch.PFN) {
	return m.layout.HTABBase.Frame(), arch.PFN(m.layout.HTABBytes / arch.PageSize)
}
