package mmud

import (
	"testing"
	"time"
)

// TestBackoffScheduleDeterministic pins the retry backoff contract:
// the schedule is a pure function of the seed, every sleep lies in
// [base, cap], and distinct seeds decorrelate.
func TestBackoffScheduleDeterministic(t *testing.T) {
	const base, cap = 50 * time.Millisecond, 2 * time.Second
	cases := []struct {
		name   string
		seed   uint64
		sleeps int
	}{
		{"seed0", 0, 8},
		{"seed42", 42, 8},
		{"seed-big", 0xdeadbeefcafe, 5},
		{"one-sleep", 7, 1},
	}
	for _, tc := range cases {
		a := backoffSchedule(tc.seed, tc.sleeps, base, cap)
		b := backoffSchedule(tc.seed, tc.sleeps, base, cap)
		if len(a) != tc.sleeps {
			t.Fatalf("%s: got %d sleeps, want %d", tc.name, len(a), tc.sleeps)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: sleep %d not deterministic: %v vs %v", tc.name, i, a[i], b[i])
			}
			if a[i] < base || a[i] > cap {
				t.Errorf("%s: sleep %d = %v outside [%v, %v]", tc.name, i, a[i], base, cap)
			}
		}
	}
	// Decorrelation: seeds 0 and 42 should not produce the same
	// schedule (the draws come from independent DeriveSeed streams).
	a := backoffSchedule(0, 8, base, cap)
	b := backoffSchedule(42, 8, base, cap)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 0 and 42 produced identical schedules")
	}
}

// TestBackoffScheduleEdgeCases covers degenerate parameters: no
// sleeps, zero base, cap below base.
func TestBackoffScheduleEdgeCases(t *testing.T) {
	if got := backoffSchedule(1, 0, time.Second, time.Second); got != nil {
		t.Errorf("0 sleeps: got %v, want nil", got)
	}
	for _, d := range backoffSchedule(1, 4, 0, 0) {
		if d < time.Millisecond {
			t.Errorf("zero base: sleep %v below the 1ms floor", d)
		}
		if d > time.Millisecond {
			t.Errorf("cap below base: sleep %v above the clamped cap", d)
		}
	}
}
