package mmud

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"mmutricks/internal/clock"
)

// Config sizes the daemon. The zero value is serviceable: every field
// has a default chosen for the Quick-scale experiments the smoke
// tests drive.
type Config struct {
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected 429. <=0 means 64.
	QueueDepth int
	// ClientInflight caps one client's queued+running jobs; beyond it
	// the client's submissions are rejected 429. <=0 means 8.
	ClientInflight int
	// Workers is the job-worker count: 0 means GOMAXPROCS, negative
	// means none — an admission-only daemon whose queue is drained by
	// a later process via the journal (the replay tests and the CI
	// drain smoke run this mode so the queue contents are exact).
	Workers int
	// MaxAttempts caps attempts per job (retries happen only for
	// panic failures). <=0 means 3.
	MaxAttempts int
	// BackoffBase/BackoffCap bound the decorrelated-jitter retry
	// backoff. Zero means 50ms / 2s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BudgetCycles is the default per-attempt simulated-cycle budget
	// (a spec may set its own, but never zero/unlimited). Zero means
	// 1<<40 — the report harness's watchdog value.
	BudgetCycles clock.Cycles
	// WallTimeout is the default per-attempt wall-clock timeout. Zero
	// means 2 minutes.
	WallTimeout time.Duration
	// DrainTimeout bounds Drain: in-flight attempts still running when
	// it expires are cancelled (classified canceled/timeout). Zero
	// means 10 seconds.
	DrainTimeout time.Duration
	// JournalPath enables the crash journal. Empty means no journal
	// (submissions are lost on restart).
	JournalPath string
	// Runners registers extra job kinds (tests inject panicky ones).
	Runners map[string]Runner
	// Sleep replaces the backoff sleep (tests collect the schedule
	// instead of waiting). Nil means a real timer that drain's hard
	// kill cuts short.
	Sleep func(time.Duration)
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.ClientInflight <= 0 {
		c.ClientInflight = 8
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 2 * time.Second
	}
	if c.BudgetCycles == 0 {
		c.BudgetCycles = 1 << 40
	}
	if c.WallTimeout <= 0 {
		c.WallTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
}

// stats are the /statsz counters, guarded by the server mutex.
type stats struct {
	Submitted         uint64            `json:"submitted"`
	RejectedQueueFull uint64            `json:"rejected_queue_full"`
	RejectedClientCap uint64            `json:"rejected_client_cap"`
	RejectedDraining  uint64            `json:"rejected_draining"`
	Started           uint64            `json:"started"`
	Retries           uint64            `json:"retries"`
	Done              uint64            `json:"done"`
	Failed            map[string]uint64 `json:"failed"`
	CacheEntries      int               `json:"cache_entries"`
	CacheHits         uint64            `json:"cache_hits"`
	QueueDepth        int               `json:"queue_depth"`
	Running           int               `json:"running"`
	Draining          bool              `json:"draining"`
	Replayed          int               `json:"replayed"`
	// SimCycles is the process cycle-meter delta since the server
	// started: the total simulated work the daemon's jobs charged.
	SimCycles uint64 `json:"sim_cycles"`
}

// Server is the mmud daemon core: admission, queue, workers, retry,
// journal, cache, drain. It is plain library code — cmd/mmud wires it
// to an HTTP listener and signals.
type Server struct {
	cfg Config //mmutricks:unsync immutable after New returns

	mu         sync.Mutex
	cond       *sync.Cond
	jobs       map[string]*Job //mmutricks:guarded-by(mu)
	queue      []*Job          //mmutricks:guarded-by(mu)
	clientLoad map[string]int  //mmutricks:guarded-by(mu)
	running    int             //mmutricks:guarded-by(mu)
	draining   bool            //mmutricks:guarded-by(mu)
	seq        uint64          //mmutricks:guarded-by(mu)
	st         stats           //mmutricks:guarded-by(mu)

	baseCtx context.Context    //mmutricks:unsync immutable after New returns
	kill    context.CancelFunc //mmutricks:unsync immutable after New returns
	wg      sync.WaitGroup

	drainGate  sync.Once
	drainClean bool //mmutricks:unsync written inside drainGate.Do; read only after Drain returns (Once happens-before)

	journal    *Journal     //mmutricks:unsync set in New before publication; Journal locks internally
	cache      *resultCache //mmutricks:unsync set in New before publication; resultCache locks internally
	budgets    *budgetGuard //mmutricks:unsync set in New before publication; budgetGuard locks internally
	meterStart uint64       //mmutricks:unsync set in New before publication, read-only after
}

// New builds a server, replaying the journal (if configured) into the
// queue, and starts its workers.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{
		cfg:        cfg,
		jobs:       map[string]*Job{},
		clientLoad: map[string]int{},
		cache:      newResultCache(),
		budgets:    newBudgetGuard(),
		meterStart: clock.MeterNow(),
		st:         stats{Failed: map[string]uint64{}},
		seq:        1,
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.kill = context.WithCancel(context.Background())
	if cfg.JournalPath != "" {
		j, replayed, nextSeq, err := OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.journal = j
		s.seq = nextSeq //mmutricks:guardedby-ok constructor: s not yet published, no worker started
		for _, r := range replayed {
			job := &Job{ID: r.ID, Seq: r.Seq, Spec: r.Spec, State: StateQueued, CacheKey: r.Spec.CacheKey()}
			s.jobs[job.ID] = job            //mmutricks:guardedby-ok constructor: s not yet published, no worker started
			s.queue = append(s.queue, job)  //mmutricks:guardedby-ok constructor: s not yet published, no worker started
			s.clientLoad[job.Spec.Client]++ //mmutricks:guardedby-ok constructor: s not yet published, no worker started
		}
		s.st.Replayed = len(replayed) //mmutricks:guardedby-ok constructor: s not yet published, no worker started
		if len(replayed) > 0 {
			s.logf("journal replay: requeued %d unfinished jobs", len(replayed))
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Submit admits a job (or serves it from cache) and returns its
// record. The error is an admissionError carrying the HTTP status.
func (s *Server) Submit(spec Spec) (Job, error) {
	spec.normalize()
	if err := spec.validate(s.cfg.Runners); err != nil {
		return Job{}, &admissionError{status: http.StatusBadRequest, msg: err.Error()}
	}
	key := spec.CacheKey()

	s.mu.Lock()
	if s.draining {
		s.st.RejectedDraining++
		s.mu.Unlock()
		return Job{}, &admissionError{status: http.StatusServiceUnavailable, msg: "draining: not admitting jobs"}
	}
	if body, ok := s.cache.get(key); ok {
		// Content-addressed hit: the result already exists, so the job
		// completes at admission with the original bytes, no attempt
		// run, no queue slot held.
		id, seq := s.nextID()
		job := &Job{ID: id, Seq: seq, Spec: spec, State: StateDone,
			CacheKey: key, CacheHit: true, result: body}
		s.jobs[job.ID] = job
		s.st.Submitted++
		s.st.Done++
		s.mu.Unlock()
		if err := s.journalPair(job); err != nil {
			return Job{}, err
		}
		s.logf("job %s %s cache-hit (%s)", job.ID, spec.Kind, key[:12])
		return *job, nil
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.st.RejectedQueueFull++
		s.mu.Unlock()
		return Job{}, &admissionError{status: http.StatusTooManyRequests,
			msg: fmt.Sprintf("queue full (%d queued)", s.cfg.QueueDepth), retryAfter: true}
	}
	if s.clientLoad[spec.Client] >= s.cfg.ClientInflight {
		s.st.RejectedClientCap++
		s.mu.Unlock()
		return Job{}, &admissionError{status: http.StatusTooManyRequests,
			msg: fmt.Sprintf("client %q at in-flight cap (%d)", spec.Client, s.cfg.ClientInflight), retryAfter: true}
	}
	id, seq := s.nextID()
	job := &Job{ID: id, Seq: seq, Spec: spec, State: StateQueued, CacheKey: key}
	s.mu.Unlock()

	// Durability before acknowledgement: the submit record is fsynced
	// before the job becomes visible, so an acknowledged job survives
	// a crash (replay requeues it).
	if err := s.journal.append(journalRecord{Seq: job.Seq, Event: evSubmit, ID: job.ID, Spec: &job.Spec}); err != nil {
		return Job{}, &admissionError{status: http.StatusInternalServerError, msg: fmt.Sprintf("journal: %v", err)}
	}

	s.mu.Lock()
	s.jobs[job.ID] = job
	s.queue = append(s.queue, job)
	s.clientLoad[spec.Client]++
	s.st.Submitted++
	snapshot := *job // copied under the lock: a worker may mutate the job the moment it is queued
	s.mu.Unlock()
	s.cond.Signal()
	s.logf("job %s %s queued (%s)", job.ID, spec.Kind, key[:12])
	return snapshot, nil
}

// journalPair writes submit+finish for a job that completed at
// admission (cache hit), keeping the journal's submit/finish pairing
// invariant so replay never requeues it.
func (s *Server) journalPair(job *Job) error {
	if err := s.journal.append(journalRecord{Seq: job.Seq, Event: evSubmit, ID: job.ID, Spec: &job.Spec}); err != nil {
		return &admissionError{status: http.StatusInternalServerError, msg: fmt.Sprintf("journal: %v", err)}
	}
	if err := s.journal.append(journalRecord{Seq: job.Seq, Event: evFinish, ID: job.ID, State: StateDone, CacheHit: true}); err != nil {
		return &admissionError{status: http.StatusInternalServerError, msg: fmt.Sprintf("journal: %v", err)}
	}
	return nil
}

// nextID allocates the next seq and its job ID. Callers hold s.mu.
func (s *Server) nextID() (string, uint64) {
	seq := s.seq
	s.seq++
	return fmt.Sprintf("j-%06d", seq), seq
}

// Job returns a copy of the job record.
func (s *Server) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Result returns a finished job's result body.
func (s *Server) Result(id string) ([]byte, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, "", false
	}
	return j.result, j.State, true
}

// Stats snapshots the /statsz counters.
func (s *Server) Stats() stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st
	st.Failed = map[string]uint64{}
	for k, v := range s.st.Failed { //mmutricks:nondet-ok snapshot copy; JSON encoding sorts the keys
		st.Failed[k] = v
	}
	st.CacheEntries, st.CacheHits = s.cache.stats()
	st.QueueDepth = len(s.queue)
	st.Running = s.running
	st.Draining = s.draining
	st.SimCycles = clock.MeterNow() - s.meterStart
	return st
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// worker pulls queued jobs until drain. It is a method value (not a
// closure) on purpose: all its state lives behind the server mutex.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		job := s.next()
		if job == nil {
			return
		}
		s.run(job)
	}
}

// next blocks for the next queued job, or nil once draining: a
// draining daemon finishes what is running but starts nothing new, so
// still-queued jobs stay in the journal for the next start to replay.
func (s *Server) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.draining {
		s.cond.Wait()
	}
	if s.draining {
		return nil
	}
	job := s.queue[0]
	s.queue = s.queue[1:]
	job.State = StateRunning
	s.running++
	s.st.Started++
	return job
}

// run drives one job through its attempts, retrying panics with the
// seeded backoff schedule, and settles it done or failed. The daemon
// itself never fails here: every runner outcome is contained.
func (s *Server) run(job *Job) {
	backoff := backoffSchedule(job.Spec.Seed, s.cfg.MaxAttempts-1, s.cfg.BackoffBase, s.cfg.BackoffCap)
	budget := s.cfg.BudgetCycles
	if job.Spec.BudgetCycles != 0 {
		budget = clock.Cycles(job.Spec.BudgetCycles)
	}
	timeout := s.cfg.WallTimeout
	if job.Spec.TimeoutMS > 0 {
		timeout = time.Duration(job.Spec.TimeoutMS) * time.Millisecond
	}
	r := s.runner(job.Spec.Kind)

	var body []byte
	var reason string
	var err error
	for a := 1; a <= s.cfg.MaxAttempts; a++ {
		ev := evStart
		if a > 1 {
			ev = evRetry
		}
		if jerr := s.journal.append(journalRecord{Seq: job.Seq, Event: ev, ID: job.ID, Attempt: a}); jerr != nil {
			s.logf("job %s: journal: %v", job.ID, jerr)
		}
		s.mu.Lock()
		job.Attempts = a
		if a > 1 {
			s.st.Retries++
		}
		s.mu.Unlock()

		var cycles uint64
		body, reason, err, cycles = s.runAttempt(r, job.Spec, budget, timeout)
		s.mu.Lock()
		job.SimCycles += cycles
		s.mu.Unlock()
		if reason != "panic" || a == s.cfg.MaxAttempts {
			break
		}
		s.logf("job %s attempt %d panicked; backing off %v", job.ID, a, backoff[a-1])
		s.sleep(backoff[a-1])
		if s.baseCtx.Err() != nil {
			// Hard kill during backoff: settle as canceled rather than
			// burning an attempt that would be cancelled immediately.
			reason, err = "canceled", fmt.Errorf("job %s canceled during retry backoff", job.ID)
			break
		}
	}
	s.settle(job, body, reason, err)
}

// runAttempt runs one attempt under the budget guard, the wall-clock
// timeout, and the panic containment wrapper, attributing the cycle
// meter delta to the attempt (exact only when one job runs at a
// time; concurrent jobs bleed into each other's readings).
func (s *Server) runAttempt(r Runner, spec Spec, budget clock.Cycles, timeout time.Duration) ([]byte, string, error, uint64) {
	release := s.budgets.acquire(budget)
	defer release()
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	before := clock.MeterNow()
	body, reason, err := s.attempt(ctx, r, spec)
	return body, reason, err, clock.MeterNow() - before
}

// settle records a job's final state, journals the finish, and
// releases its admission slot.
func (s *Server) settle(job *Job, body []byte, reason string, err error) {
	state := StateDone
	if reason != "" {
		state = StateFailed
	}
	if jerr := s.journal.append(journalRecord{Seq: job.Seq, Event: evFinish, ID: job.ID, State: state, Reason: reason}); jerr != nil {
		s.logf("job %s: journal: %v", job.ID, jerr)
	}
	s.mu.Lock()
	job.State = state
	job.FailReason = reason
	if err != nil {
		job.Error = err.Error()
	}
	job.result = body
	s.running--
	s.clientLoad[job.Spec.Client]--
	if s.clientLoad[job.Spec.Client] <= 0 {
		delete(s.clientLoad, job.Spec.Client)
	}
	if state == StateDone {
		s.st.Done++
		s.cache.put(job.CacheKey, body)
	} else {
		s.st.Failed[reason]++
	}
	s.mu.Unlock()
	if state == StateDone {
		s.logf("job %s done after %d attempt(s)", job.ID, job.Attempts)
	} else {
		s.logf("job %s failed(%s) after %d attempt(s)", job.ID, reason, job.Attempts)
	}
}

// sleep waits d, cut short by the drain hard-kill, unless the config
// injected a deterministic replacement.
func (s *Server) sleep(d time.Duration) {
	if s.cfg.Sleep != nil {
		s.cfg.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.baseCtx.Done():
	}
}

// Drain shuts the service down gracefully: stop admitting, stop
// starting queued jobs, wait for in-flight attempts up to the drain
// timeout, then cancel them (they settle failed(canceled)), and close
// the journal. Queued-but-unstarted jobs stay journalled as
// submit-without-finish, so the next start replays them. Drain is
// idempotent (sync.Once; concurrent callers block until the first
// finishes) and returns true if everything in flight finished without
// the hard kill.
func (s *Server) Drain() bool {
	s.drainGate.Do(s.doDrain)
	return s.drainClean
}

func (s *Server) doDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.logf("draining: admission closed, waiting up to %v for in-flight jobs", s.cfg.DrainTimeout)

	done := make(chan struct{})
	go s.awaitWorkers(done)
	clean := true
	t := time.NewTimer(s.cfg.DrainTimeout)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
		clean = false
		s.logf("drain timeout: cancelling in-flight jobs")
		s.kill()
		<-done
	}
	s.kill() // release the context either way
	if err := s.journal.Close(); err != nil {
		s.logf("journal close: %v", err)
		clean = false
	}
	s.logf("drained (clean=%v)", clean)
	s.drainClean = clean
}

// awaitWorkers signals done once every worker has exited. A method
// value so the drain path stays closure-free for the determinism
// pass.
func (s *Server) awaitWorkers(done chan struct{}) {
	s.wg.Wait()
	close(done)
}

// admissionError is a rejection with an HTTP status.
type admissionError struct {
	status     int
	msg        string
	retryAfter bool
}

func (e *admissionError) Error() string { return e.msg }

// Handler returns the daemon's HTTP API:
//
//	POST /jobs             submit a Spec; 202 + job record (200 on cache hit)
//	GET  /jobs/{id}        job record
//	GET  /jobs/{id}/result finished job's result body
//	GET  /healthz          process liveness (always 200)
//	GET  /readyz           admission readiness (503 while draining)
//	GET  /statsz           counters, queue depth, cycle attribution
//	POST /drain            begin graceful drain (202; returns at once)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("POST /drain", s.handleDrain)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad spec: %v", err))
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		ae, ok := err.(*admissionError)
		if !ok {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if ae.retryAfter {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, ae.status, ae.msg)
		return
	}
	status := http.StatusAccepted
	if job.CacheHit {
		status = http.StatusOK
	}
	writeJSON(w, status, job)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	body, state, ok := s.Result(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	case StateFailed:
		httpError(w, http.StatusConflict, "job failed; see the job record")
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusAccepted, "job not finished")
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	go s.drainBg()
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, "draining")
}

// drainBg is the goroutine body behind POST /drain (a method value,
// not a closure).
func (s *Server) drainBg() { s.Drain() }

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
