package mmud

import (
	"sync"

	"mmutricks/internal/clock"
)

// budgetGuard maps per-job cycle budgets onto the process-wide ledger
// default (clock.SetDefaultBudget): while any attempts are active the
// default is the minimum of their budgets, and when the last one
// releases the previous default is restored.
//
// Ledgers capture the default at creation, so the mapping is
// conservative, never loose: an attempt's ledgers get at most its own
// budget, and possibly less while a tighter-budgeted job overlaps. A
// tighter-than-requested trip still classifies as cycle-budget and is
// honest — the job exceeded a budget the operator configured. Exact
// per-job attribution would need ledger tagging; the daemon prefers
// the invariant "no attempt ever runs looser than its budget".
type budgetGuard struct {
	mu     sync.Mutex
	active map[uint64]clock.Cycles //mmutricks:guarded-by(mu)
	next   uint64                  //mmutricks:guarded-by(mu)
	saved  clock.Cycles            //mmutricks:guarded-by(mu)
}

func newBudgetGuard() *budgetGuard {
	return &budgetGuard{active: map[uint64]clock.Cycles{}}
}

// acquire registers an attempt's budget (must be > 0) and installs the
// new minimum as the ledger default. The returned release must be
// called when the attempt ends.
func (g *budgetGuard) acquire(budget clock.Cycles) (release func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.active) == 0 {
		g.saved = clock.SetDefaultBudget(budget)
	} else {
		clock.SetDefaultBudget(g.min(budget))
	}
	tok := g.next
	g.next++
	g.active[tok] = budget
	return func() {
		g.mu.Lock()
		defer g.mu.Unlock()
		delete(g.active, tok)
		if len(g.active) == 0 {
			clock.SetDefaultBudget(g.saved)
		} else {
			clock.SetDefaultBudget(g.min(0))
		}
	}
}

// min returns the smallest active budget, also considering extra when
// it is nonzero. Callers hold g.mu.
func (g *budgetGuard) min(extra clock.Cycles) clock.Cycles {
	m := extra
	for _, b := range g.active { //mmutricks:nondet-ok min over a set is order-independent
		if m == 0 || b < m {
			m = b
		}
	}
	return m
}
