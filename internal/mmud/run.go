package mmud

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"

	"mmutricks/internal/chaos"
	"mmutricks/internal/report"
	"mmutricks/internal/tracerec"
)

// Runner executes one job kind and returns the deterministic result
// body. A Runner may panic (budget trips, cancellation, and bugs all
// arrive as panics); the attempt wrapper contains and classifies it.
// An error return fails the job without retry; wrap it in a
// ReasonError to pick the failure class.
type Runner func(ctx context.Context, spec Spec) ([]byte, error)

// ReasonError attaches a failure class ("audit", "config", ...) to a
// runner error so the job record and /statsz can distinguish a chaos
// audit failure from a bad option from an engine bug.
type ReasonError struct {
	Reason string
	Err    error
}

func (e *ReasonError) Error() string { return fmt.Sprintf("%s: %v", e.Reason, e.Err) }
func (e *ReasonError) Unwrap() error { return e.Err }

// runner resolves the spec's kind to its Runner.
func (s *Server) runner(kind string) Runner {
	if r, ok := s.cfg.Runners[kind]; ok {
		return r
	}
	switch kind {
	case "experiment":
		return runExperiment
	case "trace":
		return runTrace
	case "chaos":
		return runChaos
	}
	return nil
}

// runExperiment renders one registry experiment, exactly the bytes
// `mmureport -experiment` prints. RunOne already contains panics into
// a classified RunResult, so re-raise the failure class for the
// attempt wrapper rather than inventing a second classification path.
func runExperiment(ctx context.Context, spec Spec) ([]byte, error) {
	e, ok := report.Find(spec.Experiment)
	if !ok {
		return nil, &ReasonError{Reason: "config", Err: fmt.Errorf("unknown experiment %q", spec.Experiment)}
	}
	r := report.RunOne(ctx, e, spec.scale())
	if r.Err != nil {
		panic(&contained{reason: r.FailReason, err: r.Err})
	}
	return []byte(r.Table.Render() + "\n"), nil
}

// runTrace records a workload trace, exactly the bytes `mmutrace -o`
// writes.
func runTrace(ctx context.Context, spec Spec) ([]byte, error) {
	rec, err := tracerec.Record(ctx, tracerec.RecordOptions{
		Workload: spec.Workload,
		CPU:      spec.CPU,
		Config:   spec.Config,
		Iters:    spec.Iters,
	})
	if err != nil {
		return nil, &ReasonError{Reason: "config", Err: err}
	}
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// runChaos soaks the machine under fault injection, exactly the bytes
// `mmuchaos -o` writes. A failed audit fails the job with reason
// "audit" (mirroring mmuchaos exit code 5) — deterministic, so not
// retried and not cached.
func runChaos(ctx context.Context, spec Spec) ([]byte, error) {
	rep, err := chaos.Run(ctx, chaos.Options{
		Workload: spec.Workload,
		CPU:      spec.CPU,
		Config:   spec.Config,
		Iters:    spec.Iters,
		Schedule: spec.Schedule,
	})
	if err != nil {
		return nil, &ReasonError{Reason: "config", Err: err}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if !rep.OK {
		return nil, &ReasonError{Reason: "audit", Err: fmt.Errorf("chaos audit failed: %d sections", len(rep.Sections))}
	}
	return data, nil
}

// contained is the panic value runExperiment re-raises when RunOne
// already contained and classified a failure, so the attempt wrapper
// keeps the classification instead of re-deriving it from a
// stringified panic.
type contained struct {
	reason string
	err    error
}

// attempt runs one attempt of a job under the panic-containment
// contract: whatever the runner does, attempt returns. reason is ""
// on success and the failure class otherwise.
func (s *Server) attempt(ctx context.Context, r Runner, spec Spec) (body []byte, reason string, err error) {
	defer func() {
		if p := recover(); p != nil {
			if c, ok := p.(*contained); ok {
				reason, err = c.reason, c.err
				return
			}
			reason = report.FailureReason(p)
			err = fmt.Errorf("job %s: %v\n%s", reason, p, debug.Stack())
		}
	}()
	body, err = r(ctx, spec)
	if err != nil {
		var re *ReasonError
		if errors.As(err, &re) {
			return nil, re.Reason, err
		}
		return nil, "error", err
	}
	return body, "", nil
}
