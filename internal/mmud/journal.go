package mmud

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// The journal is the daemon's crash-tolerance spine: one JSONL record
// per job-lifecycle event, appended and fsynced before the event takes
// effect anywhere a client could observe it. Replay is a pure fold
// over the records — a job whose submit has no finish was lost
// mid-flight (crash, hard kill, or drained while queued) and is
// requeued in seq order, so a restarted daemon picks up exactly the
// work the previous process accepted but never completed.
//
// Crash tolerance at the byte level: a torn final line (the process
// died mid-append) is detected and dropped; a corrupt interior line is
// an error, because it means something other than a crash wrote the
// file.

// Journal event names.
const (
	evSubmit = "submit"
	evStart  = "start"
	evRetry  = "retry"
	evFinish = "finish"
)

// journalRecord is one JSONL line.
type journalRecord struct {
	Seq   uint64 `json:"seq"`
	Event string `json:"event"`
	ID    string `json:"id"`
	// Spec rides on submit records only — replay rebuilds the job
	// from it.
	Spec *Spec `json:"spec,omitempty"`
	// Attempt rides on start/retry records.
	Attempt int `json:"attempt,omitempty"`
	// State ("done"/"failed") and Reason ride on finish records.
	State  string `json:"state,omitempty"`
	Reason string `json:"reason,omitempty"`
	// CacheHit marks a finish served from the result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// Journal appends job-lifecycle records to a JSONL file, fsyncing
// each so an acknowledged submit survives a crash.
type Journal struct {
	mu sync.Mutex
	f  *os.File //mmutricks:guarded-by(mu)
}

// ReplayedJob is a submitted-but-never-finished job recovered from
// the journal, in submission (seq) order.
type ReplayedJob struct {
	Seq  uint64
	ID   string
	Spec Spec
}

// OpenJournal opens (creating if absent) the journal at path, replays
// its records, and returns the journal positioned for appending, the
// jobs to requeue, and the next free seq number.
func OpenJournal(path string) (*Journal, []ReplayedJob, uint64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	replayed, nextSeq, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("mmud: journal %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return &Journal{f: f}, replayed, nextSeq, nil
}

// replay folds the journal into the set of unfinished jobs. The final
// line may be torn (no trailing newline, or truncated JSON): that is
// the signature of dying mid-append and the line is dropped. A
// malformed interior line is corruption and fails the replay.
func replay(r io.Reader) ([]ReplayedJob, uint64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	type lineRec struct {
		rec  journalRecord
		err  error
		line int
	}
	var lines []lineRec
	n := 0
	for sc.Scan() {
		n++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec journalRecord
		err := json.Unmarshal(raw, &rec)
		lines = append(lines, lineRec{rec: rec, err: err, line: n})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	submitted := map[uint64]*ReplayedJob{}
	var nextSeq uint64 = 1
	for i, l := range lines {
		if l.err != nil {
			if i == len(lines)-1 {
				break // torn final line: the crash we exist to tolerate
			}
			return nil, 0, fmt.Errorf("corrupt record on line %d: %v", l.line, l.err)
		}
		rec := l.rec
		if rec.Seq >= nextSeq {
			nextSeq = rec.Seq + 1
		}
		switch rec.Event {
		case evSubmit:
			if rec.Spec == nil {
				return nil, 0, fmt.Errorf("submit record on line %d has no spec", l.line)
			}
			submitted[rec.Seq] = &ReplayedJob{Seq: rec.Seq, ID: rec.ID, Spec: *rec.Spec}
		case evFinish:
			delete(submitted, rec.Seq)
		case evStart, evRetry:
			// Attempt markers carry no replay state: an attempt that
			// started but never finished is still unfinished work.
		default:
			return nil, 0, fmt.Errorf("unknown event %q on line %d", rec.Event, l.line)
		}
	}
	out := make([]ReplayedJob, 0, len(submitted))
	for _, j := range submitted { //mmutricks:nondet-ok order restored by the seq sort below
		out = append(out, *j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nextSeq, nil
}

// append writes one record and fsyncs. The caller must not expose the
// event's effect (e.g. acknowledge a submit) until append returns.
func (j *Journal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
