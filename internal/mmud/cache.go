package mmud

import "sync"

// resultCache is the content-addressed store of successful result
// bodies, keyed by Spec.CacheKey. Only successes are cached: the
// runners are deterministic, so a success's bytes are THE answer for
// that key, while a failure may be environmental (budget, timeout,
// drain) and deserves a fresh run. The cache is in-memory only — a
// restart recomputes, which the determinism contract makes safe.
type resultCache struct {
	mu   sync.Mutex
	m    map[string][]byte //mmutricks:guarded-by(mu)
	hits uint64            //mmutricks:guarded-by(mu)
}

func newResultCache() *resultCache {
	return &resultCache{m: map[string][]byte{}}
}

// get returns the cached body for key, if any, counting the hit.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, ok := c.m[key]
	if ok {
		c.hits++
	}
	return body, ok
}

// put stores a successful result body. First write wins: a concurrent
// duplicate computed the same bytes anyway.
func (c *resultCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; !ok {
		c.m[key] = body
	}
}

// stats returns (entries, hits).
func (c *resultCache) stats() (int, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m), c.hits
}
