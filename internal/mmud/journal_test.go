package mmud

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJournalReplayRequeuesUnfinished is the crash-recovery fold: a
// journal holding submits with and without finishes replays exactly
// the unfinished jobs, in seq order, with the next seq continuing
// past everything seen.
func TestJournalReplayRequeuesUnfinished(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, replayed, nextSeq, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 || nextSeq != 1 {
		t.Fatalf("fresh journal: replayed=%d nextSeq=%d", len(replayed), nextSeq)
	}
	specA := Spec{Kind: "experiment", Experiment: "figure1", Scale: "quick"}
	specB := Spec{Kind: "chaos", Workload: "escalate", CPU: "604/185", Config: "optimized", Iters: 9, Schedule: "seed=7"}
	recs := []journalRecord{
		{Seq: 1, Event: evSubmit, ID: "j-000001", Spec: &specA},
		{Seq: 2, Event: evSubmit, ID: "j-000002", Spec: &specB},
		{Seq: 1, Event: evStart, ID: "j-000001", Attempt: 1},
		{Seq: 1, Event: evFinish, ID: "j-000001", State: StateDone},
		{Seq: 3, Event: evSubmit, ID: "j-000003", Spec: &specA},
		{Seq: 2, Event: evStart, ID: "j-000002", Attempt: 1},
		{Seq: 2, Event: evRetry, ID: "j-000002", Attempt: 2},
	}
	for _, r := range recs {
		if err := j.append(r); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the process "crashed" with the file fsynced per record.

	_, replayed, nextSeq, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if nextSeq != 4 {
		t.Errorf("nextSeq = %d, want 4", nextSeq)
	}
	if len(replayed) != 2 {
		t.Fatalf("replayed %d jobs, want 2 (seq 2 mid-retry, seq 3 never started)", len(replayed))
	}
	if replayed[0].Seq != 2 || replayed[0].ID != "j-000002" || replayed[0].Spec != specB {
		t.Errorf("replayed[0] = %+v, want seq 2 with the chaos spec", replayed[0])
	}
	if replayed[1].Seq != 3 || replayed[1].Spec != specA {
		t.Errorf("replayed[1] = %+v, want seq 3 with the experiment spec", replayed[1])
	}
}

// TestJournalTornFinalLine: dying mid-append leaves a truncated last
// line; replay drops it and recovers everything before it. The same
// corruption anywhere else is an error.
func TestJournalTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Kind: "experiment", Experiment: "figure1", Scale: "quick"}
	if err := j.append(journalRecord{Seq: 1, Event: evSubmit, ID: "j-000001", Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":2,"event":"submit","id":"j-0000`) // torn mid-record
	f.Close()

	_, replayed, nextSeq, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn final line should replay cleanly: %v", err)
	}
	if len(replayed) != 1 || replayed[0].Seq != 1 {
		t.Fatalf("replayed %+v, want just seq 1", replayed)
	}
	if nextSeq != 2 {
		t.Errorf("nextSeq = %d, want 2 (the torn record never happened)", nextSeq)
	}

	// Now make the torn line interior: append a valid record after it.
	f, _ = os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString("\n" + `{"seq":3,"event":"submit","id":"j-000003","spec":{"kind":"experiment","experiment":"figure1","scale":"quick"}}` + "\n")
	f.Close()
	if _, _, _, err := OpenJournal(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("interior corruption should fail replay, got %v", err)
	}
}

// TestJournalCrashReplayByteIdenticalQueue drives the recovery path
// through the server: submit jobs to an admission-only daemon, crash
// it (no drain), restart on the same journal, and require the
// replayed queue to match the original submissions byte for byte
// (IDs, seqs, canonical spec JSON, cache keys).
func TestJournalCrashReplayByteIdenticalQueue(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	s1, err := New(Config{Workers: -1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{Kind: "experiment", Experiment: "figure1", Client: "alice"},
		{Kind: "trace", Workload: "lmbench", Iters: 5, Client: "bob"},
		{Kind: "chaos", Workload: "escalate", Iters: 9, Seed: 3, Client: "alice"},
	}
	var submitted []Job
	for _, sp := range specs {
		job, err := s1.Submit(sp)
		if err != nil {
			t.Fatalf("submit %+v: %v", sp, err)
		}
		submitted = append(submitted, job)
	}
	// Crash: the server is dropped without Drain, so the journal holds
	// three submits and no finishes.

	s2, err := New(Config{Workers: -1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	st := s2.Stats()
	if st.Replayed != 3 || st.QueueDepth != 3 {
		t.Fatalf("replayed=%d queue=%d, want 3/3", st.Replayed, st.QueueDepth)
	}
	for _, want := range submitted {
		got, ok := s2.Job(want.ID)
		if !ok {
			t.Fatalf("job %s lost across the crash", want.ID)
		}
		if got.Seq != want.Seq || got.State != StateQueued {
			t.Errorf("job %s: seq=%d state=%s, want seq=%d queued", want.ID, got.Seq, got.State, want.Seq)
		}
		if got.Spec != want.Spec {
			t.Errorf("job %s spec changed across replay:\n got %+v\nwant %+v", want.ID, got.Spec, want.Spec)
		}
		if got.CacheKey != want.CacheKey {
			t.Errorf("job %s cache key changed across replay: %s vs %s", want.ID, got.CacheKey, want.CacheKey)
		}
	}
	// New submissions continue the seq space past the replayed jobs.
	job, err := s2.Submit(Spec{Kind: "experiment", Experiment: "table1", Client: "carol"})
	if err != nil {
		t.Fatal(err)
	}
	if job.Seq != 4 || job.ID != "j-000004" {
		t.Errorf("post-replay submission got seq %d id %s, want 4 / j-000004", job.Seq, job.ID)
	}
}
