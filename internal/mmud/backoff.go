package mmud

import (
	"time"

	"mmutricks/internal/faultinject"
)

// backoffSchedule returns the sleep before each retry (sleeps entries,
// one per retry) as decorrelated jitter: each sleep is drawn from
// [base, prev*3] and clamped to cap, with the draws taken from the
// job-seeded faultinject.DeriveSeed stream. The schedule is therefore
// a pure function of (seed, sleeps, base, cap) — deterministic across
// runs and replay, bounded above by cap — while still spreading
// synchronized retries apart like randomized jitter would.
func backoffSchedule(seed uint64, sleeps int, base, cap time.Duration) []time.Duration {
	if sleeps <= 0 {
		return nil
	}
	if base <= 0 {
		base = time.Millisecond
	}
	if cap < base {
		cap = base
	}
	out := make([]time.Duration, sleeps)
	prev := base
	for i := range out {
		span := 3*prev - base
		if span < 1 {
			span = 1
		}
		d := base + time.Duration(faultinject.DeriveSeed(seed, uint64(i+1))%uint64(span))
		if d > cap {
			d = cap
		}
		out[i] = d
		prev = d
	}
	return out
}
