package mmud

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mmutricks/internal/clock"
	"mmutricks/internal/report"
)

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, s *Server, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if j.State == StateDone || j.State == StateFailed {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return Job{}
}

// flakyRunner panics on the first failures calls, then succeeds.
type flakyRunner struct {
	mu       sync.Mutex
	failures int
	calls    int
}

func (f *flakyRunner) run(ctx context.Context, spec Spec) ([]byte, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n <= f.failures {
		panic(fmt.Sprintf("flaky failure %d", n))
	}
	return []byte("flaky result for seed " + fmt.Sprint(spec.Seed) + "\n"), nil
}

// TestRetryThenSingleCachedResult is the issue's retry acceptance
// test: a job that panics N-1 times and then succeeds ends done after
// exactly N attempts, sleeping the seeded backoff schedule between
// them, and yields exactly one cached result — resubmission is a
// cache hit with byte-identical bytes and zero attempts.
func TestRetryThenSingleCachedResult(t *testing.T) {
	flaky := &flakyRunner{failures: 2}
	var sleepMu sync.Mutex
	var slept []time.Duration
	s, err := New(Config{
		Workers:     1,
		MaxAttempts: 3,
		BackoffBase: 10 * time.Millisecond,
		BackoffCap:  100 * time.Millisecond,
		JournalPath: filepath.Join(t.TempDir(), "j"),
		Runners:     map[string]Runner{"flaky": flaky.run},
		Sleep: func(d time.Duration) {
			sleepMu.Lock()
			slept = append(slept, d)
			sleepMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()

	spec := Spec{Kind: "flaky", Seed: 42, Client: "t"}
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	job = waitState(t, s, job.ID)
	if job.State != StateDone || job.Attempts != 3 {
		t.Fatalf("job: state=%s attempts=%d (%s), want done after 3", job.State, job.Attempts, job.Error)
	}
	body, _, _ := s.Result(job.ID)
	if want := "flaky result for seed 42\n"; string(body) != want {
		t.Fatalf("result %q, want %q", body, want)
	}
	want := backoffSchedule(42, 2, 10*time.Millisecond, 100*time.Millisecond)
	sleepMu.Lock()
	got := append([]time.Duration(nil), slept...)
	sleepMu.Unlock()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("backoff sleeps %v, want %v", got, want)
	}

	// Resubmission: cache hit, no new attempt, byte-identical body.
	again, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.State != StateDone || again.Attempts != 0 {
		t.Fatalf("resubmit: %+v, want an attempt-free cache hit", again)
	}
	body2, _, _ := s.Result(again.ID)
	if !bytes.Equal(body, body2) {
		t.Fatal("cache hit bytes differ from the original result")
	}
	st := s.Stats()
	if st.CacheEntries != 1 || st.CacheHits != 1 || st.Retries != 2 {
		t.Fatalf("stats: entries=%d hits=%d retries=%d, want 1/1/2", st.CacheEntries, st.CacheHits, st.Retries)
	}
	if flaky.calls != 3 {
		t.Fatalf("runner ran %d times, want 3 (the cache hit must not re-run)", flaky.calls)
	}
}

// TestRetryExhaustionFails: a job that panics on every attempt settles
// failed(panic) after MaxAttempts, and does NOT poison the cache.
func TestRetryExhaustionFails(t *testing.T) {
	flaky := &flakyRunner{failures: 99}
	s, err := New(Config{
		Workers: 1, MaxAttempts: 3,
		Runners: map[string]Runner{"flaky": flaky.run},
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	job, err := s.Submit(Spec{Kind: "flaky", Client: "t"})
	if err != nil {
		t.Fatal(err)
	}
	job = waitState(t, s, job.ID)
	if job.State != StateFailed || job.FailReason != "panic" || job.Attempts != 3 {
		t.Fatalf("job = %+v, want failed(panic) after 3 attempts", job)
	}
	if !strings.Contains(job.Error, "flaky failure 3") {
		t.Errorf("job error %q missing the final panic", job.Error)
	}
	if st := s.Stats(); st.CacheEntries != 0 || st.Failed["panic"] != 1 {
		t.Errorf("stats after failure: %+v, want no cache entry and one panic failure", st)
	}
}

// burnRunner charges cycles until the ledger watchdog trips.
func burnRunner(ctx context.Context, spec Spec) ([]byte, error) {
	l := clock.NewLedger(100)
	for i := 0; i < 1<<20; i++ {
		l.Charge(1000)
	}
	return []byte("never\n"), nil
}

// TestBudgetKillClassifiesCycleBudget: a runaway job trips the
// per-job cycle budget, settles failed(cycle-budget), and is not
// retried (the budget would just trip again).
func TestBudgetKillClassifiesCycleBudget(t *testing.T) {
	s, err := New(Config{
		Workers: 1, MaxAttempts: 3,
		Runners: map[string]Runner{"burn": burnRunner},
		Sleep:   func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	job, err := s.Submit(Spec{Kind: "burn", BudgetCycles: 10_000, Client: "t"})
	if err != nil {
		t.Fatal(err)
	}
	job = waitState(t, s, job.ID)
	if job.State != StateFailed || job.FailReason != "cycle-budget" {
		t.Fatalf("job = state=%s reason=%s, want failed(cycle-budget)", job.State, job.FailReason)
	}
	if job.Attempts != 1 {
		t.Errorf("budget trips retried: %d attempts, want 1", job.Attempts)
	}
}

// TestAdmissionControl drives both rejection axes of an
// admission-only daemon: the bounded queue (429 when full) and the
// per-client in-flight cap (429 for the hog, admission for others).
func TestAdmissionControl(t *testing.T) {
	s, err := New(Config{Workers: -1, QueueDepth: 3, ClientInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	submit := func(client, exp string) error {
		_, err := s.Submit(Spec{Kind: "experiment", Experiment: exp, Client: client})
		return err
	}
	if err := submit("alice", "figure1"); err != nil {
		t.Fatal(err)
	}
	if err := submit("alice", "table1"); err != nil {
		t.Fatal(err)
	}
	// Alice is at her cap of 2.
	err = submit("alice", "table2")
	ae, ok := err.(*admissionError)
	if !ok || ae.status != http.StatusTooManyRequests || !strings.Contains(ae.msg, "in-flight cap") {
		t.Fatalf("client-cap breach: got %v, want 429 in-flight cap", err)
	}
	// Bob still gets the last queue slot...
	if err := submit("bob", "table2"); err != nil {
		t.Fatal(err)
	}
	// ...and the queue is now full for everyone.
	err = submit("carol", "table3")
	ae, ok = err.(*admissionError)
	if !ok || ae.status != http.StatusTooManyRequests || !strings.Contains(ae.msg, "queue full") {
		t.Fatalf("queue-full breach: got %v, want 429 queue full", err)
	}
	st := s.Stats()
	if st.RejectedQueueFull != 1 || st.RejectedClientCap != 1 || st.Submitted != 3 {
		t.Fatalf("stats: %+v, want 1 queue-full, 1 client-cap, 3 admitted", st)
	}
	// Bad specs are 400s, not 429s.
	_, err = s.Submit(Spec{Kind: "experiment", Experiment: "nope", Client: "t"})
	if ae, ok := err.(*admissionError); !ok || ae.status != http.StatusBadRequest {
		t.Fatalf("unknown experiment: got %v, want 400", err)
	}
	_, err = s.Submit(Spec{Kind: "solitaire", Client: "t"})
	if ae, ok := err.(*admissionError); !ok || ae.status != http.StatusBadRequest {
		t.Fatalf("unknown kind: got %v, want 400", err)
	}
}

// stuckRunner blocks until its context dies, then raises the
// cooperative-cancellation sentinel like a RowSet row would.
func stuckRunner(ctx context.Context, spec Spec) ([]byte, error) {
	<-ctx.Done()
	report.RowSet(ctx, 1, func(int) {})
	return []byte("unreachable\n"), nil
}

// TestDrainBudgetKillsStuckJobs: drain waits DrainTimeout for
// in-flight work, then cancels it; the stuck job settles
// failed(canceled) and the drain reports unclean — but the daemon
// survives to answer status requests.
func TestDrainBudgetKillsStuckJobs(t *testing.T) {
	s, err := New(Config{
		Workers: 1, DrainTimeout: 20 * time.Millisecond,
		Runners: map[string]Runner{"stuck": stuckRunner},
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit(Spec{Kind: "stuck", Client: "t"})
	if err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to pick the job up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, _ := s.Job(job.ID); j.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if clean := s.Drain(); clean {
		t.Error("drain reported clean despite the hard kill")
	}
	j, _ := s.Job(job.ID)
	if j.State != StateFailed || (j.FailReason != "canceled" && j.FailReason != "timeout") {
		t.Fatalf("stuck job settled %s(%s), want failed(canceled|timeout)", j.State, j.FailReason)
	}
	if !s.Stats().Draining {
		t.Error("stats lost the draining flag")
	}
}

// TestDrainLeavesQueuedJobsForReplay: draining an admission-only
// daemon finishes nothing, leaves the queue journalled as
// submit-without-finish, and a restart replays all of it.
func TestDrainLeavesQueuedJobsForReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	s1, err := New(Config{Workers: -1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for _, exp := range []string{"figure1", "table1"} {
		if _, err := s1.Submit(Spec{Kind: "experiment", Experiment: exp, Client: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	if clean := s1.Drain(); !clean {
		t.Error("admission-only drain should be clean")
	}
	s2, err := New(Config{Workers: -1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	if st := s2.Stats(); st.Replayed != 2 || st.QueueDepth != 2 {
		t.Fatalf("after drain+restart: replayed=%d queue=%d, want 2/2", st.Replayed, st.QueueDepth)
	}
}

// TestHTTPEndToEnd exercises the wire surface against a real
// experiment: submit figure1 over HTTP, poll it done, fetch the
// result, and check it matches the CLI's bytes; then the health
// endpoints and the drain flip of /readyz.
func TestHTTPEndToEnd(t *testing.T) {
	s, err := New(Config{Workers: 2, JournalPath: filepath.Join(t.TempDir(), "j")})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, body := post("/jobs", `{"kind":"experiment","experiment":"figure1","client":"curl"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	waitState(t, s, job.ID)

	resp, result := get("/jobs/" + job.ID + "/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, result)
	}
	e, _ := report.Find("figure1")
	want := report.RunOne(context.Background(), e, report.Quick).Table.Render() + "\n"
	if string(result) != want {
		t.Fatalf("HTTP result differs from the CLI render (%d vs %d bytes)", len(result), len(want))
	}

	// Resubmitting over the wire is a 200 cache hit with the same bytes.
	resp, body = post("/jobs", `{"kind":"experiment","experiment":"figure1","client":"curl2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit: %d %s", resp.StatusCode, body)
	}
	var hit Job
	json.Unmarshal(body, &hit)
	if !hit.CacheHit {
		t.Fatalf("resubmit not a cache hit: %s", body)
	}
	_, result2 := get("/jobs/" + hit.ID + "/result")
	if !bytes.Equal(result, result2) {
		t.Fatal("cache hit served different bytes over HTTP")
	}

	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Error("healthz not 200")
	}
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Error("readyz not 200 before drain")
	}
	resp, _ = get("/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Error("statsz not 200")
	}
	if resp, _ := get("/jobs/j-999999"); resp.StatusCode != http.StatusNotFound {
		t.Error("unknown job not 404")
	}

	if resp, _ = post("/drain", ""); resp.StatusCode != http.StatusAccepted {
		t.Error("drain not 202")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Error("readyz not 503 while draining")
	}
	if resp, _ := post("/jobs", `{"kind":"experiment","experiment":"table1"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Error("submit while draining not 503")
	}
	s.Drain()
}
