// Package mmud is the crash-tolerant experiment service: an HTTP+JSON
// daemon that accepts experiment, trace, and chaos jobs and runs them
// on the shared harness worker pool (internal/workpool) with the same
// determinism contract as the CLIs — a job's result body is
// byte-identical no matter when it runs, how many workers the daemon
// has, or how many times a panicking attempt was retried first.
//
// The service layers five robustness mechanisms over the runners:
//
//   - admission control: a bounded queue and a per-client in-flight
//     cap, both rejected with 429 so a misbehaving client degrades to
//     backpressure instead of memory growth;
//   - budgets: every attempt runs under a per-job simulated-cycle
//     budget (clock ledger watchdog) and a wall-clock timeout, so a
//     wedged experiment degrades to FAILED(cycle-budget|timeout)
//     instead of wedging a worker forever;
//   - retries: attempts that die by panic are retried up to a cap
//     with seeded decorrelated-jitter backoff, deterministic per job;
//   - crash isolation: a panicking job is contained by the same
//     recover/classify machinery as report.RunOne — the daemon never
//     exits because a job failed;
//   - graceful drain: SIGTERM stops admission, lets in-flight jobs
//     finish (budget-killing them at the drain deadline), and leaves
//     everything else in a crash-safe JSONL journal that the next
//     start replays, requeueing exactly the jobs that never finished.
package mmud

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mmutricks/internal/report"
)

// Spec is the client-submitted description of one job. Kind selects
// the runner; the remaining fields parameterize it, mirroring the
// corresponding CLI flags (mmureport, mmutrace, mmuchaos).
type Spec struct {
	// Kind is "experiment", "trace", or "chaos" (plus any extra kinds
	// the embedding process registered via Config.Runners).
	Kind string `json:"kind"`
	// Experiment is the registry ID for kind "experiment".
	Experiment string `json:"experiment,omitempty"`
	// Scale is "quick" (default) or "full" for kind "experiment".
	Scale string `json:"scale,omitempty"`
	// Workload, CPU, Config, Iters parameterize "trace" and "chaos"
	// exactly like the mmutrace/mmuchaos flags.
	Workload string `json:"workload,omitempty"`
	CPU      string `json:"cpu,omitempty"`
	Config   string `json:"config,omitempty"`
	Iters    int    `json:"iters,omitempty"`
	// Schedule is the fault schedule for kind "chaos".
	Schedule string `json:"schedule,omitempty"`
	// Seed seeds the retry-backoff jitter stream (and nothing else:
	// the runners take their seeds from Schedule or their options).
	Seed uint64 `json:"seed,omitempty"`
	// BudgetCycles caps the simulated cycles any single ledger may
	// charge during one attempt (0 = the server default). The cap is
	// conservative: a concurrent job with a smaller budget may tighten
	// it further, never loosen it.
	BudgetCycles uint64 `json:"budget_cycles,omitempty"`
	// TimeoutMS is the per-attempt wall-clock timeout (0 = server
	// default). Excluded from the cache key: how long a client is
	// willing to wait does not change the deterministic result.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Client names the submitter for the per-client in-flight cap.
	// Excluded from the cache key.
	Client string `json:"client,omitempty"`
}

// builtinKinds are the runners compiled into the daemon.
var builtinKinds = map[string]bool{
	"experiment": true,
	"trace":      true,
	"chaos":      true,
}

// normalize fills kind-specific defaults so equivalent submissions
// canonicalize to the same cache key.
func (sp *Spec) normalize() {
	switch sp.Kind {
	case "experiment":
		if sp.Scale == "" {
			sp.Scale = "quick"
		}
	case "trace", "chaos":
		if sp.Workload == "" {
			sp.Workload = "lmbench"
		}
		if sp.CPU == "" {
			sp.CPU = "604/185"
		}
		if sp.Config == "" {
			sp.Config = "optimized"
		}
		if sp.Iters <= 0 {
			sp.Iters = 100
		}
		if sp.Kind == "chaos" && sp.Schedule == "" {
			sp.Schedule = "seed=42 rate=500ppm burst=1 mix=all"
		}
	}
}

// validate rejects specs the admission path can prove malformed. It
// deliberately stops short of re-implementing the engines' own option
// validation (bad CPU names and the like fail the job with reason
// "config" instead).
func (sp *Spec) validate(extra map[string]Runner) error {
	if !builtinKinds[sp.Kind] {
		if _, ok := extra[sp.Kind]; !ok {
			return fmt.Errorf("unknown kind %q (want experiment, trace, or chaos)", sp.Kind)
		}
	}
	if sp.Kind == "experiment" {
		if sp.Experiment == "" {
			return fmt.Errorf("kind experiment requires an experiment ID")
		}
		if _, ok := report.Find(sp.Experiment); !ok {
			return fmt.Errorf("unknown experiment %q", sp.Experiment)
		}
		if sp.Scale != "quick" && sp.Scale != "full" {
			return fmt.Errorf("unknown scale %q (want quick or full)", sp.Scale)
		}
	}
	return nil
}

// scale maps the spec's scale name onto the report type.
func (sp *Spec) scale() report.Scale {
	if sp.Scale == "full" {
		return report.Full
	}
	return report.Quick
}

// CacheKey is the content address of the spec's deterministic result:
// a sha256 over the canonical JSON of the normalized spec with the
// non-semantic fields (Client, TimeoutMS) zeroed. Two submissions with
// the same key are the same computation, so the second is served the
// first's bytes.
func (sp Spec) CacheKey() string {
	sp.Client = ""
	sp.TimeoutMS = 0
	data, err := json.Marshal(sp)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("mmud: marshal spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is the daemon's record of one submission. All fields are
// guarded by the server mutex; handlers marshal a copy.
type Job struct {
	ID   string `json:"id"`
	Seq  uint64 `json:"seq"`
	Spec Spec   `json:"spec"`
	// State is queued, running, done, or failed.
	State string `json:"state"`
	// Attempts counts started attempts (a cache hit is zero attempts).
	Attempts int `json:"attempts"`
	// FailReason classifies a failed job: "panic", "cycle-budget",
	// "canceled", "timeout", "audit", or "config".
	FailReason string `json:"fail_reason,omitempty"`
	// Error is the final attempt's error text (failed jobs only).
	Error string `json:"error,omitempty"`
	// CacheKey is the spec's content address; CacheHit marks a job
	// served from a previous run's bytes without executing.
	CacheKey string `json:"cache_key"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// SimCycles is the simulated work the job's attempts charged
	// (meter delta; exact only when one job runs at a time).
	SimCycles uint64 `json:"sim_cycles"`

	result []byte
}
