package oscompare

import (
	"testing"

	"mmutricks/internal/clock"
)

func find(rows []Row, name string) Row {
	for _, r := range rows {
		if r.Name == name {
			return r
		}
	}
	return Row{}
}

func TestPersonalitiesLineUp(t *testing.T) {
	ps := Personalities()
	if len(ps) != 5 {
		t.Fatalf("want 5 OSes, got %d", len(ps))
	}
	for _, p := range ps {
		if p.Name == "" {
			t.Fatal("unnamed personality")
		}
		if p.IPCHops > 0 && p.ServerInstr == 0 {
			t.Fatalf("%s: IPC hops without server work", p.Name)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	rows := RunTable3(40)
	l := find(rows, "Linux/PPC")
	u := find(rows, "Unoptimized Linux/PPC")
	mk := find(rows, "MkLinux")
	rh := find(rows, "Rhapsody 5.0")
	aix := find(rows, "AIX")

	// Optimized Linux wins every latency row and the bandwidth row.
	for _, o := range []Row{u, mk, rh, aix} {
		if l.NullUS >= o.NullUS {
			t.Errorf("Linux null (%.1f) should beat %s (%.1f)", l.NullUS, o.Name, o.NullUS)
		}
		if l.CtxUS >= o.CtxUS {
			t.Errorf("Linux ctxsw (%.1f) should beat %s (%.1f)", l.CtxUS, o.Name, o.CtxUS)
		}
		if l.PipeUS >= o.PipeUS {
			t.Errorf("Linux pipe lat (%.1f) should beat %s (%.1f)", l.PipeUS, o.Name, o.PipeUS)
		}
		if l.PipeMBps <= o.PipeMBps {
			t.Errorf("Linux pipe bw (%.1f) should beat %s (%.1f)", l.PipeMBps, o.Name, o.PipeMBps)
		}
	}
	// The Mach systems trail the monolithic kernels on pipes — the
	// paper's 'distance micro-kernels have to travel' point.
	for _, m := range []Row{mk, rh} {
		if m.PipeUS <= u.PipeUS {
			t.Errorf("%s pipe lat (%.1f) should trail unoptimized Linux (%.1f)", m.Name, m.PipeUS, u.PipeUS)
		}
		if m.PipeMBps >= u.PipeMBps {
			t.Errorf("%s pipe bw (%.1f) should trail unoptimized Linux (%.1f)", m.Name, m.PipeMBps, u.PipeMBps)
		}
		if m.CtxUS <= aix.CtxUS {
			t.Errorf("%s ctxsw (%.1f) should trail AIX (%.1f)", m.Name, m.CtxUS, aix.CtxUS)
		}
	}
	// Paper ratios to sanity-check magnitude: optimized vs unoptimized
	// null syscall was 2 vs 18 µs; require at least 3x here.
	if u.NullUS < 3*l.NullUS {
		t.Errorf("unoptimized null (%.2f) should be >=3x optimized (%.2f)", u.NullUS, l.NullUS)
	}
}

func TestRunnerIPCCrossingsCounted(t *testing.T) {
	var mk Personality
	for _, p := range Personalities() {
		if p.Name == "MkLinux" {
			mk = p
		}
	}
	r := NewRunner(mk, clock.PPC604At133())
	// Null syscalls stay in the emulation library: no crossings.
	res := r.NullSyscall(20)
	if res.Counters.CtxSwitches != 0 {
		t.Fatalf("null syscall made %d crossings; the emulation library should absorb it", res.Counters.CtxSwitches)
	}
	// Pipe operations cross to the UNIX server: each of the 4 ops per
	// round costs 1 hop = 2 switches, plus the 2 client switches.
	res = r.PipeLatency(10)
	if res.Counters.CtxSwitches < 10*(4*2+2) {
		t.Fatalf("pipe IPC switches = %d, want >= %d", res.Counters.CtxSwitches, 10*(4*2+2))
	}
	if err := r.K.CheckConsistency(); err != nil {
		t.Fatalf("post-IPC consistency sweep: %v", err)
	}
}
