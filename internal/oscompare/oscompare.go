// Package oscompare reproduces Table 3: LmBench figures for Linux/PPC
// against the other operating systems of the day. The comparison
// kernels are not reimplemented wholesale; each is a cost "personality"
// over the same simulated hardware, encoding the *structural*
// differences the paper attributes the gaps to:
//
//   - Linux/PPC: the optimized monolithic kernel.
//   - Unoptimized Linux/PPC: the same kernel without the paper's
//     changes (C handlers, eager flushes, PTE-mapped kernel).
//   - AIX: a mature commercial monolithic kernel — competent MMU use
//     (AIX invented the PowerPC hash-table discipline) but heavier
//     syscall dispatch, scheduler, and stream paths.
//   - MkLinux, Rhapsody: Mach-based systems. Trivial syscalls are
//     absorbed by the in-process emulation library (hence "only" ~8x
//     slower than tuned Linux), but every pipe operation is a service
//     request: an IPC message to the UNIX server, a dispatch there and
//     a reply — two extra protection crossings per operation, plus
//     Mach's heavyweight thread switch and extra data copies on bulk
//     streams.
//
// The hop structure (which operations cross to a server, how many
// crossings, how many data copies) is architectural. The per-OS path
// lengths are calibrated once against Table 3's published latencies and
// then held fixed for every benchmark; no benchmark has its own fudge
// factor.
package oscompare

import (
	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
	"mmutricks/internal/lmbench"
	"mmutricks/internal/machine"
)

// Personality is one comparison operating system.
type Personality struct {
	Name string
	// Cfg is the underlying kernel configuration.
	Cfg kernel.Config
	// ExtraSyscallInstr models a heavier in-kernel (or emulation-
	// library) path on every system call.
	ExtraSyscallInstr int
	// ExtraPipeInstr is additional per-pipe-operation path length
	// (stream heads, locking discipline).
	ExtraPipeInstr int
	// ExtraSwitchInstr models a heavier scheduler/dispatch path,
	// charged at every context switch.
	ExtraSwitchInstr int
	// IPCHops is how many kernel<->server round trips each pipe
	// operation costs (0 for monolithic kernels, 1 for Mach: request
	// to the UNIX server and reply).
	IPCHops int
	// HopInstr is the cost of one IPC crossing (port lookup, message
	// queueing, handoff dispatch). Mach's IPC path is cheaper than its
	// full scheduler switch — handoff scheduling — so hops carry their
	// own path length instead of ExtraSwitchInstr.
	HopInstr int
	// ServerInstr is the user-level server work per request.
	ServerInstr int
	// MsgBytes is the IPC message size per crossing.
	MsgBytes int
	// ExtraCopies is how many additional buffer copies bulk data pays
	// on its way through servers, per chunk.
	ExtraCopies int
}

// Personalities returns the Table 3 line-up.
func Personalities() []Personality {
	return []Personality{
		{
			Name: "Linux/PPC",
			Cfg:  kernel.Optimized(),
		},
		{
			Name: "Unoptimized Linux/PPC",
			Cfg:  kernel.Unoptimized(),
		},
		{
			Name:              "Rhapsody 5.0",
			Cfg:               mach(),
			ExtraSyscallInstr: 1700,
			ExtraPipeInstr:    300,
			ExtraSwitchInstr:  4400,
			IPCHops:           1, HopInstr: 1500, ServerInstr: 300, MsgBytes: 128,
			ExtraCopies: 3,
		},
		{
			Name:              "MkLinux",
			Cfg:               mach(),
			ExtraSyscallInstr: 2200,
			ExtraPipeInstr:    400,
			ExtraSwitchInstr:  5800,
			IPCHops:           1, HopInstr: 2600, ServerInstr: 1000, MsgBytes: 128,
			ExtraCopies: 1,
		},
		{
			Name:              "AIX",
			Cfg:               aix(),
			ExtraSyscallInstr: 1100,
			ExtraPipeInstr:    800,
			ExtraSwitchInstr:  2500,
			ExtraCopies:       1,
		},
	}
}

// mach is the configuration under the Mach-based systems: a competent
// microkernel core (BAT-mapped kernel, assembly reload paths — Mach's
// pmap layer was mature) but nothing like the paper's flush tuning.
func mach() kernel.Config {
	c := kernel.Unoptimized()
	c.KernelBAT = true
	c.FastReload = true
	return c
}

// aix is AIX's profile: decades of hash-table discipline (BATs, tuned
// reloads, sensible flushing) inside a heavyweight kernel.
func aix() kernel.Config {
	c := kernel.Optimized()
	c.IdleReclaim = false
	c.IdleClear = kernel.IdleClearOff
	return c
}

// Runner executes the Table 3 benchmarks under one personality.
type Runner struct {
	P      Personality
	K      *kernel.Kernel
	server *kernel.Task
}

// NewRunner boots a machine for the personality.
func NewRunner(p Personality, model clock.CPUModel) *Runner {
	k := kernel.New(machine.New(model), p.Cfg)
	r := &Runner{P: p, K: k}
	if p.IPCHops > 0 {
		img := k.LoadImage("unix-server", 16)
		r.server = k.Spawn(img)
		k.Switch(r.server)
		k.UserRun(0, 4000) // fault the server in
	}
	return r
}

// syscall charges a system call plus the personality's extra path.
func (r *Runner) syscallExtra() {
	if r.P.ExtraSyscallInstr > 0 {
		r.K.KernelWork(r.P.ExtraSyscallInstr)
	}
}

// pipeService charges what one pipe operation costs beyond the shared
// kernel work: extra path length plus IPC crossings to the UNIX server
// and back (Mach).
func (r *Runner) pipeService(client *kernel.Task) {
	r.syscallExtra()
	if r.P.ExtraPipeInstr > 0 {
		r.K.KernelWork(r.P.ExtraPipeInstr)
	}
	for h := 0; h < r.P.IPCHops; h++ {
		r.K.IPCMessage(r.P.MsgBytes)
		r.K.Switch(r.server)
		r.K.KernelWork(r.P.HopInstr)
		r.K.UserRun(0, r.P.ServerInstr)
		r.K.IPCMessage(r.P.MsgBytes)
		r.K.Switch(client)
		r.K.KernelWork(r.P.HopInstr)
	}
}

func (r *Runner) extraSwitch() {
	if r.P.ExtraSwitchInstr > 0 {
		r.K.KernelWork(r.P.ExtraSwitchInstr)
	}
}

// NullSyscall is Table 3's first row. Trivial syscalls do not cross to
// the server even on the Mach systems (the emulation library handles
// them); they pay only the heavier trap/emulation path.
func (r *Runner) NullSyscall(iters int) lmbench.Result {
	k := r.K
	img := k.LoadImage("null", 2)
	t := k.Spawn(img)
	k.Switch(t)
	for i := 0; i < 5; i++ {
		k.SysNull()
		r.syscallExtra()
	}
	before := k.M.Mon.Snapshot()
	start := k.M.Led.Now()
	for i := 0; i < iters; i++ {
		k.SysNull()
		r.syscallExtra()
	}
	d := k.M.Led.Now() - start
	res := lmbench.Result{Name: "nullsys", Cycles: d, Counters: k.M.Mon.Delta(before)}
	res.Micros = k.M.Led.Micros(d) / float64(iters)
	r.reap(t)
	return res
}

// CtxSwitch is Table 3's two-process context switch.
func (r *Runner) CtxSwitch(iters int) lmbench.Result {
	k := r.K
	img := k.LoadImage("lat_ctx", 4)
	a, b := k.Spawn(img), k.Spawn(img)
	hop := func(t *kernel.Task) {
		k.Switch(t)
		r.extraSwitch()
		k.UserRun(0, 50)
	}
	for i := 0; i < 4; i++ {
		hop(a)
		hop(b)
	}
	before := k.M.Mon.Snapshot()
	start := k.M.Led.Now()
	for i := 0; i < iters; i++ {
		hop(a)
		hop(b)
	}
	d := k.M.Led.Now() - start
	res := lmbench.Result{Name: "ctxsw", Cycles: d, Counters: k.M.Mon.Delta(before)}
	res.Micros = k.M.Led.Micros(d) / float64(2*iters)
	r.reap(a)
	r.reap(b)
	return res
}

// PipeLatency is Table 3's pipe latency row: on Mach systems every pipe
// operation is a service request to the UNIX server.
func (r *Runner) PipeLatency(iters int) lmbench.Result {
	k := r.K
	img := k.LoadImage("lat_pipe", 2)
	a, b := k.Spawn(img), k.Spawn(img)
	k.Switch(a)
	p1, p2 := k.SysPipe(), k.SysPipe()
	buf := kernel.UserDataBase
	round := func() {
		k.Switch(a)
		r.extraSwitch()
		k.SysPipeWrite(p1, buf, 1)
		r.pipeService(a)
		k.Switch(b)
		r.extraSwitch()
		k.SysPipeRead(p1, buf, 1)
		r.pipeService(b)
		k.SysPipeWrite(p2, buf, 1)
		r.pipeService(b)
		k.Switch(a)
		r.extraSwitch()
		k.SysPipeRead(p2, buf, 1)
		r.pipeService(a)
	}
	for i := 0; i < 4; i++ {
		round()
	}
	before := k.M.Mon.Snapshot()
	start := k.M.Led.Now()
	for i := 0; i < iters; i++ {
		round()
	}
	d := k.M.Led.Now() - start
	res := lmbench.Result{Name: "pipelat", Cycles: d, Counters: k.M.Mon.Delta(before)}
	res.Micros = k.M.Led.Micros(d) / float64(iters) / 2
	r.reap(a)
	r.reap(b)
	return res
}

// PipeBandwidth is Table 3's pipe bandwidth row; server-mediated pipes
// pay extra copies for the data's trip through the server.
func (r *Runner) PipeBandwidth(totalBytes int) lmbench.Result {
	k := r.K
	img := k.LoadImage("bw_pipe", 2)
	w, rd := k.Spawn(img), k.Spawn(img)
	k.Switch(w)
	p := k.SysPipe()
	chunk := arch.PageSize
	xfer := func(i int) {
		off := arch.EffectiveAddr((i % 16) * arch.PageSize)
		k.Switch(w)
		r.extraSwitch()
		k.SysPipeWrite(p, kernel.UserDataBase+off, chunk)
		r.pipeService(w)
		for c := 0; c < r.P.ExtraCopies; c++ {
			k.IPCMessage(chunk)
		}
		k.Switch(rd)
		r.extraSwitch()
		k.SysPipeRead(p, kernel.UserDataBase+off, chunk)
		r.pipeService(rd)
	}
	for i := 0; i < 4; i++ {
		xfer(i)
	}
	n := totalBytes / chunk
	before := k.M.Mon.Snapshot()
	start := k.M.Led.Now()
	for i := 0; i < n; i++ {
		xfer(i)
	}
	d := k.M.Led.Now() - start
	res := lmbench.Result{Name: "pipebw", Cycles: d, Counters: k.M.Mon.Delta(before)}
	res.MBps = k.M.Led.MBPerSec(int64(n)*int64(chunk), d)
	r.reap(w)
	r.reap(rd)
	return res
}

func (r *Runner) reap(t *kernel.Task) {
	r.K.Switch(t)
	r.K.Exit()
	r.K.Wait(t)
}

// Row is one personality's Table 3 line.
type Row struct {
	Name     string
	NullUS   float64
	CtxUS    float64
	PipeUS   float64
	PipeMBps float64
}

// RunTable3 produces the full table on the paper's 133 MHz 604.
func RunTable3(iters int) []Row {
	var rows []Row
	for _, p := range Personalities() {
		r := NewRunner(p, clock.PPC604At133())
		null := r.NullSyscall(iters)
		ctx := r.CtxSwitch(iters)
		lat := r.PipeLatency(iters / 2)
		bw := r.PipeBandwidth(1 << 20)
		// The personalities stress the switch/IPC paths; an invariant
		// violation here would silently skew every row of the table.
		if err := r.K.CheckConsistency(); err != nil {
			panic("oscompare: " + p.Name + ": " + err.Error())
		}
		rows = append(rows, Row{
			Name:     p.Name,
			NullUS:   null.Micros,
			CtxUS:    ctx.Micros,
			PipeUS:   lat.Micros,
			PipeMBps: bw.MBps,
		})
	}
	return rows
}
