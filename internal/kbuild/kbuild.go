// Package kbuild is the paper's informal macro benchmark: timing a
// kernel compile. "The mix of process creation, file I/O, and
// computation in the kernel compile is a good guess at a typical user
// load" (§4).
//
// The workload is a scaled-down synthetic compile: a make process forks
// and execs a stream of compiler processes; each reads its source file,
// allocates working memory (with the mmap/munmap traffic a malloc arena
// produces), runs a compilation loop with locality-realistic memory
// access, writes nothing back (the page cache is write-back), and
// exits; between compilation units the machine waits on "disk" and the
// idle task runs. Wall-clock time is simulated cycles; the paper's
// 10-minute absolute times correspond to a full-size compile — relative
// times between configurations are the reproduction target.
package kbuild

import (
	"math/rand"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/hwmon"
	"mmutricks/internal/kernel"
)

// Config sizes the synthetic compile.
type Config struct {
	// Units is the number of compilation units (cc1 invocations).
	Units int
	// CCTextPages is the compiler image's text size in pages.
	CCTextPages int
	// SourcePages is each unit's source file size.
	SourcePages int
	// WorkPages is the compiler's working set per unit.
	WorkPages int
	// Passes is how many compile passes sweep the working set.
	Passes int
	// StrayRefs is how many scattered single-access references each
	// compile step makes across the whole arena — pointer chasing that
	// pressures the TLB without warming the cache. Zero disables.
	StrayRefs int
	// HotPages is the size of the compiler's cache-resident hot state
	// (symbol table, current AST) in pages.
	HotPages int
	// WaitEvery is how many compile steps run between mid-compile I/O
	// stalls.
	WaitEvery int
	// IOWaitCycles is the simulated disk wait per I/O event. The idle
	// task runs during every wait, and waits are frequent — after
	// every source-file read and periodically during compilation — as
	// on a real build machine ("the idle task runs quite often even on
	// a system heavily loaded", §9).
	IOWaitCycles int
	// Seed makes the run deterministic.
	Seed int64
}

// Default is a compile sized to run in about a second of host time
// while exercising every kernel path the paper's measurements cover.
func Default() Config {
	return Config{
		Units:        24,
		CCTextPages:  48,  // 192 KB compiler binary
		SourcePages:  16,  // 64 KB source + headers per unit
		WorkPages:    160, // 640 KB of compiler heap per unit
		Passes:       3,
		StrayRefs:    0,
		HotPages:     4,
		WaitEvery:    16,
		IOWaitCycles: 30_000,
		Seed:         1999,
	}
}

// Result is one kbuild run's outcome.
type Result struct {
	// Cycles is the simulated wall-clock cost, including I/O waits.
	Cycles clock.Cycles
	// IdleCycles is the portion of Cycles spent waiting on "disk"
	// (with the idle task running); the waits are the same across
	// configurations, so ComputeCycles is the comparable quantity.
	IdleCycles clock.Cycles
	// Seconds is Cycles at the machine's clock rate.
	Seconds float64
	// ComputeSeconds excludes the fixed I/O waits.
	ComputeSeconds float64
	// Counters is the performance-monitor delta over the run.
	Counters hwmon.Counters
	// Idle is what the idle task got done during I/O waits.
	Idle kernel.IdleStats
}

// Run executes the compile on a booted kernel.
func Run(k *kernel.Kernel, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	cc := k.LoadImage("cc1", cfg.CCTextPages)
	makeImg := k.LoadImage("make", 8)

	maker := k.Spawn(makeImg)
	k.Switch(maker)
	k.UserTouch(kernel.UserDataBase, 8*arch.PageSize) // make's own state

	// Source files: every unit also reads the same shared headers,
	// like a real tree.
	shared := k.CreateFile(cfg.SourcePages)
	sources := make([]*kernel.File, cfg.Units)
	for i := range sources {
		sources[i] = k.CreateFile(cfg.SourcePages)
	}

	before := k.M.Mon.Snapshot()
	start := k.M.Led.Now()
	var idle kernel.IdleStats
	var idleCycles clock.Cycles

	wait := func() {
		w0 := k.M.Led.Now()
		st := k.RunIdleFor(clock.Cycles(cfg.IOWaitCycles))
		idle.Polls += st.Polls
		idle.Reclaimed += st.Reclaimed
		idle.Cleared += st.Cleared
		idleCycles += k.M.Led.Now() - w0
	}

	for unit := 0; unit < cfg.Units; unit++ {
		// make: stat files, decide, fork+exec cc1.
		k.Switch(maker)
		k.UserRun(0, 3000)
		k.SysRead(sources[unit], 0, kernel.UserDataBase+0x40000, 4096)
		wait() // stat+read of the source hits the disk

		child := k.Fork()
		k.Switch(child)
		k.Exec(cc)
		wait() // demand-loading cc1's text from disk

		// cc1 reads its source and the shared headers; each read
		// stalls on the disk.
		for off := 0; off < sources[unit].Size(); off += 16 * 1024 {
			k.SysRead(sources[unit], off, kernel.UserDataBase+0x80000, 16*1024)
			wait()
		}
		for off := 0; off < shared.Size(); off += 16 * 1024 {
			k.SysRead(shared, off, kernel.UserDataBase+0x80000, 16*1024)
		}

		// The compiler's malloc arena: mmap, grow, shrink — the range
		// flushes §7 cares about (40–110 page ranges are typical).
		arena := k.SysMmap(cfg.WorkPages)
		small := k.SysMmap(8)

		// Compile passes: instruction-heavy loops over text with a
		// locality-realistic walk of the working set, stalling
		// periodically for include files and object write-back. Each
		// pass has a cache-resident hot set (inner loops and their
		// data) plus a cold tail — the reuse that §9's cache-pollution
		// analysis turns on.
		// The compiler's hot state (symbol table, AST of the current
		// function) lives in the first few arena pages and is
		// re-walked constantly; fresh allocations fault in cold pages
		// behind it, and pointer-chasing strays over the whole arena
		// keep the TLB under pressure even when the cache is happy.
		hotPages := cfg.HotPages
		if hotPages < 2 {
			hotPages = 2
		}
		for pass := 0; pass < cfg.Passes; pass++ {
			hotText := rng.Intn(cfg.CCTextPages - 4)
			for step := 0; step < cfg.WorkPages; step++ {
				k.UserRun(hotText+step%4, 600)
				k.UserTouch(arena+arch.EffectiveAddr((step%hotPages)*arch.PageSize), arch.PageSize)
				k.UserTouch(arena+arch.EffectiveAddr(((step+2)%hotPages)*arch.PageSize), arch.PageSize)
				// Stray references: one access each to scattered pages.
				for sr := 0; sr < cfg.StrayRefs; sr++ {
					k.UserTouchPages(arena+arch.EffectiveAddr(rng.Intn(cfg.WorkPages)*arch.PageSize), 1)
				}
				if rng.Intn(6) == 0 {
					cold := hotPages + rng.Intn(cfg.WorkPages-hotPages)
					k.UserTouch(arena+arch.EffectiveAddr(cold*arch.PageSize), 512)
				}
				if cfg.WaitEvery > 0 && step%cfg.WaitEvery == cfg.WaitEvery-1 {
					k.UserTouch(kernel.UserStackTop-arch.EffectiveAddr(2*arch.PageSize), 128)
					wait()
				}
			}
		}

		// malloc also grows and releases the heap with brk — the 40-110
		// page ranges §7 mentions being "flushed in one shot".
		k.SysBrk(1024 + 80)
		k.UserTouch(kernel.UserDataBase+arch.EffectiveAddr(1024*arch.PageSize), 40*arch.PageSize)
		k.SysBrk(1024)

		k.SysMunmap(small, 8)
		k.SysMunmap(arena, cfg.WorkPages)
		k.Exit()
		k.Switch(maker)
		k.Wait(child)
		wait() // object file write-back
	}

	d := k.M.Led.Now() - start
	return Result{
		Cycles:         d,
		IdleCycles:     idleCycles,
		Seconds:        k.M.Led.Seconds(d),
		ComputeSeconds: k.M.Led.Seconds(d - idleCycles),
		Counters:       k.M.Mon.Delta(before),
		Idle:           idle,
	}
}
