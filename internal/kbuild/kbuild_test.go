package kbuild

import (
	"testing"

	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
)

func small() Config {
	c := Default()
	c.Units = 4
	c.WorkPages = 48
	c.Passes = 2
	return c
}

func run(t *testing.T, model clock.CPUModel, kcfg kernel.Config, bcfg Config) Result {
	t.Helper()
	k := kernel.New(machine.New(model), kcfg)
	r := Run(k, bcfg)
	// The build churns through fork/exec/exit and swap; prove the
	// lazy-flush invariants survived before asserting on the result.
	if err := k.CheckConsistency(); err != nil {
		t.Fatalf("post-build consistency sweep: %v", err)
	}
	return r
}

func TestRunCompletes(t *testing.T) {
	r := run(t, clock.PPC604At185(), kernel.Unoptimized(), small())
	if r.Cycles == 0 || r.Seconds <= 0 {
		t.Fatal("no time elapsed")
	}
	c := &r.Counters
	if c.Forks != 4 || c.Execs != 4 || c.Exits != 4 {
		t.Fatalf("process churn: forks=%d execs=%d exits=%d", c.Forks, c.Execs, c.Exits)
	}
	if c.Syscalls == 0 || c.TLBMisses == 0 || c.MajorFaults == 0 {
		t.Fatalf("missing activity: %+v", c)
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, clock.PPC604At185(), kernel.Optimized(), small())
	b := run(t, clock.PPC604At185(), kernel.Optimized(), small())
	if a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
	if a.Counters != b.Counters {
		t.Fatal("counters differ between identical runs")
	}
}

func TestOptimizedBeatsUnoptimized(t *testing.T) {
	// The aggregate §5–§9 result: the optimized kernel compiles
	// meaningfully faster (paper: 10 min -> 8 min from the BAT change
	// alone).
	cfg := small()
	u := run(t, clock.PPC604At185(), kernel.Unoptimized(), cfg)
	o := run(t, clock.PPC604At185(), kernel.Optimized(), cfg)
	if o.Cycles >= u.Cycles {
		t.Fatalf("optimized (%d) not faster than unoptimized (%d)", o.Cycles, u.Cycles)
	}
}

func TestBATReducesTLBMisses(t *testing.T) {
	// §5.1: mapping the kernel with BATs cut TLB misses ~10% and hash
	// misses ~20% on the kernel compile.
	cfg := small()
	base := kernel.Unoptimized()
	bat := base
	bat.KernelBAT = true
	u := run(t, clock.PPC604At185(), base, cfg)
	b := run(t, clock.PPC604At185(), bat, cfg)
	if b.Counters.TLBMisses >= u.Counters.TLBMisses {
		t.Fatalf("BAT did not reduce TLB misses: %d vs %d",
			b.Counters.TLBMisses, u.Counters.TLBMisses)
	}
}

func TestIdleRunsDuringBuild(t *testing.T) {
	cfg := small()
	kcfg := kernel.Optimized()
	r := run(t, clock.PPC604At185(), kcfg, cfg)
	if r.Idle.Polls == 0 {
		t.Fatal("idle task never ran")
	}
	if r.Idle.Cleared == 0 {
		t.Fatal("idle task cleared no pages despite IdleClearUncachedList")
	}
	if r.Counters.ClearedPageHits == 0 {
		t.Fatal("get_free_page never used a pre-cleared page")
	}
}
