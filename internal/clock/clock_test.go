package clock

import (
	"strings"
	"testing"
)

func TestModelGeometry(t *testing.T) {
	// §5.1: "The PowerPC 603 TLB has 128 entries and the 604 has 256".
	// §6.2: the 604 has "two times larger L1 cache and TLB".
	m603 := PPC603At180()
	m604 := PPC604At185()
	if m603.TLBEntries != 128 || m604.TLBEntries != 256 {
		t.Errorf("TLB entries: 603=%d 604=%d", m603.TLBEntries, m604.TLBEntries)
	}
	if m604.L1Size != 2*m603.L1Size {
		t.Errorf("L1 sizes: 603=%d 604=%d", m603.L1Size, m604.L1Size)
	}
	if m603.Kind != CPU603 || m604.Kind != CPU604 {
		t.Error("wrong CPU kinds")
	}
}

func TestModelCosts(t *testing.T) {
	// §5: 32-cycle handler invoke/return on the 603; 120-cycle hardware
	// walk and 91-cycle hash-miss interrupt on the 604.
	if PPC603At180().MissHandlerEntry != 32 {
		t.Error("603 miss handler entry cost should be 32 cycles")
	}
	m := PPC604At185()
	if m.HWWalkCycles != 120 || m.HashMissInterrupt != 91 {
		t.Errorf("604 costs: walk=%d interrupt=%d", m.HWWalkCycles, m.HashMissInterrupt)
	}
}

func TestFasterBoardOn200(t *testing.T) {
	// §6.2: the 604/200 machine has "significantly faster main memory".
	if PPC604At200().MemLatency >= PPC604At185().MemLatency {
		t.Error("604/200 must have lower memory latency than 604/185")
	}
}

func TestLedgerChargeAndConvert(t *testing.T) {
	l := NewLedger(100) // 100 MHz: 100 cycles = 1 us
	l.Charge(250)
	if l.Now() != 250 {
		t.Fatalf("Now() = %d", l.Now())
	}
	if us := l.Micros(250); us != 2.5 {
		t.Errorf("Micros(250) = %v, want 2.5", us)
	}
	if s := l.Seconds(100e6); s != 1.0 {
		t.Errorf("Seconds(100e6) = %v, want 1", s)
	}
}

func TestLedgerMBPerSec(t *testing.T) {
	l := NewLedger(100)
	// 1e6 bytes in 1e8 cycles = 1e6 bytes per second = 1 MB/s.
	if got := l.MBPerSec(1e6, 1e8); got != 1.0 {
		t.Errorf("MBPerSec = %v, want 1.0", got)
	}
	if got := l.MBPerSec(1e6, 0); got != 0 {
		t.Errorf("MBPerSec with zero cycles = %v, want 0", got)
	}
}

func TestLedgerRejectsBadMHz(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLedger(0) should panic")
		}
	}()
	NewLedger(0)
}

func TestCPUKindString(t *testing.T) {
	if CPU603.String() != "603" || CPU604.String() != "604" {
		t.Error("CPUKind.String() wrong")
	}
	if !strings.Contains(CPUKind(9).String(), "9") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestModelNames(t *testing.T) {
	for _, m := range []CPUModel{
		PPC603At133(), PPC603At180(), PPC604At133(), PPC604At185(), PPC604At200(),
	} {
		if m.Name == "" || m.MHz == 0 || m.LineSize != 32 {
			t.Errorf("bad model %+v", m)
		}
	}
}

// TestBudgetTrips covers the cycle-budget watchdog: an uncapped ledger
// never trips, a capped one panics with a *BudgetError carrying the
// fixed phrase the report harness string-matches.
func TestBudgetTrips(t *testing.T) {
	l := NewLedger(100)
	for i := 0; i < 1000; i++ {
		l.Charge(1000) // no budget: never trips
	}
	l.SetBudget(1_000_500)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("capped ledger never tripped")
		}
		be, ok := p.(*BudgetError)
		if !ok {
			t.Fatalf("panic value %T, want *BudgetError", p)
		}
		if !strings.Contains(be.Error(), "cycle budget exceeded") {
			t.Errorf("BudgetError message %q lost its fixed phrase", be.Error())
		}
		if be.Limit != 1_000_500 || be.Spent <= be.Limit {
			t.Errorf("BudgetError = %+v", be)
		}
	}()
	for i := 0; i < 10; i++ {
		l.Charge(1000)
	}
}

// TestDefaultBudgetInheritance checks NewLedger picks up the process
// default and SetDefaultBudget swaps and returns the old value.
func TestDefaultBudgetInheritance(t *testing.T) {
	old := SetDefaultBudget(5000)
	defer SetDefaultBudget(old)
	l := NewLedger(100)
	defer func() {
		if recover() == nil {
			t.Fatal("inherited budget never tripped")
		}
	}()
	l.Charge(6000)
}
