// Package clock provides the simulated time base: CPU models for the
// PowerPC 603 and 604 parts the paper measures, a cycle ledger that every
// simulated component charges against, and conversion from cycles to the
// microseconds/MB-per-second units LmBench reports.
package clock

import (
	"fmt"
	"sync/atomic"
)

// CPUKind distinguishes the two TLB-reload mechanisms the paper studies:
// the 603 takes a software interrupt on every TLB miss, the 604 walks the
// hashed page table in hardware and only interrupts on a hash-table miss.
type CPUKind int

const (
	// CPU603 reloads its TLB entirely in software.
	CPU603 CPUKind = iota
	// CPU604 reloads its TLB with a hardware hash-table search. Per §4
	// of the paper this also stands in for the 601 and 750.
	CPU604
)

func (k CPUKind) String() string {
	switch k {
	case CPU603:
		return "603"
	case CPU604:
		return "604"
	}
	return fmt.Sprintf("CPUKind(%d)", int(k))
}

// CPUModel describes one concrete part + board combination. The cache
// and TLB geometry come from the 603/604 user's manuals; the cost
// constants come from the paper's own measurements (§5, §6).
type CPUModel struct {
	// Name labels the model in reports ("604 185MHz" etc).
	Name string
	// Kind selects the TLB reload mechanism.
	Kind CPUKind
	// MHz is the core clock; it converts cycles to wall-clock time.
	MHz int

	// TLBEntries is the total TLB capacity: 128 on the 603, 256 on
	// the 604 (§5.1).
	TLBEntries int
	// TLBWays is the set associativity of the TLB (2-way on both).
	TLBWays int
	// SplitTLB models the real parts' separate instruction/data TLBs
	// (each of TLBEntries/2 entries) instead of the default unified
	// model the paper's entry counts suggest. An ablation toggle.
	SplitTLB bool

	// L1Size and L1Ways describe each of the split I/D caches:
	// 16 KB 4-way on the 603, 32 KB 4-way on the 604.
	L1Size int
	L1Ways int
	// LineSize is the cache line size in bytes (32 on both).
	LineSize int

	// MemLatency is the cost in cycles of a cache-line fill from main
	// memory. The paper notes the 604/200 machine had "significantly
	// faster main memory and a better board design".
	MemLatency int

	// L2Size and L2Latency describe an optional unified board-level L2
	// cache (the PowerMac 9500 shipped with 512 KB). Zero size means
	// none — the default, which is what the cost constants were
	// calibrated without; enable it for ablations.
	L2Size    int
	L2Latency int

	// MissHandlerEntry is the fixed cost to invoke and return from the
	// software TLB-miss handler: 32 cycles on the 603 (§5).
	MissHandlerEntry int
	// HWWalkCycles is the worst-case cost of the 604's hardware hash
	// search: up to 120 cycles and 16 memory accesses (§5). The model
	// charges proportionally when the entry is found early.
	HWWalkCycles int
	// HashMissInterrupt is the additional cost to invoke the software
	// handler when the hardware search fails: at least 91 cycles (§5).
	HashMissInterrupt int
}

// Standard machine configurations measured in the paper. RAM is 32 MB
// in every configuration (§4), which keeps the RAM : hash-table : TLB
// ratio fixed.
func model603(name string, mhz, memLat int) CPUModel {
	return CPUModel{
		Name: name, Kind: CPU603, MHz: mhz,
		TLBEntries: 128, TLBWays: 2,
		L1Size: 16 * 1024, L1Ways: 4, LineSize: 32,
		MemLatency:       memLat,
		MissHandlerEntry: 32,
		// The 603 never walks the table in hardware, but the software
		// emulation of the 604 search (§6.2) uses the same per-access
		// memory costs, charged through the cache model.
		HWWalkCycles:      0,
		HashMissInterrupt: 0,
	}
}

func model604(name string, mhz, memLat int) CPUModel {
	return CPUModel{
		Name: name, Kind: CPU604, MHz: mhz,
		TLBEntries: 256, TLBWays: 2,
		L1Size: 32 * 1024, L1Ways: 4, LineSize: 32,
		MemLatency:        memLat,
		MissHandlerEntry:  32,
		HWWalkCycles:      120,
		HashMissInterrupt: 91,
	}
}

// PPC603At133 is the 133 MHz 603 used in Table 2.
func PPC603At133() CPUModel { return model603("603 133MHz", 133, 30) }

// PPC603At180 is the 180 MHz 603 used in Table 1.
func PPC603At180() CPUModel { return model603("603 180MHz", 180, 34) }

// PPC604At185 is the 185 MHz 604 used in Tables 1 and 2.
func PPC604At185() CPUModel { return model604("604 185MHz", 185, 34) }

// PPC604At200 is the 200 MHz 604 with the faster memory system noted
// in §6.2 of the paper.
func PPC604At200() CPUModel { return model604("604 200MHz", 200, 26) }

// PPC604At133 is the 133 MHz 604 PowerMac 9500 used for the OS
// comparison in Table 3.
func PPC604At133() CPUModel { return model604("604 133MHz", 133, 30) }

// ModelByName returns a standard configuration by its CLI name:
// "603/133", "603/180", "604/133", "604/185", "604/200".
func ModelByName(name string) (CPUModel, bool) {
	switch name {
	case "603/133":
		return PPC603At133(), true
	case "603/180":
		return PPC603At180(), true
	case "604/133":
		return PPC604At133(), true
	case "604/185":
		return PPC604At185(), true
	case "604/200":
		return PPC604At200(), true
	}
	return CPUModel{}, false
}

// Cycles is a count of simulated CPU cycles.
type Cycles uint64

// meter is the process-wide total of simulated cycles charged across
// all ledgers. Ledgers flush to it in batches so the (single-hottest-
// path) Charge call pays no atomic per charge; the total therefore
// trails reality by less than meterBatch cycles per live ledger.
var meter atomic.Uint64 //mmutricks:atomic

// meterBatch is the flush granularity: small enough that per-experiment
// readings are accurate to a fraction of a percent, large enough that
// the atomic add is amortized over tens of thousands of charges.
const meterBatch = 1 << 16

// MeterNow returns the process-wide simulated-cycle total. It is safe
// to call concurrently; per-interval attribution is only exact when a
// single simulation runs at a time (the sequential harness pass).
func MeterNow() uint64 { return meter.Load() }

// Ledger accumulates simulated cycles. Components charge it; the
// benchmark harness reads elapsed time from it. A Ledger also tracks a
// nesting count of "accounting pauses" so measurement scaffolding can
// exclude itself (not used by the kernel proper).
type Ledger struct {
	mhz     int
	cycles  Cycles
	pending Cycles
	budget  Cycles
}

// defaultBudget seeds every new ledger's cycle budget; zero (the
// process default) means unlimited. The report harness sets it so a
// runaway experiment trips a watchdog instead of hanging the run.
var defaultBudget atomic.Uint64 //mmutricks:atomic

// SetDefaultBudget sets the budget NewLedger hands to future ledgers
// (0 = unlimited) and returns the previous value so callers can
// restore it.
func SetDefaultBudget(n Cycles) (old Cycles) {
	return Cycles(defaultBudget.Swap(uint64(n)))
}

// NewLedger returns a ledger converting cycles at the given core clock.
func NewLedger(mhz int) *Ledger {
	if mhz <= 0 {
		panic("clock: non-positive MHz")
	}
	return &Ledger{mhz: mhz, budget: Cycles(defaultBudget.Load())}
}

// SetBudget caps this ledger at n cycles (0 = unlimited), overriding
// the process default it inherited. Exceeding the cap panics with a
// *BudgetError on the Charge that crosses it.
func (l *Ledger) SetBudget(n Cycles) { l.budget = n }

// BudgetError is the panic value a ledger raises when a Charge pushes
// it past its cycle budget. The report harness string-matches Error()
// to classify the failure, so the message keeps the fixed phrase
// "cycle budget exceeded".
type BudgetError struct {
	// Limit is the budget that was exceeded.
	Limit Cycles
	// Spent is the ledger's total at the tripping charge.
	Spent Cycles
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("clock: cycle budget exceeded: spent %d of %d simulated cycles", e.Spent, e.Limit)
}

// trip raises the budget watchdog. Kept out of Charge so the hot path
// stays allocation-free; trip runs at most once per ledger lifetime.
func (l *Ledger) trip() {
	panic(&BudgetError{Limit: l.budget, Spent: l.cycles})
}

// Charge adds n cycles to the ledger. Negative charges are rejected.
//
//mmutricks:noalloc
func (l *Ledger) Charge(n Cycles) {
	l.cycles += n
	if l.budget != 0 && l.cycles > l.budget {
		l.trip() //mmutricks:noalloc-ok watchdog: panics once, never returns to the hot path
	}
	l.pending += n
	if l.pending >= meterBatch {
		meter.Add(uint64(l.pending))
		l.pending = 0
	}
}

// Now returns the cycle count so far.
//
//mmutricks:noalloc
func (l *Ledger) Now() Cycles { return l.cycles }

// MHz returns the clock rate the ledger converts at.
func (l *Ledger) MHz() int { return l.mhz }

// Micros converts a cycle delta to microseconds at the ledger's clock.
func (l *Ledger) Micros(d Cycles) float64 {
	return float64(d) / float64(l.mhz)
}

// Seconds converts a cycle delta to seconds at the ledger's clock.
func (l *Ledger) Seconds(d Cycles) float64 {
	return float64(d) / float64(l.mhz) / 1e6
}

// MBPerSec converts bytes moved in a cycle delta to MB/s (LmBench's
// 1 MB = 1e6 bytes convention).
func (l *Ledger) MBPerSec(bytes int64, d Cycles) float64 {
	if d == 0 {
		return 0
	}
	return float64(bytes) / 1e6 / l.Seconds(d)
}
