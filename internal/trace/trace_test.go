package trace

import (
	"testing"

	"mmutricks/internal/arch"
)

const base = arch.EffectiveAddr(0x10000000)

func pageOf(ea arch.EffectiveAddr) int {
	return int(ea-base) / arch.PageSize
}

func TestSequentialCoversAndWraps(t *testing.T) {
	g := NewSequential(base, 4)
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, pageOf(g.Next()))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
}

func TestStridedCoversWhenCoprime(t *testing.T) {
	g := NewStrided(base, 8, 3)
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		seen[pageOf(g.Next())] = true
	}
	if len(seen) != 8 {
		t.Fatalf("stride 3 over 8 pages covered %d pages", len(seen))
	}
}

func TestWorkingSetSkew(t *testing.T) {
	g := NewWorkingSet(base, 1000, 100, 90, 7)
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if pageOf(g.Next()) < 100 {
			hot++
		}
	}
	// 90% go to the hot set directly, plus ~10% of the cold scatter
	// lands there by chance: expect ~91%.
	frac := float64(hot) / n
	if frac < 0.85 || frac > 0.97 {
		t.Fatalf("hot fraction = %.3f, want ~0.91", frac)
	}
}

func TestWorkingSetInBounds(t *testing.T) {
	g := NewWorkingSet(base, 123, 7, 80, 3)
	for i := 0; i < 10000; i++ {
		p := pageOf(g.Next())
		if p < 0 || p >= 123 {
			t.Fatalf("page %d out of bounds", p)
		}
	}
}

func TestPointerChaseIsSingleCycle(t *testing.T) {
	const pages = 257
	g := NewPointerChase(base, pages, 11)
	start := pageOf(g.Next())
	seen := map[int]bool{start: true}
	for i := 0; i < pages-1; i++ {
		p := pageOf(g.Next())
		if seen[p] {
			t.Fatalf("page %d revisited after %d steps — not a single cycle", p, i+1)
		}
		seen[p] = true
	}
	// The next reference closes the cycle.
	if p := pageOf(g.Next()); p != start {
		t.Fatalf("cycle did not close: got %d want %d", p, start)
	}
}

func TestZipfianSkew(t *testing.T) {
	g := NewZipfian(base, 1000, 5)
	counts := map[int]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[pageOf(g.Next())]++
	}
	hot1pct := 0
	for p, c := range counts {
		if p <= 10 {
			hot1pct += c
		}
	}
	if frac := float64(hot1pct) / n; frac < 0.5 {
		t.Fatalf("hottest 1%% got only %.2f of traffic", frac)
	}
}

func TestDeterminism(t *testing.T) {
	gens := func() []Generator {
		return []Generator{
			NewSequential(base, 64),
			NewStrided(base, 64, 7),
			NewWorkingSet(base, 256, 32, 90, 42),
			NewPointerChase(base, 128, 42),
			NewZipfian(base, 512, 42),
		}
	}
	a, b := gens(), gens()
	for gi := range a {
		for i := 0; i < 1000; i++ {
			if a[gi].Next() != b[gi].Next() {
				t.Fatalf("%s not deterministic at step %d", a[gi].Name(), i)
			}
		}
	}
}

func TestNames(t *testing.T) {
	for _, g := range []Generator{
		NewSequential(base, 4), NewStrided(base, 8, 3),
		NewWorkingSet(base, 100, 10, 90, 1), NewPointerChase(base, 16, 1),
		NewZipfian(base, 200, 1),
	} {
		if g.Name() == "" {
			t.Error("empty generator name")
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []func(){
		func() { NewSequential(base, 0) },
		func() { NewStrided(base, 0, 1) },
		func() { NewStrided(base, 8, 0) },
		func() { NewWorkingSet(base, 10, 20, 50, 1) },
		func() { NewWorkingSet(base, 10, 5, 150, 1) },
		func() { NewPointerChase(base, 0, 1) },
		func() { NewZipfian(base, 50, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}
