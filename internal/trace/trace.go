// Package trace generates synthetic memory-reference streams with
// controlled locality, for TLB and cache studies. §5.1 of the paper
// worries (via Talluri) that "our benchmarks do not represent
// applications that really stress TLB capacity"; these generators build
// the workloads that do.
//
// All generators are deterministic: they use a small self-contained
// xorshift PRNG seeded explicitly, so experiments reproduce exactly.
package trace

import (
	"fmt"

	"mmutricks/internal/arch"
)

// Generator produces an infinite reference stream over a region of
// pages. Next returns the effective address of the next reference.
type Generator interface {
	// Next returns the next reference.
	Next() arch.EffectiveAddr
	// Name labels the generator in reports.
	Name() string
}

// RunGenerator is implemented by generators whose stream is locally
// arithmetic: NextRun returns the next batch of references as one
// equally-strided run, advancing the stream exactly as the same number
// of Next calls would. Random-pattern generators stay per-reference.
type RunGenerator interface {
	Generator
	// NextRun returns the start address, the reference count
	// (1 <= count <= max), and the byte stride of the next batch.
	NextRun(max int) (ea arch.EffectiveAddr, count, stride int)
}

// rng is a deterministic xorshift32.
type rng uint32

func newRNG(seed uint32) *rng {
	if seed == 0 {
		seed = 0x9E3779B9
	}
	r := rng(seed)
	return &r
}

func (r *rng) next() uint32 {
	x := uint32(*r)
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	*r = rng(x)
	return x
}

func (r *rng) intn(n int) int { return int(r.next() % uint32(n)) }

// Sequential sweeps the region page by page, touching one word per
// page — the TLB-worst, cache-indifferent pattern of a big array walk.
type Sequential struct {
	base  arch.EffectiveAddr
	pages int
	pos   int
}

// NewSequential builds a sequential page walker.
func NewSequential(base arch.EffectiveAddr, pages int) *Sequential {
	if pages <= 0 {
		panic("trace: non-positive page count")
	}
	return &Sequential{base: base, pages: pages}
}

// Name implements Generator.
func (s *Sequential) Name() string { return "sequential" }

// Next implements Generator.
func (s *Sequential) Next() arch.EffectiveAddr {
	ea := s.base + arch.EffectiveAddr(s.pos*arch.PageSize)
	s.pos = (s.pos + 1) % s.pages
	return ea
}

// NextRun implements RunGenerator: the walk is arithmetic until it
// wraps at the region end.
func (s *Sequential) NextRun(max int) (arch.EffectiveAddr, int, int) {
	count := s.pages - s.pos
	if count > max {
		count = max
	}
	ea := s.base + arch.EffectiveAddr(s.pos*arch.PageSize)
	s.pos = (s.pos + count) % s.pages
	return ea, count, arch.PageSize
}

// Strided touches every k-th page, wrapping — the pattern of row
// accesses in a column-major matrix.
type Strided struct {
	base   arch.EffectiveAddr
	pages  int
	stride int
	pos    int
}

// NewStrided builds a strided walker. The stride should be co-prime
// with the page count to cover the whole region.
func NewStrided(base arch.EffectiveAddr, pages, stride int) *Strided {
	if pages <= 0 || stride <= 0 {
		panic("trace: bad strided geometry")
	}
	return &Strided{base: base, pages: pages, stride: stride}
}

// Name implements Generator.
func (s *Strided) Name() string { return fmt.Sprintf("strided-%d", s.stride) }

// Next implements Generator.
func (s *Strided) Next() arch.EffectiveAddr {
	ea := s.base + arch.EffectiveAddr(s.pos*arch.PageSize)
	s.pos = (s.pos + s.stride) % s.pages
	return ea
}

// NextRun implements RunGenerator: the walk is arithmetic until the
// position would wrap past the region end.
func (s *Strided) NextRun(max int) (arch.EffectiveAddr, int, int) {
	count := (s.pages-1-s.pos)/s.stride + 1
	if count > max {
		count = max
	}
	ea := s.base + arch.EffectiveAddr(s.pos*arch.PageSize)
	s.pos = (s.pos + count*s.stride) % s.pages
	return ea, count, s.stride * arch.PageSize
}

// WorkingSet models the classic 90/10 behaviour: most references land
// in a hot subset of the region, the rest scatter across all of it.
type WorkingSet struct {
	base     arch.EffectiveAddr
	pages    int
	hotPages int
	hotPct   int
	r        *rng
}

// NewWorkingSet builds a working-set generator: hotPct percent of
// references hit the first hotPages pages.
func NewWorkingSet(base arch.EffectiveAddr, pages, hotPages, hotPct int, seed uint32) *WorkingSet {
	if pages <= 0 || hotPages <= 0 || hotPages > pages || hotPct < 0 || hotPct > 100 {
		panic("trace: bad working-set geometry")
	}
	return &WorkingSet{base: base, pages: pages, hotPages: hotPages, hotPct: hotPct, r: newRNG(seed)}
}

// Name implements Generator.
func (w *WorkingSet) Name() string {
	return fmt.Sprintf("workingset-%d/%d-%d%%", w.hotPages, w.pages, w.hotPct)
}

// Next implements Generator.
func (w *WorkingSet) Next() arch.EffectiveAddr {
	var page int
	if w.r.intn(100) < w.hotPct {
		page = w.r.intn(w.hotPages)
	} else {
		page = w.r.intn(w.pages)
	}
	off := w.r.intn(arch.PageSize / 4)
	return w.base + arch.EffectiveAddr(page*arch.PageSize+off*4)
}

// PointerChase follows a fixed pseudo-random permutation cycle over the
// pages — linked-list traversal, the pattern that defeats both
// prefetchers and spatial locality.
type PointerChase struct {
	base arch.EffectiveAddr
	next []int
	pos  int
}

// NewPointerChase builds a permutation walk covering every page exactly
// once per cycle (a Sattolo shuffle, so the permutation is one cycle).
func NewPointerChase(base arch.EffectiveAddr, pages int, seed uint32) *PointerChase {
	if pages <= 0 {
		panic("trace: non-positive page count")
	}
	r := newRNG(seed)
	perm := make([]int, pages)
	for i := range perm {
		perm[i] = i
	}
	// Sattolo's algorithm: a uniformly random single-cycle permutation.
	for i := pages - 1; i > 0; i-- {
		j := r.intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	next := make([]int, pages)
	for i := 0; i < pages-1; i++ {
		next[perm[i]] = perm[i+1]
	}
	next[perm[pages-1]] = perm[0]
	return &PointerChase{base: base, next: next}
}

// Name implements Generator.
func (p *PointerChase) Name() string { return "pointer-chase" }

// Next implements Generator.
func (p *PointerChase) Next() arch.EffectiveAddr {
	ea := p.base + arch.EffectiveAddr(p.pos*arch.PageSize)
	p.pos = p.next[p.pos]
	return ea
}

// Zipfian approximates a Zipf-distributed page popularity with a
// coarse three-tier model (the realistic shape for page-cache and
// database buffer traffic).
type Zipfian struct {
	base  arch.EffectiveAddr
	pages int
	r     *rng
}

// NewZipfian builds the three-tier popularity generator.
func NewZipfian(base arch.EffectiveAddr, pages int, seed uint32) *Zipfian {
	if pages < 100 {
		panic("trace: zipfian needs >= 100 pages")
	}
	return &Zipfian{base: base, pages: pages, r: newRNG(seed)}
}

// Name implements Generator.
func (z *Zipfian) Name() string { return "zipfian" }

// Next implements Generator.
func (z *Zipfian) Next() arch.EffectiveAddr {
	var page int
	switch roll := z.r.intn(100); {
	case roll < 60: // 60% of traffic to the hottest 1%
		page = z.r.intn(z.pages/100 + 1)
	case roll < 90: // 30% to the next 10%
		page = z.pages/100 + z.r.intn(z.pages/10)
	default: // tail
		page = z.r.intn(z.pages)
	}
	if page >= z.pages {
		page = z.pages - 1
	}
	off := z.r.intn(arch.PageSize / 4)
	return z.base + arch.EffectiveAddr(page*arch.PageSize+off*4)
}
