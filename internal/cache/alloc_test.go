package cache

import (
	"testing"

	"mmutricks/internal/arch"
)

// Every simulated memory reference passes through Access; it must not
// allocate on hits or on fills.
func TestAccessZeroAllocs(t *testing.T) {
	c := New("d", 32<<10, 4, 32)
	var pa arch.PhysAddr
	if n := testing.AllocsPerRun(1000, func() {
		c.Access(pa, ClassUser, false)
		pa += 32
	}); n != 0 {
		t.Fatalf("Access allocates %.1f times per op, want 0", n)
	}
}
