package cache

import (
	"testing"

	"mmutricks/internal/arch"
)

// FuzzAccessSequence drives a cache with an arbitrary access stream and
// checks structural invariants.
func FuzzAccessSequence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 128})
	f.Fuzz(func(t *testing.T, stream []byte) {
		c := New("fz", 4096, 2, 32) // 128 lines
		dirty := 0
		for i := 0; i+4 < len(stream); i += 5 {
			pa := uint32(stream[i])<<16 | uint32(stream[i+1])<<8 | uint32(stream[i+2])
			class := Class(stream[i+3]) % 7
			write := stream[i+4]&1 == 1
			c.Access(arch.PhysAddr(pa), class, write)
			if write {
				dirty++
			}
		}
		total := 0
		for _, n := range c.Residency() {
			total += n
		}
		if total > 128 {
			t.Fatalf("residency %d exceeds capacity", total)
		}
		if c.DirtyLines() > total {
			t.Fatal("more dirty lines than resident lines")
		}
		s := c.Stats()
		if s.TotalMisses() > s.TotalAccesses() {
			t.Fatal("more misses than accesses")
		}
	})
}
