package cache

import (
	"testing"

	"mmutricks/internal/arch"
)

// AccessRunCount is the harness's hottest function: it must agree with
// the scalar Access loop on every statistic and every line of cache
// state, for any alignment, stride, and geometry. scalarCount is the
// ground truth.
func scalarCount(c *Cache, pa arch.PhysAddr, n, stride int, class Class, write bool) (nmiss, ncast int) {
	for i := 0; i < n; i++ {
		hit, castout := c.Access(pa+arch.PhysAddr(i*stride), class, write)
		if !hit {
			nmiss++
			if castout {
				ncast++
			}
		}
	}
	return nmiss, ncast
}

func TestAccessRunCountMatchesScalar(t *testing.T) {
	cases := []struct {
		name             string
		size, ways, line int
		pa               arch.PhysAddr
		n, stride        int
		write            bool
	}{
		{"aligned line stride", 16 << 10, 4, 32, 0x10000, 4096, 32, false},
		{"aligned write stream", 16 << 10, 4, 32, 0x10000, 4096, 32, true},
		{"aligned wide stride", 32 << 10, 4, 32, 0x8000, 1024, 128, true},
		{"unaligned base", 16 << 10, 4, 32, 0x10004, 2048, 32, false},
		{"sub-line stride", 16 << 10, 4, 32, 0x10000, 5000, 8, true},
		{"sub-line unaligned", 32 << 10, 4, 32, 0x10006, 3000, 12, false},
		{"single reference", 16 << 10, 4, 32, 0x2000, 1, 4, true},
		{"2-way geometry", 16 << 10, 2, 32, 0x10000, 2048, 32, true},
		{"8-way geometry", 16 << 10, 8, 32, 0x10000, 2048, 32, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cr := New("run", tc.size, tc.ways, tc.line)
			cs := New("scalar", tc.size, tc.ways, tc.line)
			// Warm both caches identically so eviction and castout
			// paths run, then compare the batched and scalar counts.
			warm := func(c *Cache) {
				for i := 0; i < 4096; i++ {
					c.Access(arch.PhysAddr(i*tc.line), ClassKernelData, i%3 == 0)
				}
			}
			warm(cr)
			warm(cs)
			rm, rc := cr.AccessRunCount(tc.pa, tc.n, tc.stride, ClassUser, tc.write)
			sm, sc := scalarCount(cs, tc.pa, tc.n, tc.stride, ClassUser, tc.write)
			if rm != sm || rc != sc {
				t.Fatalf("counts diverge: run (%d misses, %d castouts), scalar (%d, %d)", rm, rc, sm, sc)
			}
			if *cr.Stats() != *cs.Stats() {
				t.Fatalf("stats diverge:\nrun    %+v\nscalar %+v", *cr.Stats(), *cs.Stats())
			}
			if cr.seq != cs.seq {
				t.Fatalf("LRU sequence diverges: run %d, scalar %d", cr.seq, cs.seq)
			}
			for i := range cr.lines {
				if cr.lines[i] != cs.lines[i] {
					t.Fatalf("line %d diverges: run %+v, scalar %+v", i, cr.lines[i], cs.lines[i])
				}
			}
		})
	}
}

// FuzzAccessRunCountParity drives random interleavings of batched and
// scalar accesses over random geometries, checking that batched counts
// never deviate and the final cache state is bit-identical.
func FuzzAccessRunCountParity(f *testing.F) {
	f.Add(uint8(0), uint32(0x10000), uint16(512), uint8(32), uint8(1))
	f.Add(uint8(1), uint32(0x8004), uint16(3000), uint8(12), uint8(0))
	f.Fuzz(func(t *testing.T, geom uint8, pa uint32, n uint16, stride, write uint8) {
		ways := []int{2, 4, 8}[geom%3]
		st := int(stride)%256 + 1
		cr := New("run", 16<<10, ways, 32)
		cs := New("scalar", 16<<10, ways, 32)
		rm, rc := cr.AccessRunCount(arch.PhysAddr(pa), int(n), st, ClassUser, write%2 == 1)
		sm, sc := scalarCount(cs, arch.PhysAddr(pa), int(n), st, ClassUser, write%2 == 1)
		if rm != sm || rc != sc {
			t.Fatalf("counts diverge: run (%d, %d), scalar (%d, %d)", rm, rc, sm, sc)
		}
		if *cr.Stats() != *cs.Stats() || cr.seq != cs.seq {
			t.Fatal("stats or LRU sequence diverge")
		}
		for i := range cr.lines {
			if cr.lines[i] != cs.lines[i] {
				t.Fatalf("line %d diverges", i)
			}
		}
	})
}

// The batch paths must stay allocation-free: they run inside the
// noalloc-proved simulation core, and a hidden allocation would also
// wreck the throughput the batching exists for.
func TestAccessRunZeroAllocs(t *testing.T) {
	c := New("d", 32<<10, 4, 32)
	var missBuf [256]MissRef
	var pa arch.PhysAddr
	if n := testing.AllocsPerRun(200, func() {
		c.AccessRun(pa, 128, 32, ClassUser, true, missBuf[:])
		c.AccessRunCount(pa, 128, 32, ClassUser, true)
		c.AccessRunCount(pa+4, 100, 12, ClassUser, false)
		pa += 4096
	}); n != 0 {
		t.Fatalf("batched access paths allocate %.1f times per op, want 0", n)
	}
}

// BenchmarkAccessRun vs BenchmarkAccessScalar measures the batching
// win at the cache layer: one call per 128-reference streak against
// 128 scalar calls, on the miss-heavy streaming pattern the harness
// spends most of its time in (page clears, copies, sweeps).
func BenchmarkAccessRun(b *testing.B) {
	c := New("d", 16<<10, 4, 32)
	var pa arch.PhysAddr
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AccessRunCount(pa, 128, 32, ClassUser, true)
		pa += 4096
	}
}

func BenchmarkAccessScalar(b *testing.B) {
	c := New("d", 16<<10, 4, 32)
	var pa arch.PhysAddr
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 128; j++ {
			c.Access(pa+arch.PhysAddr(j*32), ClassUser, true)
		}
		pa += 4096
	}
}
