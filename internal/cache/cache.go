// Package cache implements the set-associative L1 caches of the PowerPC
// 603/604 as a functional simulator with true-LRU replacement.
//
// Beyond hit/miss behaviour, the cache attributes every access, fill and
// eviction to a traffic class (user data, kernel text, page tables, the
// hash table, idle-task work, ...). Sections 8 and 9 of the paper are
// about exactly this attribution: page-table walks and idle-task page
// clearing filling the cache with lines that displace useful user data.
// Cache-inhibited accesses (the architected WIMG "I" bit) bypass the
// cache entirely, which is how the paper's uncached page-clearing and
// uncached idle-task experiments work.
package cache

import (
	"fmt"

	"mmutricks/internal/arch"
)

// Class identifies who generated a memory access, for attribution.
type Class int

const (
	// ClassUser is ordinary user-mode instruction/data traffic.
	ClassUser Class = iota
	// ClassKernelText is kernel instruction fetch.
	ClassKernelText
	// ClassKernelData is kernel data (task structs, buffers, stacks).
	ClassKernelData
	// ClassPageTable is traffic to the Linux two-level page tables.
	ClassPageTable
	// ClassHashTable is traffic to the PowerPC hashed page table.
	ClassHashTable
	// ClassIdle is work done by the idle task (page clearing, zombie
	// reclaim scans).
	ClassIdle
	// ClassIO is device/frame-buffer traffic.
	ClassIO
	numClasses
)

// Classes lists all traffic classes in order, for iteration in reports.
var Classes = []Class{ClassUser, ClassKernelText, ClassKernelData, ClassPageTable, ClassHashTable, ClassIdle, ClassIO}

func (c Class) String() string {
	switch c {
	case ClassUser:
		return "user"
	case ClassKernelText:
		return "kernel-text"
	case ClassKernelData:
		return "kernel-data"
	case ClassPageTable:
		return "page-table"
	case ClassHashTable:
		return "hash-table"
	case ClassIdle:
		return "idle"
	case ClassIO:
		return "io"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

type line struct {
	valid bool
	dirty bool
	tag   uint32
	class Class
	// lru is a per-set sequence number; larger = more recently used.
	lru uint64
}

// Stats aggregates per-class counters for one cache.
type Stats struct {
	Accesses  [numClasses]uint64
	Misses    [numClasses]uint64
	Inhibited [numClasses]uint64
	Fills     [numClasses]uint64
	// Castouts[victim] counts dirty lines of class `victim` written
	// back to memory on eviction (the 603/604 caches are copy-back).
	Castouts [numClasses]uint64
	// EvictedBy[victim][filler] counts lines of class `victim` evicted
	// by a fill on behalf of class `filler` — the pollution matrix.
	EvictedBy [numClasses][numClasses]uint64
}

// TotalAccesses sums accesses over all classes.
func (s *Stats) TotalAccesses() uint64 {
	var t uint64
	for _, v := range s.Accesses {
		t += v
	}
	return t
}

// TotalMisses sums misses over all classes.
func (s *Stats) TotalMisses() uint64 {
	var t uint64
	for _, v := range s.Misses {
		t += v
	}
	return t
}

// MissRate returns misses/accesses over all classes (0 if idle).
func (s *Stats) MissRate() float64 {
	a := s.TotalAccesses()
	if a == 0 {
		return 0
	}
	return float64(s.TotalMisses()) / float64(a)
}

// PollutionBy returns how many lines belonging to *other* classes were
// evicted by fills on behalf of class c.
func (s *Stats) PollutionBy(c Class) uint64 {
	var t uint64
	for victim := Class(0); victim < numClasses; victim++ {
		if victim != c {
			t += s.EvictedBy[victim][c]
		}
	}
	return t
}

// Cache is one set-associative L1 cache (instruction or data).
type Cache struct {
	name      string
	sets      [][]line
	ways      int
	lineShift uint
	setMask   uint32
	seq       uint64
	stats     Stats
}

// New builds a cache of the given total size, associativity and line
// size. Size must be ways*lineSize*2^k for some k.
func New(name string, size, ways, lineSize int) *Cache {
	if size <= 0 || ways <= 0 || lineSize <= 0 {
		panic("cache: non-positive geometry")
	}
	nlines := size / lineSize
	nsets := nlines / ways
	if nsets*ways*lineSize != size || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: invalid geometry size=%d ways=%d line=%d", name, size, ways, lineSize))
	}
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	c := &Cache{
		name:      name,
		sets:      make([][]line, nsets),
		ways:      ways,
		lineShift: shift,
		setMask:   uint32(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, ways)
	}
	return c
}

// Name returns the label the cache was created with.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return 1 << c.lineShift }

// Stats returns a pointer to the live counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// index splits a physical address into set index and tag.
//
//mmutricks:noalloc
func (c *Cache) index(pa arch.PhysAddr) (set int, tag uint32) {
	lineAddr := uint32(pa) >> c.lineShift
	return int(lineAddr & c.setMask), lineAddr >> 0
}

// Access performs one cached access on behalf of class. It returns
// whether the access hit and whether a miss had to cast out a dirty
// victim line (a memory writeback the caller must charge — the 603/604
// caches are copy-back). Writes mark the line dirty; misses allocate
// for both reads and writes, and any evicted line is attributed in the
// pollution matrix.
//
//mmutricks:free hit/miss/castout are returned; the machine layer charges them
//mmutricks:noalloc
func (c *Cache) Access(pa arch.PhysAddr, class Class, write bool) (hit, castout bool) {
	c.stats.Accesses[class]++
	set, tag := c.index(pa)
	lines := c.sets[set]
	c.seq++
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.seq
			if write {
				lines[i].dirty = true
			}
			return true, false
		}
	}
	c.stats.Misses[class]++
	castout = c.fill(set, tag, class, write)
	return false, castout
}

// AccessInhibited performs a cache-inhibited access: it never hits and
// never fills, exactly like a WIMG I=1 access on the real part.
//
//mmutricks:free the caller charges the uncached memory latency
//mmutricks:noalloc
func (c *Cache) AccessInhibited(class Class) {
	c.stats.Inhibited[class]++
}

// AccessNoAlloc performs an access under a locked cache (§10.1): hits
// behave normally, but misses do not allocate — nothing is evicted to
// make room. It returns whether the access hit.
//
//mmutricks:free hit/miss is returned; the machine layer charges it
//mmutricks:noalloc
func (c *Cache) AccessNoAlloc(pa arch.PhysAddr, class Class, write bool) (hit bool) {
	c.stats.Accesses[class]++
	set, tag := c.index(pa)
	lines := c.sets[set]
	c.seq++
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.seq
			if write {
				lines[i].dirty = true
			}
			return true
		}
	}
	c.stats.Misses[class]++
	return false
}

// ZeroLine is the dcbz instruction: establish the line in the cache,
// zeroed and dirty, WITHOUT reading memory. §9 notes the authors
// avoided it for bzero() "for the same reason" as cached idle clearing:
// it trades a memory read for maximal cache pollution. It returns
// whether a dirty victim was cast out.
//
//mmutricks:free the castout is returned; machine.ZeroLine charges it
func (c *Cache) ZeroLine(pa arch.PhysAddr, class Class) (castout bool) {
	c.stats.Accesses[class]++
	set, tag := c.index(pa)
	lines := c.sets[set]
	c.seq++
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.seq
			lines[i].dirty = true
			return false
		}
	}
	// Counts as an access but not a (latency-bearing) miss: the fill
	// needs no memory read.
	return c.fill(set, tag, class, true)
}

// Prefetch issues a dcbt-style touch: the line is brought in (filling
// and possibly evicting, with normal attribution) but no access or miss
// is counted — the latency is assumed overlapped with other work. It
// reports whether a fill was needed.
//
//mmutricks:free prefetch latency overlaps; machine.Prefetch charges the issue cost
func (c *Cache) Prefetch(pa arch.PhysAddr, class Class) (filled bool) {
	set, tag := c.index(pa)
	lines := c.sets[set]
	c.seq++
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.seq
			return false
		}
	}
	c.fill(set, tag, class, false)
	return true
}

// Touch fills a line without counting an access or a miss; used to
// preload state (e.g. warming the cache before measurement).
//
//mmutricks:free deliberately uncounted warm-up, outside the measured window
func (c *Cache) Touch(pa arch.PhysAddr, class Class) {
	set, tag := c.index(pa)
	lines := c.sets[set]
	c.seq++
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.seq
			return
		}
	}
	c.fill(set, tag, class, false)
}

// fill installs a line, evicting the LRU way if the set is full. It
// reports whether the victim was dirty (requiring a writeback).
//
//mmutricks:noalloc
func (c *Cache) fill(set int, tag uint32, class Class, write bool) (castout bool) {
	c.stats.Fills[class]++
	lines := c.sets[set]
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			goto install
		}
		if lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	c.stats.EvictedBy[lines[victim].class][class]++
	if lines[victim].dirty {
		c.stats.Castouts[lines[victim].class]++
		castout = true
	}
install:
	lines[victim] = line{valid: true, dirty: write, tag: tag, class: class, lru: c.seq}
	return castout
}

// Contains reports whether the line holding pa is currently resident.
func (c *Cache) Contains(pa arch.PhysAddr) bool {
	set, tag := c.index(pa)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// InvalidateAll empties the cache (used at machine reset).
//
//mmutricks:free machine reset happens outside any measured window
func (c *Cache) InvalidateAll() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
}

// ResetStats zeroes the counters without touching cache contents, so a
// benchmark can warm up and then measure.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// CorruptCleanLine picks an arbitrary valid, clean line — skipping the
// line holding avoid, so the access in flight is never the victim —
// and returns its physical address as a parity-fault report. Clean
// lines only: a flip in a clean line is recoverable by invalidation
// (memory still has the data); a dirty line would be data loss. The
// line state itself is untouched — the poison lives in the pending
// machine-check report, and the repair is InvalidateLine.
//
//mmutricks:free a hardware parity flip costs the running program nothing
//mmutricks:noalloc
func (c *Cache) CorruptCleanLine(rnd uint64, avoid arch.PhysAddr) (victim arch.PhysAddr, ok bool) {
	avoidTag := uint32(avoid) >> c.lineShift
	start := uint32(rnd) & c.setMask
	for i := 0; i < len(c.sets); i++ {
		set := c.sets[(start+uint32(i))&c.setMask]
		for j := range set {
			if set[j].valid && !set[j].dirty && set[j].tag != avoidTag {
				return arch.PhysAddr(set[j].tag) << c.lineShift, true
			}
		}
	}
	return 0, false
}

// InvalidateLine drops the line holding pa, if resident — the
// machine-check repair for a cache parity fault. Idempotent; reports
// whether the line was still there.
//
//mmutricks:free the caller (the machine-check handler) charges the repair
//mmutricks:noalloc
func (c *Cache) InvalidateLine(pa arch.PhysAddr) bool {
	set, tag := c.index(pa)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i] = line{}
			return true
		}
	}
	return false
}

// Residency counts resident lines per class — a snapshot of who owns
// the cache, used by the §9 analysis.
func (c *Cache) Residency() map[Class]int {
	m := make(map[Class]int)
	for i := range c.sets {
		for _, l := range c.sets[i] {
			if l.valid {
				m[l.class]++
			}
		}
	}
	return m
}

// DirtyLines counts resident dirty lines — pending writebacks.
func (c *Cache) DirtyLines() int {
	n := 0
	for i := range c.sets {
		for _, l := range c.sets[i] {
			if l.valid && l.dirty {
				n++
			}
		}
	}
	return n
}
