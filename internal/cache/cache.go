// Package cache implements the set-associative L1 caches of the PowerPC
// 603/604 as a functional simulator with true-LRU replacement.
//
// Beyond hit/miss behaviour, the cache attributes every access, fill and
// eviction to a traffic class (user data, kernel text, page tables, the
// hash table, idle-task work, ...). Sections 8 and 9 of the paper are
// about exactly this attribution: page-table walks and idle-task page
// clearing filling the cache with lines that displace useful user data.
// Cache-inhibited accesses (the architected WIMG "I" bit) bypass the
// cache entirely, which is how the paper's uncached page-clearing and
// uncached idle-task experiments work.
package cache

import (
	"fmt"

	"mmutricks/internal/arch"
)

// Class identifies who generated a memory access, for attribution.
type Class int

const (
	// ClassUser is ordinary user-mode instruction/data traffic.
	ClassUser Class = iota
	// ClassKernelText is kernel instruction fetch.
	ClassKernelText
	// ClassKernelData is kernel data (task structs, buffers, stacks).
	ClassKernelData
	// ClassPageTable is traffic to the Linux two-level page tables.
	ClassPageTable
	// ClassHashTable is traffic to the PowerPC hashed page table.
	ClassHashTable
	// ClassIdle is work done by the idle task (page clearing, zombie
	// reclaim scans).
	ClassIdle
	// ClassIO is device/frame-buffer traffic.
	ClassIO
	numClasses
)

// Classes lists all traffic classes in order, for iteration in reports.
var Classes = []Class{ClassUser, ClassKernelText, ClassKernelData, ClassPageTable, ClassHashTable, ClassIdle, ClassIO}

func (c Class) String() string {
	switch c {
	case ClassUser:
		return "user"
	case ClassKernelText:
		return "kernel-text"
	case ClassKernelData:
		return "kernel-data"
	case ClassPageTable:
		return "page-table"
	case ClassHashTable:
		return "hash-table"
	case ClassIdle:
		return "idle"
	case ClassIO:
		return "io"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// lineKeyValid marks a resident line in the packed key. Tags are line
// addresses (physical address >> lineShift), which for a 32-bit
// physical space never reach bit 31, so key==tag|lineKeyValid makes
// the hot-path probe a single compare per way: an invalid line's key
// is 0 and can never equal a wanted key.
const lineKeyValid uint32 = 1 << 31

// line is one cache line's state, packed to 16 bytes so a 4-way set
// occupies a single host cache line.
type line struct {
	key   uint32 // tag | lineKeyValid when resident; 0 when invalid
	class uint8
	dirty uint8
	_     [2]byte
	// lru is a per-set sequence number; larger = more recently used.
	lru uint64
}

// Stats aggregates per-class counters for one cache.
type Stats struct {
	Accesses  [numClasses]uint64
	Misses    [numClasses]uint64
	Inhibited [numClasses]uint64
	Fills     [numClasses]uint64
	// Castouts[victim] counts dirty lines of class `victim` written
	// back to memory on eviction (the 603/604 caches are copy-back).
	Castouts [numClasses]uint64
	// EvictedBy[victim][filler] counts lines of class `victim` evicted
	// by a fill on behalf of class `filler` — the pollution matrix.
	EvictedBy [numClasses][numClasses]uint64
}

// TotalAccesses sums accesses over all classes.
func (s *Stats) TotalAccesses() uint64 {
	var t uint64
	for _, v := range s.Accesses {
		t += v
	}
	return t
}

// TotalMisses sums misses over all classes.
func (s *Stats) TotalMisses() uint64 {
	var t uint64
	for _, v := range s.Misses {
		t += v
	}
	return t
}

// MissRate returns misses/accesses over all classes (0 if idle).
func (s *Stats) MissRate() float64 {
	a := s.TotalAccesses()
	if a == 0 {
		return 0
	}
	return float64(s.TotalMisses()) / float64(a)
}

// PollutionBy returns how many lines belonging to *other* classes were
// evicted by fills on behalf of class c.
func (s *Stats) PollutionBy(c Class) uint64 {
	var t uint64
	for victim := Class(0); victim < numClasses; victim++ {
		if victim != c {
			t += s.EvictedBy[victim][c]
		}
	}
	return t
}

// Cache is one set-associative L1 cache (instruction or data). Lines
// are stored flat (set-major): one bounds-checked slice index reaches
// any set, with no per-set pointer chase on the hot path.
type Cache struct {
	name      string
	lines     []line
	ways      int
	lineShift uint
	setMask   uint32
	seq       uint64
	stats     Stats
}

// New builds a cache of the given total size, associativity and line
// size. Size must be ways*lineSize*2^k for some k.
func New(name string, size, ways, lineSize int) *Cache {
	if size <= 0 || ways <= 0 || lineSize <= 0 {
		panic("cache: non-positive geometry")
	}
	nlines := size / lineSize
	nsets := nlines / ways
	if nsets*ways*lineSize != size || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: invalid geometry size=%d ways=%d line=%d", name, size, ways, lineSize))
	}
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	return &Cache{
		name:      name,
		lines:     make([]line, nlines),
		ways:      ways,
		lineShift: shift,
		setMask:   uint32(nsets - 1),
	}
}

// Name returns the label the cache was created with.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
//
//mmutricks:noalloc
func (c *Cache) Sets() int { return len(c.lines) / c.ways }

// setLines returns the ways of one set as a subslice of the flat array.
//
//mmutricks:noalloc
func (c *Cache) setLines(set int) []line {
	base := set * c.ways
	return c.lines[base : base+c.ways]
}

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return 1 << c.lineShift }

// Stats returns a pointer to the live counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// index splits a physical address into set index and tag.
//
//mmutricks:noalloc
func (c *Cache) index(pa arch.PhysAddr) (set int, tag uint32) {
	lineAddr := uint32(pa) >> c.lineShift
	return int(lineAddr & c.setMask), lineAddr
}

// Access performs one cached access on behalf of class. It returns
// whether the access hit and whether a miss had to cast out a dirty
// victim line (a memory writeback the caller must charge — the 603/604
// caches are copy-back). Writes mark the line dirty; misses allocate
// for both reads and writes, and any evicted line is attributed in the
// pollution matrix.
//
//mmutricks:free hit/miss/castout are returned; the machine layer charges them
//mmutricks:noalloc
func (c *Cache) Access(pa arch.PhysAddr, class Class, write bool) (hit, castout bool) {
	c.stats.Accesses[class]++
	set, tag := c.index(pa)
	want := tag | lineKeyValid
	c.seq++
	if c.ways == 4 {
		q := (*[4]line)(c.lines[set*4:])
		var hitLine *line
		switch want {
		case q[0].key:
			hitLine = &q[0]
		case q[1].key:
			hitLine = &q[1]
		case q[2].key:
			hitLine = &q[2]
		case q[3].key:
			hitLine = &q[3]
		}
		if hitLine != nil {
			hitLine.lru = c.seq
			if write {
				hitLine.dirty = 1
			}
			return true, false
		}
		c.stats.Misses[class]++
		return false, c.fill(set, tag, class, write)
	}
	lines := c.setLines(set)
	for i := range lines {
		if lines[i].key == want {
			lines[i].lru = c.seq
			if write {
				lines[i].dirty = 1
			}
			return true, false
		}
	}
	c.stats.Misses[class]++
	castout = c.fill(set, tag, class, write)
	return false, castout
}

// AccessInhibited performs a cache-inhibited access: it never hits and
// never fills, exactly like a WIMG I=1 access on the real part.
//
//mmutricks:free the caller charges the uncached memory latency
//mmutricks:noalloc
func (c *Cache) AccessInhibited(class Class) {
	c.stats.Inhibited[class]++
}

// AccessNoAlloc performs an access under a locked cache (§10.1): hits
// behave normally, but misses do not allocate — nothing is evicted to
// make room. It returns whether the access hit.
//
//mmutricks:free hit/miss is returned; the machine layer charges it
//mmutricks:noalloc
func (c *Cache) AccessNoAlloc(pa arch.PhysAddr, class Class, write bool) (hit bool) {
	c.stats.Accesses[class]++
	set, tag := c.index(pa)
	lines := c.setLines(set)
	want := tag | lineKeyValid
	c.seq++
	for i := range lines {
		if lines[i].key == want {
			lines[i].lru = c.seq
			if write {
				lines[i].dirty = 1
			}
			return true
		}
	}
	c.stats.Misses[class]++
	return false
}

// ZeroLine is the dcbz instruction: establish the line in the cache,
// zeroed and dirty, WITHOUT reading memory. §9 notes the authors
// avoided it for bzero() "for the same reason" as cached idle clearing:
// it trades a memory read for maximal cache pollution. It returns
// whether a dirty victim was cast out.
//
//mmutricks:free the castout is returned; machine.ZeroLine charges it
func (c *Cache) ZeroLine(pa arch.PhysAddr, class Class) (castout bool) {
	c.stats.Accesses[class]++
	set, tag := c.index(pa)
	lines := c.setLines(set)
	want := tag | lineKeyValid
	c.seq++
	for i := range lines {
		if lines[i].key == want {
			lines[i].lru = c.seq
			lines[i].dirty = 1
			return false
		}
	}
	// Counts as an access but not a (latency-bearing) miss: the fill
	// needs no memory read.
	return c.fill(set, tag, class, true)
}

// MissRef records one missing reference within a run: the index of the
// reference in the run and whether its fill cast out a dirty victim.
type MissRef struct {
	Index   int32
	Castout bool
}

// AccessRun performs n equally-strided accesses (pa, pa+stride, ...)
// on behalf of class, exactly as n scalar Access calls would: same
// counters, same final LRU/dirty state, same eviction attribution.
// Consecutive references landing on one resident line collapse into a
// single sequence advance with the final LRU stamp (the intermediate
// stamps are unobservable — a hit touches no other line). Missing
// references are recorded in misses, in reference order, so the
// machine layer can charge fills and emit trace events at the right
// points; the caller's buffer must hold one entry per distinct line
// the run can touch.
//
//mmutricks:free misses are returned; the machine layer charges the fills
//mmutricks:noalloc
func (c *Cache) AccessRun(pa arch.PhysAddr, n, stride int, class Class, write bool, misses []MissRef) (nmiss int) {
	c.stats.Accesses[class] += uint64(n)
	lineSize := 1 << c.lineShift
	if stride&(lineSize-1) == 0 && uint32(pa)&uint32(lineSize-1) == 0 {
		// Line-aligned references with a line-multiple stride — the
		// dominant shape (one access per line): no two references share
		// a line, so each is one probe with the fill inlined. The probe
		// and the victim scan share one pass's state.
		la := uint32(pa) >> c.lineShift
		step := uint32(stride) >> c.lineShift
		ways := c.ways
		seq := c.seq
		var dirty uint8
		if write {
			dirty = 1
		}
		// Per-victim-class eviction counts accumulate in locals and
		// flush once after the loop — the increments are the hottest
		// stores in the simulator. Sized 8 and masked so indexing by
		// the victim's class byte needs no bounds check.
		var ev, co [8]uint64
		if ways == 4 {
			// Both L1 geometries are 4-way; unrolling the probe and
			// victim scans removes all per-way loop overhead.
			for i := 0; i < n; i++ {
				q := (*[4]line)(c.lines[int(la&c.setMask)*4:])
				want := la | lineKeyValid
				seq++
				var hitLine *line
				switch want {
				case q[0].key:
					hitLine = &q[0]
				case q[1].key:
					hitLine = &q[1]
				case q[2].key:
					hitLine = &q[2]
				case q[3].key:
					hitLine = &q[3]
				}
				if hitLine != nil {
					hitLine.lru = seq
					hitLine.dirty |= dirty
					la += step
					continue
				}
				victim := &q[0]
				castout := false
				switch {
				case q[0].key&lineKeyValid == 0:
				case q[1].key&lineKeyValid == 0:
					victim = &q[1]
				case q[2].key&lineKeyValid == 0:
					victim = &q[2]
				case q[3].key&lineKeyValid == 0:
					victim = &q[3]
				default:
					if q[1].lru < victim.lru {
						victim = &q[1]
					}
					if q[2].lru < victim.lru {
						victim = &q[2]
					}
					if q[3].lru < victim.lru {
						victim = &q[3]
					}
					ev[victim.class&7]++
					if victim.dirty != 0 {
						co[victim.class&7]++
						castout = true
					}
				}
				*victim = line{key: want, class: uint8(class), dirty: dirty, lru: seq}
				misses[nmiss] = MissRef{Index: int32(i), Castout: castout}
				nmiss++
				la += step
			}
			c.seq = seq
			c.stats.Misses[class] += uint64(nmiss)
			c.stats.Fills[class] += uint64(nmiss)
			for v := 0; v < int(numClasses); v++ {
				c.stats.EvictedBy[v][class] += ev[v]
				c.stats.Castouts[v] += co[v]
			}
			return nmiss
		}
		for i := 0; i < n; i++ {
			base := int(la&c.setMask) * ways
			lines := c.lines[base : base+ways]
			want := la | lineKeyValid
			seq++
			way := -1
			for w := range lines {
				if lines[w].key == want {
					way = w
					break
				}
			}
			if way >= 0 {
				lines[way].lru = seq
				lines[way].dirty |= dirty
				la += step
				continue
			}
			victim := 0
			castout := false
			minLRU := ^uint64(0)
			for w := range lines {
				if lines[w].key&lineKeyValid == 0 {
					victim = w
					goto install
				}
				if lines[w].lru < minLRU {
					minLRU = lines[w].lru
					victim = w
				}
			}
			ev[lines[victim].class&7]++
			if lines[victim].dirty != 0 {
				co[lines[victim].class&7]++
				castout = true
			}
		install:
			lines[victim] = line{key: want, class: uint8(class), dirty: dirty, lru: seq}
			misses[nmiss] = MissRef{Index: int32(i), Castout: castout}
			nmiss++
			la += step
		}
		c.seq = seq
		c.stats.Misses[class] += uint64(nmiss)
		c.stats.Fills[class] += uint64(nmiss)
		for v := 0; v < int(numClasses); v++ {
			c.stats.EvictedBy[v][class] += ev[v]
			c.stats.Castouts[v] += co[v]
		}
		return nmiss
	}
	// General shape: group the references by the line they land on (the
	// grouping scan is division-free; line-crossing groups are short).
	for i := 0; i < n; {
		a := pa + arch.PhysAddr(i*stride)
		la := uint32(a) >> c.lineShift
		k := 1
		for i+k < n && uint32(a+arch.PhysAddr(k*stride))>>c.lineShift == la {
			k++
		}
		set := int(la & c.setMask)
		lines := c.setLines(set)
		want := la | lineKeyValid
		way := -1
		for w := range lines {
			if lines[w].key == want {
				way = w
				break
			}
		}
		if way >= 0 {
			c.seq += uint64(k)
			lines[way].lru = c.seq
			if write {
				lines[way].dirty = 1
			}
		} else {
			// The first reference misses and fills; the remaining k-1
			// hit the freshly filled line.
			c.seq++
			c.stats.Misses[class]++
			castout := c.fill(set, la, class, write)
			misses[nmiss] = MissRef{Index: int32(i), Castout: castout}
			nmiss++
			if k > 1 {
				c.seq += uint64(k - 1)
				for w := range lines {
					if lines[w].key == want {
						lines[w].lru = c.seq
						break
					}
				}
			}
		}
		i += k
	}
	return nmiss
}

// AccessRunCount is AccessRun without the per-miss records: cache
// state and statistics advance identically, but only the miss and
// castout counts come back. The machine layer uses it when the tracer
// is off and there is no L2 — the per-miss fill costs are then
// closed-form, so nothing downstream needs to know where the misses
// fell, and the run needs no chunking to bound a scratch buffer.
//
//mmutricks:free miss/castout counts are returned; the machine layer charges them
//mmutricks:noalloc
func (c *Cache) AccessRunCount(pa arch.PhysAddr, n, stride int, class Class, write bool) (nmiss, ncast int) {
	c.stats.Accesses[class] += uint64(n)
	lineSize := 1 << c.lineShift
	if stride&(lineSize-1) == 0 && uint32(pa)&uint32(lineSize-1) == 0 && c.ways == 4 {
		la := uint32(pa) >> c.lineShift
		step := uint32(stride) >> c.lineShift
		seq := c.seq
		mask := c.setMask
		lines := c.lines
		var dirty uint8
		if write {
			dirty = 1
		}
		var ev, co [8]uint64
		for i := 0; i < n; i++ {
			q := (*[4]line)(lines[int(la&mask)*4:])
			want := la | lineKeyValid
			seq++
			// Probe all four ways with conditional moves, then branch
			// once on hit/miss — runs are phase-coherent (a clear run
			// misses throughout, a warm run hits throughout), so the
			// single branch predicts well.
			wi := -1
			if q[0].key == want {
				wi = 0
			}
			if q[1].key == want {
				wi = 1
			}
			if q[2].key == want {
				wi = 2
			}
			if q[3].key == want {
				wi = 3
			}
			if wi >= 0 {
				p := &q[wi&3]
				p.lru = seq
				p.dirty |= dirty
				la += step
				continue
			}
			vi := 0
			if q[0].key&q[1].key&q[2].key&q[3].key&lineKeyValid != 0 {
				// Set full: evict the LRU way. A tournament over
				// preloaded stamps keeps the loads independent; every
				// comparison is strict, so the earliest way wins ties
				// exactly as the scalar scan decides them.
				l0, l1, l2, l3 := q[0].lru, q[1].lru, q[2].lru, q[3].lru
				m01, i01 := l0, 0
				if l1 < l0 {
					m01, i01 = l1, 1
				}
				m23, i23 := l2, 2
				if l3 < l2 {
					m23, i23 = l3, 3
				}
				vi = i01
				if m23 < m01 {
					vi = i23
				}
				ev[q[vi].class&7]++
				if q[vi].dirty != 0 {
					co[q[vi].class&7]++
					ncast++
				}
			} else {
				// A free way exists: take the first invalid one.
				switch {
				case q[0].key&lineKeyValid == 0:
				case q[1].key&lineKeyValid == 0:
					vi = 1
				case q[2].key&lineKeyValid == 0:
					vi = 2
				default:
					vi = 3
				}
			}
			q[vi] = line{key: want, class: uint8(class), dirty: dirty, lru: seq}
			nmiss++
			la += step
		}
		c.seq = seq
		c.stats.Misses[class] += uint64(nmiss)
		c.stats.Fills[class] += uint64(nmiss)
		for v := 0; v < int(numClasses); v++ {
			c.stats.EvictedBy[v][class] += ev[v]
			c.stats.Castouts[v] += co[v]
		}
		return nmiss, ncast
	}
	if c.ways == 4 {
		// Sub-line strides group into per-line streaks of a few
		// references; the same unrolled 4-way probe applies per group.
		for i := 0; i < n; {
			a := pa + arch.PhysAddr(i*stride)
			la := uint32(a) >> c.lineShift
			k := 1
			for i+k < n && uint32(a+arch.PhysAddr(k*stride))>>c.lineShift == la {
				k++
			}
			q := (*[4]line)(c.lines[int(la&c.setMask)*4:])
			want := la | lineKeyValid
			wi := -1
			if q[0].key == want {
				wi = 0
			}
			if q[1].key == want {
				wi = 1
			}
			if q[2].key == want {
				wi = 2
			}
			if q[3].key == want {
				wi = 3
			}
			if wi >= 0 {
				c.seq += uint64(k)
				p := &q[wi&3]
				p.lru = c.seq
				if write {
					p.dirty = 1
				}
			} else {
				c.seq++
				c.stats.Misses[class]++
				c.stats.Fills[class]++
				vi := 0
				if q[0].key&q[1].key&q[2].key&q[3].key&lineKeyValid != 0 {
					l0, l1, l2, l3 := q[0].lru, q[1].lru, q[2].lru, q[3].lru
					m01, i01 := l0, 0
					if l1 < l0 {
						m01, i01 = l1, 1
					}
					m23, i23 := l2, 2
					if l3 < l2 {
						m23, i23 = l3, 3
					}
					vi = i01
					if m23 < m01 {
						vi = i23
					}
					c.stats.EvictedBy[q[vi].class&7][class]++
					if q[vi].dirty != 0 {
						c.stats.Castouts[q[vi].class&7]++
						ncast++
					}
				} else {
					switch {
					case q[0].key&lineKeyValid == 0:
					case q[1].key&lineKeyValid == 0:
						vi = 1
					case q[2].key&lineKeyValid == 0:
						vi = 2
					default:
						vi = 3
					}
				}
				var d uint8
				if write {
					d = 1
				}
				nmiss++
				// Install, then restamp with the group's trailing hits.
				c.seq += uint64(k - 1)
				q[vi&3] = line{key: want, class: uint8(class), dirty: d, lru: c.seq}
			}
			i += k
		}
		return nmiss, ncast
	}
	for i := 0; i < n; {
		a := pa + arch.PhysAddr(i*stride)
		la := uint32(a) >> c.lineShift
		k := 1
		for i+k < n && uint32(a+arch.PhysAddr(k*stride))>>c.lineShift == la {
			k++
		}
		set := int(la & c.setMask)
		lines := c.setLines(set)
		want := la | lineKeyValid
		way := -1
		for w := range lines {
			if lines[w].key == want {
				way = w
				break
			}
		}
		if way >= 0 {
			c.seq += uint64(k)
			lines[way].lru = c.seq
			if write {
				lines[way].dirty = 1
			}
		} else {
			c.seq++
			c.stats.Misses[class]++
			if c.fill(set, la, class, write) {
				ncast++
			}
			nmiss++
			if k > 1 {
				c.seq += uint64(k - 1)
				for w := range lines {
					if lines[w].key == want {
						lines[w].lru = c.seq
						break
					}
				}
			}
		}
		i += k
	}
	return nmiss, ncast
}

// AccessNoAllocRun is AccessRun under a locked cache (§10.1): hits
// behave normally, but misses do not allocate, so every reference on a
// non-resident line misses and is recorded individually (the caller's
// buffer must hold n entries).
//
//mmutricks:free misses are returned; the machine layer charges the uncached latency
//mmutricks:noalloc
func (c *Cache) AccessNoAllocRun(pa arch.PhysAddr, n, stride int, class Class, write bool, misses []MissRef) (nmiss int) {
	c.stats.Accesses[class] += uint64(n)
	for i := 0; i < n; {
		a := pa + arch.PhysAddr(i*stride)
		la := uint32(a) >> c.lineShift
		k := 1
		for i+k < n && uint32(a+arch.PhysAddr(k*stride))>>c.lineShift == la {
			k++
		}
		set := c.setLines(int(la & c.setMask))
		want := la | lineKeyValid
		way := -1
		for w := range set {
			if set[w].key == want {
				way = w
				break
			}
		}
		c.seq += uint64(k)
		if way >= 0 {
			set[way].lru = c.seq
			if write {
				set[way].dirty = 1
			}
		} else {
			c.stats.Misses[class] += uint64(k)
			for j := 0; j < k; j++ {
				misses[nmiss] = MissRef{Index: int32(i + j)}
				nmiss++
			}
		}
		i += k
	}
	return nmiss
}

// ZeroLineRun performs n consecutive dcbz line-establishes starting at
// pa, exactly as n scalar ZeroLine calls. It returns how many dirty
// victims were cast out in total.
//
//mmutricks:free castouts are returned; machine.ZeroLineRun charges them
//mmutricks:noalloc
func (c *Cache) ZeroLineRun(pa arch.PhysAddr, nlines int, class Class) (castouts int) {
	for i := 0; i < nlines; i++ {
		if c.ZeroLine(pa+arch.PhysAddr(i<<c.lineShift), class) {
			castouts++
		}
	}
	return castouts
}

// AccessInhibitedN counts n cache-inhibited accesses in one step.
//
//mmutricks:free the caller charges the uncached memory latency
//mmutricks:noalloc
func (c *Cache) AccessInhibitedN(class Class, n int) {
	c.stats.Inhibited[class] += uint64(n)
}

// Prefetch issues a dcbt-style touch: the line is brought in (filling
// and possibly evicting, with normal attribution) but no access or miss
// is counted — the latency is assumed overlapped with other work. It
// reports whether a fill was needed.
//
//mmutricks:free prefetch latency overlaps; machine.Prefetch charges the issue cost
func (c *Cache) Prefetch(pa arch.PhysAddr, class Class) (filled bool) {
	set, tag := c.index(pa)
	lines := c.setLines(set)
	want := tag | lineKeyValid
	c.seq++
	for i := range lines {
		if lines[i].key == want {
			lines[i].lru = c.seq
			return false
		}
	}
	c.fill(set, tag, class, false)
	return true
}

// Touch fills a line without counting an access or a miss; used to
// preload state (e.g. warming the cache before measurement).
//
//mmutricks:free deliberately uncounted warm-up, outside the measured window
func (c *Cache) Touch(pa arch.PhysAddr, class Class) {
	set, tag := c.index(pa)
	lines := c.setLines(set)
	want := tag | lineKeyValid
	c.seq++
	for i := range lines {
		if lines[i].key == want {
			lines[i].lru = c.seq
			return
		}
	}
	c.fill(set, tag, class, false)
}

// fill installs a line, evicting the LRU way if the set is full. It
// reports whether the victim was dirty (requiring a writeback).
//
//mmutricks:noalloc
func (c *Cache) fill(set int, tag uint32, class Class, write bool) (castout bool) {
	c.stats.Fills[class]++
	var dirty uint8
	if c.ways == 4 {
		q := (*[4]line)(c.lines[set*4:])
		vi := 0
		if q[0].key&q[1].key&q[2].key&q[3].key&lineKeyValid != 0 {
			l0, l1, l2, l3 := q[0].lru, q[1].lru, q[2].lru, q[3].lru
			m01, i01 := l0, 0
			if l1 < l0 {
				m01, i01 = l1, 1
			}
			m23, i23 := l2, 2
			if l3 < l2 {
				m23, i23 = l3, 3
			}
			vi = i01
			if m23 < m01 {
				vi = i23
			}
			c.stats.EvictedBy[q[vi].class&7][class]++
			if q[vi].dirty != 0 {
				c.stats.Castouts[q[vi].class&7]++
				castout = true
			}
		} else {
			switch {
			case q[0].key&lineKeyValid == 0:
			case q[1].key&lineKeyValid == 0:
				vi = 1
			case q[2].key&lineKeyValid == 0:
				vi = 2
			default:
				vi = 3
			}
		}
		if write {
			dirty = 1
		}
		q[vi] = line{key: tag | lineKeyValid, class: uint8(class), dirty: dirty, lru: c.seq}
		return castout
	}
	lines := c.setLines(set)
	victim := 0
	minLRU := ^uint64(0)
	for i := range lines {
		if lines[i].key&lineKeyValid == 0 {
			victim = i
			goto install
		}
		if lines[i].lru < minLRU {
			minLRU = lines[i].lru
			victim = i
		}
	}
	c.stats.EvictedBy[lines[victim].class][class]++
	if lines[victim].dirty != 0 {
		c.stats.Castouts[lines[victim].class]++
		castout = true
	}
install:
	if write {
		dirty = 1
	}
	lines[victim] = line{key: tag | lineKeyValid, class: uint8(class), dirty: dirty, lru: c.seq}
	return castout
}

// Contains reports whether the line holding pa is currently resident.
func (c *Cache) Contains(pa arch.PhysAddr) bool {
	set, tag := c.index(pa)
	want := tag | lineKeyValid
	for _, l := range c.setLines(set) {
		if l.key == want {
			return true
		}
	}
	return false
}

// InvalidateAll empties the cache (used at machine reset).
//
//mmutricks:free machine reset happens outside any measured window
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// ResetStats zeroes the counters without touching cache contents, so a
// benchmark can warm up and then measure.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// CorruptCleanLine picks an arbitrary valid, clean line — skipping the
// line holding avoid, so the access in flight is never the victim —
// and returns its physical address as a parity-fault report. Clean
// lines only: a flip in a clean line is recoverable by invalidation
// (memory still has the data); a dirty line would be data loss. The
// line state itself is untouched — the poison lives in the pending
// machine-check report, and the repair is InvalidateLine.
//
//mmutricks:free a hardware parity flip costs the running program nothing
//mmutricks:noalloc
func (c *Cache) CorruptCleanLine(rnd uint64, avoid arch.PhysAddr) (victim arch.PhysAddr, ok bool) {
	avoidKey := (uint32(avoid) >> c.lineShift) | lineKeyValid
	start := uint32(rnd) & c.setMask
	for i := 0; i < c.Sets(); i++ {
		set := c.setLines(int((start + uint32(i)) & c.setMask))
		for j := range set {
			if set[j].key&lineKeyValid != 0 && set[j].dirty == 0 && set[j].key != avoidKey {
				return arch.PhysAddr(set[j].key&^lineKeyValid) << c.lineShift, true
			}
		}
	}
	return 0, false
}

// InvalidateLine drops the line holding pa, if resident — the
// machine-check repair for a cache parity fault. Idempotent; reports
// whether the line was still there.
//
//mmutricks:free the caller (the machine-check handler) charges the repair
//mmutricks:noalloc
func (c *Cache) InvalidateLine(pa arch.PhysAddr) bool {
	set, tag := c.index(pa)
	lines := c.setLines(set)
	want := tag | lineKeyValid
	for i := range lines {
		if lines[i].key == want {
			lines[i] = line{}
			return true
		}
	}
	return false
}

// Residency counts resident lines per class — a snapshot of who owns
// the cache, used by the §9 analysis.
func (c *Cache) Residency() map[Class]int {
	m := make(map[Class]int)
	for i := range c.lines {
		if c.lines[i].key&lineKeyValid != 0 {
			m[Class(c.lines[i].class)]++
		}
	}
	return m
}

// DirtyLines counts resident dirty lines — pending writebacks.
func (c *Cache) DirtyLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].key&lineKeyValid != 0 && c.lines[i].dirty != 0 {
			n++
		}
	}
	return n
}
