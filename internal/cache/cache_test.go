package cache

import (
	"testing"
	"testing/quick"

	"mmutricks/internal/arch"
)

// acc is a test helper: one read access, returning only the hit bit.
func acc(c *Cache, pa arch.PhysAddr, cl Class) bool {
	hit, _ := c.Access(pa, cl, false)
	return hit
}

func mk(t *testing.T) *Cache {
	t.Helper()
	return New("D", 16*1024, 4, 32) // 603 geometry: 128 sets
}

func TestGeometry(t *testing.T) {
	c := mk(t)
	if c.Sets() != 128 || c.Ways() != 4 || c.LineSize() != 32 {
		t.Fatalf("geometry: sets=%d ways=%d line=%d", c.Sets(), c.Ways(), c.LineSize())
	}
	if c.Name() != "D" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, g := range [][3]int{{0, 4, 32}, {16384, 0, 32}, {16384, 4, 0}, {16384, 3, 32}, {100, 4, 32}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) should panic", g)
				}
			}()
			New("x", g[0], g[1], g[2])
		}()
	}
}

func TestMissThenHit(t *testing.T) {
	c := mk(t)
	if acc(c, 0x1000, ClassUser) {
		t.Fatal("first access must miss")
	}
	if !acc(c, 0x1000, ClassUser) {
		t.Fatal("second access must hit")
	}
	if !acc(c, 0x101F, ClassUser) {
		t.Fatal("same line (offset 31) must hit")
	}
	if acc(c, 0x1020, ClassUser) {
		t.Fatal("next line must miss")
	}
	s := c.Stats()
	if s.Accesses[ClassUser] != 4 || s.Misses[ClassUser] != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mk(t)
	// Five conflicting lines in a 4-way set: addresses differing only
	// above set+offset bits. Set stride = sets*lineSize = 4096.
	stride := arch.PhysAddr(c.Sets() * c.LineSize())
	base := arch.PhysAddr(0x2000)
	for i := 0; i < 4; i++ {
		acc(c, base+arch.PhysAddr(i)*stride, ClassUser)
	}
	// Re-touch line 0 so line 1 is LRU.
	acc(c, base, ClassUser)
	// Fill a fifth line: must evict line 1, keep line 0.
	acc(c, base+4*stride, ClassUser)
	if !c.Contains(base) {
		t.Error("MRU line evicted")
	}
	if c.Contains(base + 1*stride) {
		t.Error("LRU line not evicted")
	}
	for _, i := range []int{2, 3, 4} {
		if !c.Contains(base + arch.PhysAddr(i)*stride) {
			t.Errorf("line %d should be resident", i)
		}
	}
}

func TestPollutionAttribution(t *testing.T) {
	c := mk(t)
	stride := arch.PhysAddr(c.Sets() * c.LineSize())
	// Fill one set entirely with user lines.
	for i := 0; i < 4; i++ {
		acc(c, arch.PhysAddr(i)*stride, ClassUser)
	}
	// A page-table walk lands in the same set and evicts a user line.
	acc(c, 4*stride, ClassPageTable)
	s := c.Stats()
	if s.EvictedBy[ClassUser][ClassPageTable] != 1 {
		t.Fatalf("pollution matrix: %+v", s.EvictedBy)
	}
	if got := s.PollutionBy(ClassPageTable); got != 1 {
		t.Fatalf("PollutionBy = %d", got)
	}
	// Self-eviction is not pollution.
	if got := s.PollutionBy(ClassUser); got != 0 {
		t.Fatalf("user self-eviction counted as pollution: %d", got)
	}
}

func TestInhibitedNeverFills(t *testing.T) {
	c := mk(t)
	c.AccessInhibited(ClassIdle)
	c.AccessInhibited(ClassIdle)
	if c.Stats().Inhibited[ClassIdle] != 2 {
		t.Fatal("inhibited accesses not counted")
	}
	if c.Stats().TotalAccesses() != 0 || c.Stats().TotalMisses() != 0 {
		t.Fatal("inhibited access must not count as cached access")
	}
	if got := c.Residency(); len(got) != 0 {
		t.Fatalf("inhibited access filled the cache: %v", got)
	}
}

func TestTouchWarmsWithoutStats(t *testing.T) {
	c := mk(t)
	c.Touch(0x1000, ClassUser)
	if c.Stats().TotalAccesses() != 0 {
		t.Fatal("Touch must not count accesses")
	}
	if !acc(c, 0x1000, ClassUser) {
		t.Fatal("Touch should have made the line resident")
	}
}

func TestInvalidateAllAndResetStats(t *testing.T) {
	c := mk(t)
	acc(c, 0x1000, ClassUser)
	c.InvalidateAll()
	if c.Contains(0x1000) {
		t.Fatal("InvalidateAll left lines resident")
	}
	c.ResetStats()
	if c.Stats().TotalAccesses() != 0 {
		t.Fatal("ResetStats left counters")
	}
}

func TestResidencySnapshot(t *testing.T) {
	c := mk(t)
	acc(c, 0x0, ClassUser)
	acc(c, 0x20, ClassUser)
	acc(c, 0x40, ClassHashTable)
	r := c.Residency()
	if r[ClassUser] != 2 || r[ClassHashTable] != 1 {
		t.Fatalf("residency: %v", r)
	}
}

func TestMissRate(t *testing.T) {
	c := mk(t)
	if c.Stats().MissRate() != 0 {
		t.Fatal("empty cache MissRate should be 0")
	}
	acc(c, 0x1000, ClassUser) // miss
	acc(c, 0x1000, ClassUser) // hit
	acc(c, 0x1000, ClassUser) // hit
	acc(c, 0x1000, ClassUser) // hit
	if got := c.Stats().MissRate(); got != 0.25 {
		t.Fatalf("MissRate = %v, want 0.25", got)
	}
}

func TestSameLineAlwaysHitsAfterFill(t *testing.T) {
	c := New("q", 4096, 2, 32)
	f := func(pa arch.PhysAddr, off uint8) bool {
		acc(c, pa, ClassUser)
		// Any address on the same line must now hit.
		line := pa &^ arch.PhysAddr(31)
		return acc(c, line+arch.PhysAddr(off)%32, ClassUser)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResidencyNeverExceedsCapacity(t *testing.T) {
	c := New("q", 4096, 2, 32) // 128 lines
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			acc(c, arch.PhysAddr(a), ClassUser)
		}
		total := 0
		for _, n := range c.Residency() {
			total += n
		}
		return total <= 128
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDirtyCastout(t *testing.T) {
	c := mk(t)
	stride := arch.PhysAddr(c.Sets() * c.LineSize())
	// Write four conflicting lines: all dirty.
	for i := 0; i < 4; i++ {
		c.Access(arch.PhysAddr(i)*stride, ClassIdle, true)
	}
	if c.DirtyLines() != 4 {
		t.Fatalf("dirty lines = %d", c.DirtyLines())
	}
	// A read fill into the full set must cast out the dirty victim.
	_, castout := c.Access(4*stride, ClassUser, false)
	if !castout {
		t.Fatal("evicting a dirty line must report a castout")
	}
	if c.Stats().Castouts[ClassIdle] != 1 {
		t.Fatalf("castout attribution: %v", c.Stats().Castouts)
	}
	// Clean victims do not cast out.
	c2 := mk(t)
	for i := 0; i < 4; i++ {
		acc(c2, arch.PhysAddr(i)*stride, ClassUser)
	}
	if _, castout := c2.Access(4*stride, ClassUser, false); castout {
		t.Fatal("clean eviction must not cast out")
	}
}

func TestWriteHitDirties(t *testing.T) {
	c := mk(t)
	acc(c, 0x1000, ClassUser) // clean fill
	if c.DirtyLines() != 0 {
		t.Fatal("read fill should be clean")
	}
	c.Access(0x1000, ClassUser, true) // write hit
	if c.DirtyLines() != 1 {
		t.Fatal("write hit must dirty the line")
	}
	c.InvalidateAll()
	if c.DirtyLines() != 0 {
		t.Fatal("invalidate left dirty lines")
	}
}

func TestClassStrings(t *testing.T) {
	for _, cl := range Classes {
		if cl.String() == "" {
			t.Errorf("class %d has empty string", cl)
		}
	}
	if Class(99).String() == "" {
		t.Error("unknown class must still format")
	}
}

func TestConflictMissesAcrossClasses(t *testing.T) {
	// A direct demonstration of §8: after page-table traffic storms a
	// set, previously-hot user lines miss again.
	c := mk(t)
	stride := arch.PhysAddr(c.Sets() * c.LineSize())
	hot := arch.PhysAddr(0x3000)
	acc(c, hot, ClassUser)
	for i := 1; i <= 4; i++ {
		acc(c, hot+arch.PhysAddr(i)*stride, ClassPageTable)
	}
	if acc(c, hot, ClassUser) {
		t.Fatal("hot user line should have been displaced by page-table fills")
	}
}
