package mmtrace

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/hwmon"
)

func newTestTracer(cap int) (*Tracer, *clock.Ledger) {
	led := clock.NewLedger(100)
	tr := NewTracer(led, cap)
	tr.Enable()
	return tr, led
}

func TestKindNamesRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		name := k.String()
		if name == "" || name == "kind(?)" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Fatalf("KindByName(%q) = %v,%v, want %v,true", name, got, ok, k)
		}
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Fatal("KindByName accepted an unknown name")
	}
}

func TestEmitRecordsEventAndHist(t *testing.T) {
	tr, led := newTestTracer(8)
	led.Charge(100)
	tr.SetTask(7)
	tr.Emit(KindTLBMiss, 0x42, 0x1000_2000, 5, 0)

	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Kind != KindTLBMiss || e.Task != 7 || e.VSID != 0x42 ||
		e.EA != 0x1000_2000 || e.Cost != 5 || e.Time != 100 {
		t.Fatalf("unexpected event %+v", e)
	}
	h := tr.Hist(KindTLBMiss)
	if h.Count != 1 || h.CostTotal != 5 {
		t.Fatalf("hist = %+v, want Count 1 CostTotal 5", h)
	}
	// cost 5 lands in bucket Len64(5) = 3, i.e. range 4-7.
	if h.Buckets[3] != 1 {
		t.Fatalf("bucket for cost 5 = %v, want Buckets[3]=1", h.Buckets)
	}
}

func TestDisabledAndNilEmitAreNoOps(t *testing.T) {
	tr, _ := newTestTracer(8)
	tr.Disable()
	tr.Emit(KindTLBMiss, 1, 2, 3, 0)
	if tr.Emitted() != 0 {
		t.Fatal("disabled tracer recorded an event")
	}
	var nilTr *Tracer
	nilTr.Emit(KindTLBMiss, 1, 2, 3, 0) // must not panic
	nilTr.SetTask(1)
}

func TestRingOverflowKeepsNewestAndFullHists(t *testing.T) {
	tr, _ := newTestTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(KindMinorFault, 0, arch.EffectiveAddr(i), clock.Cycles(i), 0)
	}
	if tr.Emitted() != 10 || tr.Dropped() != 6 {
		t.Fatalf("Emitted=%d Dropped=%d, want 10/6", tr.Emitted(), tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := arch.EffectiveAddr(6 + i); e.EA != want {
			t.Fatalf("event %d EA=%#x, want %#x (oldest-first, newest kept)", i, e.EA, want)
		}
	}
	// Histograms cover all 10 events despite the overwrites.
	if h := tr.Hist(KindMinorFault); h.Count != 10 {
		t.Fatalf("hist Count=%d, want 10 (overflow must not lose aggregates)", h.Count)
	}
}

func TestBucketing(t *testing.T) {
	cases := []struct {
		cost   clock.Cycles
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 31, 32}, {^clock.Cycles(0), 32},
	}
	for _, c := range cases {
		if got := bucketOf(c.cost); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.cost, got, c.bucket)
		}
	}
	if got := BucketLabel(0); got != "0" {
		t.Errorf("BucketLabel(0) = %q", got)
	}
	if got := BucketLabel(1); got != "1" {
		t.Errorf("BucketLabel(1) = %q", got)
	}
	if got := BucketLabel(3); got != "4-7" {
		t.Errorf("BucketLabel(3) = %q, want 4-7", got)
	}
}

func TestTaskAttribution(t *testing.T) {
	tr, _ := newTestTracer(16)
	tr.SetTask(3)
	tr.Emit(KindTLBMiss, 0, 0, 10, 0)
	tr.Emit(KindTLBMiss, 0, 0, 20, 0)
	tr.SetTask(1)
	tr.Emit(KindMinorFault, 0, 0, 5, 0)
	stats := tr.TaskStats()
	if len(stats) != 2 {
		t.Fatalf("got %d task rows, want 2", len(stats))
	}
	if stats[0].PID != 1 || stats[0].Events != 1 || stats[0].CostTotal != 5 {
		t.Fatalf("row 0 = %+v", stats[0])
	}
	if stats[1].PID != 3 || stats[1].Events != 2 || stats[1].CostTotal != 30 {
		t.Fatalf("row 1 = %+v", stats[1])
	}
}

func TestResetClearsEverything(t *testing.T) {
	tr, _ := newTestTracer(4)
	tr.SetTask(9)
	tr.Emit(KindFlushPage, 1, 2, 3, 0)
	tr.Reset()
	if tr.Emitted() != 0 || len(tr.Events()) != 0 || len(tr.TaskStats()) != 0 {
		t.Fatal("Reset left data behind")
	}
	if h := tr.Hist(KindFlushPage); h.Count != 0 {
		t.Fatal("Reset left histogram data behind")
	}
	if !tr.Enabled() {
		t.Fatal("Reset must keep the enabled flag")
	}
}

func TestReconcile(t *testing.T) {
	tr, _ := newTestTracer(64)
	tr.Emit(KindTLBMiss, 0, 0, 1, 0)
	tr.Emit(KindTLBMiss, 0, 0, 1, 0)
	tr.Emit(KindHTABHitPrimary, 0, 0, 1, 0)
	tr.Emit(KindHTABHitSecondary, 0, 0, 1, 0)
	tr.Emit(KindHTABInsertFree, 0, 0, 1, 0)
	tr.Emit(KindIdleReclaim, 0, 0, 1, 3)
	tr.Emit(KindOnDemandScan, 0, 0, 1, 2)

	var c hwmon.Counters
	c.TLBMisses = 2
	c.HTABPrimaryHits = 1
	c.HTABHits = 2
	c.HTABInserts = 1
	c.HTABFreeSlot = 1
	c.OnDemandScans = 1
	c.ZombiesReclaimed = 5

	rows := Reconcile(tr.Hists(), &c)
	if len(rows) == 0 {
		t.Fatal("Reconcile returned no rows")
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("row %q: trace=%d counter=%d, want match", r.Name, r.TraceTotal, r.Counter)
		}
	}

	// Break one counter and confirm the mismatch is flagged.
	c.TLBMisses = 99
	rows = Reconcile(tr.Hists(), &c)
	found := false
	for _, r := range rows {
		if r.Name == "tlb-miss" {
			found = true
			if r.OK {
				t.Error("tlb-miss mismatch not flagged")
			}
		}
	}
	if !found {
		t.Fatal("no tlb-miss reconciliation row")
	}
}
