package mmtrace

import (
	"testing"

	"mmutricks/internal/clock"
)

// The emit path runs on every traced TLB miss, fault, and flush; the
// satellite requirement is zero allocations whether the tracer is
// enabled or disabled.

func TestEmitZeroAllocsEnabled(t *testing.T) {
	tr, _ := newTestTracer(1024)
	if n := testing.AllocsPerRun(200, func() {
		tr.Emit(KindTLBMiss, 0x42, 0x1234_5000, 17, 0)
	}); n != 0 {
		t.Fatalf("enabled Emit allocates %.1f times per op, want 0", n)
	}
}

func TestEmitZeroAllocsDisabled(t *testing.T) {
	tr, _ := newTestTracer(1024)
	tr.Disable()
	if n := testing.AllocsPerRun(200, func() {
		tr.Emit(KindTLBMiss, 0x42, 0x1234_5000, 17, 0)
	}); n != 0 {
		t.Fatalf("disabled Emit allocates %.1f times per op, want 0", n)
	}
}

func TestEmitZeroAllocsNil(t *testing.T) {
	var tr *Tracer
	if n := testing.AllocsPerRun(200, func() {
		tr.Emit(KindTLBMiss, 0x42, 0x1234_5000, 17, 0)
	}); n != 0 {
		t.Fatalf("nil Emit allocates %.1f times per op, want 0", n)
	}
}

func TestEmitZeroAllocsAfterOverflow(t *testing.T) {
	tr, _ := newTestTracer(8)
	for i := 0; i < 100; i++ {
		tr.Emit(KindCacheFill, 0, 0, 1, 0)
	}
	if n := testing.AllocsPerRun(200, func() {
		tr.Emit(KindCacheFill, 0, 0, 1, 0)
	}); n != 0 {
		t.Fatalf("post-overflow Emit allocates %.1f times per op, want 0", n)
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	led := clock.NewLedger(100)
	tr := NewTracer(led, DefaultCapacity)
	tr.Enable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(KindTLBMiss, 0x42, 0x1234_5000, 17, 0)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	led := clock.NewLedger(100)
	tr := NewTracer(led, DefaultCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(KindTLBMiss, 0x42, 0x1234_5000, 17, 0)
	}
}
