// Package mmtrace is the event-level observability layer under every
// measurement in the reproduction: a fixed-capacity, allocation-free
// ring-buffer tracer that the MMU model, the kernel, and the machine's
// cache model emit into. Where package hwmon answers "how many" (the
// aggregate counters the paper reads its claims off), mmtrace answers
// "when, to whom, and at what cost": each event carries a cycle
// timestamp from the machine's clock.Ledger, the VSID and task it
// belongs to, the effective address involved, and the cycle cost of the
// operation.
//
// The tracer is built for the translation hot path:
//
//   - a disabled tracer costs one (inlined) branch per tracepoint;
//   - the emit path allocates nothing — events land in a
//     pre-allocated ring, histograms in fixed arrays — and is
//     annotated //mmutricks:noalloc, so mmulint proves the property
//     statically over every caller in the translation path;
//   - when the ring wraps, the oldest events are overwritten (the
//     ring always holds the most recent Capacity events) but the
//     histograms and per-task totals keep counting, so aggregate
//     statistics cover the whole run and reconcile exactly with the
//     hwmon.Counters deltas for the same window.
package mmtrace

import (
	"math/bits"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
)

// Kind classifies one traced event. The set mirrors the places the
// paper's counters live: the MMU's translation machinery (§5, §6), the
// kernel's fault and flush paths (§6, §7), the idle task (§7, §9), and
// the cache model's fill costs (§8).
type Kind uint8

const (
	// KindTLBMiss: a translation missed the TLB. On the 604 the cost
	// is the hardware hash-search (plus the hash-miss interrupt when
	// the search fails); on the 603 the cost is carried by the
	// KindSoftReload event the software handler emits.
	KindTLBMiss Kind = iota
	// KindTLBInsert: a translation was loaded into a TLB.
	KindTLBInsert
	// KindTLBEvict: the insert displaced a valid entry.
	KindTLBEvict
	// KindHTABHitPrimary / KindHTABHitSecondary: a hash-table search
	// (hardware on the 604, software emulation on the 603) found the
	// PTE in the primary or the secondary bucket.
	KindHTABHitPrimary
	KindHTABHitSecondary
	// KindHTABMiss: neither bucket matched.
	KindHTABMiss
	// KindHashMissFault: the 604 hash-miss interrupt's software
	// handler ran; cost is the handler path (the >=91-cycle interrupt
	// entry is charged by the MMU before the handler is reached).
	KindHashMissFault
	// KindSoftReload: the 603 software TLB reload ran; cost is the
	// whole handler (entry, search, insert).
	KindSoftReload
	// KindHTABInsertFree / KindHTABEvictLive / KindHTABEvictZombie: a
	// PTE was installed in the hash table into a free slot, over a
	// live PTE, or over a zombie PTE (§7's evict accounting).
	KindHTABInsertFree
	KindHTABEvictLive
	KindHTABEvictZombie
	// KindOnDemandScan: an insert found both buckets full and swept
	// the table synchronously (§7's rejected design). Aux is the
	// number of zombies reclaimed.
	KindOnDemandScan
	// KindMinorFault / KindMajorFault: do_page_fault resolved against
	// an existing translation/page-cache frame, or had to allocate.
	KindMinorFault
	KindMajorFault
	// KindFlushPage / KindFlushRange / KindFlushContext: the three
	// flush entry points. Aux of a range flush is its page count.
	KindFlushPage
	KindFlushRange
	// KindFlushCutoff: a range flush exceeded the §7 cutoff and was
	// converted to a whole-context flush. Aux is the page count that
	// triggered the conversion.
	KindFlushCutoff
	KindFlushContext
	// KindVSIDReassign: a task received a fresh context's VSIDs (the
	// lazy-flush mechanism, and every fork/exec). Aux is the context
	// number.
	KindVSIDReassign
	// KindCtxSwitch: a context switch; the event's task is the
	// incoming task.
	KindCtxSwitch
	// KindIdleReclaim: an idle-task sweep invalidated zombie PTEs.
	// Aux is how many.
	KindIdleReclaim
	// KindPageZero: the idle task pre-zeroed one page (§9). EA holds
	// the physical address of the frame.
	KindPageZero
	// KindSwapOut / KindSwapIn: a page moved to or from the swap
	// device.
	KindSwapOut
	KindSwapIn
	// KindCacheFill: a cache miss (or inhibited access) paid a fill
	// from memory; cost is the fill latency, EA holds the physical
	// address, Aux the cache traffic class.
	KindCacheFill
	// KindMachineCheck: a machine-check interrupt was delivered. EA
	// holds the failing physical address the error report carried, Aux
	// the faultinject.Cause code, cost the handler-entry cost.
	KindMachineCheck
	// KindMCRepairTLB / KindMCRepairHTAB / KindMCRepairBAT /
	// KindMCRepairCache: the handler repaired poisoned state by
	// invalidating the TLB entry, hash-table slot, or cache line, or by
	// reprogramming the BATs from the kernel's canonical map. Exactly
	// one repair/escalate/spurious event follows each KindMachineCheck.
	KindMCRepairTLB
	KindMCRepairHTAB
	KindMCRepairBAT
	KindMCRepairCache
	// KindMCEscalate: the fault was not repairable (canonical
	// page-table memory was poisoned); the owning task was killed. Aux
	// is the victim PID.
	KindMCEscalate
	// KindMCSpurious: classification and a full invariant sweep found
	// nothing wrong; the delivery was logged and dismissed.
	KindMCSpurious

	// NumKinds is the number of event kinds.
	NumKinds
)

// kindNames index-aligns with the Kind constants; KindNames and
// KindByName expose the mapping for serialization.
var kindNames = [NumKinds]string{
	"tlb-miss",
	"tlb-insert",
	"tlb-evict",
	"htab-hit-primary",
	"htab-hit-secondary",
	"htab-miss",
	"hashmiss-fault",
	"soft-reload",
	"htab-insert-free",
	"htab-evict-live",
	"htab-evict-zombie",
	"ondemand-scan",
	"minor-fault",
	"major-fault",
	"flush-page",
	"flush-range",
	"flush-cutoff",
	"flush-context",
	"vsid-reassign",
	"ctx-switch",
	"idle-reclaim",
	"page-zero",
	"swap-out",
	"swap-in",
	"cache-fill",
	"machine-check",
	"mc-repair-tlb",
	"mc-repair-htab",
	"mc-repair-bat",
	"mc-repair-cache",
	"mc-escalate",
	"mc-spurious",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(?)"
}

// KindByName returns the Kind with the given String form.
func KindByName(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one traced occurrence. Which fields are meaningful depends
// on the kind (see the Kind constants); unknown fields are zero.
type Event struct {
	// Time is the emitting machine's ledger reading when the event
	// completed (costs are charged before the event is emitted, so
	// Time-Cost brackets the operation).
	Time clock.Cycles
	// Cost is the simulated cycle cost attributed to the event.
	Cost clock.Cycles
	// Kind classifies the event.
	Kind Kind
	// Task is the PID current when the event fired (0: none/boot).
	Task uint32
	// VSID is the virtual segment the event concerns, when one does.
	VSID arch.VSID
	// EA is the effective address involved (for KindPageZero and
	// KindCacheFill it carries a physical address).
	EA arch.EffectiveAddr
	// Aux is a kind-specific argument (page counts, reclaim counts,
	// cache class).
	Aux uint32
}

// HistBuckets is the bucket count of the log2 cost histograms: bucket
// 0 holds zero-cost events, bucket i holds costs in [2^(i-1), 2^i).
const HistBuckets = 33

// Hist is the cycle-cost distribution of one event class. It covers
// every emitted event of the class — including events the ring has
// since overwritten — so Count reconciles with the hwmon counter the
// class mirrors.
type Hist struct {
	// Count is how many events were emitted.
	Count uint64
	// CostTotal is the summed cycle cost.
	CostTotal uint64
	// AuxTotal is the summed Aux argument (meaningful for classes
	// whose Aux is a count: reclaims, range pages).
	AuxTotal uint64
	// Buckets is the log2 cost histogram.
	Buckets [HistBuckets]uint64
}

// bucketOf maps a cost to its log2 bucket.
//
//mmutricks:noalloc
func bucketOf(c clock.Cycles) int {
	b := bits.Len64(uint64(c))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketLabel renders bucket i's cost range ("0", "1", "2-3",
// "4-7", ...).
func BucketLabel(i int) string {
	switch i {
	case 0:
		return "0"
	case 1:
		return "1"
	}
	return itoa(uint64(1)<<(i-1)) + "-" + itoa(uint64(1)<<i-1)
}

// itoa is a tiny strconv.FormatUint(v, 10) so the package's only
// imports stay arch, clock, hwmon and math/bits.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Mean returns the average cost of the class, 0 when empty.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.CostTotal) / float64(h.Count)
}

// TaskSlots is the size of the fixed per-task attribution table. Slots
// are indexed PID mod TaskSlots; the workloads the tracer records keep
// well under TaskSlots live PIDs, so collisions (which would merge two
// tasks' totals) do not arise in practice.
const TaskSlots = 256

// TaskStat accumulates per-task attribution: how many events a task
// incurred and their summed cycle cost.
type TaskStat struct {
	PID       uint32
	Events    uint64
	CostTotal uint64
}

// Tracer records events for one simulated machine. It is fixed-size
// after construction: the emit path touches only pre-allocated memory.
// A Tracer is not safe for concurrent use — like the Machine it
// instruments, it belongs to one simulation goroutine.
type Tracer struct {
	enabled  bool
	curTask  uint32
	led      *clock.Ledger
	ring     []Event
	capacity int
	head     uint64 // total events ever emitted
	hists    [NumKinds]Hist
	tasks    [TaskSlots]TaskStat
}

// DefaultCapacity is the ring size machines construct their tracer
// with: 32 Ki events (~1.5 MB), enough to hold the tail of any
// benchmark window while staying cheap to allocate per machine.
const DefaultCapacity = 1 << 15

// NewTracer builds a disabled tracer reading timestamps from led. The
// ring is allocated on first Enable, so machines that never trace —
// most harness cells — pay nothing for it.
func NewTracer(led *clock.Ledger, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{led: led, capacity: capacity}
}

// Enable starts recording. The hwmon.Counters snapshot for the
// reconciliation window should be taken at the same moment.
func (t *Tracer) Enable() {
	if t.ring == nil {
		t.ring = make([]Event, t.capacity)
	}
	t.enabled = true
}

// Disable stops recording; the collected data stays readable.
func (t *Tracer) Disable() { t.enabled = false }

// Enabled reports whether the tracer is recording.
//
//mmutricks:noalloc
func (t *Tracer) Enabled() bool { return t.enabled }

// Reset discards everything recorded (the enabled flag and current
// task are kept).
func (t *Tracer) Reset() {
	for i := range t.ring {
		t.ring[i] = Event{}
	}
	t.head = 0
	t.hists = [NumKinds]Hist{}
	t.tasks = [TaskSlots]TaskStat{}
}

// SetTask names the task subsequent events are attributed to; the
// kernel calls it on every context switch.
//
//mmutricks:noalloc
func (t *Tracer) SetTask(pid uint32) {
	if t == nil {
		return
	}
	t.curTask = pid
}

// Emit records one event. Disabled (or nil) tracers return after one
// branch; the body is small enough to inline, so a disabled tracepoint
// costs no call.
//
//mmutricks:noalloc
func (t *Tracer) Emit(kind Kind, vs arch.VSID, ea arch.EffectiveAddr, cost clock.Cycles, aux uint32) {
	if t == nil || !t.enabled {
		return
	}
	t.emit(kind, vs, ea, cost, aux)
}

// emit is the enabled slow path: histogram, per-task attribution, ring
// store. No allocation on any branch.
//
//mmutricks:noalloc
func (t *Tracer) emit(kind Kind, vs arch.VSID, ea arch.EffectiveAddr, cost clock.Cycles, aux uint32) {
	h := &t.hists[kind]
	h.Count++
	h.CostTotal += uint64(cost)
	h.AuxTotal += uint64(aux)
	h.Buckets[bucketOf(cost)]++

	s := &t.tasks[t.curTask%TaskSlots]
	s.PID = t.curTask
	s.Events++
	s.CostTotal += uint64(cost)

	t.ring[t.head%uint64(len(t.ring))] = Event{
		Time: t.led.Now(),
		Cost: cost,
		Kind: kind,
		Task: t.curTask,
		VSID: vs,
		EA:   ea,
		Aux:  aux,
	}
	t.head++
}

// Capacity returns the ring size.
func (t *Tracer) Capacity() int { return t.capacity }

// Emitted returns how many events have been emitted since the last
// Reset (including events the ring has overwritten).
func (t *Tracer) Emitted() uint64 { return t.head }

// Dropped returns how many events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t.head <= uint64(len(t.ring)) {
		return 0
	}
	return t.head - uint64(len(t.ring))
}

// Events returns a copy of the ring contents, oldest first. The first
// returned event has sequence number Dropped() (sequence numbers count
// from 0 at the last Reset).
func (t *Tracer) Events() []Event {
	n := t.head
	if n > uint64(len(t.ring)) {
		n = uint64(len(t.ring))
	}
	out := make([]Event, 0, n)
	start := t.head - n
	for i := uint64(0); i < n; i++ {
		out = append(out, t.ring[(start+i)%uint64(len(t.ring))])
	}
	return out
}

// Hist returns the cost histogram of one event class.
func (t *Tracer) Hist(k Kind) Hist { return t.hists[k] }

// Hists returns all per-class histograms, indexed by Kind.
func (t *Tracer) Hists() *[NumKinds]Hist {
	h := t.hists
	return &h
}

// TaskStats returns the non-empty per-task attribution rows in PID
// order.
func (t *Tracer) TaskStats() []TaskStat {
	var out []TaskStat
	for i := range t.tasks {
		if t.tasks[i].Events > 0 {
			out = append(out, t.tasks[i])
		}
	}
	// Slots are PID mod TaskSlots; a selection sort keeps the package
	// dependency-free and the row count is tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].PID > out[j].PID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
