package mmtrace

import "mmutricks/internal/hwmon"

// ReconcileRow compares one trace-derived total against the hwmon
// counter that should equal it.
type ReconcileRow struct {
	// Name labels the comparison (usually the event-kind name).
	Name string
	// TraceTotal is the total derived from the trace histograms.
	TraceTotal uint64
	// Counter is the hwmon.Counters value for the same window.
	Counter uint64
	// OK reports TraceTotal == Counter.
	OK bool
}

// Reconcile cross-checks the tracer's per-class histogram totals
// against a hwmon.Counters delta covering the same window. Every row
// must hold when tracing was enabled for the whole window: histograms
// count every emitted event (ring overflow only drops raw events), so
// any mismatch means a tracepoint and its counter have drifted apart.
func Reconcile(h *[NumKinds]Hist, c *hwmon.Counters) []ReconcileRow {
	row := func(name string, trace, counter uint64) ReconcileRow {
		return ReconcileRow{Name: name, TraceTotal: trace, Counter: counter, OK: trace == counter}
	}
	n := func(k Kind) uint64 { return h[k].Count }
	return []ReconcileRow{
		row("tlb-miss", n(KindTLBMiss), c.TLBMisses),
		row("htab-hit-primary", n(KindHTABHitPrimary), c.HTABPrimaryHits),
		row("htab-hits (prim+sec)", n(KindHTABHitPrimary)+n(KindHTABHitSecondary), c.HTABHits),
		row("htab-miss", n(KindHTABMiss), c.HTABMisses),
		row("hashmiss-fault", n(KindHashMissFault), c.HashMissFaults),
		row("soft-reload", n(KindSoftReload), c.SoftwareReloads),
		row("htab-insert-free", n(KindHTABInsertFree), c.HTABFreeSlot),
		row("htab-evict-live", n(KindHTABEvictLive), c.HTABEvictsValid),
		row("htab-evict-zombie", n(KindHTABEvictZombie), c.HTABEvictsZombie),
		row("htab-inserts (sum)",
			n(KindHTABInsertFree)+n(KindHTABEvictLive)+n(KindHTABEvictZombie),
			c.HTABInserts),
		row("ondemand-scan", n(KindOnDemandScan), c.OnDemandScans),
		row("minor-fault", n(KindMinorFault), c.MinorFaults),
		row("major-fault", n(KindMajorFault), c.MajorFaults),
		row("flush-page", n(KindFlushPage), c.FlushPage),
		row("flush-range", n(KindFlushRange), c.FlushRange),
		row("flush-context", n(KindFlushContext), c.FlushContext),
		row("ctx-switch", n(KindCtxSwitch), c.CtxSwitches),
		row("zombies-reclaimed (aux)",
			h[KindIdleReclaim].AuxTotal+h[KindOnDemandScan].AuxTotal,
			c.ZombiesReclaimed),
		row("page-zero", n(KindPageZero), c.IdlePagesCleared),
		row("swap-out", n(KindSwapOut), c.SwapOuts),
		row("swap-in", n(KindSwapIn), c.SwapIns),
		row("machine-check", n(KindMachineCheck), c.MachineChecks),
		row("mc-repair-tlb", n(KindMCRepairTLB), c.MCRepairsTLB),
		row("mc-repair-htab", n(KindMCRepairHTAB), c.MCRepairsHTAB),
		row("mc-repair-bat", n(KindMCRepairBAT), c.MCRepairsBAT),
		row("mc-repair-cache", n(KindMCRepairCache), c.MCRepairsCache),
		row("mc-escalate", n(KindMCEscalate), c.MCEscalations),
		row("mc-spurious", n(KindMCSpurious), c.MCSpurious),
		row("mc-outcomes (sum)",
			n(KindMCRepairTLB)+n(KindMCRepairHTAB)+n(KindMCRepairBAT)+
				n(KindMCRepairCache)+n(KindMCEscalate)+n(KindMCSpurious),
			c.MachineChecks),
	}
}
