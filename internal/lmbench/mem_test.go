package lmbench

import (
	"testing"

	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
)

func TestMemReadLatencyCurve(t *testing.T) {
	s := suite(t, clock.PPC604At185(), kernel.Optimized())
	inL1 := s.MemReadLatency(16*1024, 4000)   // fits the 32 KB L1
	inMem := s.MemReadLatency(256*1024, 4000) // misses the L1
	pastTLB := s.MemReadLatency(2<<20, 4000)  // past the 1 MB TLB reach
	if inL1 > 3 {
		t.Fatalf("L1-resident load = %.1f cycles, want ~1", inL1)
	}
	if inMem < 10*inL1 {
		t.Fatalf("memory-resident load (%.1f) should dwarf L1 (%.1f)", inMem, inL1)
	}
	if pastTLB <= inMem {
		t.Fatalf("past TLB reach (%.1f) should exceed cache-miss latency (%.1f)", pastTLB, inMem)
	}
}

func TestBzeroModes(t *testing.T) {
	s := suite(t, clock.PPC604At185(), kernel.Optimized())
	stores := s.BzeroBandwidth(64*1024, 4, BzeroStores)
	s2 := suite(t, clock.PPC604At185(), kernel.Optimized())
	dcbz := s2.BzeroBandwidth(64*1024, 4, BzeroDCBZ)
	if dcbz.MBps <= stores.MBps {
		t.Fatalf("dcbz bzero (%.0f MB/s) should beat store bzero (%.0f MB/s)", dcbz.MBps, stores.MBps)
	}
	if BzeroStores.String() != "stores" || BzeroDCBZ.String() != "dcbz" {
		t.Error("mode names")
	}
}

func TestBcopyBandwidth(t *testing.T) {
	s := suite(t, clock.PPC604At185(), kernel.Optimized())
	r := s.BcopyBandwidth(64*1024, 4)
	if r.MBps < 10 || r.MBps > 2000 {
		t.Fatalf("bcopy = %.0f MB/s", r.MBps)
	}
}

func TestMemChasePeriodIsSingleCycle(t *testing.T) {
	next := memChasePeriod(4096, 32, 7)
	seen := make([]bool, len(next))
	pos := 0
	for i := 0; i < len(next); i++ {
		if seen[pos] {
			t.Fatalf("position %d revisited early", pos)
		}
		seen[pos] = true
		pos = next[pos]
	}
	if pos != 0 {
		t.Fatal("cycle does not close")
	}
}
