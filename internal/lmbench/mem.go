package lmbench

import (
	"mmutricks/internal/arch"
)

// Memory-hierarchy microbenchmarks in the lmbench style: the
// lat_mem_rd load-latency curve and bw_mem-style bzero/bcopy
// bandwidths. The bzero variants expose the §9 design space: plain
// stores versus the dcbz cache-line-zero instruction the authors
// deliberately avoided.

// memChasePeriod builds a deterministic single-cycle permutation of the
// line-granular offsets covering size bytes — the dependent-load chain
// lat_mem_rd walks.
func memChasePeriod(size, line int, seed uint32) []int {
	n := size / line
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	x := seed | 1
	rnd := func(m int) int {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		return int(x % uint32(m))
	}
	for i := n - 1; i > 0; i-- { // Sattolo: one cycle
		j := rnd(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[perm[i]] = perm[i+1]
	}
	next[perm[n-1]] = perm[0]
	return next
}

// MemReadLatency measures the average cost in cycles of a dependent
// load over a working set of the given size (lmbench lat_mem_rd). The
// curve steps up at the L1 capacity and again at the TLB reach.
func (s *Suite) MemReadLatency(sizeBytes, refs int) (cyclesPerLoad float64) {
	img := s.K.LoadImage("lat_mem_rd", 2)
	t := s.K.Spawn(img)
	s.K.Switch(t)
	pages := (sizeBytes + arch.PageSize - 1) / arch.PageSize
	base := s.K.SysMmap(pages)
	s.K.UserTouchPages(base, pages) // fault in

	line := s.K.M.LineSize()
	next := memChasePeriod(sizeBytes, line, 1999)
	pos := 0
	// Warm one full cycle.
	for i := 0; i < len(next); i++ {
		s.K.UserRef(base+arch.EffectiveAddr(pos*line), false)
		pos = next[pos]
	}
	start := s.K.M.Led.Now()
	for i := 0; i < refs; i++ {
		s.K.UserRef(base+arch.EffectiveAddr(pos*line), false)
		pos = next[pos]
	}
	elapsed := s.K.M.Led.Now() - start
	s.reap(t)
	return float64(elapsed) / float64(refs)
}

// BzeroMode selects the §9 bzero implementation.
type BzeroMode int

const (
	// BzeroStores clears with ordinary stores (the implementation the
	// authors shipped).
	BzeroStores BzeroMode = iota
	// BzeroDCBZ clears with the cache-line-zero instruction (the one
	// they avoided: fast, maximally polluting).
	BzeroDCBZ
)

func (m BzeroMode) String() string {
	if m == BzeroDCBZ {
		return "dcbz"
	}
	return "stores"
}

// BzeroBandwidth measures clearing throughput over a buffer of the
// given size (lmbench bw_mem bzero), in MB/s.
func (s *Suite) BzeroBandwidth(sizeBytes, passes int, mode BzeroMode) Result {
	img := s.K.LoadImage("bw_mem", 2)
	t := s.K.Spawn(img)
	s.K.Switch(t)
	pages := (sizeBytes + arch.PageSize - 1) / arch.PageSize
	base := s.K.SysMmap(pages)
	s.K.UserZero(base, sizeBytes, mode == BzeroDCBZ) // fault in + warm
	r := s.measure("bzero-"+mode.String(), func() {
		for p := 0; p < passes; p++ {
			s.K.UserZero(base, sizeBytes, mode == BzeroDCBZ)
		}
	})
	r.MBps = s.K.M.Led.MBPerSec(int64(passes)*int64(sizeBytes), r.Cycles)
	s.reap(t)
	return r
}

// BcopyBandwidth measures user-level copy throughput (lmbench bw_mem
// bcopy), in MB/s.
func (s *Suite) BcopyBandwidth(sizeBytes, passes int) Result {
	img := s.K.LoadImage("bw_mem", 2)
	t := s.K.Spawn(img)
	s.K.Switch(t)
	pages := (sizeBytes + arch.PageSize - 1) / arch.PageSize
	src := s.K.SysMmap(pages)
	dst := s.K.SysMmap(pages)
	s.K.UserCopy(dst, src, sizeBytes) // fault in + warm
	r := s.measure("bcopy", func() {
		for p := 0; p < passes; p++ {
			s.K.UserCopy(dst, src, sizeBytes)
		}
	})
	r.MBps = s.K.M.Led.MBPerSec(int64(passes)*int64(sizeBytes), r.Cycles)
	s.reap(t)
	return r
}
