package lmbench

import (
	"testing"

	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
)

func TestSignalLatency(t *testing.T) {
	s := suite(t, clock.PPC604At133(), kernel.Optimized())
	r := s.SignalLatency(40)
	if r.Micros <= 0 || r.Micros > 100 {
		t.Fatalf("signal latency = %.2f us", r.Micros)
	}
	if r.Counters.Signals != 40 {
		t.Fatalf("signals = %d", r.Counters.Signals)
	}
}

func TestProtFaultLatency(t *testing.T) {
	s := suite(t, clock.PPC604At133(), kernel.Optimized())
	r := s.ProtFaultLatency(40)
	if r.Micros <= 0 || r.Micros > 200 {
		t.Fatalf("prot fault latency = %.2f us", r.Micros)
	}
	if r.Counters.Signals != 40 {
		t.Fatalf("signals = %d", r.Counters.Signals)
	}
	// Both are the same order: delivery dominates (the prot fault
	// swaps the kill syscall's entry for a trap + decode).
	rs := s.SignalLatency(40)
	if r.Micros > 2*rs.Micros || rs.Micros > 2*r.Micros {
		t.Fatalf("prot fault (%.2f) and plain signal (%.2f) should be comparable", r.Micros, rs.Micros)
	}
}

func TestFsLatency(t *testing.T) {
	s := suite(t, clock.PPC604At133(), kernel.Optimized())
	r := s.FsLatency(50)
	if r.Micros <= 0 || r.Micros > 500 {
		t.Fatalf("fs latency = %.2f us", r.Micros)
	}
}
