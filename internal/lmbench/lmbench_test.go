package lmbench

import (
	"strings"
	"testing"

	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
)

func suite(t *testing.T, model clock.CPUModel, cfg kernel.Config) *Suite {
	t.Helper()
	s := New(kernel.New(machine.New(model), cfg))
	// Every benchmark kernel gets an end-of-test consistency sweep: the
	// suite drives the flush/swap/COW paths hard, and the sweep proves
	// the lazy-flush invariants survived outside the measured windows.
	t.Cleanup(func() {
		if err := s.K.CheckConsistency(); err != nil {
			t.Errorf("end-of-test consistency sweep: %v", err)
		}
	})
	return s
}

func TestNullSyscallMagnitude(t *testing.T) {
	s := suite(t, clock.PPC604At133(), kernel.Optimized())
	r := s.NullSyscall(200)
	if r.Micros <= 0 || r.Micros > 10 {
		t.Fatalf("optimized null syscall = %.2f us, expect ~2 us scale", r.Micros)
	}
	if r.Counters.Syscalls != 200 {
		t.Fatalf("syscalls counted = %d", r.Counters.Syscalls)
	}
	u := suite(t, clock.PPC604At133(), kernel.Unoptimized())
	ru := u.NullSyscall(200)
	if ru.Micros <= r.Micros {
		t.Fatalf("unoptimized (%.2f) must be slower than optimized (%.2f)", ru.Micros, r.Micros)
	}
}

func TestCtxSwitchScalesWithProcesses(t *testing.T) {
	s := suite(t, clock.PPC604At185(), kernel.Optimized())
	r2 := s.CtxSwitch(2, 0, 30)
	r8 := s.CtxSwitch(8, 4, 15)
	if r2.Micros < 0 || r8.Micros <= 0 {
		t.Fatalf("ctxsw: 2p=%.2f 8p=%.2f", r2.Micros, r8.Micros)
	}
	if r8.Micros <= r2.Micros {
		t.Fatalf("8-process switching (%.2f) should cost more than 2-process (%.2f)", r8.Micros, r2.Micros)
	}
	if r2.Counters.CtxSwitches == 0 {
		t.Fatal("no context switches recorded")
	}
}

func TestPipeLatency(t *testing.T) {
	s := suite(t, clock.PPC604At133(), kernel.Optimized())
	r := s.PipeLatency(50)
	if r.Micros <= 0 || r.Micros > 200 {
		t.Fatalf("pipe latency = %.2f us", r.Micros)
	}
	// Each round is 4 syscalls; 50 rounds measured.
	if r.Counters.Syscalls != 200 {
		t.Fatalf("syscalls = %d", r.Counters.Syscalls)
	}
}

func TestPipeBandwidth(t *testing.T) {
	s := suite(t, clock.PPC604At133(), kernel.Optimized())
	r := s.PipeBandwidth(1 << 20)
	if r.MBps < 5 || r.MBps > 500 {
		t.Fatalf("pipe bandwidth = %.1f MB/s, expect tens", r.MBps)
	}
}

func TestFileReread(t *testing.T) {
	s := suite(t, clock.PPC604At133(), kernel.Optimized())
	r := s.FileReread(256, 2) // 1 MB file
	if r.MBps < 5 || r.MBps > 500 {
		t.Fatalf("file reread = %.1f MB/s", r.MBps)
	}
}

func TestFileRereadSlowerThanPipe(t *testing.T) {
	// The paper's tables consistently show file reread below pipe
	// bandwidth (per-page page-cache lookups and a cold file).
	s := suite(t, clock.PPC604At133(), kernel.Optimized())
	pb := s.PipeBandwidth(1 << 20)
	fr := s.FileReread(256, 2)
	if fr.MBps >= pb.MBps {
		t.Fatalf("file reread (%.1f) should trail pipe bw (%.1f)", fr.MBps, pb.MBps)
	}
}

func TestMmapLatencyCutoffEffect(t *testing.T) {
	// The §7 headline: eager range flushing makes mmap cost
	// milliseconds; the cutoff collapses it by roughly two orders of
	// magnitude.
	eager := suite(t, clock.PPC603At133(), kernel.Unoptimized())
	re := eager.MmapLatency(1024, 5)
	tuned := suite(t, clock.PPC603At133(), kernel.Optimized())
	rt := tuned.MmapLatency(1024, 5)
	if re.Micros < 500 {
		t.Fatalf("eager mmap latency = %.0f us, expect ~ms scale", re.Micros)
	}
	if rt.Micros > re.Micros/10 {
		t.Fatalf("tuned mmap (%.1f us) should be >=10x cheaper than eager (%.1f us)", rt.Micros, re.Micros)
	}
}

func TestProcStart(t *testing.T) {
	s := suite(t, clock.PPC604At185(), kernel.Optimized())
	r := s.ProcStart(5)
	if r.Micros <= 0 {
		t.Fatal("pstart must cost something")
	}
	if r.Counters.Forks != 5 || r.Counters.Execs != 5 || r.Counters.Exits != 5 {
		t.Fatalf("process counts: %+v", r.Counters)
	}
}

func TestNoFrameLeaksAcrossSuite(t *testing.T) {
	s := suite(t, clock.PPC604At185(), kernel.Optimized())
	free0 := s.K.M.Mem.FreeFrames()
	s.NullSyscall(20)
	s.PipeLatency(10)
	s.ProcStart(3)
	s.MmapLatency(64, 3)
	// Images, files and pipe buffers are retained (they model the page
	// cache), but task-private memory must all come back. Allow the
	// retained kernel objects: images (4 distinct), pipes (3 pages).
	free1 := s.K.M.Mem.FreeFrames()
	retained := free0 - free1
	if retained > 64 {
		t.Fatalf("too many frames retained after benchmarks: %d", retained)
	}
}

func TestResultString(t *testing.T) {
	if !strings.Contains((Result{Name: "x", Micros: 1.5}).String(), "us") {
		t.Error("latency format")
	}
	if !strings.Contains((Result{Name: "x", MBps: 3}).String(), "MB/s") {
		t.Error("bandwidth format")
	}
}
