// Package lmbench reimplements the LmBench microbenchmarks the paper
// reports — null syscall, context switch, pipe latency, pipe bandwidth,
// file reread, mmap latency, and process start — as workloads driving
// the simulated kernel. Loop structures follow McVoy's lmbench 1.x; the
// measured quantity is simulated cycles converted to microseconds or
// MB/s at the machine's clock rate.
package lmbench

import (
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/hwmon"
	"mmutricks/internal/kernel"
)

// Result is one benchmark measurement.
type Result struct {
	Name string
	// Micros is the per-operation latency in microseconds (latency
	// benchmarks) or 0.
	Micros float64
	// MBps is the bandwidth in MB/s (bandwidth benchmarks) or 0.
	MBps float64
	// Cycles is the measured window in simulated cycles.
	Cycles clock.Cycles
	// Counters is the performance-monitor delta over the window.
	Counters hwmon.Counters
}

func (r Result) String() string {
	if r.MBps != 0 {
		return fmt.Sprintf("%-12s %8.1f MB/s", r.Name, r.MBps)
	}
	return fmt.Sprintf("%-12s %8.1f us", r.Name, r.Micros)
}

// Suite runs benchmarks against one booted kernel. Each benchmark
// creates the tasks it needs; reuse one Suite for a whole column of a
// table so cache and hash-table state carry realistically between
// benchmarks.
type Suite struct {
	K *kernel.Kernel
}

// New builds a Suite on a kernel.
func New(k *kernel.Kernel) *Suite { return &Suite{K: k} }

// measure runs fn under the counters and clock, returning the window.
func (s *Suite) measure(name string, fn func()) Result {
	before := s.K.M.Mon.Snapshot()
	start := s.K.M.Led.Now()
	fn()
	d := s.K.M.Led.Now() - start
	return Result{
		Name:     name,
		Cycles:   d,
		Counters: s.K.M.Mon.Delta(before),
	}
}

// NullSyscall measures the trivial system call (lmbench lat_syscall
// null: a getppid loop).
func (s *Suite) NullSyscall(iters int) Result {
	img := s.K.LoadImage("null", 2)
	t := s.K.Spawn(img)
	s.K.Switch(t)
	for i := 0; i < iters/10+2; i++ { // warmup
		s.K.SysNull()
	}
	r := s.measure("nullsys", func() {
		for i := 0; i < iters; i++ {
			s.K.SysNull()
		}
	})
	r.Micros = s.K.M.Led.Micros(r.Cycles) / float64(iters)
	s.reap(t)
	return r
}

// CtxSwitch measures process context switching (lmbench lat_ctx): n
// processes in a ring pass a token through pipes; each process touches
// wsPages pages of private working set per activation. The reported
// time is the per-hop cost minus the pipe read/write overhead, which is
// lmbench's definition.
func (s *Suite) CtxSwitch(n, wsPages, iters int) Result {
	img := s.K.LoadImage("lat_ctx", 4)
	tasks := make([]*kernel.Task, n)
	pipes := make([]*kernel.Pipe, n)
	for i := range tasks {
		tasks[i] = s.K.Spawn(img)
	}
	for i := range pipes {
		s.K.Switch(tasks[i])
		pipes[i] = s.K.SysPipe()
	}
	// Fault in each working set once.
	for i, t := range tasks {
		s.K.Switch(t)
		if wsPages > 0 {
			s.K.UserTouchPages(kernel.UserDataBase, wsPages)
		}
		_ = i
	}

	hop := func(i int) {
		t := tasks[i]
		s.K.Switch(t)
		s.K.SysPipeRead(pipes[i], kernel.UserDataBase+0x100000, 1)
		if wsPages > 0 {
			s.K.UserTouchPages(kernel.UserDataBase, wsPages)
		}
		s.K.SysPipeWrite(pipes[(i+1)%n], kernel.UserDataBase+0x100000, 1)
	}

	// Prime the token and warm.
	s.K.Switch(tasks[0])
	s.K.SysPipeWrite(pipes[0], kernel.UserDataBase+0x100000, 1)
	for w := 0; w < 2; w++ {
		for i := 0; i < n; i++ {
			hop(i)
		}
	}

	r := s.measure("ctxsw", func() {
		for it := 0; it < iters; it++ {
			for i := 0; i < n; i++ {
				hop(i)
			}
		}
	})
	hops := iters * n

	// Overhead calibration: the same pipe read+write with no switch
	// and no working set, in one process (lmbench subtracts this).
	s.K.Switch(tasks[0])
	self := s.K.SysPipe()
	s.K.SysPipeWrite(self, kernel.UserDataBase+0x100000, 1)
	s.K.SysPipeRead(self, kernel.UserDataBase+0x100000, 1)
	ovh := s.measure("ovh", func() {
		for i := 0; i < 64; i++ {
			s.K.SysPipeWrite(self, kernel.UserDataBase+0x100000, 1)
			s.K.SysPipeRead(self, kernel.UserDataBase+0x100000, 1)
		}
	})
	perHop := s.K.M.Led.Micros(r.Cycles) / float64(hops)
	perOvh := s.K.M.Led.Micros(ovh.Cycles) / 64
	r.Name = fmt.Sprintf("ctxsw-%dp", n)
	r.Micros = perHop - perOvh
	if r.Micros < 0 {
		r.Micros = 0
	}
	for _, t := range tasks {
		s.reap(t)
	}
	return r
}

// PipeLatency measures one-way latency of a byte through a pair of
// pipes between two processes (lmbench lat_pipe).
func (s *Suite) PipeLatency(iters int) Result {
	img := s.K.LoadImage("lat_pipe", 2)
	a := s.K.Spawn(img)
	b := s.K.Spawn(img)
	s.K.Switch(a)
	p1 := s.K.SysPipe()
	p2 := s.K.SysPipe()
	buf := kernel.UserDataBase

	round := func() {
		s.K.Switch(a)
		s.K.SysPipeWrite(p1, buf, 1)
		s.K.Switch(b)
		s.K.SysPipeRead(p1, buf, 1)
		s.K.SysPipeWrite(p2, buf, 1)
		s.K.Switch(a)
		s.K.SysPipeRead(p2, buf, 1)
	}
	for i := 0; i < iters/10+2; i++ {
		round()
	}
	r := s.measure("pipelat", func() {
		for i := 0; i < iters; i++ {
			round()
		}
	})
	// One round is two one-way trips.
	r.Micros = s.K.M.Led.Micros(r.Cycles) / float64(iters) / 2
	s.reap(a)
	s.reap(b)
	return r
}

// PipeBandwidth measures bulk pipe throughput (lmbench bw_pipe): a
// writer streams 4 KB chunks from a 64 KB user buffer to a reader.
func (s *Suite) PipeBandwidth(totalBytes int) Result {
	img := s.K.LoadImage("bw_pipe", 2)
	w := s.K.Spawn(img)
	rd := s.K.Spawn(img)
	s.K.Switch(w)
	p := s.K.SysPipe()
	const bufPages = 16 // 64 KB user buffer each side
	chunk := arch.PageSize

	xfer := func(i int) {
		off := arch.EffectiveAddr((i % bufPages) * arch.PageSize)
		s.K.Switch(w)
		s.K.SysPipeWrite(p, kernel.UserDataBase+off, chunk)
		s.K.Switch(rd)
		s.K.SysPipeRead(p, kernel.UserDataBase+off, chunk)
	}
	for i := 0; i < 8; i++ { // warm buffers and pipe page
		xfer(i)
	}
	n := totalBytes / chunk
	r := s.measure("pipebw", func() {
		for i := 0; i < n; i++ {
			xfer(i)
		}
	})
	r.MBps = s.K.M.Led.MBPerSec(int64(n)*int64(chunk), r.Cycles)
	s.reap(w)
	s.reap(rd)
	return r
}

// FileReread measures rereading a page-cache-resident file (lmbench
// bw_file_rd io_only): sequential 64 KB reads over the file, repeated.
func (s *Suite) FileReread(filePages, passes int) Result {
	img := s.K.LoadImage("bw_file", 2)
	t := s.K.Spawn(img)
	s.K.Switch(t)
	f := s.K.CreateFile(filePages)
	const chunk = 64 * 1024
	pass := func() {
		for off := 0; off < f.Size(); off += chunk {
			s.K.SysRead(f, off, kernel.UserDataBase, chunk)
		}
	}
	pass() // warm
	r := s.measure("filereread", func() {
		for i := 0; i < passes; i++ {
			pass()
		}
	})
	r.MBps = s.K.M.Led.MBPerSec(int64(passes)*int64(f.Size()), r.Cycles)
	s.reap(t)
	return r
}

// MmapLatency measures mapping and unmapping a region (lmbench
// lat_mmap). The unmap is where the §7 hash-table range-flush cost
// lives; pages controls the region size.
func (s *Suite) MmapLatency(pages, iters int) Result {
	img := s.K.LoadImage("lat_mmap", 2)
	t := s.K.Spawn(img)
	s.K.Switch(t)
	// One warm pair.
	addr := s.K.SysMmap(pages)
	s.K.SysMunmap(addr, pages)
	r := s.measure("mmaplat", func() {
		for i := 0; i < iters; i++ {
			a := s.K.SysMmap(pages)
			s.K.SysMunmap(a, pages)
		}
	})
	r.Micros = s.K.M.Led.Micros(r.Cycles) / float64(iters)
	s.reap(t)
	return r
}

// ProcStart measures process creation (lmbench lat_proc: fork + exec +
// a short run + exit).
func (s *Suite) ProcStart(iters int) Result {
	img := s.K.LoadImage("lat_proc", 8)
	parent := s.K.Spawn(img)
	s.K.Switch(parent)
	s.K.UserTouch(kernel.UserDataBase, 4*arch.PageSize) // parent state
	one := func() {
		child := s.K.Fork()
		s.K.Switch(child)
		s.K.Exec(img)
		s.K.UserRun(0, 2000)
		s.K.UserTouch(kernel.UserDataBase, 2*arch.PageSize)
		s.K.Exit()
		s.K.Switch(parent)
		s.K.Wait(child)
	}
	one() // warm
	r := s.measure("pstart", func() {
		for i := 0; i < iters; i++ {
			one()
		}
	})
	r.Micros = s.K.M.Led.Micros(r.Cycles) / float64(iters)
	s.reap(parent)
	return r
}

// FsLatency measures creating and deleting empty files (lmbench
// lat_fs, 0K case): per create+delete pair.
func (s *Suite) FsLatency(iters int) Result {
	img := s.K.LoadImage("lat_fs", 2)
	t := s.K.Spawn(img)
	s.K.Switch(t)
	s.K.SysCreat("warm", 0)
	s.K.SysUnlink("warm")
	r := s.measure("fslat", func() {
		for i := 0; i < iters; i++ {
			name := fmt.Sprintf("f%03d", i%64)
			s.K.SysCreat(name, 0)
			s.K.SysUnlink(name)
		}
	})
	r.Micros = s.K.M.Led.Micros(r.Cycles) / float64(iters)
	s.reap(t)
	return r
}

// SignalLatency measures installing-and-catching a signal (lmbench
// lat_sig catch).
func (s *Suite) SignalLatency(iters int) Result {
	img := s.K.LoadImage("lat_sig", 2)
	t := s.K.Spawn(img)
	s.K.Switch(t)
	s.K.SysSignal(0, 60)
	s.K.SysKill(t) // warm
	r := s.measure("siglat", func() {
		for i := 0; i < iters; i++ {
			s.K.SysKill(t)
		}
	})
	r.Micros = s.K.M.Led.Micros(r.Cycles) / float64(iters)
	s.reap(t)
	return r
}

// ProtFaultLatency measures catching a write to a write-protected page
// (lmbench lat_sig prot): mprotect, store, SIGSEGV, handler, restore.
func (s *Suite) ProtFaultLatency(iters int) Result {
	img := s.K.LoadImage("lat_prot", 2)
	t := s.K.Spawn(img)
	s.K.Switch(t)
	s.K.SysSignal(0, 60)
	addr := s.K.SysMmap(4)
	s.K.UserTouch(addr, 4*arch.PageSize)
	s.K.SysMprotect(addr, 4, true)
	s.K.UserRef(addr, true) // warm one fault
	r := s.measure("protlat", func() {
		for i := 0; i < iters; i++ {
			s.K.UserRef(addr+arch.EffectiveAddr((i%4)*arch.PageSize), true)
		}
	})
	r.Micros = s.K.M.Led.Micros(r.Cycles) / float64(iters)
	s.reap(t)
	return r
}

// reap exits and reaps a task created by a benchmark.
func (s *Suite) reap(t *kernel.Task) {
	s.K.Switch(t)
	s.K.Exit()
	s.K.Wait(t)
}
