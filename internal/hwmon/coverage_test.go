package hwmon

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// These tests walk the Counters struct with reflection so a counter
// added by a future PR cannot be silently dropped from aggregation
// (Add), windowing (Delta), or reports (String): the hand-written
// field lists in those methods must keep up with the struct.

// distinct fills each field of a Counters with a distinct large value
// (base + 7i, all >= 100000 so no value collides with a field index or
// another field).
func distinct(base uint64) Counters {
	var c Counters
	v := reflect.ValueOf(&c).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(base + 7*uint64(i))
	}
	return c
}

func TestCountersFieldsAreAllUint64(t *testing.T) {
	ty := reflect.TypeOf(Counters{})
	for i := 0; i < ty.NumField(); i++ {
		f := ty.Field(i)
		if f.Type.Kind() != reflect.Uint64 {
			t.Errorf("field %s is %s; the reflection coverage tests assume uint64", f.Name, f.Type)
		}
	}
}

func TestAddCoversEveryField(t *testing.T) {
	src := distinct(100000)
	var dst Counters
	dst.Add(src)
	if !reflect.DeepEqual(dst, src) {
		diffFields(t, "Add", dst, src)
	}
}

func TestDeltaCoversEveryField(t *testing.T) {
	base := distinct(100000)
	double := base
	double.Add(base)
	got := double.Delta(base)
	if !reflect.DeepEqual(got, base) {
		diffFields(t, "Delta", got, base)
	}
}

func TestStringCoversEveryField(t *testing.T) {
	c := distinct(100000)
	out := c.String()
	v := reflect.ValueOf(c)
	ty := v.Type()
	for i := 0; i < v.NumField(); i++ {
		val := fmt.Sprintf("%d", v.Field(i).Uint())
		if !strings.Contains(out, val) {
			t.Errorf("String() omits field %s (looked for distinct value %s)", ty.Field(i).Name, val)
		}
	}
}

func TestCounterNamesAndValuesCoverEveryField(t *testing.T) {
	ty := reflect.TypeOf(Counters{})
	names := CounterNames()
	if len(names) != ty.NumField() {
		t.Fatalf("CounterNames returns %d names for %d fields", len(names), ty.NumField())
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n != ty.Field(i).Name {
			t.Errorf("CounterNames[%d] = %q, want field %q", i, n, ty.Field(i).Name)
		}
		if seen[n] {
			t.Errorf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
	c := distinct(100000)
	vals := c.Values()
	if len(vals) != ty.NumField() {
		t.Fatalf("Values returns %d values for %d fields", len(vals), ty.NumField())
	}
	v := reflect.ValueOf(c)
	for i, got := range vals {
		if got != v.Field(i).Uint() {
			t.Errorf("Values[%d] (%s) = %d, want %d", i, names[i], got, v.Field(i).Uint())
		}
	}
}

// diffFields reports exactly which fields a method missed.
func diffFields(t *testing.T, method string, got, want Counters) {
	t.Helper()
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	ty := gv.Type()
	for i := 0; i < gv.NumField(); i++ {
		if gv.Field(i).Uint() != wv.Field(i).Uint() {
			t.Errorf("%s drops field %s: got %d, want %d",
				method, ty.Field(i).Name, gv.Field(i).Uint(), wv.Field(i).Uint())
		}
	}
}
