// Package hwmon is the simulated analogue of the PowerPC 604 hardware
// performance monitor (and the software counters the paper used on the
// 603): a set of event counters that the MMU model and the kernel charge
// as they run. The paper's low-level claims — TLB-miss reductions, hash
// hit rates, evict ratios, hash-table occupancy — are read directly off
// these counters.
package hwmon

import (
	"fmt"
	"reflect"
	"strings"
)

// Counters is the full event-counter file. All fields are cumulative;
// use Snapshot/Delta to measure a window.
type Counters struct {
	// TLB behaviour.
	TLBHits   uint64
	TLBMisses uint64
	// BATHits counts translations satisfied by a BAT register (these
	// never consult the TLB, §5.1).
	BATHits uint64

	// Hash-table behaviour on TLB misses.
	HTABHits   uint64 // PTE found in primary or secondary bucket
	HTABMisses uint64 // neither bucket matched → software fault path
	// HTABPrimaryHits counts hits found in the primary bucket (the
	// remainder of HTABHits needed the secondary search).
	HTABPrimaryHits uint64

	// Hash-table maintenance.
	HTABInserts       uint64 // PTEs loaded into the table
	HTABEvictsValid   uint64 // insert displaced a valid, live PTE
	HTABEvictsZombie  uint64 // insert displaced a valid but zombie PTE
	HTABFreeSlot      uint64 // insert found an empty/invalid slot
	HTABFlushSearches uint64 // per-PTE flush searches (the §7 cost)

	// Reload mechanisms.
	SoftwareReloads uint64 // 603 software TLB reloads
	HardwareWalks   uint64 // 604 hardware table searches
	HashMissFaults  uint64 // 604 hash-miss interrupts taken

	// Page faults handled by the kernel proper.
	MinorFaults uint64 // translation existed in the page tree
	MajorFaults uint64 // new page had to be allocated/zeroed

	// Flush activity.
	FlushPage    uint64 // single-page flushes
	FlushRange   uint64 // range flushes executed PTE-by-PTE
	FlushContext uint64 // whole-context (VSID reassignment) flushes

	// Signals counts signal deliveries.
	Signals uint64

	// Kernel activity.
	Syscalls    uint64
	CtxSwitches uint64
	Forks       uint64
	Execs       uint64
	Exits       uint64
	// KthreadMMSwitches counts UseMM/UnuseMM address-space adoptions by
	// kernel threads — context-switch work that CtxSwitches does not
	// cover (the telemetry ctx-switch phase reconciles against the sum).
	KthreadMMSwitches uint64

	// SwapOuts and SwapIns count pages moved to and from the swap
	// device under memory pressure.
	SwapOuts uint64
	SwapIns  uint64

	// OnDemandScans counts reclaim bursts run synchronously because an
	// insert found both buckets full (§7's rejected design).
	OnDemandScans uint64

	// Idle task activity (§7, §9).
	IdlePolls        uint64
	ZombiesReclaimed uint64
	IdlePagesCleared uint64
	ClearedPageHits  uint64 // get_free_page served from the cleared list
	// IdleWaits counts entries into the idle loop (RunIdleFor calls) and
	// IdleScans counts hash-table reclaim sweeps the idle task started;
	// both anchor telemetry phase-entry reconciliation identities.
	IdleWaits uint64
	IdleScans uint64

	// Machine-check handling (the fault-injection recovery loop). Each
	// delivery increments MachineChecks plus exactly one of the repair,
	// escalation, or spurious counters, so injected-fault audits are
	// exact identities.
	MachineChecks  uint64 // machine-check interrupts taken
	MCRepairsTLB   uint64 // poisoned TLB entries invalidated
	MCRepairsHTAB  uint64 // poisoned/resurrected hash-table PTEs invalidated
	MCRepairsBAT   uint64 // BAT registers reprogrammed from the canonical map
	MCRepairsCache uint64 // poisoned clean cache lines invalidated
	MCEscalations  uint64 // unrepairable faults escalated to a task kill
	MCSpurious     uint64 // deliveries where verification found nothing wrong
}

// Snapshot returns a copy of the counters.
func (c *Counters) Snapshot() Counters { return *c }

// Delta returns the change since an earlier snapshot.
func (c *Counters) Delta(since Counters) Counters {
	d := *c
	d.TLBHits -= since.TLBHits
	d.TLBMisses -= since.TLBMisses
	d.BATHits -= since.BATHits
	d.HTABHits -= since.HTABHits
	d.HTABMisses -= since.HTABMisses
	d.HTABPrimaryHits -= since.HTABPrimaryHits
	d.HTABInserts -= since.HTABInserts
	d.HTABEvictsValid -= since.HTABEvictsValid
	d.HTABEvictsZombie -= since.HTABEvictsZombie
	d.HTABFreeSlot -= since.HTABFreeSlot
	d.HTABFlushSearches -= since.HTABFlushSearches
	d.SoftwareReloads -= since.SoftwareReloads
	d.HardwareWalks -= since.HardwareWalks
	d.HashMissFaults -= since.HashMissFaults
	d.MinorFaults -= since.MinorFaults
	d.MajorFaults -= since.MajorFaults
	d.FlushPage -= since.FlushPage
	d.FlushRange -= since.FlushRange
	d.FlushContext -= since.FlushContext
	d.Signals -= since.Signals
	d.Syscalls -= since.Syscalls
	d.CtxSwitches -= since.CtxSwitches
	d.Forks -= since.Forks
	d.Execs -= since.Execs
	d.Exits -= since.Exits
	d.KthreadMMSwitches -= since.KthreadMMSwitches
	d.SwapOuts -= since.SwapOuts
	d.SwapIns -= since.SwapIns
	d.OnDemandScans -= since.OnDemandScans
	d.IdlePolls -= since.IdlePolls
	d.ZombiesReclaimed -= since.ZombiesReclaimed
	d.IdlePagesCleared -= since.IdlePagesCleared
	d.ClearedPageHits -= since.ClearedPageHits
	d.IdleWaits -= since.IdleWaits
	d.IdleScans -= since.IdleScans
	d.MachineChecks -= since.MachineChecks
	d.MCRepairsTLB -= since.MCRepairsTLB
	d.MCRepairsHTAB -= since.MCRepairsHTAB
	d.MCRepairsBAT -= since.MCRepairsBAT
	d.MCRepairsCache -= since.MCRepairsCache
	d.MCEscalations -= since.MCEscalations
	d.MCSpurious -= since.MCSpurious
	return d
}

// Add accumulates another counter set into c, field by field. The
// benchmark drivers use it to aggregate monitors from independent
// per-benchmark kernels into one machine-wide view.
func (c *Counters) Add(o Counters) {
	c.TLBHits += o.TLBHits
	c.TLBMisses += o.TLBMisses
	c.BATHits += o.BATHits
	c.HTABHits += o.HTABHits
	c.HTABMisses += o.HTABMisses
	c.HTABPrimaryHits += o.HTABPrimaryHits
	c.HTABInserts += o.HTABInserts
	c.HTABEvictsValid += o.HTABEvictsValid
	c.HTABEvictsZombie += o.HTABEvictsZombie
	c.HTABFreeSlot += o.HTABFreeSlot
	c.HTABFlushSearches += o.HTABFlushSearches
	c.SoftwareReloads += o.SoftwareReloads
	c.HardwareWalks += o.HardwareWalks
	c.HashMissFaults += o.HashMissFaults
	c.MinorFaults += o.MinorFaults
	c.MajorFaults += o.MajorFaults
	c.FlushPage += o.FlushPage
	c.FlushRange += o.FlushRange
	c.FlushContext += o.FlushContext
	c.Signals += o.Signals
	c.Syscalls += o.Syscalls
	c.CtxSwitches += o.CtxSwitches
	c.Forks += o.Forks
	c.Execs += o.Execs
	c.Exits += o.Exits
	c.KthreadMMSwitches += o.KthreadMMSwitches
	c.SwapOuts += o.SwapOuts
	c.SwapIns += o.SwapIns
	c.OnDemandScans += o.OnDemandScans
	c.IdlePolls += o.IdlePolls
	c.ZombiesReclaimed += o.ZombiesReclaimed
	c.IdlePagesCleared += o.IdlePagesCleared
	c.ClearedPageHits += o.ClearedPageHits
	c.IdleWaits += o.IdleWaits
	c.IdleScans += o.IdleScans
	c.MachineChecks += o.MachineChecks
	c.MCRepairsTLB += o.MCRepairsTLB
	c.MCRepairsHTAB += o.MCRepairsHTAB
	c.MCRepairsBAT += o.MCRepairsBAT
	c.MCRepairsCache += o.MCRepairsCache
	c.MCEscalations += o.MCEscalations
	c.MCSpurious += o.MCSpurious
}

// CounterNames returns the Go field name of every counter, in
// declaration order. Telemetry recordings serialize sampled counter
// snapshots as bare value arrays and store this name vector once, so
// the order here is a (reflection-derived, hence drift-proof) part of
// the recording format.
func CounterNames() []string {
	ty := reflect.TypeOf(Counters{})
	names := make([]string, ty.NumField())
	for i := range names {
		names[i] = ty.Field(i).Name
	}
	return names
}

// Values returns every counter value in CounterNames order.
func (c *Counters) Values() []uint64 {
	v := reflect.ValueOf(*c)
	out := make([]uint64, v.NumField())
	for i := range out {
		out[i] = v.Field(i).Uint()
	}
	return out
}

// TLBMissRate returns TLB misses / (hits+misses); 0 when idle.
func (c *Counters) TLBMissRate() float64 {
	t := c.TLBHits + c.TLBMisses
	if t == 0 {
		return 0
	}
	return float64(c.TLBMisses) / float64(t)
}

// HTABHitRate returns the hash-table hit rate on TLB misses — the
// paper's headline 85%–98% metric (§7).
func (c *Counters) HTABHitRate() float64 {
	t := c.HTABHits + c.HTABMisses
	if t == 0 {
		return 0
	}
	return float64(c.HTABHits) / float64(t)
}

// EvictRatio returns the fraction of hash-table reloads that had to
// replace a valid entry (live or zombie) — the >90% vs ~30% metric of
// §7.
func (c *Counters) EvictRatio() float64 {
	if c.HTABInserts == 0 {
		return 0
	}
	return float64(c.HTABEvictsValid+c.HTABEvictsZombie) / float64(c.HTABInserts)
}

// String renders the counters as an aligned table for reports.
func (c *Counters) String() string {
	var b strings.Builder
	row := func(name string, v uint64) { fmt.Fprintf(&b, "%-22s %12d\n", name, v) }
	row("tlb-hits", c.TLBHits)
	row("tlb-misses", c.TLBMisses)
	row("bat-hits", c.BATHits)
	row("htab-hits", c.HTABHits)
	row("htab-misses", c.HTABMisses)
	row("htab-primary-hits", c.HTABPrimaryHits)
	row("htab-inserts", c.HTABInserts)
	row("htab-evicts-valid", c.HTABEvictsValid)
	row("htab-evicts-zombie", c.HTABEvictsZombie)
	row("htab-free-slot", c.HTABFreeSlot)
	row("htab-flush-searches", c.HTABFlushSearches)
	row("sw-reloads", c.SoftwareReloads)
	row("hw-walks", c.HardwareWalks)
	row("hashmiss-faults", c.HashMissFaults)
	row("minor-faults", c.MinorFaults)
	row("major-faults", c.MajorFaults)
	row("flush-page", c.FlushPage)
	row("flush-range", c.FlushRange)
	row("flush-context", c.FlushContext)
	row("signals", c.Signals)
	row("syscalls", c.Syscalls)
	row("ctx-switches", c.CtxSwitches)
	row("forks", c.Forks)
	row("execs", c.Execs)
	row("exits", c.Exits)
	row("kthread-mm-switches", c.KthreadMMSwitches)
	row("swap-outs", c.SwapOuts)
	row("swap-ins", c.SwapIns)
	row("ondemand-scans", c.OnDemandScans)
	row("idle-polls", c.IdlePolls)
	row("zombies-reclaimed", c.ZombiesReclaimed)
	row("idle-pages-cleared", c.IdlePagesCleared)
	row("cleared-page-hits", c.ClearedPageHits)
	row("idle-waits", c.IdleWaits)
	row("idle-scans", c.IdleScans)
	row("machine-checks", c.MachineChecks)
	row("mc-repairs-tlb", c.MCRepairsTLB)
	row("mc-repairs-htab", c.MCRepairsHTAB)
	row("mc-repairs-bat", c.MCRepairsBAT)
	row("mc-repairs-cache", c.MCRepairsCache)
	row("mc-escalations", c.MCEscalations)
	row("mc-spurious", c.MCSpurious)
	fmt.Fprintf(&b, "%-22s %11.2f%%\n", "tlb-miss-rate", 100*c.TLBMissRate())
	fmt.Fprintf(&b, "%-22s %11.2f%%\n", "htab-hit-rate", 100*c.HTABHitRate())
	fmt.Fprintf(&b, "%-22s %11.2f%%\n", "evict-ratio", 100*c.EvictRatio())
	return b.String()
}

// Histogram is a simple integer histogram, used for the hash-bucket
// occupancy distribution the paper used to tune the VSID scatter
// constant (§5.2).
type Histogram struct {
	Buckets []uint64
}

// NewHistogram returns a histogram with n buckets.
func NewHistogram(n int) *Histogram { return &Histogram{Buckets: make([]uint64, n)} }

// Add increments bucket i (clamped to the last bucket).
func (h *Histogram) Add(i int) {
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// Total returns the sum over all buckets.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, v := range h.Buckets {
		t += v
	}
	return t
}

// Max returns the largest bucket count.
func (h *Histogram) Max() uint64 {
	var m uint64
	for _, v := range h.Buckets {
		if v > m {
			m = v
		}
	}
	return m
}

// String renders the histogram as rows of "index count bar".
func (h *Histogram) String() string {
	var b strings.Builder
	max := h.Max()
	for i, v := range h.Buckets {
		bar := 0
		if max > 0 {
			bar = int(v * 40 / max)
		}
		fmt.Fprintf(&b, "%3d %10d %s\n", i, v, strings.Repeat("#", bar))
	}
	return b.String()
}
