package hwmon

import (
	"strings"
	"testing"
)

func TestSnapshotDelta(t *testing.T) {
	var c Counters
	c.TLBMisses = 10
	c.HTABHits = 7
	snap := c.Snapshot()
	c.TLBMisses = 25
	c.HTABHits = 9
	c.Syscalls = 3
	d := c.Delta(snap)
	if d.TLBMisses != 15 || d.HTABHits != 2 || d.Syscalls != 3 {
		t.Fatalf("delta = %+v", d)
	}
	// Snapshot is a copy: mutating c must not change snap.
	if snap.TLBMisses != 10 {
		t.Fatal("snapshot aliases live counters")
	}
}

func TestRates(t *testing.T) {
	var c Counters
	if c.TLBMissRate() != 0 || c.HTABHitRate() != 0 || c.EvictRatio() != 0 {
		t.Fatal("idle counters should report zero rates")
	}
	c.TLBHits = 90
	c.TLBMisses = 10
	if got := c.TLBMissRate(); got != 0.1 {
		t.Errorf("TLBMissRate = %v", got)
	}
	c.HTABHits = 85
	c.HTABMisses = 15
	if got := c.HTABHitRate(); got != 0.85 {
		t.Errorf("HTABHitRate = %v", got)
	}
	c.HTABInserts = 100
	c.HTABEvictsValid = 20
	c.HTABEvictsZombie = 10
	if got := c.EvictRatio(); got != 0.3 {
		t.Errorf("EvictRatio = %v", got)
	}
}

func TestString(t *testing.T) {
	var c Counters
	c.TLBMisses = 42
	s := c.String()
	if !strings.Contains(s, "tlb-misses") || !strings.Contains(s, "42") {
		t.Errorf("String() missing fields:\n%s", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(9) // occupancy 0..8
	h.Add(0)
	h.Add(8)
	h.Add(8)
	h.Add(-1) // clamps to 0
	h.Add(99) // clamps to 8
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Buckets[0] != 2 || h.Buckets[8] != 3 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if h.Max() != 3 {
		t.Fatalf("Max = %d", h.Max())
	}
	if !strings.Contains(h.String(), "#") {
		t.Error("histogram bars missing")
	}
}

func TestDeltaCoversAllTrackedFields(t *testing.T) {
	// Every counter touched here must be subtracted by Delta; this
	// guards the hand-written Delta against missing fields for the
	// counters the experiments rely on.
	before := Counters{
		TLBHits: 1, TLBMisses: 1, BATHits: 1, HTABHits: 1, HTABMisses: 1,
		HTABPrimaryHits: 1, HTABInserts: 1, HTABEvictsValid: 1,
		HTABEvictsZombie: 1, HTABFreeSlot: 1, HTABFlushSearches: 1,
		SoftwareReloads: 1, HardwareWalks: 1, HashMissFaults: 1,
		MinorFaults: 1, MajorFaults: 1, FlushPage: 1, FlushRange: 1,
		FlushContext: 1, SwapOuts: 1, SwapIns: 1, OnDemandScans: 1, Signals: 1, Syscalls: 1, CtxSwitches: 1, Forks: 1, Execs: 1,
		Exits: 1, IdlePolls: 1, ZombiesReclaimed: 1, IdlePagesCleared: 1,
		ClearedPageHits: 1,
	}
	after := before
	d := after.Delta(before)
	if d != (Counters{}) {
		t.Fatalf("Delta of identical snapshots not zero: %+v", d)
	}
}
