package arch

import (
	"testing"
	"testing/quick"
)

func TestEffectiveAddrDecomposition(t *testing.T) {
	// Figure 1 of the paper: 4-bit segment index, 16-bit page index,
	// 12-bit byte offset.
	cases := []struct {
		ea     EffectiveAddr
		seg    int
		pidx   uint32
		off    uint32
		kernel bool
	}{
		{0x00000000, 0, 0, 0, false},
		{0x00001234, 0, 1, 0x234, false},
		{0x10000000, 1, 0, 0, false},
		{0xC0000000, 12, 0, 0, true},
		{0xC0003ABC, 12, 3, 0xABC, true},
		{0xFFFFFFFF, 15, 0xFFFF, 0xFFF, true},
		{0x7FFFDFFC, 7, 0xFFFD, 0xFFC, false},
	}
	for _, c := range cases {
		if got := c.ea.SegIndex(); got != c.seg {
			t.Errorf("%v.SegIndex() = %d, want %d", c.ea, got, c.seg)
		}
		if got := c.ea.PageIndex(); got != c.pidx {
			t.Errorf("%v.PageIndex() = %#x, want %#x", c.ea, got, c.pidx)
		}
		if got := c.ea.Offset(); got != c.off {
			t.Errorf("%v.Offset() = %#x, want %#x", c.ea, got, c.off)
		}
		if got := c.ea.IsKernel(); got != c.kernel {
			t.Errorf("%v.IsKernel() = %v, want %v", c.ea, got, c.kernel)
		}
	}
}

func TestEffectiveAddrRecomposition(t *testing.T) {
	// seg<<28 | pageindex<<12 | offset must reproduce the address.
	f := func(ea EffectiveAddr) bool {
		rebuilt := EffectiveAddr(uint32(ea.SegIndex())<<SegmentShift |
			ea.PageIndex()<<PageShift | ea.Offset())
		return rebuilt == ea
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVirtualAddressComposition(t *testing.T) {
	// The 52-bit virtual address concatenates VSID, page index, offset.
	ea := EffectiveAddr(0x30004A5C)
	v := VSID(0xABCDEF)
	va := Virtual(v, ea)
	if va.VSID() != v {
		t.Errorf("VSID round trip: got %#x want %#x", va.VSID(), v)
	}
	if va.PageIndex() != ea.PageIndex() {
		t.Errorf("page index: got %#x want %#x", va.PageIndex(), ea.PageIndex())
	}
	if va.Offset() != ea.Offset() {
		t.Errorf("offset: got %#x want %#x", va.Offset(), ea.Offset())
	}
	if va.VPN() != VPNOf(v, ea) {
		t.Errorf("VPN mismatch: %#x vs %#x", va.VPN(), VPNOf(v, ea))
	}
}

func TestVirtualRoundTripProperty(t *testing.T) {
	f := func(v VSID, ea EffectiveAddr) bool {
		v &= VSIDMask
		va := Virtual(v, ea)
		vpn := VPNOf(v, ea)
		return va.VSID() == v && va.PageIndex() == ea.PageIndex() &&
			va.Offset() == ea.Offset() &&
			vpn.VSID() == v && vpn.PageIndex() == ea.PageIndex()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVSIDIsMasked(t *testing.T) {
	// VSIDs wider than 24 bits must be truncated, never leak into the
	// page index.
	va := Virtual(VSID(0xFFFFFFFF), 0)
	if va.VSID() != VSIDMask {
		t.Errorf("VSID not masked: %#x", va.VSID())
	}
	if va.PageIndex() != 0 || va.Offset() != 0 {
		t.Errorf("overflow leaked into low fields: %#x", uint64(va))
	}
}

func TestPhysAddrFrame(t *testing.T) {
	pa := PhysAddr(0x01FF3ABC)
	if pa.Frame() != PFN(0x01FF3) {
		t.Errorf("Frame() = %#x", uint32(pa.Frame()))
	}
	if pa.Offset() != 0xABC {
		t.Errorf("Offset() = %#x", pa.Offset())
	}
	if pa.Frame().Addr() != 0x01FF3000 {
		t.Errorf("Addr() = %v", pa.Frame().Addr())
	}
}

func TestPFNAddrRoundTrip(t *testing.T) {
	f := func(pa PhysAddr) bool {
		return pa.Frame().Addr()+PhysAddr(pa.Offset()) == pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageBase(t *testing.T) {
	if got := EffectiveAddr(0x12345FFF).PageBase(); got != 0x12345000 {
		t.Errorf("PageBase = %v", got)
	}
	if got := EffectiveAddr(0x12345000).PageBase(); got != 0x12345000 {
		t.Errorf("PageBase of aligned = %v", got)
	}
}

func TestHashPrimaryInRange(t *testing.T) {
	f := func(vpn VPN) bool {
		p := HashPrimary(vpn, DefaultHTABGroups)
		s := HashSecondary(vpn, DefaultHTABGroups)
		return p >= 0 && p < DefaultHTABGroups && s >= 0 && s < DefaultHTABGroups
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashSecondaryIsComplement(t *testing.T) {
	// The architecture defines the secondary hash as the one's
	// complement of the primary, so primary != secondary always (for
	// any table with more than one group).
	f := func(vpn VPN) bool {
		p := HashPrimary(vpn, DefaultHTABGroups)
		s := HashSecondary(vpn, DefaultHTABGroups)
		return p != s && s == (^p)&(DefaultHTABGroups-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashUsesVSIDForVariation(t *testing.T) {
	// The paper (§5.2): "the logical address spaces of processes tend
	// to be similar so the hash functions rely on the VSIDs to provide
	// variation." Distinct VSIDs at the same page index must often
	// land in distinct buckets.
	const trials = 1024
	same := 0
	base := VPNOf(1, 0x00400000)
	for i := 1; i < trials; i++ {
		v := VPNOf(VSID(i*7), 0x00400000)
		if HashPrimary(v, DefaultHTABGroups) == HashPrimary(base, DefaultHTABGroups) {
			same++
		}
	}
	if same > trials/16 {
		t.Errorf("VSID variation too weak: %d/%d collisions with base bucket", same, trials)
	}
}

func TestPTEMatches(t *testing.T) {
	vpn := VPNOf(0x123456, 0x00404000)
	p := PTE{Valid: true, VSID: vpn.VSID(), API: vpn.PageIndex(), RPN: 42}
	if !p.Matches(vpn) {
		t.Fatal("PTE should match its own VPN")
	}
	if p.VPN() != vpn {
		t.Fatalf("VPN() = %#x want %#x", p.VPN(), vpn)
	}
	other := VPNOf(0x123457, 0x00404000)
	if p.Matches(other) {
		t.Fatal("PTE must not match different VSID")
	}
	p.Valid = false
	if p.Matches(vpn) {
		t.Fatal("invalid PTE must never match")
	}
}

func TestPTEVPNRoundTrip(t *testing.T) {
	f := func(v VSID, ea EffectiveAddr) bool {
		vpn := VPNOf(v&VSIDMask, ea)
		p := PTE{Valid: true, VSID: vpn.VSID(), API: vpn.PageIndex()}
		return p.VPN() == vpn && p.Matches(vpn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHTABGeometry(t *testing.T) {
	// 2048 groups x 8 PTEs x 8 bytes = 128 KB, the table the paper
	// describes holding 16384 PTEs for a 32 MB machine.
	if DefaultHTABEntries != 16384 {
		t.Errorf("DefaultHTABEntries = %d, want 16384", DefaultHTABEntries)
	}
	if DefaultHTABGroups*PTEGSize*PTEBytes != 128*1024 {
		t.Errorf("table size = %d bytes, want 128 KB", DefaultHTABGroups*PTEGSize*PTEBytes)
	}
}

func TestStringFormats(t *testing.T) {
	if s := EffectiveAddr(0xC0000000).String(); s != "0xc0000000" {
		t.Errorf("EffectiveAddr.String() = %q", s)
	}
	if s := PhysAddr(0x1000).String(); s != "0x00001000" {
		t.Errorf("PhysAddr.String() = %q", s)
	}
	p := PTE{Valid: true, VSID: 0x123, API: 0x45, RPN: 0x678}
	if s := p.String(); s == "" {
		t.Error("PTE.String() empty")
	}
}
