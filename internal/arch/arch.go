// Package arch defines the 32-bit PowerPC address-translation
// architecture as described in the PowerPC 603/604 user's manuals and in
// Dougan, Mackerras and Yodaiken, "Optimizing the Idle Task and Other MMU
// Tricks" (OSDI '99): 32-bit effective addresses, 52-bit virtual
// addresses formed by concatenating a 24-bit virtual segment identifier
// (VSID) with the 16-bit page index and 12-bit byte offset, 4 KB pages,
// and the primary/secondary hashed page table.
//
// The package is pure data and arithmetic — no state — so every other
// package (the MMU model, the kernel, the benchmarks) shares one
// definition of addresses, PTEs and hash functions.
package arch

import "fmt"

// Fundamental sizes of the 32-bit PowerPC translation architecture.
const (
	// PageShift is log2 of the page size. Pages are 4 KB.
	PageShift = 12
	// PageSize is the size of a page in bytes.
	PageSize = 1 << PageShift
	// PageMask masks the byte offset within a page.
	PageMask = PageSize - 1

	// SegmentShift is log2 of the segment size. The 4 high-order bits
	// of an effective address select one of 16 256 MB segments.
	SegmentShift = 28
	// NumSegments is the number of segment registers.
	NumSegments = 16

	// PageIndexBits is the width of the page index within a segment:
	// bits 12..27 of the effective address.
	PageIndexBits = 16

	// VSIDBits is the width of a virtual segment identifier.
	VSIDBits = 24
	// VSIDMask masks a VSID to its architected width.
	VSIDMask = (1 << VSIDBits) - 1

	// KernelBase is the effective address at which the kernel lives.
	// Linux on 32-bit machines reserves 0xC0000000..0xFFFFFFFF for
	// kernel text/data and I/O space.
	KernelBase = 0xC0000000
)

// EffectiveAddr is a 32-bit program (logical) address.
type EffectiveAddr uint32

// PhysAddr is a 32-bit physical address.
type PhysAddr uint32

// VirtAddr is the 52-bit virtual address formed from VSID, page index
// and byte offset. It is held in a uint64; the top 12 bits are zero.
type VirtAddr uint64

// VSID is a 24-bit virtual segment identifier.
type VSID uint32

// VPN identifies a virtual page: the VSID concatenated with the 16-bit
// page index. It is what the TLB and hash table are keyed on.
type VPN uint64

// PFN is a 20-bit physical page frame number.
type PFN uint32

// SegIndex returns which of the 16 segment registers the effective
// address selects (its 4 high-order bits).
//
//mmutricks:noalloc
func (ea EffectiveAddr) SegIndex() int { return int(ea >> SegmentShift) }

// PageIndex returns the 16-bit page index within the segment.
//
//mmutricks:noalloc
func (ea EffectiveAddr) PageIndex() uint32 {
	return uint32(ea>>PageShift) & ((1 << PageIndexBits) - 1)
}

// Offset returns the 12-bit byte offset within the page.
//
//mmutricks:noalloc
func (ea EffectiveAddr) Offset() uint32 { return uint32(ea) & PageMask }

// PageBase returns the effective address with the byte offset cleared.
func (ea EffectiveAddr) PageBase() EffectiveAddr { return ea &^ PageMask }

// PageNumber returns the effective page number (ea >> 12). This is a
// property of the effective address alone, before segmentation.
func (ea EffectiveAddr) PageNumber() uint32 { return uint32(ea >> PageShift) }

// IsKernel reports whether the address falls in the kernel's reserved
// region (0xC0000000 and up).
//
//mmutricks:noalloc
func (ea EffectiveAddr) IsKernel() bool { return ea >= KernelBase }

// String formats the address in the conventional hex form.
func (ea EffectiveAddr) String() string { return fmt.Sprintf("0x%08x", uint32(ea)) }

// String formats the physical address in hex.
func (pa PhysAddr) String() string { return fmt.Sprintf("0x%08x", uint32(pa)) }

// Frame returns the physical page frame number of the address.
func (pa PhysAddr) Frame() PFN { return PFN(pa >> PageShift) }

// Offset returns the byte offset of the physical address within its frame.
func (pa PhysAddr) Offset() uint32 { return uint32(pa) & PageMask }

// Addr returns the physical base address of the frame.
//
//mmutricks:noalloc
func (f PFN) Addr() PhysAddr { return PhysAddr(f) << PageShift }

// Virtual builds the 52-bit virtual address from a VSID and the page
// index and offset of an effective address, per Figure 1 of the paper.
func Virtual(v VSID, ea EffectiveAddr) VirtAddr {
	return VirtAddr(uint64(v&VSIDMask)<<(PageIndexBits+PageShift) |
		uint64(ea.PageIndex())<<PageShift |
		uint64(ea.Offset()))
}

// VPNOf builds the virtual page number used as the TLB and hash-table
// key: VSID concatenated with the page index.
//
//mmutricks:noalloc
func VPNOf(v VSID, ea EffectiveAddr) VPN {
	return VPN(uint64(v&VSIDMask)<<PageIndexBits | uint64(ea.PageIndex()))
}

// VSID extracts the segment identifier from a virtual page number.
//
//mmutricks:noalloc
func (v VPN) VSID() VSID { return VSID(uint64(v)>>PageIndexBits) & VSIDMask }

// PageIndex extracts the 16-bit page index from a virtual page number.
//
//mmutricks:noalloc
func (v VPN) PageIndex() uint32 { return uint32(v) & ((1 << PageIndexBits) - 1) }

// VSID extracts the segment identifier from a virtual address.
func (va VirtAddr) VSID() VSID {
	return VSID(uint64(va)>>(PageIndexBits+PageShift)) & VSIDMask
}

// PageIndex extracts the 16-bit page index from a virtual address.
func (va VirtAddr) PageIndex() uint32 {
	return uint32(uint64(va)>>PageShift) & ((1 << PageIndexBits) - 1)
}

// Offset extracts the 12-bit byte offset from a virtual address.
func (va VirtAddr) Offset() uint32 { return uint32(va) & PageMask }

// VPN returns the virtual page number of the virtual address.
func (va VirtAddr) VPN() VPN { return VPN(uint64(va) >> PageShift) }
