package arch

import "fmt"

// PTE is a PowerPC hashed-page-table entry. The real hardware packs
// this into two 32-bit words; we keep the fields explicit but preserve
// the architected widths. A PTE associates a virtual page (VSID + page
// index, plus which hash function located it) with a physical frame and
// protection/housekeeping bits.
type PTE struct {
	// Valid is the V bit. The hardware only matches valid entries.
	Valid bool
	// VSID is the 24-bit virtual segment identifier.
	VSID VSID
	// API is the abbreviated page index stored in the entry. Together
	// with the hash that selected the bucket it reconstructs the full
	// page index; we store the full 16-bit index for simplicity, which
	// loses no information.
	API uint32
	// Hash records whether the entry was placed using the secondary
	// hash function (the architected H bit).
	Hash bool
	// RPN is the 20-bit real (physical) page number.
	RPN PFN
	// R and C are the referenced and changed bits maintained by the
	// table-walk hardware (or the software reload path).
	R, C bool
	// WIMG holds the storage-control bits; we track only the
	// cache-inhibited bit (I) which §8/§9 of the paper care about.
	CacheInhibited bool
	// PP is the 2-bit page-protection field.
	PP uint8
}

// Matches reports whether the entry translates the given virtual page.
//
//mmutricks:noalloc
func (p *PTE) Matches(vpn VPN) bool {
	return p.Valid && p.VSID == vpn.VSID() && p.API == vpn.PageIndex()
}

// VPN reconstructs the virtual page number the entry translates.
//
//mmutricks:noalloc
func (p *PTE) VPN() VPN { return VPN(uint64(p.VSID)<<PageIndexBits | uint64(p.API)) }

// String renders the entry for debugging and the htabviz tool.
func (p *PTE) String() string {
	v := " "
	if p.Valid {
		v = "V"
	}
	h := " "
	if p.Hash {
		h = "H"
	}
	return fmt.Sprintf("[%s%s vsid=%06x api=%04x rpn=%05x]", v, h, uint32(p.VSID), p.API, uint32(p.RPN))
}

// Hashed-page-table geometry. For 32 MB of RAM the architecture-
// recommended (and paper-measured) table holds 16384 PTEs: 2048 groups
// (PTEGs) of 8 entries, 64 bytes per group, 128 KB total.
const (
	// PTEGSize is the number of PTEs per primary/secondary bucket.
	PTEGSize = 8
	// PTEBytes is the size of one entry in memory (two words).
	PTEBytes = 8
	// DefaultHTABGroups is the bucket count for a 32 MB machine.
	DefaultHTABGroups = 2048
	// DefaultHTABEntries is the total PTE capacity of that table.
	DefaultHTABEntries = DefaultHTABGroups * PTEGSize
)

// HashPrimary computes the primary hash-table bucket index for a
// virtual page, per the PowerPC architecture: the low-order 19 bits of
// the VSID XORed with the 16-bit page index, folded onto the table size.
// groups must be a power of two.
//
//mmutricks:noalloc
func HashPrimary(vpn VPN, groups int) int {
	h := (uint32(vpn.VSID()) & 0x7FFFF) ^ vpn.PageIndex()
	return int(h) & (groups - 1)
}

// HashSecondary computes the secondary (overflow) bucket index, the
// ones-complement of the primary hash folded onto the table size.
//
//mmutricks:noalloc
func HashSecondary(vpn VPN, groups int) int {
	return (^HashPrimary(vpn, groups)) & (groups - 1)
}
