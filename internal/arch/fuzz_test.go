package arch

import "testing"

// FuzzDecomposition checks the address arithmetic invariants over
// arbitrary inputs (run with `go test -fuzz=FuzzDecomposition`).
func FuzzDecomposition(f *testing.F) {
	f.Add(uint32(0), uint32(0))
	f.Add(uint32(0xC0000000), uint32(0xFFFFFF))
	f.Add(uint32(0x7FFFDFFC), uint32(0x123456))
	f.Fuzz(func(t *testing.T, ea32, vs uint32) {
		ea := EffectiveAddr(ea32)
		v := VSID(vs) & VSIDMask
		rebuilt := EffectiveAddr(uint32(ea.SegIndex())<<SegmentShift |
			ea.PageIndex()<<PageShift | ea.Offset())
		if rebuilt != ea {
			t.Fatalf("decomposition not lossless: %v != %v", rebuilt, ea)
		}
		va := Virtual(v, ea)
		if va.VSID() != v || va.PageIndex() != ea.PageIndex() || va.Offset() != ea.Offset() {
			t.Fatalf("virtual round trip failed for %v/%#x", ea, v)
		}
		vpn := VPNOf(v, ea)
		p := HashPrimary(vpn, DefaultHTABGroups)
		sx := HashSecondary(vpn, DefaultHTABGroups)
		if p < 0 || p >= DefaultHTABGroups || sx < 0 || sx >= DefaultHTABGroups || p == sx {
			t.Fatalf("hash out of range or not complementary: %d %d", p, sx)
		}
	})
}
