package model

import "fmt"

// Check runs every invariant on s and returns the first violation:
// TypeInv/SchedInv (scheduling structure), MMInv (the ctxsw.tla
// refcount implications), RefInv (the exact refcount identities the
// kernel's CheckConsistency also enforces), and VSIDInv (segment
// registers agree with the current VSID generation of the loaded
// space).
func Check(p Params, s *State) error {
	if err := checkSched(p, s); err != nil {
		return err
	}
	if err := checkMMInv(p, s); err != nil {
		return err
	}
	if err := checkRefInv(p, s); err != nil {
		return err
	}
	return checkVSIDInv(p, s)
}

// checkSched is SchedInv + TypeInv: CPU/task assignment is a mutual
// bijection on the running set, idle tasks run only on their own CPU,
// and exited tasks are off-CPU with no mm references.
func checkSched(p Params, s *State) error {
	for c := 0; c < p.CPUs; c++ {
		t := s.CPUTask[c]
		if t == none {
			return fmt.Errorf("SchedInv: cpu %d has no current task", c)
		}
		if s.TaskCPU[t] != int8(c) {
			return fmt.Errorf("SchedInv: cpu %d runs task %d which claims cpu %d", c, t, s.TaskCPU[t])
		}
		if s.TaskPhase[t] == phaseIdle && int(t) != c {
			return fmt.Errorf("SchedInv: idle task %d on foreign cpu %d", t, c)
		}
	}
	for t := 0; t < p.CPUs+p.Tasks; t++ {
		c := s.TaskCPU[t]
		if c != none && s.CPUTask[c] != int8(t) {
			return fmt.Errorf("SchedInv: task %d claims cpu %d which runs task %d", t, c, s.CPUTask[c])
		}
		switch s.TaskPhase[t] {
		case phaseNew:
			if s.TaskMM[t] != none || s.TaskActive[t] != none || c != none {
				return fmt.Errorf("SchedInv: new task %d already has state", t)
			}
		case phaseLive:
			if s.TaskMM[t] == none {
				return fmt.Errorf("SchedInv: live task %d has no mm", t)
			}
			if s.TaskActive[t] != s.TaskMM[t] {
				return fmt.Errorf("SchedInv: live task %d active_mm %d != mm %d", t, s.TaskActive[t], s.TaskMM[t])
			}
		case phaseExited:
			if s.TaskMM[t] != none || s.TaskActive[t] != none || c != none {
				return fmt.Errorf("SchedInv: exited task %d still has state", t)
			}
		}
	}
	return nil
}

// checkMMInv is the ctxsw.tla MMInv, implication form:
//
//	mm_users = 0 => no task uses the mm
//	mm_count = 0 => no task's active_mm names the mm
//	mm_users > 0 => mm_count > 0
//	init_mm's count never drops to zero
func checkMMInv(p Params, s *State) error {
	for m := 0; m <= p.MMs; m++ {
		if s.MMUsers[m] == 0 {
			for t := 0; t < p.CPUs+p.Tasks; t++ {
				if s.TaskMM[t] == int8(m) {
					return fmt.Errorf("MMInv: mm %d has users=0 but task %d uses it", m, t)
				}
			}
		}
		if s.MMCount[m] == 0 {
			for t := 0; t < p.CPUs+p.Tasks; t++ {
				if s.TaskActive[t] == int8(m) {
					return fmt.Errorf("MMInv: mm %d has count=0 but task %d's active_mm names it (use after free)", m, t)
				}
			}
		}
		if s.MMUsers[m] > 0 && s.MMCount[m] <= 0 {
			return fmt.Errorf("MMInv: mm %d has users=%d but count=%d", m, s.MMUsers[m], s.MMCount[m])
		}
		if s.MMUsers[m] < 0 || s.MMCount[m] < 0 {
			return fmt.Errorf("MMInv: mm %d refcount underflow users=%d count=%d", m, s.MMUsers[m], s.MMCount[m])
		}
	}
	if s.MMCount[initMM] <= 0 {
		return fmt.Errorf("MMInv: init_mm freed (count=%d)", s.MMCount[initMM])
	}
	return nil
}

// checkRefInv is the exact refcount accounting — strictly stronger
// than MMInv's implications, and the model twin of invariant 5 in
// kernel.CheckConsistency:
//
//	mm_users[m] = #{tasks t: t.mm = m}
//	mm_count[m] = (1 if users > 0) + (1 if m = init_mm)
//	            + #{tasks t: t.active_mm = m and t.mm != m}
func checkRefInv(p Params, s *State) error {
	for m := 0; m <= p.MMs; m++ {
		users, borrows := 0, 0
		for t := 0; t < p.CPUs+p.Tasks; t++ {
			if s.TaskMM[t] == int8(m) {
				users++
			}
			if s.TaskActive[t] == int8(m) && s.TaskMM[t] != int8(m) {
				borrows++
			}
		}
		if int(s.MMUsers[m]) != users {
			return fmt.Errorf("RefInv: mm %d users=%d but %d task(s) hold it", m, s.MMUsers[m], users)
		}
		count := borrows
		if users > 0 {
			count++
		}
		if m == int(initMM) {
			count++
		}
		if int(s.MMCount[m]) != count {
			return fmt.Errorf("RefInv: mm %d count=%d but %d reference(s) account for it", m, s.MMCount[m], count)
		}
	}
	return nil
}

// checkVSIDInv: every CPU's segment registers carry the current VSID
// generation of the space they name. A stale generation is exactly
// the paper's lazy-flush bug class: translations for a retired
// context still matching. borrow_mm deliberately skips the reload
// (lazy TLB) but also skips the generation change, so the invariant
// must still hold; vsid_reassign must broadcast to every CPU whose
// loaded context names the reassigned space.
func checkVSIDInv(p Params, s *State) error {
	for c := 0; c < p.CPUs; c++ {
		a := s.TaskActive[s.CPUTask[c]]
		if a == none {
			return fmt.Errorf("VSIDInv: cpu %d current task has no active_mm", c)
		}
		if s.CPUGen[c] != s.MMGen[a] {
			return fmt.Errorf("VSIDInv: cpu %d holds generation %d of mm %d but current generation is %d (stale segments)",
				c, s.CPUGen[c], a, s.MMGen[a])
		}
	}
	return nil
}
