//go:build !mmumutant

package model

import (
	"strings"
	"testing"
)

// TestRefineClean replays seeded random walks against the real
// (faithful) kernel and requires zero divergence: every model step
// maps to a kernel call whose observable mm state matches the model's
// prediction exactly, and the kernel's CheckConsistency holds after
// every step.
func TestRefineClean(t *testing.T) {
	p := Params{CPUs: 1, Tasks: 2, MMs: 2, Gens: 3}
	res, err := Refine(p, RefineOpts{Walks: 30, Steps: 80, Seed: 0xc0ffee})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("model and kernel diverge:\n%s", res.Violation.Script(p))
	}
	if res.StepsExecuted == 0 {
		t.Fatal("refinement executed no steps")
	}
}

// TestRefineDetectsShadowMutant plants the unuse_mm bug in the shadow
// model (kernel faithful) and requires the divergence to be found and
// minimized to its essence. This exercises the same detect-and-
// minimize machinery the CI mutation gate relies on, without needing
// the -tags mmumutant kernel build.
func TestRefineDetectsShadowMutant(t *testing.T) {
	p := Params{CPUs: 1, Tasks: 2, MMs: 2, Gens: 3}
	res, err := Refine(p, RefineOpts{Walks: 30, Steps: 80, Seed: 0xc0ffee, Mutant: MutantSkipUnusePut})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("shadow mutant not detected in %d steps", res.StepsExecuted)
	}
	got := make([]string, len(res.Violation.Trace))
	for i, st := range res.Violation.Trace {
		got[i] = st.String()
	}
	// Minimized: spawn one task, adopt its space, let go. The buggy
	// shadow keeps the user reference the real kernel drops.
	if len(got) != 3 || !strings.HasPrefix(got[1], "use_mm") || !strings.HasPrefix(got[2], "unuse_mm") {
		t.Errorf("minimized trace not the 3-step essence: %q", got)
	}
	if !strings.Contains(res.Violation.Err, "model users=") {
		t.Errorf("divergence %q does not name the refcount mismatch", res.Violation.Err)
	}
}

// TestRefineSeedDeterminism: the same seed must replay the same walks
// byte for byte — recorded counterexample seeds stay reproducible.
func TestRefineSeedDeterminism(t *testing.T) {
	p := Params{CPUs: 1, Tasks: 2, MMs: 2, Gens: 3}
	opts := RefineOpts{Walks: 10, Steps: 40, Seed: 7, Mutant: MutantSkipUnusePut}
	a, err := Refine(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Refine(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.StepsExecuted != b.StepsExecuted {
		t.Errorf("steps executed differ across identical runs: %d vs %d", a.StepsExecuted, b.StepsExecuted)
	}
	if (a.Violation == nil) != (b.Violation == nil) {
		t.Fatal("violation presence differs across identical runs")
	}
	if a.Violation != nil && a.Violation.Script(p) != b.Violation.Script(p) {
		t.Errorf("counterexample scripts differ across identical runs:\n%s\nvs\n%s",
			a.Violation.Script(p), b.Violation.Script(p))
	}
}

// TestRefineRejectsSMP: the kernel simulates one CPU, so refinement
// is defined only at cpus=1.
func TestRefineRejectsSMP(t *testing.T) {
	if _, err := Refine(Params{CPUs: 2, Tasks: 2, MMs: 2, Gens: 2}, RefineOpts{Walks: 1, Steps: 1}); err == nil {
		t.Fatal("cpus=2 refinement accepted")
	}
}
