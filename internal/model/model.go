// Package model is an explicit-state model checker for the
// context-switch/MM state machine — the ctxsw.tla module from the
// kernel-tla corpus, ported to Go and pinned to internal/kernel.
//
// The abstract machine has N CPUs, a set of user tasks, and a set of
// mm descriptors with mm_users/mm_count reference counts, plus one
// idle task per CPU and init_mm (the kernel's own space). Actions are
// the seven transitions of the real kernel's scheduling/MM layer:
//
//	mm_init        SpawnTask/Fork — a new task takes a fresh mm
//	context_switch Switch         — a CPU picks a runnable user task
//	borrow_mm      SwitchToIdle   — idle borrows the outgoing space
//	use_mm         UseMM          — a kthread adopts a task's space
//	unuse_mm       UnuseMM        — the kthread lets go again
//	exit_mm        Exit           — the current task dies
//	vsid_reassign  FlushTaskContext — lazy flush: new VSID generation
//
// Explore (explore.go) walks every reachable state by BFS and checks
// SchedInv, MMInv, the exact refcount identities, and the VSID
// generation invariant on each one; Refine (refine.go) replays seeded
// random action sequences against the real kernel at N=1 and compares
// the two step by step. The transitions analyzer
// (tools/analyzers/transitions) keeps the action table above and the
// kernel's exported mutators in lockstep.
package model

import "fmt"

// Hard capacity limits: State must be a comparable fixed-size value
// (it is the visited-set key), so every array is sized for the
// largest checkable configuration.
const (
	MaxCPUs  = 3
	MaxTasks = 8 // user tasks; idle tasks are extra
	MaxMMs   = 6 // user mms; init_mm is extra
)

// maxSlots is the task array size: one idle task per CPU + user tasks.
const maxSlots = MaxCPUs + MaxTasks

// maxMMSlots is the mm array size: init_mm + user mms.
const maxMMSlots = 1 + MaxMMs

// Params bounds one checking run.
type Params struct {
	CPUs  int // number of CPUs (1..MaxCPUs)
	Tasks int // number of user tasks (1..MaxTasks)
	MMs   int // number of user mm descriptors (1..MaxMMs)
	Gens  int // VSID generations per mm (>= 1; 1 disables vsid_reassign)
}

// Validate reports whether p fits the fixed-size state encoding.
func (p Params) Validate() error {
	switch {
	case p.CPUs < 1 || p.CPUs > MaxCPUs:
		return fmt.Errorf("cpus must be 1..%d, got %d", MaxCPUs, p.CPUs)
	case p.Tasks < 1 || p.Tasks > MaxTasks:
		return fmt.Errorf("tasks must be 1..%d, got %d", MaxTasks, p.Tasks)
	case p.MMs < 1 || p.MMs > MaxMMs:
		return fmt.Errorf("mms must be 1..%d, got %d", MaxMMs, p.MMs)
	case p.Gens < 1 || p.Gens > 120:
		return fmt.Errorf("gens must be 1..120, got %d", p.Gens)
	}
	return nil
}

// Task phases. Idle tasks stay phaseIdle forever; user tasks go
// new -> live -> exited.
const (
	phaseIdle int8 = iota
	phaseNew
	phaseLive
	phaseExited
)

// none marks an empty mm/cpu slot reference.
const none int8 = -1

// initMM is the mm index of init_mm.
const initMM int8 = 0

// State is one configuration of the abstract machine. It is a plain
// comparable value: the explorer uses it directly as the visited-set
// key, so equal states canonically collide. Task slots 0..CPUs-1 are
// the per-CPU idle tasks; CPUs..CPUs+Tasks-1 the user tasks. MM slot
// 0 is init_mm; 1..MMs the user descriptors. Freed mm slots are
// zeroed (including the generation) so re-allocation is canonical.
type State struct {
	TaskMM     [maxSlots]int8 // mm the task *uses* (owns/adopted); none if borrowing only
	TaskActive [maxSlots]int8 // mm the task's CPU context names (Linux active_mm)
	TaskCPU    [maxSlots]int8 // CPU the task occupies; none if off-CPU
	TaskPhase  [maxSlots]int8
	MMUsers    [maxMMSlots]int8
	MMCount    [maxMMSlots]int8
	MMGen      [maxMMSlots]int8 // VSID generation of the mm's context
	CPUGen     [MaxCPUs]int8    // VSID generation the CPU's segment registers hold
	CPUTask    [MaxCPUs]int8    // task currently on the CPU (always some task)
}

// Init is the boot state: every CPU runs its idle task borrowing
// init_mm, whose count is one permanent kernel reference plus one
// borrow per CPU; user tasks wait un-initialized.
func Init(p Params) State {
	var s State
	for i := range s.TaskMM {
		s.TaskMM[i], s.TaskActive[i], s.TaskCPU[i] = none, none, none
	}
	for c := range s.CPUTask {
		s.CPUTask[c] = none
	}
	for c := 0; c < p.CPUs; c++ {
		s.CPUTask[c] = int8(c)
		s.TaskCPU[c] = int8(c)
		s.TaskActive[c] = initMM
		s.TaskPhase[c] = phaseIdle
	}
	for t := p.CPUs; t < p.CPUs+p.Tasks; t++ {
		s.TaskPhase[t] = phaseNew
	}
	s.MMCount[initMM] = int8(p.CPUs) + 1
	return s
}

// Mutant selects a seeded bug to plant in the transition relation —
// the model-side mirror of the kernel's //go:build mmumutant seams.
// The checker must produce a counterexample for every non-None value;
// that the real kernel build-tag mutant is caught end to end is CI's
// mutation gate.
type Mutant int

const (
	// MutantNone is the faithful transition relation.
	MutantNone Mutant = iota
	// MutantSkipUnusePut makes unuse_mm skip the final mmput — the
	// same bug internal/kernel/mm_mutant.go plants under the
	// mmumutant build tag.
	MutantSkipUnusePut
	// MutantSkipSwitchDrop makes context_switch away from a lazy
	// borrower keep the stale existence reference (a missed mmdrop).
	MutantSkipSwitchDrop
)

// MutantByName maps the -mutate flag spelling to a Mutant.
var MutantByName = map[string]Mutant{
	"none":             MutantNone,
	"skip-unuse-put":   MutantSkipUnusePut,
	"skip-switch-drop": MutantSkipSwitchDrop,
}

func (m Mutant) String() string {
	for name, v := range MutantByName {
		if v == m {
			return name
		}
	}
	return fmt.Sprintf("mutant(%d)", int(m))
}

// Action identifies one transition schema of the state machine. The
// table below is the model side of the model↔kernel pin: the
// transitions analyzer parses these Name literals and requires each
// to map to a named kernel function (and each kernel mm-mutating
// entry point to appear here or be exempted).
type Action struct {
	Name string
	// Arity is how many arguments a concrete step carries (<= 2).
	Arity int
}

// Action indices — Step.Action values and the canonical firing order.
const (
	ActMMInit = iota
	ActContextSwitch
	ActBorrowMM
	ActUseMM
	ActUnuseMM
	ActExitMM
	ActVSIDReassign
	numActions
)

// Actions is the declarative action table, indexed by the Act*
// constants.
var Actions = [numActions]Action{
	{Name: "mm_init", Arity: 2},        // (task, mm)
	{Name: "context_switch", Arity: 2}, // (cpu, task)
	{Name: "borrow_mm", Arity: 1},      // (cpu)
	{Name: "use_mm", Arity: 2},         // (cpu, mm)
	{Name: "unuse_mm", Arity: 1},       // (cpu)
	{Name: "exit_mm", Arity: 1},        // (cpu)
	{Name: "vsid_reassign", Arity: 1},  // (cpu)
}

// Step is one concrete action firing: the action index plus its
// arguments (unused trailing arguments are zero).
type Step struct {
	Action int8
	A, B   int8
}

// String renders a step the way counterexample scripts print it.
func (st Step) String() string {
	switch int(st.Action) {
	case ActMMInit:
		return fmt.Sprintf("mm_init task=%d mm=%d", st.A, st.B)
	case ActContextSwitch:
		return fmt.Sprintf("context_switch cpu=%d task=%d", st.A, st.B)
	case ActBorrowMM:
		return fmt.Sprintf("borrow_mm cpu=%d", st.A)
	case ActUseMM:
		return fmt.Sprintf("use_mm cpu=%d mm=%d", st.A, st.B)
	case ActUnuseMM:
		return fmt.Sprintf("unuse_mm cpu=%d", st.A)
	case ActExitMM:
		return fmt.Sprintf("exit_mm cpu=%d", st.A)
	case ActVSIDReassign:
		return fmt.Sprintf("vsid_reassign cpu=%d", st.A)
	}
	return fmt.Sprintf("action(%d) a=%d b=%d", st.Action, st.A, st.B)
}

// mmdrop drops one existence reference; the final one frees the slot,
// which is zeroed (generation included) so the encoding stays
// canonical across alloc/free cycles.
func (s *State) mmdrop(m int8, mut Mutant) {
	s.MMCount[m]--
	if s.MMCount[m] == 0 && m != initMM {
		s.MMGen[m] = 0
	}
}

// mmput drops one user reference; the final user's collective
// existence reference goes with it (__mmput -> mmdrop).
func (s *State) mmput(m int8, mut Mutant) {
	s.MMUsers[m]--
	if s.MMUsers[m] == 0 {
		s.mmdrop(m, mut)
	}
}

// Enabled reports whether step can fire in s.
func Enabled(p Params, s *State, st Step) bool {
	switch int(st.Action) {
	case ActMMInit:
		t, m := st.A, st.B
		return int(t) >= p.CPUs && int(t) < p.CPUs+p.Tasks && s.TaskPhase[t] == phaseNew &&
			int(m) >= 1 && int(m) <= p.MMs && s.MMUsers[m] == 0 && s.MMCount[m] == 0
	case ActContextSwitch:
		c, t := st.A, st.B
		if int(c) >= p.CPUs || int(t) < p.CPUs || int(t) >= p.CPUs+p.Tasks {
			return false
		}
		if s.TaskPhase[t] != phaseLive || s.TaskCPU[t] != none {
			return false
		}
		// A UseMM span pins the CPU: the idle task on c must not have
		// adopted a space.
		prev := s.CPUTask[c]
		return !(s.TaskPhase[prev] == phaseIdle && s.TaskMM[prev] != none)
	case ActBorrowMM:
		c := st.A
		if int(c) >= p.CPUs {
			return false
		}
		// Only a live user task switches out to idle.
		return s.TaskPhase[s.CPUTask[c]] == phaseLive
	case ActUseMM:
		c, m := st.A, st.B
		if int(c) >= p.CPUs || int(m) < 1 || int(m) > p.MMs {
			return false
		}
		cur := s.CPUTask[c]
		return s.TaskPhase[cur] == phaseIdle && s.TaskMM[cur] == none && s.MMUsers[m] > 0
	case ActUnuseMM:
		c := st.A
		if int(c) >= p.CPUs {
			return false
		}
		cur := s.CPUTask[c]
		return s.TaskPhase[cur] == phaseIdle && s.TaskMM[cur] != none
	case ActExitMM:
		c := st.A
		if int(c) >= p.CPUs {
			return false
		}
		return s.TaskPhase[s.CPUTask[c]] == phaseLive
	case ActVSIDReassign:
		c := st.A
		if int(c) >= p.CPUs {
			return false
		}
		cur := s.CPUTask[c]
		return s.TaskPhase[cur] == phaseLive && int(s.MMGen[s.TaskMM[cur]]) < p.Gens-1
	}
	return false
}

// Apply fires step on s (which must be Enabled) under the given
// mutant.
func Apply(p Params, s *State, st Step, mut Mutant) {
	switch int(st.Action) {
	case ActMMInit:
		t, m := st.A, st.B
		s.TaskMM[t] = m
		s.TaskActive[t] = m
		s.TaskPhase[t] = phaseLive
		s.MMUsers[m] = 1
		s.MMCount[m] = 1
	case ActContextSwitch:
		c, t := st.A, st.B
		prev := s.CPUTask[c]
		s.CPUTask[c] = t
		s.TaskCPU[t] = c
		s.TaskActive[t] = s.TaskMM[t]
		s.CPUGen[c] = s.MMGen[s.TaskMM[t]] // switch_mm: segment reload
		s.TaskCPU[prev] = none
		if s.TaskMM[prev] == none && s.TaskActive[prev] != none {
			// The outgoing lazy borrower lets its borrow go.
			if mut != MutantSkipSwitchDrop {
				s.mmdrop(s.TaskActive[prev], mut)
			}
			s.TaskActive[prev] = none
		}
	case ActBorrowMM:
		c := st.A
		prev := s.CPUTask[c]
		m := s.TaskActive[prev]
		s.MMCount[m]++ // mmgrab: idle borrows the space
		s.CPUTask[c] = c
		s.TaskCPU[c] = c
		s.TaskActive[c] = m
		s.TaskCPU[prev] = none
		// Lazy TLB: no segment reload, CPUGen unchanged.
	case ActUseMM:
		c, m := st.A, st.B
		cur := s.CPUTask[c]
		s.MMUsers[m]++ // mmget: a real user reference
		old := s.TaskActive[cur]
		s.TaskMM[cur] = m
		s.TaskActive[cur] = m
		s.CPUGen[c] = s.MMGen[m] // switch_mm: the kthread loads m's segments
		s.mmdrop(old, mut)       // the previous borrow is released
	case ActUnuseMM:
		c := st.A
		cur := s.CPUTask[c]
		m := s.TaskMM[cur]
		s.MMCount[m]++ // mmgrab: the CPU keeps m as a lazy borrow
		s.TaskMM[cur] = none
		if mut != MutantSkipUnusePut {
			s.mmput(m, mut)
		}
	case ActExitMM:
		c := st.A
		cur := s.CPUTask[c]
		m := s.TaskMM[cur]
		// The task dies; the CPU falls back to its idle task, which
		// inherits the space as a lazy borrow (mmgrab before the
		// dying task's mmput, exactly like kernel exit_mm).
		s.MMCount[m]++
		s.TaskMM[cur] = none
		s.TaskActive[cur] = none
		s.TaskCPU[cur] = none
		s.TaskPhase[cur] = phaseExited
		s.mmput(m, mut)
		s.CPUTask[c] = c
		s.TaskCPU[c] = c
		s.TaskActive[c] = m
		// Lazy TLB: segments still name m, CPUGen unchanged.
	case ActVSIDReassign:
		c := st.A
		cur := s.CPUTask[c]
		m := s.TaskMM[cur]
		s.MMGen[m]++
		// Broadcast: every CPU whose loaded context names m reloads —
		// the SMP shootdown obligation ROADMAP item 1 inherits.
		for q := 0; q < p.CPUs; q++ {
			if s.TaskActive[s.CPUTask[q]] == m {
				s.CPUGen[q] = s.MMGen[m]
			}
		}
	}
}

// steps enumerates every concrete step of every action in canonical
// order, calling fn for each enabled one.
func steps(p Params, s *State, fn func(Step)) {
	emit := func(st Step) {
		if Enabled(p, s, st) {
			fn(st)
		}
	}
	for t := p.CPUs; t < p.CPUs+p.Tasks; t++ {
		for m := 1; m <= p.MMs; m++ {
			emit(Step{Action: ActMMInit, A: int8(t), B: int8(m)})
		}
	}
	for c := 0; c < p.CPUs; c++ {
		for t := p.CPUs; t < p.CPUs+p.Tasks; t++ {
			emit(Step{Action: ActContextSwitch, A: int8(c), B: int8(t)})
		}
	}
	for c := 0; c < p.CPUs; c++ {
		emit(Step{Action: ActBorrowMM, A: int8(c)})
	}
	for c := 0; c < p.CPUs; c++ {
		for m := 1; m <= p.MMs; m++ {
			emit(Step{Action: ActUseMM, A: int8(c), B: int8(m)})
		}
	}
	for c := 0; c < p.CPUs; c++ {
		emit(Step{Action: ActUnuseMM, A: int8(c)})
		emit(Step{Action: ActExitMM, A: int8(c)})
		emit(Step{Action: ActVSIDReassign, A: int8(c)})
	}
}

// EnabledSteps returns every enabled step of s in canonical order.
func EnabledSteps(p Params, s *State) []Step {
	var out []Step
	steps(p, s, func(st Step) { out = append(out, st) })
	return out
}
