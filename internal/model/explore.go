package model

import (
	"fmt"
	"strings"
	"sync"
)

// Violation is one invariant failure: the offending state, the error,
// and the minimal-length action script reaching it from Init (BFS
// order guarantees minimality).
type Violation struct {
	Err   string
	Trace []Step
	State State
}

// Result summarizes one exhaustive exploration.
type Result struct {
	Params      Params
	Mutant      Mutant
	States      uint64 // distinct reachable states
	Transitions uint64 // enabled (state, step) pairs examined
	Depth       int    // BFS depth of the deepest state
	Violation   *Violation
}

// ExploreOpts tunes Explore. Workers only affects wall clock: the
// result (counts, depth, and any violation trace) is byte-identical
// at every worker count.
type ExploreOpts struct {
	Workers int
	Mutant  Mutant
}

// succ is one successor produced by a worker: the step fired from
// states[parent] and the state it reached.
type succ struct {
	parent int32
	step   Step
	state  State
}

// Explore walks every state reachable from Init(p) by BFS, checking
// the invariants on each new state, and returns the exhaustive count
// or the first violation. Determinism: workers expand disjoint
// contiguous chunks of the frontier and their successor lists are
// merged in chunk order, so the discovery order — and therefore state
// numbering, counts, and the reported violation — is independent of
// Workers.
func Explore(p Params, opts ExploreOpts) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	res := Result{Params: p, Mutant: opts.Mutant}

	states := []State{Init(p)}
	parents := []int32{-1}
	vias := []Step{{}}
	visited := map[State]int32{states[0]: 0}

	trace := func(idx int32) []Step {
		var rev []Step
		for i := idx; parents[i] >= 0; i = parents[i] {
			rev = append(rev, vias[i])
		}
		for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
			rev[l], rev[r] = rev[r], rev[l]
		}
		return rev
	}

	if err := Check(p, &states[0]); err != nil {
		res.States = 1
		res.Violation = &Violation{Err: err.Error(), State: states[0]}
		return res, nil
	}

	lo, hi := 0, 1 // current BFS level: states[lo:hi]
	for depth := 0; lo < hi; depth++ {
		res.Depth = depth
		n := hi - lo
		chunks := workers
		if chunks > n {
			chunks = n
		}
		out := make([][]succ, chunks)
		var wg sync.WaitGroup
		for c := 0; c < chunks; c++ {
			start := lo + c*n/chunks
			end := lo + (c+1)*n/chunks
			wg.Add(1)
			go func(c, start, end int) {
				defer wg.Done()
				var local []succ
				for i := start; i < end; i++ {
					s := states[i]
					steps(p, &s, func(st Step) {
						next := s
						Apply(p, &next, st, opts.Mutant)
						local = append(local, succ{parent: int32(i), step: st, state: next})
					})
				}
				out[c] = local
			}(c, start, end)
		}
		wg.Wait()

		// Deterministic merge: chunk order, then generation order
		// within a chunk.
		for _, local := range out {
			for _, sc := range local {
				res.Transitions++
				if _, seen := visited[sc.state]; seen {
					continue
				}
				idx := int32(len(states))
				visited[sc.state] = idx
				states = append(states, sc.state)
				parents = append(parents, sc.parent)
				vias = append(vias, sc.step)
				if err := Check(p, &sc.state); err != nil && res.Violation == nil {
					res.Violation = &Violation{
						Err:   err.Error(),
						Trace: trace(idx),
						State: sc.state,
					}
				}
			}
		}
		if res.Violation != nil {
			// The violation sits on the shallowest level containing
			// one (BFS), at the earliest deterministic position.
			res.States = uint64(len(states))
			res.Depth++
			return res, nil
		}
		lo, hi = hi, len(states)
	}
	res.States = uint64(len(states))
	return res, nil
}

// Script renders a violation as a replayable action script: one step
// per line, with a header naming the run and a trailer naming the
// violated invariant. The bytes are deterministic (golden-tested).
func (v *Violation) Script(p Params, mut Mutant) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# mmumodel counterexample (cpus=%d tasks=%d mms=%d gens=%d mutant=%s)\n",
		p.CPUs, p.Tasks, p.MMs, p.Gens, mut)
	fmt.Fprintf(&b, "# tasks 0..%d are per-CPU idle tasks; mm 0 is init_mm\n", p.CPUs-1)
	for _, st := range v.Trace {
		b.WriteString(st.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "# violation: %s\n", v.Err)
	return b.String()
}
