//go:build mmumutant

package model

import (
	"strings"
	"testing"
)

// TestRefineCatchesKernelMutant is the mutation gate's teeth, run
// only under the mmumutant build tag: the kernel build skips the
// final mmput in UnuseMM (internal/kernel/mm_mutant.go), and the
// faithful shadow model must catch it and minimize the divergence to
// the adopt/release pair. CI runs this via
//
//	go test -tags mmumutant ./internal/model/ -run TestRefineCatchesKernelMutant
//
// and separately requires `mmumodel -refine` under the same tag to
// emit a counterexample. If this test ever passes on a faithful build
// (it is tag-gated so it cannot run there by accident), or fails to
// find the planted bug, the refinement harness has lost its teeth.
func TestRefineCatchesKernelMutant(t *testing.T) {
	p := Params{CPUs: 1, Tasks: 2, MMs: 2, Gens: 3}
	res, err := Refine(p, RefineOpts{Walks: 30, Steps: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("mutant kernel not detected in %d steps", res.StepsExecuted)
	}
	got := make([]string, len(res.Violation.Trace))
	for i, st := range res.Violation.Trace {
		got[i] = st.String()
	}
	if len(got) != 3 || !strings.HasPrefix(got[1], "use_mm") || !strings.HasPrefix(got[2], "unuse_mm") {
		t.Errorf("minimized trace not the 3-step essence: %q", got)
	}
}
