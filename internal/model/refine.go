package model

import (
	"fmt"
	"strings"

	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
)

// Refinement: the model is only worth trusting if it is a faithful
// abstraction of internal/kernel. Refine drives both machines in
// lockstep at N=1 — seeded random walks over the model's enabled
// steps, each step replayed as the corresponding kernel call — and
// compares the abstract state after every step: current task, UseMM
// adoption, the active space, registration, and the exact
// mm_users/mm_count values, plus a full kernel CheckConsistency. A
// divergence is minimized by greedy step removal into the shortest
// replayable script that still distinguishes the two. This is also
// the teeth of the CI mutation gate: the same walks against the
// -tags mmumutant kernel build must produce a counterexample.

// RefineOpts tunes Refine.
type RefineOpts struct {
	Walks int    // number of independent random walks
	Steps int    // maximum steps per walk
	Seed  uint64 // base seed; walk w uses Seed+w
	// Mutant plants a bug in the SHADOW model (the kernel stays as
	// built): the refinement must then report a divergence, which
	// exercises the full detect-and-minimize path without a mutant
	// kernel build. The CI mutation gate is the converse: a faithful
	// shadow against the -tags mmumutant kernel.
	Mutant Mutant
}

// RefineViolation is one model↔kernel divergence, minimized.
type RefineViolation struct {
	Err   string
	Walk  int
	Seed  uint64
	Trace []Step
}

// RefineResult summarizes a refinement run.
type RefineResult struct {
	Params        Params
	Walks, Steps  int
	Seed          uint64
	StepsExecuted uint64
	Violation     *RefineViolation
}

// Script renders the minimized divergence as a replayable action
// script, same grammar as Violation.Script.
func (v *RefineViolation) Script(p Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# mmumodel refinement counterexample (cpus=%d tasks=%d mms=%d gens=%d seed=%#x walk=%d)\n",
		p.CPUs, p.Tasks, p.MMs, p.Gens, v.Seed, v.Walk)
	fmt.Fprintf(&b, "# tasks 0..%d are per-CPU idle tasks; mm 0 is init_mm\n", p.CPUs-1)
	for _, st := range v.Trace {
		b.WriteString(st.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "# divergence: %s\n", v.Err)
	return b.String()
}

// splitmix64 is the walk RNG: tiny, seedable, and stable across Go
// versions (unlike math/rand's stream), so a recorded seed replays
// byte-identically forever.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Refine runs seeded random walks of the model at N=1, replaying each
// step against a fresh real kernel and comparing after every step.
func Refine(p Params, opts RefineOpts) (RefineResult, error) {
	if err := p.Validate(); err != nil {
		return RefineResult{}, err
	}
	if p.CPUs != 1 {
		return RefineResult{}, fmt.Errorf("refinement runs at cpus=1 (the kernel simulates one CPU), got %d", p.CPUs)
	}
	res := RefineResult{Params: p, Walks: opts.Walks, Steps: opts.Steps, Seed: opts.Seed}
	for w := 0; w < opts.Walks; w++ {
		seed := opts.Seed + uint64(w)
		trace, executed := walk(p, seed, opts.Steps, opts.Mutant)
		res.StepsExecuted += executed
		if trace == nil {
			continue
		}
		min := minimize(p, trace, opts.Mutant)
		err, _, _ := replay(p, min, opts.Mutant)
		res.Violation = &RefineViolation{
			Err:   err.Error(),
			Walk:  w,
			Seed:  opts.Seed,
			Trace: min,
		}
		return res, nil
	}
	return res, nil
}

// walk performs one seeded random walk and returns the step prefix up
// to and including the first diverging step (nil if the whole walk
// stays in agreement), plus the number of steps executed.
func walk(p Params, seed uint64, maxSteps int, mut Mutant) ([]Step, uint64) {
	r := newReplayer(p, mut)
	rng := seed
	var trace []Step
	for len(trace) < maxSteps {
		en := EnabledSteps(p, &r.shadow)
		if len(en) == 0 {
			break // terminal: every task exited, nothing to adopt
		}
		st := en[splitmix64(&rng)%uint64(len(en))]
		trace = append(trace, st)
		if err := r.step(st); err != nil {
			return trace, uint64(len(trace))
		}
	}
	return nil, uint64(len(trace))
}

// minimize shrinks a diverging trace by delta debugging: remove
// contiguous chunks (halving the chunk size down to single steps)
// while the remainder is still model-feasible and still diverges,
// truncating at the diverging step each time. Single-step removal
// alone sticks at local minima — e.g. a context_switch/exit_mm pair
// where each step alone is load-bearing for the other's guard —
// which chunk removal escapes. The result is 1-minimal, not globally
// minimal (the walk is random, not BFS), but in practice collapses
// long walks to the few-step essence of the bug.
func minimize(p Params, trace []Step, mut Mutant) []Step {
	if err, idx, feasible := replay(p, trace, mut); err != nil && feasible {
		trace = trace[:idx+1]
	}
	for removed := true; removed; {
		removed = false
	sizes:
		for size := len(trace) / 2; size >= 1; size /= 2 {
			for i := 0; i+size <= len(trace); i++ {
				cand := make([]Step, 0, len(trace)-size)
				cand = append(cand, trace[:i]...)
				cand = append(cand, trace[i+size:]...)
				if err, idx, feasible := replay(p, cand, mut); feasible && err != nil {
					trace = cand[:idx+1]
					removed = true
					break sizes
				}
			}
		}
	}
	return trace
}

// replay runs a whole script from boot and reports the first
// divergence (nil if none), the index of the diverging step, and
// whether every step was model-enabled in sequence.
func replay(p Params, trace []Step, mut Mutant) (err error, idx int, feasible bool) {
	r := newReplayer(p, mut)
	for i, st := range trace {
		if !Enabled(p, &r.shadow, st) {
			return nil, i, false
		}
		if err := r.step(st); err != nil {
			return err, i, true
		}
	}
	return nil, len(trace), true
}

// replayer holds one lockstep pair: the faithful shadow model and a
// real kernel, with the model-index → kernel-object bindings.
type replayer struct {
	p      Params
	mut    Mutant // shadow-side mutant (MutantNone for real refinement)
	shadow State
	k      *kernel.Kernel
	img    *kernel.Image
	task   [maxSlots]*kernel.Task
	mm     [maxMMSlots]*kernel.MM
}

func newReplayer(p Params, mut Mutant) *replayer {
	r := &replayer{
		p:      p,
		mut:    mut,
		shadow: Init(p),
		k:      kernel.New(machine.New(clock.PPC604At185()), kernel.Optimized()),
	}
	r.img = r.k.LoadImage("refine", 8)
	r.mm[initMM] = r.k.InitMM()
	return r
}

// step fires st (which must be Enabled on the shadow) on both
// machines and compares. A kernel panic is a divergence, not a crash:
// the kernel's own refcount underflow checks are part of the
// specification being compared.
func (r *replayer) step(st Step) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("kernel panic on %q: %v", st, p)
		}
	}()
	switch int(st.Action) {
	case ActMMInit:
		t := r.k.SpawnTask(r.img)
		r.task[st.A] = t
		r.mm[st.B] = t.MM()
	case ActContextSwitch:
		r.k.Switch(r.task[st.B])
	case ActBorrowMM:
		r.k.SwitchToIdle()
	case ActUseMM:
		// The space's owner: the (unique at N=1) live off-CPU task
		// using st.B.
		owner := none
		for t := r.p.CPUs; t < r.p.CPUs+r.p.Tasks; t++ {
			if r.shadow.TaskPhase[t] == phaseLive && r.shadow.TaskMM[t] == st.B {
				owner = int8(t)
				break
			}
		}
		if owner == none {
			return fmt.Errorf("use_mm mm=%d has no live owner", st.B)
		}
		r.k.UseMM(r.task[owner])
	case ActUnuseMM:
		r.k.UnuseMM()
	case ActExitMM:
		r.k.Exit()
	case ActVSIDReassign:
		r.k.FlushTaskContext()
	}
	Apply(r.p, &r.shadow, st, r.mut)
	return r.compare()
}

// compare checks the abstraction relation between the shadow state
// and the kernel, and runs the kernel's own CheckConsistency.
func (r *replayer) compare() error {
	if err := r.k.CheckConsistency(); err != nil {
		return fmt.Errorf("kernel consistency: %w", err)
	}

	// Current task: the model's idle-on-CPU is the kernel's cur==nil.
	cur := r.shadow.CPUTask[0]
	if r.shadow.TaskPhase[cur] == phaseIdle {
		if got := r.k.Current(); got != nil {
			return fmt.Errorf("model is idle but kernel current is task %d", got.PID)
		}
	} else if got := r.k.Current(); got != r.task[cur] {
		return fmt.Errorf("model current is task %d but kernel current is %v", cur, got)
	}

	// UseMM adoption.
	if adopted := r.shadow.TaskMM[0]; adopted == none {
		if got := r.k.KthreadMM(); got != nil {
			return fmt.Errorf("model has no UseMM span but kernel kthread mm is %d", got.ID)
		}
	} else if got := r.k.KthreadMM(); got != r.mm[adopted] {
		return fmt.Errorf("model UseMM space is mm %d but kernel kthread mm is %v", adopted, got)
	}

	// Active space.
	if a := r.shadow.TaskActive[cur]; r.mm[a] != r.k.ActiveMM() {
		return fmt.Errorf("model active mm is %d but kernel active mm is %d", a, r.k.ActiveMM().ID)
	}

	// Per-descriptor liveness and exact refcounts.
	for m := 0; m <= r.p.MMs; m++ {
		km := r.mm[m]
		if km == nil {
			continue // never allocated
		}
		if r.shadow.MMCount[m] == 0 && r.shadow.MMUsers[m] == 0 {
			if r.k.MMRegistered(km) {
				return fmt.Errorf("model freed mm %d but kernel still registers it", m)
			}
			continue
		}
		if !r.k.MMRegistered(km) {
			return fmt.Errorf("model holds mm %d live but kernel freed it", m)
		}
		if int(r.shadow.MMUsers[m]) != km.Users {
			return fmt.Errorf("mm %d: model users=%d, kernel users=%d", m, r.shadow.MMUsers[m], km.Users)
		}
		if int(r.shadow.MMCount[m]) != km.Count {
			return fmt.Errorf("mm %d: model count=%d, kernel count=%d", m, r.shadow.MMCount[m], km.Count)
		}
	}
	return nil
}
