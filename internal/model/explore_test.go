package model

import (
	"reflect"
	"testing"
)

// TestExhaustiveClean explores several parameterizations to closure
// and requires zero invariant violations. The counts are pinned:
// a change in the state count means the transition system changed,
// which must be a deliberate, reviewed act (the transitions analyzer
// ties the action table to the kernel's entry points, and the
// refinement tests tie the semantics to the kernel's behaviour).
func TestExhaustiveClean(t *testing.T) {
	cases := []struct {
		p           Params
		states      uint64
		transitions uint64
		depth       int
	}{
		{Params{CPUs: 1, Tasks: 1, MMs: 1, Gens: 2}, 10, 14, 5},
		{Params{CPUs: 1, Tasks: 2, MMs: 2, Gens: 2}, 131, 312, 8},
		{Params{CPUs: 2, Tasks: 2, MMs: 2, Gens: 2}, 983, 4096, 9},
		{Params{CPUs: 2, Tasks: 3, MMs: 2, Gens: 2}, 4453, 20282, 12},
		{Params{CPUs: 3, Tasks: 2, MMs: 2, Gens: 2}, 6115, 37456, 11},
	}
	for _, c := range cases {
		res, err := Explore(c.p, ExploreOpts{Workers: 4})
		if err != nil {
			t.Fatalf("%+v: %v", c.p, err)
		}
		if res.Violation != nil {
			t.Fatalf("%+v: violation %q after\n%s", c.p, res.Violation.Err,
				res.Violation.Script(c.p, MutantNone))
		}
		if res.States != c.states || res.Transitions != c.transitions || res.Depth != c.depth {
			t.Errorf("%+v: got states=%d transitions=%d depth=%d, want %d/%d/%d",
				c.p, res.States, res.Transitions, res.Depth, c.states, c.transitions, c.depth)
		}
	}
}

// TestMutantsCaught seeds each mutation and requires the checker to
// find a violation, with the minimal (BFS-shortest) trace pinned.
// skip-unuse-put is the same mutation the //go:build mmumutant kernel
// build carries, so this is the model half of the CI mutation gate.
func TestMutantsCaught(t *testing.T) {
	p := Params{CPUs: 1, Tasks: 2, MMs: 2, Gens: 2}
	cases := []struct {
		mut   Mutant
		trace []string
	}{
		{MutantSkipUnusePut, []string{
			"mm_init task=1 mm=1",
			"use_mm cpu=0 mm=1",
			"unuse_mm cpu=0",
		}},
		{MutantSkipSwitchDrop, []string{
			"mm_init task=1 mm=1",
			"context_switch cpu=0 task=1",
		}},
	}
	for _, c := range cases {
		res, err := Explore(p, ExploreOpts{Workers: 4, Mutant: c.mut})
		if err != nil {
			t.Fatalf("%s: %v", c.mut, err)
		}
		if res.Violation == nil {
			t.Fatalf("%s: mutation not caught (%d states explored)", c.mut, res.States)
		}
		got := make([]string, len(res.Violation.Trace))
		for i, st := range res.Violation.Trace {
			got[i] = st.String()
		}
		if !reflect.DeepEqual(got, c.trace) {
			t.Errorf("%s: minimal trace %q, want %q", c.mut, got, c.trace)
		}
	}
}

// TestWorkerDeterminism runs the same exploration at several worker
// counts and requires byte-identical results: same counts, same
// depth, and — with a mutant seeded — the same violation trace. This
// is the property that lets CI run -j equal to the machine's core
// count while golden tests pin exact output bytes.
func TestWorkerDeterminism(t *testing.T) {
	p := Params{CPUs: 2, Tasks: 3, MMs: 2, Gens: 2}
	base, err := Explore(p, ExploreOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 7} {
		res, err := Explore(p, ExploreOpts{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if res.States != base.States || res.Transitions != base.Transitions || res.Depth != base.Depth {
			t.Errorf("workers=%d: states/transitions/depth %d/%d/%d differ from workers=1 %d/%d/%d",
				w, res.States, res.Transitions, res.Depth, base.States, base.Transitions, base.Depth)
		}
	}

	// And with a violation present: the reported trace must not depend
	// on scheduling either.
	mp := Params{CPUs: 2, Tasks: 2, MMs: 2, Gens: 2}
	mbase, err := Explore(mp, ExploreOpts{Workers: 1, Mutant: MutantSkipUnusePut})
	if err != nil {
		t.Fatal(err)
	}
	if mbase.Violation == nil {
		t.Fatal("mutant exploration found no violation")
	}
	for _, w := range []int{3, 8} {
		res, err := Explore(mp, ExploreOpts{Workers: w, Mutant: MutantSkipUnusePut})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation == nil {
			t.Fatalf("workers=%d: violation vanished", w)
		}
		if res.Violation.Script(mp, MutantSkipUnusePut) != mbase.Violation.Script(mp, MutantSkipUnusePut) {
			t.Errorf("workers=%d: counterexample script differs from workers=1", w)
		}
	}
}

// TestInitSatisfiesInvariants: the initial state for every legal
// parameterization passes Check (idle borrowing init_mm, count
// CPUs+1).
func TestInitSatisfiesInvariants(t *testing.T) {
	for cpus := 1; cpus <= MaxCPUs; cpus++ {
		for tasks := 1; tasks <= 4; tasks++ {
			p := Params{CPUs: cpus, Tasks: tasks, MMs: 2, Gens: 2}
			s := Init(p)
			if err := Check(p, &s); err != nil {
				t.Errorf("%+v: init state violates %v", p, err)
			}
			if s.MMCount[initMM] != int8(cpus+1) {
				t.Errorf("%+v: init_mm count %d, want %d", p, s.MMCount[initMM], cpus+1)
			}
		}
	}
}

// TestParamsValidate pins the parameter envelope.
func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{CPUs: 0, Tasks: 1, MMs: 1, Gens: 2},
		{CPUs: MaxCPUs + 1, Tasks: 1, MMs: 1, Gens: 2},
		{CPUs: 1, Tasks: 0, MMs: 1, Gens: 2},
		{CPUs: 1, Tasks: MaxTasks + 1, MMs: 1, Gens: 2},
		{CPUs: 1, Tasks: 1, MMs: 0, Gens: 2},
		{CPUs: 1, Tasks: 1, MMs: MaxMMs + 1, Gens: 2},
		{CPUs: 1, Tasks: 1, MMs: 1, Gens: 0},
		{CPUs: 1, Tasks: 1, MMs: 1, Gens: 121},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v: expected validation error", p)
		}
	}
	if err := (Params{CPUs: 2, Tasks: 3, MMs: 2, Gens: 2}).Validate(); err != nil {
		t.Errorf("legal params rejected: %v", err)
	}
}

// TestActionTable sanity-checks the action table the transitions
// analyzer parses: names unique and non-empty, arities in range, and
// every action reachable (fires at least once) in a small exhaustive
// run — a dead table row would mean the analyzer certifies a mapping
// the checker never exercises.
func TestActionTable(t *testing.T) {
	seen := map[string]bool{}
	for i, a := range Actions {
		if a.Name == "" {
			t.Fatalf("action %d has no name", i)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate action name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Arity < 0 || a.Arity > 2 {
			t.Fatalf("action %q arity %d out of range", a.Name, a.Arity)
		}
	}

	p := Params{CPUs: 2, Tasks: 2, MMs: 2, Gens: 2}
	fired := map[int]bool{}
	s := Init(p)
	visited := map[State]bool{}
	var visit func(st State, depth int)
	visit = func(st State, depth int) {
		if depth == 0 || visited[st] {
			return
		}
		visited[st] = true
		steps(p, &st, func(step Step) {
			fired[int(step.Action)] = true
			next := st
			Apply(p, &next, step, MutantNone)
			visit(next, depth-1)
		})
	}
	visit(s, 6)
	for i, a := range Actions {
		if !fired[i] {
			t.Errorf("action %q never enabled within depth 6", a.Name)
		}
	}
}
