// Package faultinject is the seeded, deterministic fault-injection
// layer behind the chaos harness (cmd/mmuchaos). It decides *when* a
// hardware fault fires and *which kind*, while the owning layer applies
// the corruption to its own state: the ppc package flips TLB/HTAB/BAT
// state, the machine flips cache lines, and the kernel flips page-table
// entries. Faults that real hardware would surface as a machine check
// are queued here as Pending records carrying the architectural error
// report (cause + failing address), and the kernel's machine-check
// handler drains the queue at the next safe point.
//
// Design rules, mirroring the tracer (mmtrace):
//
//   - the zero-injection path is one branch: every injection site is
//     gated on a nil Injector, and an attached-but-disarmed Injector
//     adds no cycles, no counters, and no PRNG draws;
//   - the armed path allocates nothing (fixed arrays, splitmix64
//     PRNG) and is annotated //mmutricks:noalloc so mmulint proves it
//     over every caller in the translation path;
//   - everything is a pure function of the Schedule seed and the
//     simulated instruction stream, so a chaos run is byte-identical
//     for a given seed at any harness parallelism.
//
// Every fired fault is recorded as either Applied (corruption landed
// in machine state and a detectable report was queued) or Skipped (no
// eligible victim, or the pending queue was full) — so "every injected
// fault was detected and repaired" is an exact, auditable identity
// against the kernel's repair counters, not a statistical claim.
package faultinject

import "mmutricks/internal/arch"

// Kind enumerates the injectable fault kinds.
type Kind uint8

const (
	// TLBFlip flips the frame number of a valid TLB entry (TLB parity
	// error; machine check).
	TLBFlip Kind = iota
	// TLBSpurious invalidates a valid TLB entry for no reason. Benign:
	// the translation refaults and reloads; no machine check is raised
	// and no repair is expected, but correctness must survive it.
	TLBSpurious
	// HTABFlip flips the frame number of a valid hashed-page-table PTE
	// (uncorrectable ECC error in table memory; machine check).
	HTABFlip
	// HTABResurrect re-validates a stale, invalidated PTE slot with a
	// flipped frame — the zombie-PTE hazard the paper's lazy flushing
	// widens, forced to actually happen.
	HTABResurrect
	// BATFlip flips the physical base of a valid BAT register (BAT
	// parity error; machine check).
	BATFlip
	// PTEFlip flips the frame number of a present entry in a live
	// task's page-table tree (uncorrectable ECC in page-table memory).
	// The tree is the canonical source of truth, so this is not
	// repairable — the kernel escalates to killing the owning task.
	PTEFlip
	// CacheFlip marks a clean, valid D-cache line as having a parity
	// error (machine check; repaired by invalidating the line).
	CacheFlip
	// SpuriousMC delivers a machine check with nothing actually wrong,
	// exercising the handler's classify-then-verify path.
	SpuriousMC

	// NumKinds is the number of fault kinds.
	NumKinds
)

// kindNames index-aligns with the Kind constants.
var kindNames = [NumKinds]string{
	"tlb-flip",
	"tlb-spurious",
	"htab-flip",
	"htab-resurrect",
	"bat-flip",
	"pte-flip",
	"cache-flip",
	"spurious-mc",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(?)"
}

// KindByName returns the Kind with the given String form.
func KindByName(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// RaisesMC reports whether an applied fault of this kind queues a
// machine check (TLBSpurious is benign and does not).
func (k Kind) RaisesMC() bool { return k != TLBSpurious }

// Site identifies an injection point. Each site may only apply the
// kinds whose state it owns.
type Site uint8

const (
	// SiteTranslate is the top of ppc.MMU.Translate: TLB, HTAB and BAT
	// faults.
	SiteTranslate Site = iota
	// SiteMemAccess is machine.MemAccess: cache-line corruption and
	// spurious machine checks.
	SiteMemAccess
	// SiteAccess is the end of the kernel's top-level access path:
	// page-table-tree corruption (and machine-check delivery).
	SiteAccess

	// NumSites is the number of injection sites.
	NumSites
)

// siteKinds masks which kinds each site may apply.
var siteKinds = [NumSites][NumKinds]bool{
	SiteTranslate: {TLBFlip: true, TLBSpurious: true, HTABFlip: true, HTABResurrect: true, BATFlip: true},
	SiteMemAccess: {CacheFlip: true, SpuriousMC: true},
	SiteAccess:    {PTEFlip: true},
}

// Cause is the architectural machine-check cause code the "hardware"
// reports — the simulated analogue of what SRR1/DSISR encode on a real
// 603/604 when a parity or ECC error is detected.
type Cause uint8

const (
	CauseNone Cause = iota
	// CauseTLBParity: a TLB entry failed parity; Pending.VPN names it.
	CauseTLBParity
	// CauseHTABECC: hash-table memory failed ECC; Pending.Addr is the
	// failing PTE's physical address, Pending.VPN the page it held.
	CauseHTABECC
	// CauseBATParity: a BAT register failed parity.
	CauseBATParity
	// CauseCacheParity: a D-cache line failed parity; Pending.Addr is
	// the line's physical address.
	CauseCacheParity
	// CausePTEECC: page-table-tree memory failed ECC; Pending.Addr is
	// the failing PTE's physical address, Pending.PID/EA the owner.
	CausePTEECC
	// CauseSpurious: a machine check with no real fault behind it.
	CauseSpurious
)

var causeNames = [...]string{
	"none", "tlb-parity", "htab-ecc", "bat-parity",
	"cache-parity", "pte-ecc", "spurious",
}

func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "cause(?)"
}

// Pending is one undelivered machine check: the error report the
// hardware latches until the kernel takes the interrupt.
type Pending struct {
	Cause Cause
	// Addr is the failing physical address (HTAB PTE, cache line, or
	// page-table entry), when the cause reports one.
	Addr arch.PhysAddr
	// VPN is the virtual page the poisoned entry translated (TLB and
	// HTAB causes).
	VPN arch.VPN
	// PID and EA identify the owning task and mapped address for
	// page-table ECC faults.
	PID uint32
	EA  arch.EffectiveAddr
}

// MaxPending bounds the undelivered machine-check queue, like the
// single-entry (or few-entry) error-report registers of real parts.
// When the queue is full further MC-raising faults are Skipped, never
// silently applied.
const MaxPending = 16

// Injector is one machine's fault source. It is not safe for
// concurrent use; the chaos harness gives each simulated machine its
// own Injector, which is what keeps parallel runs deterministic.
type Injector struct {
	sched   Schedule
	state   uint64
	armed   bool
	suspend int

	applied [NumKinds]uint64
	skipped [NumKinds]uint64

	pending [MaxPending]Pending
	npend   int
}

// New builds an Injector for a schedule. The Injector starts disarmed;
// call Arm after the kernel has booted.
func New(s Schedule) *Injector {
	if err := s.Validate(); err != nil {
		panic("faultinject: " + err.Error())
	}
	return &Injector{sched: s, state: s.Seed}
}

// Arm enables fault firing. Disarm stops it (pending machine checks
// remain deliverable).
func (j *Injector) Arm()    { j.armed = true }
func (j *Injector) Disarm() { j.armed = false }

// Armed reports whether faults can fire.
func (j *Injector) Armed() bool { return j != nil && j.armed }

// Suspend pauses fault firing (nestable); the kernel suspends the
// injector inside fault handlers and the machine-check handler so
// corruption cannot land mid-repair. Nil-safe.
//
//mmutricks:noalloc
func (j *Injector) Suspend() {
	if j != nil {
		j.suspend++
	}
}

// Resume undoes one Suspend. Nil-safe.
//
//mmutricks:noalloc
func (j *Injector) Resume() {
	if j != nil {
		j.suspend--
	}
}

// Rand advances the splitmix64 PRNG and returns the next draw. The
// owning layers use it to pick victims deterministically.
//
//mmutricks:noalloc
func (j *Injector) Rand() uint64 {
	j.state += 0x9E3779B97F4A7C15
	z := j.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Fire decides whether faults fire at this poll of the given site,
// returning how many to inject now (0 almost always; Schedule.Burst
// when the rate trigger fires). One branch when disarmed or suspended.
//
//mmutricks:noalloc
func (j *Injector) Fire(site Site) int {
	if !j.armed || j.suspend > 0 || j.sched.RatePPM == 0 {
		return 0
	}
	_ = site // the rate is global; the kind mix is per-site (PickKind)
	if uint32(j.Rand()%1000000) >= j.sched.RatePPM {
		return 0
	}
	if j.sched.Burst < 1 {
		return 1
	}
	return j.sched.Burst
}

// PickKind draws a fault kind for the site, weighted by the schedule's
// mix restricted to the kinds the site owns. ok is false when the mix
// gives the site nothing to inject.
//
//mmutricks:noalloc
func (j *Injector) PickKind(site Site) (Kind, bool) {
	var total uint64
	for k := Kind(0); k < NumKinds; k++ {
		if siteKinds[site][k] {
			total += uint64(j.sched.Weights[k])
		}
	}
	if total == 0 {
		return 0, false
	}
	r := j.Rand() % total
	for k := Kind(0); k < NumKinds; k++ {
		if !siteKinds[site][k] {
			continue
		}
		w := uint64(j.sched.Weights[k])
		if r < w {
			return k, true
		}
		r -= w
	}
	return 0, false
}

// QueueFull reports whether another Pending can be queued. Sites must
// check it BEFORE corrupting state, so a fault is never applied
// without its error report (that would be undetectable corruption).
//
//mmutricks:noalloc
func (j *Injector) QueueFull() bool { return j.npend == MaxPending }

// Push queues a machine-check report. Callers must have checked
// QueueFull.
//
//mmutricks:noalloc
func (j *Injector) Push(p Pending) {
	if j.npend == MaxPending {
		panic("faultinject: pending queue overflow")
	}
	j.pending[j.npend] = p
	j.npend++
}

// NoteApplied records that a fault of kind k landed in machine state.
//
//mmutricks:noalloc
func (j *Injector) NoteApplied(k Kind) { j.applied[k]++ }

// NoteSkipped records that a fired fault found no eligible victim (or
// no queue space) and was dropped without touching state.
//
//mmutricks:noalloc
func (j *Injector) NoteSkipped(k Kind) { j.skipped[k]++ }

// HasMC reports whether a machine check is pending. Nil-safe, one
// branch when there is no injector.
//
//mmutricks:noalloc
func (j *Injector) HasMC() bool { return j != nil && j.npend > 0 }

// TakeMC removes and returns the next pending machine check. Real
// faults are delivered before spurious ones, so a spurious delivery's
// full-sweep verification never sees (and double-repairs) poison that
// has its own report queued behind it.
func (j *Injector) TakeMC() (Pending, bool) {
	if j == nil || j.npend == 0 {
		return Pending{}, false
	}
	idx := 0
	for i := 0; i < j.npend; i++ {
		if j.pending[i].Cause != CauseSpurious {
			idx = i
			break
		}
	}
	p := j.pending[idx]
	copy(j.pending[idx:j.npend-1], j.pending[idx+1:j.npend])
	j.npend--
	return p, true
}

// Applied returns the per-kind count of faults that landed in machine
// state.
func (j *Injector) Applied() [NumKinds]uint64 { return j.applied }

// Skipped returns the per-kind count of fired-but-dropped faults.
func (j *Injector) Skipped() [NumKinds]uint64 { return j.skipped }

// Schedule returns the schedule the injector was built with.
func (j *Injector) Schedule() Schedule { return j.sched }

// DeriveSeed mixes a run seed with a salt (e.g. a section index) into
// an independent stream seed, so every chaos section gets its own
// deterministic fault sequence.
func DeriveSeed(seed, salt uint64) uint64 {
	z := seed ^ (salt+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
