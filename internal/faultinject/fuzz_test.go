package faultinject

import "testing"

// FuzzParseSchedule drives the schedule parser with arbitrary input.
// The parser must never panic, and any input it accepts must survive a
// canonicalization round trip: String() re-parses to the identical
// schedule (so saved chaos reports can always reproduce their run).
func FuzzParseSchedule(f *testing.F) {
	f.Add("")
	f.Add("seed=42 rate=500ppm burst=2 mix=tlb-flip:2,htab-flip:1,cache-flip:1")
	f.Add("seed=0xDEADBEEF rate=1000000 burst=16 mix=all")
	f.Add("mix=none")
	f.Add("rate=200ppm mix=spurious-mc")
	f.Add("seed=1 seed=2")
	f.Add("mix=tlb-flip:0")
	f.Add("burst=17")
	f.Add("rate=9999999ppm")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSchedule(text)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := ParseSchedule(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, text, err)
		}
		if s2 != s {
			t.Fatalf("round trip unstable: %q -> %+v -> %q -> %+v", text, s, canon, s2)
		}
		if s2.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q vs %q", s2.String(), canon)
		}
	})
}
