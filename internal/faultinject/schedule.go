package faultinject

import (
	"fmt"
	"strconv"
	"strings"
)

// Schedule is a declarative fault schedule: how often faults fire,
// how many land per trigger, which kinds, and the PRNG seed that makes
// the whole run reproducible.
type Schedule struct {
	// Seed seeds the injector's splitmix64 stream.
	Seed uint64
	// RatePPM is the per-poll firing probability in parts per million
	// (0 disables injection, 1000000 fires every poll).
	RatePPM uint32
	// Burst is how many faults land per trigger (clamped to >= 1).
	Burst int
	// Weights is the relative kind mix; kinds with weight 0 never
	// fire. At each site only the kinds the site owns compete.
	Weights [NumKinds]uint32
}

// maxWeight keeps the weighted-pick total comfortably inside uint64.
const maxWeight = 1000000

// DefaultSchedule is a moderate all-kinds mix: every recoverable kind
// weighted equally, escalation (pte-flip) and spurious delivery rarer.
func DefaultSchedule(seed uint64) Schedule {
	s := Schedule{Seed: seed, RatePPM: 200, Burst: 1}
	for k := Kind(0); k < NumKinds; k++ {
		s.Weights[k] = 4
	}
	s.Weights[PTEFlip] = 1
	s.Weights[SpuriousMC] = 1
	return s
}

// Validate checks the schedule's ranges.
func (s Schedule) Validate() error {
	if s.RatePPM > 1000000 {
		return fmt.Errorf("rate %d ppm out of range [0,1000000]", s.RatePPM)
	}
	if s.Burst < 0 || s.Burst > MaxPending {
		return fmt.Errorf("burst %d out of range [0,%d]", s.Burst, MaxPending)
	}
	for k := Kind(0); k < NumKinds; k++ {
		if s.Weights[k] > maxWeight {
			return fmt.Errorf("weight %d for %s out of range [0,%d]", s.Weights[k], k, maxWeight)
		}
	}
	return nil
}

// String renders the canonical one-line form, parseable by
// ParseSchedule: `seed=N rate=Nppm burst=N mix=kind:w,kind:w`.
// Zero-weight kinds are omitted; an all-zero mix renders as mix=none.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d rate=%dppm burst=%d mix=", s.Seed, s.RatePPM, s.Burst)
	n := 0
	for k := Kind(0); k < NumKinds; k++ {
		if s.Weights[k] == 0 {
			continue
		}
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%d", k, s.Weights[k])
		n++
	}
	if n == 0 {
		b.WriteString("none")
	}
	return b.String()
}

// ParseSchedule parses the declarative schedule syntax:
//
//	seed=42 rate=500ppm burst=2 mix=tlb-flip:2,htab-flip:1,cache-flip:1
//
// Fields are space-separated key=value pairs in any order; all are
// optional (missing fields keep zero values, i.e. injection disabled
// unless rate and mix are given). rate accepts an optional "ppm"
// suffix. mix is a comma list of kind[:weight] (weight defaults to 1),
// or the shorthands "all" (every kind at weight 1) and "none".
// Duplicate keys and duplicate kinds in the mix are errors.
func ParseSchedule(text string) (Schedule, error) {
	var s Schedule
	seen := map[string]bool{}
	for _, field := range strings.Fields(text) {
		key, val, ok := strings.Cut(field, "=")
		if !ok || key == "" || val == "" {
			return Schedule{}, fmt.Errorf("malformed field %q (want key=value)", field)
		}
		if seen[key] {
			return Schedule{}, fmt.Errorf("duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return Schedule{}, fmt.Errorf("seed: %v", err)
			}
			s.Seed = n
		case "rate":
			n, err := strconv.ParseUint(strings.TrimSuffix(val, "ppm"), 10, 32)
			if err != nil {
				return Schedule{}, fmt.Errorf("rate: %v", err)
			}
			s.RatePPM = uint32(n)
		case "burst":
			n, err := strconv.ParseUint(val, 10, 16)
			if err != nil {
				return Schedule{}, fmt.Errorf("burst: %v", err)
			}
			s.Burst = int(n)
		case "mix":
			if err := parseMix(val, &s.Weights); err != nil {
				return Schedule{}, err
			}
		default:
			return Schedule{}, fmt.Errorf("unknown key %q (want seed, rate, burst, mix)", key)
		}
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

func parseMix(val string, w *[NumKinds]uint32) error {
	switch val {
	case "none":
		return nil
	case "all":
		for k := Kind(0); k < NumKinds; k++ {
			w[k] = 1
		}
		return nil
	}
	seen := [NumKinds]bool{}
	for _, part := range strings.Split(val, ",") {
		name, weight, hasW := strings.Cut(part, ":")
		k, ok := KindByName(name)
		if !ok {
			return fmt.Errorf("mix: unknown fault kind %q (want one of %s)", name, strings.Join(kindNames[:], ", "))
		}
		if seen[k] {
			return fmt.Errorf("mix: duplicate kind %q", name)
		}
		seen[k] = true
		n := uint64(1)
		if hasW {
			var err error
			n, err = strconv.ParseUint(weight, 10, 32)
			if err != nil {
				return fmt.Errorf("mix: weight for %s: %v", name, err)
			}
		}
		w[k] = uint32(n)
	}
	return nil
}

// KindNames returns the fault-kind names in Kind order (for CLIs and
// reports).
func KindNames() []string {
	out := make([]string, NumKinds)
	copy(out, kindNames[:])
	return out
}
