package faultinject

import (
	"strings"
	"testing"
)

func TestScheduleRoundTrip(t *testing.T) {
	cases := []Schedule{
		DefaultSchedule(42),
		{Seed: 0, RatePPM: 0, Burst: 0},
		{Seed: 1 << 60, RatePPM: 1000000, Burst: MaxPending, Weights: [NumKinds]uint32{TLBFlip: 7}},
	}
	for _, s := range cases {
		text := s.String()
		got, err := ParseSchedule(text)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", text, err)
		}
		if got != s {
			t.Fatalf("round trip of %q: got %+v want %+v", text, got, s)
		}
	}
}

func TestParseScheduleForms(t *testing.T) {
	s, err := ParseSchedule("  seed=0x10 rate=500 burst=2 mix=tlb-flip:3,cache-flip ")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 16 || s.RatePPM != 500 || s.Burst != 2 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Weights[TLBFlip] != 3 || s.Weights[CacheFlip] != 1 {
		t.Fatalf("mix weights %v", s.Weights)
	}
	all, err := ParseSchedule("mix=all")
	if err != nil {
		t.Fatal(err)
	}
	for k := Kind(0); k < NumKinds; k++ {
		if all.Weights[k] != 1 {
			t.Fatalf("mix=all weight for %s = %d", k, all.Weights[k])
		}
	}
	if _, err := ParseSchedule(""); err != nil {
		t.Fatalf("empty schedule must parse: %v", err)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	bad := []string{
		"seed",                   // not key=value
		"seed=",                  // empty value
		"seed=1 seed=2",          // duplicate key
		"frequency=10",           // unknown key
		"rate=2000000",           // out of range
		"burst=17",               // beyond MaxPending
		"mix=warp-core-breach",   // unknown kind
		"mix=tlb-flip,tlb-flip",  // duplicate kind
		"mix=tlb-flip:bananas",   // bad weight
		"mix=tlb-flip:2000000",   // weight out of range
		"seed=notanumber",        // bad seed
		"rate=10ppm extra=field", // unknown key after valid one
	}
	for _, text := range bad {
		if _, err := ParseSchedule(text); err == nil {
			t.Errorf("ParseSchedule(%q) accepted invalid input", text)
		}
	}
}

func TestFireDeterminism(t *testing.T) {
	sched := DefaultSchedule(7)
	sched.RatePPM = 100000
	a, b := New(sched), New(sched)
	a.Arm()
	b.Arm()
	for i := 0; i < 5000; i++ {
		na, nb := a.Fire(SiteTranslate), b.Fire(SiteTranslate)
		if na != nb {
			t.Fatalf("poll %d: fire counts diverge (%d vs %d)", i, na, nb)
		}
		for j := 0; j < na; j++ {
			ka, oka := a.PickKind(SiteTranslate)
			kb, okb := b.PickKind(SiteTranslate)
			if ka != kb || oka != okb {
				t.Fatalf("poll %d: kinds diverge (%v vs %v)", i, ka, kb)
			}
		}
	}
}

func TestDisarmedMakesNoDraws(t *testing.T) {
	sched := DefaultSchedule(3)
	sched.RatePPM = 500000
	polled, fresh := New(sched), New(sched)
	// Poll one injector heavily while disarmed and suspended: if those
	// polls consumed PRNG state, the later armed sequences would differ.
	for i := 0; i < 1000; i++ {
		if polled.Fire(SiteTranslate) != 0 {
			t.Fatal("disarmed injector fired")
		}
	}
	polled.Arm()
	polled.Suspend()
	if polled.Fire(SiteMemAccess) != 0 {
		t.Fatal("suspended injector fired")
	}
	polled.Resume()
	fresh.Arm()
	for i := 0; i < 1000; i++ {
		if polled.Fire(SiteTranslate) != fresh.Fire(SiteTranslate) {
			t.Fatalf("poll %d: disarmed polling perturbed the stream", i)
		}
	}
}

func TestPickKindHonorsSiteMask(t *testing.T) {
	sched := DefaultSchedule(11)
	j := New(sched)
	j.Arm()
	for i := 0; i < 2000; i++ {
		for site := Site(0); site < NumSites; site++ {
			k, ok := j.PickKind(site)
			if !ok {
				t.Fatalf("site %d has no kinds under the default mix", site)
			}
			if !siteKinds[site][k] {
				t.Fatalf("site %d picked foreign kind %v", site, k)
			}
		}
	}
	// A mix that leaves a site empty must report ok=false.
	empty := Schedule{Seed: 1, RatePPM: 100, Weights: [NumKinds]uint32{PTEFlip: 1}}
	je := New(empty)
	je.Arm()
	if _, ok := je.PickKind(SiteTranslate); ok {
		t.Fatal("SiteTranslate picked a kind it does not own")
	}
	if k, ok := je.PickKind(SiteAccess); !ok || k != PTEFlip {
		t.Fatal("SiteAccess should pick pte-flip")
	}
}

func TestPendingQueueOrdering(t *testing.T) {
	j := New(Schedule{Seed: 1})
	j.Push(Pending{Cause: CauseSpurious})
	j.Push(Pending{Cause: CauseTLBParity, VPN: 0x10})
	j.Push(Pending{Cause: CauseSpurious})
	j.Push(Pending{Cause: CauseHTABECC, VPN: 0x20})
	// Real causes drain before spurious ones, in order.
	p1, _ := j.TakeMC()
	p2, _ := j.TakeMC()
	if p1.Cause != CauseTLBParity || p2.Cause != CauseHTABECC {
		t.Fatalf("real causes not delivered first: %v, %v", p1.Cause, p2.Cause)
	}
	p3, _ := j.TakeMC()
	p4, _ := j.TakeMC()
	if p3.Cause != CauseSpurious || p4.Cause != CauseSpurious {
		t.Fatalf("spurious causes lost: %v, %v", p3.Cause, p4.Cause)
	}
	if _, ok := j.TakeMC(); ok {
		t.Fatal("queue should be empty")
	}
	if j.HasMC() {
		t.Fatal("HasMC on empty queue")
	}
}

func TestPendingQueueOverflow(t *testing.T) {
	j := New(Schedule{Seed: 1})
	for i := 0; i < MaxPending; i++ {
		if j.QueueFull() {
			t.Fatalf("queue full after %d pushes", i)
		}
		j.Push(Pending{Cause: CauseTLBParity})
	}
	if !j.QueueFull() {
		t.Fatal("queue not full at MaxPending")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Push past MaxPending must panic")
		}
	}()
	j.Push(Pending{Cause: CauseTLBParity})
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[uint64]uint64{}
	for salt := uint64(0); salt < 64; salt++ {
		s := DeriveSeed(42, salt)
		if prev, dup := seen[s]; dup {
			t.Fatalf("salts %d and %d collide on %#x", prev, salt, s)
		}
		seen[s] = salt
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("different run seeds must derive different streams")
	}
}

func TestNilInjectorSafety(t *testing.T) {
	var j *Injector
	j.Suspend()
	j.Resume()
	if j.Armed() || j.HasMC() {
		t.Fatal("nil injector reports state")
	}
	if _, ok := j.TakeMC(); ok {
		t.Fatal("nil injector delivered a machine check")
	}
}

func TestKindNamesAligned(t *testing.T) {
	names := KindNames()
	if len(names) != int(NumKinds) {
		t.Fatalf("KindNames returned %d names", len(names))
	}
	for i, n := range names {
		if k, ok := KindByName(n); !ok || k != Kind(i) {
			t.Fatalf("name %q does not round-trip to kind %d", n, i)
		}
		if strings.Contains(n, " ") {
			t.Fatalf("kind name %q contains whitespace (breaks the schedule syntax)", n)
		}
	}
}
