package report

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"mmutricks/internal/clock"
	"mmutricks/internal/workpool"
)

func resetPool(t *testing.T) {
	t.Cleanup(func() { SetParallelism(runtime.GOMAXPROCS(0)) })
}

// TestRunAllDeterministicAcrossParallelism is the harness's core
// contract: the full registry rendered from a sequential run and from
// an 8-worker run must be byte-identical.
func TestRunAllDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry twice is slow; run without -short")
	}
	if raceEnabled {
		t.Skip("full registry twice is impractically slow under the race detector (TestRunnerSmallConcurrent covers racing)")
	}
	resetPool(t)
	render := func(rs []RunResult) string {
		var b strings.Builder
		for _, r := range rs {
			if r.Err != nil {
				t.Fatalf("experiment %s failed: %v", r.Experiment.ID, r.Err)
			}
			b.WriteString(r.Table.Render())
			b.WriteByte('\n')
		}
		return b.String()
	}
	seq := render(RunAll(context.Background(), Quick, 1))
	par := render(RunAll(context.Background(), Quick, 8))
	if seq != par {
		t.Fatalf("-j 1 and -j 8 output differ:\n-j1 %d bytes, -j8 %d bytes", len(seq), len(par))
	}
}

// TestRunnerSmallConcurrent exercises the worker pool and RowSet with
// synthetic experiments; it is cheap enough to run under -race, where
// it is the runner's data-race probe.
func TestRunnerSmallConcurrent(t *testing.T) {
	resetPool(t)
	const n = 12
	exps := make([]Experiment, n)
	for i := range exps {
		i := i
		exps[i] = Experiment{
			ID: fmt.Sprintf("synthetic-%02d", i),
			Run: func(ctx context.Context, _ Scale) *Table {
				cells := make([]string, 8)
				RowSet(ctx, len(cells), func(r int) {
					cells[r] = fmt.Sprintf("%d*%d=%d", i, r, i*r)
				})
				return &Table{ID: fmt.Sprintf("synthetic-%02d", i), Rows: [][]string{cells}}
			},
		}
	}
	SetParallelism(4)
	res := runExperiments(context.Background(), exps, Quick, 4)
	if len(res) != n {
		t.Fatalf("got %d results, want %d", len(res), n)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("experiment %d: %v", i, r.Err)
		}
		if r.Experiment.ID != exps[i].ID || r.Table.ID != exps[i].ID {
			t.Fatalf("result %d out of order: got %s/%s", i, r.Experiment.ID, r.Table.ID)
		}
		for c := 0; c < 8; c++ {
			want := fmt.Sprintf("%d*%d=%d", i, c, i*c)
			if r.Table.Rows[0][c] != want {
				t.Fatalf("result %d cell %d = %q, want %q", i, c, r.Table.Rows[0][c], want)
			}
		}
	}
}

// TestRunnerPanicIsolation checks a panicking experiment surfaces as an
// Err without taking down its siblings — including a panic raised
// inside a RowSet row goroutine.
func TestRunnerPanicIsolation(t *testing.T) {
	resetPool(t)
	exps := []Experiment{
		{ID: "boom-direct", Run: func(ctx context.Context, _ Scale) *Table { panic("kaboom-direct") }},
		{ID: "fine", Run: func(ctx context.Context, _ Scale) *Table { return &Table{ID: "fine"} }},
		{ID: "boom-rowset", Run: func(ctx context.Context, _ Scale) *Table {
			RowSet(ctx, 4, func(i int) {
				if i == 2 {
					panic("kaboom-row")
				}
			})
			return &Table{ID: "boom-rowset"}
		}},
	}
	SetParallelism(3)
	res := runExperiments(context.Background(), exps, Quick, 3)
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "kaboom-direct") {
		t.Errorf("boom-direct: want contained panic, got %v", res[0].Err)
	}
	if res[0].Table == nil || !strings.Contains(res[0].Table.Render(), "FAILED(panic)") {
		t.Errorf("boom-direct: want FAILED(panic) placeholder table, got %+v", res[0].Table)
	}
	if res[1].Err != nil || res[1].Table == nil || res[1].Table.ID != "fine" {
		t.Errorf("fine experiment damaged by sibling panic: %+v", res[1])
	}
	if res[2].Err == nil || !strings.Contains(res[2].Err.Error(), "kaboom-row") {
		t.Errorf("boom-rowset: want contained row panic, got %v", res[2].Err)
	}
	if res[2].Table == nil || !strings.Contains(res[2].Table.Render(), "FAILED(panic)") {
		t.Errorf("boom-rowset: want FAILED(panic) placeholder table, got %+v", res[2].Table)
	}
}

// TestRunnerBudgetDegradation is the watchdog path end to end: an
// experiment whose ledger blows its cycle budget degrades to a
// FAILED(cycle-budget) cell — including when the trip happens inside a
// RowSet row goroutine, where the panic arrives re-raised as a string.
func TestRunnerBudgetDegradation(t *testing.T) {
	resetPool(t)
	burn := func() {
		l := clock.NewLedger(100)
		l.SetBudget(1000)
		for i := 0; i < 100; i++ {
			l.Charge(100)
		}
	}
	exps := []Experiment{
		{ID: "burn-direct", Run: func(ctx context.Context, _ Scale) *Table { burn(); return nil }},
		{ID: "burn-rowset", Run: func(ctx context.Context, _ Scale) *Table {
			RowSet(ctx, 4, func(i int) {
				if i == 3 {
					burn()
				}
			})
			return &Table{ID: "burn-rowset"}
		}},
		{ID: "frugal", Run: func(ctx context.Context, _ Scale) *Table { return &Table{ID: "frugal"} }},
	}
	SetParallelism(2)
	res := runExperiments(context.Background(), exps, Quick, 2)
	for _, i := range []int{0, 1} {
		if res[i].Err == nil || !strings.Contains(res[i].Err.Error(), "cycle budget exceeded") {
			t.Errorf("%s: want budget panic in Err, got %v", res[i].Experiment.ID, res[i].Err)
		}
		if res[i].Table == nil || !strings.Contains(res[i].Table.Render(), "FAILED(cycle-budget)") {
			t.Errorf("%s: want FAILED(cycle-budget) placeholder, got %+v", res[i].Experiment.ID, res[i].Table)
		}
	}
	if res[2].Err != nil || res[2].Table == nil || res[2].Table.ID != "frugal" {
		t.Errorf("frugal experiment damaged by sibling budget trips: %+v", res[2])
	}
}

// TestRunAllArmsDefaultBudget checks RunAll installs the watchdog for
// ledgers created while it runs, and restores the previous default
// afterwards.
func TestRunAllArmsDefaultBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry")
	}
	resetPool(t)
	old := clock.SetDefaultBudget(0)
	defer clock.SetDefaultBudget(old)
	for _, r := range RunAll(context.Background(), Quick, 4) {
		if r.Err != nil {
			t.Fatalf("experiment %s failed under the default budget: %v", r.Experiment.ID, r.Err)
		}
	}
	if got := clock.SetDefaultBudget(0); got != 0 {
		t.Errorf("RunAll left default budget %d armed", got)
	}
}

// TestRunOneCancellation pins the classification of cooperative
// cancellation: a cancelled context degrades the experiment to a
// FAILED(canceled) placeholder (FAILED(timeout) for deadlines) without
// running any rows, and FailReason carries the class for the exit-code
// and retry policies layered on top.
func TestRunOneCancellation(t *testing.T) {
	resetPool(t)
	SetParallelism(2)
	e := Experiment{ID: "cancel-me", Title: "x", Run: func(ctx context.Context, _ Scale) *Table {
		RowSet(ctx, 4, func(i int) {})
		return &Table{ID: "cancel-me"}
	}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := RunOne(ctx, e, Quick)
	if r.FailReason != "canceled" {
		t.Errorf("cancelled: FailReason = %q, want canceled", r.FailReason)
	}
	if r.Table == nil || !strings.Contains(r.Table.Render(), "FAILED(canceled)") {
		t.Errorf("cancelled: want FAILED(canceled) placeholder, got %+v", r.Table)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	r = RunOne(dctx, e, Quick)
	if r.FailReason != "timeout" {
		t.Errorf("deadline: FailReason = %q, want timeout", r.FailReason)
	}
	if r.Err == nil || !strings.Contains(r.Err.Error(), "timeout") {
		t.Errorf("deadline: Err = %v, want timeout classification", r.Err)
	}

	// A live context runs normally and leaves FailReason empty.
	if r = RunOne(context.Background(), e, Quick); r.Err != nil || r.FailReason != "" {
		t.Errorf("live context: unexpected failure %v (%q)", r.Err, r.FailReason)
	}
}

// TestRowSetInlineWhenExhausted verifies RowSet falls back to inline
// execution (and still completes every index) when the pool has no
// spare tokens.
func TestRowSetInlineWhenExhausted(t *testing.T) {
	resetPool(t)
	SetParallelism(1)
	release := workpool.Acquire() // simulate the experiment itself holding the only token
	defer release()
	done := make([]bool, 16)
	RowSet(context.Background(), len(done), func(i int) { done[i] = true })
	for i, d := range done {
		if !d {
			t.Fatalf("row %d never ran", i)
		}
	}
}
