package report

import (
	"context"
	"fmt"

	"mmutricks/internal/clock"
	"mmutricks/internal/kbuild"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
	"mmutricks/internal/mmtrace"
)

func init() {
	register(Experiment{ID: "trace-histograms", Title: "mmutrace cycle-cost histograms of the compile workload", Run: runTraceHist})
}

// ---------------------------------------------------------------------
// The tracing subsystem as an experiment: run the compile workload with
// the mmtrace ring enabled on both CPUs and report the per-event-class
// cycle-cost histograms, reconciled against the hwmon counters. This is
// the report-side view of what `mmutrace record` + `summarize` produce
// as a CLI artifact.
// ---------------------------------------------------------------------

type traceHistRun struct {
	hists   [mmtrace.NumKinds]mmtrace.Hist
	emitted uint64
	dropped uint64
	okRows  int
	badRows int
}

func runTraceHist(ctx context.Context, s Scale) *Table {
	cfg := kbuild.Default()
	cfg.Units = s.pick(2, 8)
	cfg.WorkPages = 320
	cfg.Passes = 2
	cfg.StrayRefs = 8

	models := []clock.CPUModel{clock.PPC603At133(), clock.PPC604At185()}
	var res [2]traceHistRun
	RowSet(ctx, 2, func(i int) {
		m := machine.New(models[i])
		m.Trc.Enable()
		before := m.Mon.Snapshot()
		k := kernel.New(m, kernel.Optimized())
		kbuild.Run(k, cfg)
		mustConsistent(k)
		delta := m.Mon.Delta(before)
		res[i].hists = *m.Trc.Hists()
		res[i].emitted = m.Trc.Emitted()
		res[i].dropped = m.Trc.Dropped()
		for _, r := range mmtrace.Reconcile(m.Trc.Hists(), &delta) {
			if r.OK {
				res[i].okRows++
			} else {
				res[i].badRows++
			}
		}
	})
	r603, r604 := res[0], res[1]

	count := func(h mmtrace.Hist) string {
		if h.Count == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", h.Count)
	}
	mean := func(h mmtrace.Hist) string {
		if h.Count == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", h.Mean())
	}

	var rows [][]string
	for k := mmtrace.Kind(0); k < mmtrace.NumKinds; k++ {
		h3, h4 := r603.hists[k], r604.hists[k]
		if h3.Count == 0 && h4.Count == 0 {
			continue
		}
		rows = append(rows, []string{
			k.String(), count(h3), mean(h3), count(h4), mean(h4),
		})
	}

	reconLine := func(name string, r traceHistRun) string {
		status := fmt.Sprintf("%d rows OK", r.okRows)
		if r.badRows > 0 {
			status = fmt.Sprintf("%d rows OK, %d MISMATCHED", r.okRows, r.badRows)
		}
		return fmt.Sprintf("%s: counter reconciliation %s; %d events emitted, %d overwritten by the ring",
			name, status, r.emitted, r.dropped)
	}

	return &Table{
		ID: "trace-histograms", Title: "per-event-class cycle costs, traced kernel compile (optimized kernels)",
		Headers: []string{"event class", "603/133 count", "mean cyc", "604/185 count", "mean cyc"},
		Rows:    rows,
		Paper: [][]string{
			{"(no table — the paper's numbers came from exactly this kind of instrumented run; §4: \"extensive use of quantitative measures and detailed analysis of low level system performance\")"},
		},
		Notes: []string{
			reconLine("603/133", r603),
			reconLine("604/185", r604),
			"histogram totals count every emitted event even after the ring overwrites old entries, so they reconcile with hwmon regardless of drops",
			"the same data is available offline: mmutrace record/summarize/dump (see EXPERIMENTS.md)",
		},
	}
}
