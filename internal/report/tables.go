package report

import (
	"context"
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
	"mmutricks/internal/lmbench"
	"mmutricks/internal/machine"
	"mmutricks/internal/oscompare"
	"mmutricks/internal/vsid"
)

func init() {
	register(Experiment{ID: "figure1", Title: "PowerPC hash-table translation (Figure 1)", Run: runFigure1})
	register(Experiment{ID: "table1", Title: "LmBench summary for direct (bypassing hash table) TLB reloads (Table 1)", Run: runTable1})
	register(Experiment{ID: "table2", Title: "LmBench summary for tunable TLB range flushing (Table 2)", Run: runTable2})
	register(Experiment{ID: "table3", Title: "LmBench summary for Linux/PPC and other operating systems (Table 3)", Run: runTable3})
}

// runFigure1 walks one address through the architecture of Figure 1,
// then verifies the hardware model agrees with the arithmetic.
func runFigure1(ctx context.Context, _ Scale) *Table {
	m := machine.New(clock.PPC604At185())
	k := kernel.New(m, kernel.Optimized())
	img := k.LoadImage("fig1", 4)
	t := k.Spawn(img)
	k.Switch(t)

	ea := arch.EffectiveAddr(0x104073A8) // segment 1, page index 0x4073, offset 0x3A8
	seg := ea.SegIndex()
	vs := m.MMU.Segment(seg)
	va := arch.Virtual(vs, ea)
	vpn := va.VPN()
	rows := [][]string{
		{"32-bit effective address", ea.String()},
		{"4-bit segment-register index", fmt.Sprintf("%d", seg)},
		{"24-bit VSID from segment register", fmt.Sprintf("0x%06x", uint32(vs))},
		{"16-bit page index", fmt.Sprintf("0x%04x", ea.PageIndex())},
		{"12-bit byte offset", fmt.Sprintf("0x%03x", ea.Offset())},
		{"52-bit virtual address", fmt.Sprintf("0x%013x", uint64(va))},
		{"primary hash bucket", fmt.Sprintf("%d", arch.HashPrimary(vpn, arch.DefaultHTABGroups))},
		{"secondary hash bucket", fmt.Sprintf("%d", arch.HashSecondary(vpn, arch.DefaultHTABGroups))},
	}
	// Drive a real access through the path and report the resulting
	// physical translation.
	k.SysMmap(1) // region at UserMmapBase; we translate a mmapped page instead
	k.UserTouch(kernel.UserMmapBase, 32)
	if pa, ok := m.MMU.Probe(kernel.UserMmapBase, false); ok {
		rows = append(rows, []string{"example resolved physical address", pa.String()})
	}
	mustConsistent(k)
	return &Table{
		ID: "figure1", Title: "PowerPC hash-table translation walk-through",
		Headers: []string{"step", "value"},
		Rows:    rows,
		Notes: []string{
			"the decomposition is property-tested in internal/arch; this table is the worked example",
		},
	}
}

// table1Col describes one machine column of Table 1.
type table1Col struct {
	name  string
	model clock.CPUModel
	cfg   kernel.Config
}

// lmbenchColumn runs the five Table 1/2 rows on one machine+config.
type lmCol struct {
	pstart, ctxsw, pipelat lmbench.Result
	pipebw, reread         lmbench.Result
	mmap                   lmbench.Result
}

func runLmCol(model clock.CPUModel, cfg kernel.Config, s Scale, mmapPages int) lmCol {
	k := kernel.New(machine.New(model), cfg)
	suite := lmbench.New(k)
	var c lmCol
	c.pstart = suite.ProcStart(s.pick(4, 16))
	c.ctxsw = suite.CtxSwitch(2, 0, s.pick(20, 120))
	c.pipelat = suite.PipeLatency(s.pick(30, 200))
	c.pipebw = suite.PipeBandwidth(s.pick(1<<20, 4<<20))
	c.reread = suite.FileReread(256, s.pick(2, 8))
	if mmapPages > 0 {
		c.mmap = suite.MmapLatency(mmapPages, s.pick(4, 12))
	}
	return c
}

func runTable1(ctx context.Context, s Scale) *Table {
	base := kernel.Optimized()
	withHtab := base
	withHtab.UseHTAB = true
	cols := []table1Col{
		{"603 180MHz (htab)", clock.PPC603At180(), withHtab},
		{"603 180MHz (no htab)", clock.PPC603At180(), base},
		{"604 185MHz", clock.PPC604At185(), base},
		{"604 200MHz", clock.PPC604At200(), base},
	}
	res := make([]lmCol, len(cols))
	RowSet(ctx, len(cols), func(i int) {
		res[i] = runLmCol(cols[i].model, cols[i].cfg, s, 0)
	})
	headers := []string{"benchmark"}
	for _, c := range cols {
		headers = append(headers, c.name)
	}
	row := func(name string, f func(lmCol) string) []string {
		r := []string{name}
		for _, c := range res {
			r = append(r, f(c))
		}
		return r
	}
	return &Table{
		ID: "table1", Title: "direct TLB reloads on the 603 vs hardware reloads on the 604",
		Headers: headers,
		Rows: [][]string{
			row("pstart", func(c lmCol) string { return us(c.pstart.Micros) }),
			row("ctxsw", func(c lmCol) string { return us(c.ctxsw.Micros) }),
			row("pipe lat.", func(c lmCol) string { return us(c.pipelat.Micros) }),
			row("pipe bw", func(c lmCol) string { return mbps(c.pipebw.MBps) }),
			row("file reread", func(c lmCol) string { return mbps(c.reread.MBps) }),
		},
		Paper: [][]string{
			{"pstart", "1.8 s", "1.7 s", "1.6 s", "1.6 s"},
			{"ctxsw", "4 us", "3 us", "4 us", "4 us"},
			{"pipe lat.", "17 us", "19 us", "21 us", "20 us"},
			{"pipe bw", "69 MB/s", "73 MB/s", "88 MB/s", "92 MB/s"},
			{"file reread", "33 MB/s", "36 MB/s", "39 MB/s", "41 MB/s"},
		},
		Notes: []string{
			"shape target: bypassing the hash table lets the 180 MHz 603 keep pace with the 185 MHz 604 despite half the TLB and cache (§6.2)",
			"paper pstart is in seconds for a repeated process-creation loop; measured pstart is per fork+exec+exit",
		},
	}
}

// mmapPagesTable2 is the mapped-region size for the Table 2 mmap row:
// 4 MB, large enough that the eager per-page hash search costs
// milliseconds, as the paper observed.
const mmapPagesTable2 = 1024

func runTable2(ctx context.Context, s Scale) *Table {
	// The 603 columns use software searches of the hash table (the
	// paper says so under Table 2); the tuned columns add lazy flushes
	// and the 20-page range cutoff.
	eager := kernel.Optimized()
	eager.UseHTAB = true
	eager.LazyFlush = false
	eager.FlushRangeCutoff = 0
	eager.IdleReclaim = false
	tuned := kernel.Optimized()
	tuned.UseHTAB = true

	cols := []table1Col{
		{"603 133MHz", clock.PPC603At133(), eager},
		{"603 133MHz (lazy)", clock.PPC603At133(), tuned},
		{"604 185MHz", clock.PPC604At185(), eager},
		{"604 185MHz (tune)", clock.PPC604At185(), tuned},
	}
	res := make([]lmCol, len(cols))
	RowSet(ctx, len(cols), func(i int) {
		res[i] = runLmCol(cols[i].model, cols[i].cfg, s, mmapPagesTable2)
	})
	headers := []string{"benchmark"}
	for _, c := range cols {
		headers = append(headers, c.name)
	}
	row := func(name string, f func(lmCol) string) []string {
		r := []string{name}
		for _, c := range res {
			r = append(r, f(c))
		}
		return r
	}
	return &Table{
		ID: "table2", Title: "lazy VSID flushing and the tunable range-flush cutoff",
		Headers: headers,
		Rows: [][]string{
			row("mmap lat.", func(c lmCol) string { return us(c.mmap.Micros) }),
			row("ctxsw", func(c lmCol) string { return us(c.ctxsw.Micros) }),
			row("pipe lat.", func(c lmCol) string { return us(c.pipelat.Micros) }),
			row("pipe bw", func(c lmCol) string { return mbps(c.pipebw.MBps) }),
			row("file reread", func(c lmCol) string { return mbps(c.reread.MBps) }),
		},
		Paper: [][]string{
			{"mmap lat.", "3240 us", "41 us", "2733 us", "33 us"},
			{"ctxsw", "6 us", "6 us", "4 us", "4 us"},
			{"pipe lat.", "34 us", "28 us", "22 us", "21 us"},
			{"pipe bw", "52 MB/s", "57 MB/s", "90 MB/s", "94 MB/s"},
			{"file reread", "26 MB/s", "32 MB/s", "38 MB/s", "41 MB/s"},
		},
		Notes: []string{
			"shape target: the ~80x mmap-latency collapse from avoiding per-page hash searches (§7)",
			fmt.Sprintf("mmap row maps/unmaps %d pages (4 MB)", mmapPagesTable2),
		},
	}
}

func runTable3(ctx context.Context, s Scale) *Table {
	rows := oscompare.RunTable3(s.pick(40, 200))
	headers := []string{"OS", "null syscall", "ctx switch", "pipe lat.", "pipe bw"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Name, us(r.NullUS), us(r.CtxUS), us(r.PipeUS), mbps(r.PipeMBps)})
	}
	return &Table{
		ID: "table3", Title: "Linux/PPC against other operating systems (133 MHz 604)",
		Headers: headers,
		Rows:    out,
		Paper: [][]string{
			{"Linux/PPC", "2 us", "6 us", "28 us", "52 MB/s"},
			{"Unoptimized Linux/PPC", "18 us", "28 us", "78 us", "36 MB/s"},
			{"Rhapsody 5.0", "15 us", "64 us", "161 us", "9 MB/s"},
			{"MkLinux", "19 us", "64 us", "235 us", "15 MB/s"},
			{"AIX", "11 us", "24 us", "89 us", "21 MB/s"},
		},
		Notes: []string{
			"comparison kernels are cost personalities over the same hardware (see internal/oscompare); structural, not fitted",
			"shape target: optimized monolithic < unoptimized monolithic < heavyweight UNIX < Mach-based, on every row",
		},
	}
}

// scatterName labels scatter constants in sec5.2 output.
func scatterName(c uint32) string {
	switch c {
	case vsid.DefaultScatter:
		return fmt.Sprintf("%d (tuned)", c)
	default:
		return fmt.Sprintf("%d", c)
	}
}
