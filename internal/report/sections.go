package report

import (
	"context"
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/kbuild"
	"mmutricks/internal/kernel"
	"mmutricks/internal/lmbench"
	"mmutricks/internal/machine"
	"mmutricks/internal/ppc"
	"mmutricks/internal/vsid"
)

func init() {
	register(Experiment{ID: "sec5.1-bat", Title: "Reducing the OS TLB footprint with BAT mappings (§5.1)", Run: runSec51})
	register(Experiment{ID: "sec5.2-htab-util", Title: "Hash-table utilization vs VSID scatter constant (§5.2)", Run: runSec52})
	register(Experiment{ID: "sec6.1-fastreload", Title: "Hand-optimized TLB reload handlers (§6.1)", Run: runSec61})
	register(Experiment{ID: "sec6.2-nohtab", Title: "Improving hash tables away on the 603 (§6.2)", Run: runSec62})
	register(Experiment{ID: "sec7-lazy", Title: "Lazy TLB flushing and the range-flush cutoff (§7)", Run: runSec7Lazy})
	register(Experiment{ID: "sec7-idle-reclaim", Title: "Idle-task reclamation of zombie PTEs (§7)", Run: runSec7Reclaim})
	register(Experiment{ID: "sec8-ptcache", Title: "Cache misuse on page tables (§8)", Run: runSec8})
	register(Experiment{ID: "sec9-idleclear", Title: "Idle-task page clearing (§9)", Run: runSec9})
}

// ---------------------------------------------------------------------
// §5.1 — BAT-mapping the kernel
// ---------------------------------------------------------------------

// mustConsistent panics when an experiment kernel's translation
// invariants are violated: a silent violation would skew every row
// derived from that kernel, so experiments validate before reporting.
func mustConsistent(k *kernel.Kernel) {
	if err := k.CheckConsistency(); err != nil {
		panic("experiment kernel inconsistent: " + err.Error())
	}
}

func runSec51(ctx context.Context, s Scale) *Table {
	cfg := kbuild.Default()
	cfg.Units = s.pick(4, 16)
	// A compiler arena larger than the 604's 1 MB TLB reach, with
	// heavy pointer chasing, so the kernel's TLB slots are contended
	// the way the paper's full-size compile contends them (their run
	// took a TLB miss every ~365 cycles).
	cfg.WorkPages = 320
	cfg.Passes = 2
	cfg.StrayRefs = 8

	base := kernel.Unoptimized()
	bat := base
	bat.KernelBAT = true

	type s51 struct {
		r     kbuild.Result
		slots int
	}
	cfgs := []kernel.Config{base, bat}
	var res [2]s51
	RowSet(ctx, 2, func(i int) {
		k := kernel.New(machine.New(clock.PPC604At185()), cfgs[i])
		r := kbuild.Run(k, cfg)
		res[i] = s51{r, k.M.MMU.TLB.KernelEntries()}
	})
	rb, slotsBase := res[0].r, res[0].slots
	rbat, slotsBAT := res[1].r, res[1].slots

	tlbRed := 1 - float64(rbat.Counters.TLBMisses)/float64(rb.Counters.TLBMisses)
	hashRed := 1 - float64(rbat.Counters.HTABMisses)/float64(rb.Counters.HTABMisses)
	wallRed := 1 - rbat.ComputeSeconds/rb.ComputeSeconds

	return &Table{
		ID: "sec5.1-bat", Title: "kernel compile with and without BAT-mapped kernel (604/185)",
		Headers: []string{"metric", "kernel PTEs", "kernel via BAT", "change"},
		Rows: [][]string{
			{"TLB misses", fmt.Sprintf("%d", rb.Counters.TLBMisses), fmt.Sprintf("%d", rbat.Counters.TLBMisses), pct(tlbRed) + " fewer"},
			{"hash-table misses", fmt.Sprintf("%d", rb.Counters.HTABMisses), fmt.Sprintf("%d", rbat.Counters.HTABMisses), pct(hashRed) + " fewer"},
			{"kernel TLB slots (end of run)", fmt.Sprintf("%d", slotsBase), fmt.Sprintf("%d", slotsBAT), ""},
			{"compute time (sim s)", fmt.Sprintf("%.4f", rb.ComputeSeconds), fmt.Sprintf("%.4f", rbat.ComputeSeconds), pct(wallRed) + " faster"},
		},
		Paper: [][]string{
			{"TLB misses", "219M", "197M", "10% fewer"},
			{"hash-table misses", "1M", "813K", "20% fewer"},
			{"kernel TLB slots", "~33% of 256", "<= 4", ""},
			{"wall clock", "10 min", "8 min", "20% faster"},
		},
		Notes: []string{
			"the compile is scaled down ~3 orders of magnitude; reductions, not absolute counts, are the reproduction target",
		},
	}
}

// ---------------------------------------------------------------------
// §5.2 — hash-table utilization vs the VSID scatter constant
// ---------------------------------------------------------------------

// sec52Utilization offers the hash table one full capacity's worth of
// PTEs from many similar address spaces and reports how many of them
// the table actually retains — the paper's "use of the hash table".
// Hash hot spots make colliding PTEs evict one another inside full
// buckets while other buckets sit empty, so bad scatter constants (and
// 8192 resident kernel PTEs) depress the retained fraction.
func sec52Utilization(scatter uint32, kernelPTEs bool, procs, pagesPerProc int) (retained float64, occupancy float64) {
	h := ppc.NewHTAB(arch.DefaultHTABGroups, 0x200000)
	if kernelPTEs {
		// The pre-§5.1 kernel kept its linear mapping in the table:
		// 8192 PTEs under the fixed kernel VSIDs.
		for pa := 0; pa < 32<<20; pa += arch.PageSize {
			ea := arch.EffectiveAddr(uint32(arch.KernelBase) + uint32(pa))
			v := vsid.For(0, ea.SegIndex(), scatter)
			h.Insert(arch.VPNOf(v, ea), arch.PhysAddr(pa).Frame(), false, nil, nil)
		}
	}
	// Similar user address spaces: text low in segment 0, heap in
	// segment 1, stack high in segment 7 — "the logical address spaces
	// of processes tend to be similar" (§5.2).
	var offered []arch.VPN
	for p := 1; p <= procs; p++ {
		for i := 0; i < pagesPerProc; i++ {
			var ea arch.EffectiveAddr
			switch i % 4 {
			case 0, 1:
				ea = kernel.UserTextBase + arch.EffectiveAddr((i/2)*arch.PageSize)
			case 2:
				ea = kernel.UserDataBase + arch.EffectiveAddr((i/4)*arch.PageSize)
			default:
				ea = kernel.UserStackTop - arch.EffectiveAddr((i/4+1)*arch.PageSize)
			}
			v := vsid.For(uint32(p), ea.SegIndex(), scatter)
			vpn := arch.VPNOf(v, ea)
			h.Insert(vpn, arch.PFN(i), false, nil, nil)
			offered = append(offered, vpn)
		}
	}
	found := 0
	for _, vpn := range offered {
		if pte, _, _ := h.Search(vpn, nil); pte != nil {
			found++
		}
	}
	return float64(found) / float64(len(offered)),
		float64(h.Occupancy()) / float64(h.Capacity())
}

func runSec52(ctx context.Context, s Scale) *Table {
	procs := s.pick(64, 128)
	pages := arch.DefaultHTABEntries / procs // offer exactly capacity
	type cfg struct {
		name    string
		scatter uint32
		kernel  bool
	}
	cases := []cfg{
		{"VSID=pid, kernel PTEs in table", 1, true},
		{"tuned scatter, kernel PTEs in table", vsid.DefaultScatter, true},
		{"tuned scatter, kernel via BAT", vsid.DefaultScatter, false},
	}
	rows := make([][]string, len(cases))
	RowSet(ctx, len(cases), func(i int) {
		c := cases[i]
		ret, occ := sec52Utilization(c.scatter, c.kernel, procs, pages)
		rows[i] = []string{c.name, scatterName(c.scatter), pct(ret), pct(occ)}
	})
	return &Table{
		ID: "sec5.2-htab-util", Title: "hash-table utilization under PTE pressure",
		Headers: []string{"configuration", "scatter", "PTEs retained", "table occupancy"},
		Rows:    rows,
		Paper: [][]string{
			{"initial", "", "37%", ""},
			{"after tuning the constant", "", "57%", ""},
			{"kernel PTEs removed + fine tuning", "", "75%", ""},
		},
		Notes: []string{
			"one hash-table capacity (16384 PTEs) of similar address spaces is offered; 'PTEs retained' is the fraction that survive bucket-overflow eviction — the paper's 'use of the hash table'",
			"shape target: monotone improvement from scatter tuning and from removing kernel PTEs (§5.2)",
		},
	}
}

// ---------------------------------------------------------------------
// §6.1 — fast reload handlers
// ---------------------------------------------------------------------

func runSec61(ctx context.Context, s Scale) *Table {
	base := kernel.Unoptimized()
	fast := base
	fast.FastReload = true

	run := func(cfg kernel.Config) (ctx, lat float64) {
		k := kernel.New(machine.New(clock.PPC603At180()), cfg)
		suite := lmbench.New(k)
		c := suite.CtxSwitch(2, 4, s.pick(20, 120))
		l := suite.PipeLatency(s.pick(30, 200))
		return c.Micros, l.Micros
	}
	cfgs := []kernel.Config{base, fast}
	var res [2][2]float64
	RowSet(ctx, 2, func(i int) {
		c, l := run(cfgs[i])
		res[i] = [2]float64{c, l}
	})
	bc, bl := res[0][0], res[0][1]
	fc, fl := res[1][0], res[1][1]
	return &Table{
		ID: "sec6.1-fastreload", Title: "hand-optimized miss handlers vs the original C handlers (603/180)",
		Headers: []string{"metric", "C handlers", "fast handlers", "change"},
		Rows: [][]string{
			{"ctxsw (2p/16K)", us(bc), us(fc), pct(1-fc/bc) + " faster"},
			{"pipe lat.", us(bl), us(fl), pct(1-fl/bl) + " faster"},
		},
		Paper: [][]string{
			{"ctxsw", "", "", "33% faster"},
			{"pipe lat. (communication latencies)", "", "", "15% faster"},
		},
		Notes: []string{
			"the paper also reports ~15% general wall-clock improvement for user code; see sec6.2's kbuild columns",
		},
	}
}

// ---------------------------------------------------------------------
// §6.2 — removing the hash table on the 603
// ---------------------------------------------------------------------

func runSec62(ctx context.Context, s Scale) *Table {
	cfg := kbuild.Default()
	cfg.Units = s.pick(4, 16)
	cfg.WorkPages = 320
	cfg.Passes = 2
	cfg.StrayRefs = 8
	withHtab := kernel.Optimized()
	withHtab.UseHTAB = true
	noHtab := kernel.Optimized()

	runs := []struct {
		model clock.CPUModel
		kcfg  kernel.Config
	}{
		{clock.PPC603At180(), withHtab},
		{clock.PPC603At180(), noHtab},
		{clock.PPC604At185(), kernel.Optimized()},
	}
	var res [3]kbuild.Result
	RowSet(ctx, len(runs), func(i int) {
		res[i] = kbuild.Run(kernel.New(machine.New(runs[i].model), runs[i].kcfg), cfg)
	})
	r1, r2, r3 := res[0], res[1], res[2]

	return &Table{
		ID: "sec6.2-nohtab", Title: "kernel compile: 603 with/without the hash table vs 604",
		Headers: []string{"machine", "kernel compile (sim s)", "vs 603 htab"},
		Rows: [][]string{
			{"603/180, hash-table reloads", fmt.Sprintf("%.3f", r1.ComputeSeconds), "1.00x"},
			{"603/180, direct page-tree reloads", fmt.Sprintf("%.3f", r2.ComputeSeconds), ratio(r1.ComputeSeconds, r2.ComputeSeconds) + " faster"},
			{"604/185, hardware reloads", fmt.Sprintf("%.3f", r3.ComputeSeconds), ratio(r1.ComputeSeconds, r3.ComputeSeconds)},
		},
		Paper: [][]string{
			{"kernel compile time reduction from removing the hash table", "5%", ""},
			{"180 MHz 603 keeps pace with 185 MHz 604", "", ""},
		},
		Notes: []string{
			"shape target: direct reloads beat hash-table searches on the 603, closing the gap to the 604 (Table 1 covers the LmBench view)",
		},
	}
}

// ---------------------------------------------------------------------
// §7 — lazy flushing
// ---------------------------------------------------------------------

func runSec7Lazy(ctx context.Context, s Scale) *Table {
	eager := kernel.Optimized()
	eager.UseHTAB = true
	eager.LazyFlush = false
	eager.FlushRangeCutoff = 0
	eager.IdleReclaim = false
	lazy := kernel.Optimized()
	lazy.UseHTAB = true

	run := func(cfg kernel.Config) (mmap, ctx8 float64, bw float64) {
		k := kernel.New(machine.New(clock.PPC603At133()), cfg)
		suite := lmbench.New(k)
		m := suite.MmapLatency(mmapPagesTable2, s.pick(4, 12))
		c := suite.CtxSwitch(8, 4, s.pick(8, 40))
		b := suite.PipeBandwidth(s.pick(1<<20, 4<<20))
		return m.Micros, c.Micros, b.MBps
	}
	cfgs := []kernel.Config{eager, lazy}
	var res [2][3]float64
	RowSet(ctx, 2, func(i int) {
		m, c, b := run(cfgs[i])
		res[i] = [3]float64{m, c, b}
	})
	em, ec, eb := res[0][0], res[0][1], res[0][2]
	lm, lc, lb := res[1][0], res[1][1], res[1][2]
	return &Table{
		ID: "sec7-lazy", Title: "lazy VSID flushing with the 20-page range cutoff (603/133)",
		Headers: []string{"metric", "eager flushing", "lazy + cutoff", "change"},
		Rows: [][]string{
			{"mmap lat. (4MB)", us(em), us(lm), ratio(em, lm) + " faster"},
			{"ctxsw (8p/16K)", us(ec), us(lc), ""},
			{"pipe bw", mbps(eb), mbps(lb), ""},
		},
		Paper: [][]string{
			{"mmap lat.", "3240 us", "41 us", "80x faster"},
			{"ctxsw (8p)", "20 us", "17 us", ""},
			{"pipe bw", "71 MB/s", "76 MB/s", ""},
		},
		Notes: []string{
			"the mmap collapse is the headline; the pipe/ctxsw rows moved a few percent in the paper and are secondary",
		},
	}
}

// ---------------------------------------------------------------------
// §7 — idle-task zombie reclamation
// ---------------------------------------------------------------------

// sec7Churn creates steady-state context churn: processes repeatedly
// exec (flushing their context and leaving zombies under lazy
// flushing), refault their working sets, and yield idle time between
// rounds. Enough rounds fill the 16384-entry table with zombie PTEs.
func sec7Churn(k *kernel.Kernel, tasks []*kernel.Task, img *kernel.Image, rounds, wsPages int) {
	for r := 0; r < rounds; r++ {
		for _, t := range tasks {
			k.Switch(t)
			if r%2 == 1 {
				k.Exec(img) // context flush: zombies under lazy mode
			}
			k.UserTouchPages(kernel.UserDataBase, wsPages)
			k.UserRun(0, 500)
		}
		k.RunIdleFor(clock.Cycles(60_000))
	}
}

func runSec7Reclaim(ctx context.Context, s Scale) *Table {
	warm := s.pick(30, 100)
	meas := s.pick(15, 60)
	const procs, ws = 8, 320
	run := func(reclaim bool) (ev float64, occ, live int, hit float64, zr uint64) {
		cfg := kernel.Optimized()
		cfg.UseHTAB = true
		cfg.IdleReclaim = reclaim
		k := kernel.New(machine.New(clock.PPC604At185()), cfg)
		img := k.LoadImage("churn", 8)
		tasks := make([]*kernel.Task, procs)
		for i := range tasks {
			tasks[i] = k.Spawn(img)
		}
		// Warm until the table reaches steady state, then measure.
		sec7Churn(k, tasks, img, warm, ws)
		before := k.M.Mon.Snapshot()
		sec7Churn(k, tasks, img, meas, ws)
		d := k.M.Mon.Delta(before)
		mustConsistent(k)
		return d.EvictRatio(), k.M.MMU.HTAB.Occupancy(),
			k.M.MMU.HTAB.LiveOccupancy(k.ZombieVSID),
			d.HTABHitRate(), d.ZombiesReclaimed
	}
	type s7 struct {
		ev        float64
		occ, live int
		hit       float64
		zr        uint64
	}
	var res [2]s7
	RowSet(ctx, 2, func(i int) {
		ev, occ, live, hit, zr := run(i == 1)
		res[i] = s7{ev, occ, live, hit, zr}
	})
	evOff, occOff, liveOff, hitOff := res[0].ev, res[0].occ, res[0].live, res[0].hit
	evOn, occOn, liveOn, hitOn, zrOn := res[1].ev, res[1].occ, res[1].live, res[1].hit, res[1].zr
	return &Table{
		ID: "sec7-idle-reclaim", Title: "idle-task reclamation of zombie hash-table PTEs (604/185, steady state)",
		Headers: []string{"metric", "no reclaim", "idle reclaim", ""},
		Rows: [][]string{
			{"evict ratio (reloads replacing valid PTEs)", pct(evOff), pct(evOn), ""},
			{"valid PTEs in table (of 16384)", fmt.Sprintf("%d", occOff), fmt.Sprintf("%d", occOn), ""},
			{"live (non-zombie) PTEs", fmt.Sprintf("%d", liveOff), fmt.Sprintf("%d", liveOn), ""},
			{"hash hit rate on TLB miss", pct(hitOff), pct(hitOn), ""},
			{"zombies reclaimed (window)", "0", fmt.Sprintf("%d", zrOn), ""},
		},
		Paper: [][]string{
			{"evict ratio", ">90%", "~30%", ""},
			{"valid PTEs in table", "fills (zombies never invalidated)", "", ""},
			{"live PTEs", "600-700", "1400-2200", ""},
			{"hash hit rate", "85%", "up to 98%", ""},
		},
		Notes: []string{
			"shape target: reclaim lowers the evict ratio, raises live occupancy and the hash hit rate (§7)",
			"measured over a steady-state window after warm-up churn",
		},
	}
}

// ---------------------------------------------------------------------
// §8 — cache misuse on page tables
// ---------------------------------------------------------------------

func runSec8(ctx context.Context, s Scale) *Table {
	// A TLB-thrashing working set: more pages than TLB entries, so
	// every pass reloads heavily while the task also has cache-hot
	// compute data.
	run := func(cachePT bool) (uint64, uint64, float64) {
		cfg := kernel.Unoptimized()
		cfg.KernelBAT = true // isolate the page-table effect
		cfg.CachePageTables = cachePT
		k := kernel.New(machine.New(clock.PPC604At185()), cfg)
		img := k.LoadImage("thrash", 4)
		t := k.Spawn(img)
		k.Switch(t)
		_ = t
		addr := k.SysMmap(512) // 2 MB: 512 pages >> 256 TLB entries
		passes := s.pick(6, 24)
		start := k.M.Led.Now()
		for p := 0; p < passes; p++ {
			k.UserTouchPages(addr, 512)
			k.UserTouch(kernel.UserDataBase, 8*1024) // hot compute data
		}
		st := k.M.DCache.Stats()
		pollution := st.PollutionBy(cache.ClassHashTable) + st.PollutionBy(cache.ClassPageTable)
		mustConsistent(k)
		return st.Misses[cache.ClassUser], pollution, k.M.Led.Seconds(k.M.Led.Now() - start)
	}
	type s8 struct {
		misses, pol uint64
		secs        float64
	}
	var res [2]s8
	RowSet(ctx, 2, func(i int) {
		m, p, t := run(i == 0)
		res[i] = s8{m, p, t}
	})
	mCached, polCached, tCached := res[0].misses, res[0].pol, res[0].secs
	mUncached, polUncached, tUncached := res[1].misses, res[1].pol, res[1].secs
	return &Table{
		ID: "sec8-ptcache", Title: "cache pollution from caching page-table walks (604/185)",
		Headers: []string{"metric", "cached walks", "uncached walks", "change"},
		Rows: [][]string{
			{"user-data cache misses", fmt.Sprintf("%d", mCached), fmt.Sprintf("%d", mUncached), pct(1-float64(mUncached)/float64(mCached)) + " fewer"},
			{"lines evicted by walk traffic", fmt.Sprintf("%d", polCached), fmt.Sprintf("%d", polUncached), ""},
			{"workload time (sim s)", fmt.Sprintf("%.4f", tCached), fmt.Sprintf("%.4f", tUncached), ""},
		},
		Paper: [][]string{
			{"", "34 memory accesses per hash-table fill; up to 18 new cache entries per reload", "", ""},
		},
		Notes: []string{
			"§8 predicts but does not measure this effect ('we have not yet performed experiments to quantify'); §10.1/§10.2 propose the uncached variant — this is the paper's future-work experiment, implemented",
			"whether uncached walks win overall depends on the hash hit rate: uncached searches pay memory latency every time (the trade-off the paper flags in §9's overhead caveat)",
		},
	}
}

// ---------------------------------------------------------------------
// §9 — idle-task page clearing
// ---------------------------------------------------------------------

func runSec9(ctx context.Context, s Scale) *Table {
	cfg := kbuild.Default()
	cfg.Units = s.pick(6, 24)
	// A hot-set-heavy compile profile with frequent short I/O stalls:
	// the regime §9 describes, where the idle task runs "quite often"
	// and the compiler's reused state is cache-resident between stalls.
	cfg.HotPages = 6
	cfg.WaitEvery = 10
	run := func(mode kernel.IdleClearMode) kbuild.Result {
		kcfg := kernel.Unoptimized()
		kcfg.KernelBAT = true // the §9 experiments ran on the improved kernel
		kcfg.FastReload = true
		kcfg.IdleClear = mode
		k := kernel.New(machine.New(clock.PPC604At185()), kcfg)
		return kbuild.Run(k, cfg)
	}
	modes := []kernel.IdleClearMode{
		kernel.IdleClearOff, kernel.IdleClearCached,
		kernel.IdleClearUncached, kernel.IdleClearUncachedList,
	}
	var res [4]kbuild.Result
	RowSet(ctx, len(modes), func(i int) { res[i] = run(modes[i]) })
	off, cached, unc, list := res[0], res[1], res[2], res[3]
	row := func(name string, r kbuild.Result) []string {
		return []string{
			name,
			fmt.Sprintf("%.4f", r.ComputeSeconds),
			ratio(r.ComputeSeconds, off.ComputeSeconds),
			fmt.Sprintf("%d", r.Counters.ClearedPageHits),
			fmt.Sprintf("%d", r.Idle.Cleared),
		}
	}
	return &Table{
		ID: "sec9-idleclear", Title: "idle-task page clearing variants on the kernel compile (604/185)",
		Headers: []string{"variant", "compile compute (sim s)", "vs off", "pre-cleared pages used", "pages cleared by idle"},
		Rows: [][]string{
			row("no idle clearing", off),
			row("cached clearing + list", cached),
			row("uncached clearing, no list (control)", unc),
			row("uncached clearing + list", list),
		},
		Paper: [][]string{
			{"no idle clearing", "baseline", "1.00x", "", ""},
			{"cached clearing + list", "nearly twice as long", "~2x", "", ""},
			{"uncached, no list", "no loss or gain", "~1.00x", "", ""},
			{"uncached + list", "much faster", "<1x", "", ""},
		},
		Notes: []string{
			"shape target: cached clearing slower than baseline from cache pollution; uncached control neutral; uncached+list fastest (§9)",
		},
	}
}
