//go:build !race

package report

// raceEnabled reports whether the race detector is compiled in; tests
// use it to skip full-registry runs that are impractically slow under
// instrumentation.
const raceEnabled = false
