package report

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mmutricks/internal/clock"
	"mmutricks/internal/workpool"
)

// The harness parallelism is a single token pool (internal/workpool)
// shared by the experiment-level worker pool (RunAll), the row-level
// helper (RowSet) and the chaos soak harness: each running experiment
// holds one token, and RowSet borrows whatever tokens are idle for its
// rows, running the rest inline. Total concurrency therefore never
// exceeds the configured -j, whichever level the parallelism comes
// from. These wrappers keep the report-facing API in one place.

// SetParallelism sizes the harness worker pool. j < 1 is treated as 1.
// It must not be called while experiments are running.
func SetParallelism(j int) { workpool.SetParallelism(j) }

// Parallelism returns the configured worker count.
func Parallelism() int { return workpool.Parallelism() }

// RowSet runs fn(0..n-1) — the independent machine-configuration rows
// of one experiment — concurrently on whatever harness tokens are idle,
// running the remainder inline on the calling goroutine. Callers gather
// results by index, so output is deterministic at any parallelism. A
// panic in any row is re-raised on the calling goroutine (annotated
// with the row's stack), so RunAll's per-experiment isolation still
// contains it. Cancellation is cooperative at row granularity: once
// ctx is done no further rows start, and RowSet panics *workpool.
// Canceled so the experiment degrades to a FAILED(canceled) or
// FAILED(timeout) cell instead of rendering an incomplete table.
func RowSet(ctx context.Context, n int, fn func(i int)) { workpool.RowSet(ctx, n, fn) }

// rowBudgetCycles is the per-ledger watchdog RunAll arms: any single
// simulated machine charging this many cycles has hung (the largest
// full-scale experiment rows stay orders of magnitude below it), so
// the ledger panics and the row degrades to a FAILED(cycle-budget)
// cell instead of wedging the whole report run.
const rowBudgetCycles clock.Cycles = 1 << 40

// RunResult is the outcome of one experiment under RunAll.
type RunResult struct {
	Experiment Experiment
	// Table is the rendered result. When the experiment panicked it is
	// a one-cell FAILED(<reason>) placeholder so the report still
	// renders every registry entry in order.
	Table *Table
	// Err carries a panic (with stack) the runner contained.
	Err error
	// FailReason classifies a contained failure: "panic",
	// "cycle-budget", "canceled", or "timeout" (empty when Err is nil).
	// cmd exit codes and the mmud daemon's retry policy key off it.
	FailReason string
	// Wall is host wall-clock time spent inside Run.
	Wall time.Duration
	// SimCycles is the simulated work the experiment charged, read from
	// the process-wide cycle meter. Attribution is only exact when
	// experiments run sequentially (parallelism 1); under a parallel
	// run concurrent experiments bleed into each other's readings.
	SimCycles uint64
}

// RunAll executes every registered experiment on a pool of
// `parallelism` workers. Results are gathered by index and returned in
// registry (All) order, so rendering them in sequence yields output
// byte-identical to a sequential run. A panicking experiment is
// contained: its RunResult carries the error and the remaining
// experiments still run. Cancelling ctx stops scheduling new
// experiments and new rows; experiments cut off mid-run degrade to
// FAILED(canceled)/FAILED(timeout) placeholders.
func RunAll(ctx context.Context, scale Scale, parallelism int) []RunResult {
	SetParallelism(parallelism)
	old := clock.SetDefaultBudget(rowBudgetCycles)
	defer clock.SetDefaultBudget(old)
	return runExperiments(ctx, All(), scale, parallelism)
}

// runExperiments is RunAll over an explicit experiment list (tests use
// it to drive small subsets). SetParallelism must already reflect
// `parallelism`.
func runExperiments(ctx context.Context, exps []Experiment, scale Scale, parallelism int) []RunResult {
	out := make([]RunResult, len(exps))
	workers := parallelism
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(exps) {
					return
				}
				out[i] = RunOne(ctx, exps[i], scale)
			}
		}()
	}
	wg.Wait()
	return out
}

// RunOne executes a single experiment while holding one harness token,
// containing any panic (including ledger budget trips and cooperative
// cancellation) into a structured RunResult: the daemon and the CLI
// both rely on a failed experiment never taking the caller down. The
// caller is responsible for the default cycle budget (RunAll arms the
// watchdog; mmud installs per-job budgets).
func RunOne(ctx context.Context, e Experiment, scale Scale) (r RunResult) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.Experiment = e
	release := workpool.Acquire()
	defer release()
	start := time.Now() //mmutricks:nondet-ok Wall feeds the bench JSON only, never the report bytes
	cyc := clock.MeterNow()
	defer func() {
		r.Wall = time.Since(start) //mmutricks:nondet-ok Wall feeds the bench JSON only, never the report bytes
		r.SimCycles = clock.MeterNow() - cyc
		if p := recover(); p != nil {
			reason := FailureReason(p)
			r.Err = fmt.Errorf("experiment %s %s: %v\n%s", e.ID, reason, p, debug.Stack())
			r.FailReason = reason
			r.Table = failedTable(e, reason)
		}
	}()
	if err := ctx.Err(); err != nil {
		// Already cancelled: don't start the experiment at all. Raise
		// the same sentinel a mid-run cancellation produces so the
		// deferred containment renders the placeholder.
		panic(&workpool.Canceled{Cause: context.Cause(ctx)})
	}
	r.Table = e.Run(ctx, scale)
	return r
}

// FailureReason classifies a contained panic for the FAILED cell and
// the exit-code/retry policies built on top: "cycle-budget" for ledger
// watchdog trips, "timeout"/"canceled" for cooperative cancellation,
// and "panic" for everything else. Budget trips and cancellations
// arrive either as their sentinel values or — via a RowSet row
// goroutine — re-raised as formatted strings, so the fixed phrases in
// clock.BudgetError.Error and workpool.Canceled.Error are matched, not
// the types.
func FailureReason(p any) string {
	if canceled, timeout := workpool.IsCanceled(p); canceled {
		if timeout {
			return "timeout"
		}
		return "canceled"
	}
	if strings.Contains(fmt.Sprint(p), "cycle budget exceeded") {
		return "cycle-budget"
	}
	return "panic"
}

// failedTable is the placeholder a panicking experiment renders as: a
// one-cell grid so -all output keeps every registry entry, with the
// full panic carried separately in RunResult.Err.
func failedTable(e Experiment, reason string) *Table {
	return &Table{
		ID: e.ID, Title: e.Title,
		Headers: []string{"result"},
		Rows:    [][]string{{fmt.Sprintf("FAILED(%s)", reason)}},
		Notes:   []string{"the runner contained a failure in this experiment; the panic and stack are in the run's error output"},
	}
}
