package report

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mmutricks/internal/clock"
)

// The harness parallelism is a single token pool shared by the
// experiment-level worker pool (RunAll) and the row-level helper
// (RowSet): each running experiment holds one token, and RowSet
// borrows whatever tokens are idle for its rows, running the rest
// inline. Total concurrency therefore never exceeds the configured -j,
// whichever level the parallelism comes from.
var (
	poolMu sync.Mutex
	par    = 1
	tokens chan struct{}
)

func init() { SetParallelism(runtime.GOMAXPROCS(0)) }

// SetParallelism sizes the harness worker pool. j < 1 is treated as 1.
// It must not be called while experiments are running.
func SetParallelism(j int) {
	if j < 1 {
		j = 1
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	par = j
	tokens = make(chan struct{}, j)
	for i := 0; i < j; i++ {
		tokens <- struct{}{}
	}
}

// Parallelism returns the configured worker count.
func Parallelism() int {
	poolMu.Lock()
	defer poolMu.Unlock()
	return par
}

func pool() chan struct{} {
	poolMu.Lock()
	defer poolMu.Unlock()
	return tokens
}

// RowSet runs fn(0..n-1) — the independent machine-configuration rows
// of one experiment — concurrently on whatever harness tokens are idle,
// running the remainder inline on the calling goroutine. Callers gather
// results by index, so output is deterministic at any parallelism. A
// panic in any row is re-raised on the calling goroutine (annotated
// with the row's stack), so RunAll's per-experiment isolation still
// contains it.
func RowSet(n int, fn func(i int)) {
	if n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	t := pool()
	var wg sync.WaitGroup
	var panicked atomic.Pointer[rowPanic]
	for i := 0; i < n; i++ {
		select {
		case <-t:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { t <- struct{}{} }()
				defer func() {
					if p := recover(); p != nil {
						panicked.CompareAndSwap(nil, &rowPanic{val: p, stack: debug.Stack()})
					}
				}()
				fn(i)
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(fmt.Sprintf("%v\nrow goroutine stack:\n%s", p.val, p.stack))
	}
}

type rowPanic struct {
	val   any
	stack []byte
}

// RunResult is the outcome of one experiment under RunAll.
type RunResult struct {
	Experiment Experiment
	// Table is the rendered result; nil when the experiment panicked.
	Table *Table
	// Err carries a panic (with stack) the runner contained.
	Err error
	// Wall is host wall-clock time spent inside Run.
	Wall time.Duration
	// SimCycles is the simulated work the experiment charged, read from
	// the process-wide cycle meter. Attribution is only exact when
	// experiments run sequentially (parallelism 1); under a parallel
	// run concurrent experiments bleed into each other's readings.
	SimCycles uint64
}

// RunAll executes every registered experiment on a pool of
// `parallelism` workers. Results are gathered by index and returned in
// registry (All) order, so rendering them in sequence yields output
// byte-identical to a sequential run. A panicking experiment is
// contained: its RunResult carries the error and the remaining
// experiments still run.
func RunAll(scale Scale, parallelism int) []RunResult {
	SetParallelism(parallelism)
	return runExperiments(All(), scale, parallelism)
}

// runExperiments is RunAll over an explicit experiment list (tests use
// it to drive small subsets). SetParallelism must already reflect
// `parallelism`.
func runExperiments(exps []Experiment, scale Scale, parallelism int) []RunResult {
	out := make([]RunResult, len(exps))
	workers := parallelism
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(exps) {
					return
				}
				out[i] = runOne(exps[i], scale)
			}
		}()
	}
	wg.Wait()
	return out
}

// runOne executes a single experiment while holding one harness token,
// containing any panic.
func runOne(e Experiment, scale Scale) (r RunResult) {
	r.Experiment = e
	t := pool()
	<-t
	defer func() { t <- struct{}{} }()
	start := time.Now()
	cyc := clock.MeterNow()
	defer func() {
		r.Wall = time.Since(start)
		r.SimCycles = clock.MeterNow() - cyc
		if p := recover(); p != nil {
			r.Err = fmt.Errorf("experiment %s panicked: %v\n%s", e.ID, p, debug.Stack())
			r.Table = nil
		}
	}()
	r.Table = e.Run(scale)
	return r
}
