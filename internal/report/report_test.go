package report

import (
	"context"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"figure1", "table1", "table2", "table3",
		"sec5.1-bat", "sec5.2-htab-util", "sec6.1-fastreload",
		"sec6.2-nohtab", "sec7-lazy", "sec7-idle-reclaim",
		"sec7-ondemand", "sec8-ptcache", "sec9-idleclear",
		"sec10-futures", "tlb-reach", "htab-size", "swap-flush", "profile",
		"interactions", "mem-hierarchy", "trace-histograms", "chaos-soak",
		"telemetry-phases",
	}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	// All() is sorted.
	es := All()
	for i := 1; i < len(es); i++ {
		if es[i-1].ID >= es[i].ID {
			t.Fatal("All() not sorted")
		}
	}
}

func TestRenderIncludesPaperComparison(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "t",
		Headers: []string{"metric", "a"},
		Rows:    [][]string{{"m", "1"}},
		Paper:   [][]string{{"m", "2"}},
		Notes:   []string{"hello"},
	}
	out := tb.Render()
	for _, want := range []string{"[measured]", "[paper]", "note: hello", "metric"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1(t *testing.T) {
	tb, ok := Find("figure1")
	if !ok {
		t.Fatal("figure1 missing")
	}
	out := tb.Run(context.Background(), Quick)
	if len(out.Rows) < 8 {
		t.Fatalf("figure1 rows = %d", len(out.Rows))
	}
	if !strings.Contains(out.Render(), "52-bit virtual address") {
		t.Fatal("figure1 missing the virtual-address step")
	}
}

// TestChaosSoakExperiment runs the robustness experiment at Quick
// scale: it must produce one row per fault kind and a passing audit
// note (a failing audit would have panicked inside Run).
func TestChaosSoakExperiment(t *testing.T) {
	e, ok := Find("chaos-soak")
	if !ok {
		t.Fatal("chaos-soak missing")
	}
	tb := e.Run(context.Background(), Quick)
	if len(tb.Rows) != 8 {
		t.Fatalf("chaos-soak rows = %d, want one per fault kind (8)", len(tb.Rows))
	}
	out := tb.Render()
	for _, want := range []string{"tlb-flip", "pte-flip", "escalate", "sections passed"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if us(3240) != "3240 us" {
		t.Errorf("us(3240) = %q", us(3240))
	}
	if us(41.2) != "41.2 us" {
		t.Errorf("us(41.2) = %q", us(41.2))
	}
	if us(2.5) != "2.50 us" {
		t.Errorf("us(2.5) = %q", us(2.5))
	}
	if mbps(52.34) != "52.3 MB/s" {
		t.Errorf("mbps = %q", mbps(52.34))
	}
	if pct(0.85) != "85.0%" {
		t.Errorf("pct = %q", pct(0.85))
	}
	if ratio(80, 1) != "80.00x" || ratio(1, 0) != "inf" {
		t.Error("ratio format")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	register(Experiment{ID: "figure1"})
}

// TestExperimentDeterminism locks the whole pipeline: rendering an
// experiment twice yields byte-identical output.
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments twice")
	}
	for _, id := range []string{"figure1", "sec5.2-htab-util", "sec7-lazy"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		a := e.Run(context.Background(), Quick).Render()
		b := e.Run(context.Background(), Quick).Render()
		if a != b {
			t.Errorf("%s not deterministic", id)
		}
	}
}
