package report

import (
	"context"
	"fmt"
	"sort"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/kbuild"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
	"mmutricks/internal/telemetry"
)

func init() {
	register(Experiment{ID: "sec7-ondemand", Title: "On-demand zombie scanning — the design §7 rejected", Run: runSec7OnDemand})
	register(Experiment{ID: "sec10-futures", Title: "Locking the cache and cache preloads (§10 future work)", Run: runSec10})
	register(Experiment{ID: "profile", Title: "Where the cycles go: kernel-path profile of the compile (§4 methodology)", Run: runProfile})
}

// ---------------------------------------------------------------------
// §4's methodology as an artifact: a flat kernel profile of the
// kernel-compile workload under each configuration. This is the view
// the authors worked from ("detailed analysis of low level system
// performance"), regenerated.
// ---------------------------------------------------------------------

func runProfile(ctx context.Context, s Scale) *Table {
	cfg := kbuild.Default()
	cfg.Units = s.pick(4, 12)
	cfg.WorkPages = 320
	cfg.Passes = 2
	cfg.StrayRefs = 8
	run := func(kcfg kernel.Config) *telemetry.Phases {
		k := kernel.New(machine.New(clock.PPC603At180()), kcfg)
		k.EnableProfiling()
		kbuild.Run(k, cfg)
		mustConsistent(k)
		return k.Profile()
	}
	cfgs := []kernel.Config{kernel.Unoptimized(), kernel.Optimized()}
	var res [2]*telemetry.Phases
	RowSet(ctx, 2, func(i int) { res[i] = run(cfgs[i]) })
	unopt, opt := res[0], res[1]

	var rows [][]string
	for _, path := range kernel.Paths {
		rows = append(rows, []string{
			path.String(),
			pct(unopt.Fraction(path)),
			pct(opt.Fraction(path)),
		})
	}
	return &Table{
		ID: "profile", Title: "kernel-path cycle shares on the compile workload (603/180)",
		Headers: []string{"path", "unoptimized", "optimized"},
		Rows:    rows,
		Paper: [][]string{
			{"(no table — this regenerates the instrumented-kernel view the paper's process was built on: \"extensive use of quantitative measures and detailed analysis of low level system performance\")"},
		},
		Notes: []string{
			"idle share is I/O wait and scales with the fixed disk constant; the interesting movement is miss-handler and syscall share collapsing into user time",
		},
	}
}

// ---------------------------------------------------------------------
// §7 — the rejected on-demand reclaim design, measured: same mean cost,
// wildly inconsistent per-operation latency.
// ---------------------------------------------------------------------

// sec7LatencyProfile measures per-operation latency of a small
// page-fault burst while zombie pressure steadily refills the hash
// table between operations (the refill is a free white-box injection so
// it adds no cycles of its own). Under idle reclaim the background
// sweeps keep the table clean and every operation is uniform; under the
// rejected on-demand design the table periodically reaches scarcity and
// one unlucky operation eats a synchronous full-table sweep.
func sec7LatencyProfile(onDemand bool, rounds int) (mean, p99, worst float64, scans uint64) {
	cfg := kernel.Optimized()
	cfg.UseHTAB = true
	cfg.IdleReclaim = !onDemand
	cfg.OnDemandReclaim = onDemand
	k := kernel.New(machine.New(clock.PPC604At185()), cfg)
	img := k.LoadImage("churn", 8)
	worker := k.Spawn(img)
	k.Switch(worker)

	htab := k.M.MMU.HTAB
	ctxs := k.ContextAllocator()
	// replenish injects n zombie PTEs (a freshly retired context's
	// worth of translations) without charging cycles — it stands in
	// for other processes' churn happening elsewhere in time.
	replenish := func(n int) {
		for n > 0 {
			ctx, _ := ctxs.Alloc()
			vs := ctxs.VSIDs(ctx)
			ctxs.Retire(ctx)
			for page := 0; page < 64 && n > 0; page++ {
				ea := kernel.UserDataBase + arch.EffectiveAddr(page*arch.PageSize)
				htab.Insert(arch.VPNOf(vs[ea.SegIndex()], ea), arch.PFN(page), false, nil, k.ZombieVSID)
				n--
			}
		}
	}
	// Start near scarcity.
	for htab.Occupancy() < htab.Capacity()*97/100 {
		replenish(512)
	}

	var lat []float64
	var region arch.EffectiveAddr
	for i := 0; i < rounds; i++ {
		replenish(800)
		if !onDemand {
			k.RunIdleFor(25_000) // idle reclaim gets its usual slice
		}
		if i%60 == 0 {
			region = k.SysMmap(240)
		}
		start := k.M.Led.Now()
		k.UserTouchPages(region+arch.EffectiveAddr((i%60)*4*arch.PageSize), 4)
		lat = append(lat, k.M.Led.Micros(k.M.Led.Now()-start))
	}
	sort.Float64s(lat)
	var sum float64
	for _, v := range lat {
		sum += v
	}
	mean = sum / float64(len(lat))
	p99 = lat[len(lat)*99/100]
	worst = lat[len(lat)-1]
	mustConsistent(k)
	return mean, p99, worst, k.M.Mon.OnDemandScans
}

func runSec7OnDemand(ctx context.Context, s Scale) *Table {
	rounds := s.pick(150, 600)
	type prof struct {
		mean, p99, worst float64
		scans            uint64
	}
	var res [2]prof
	RowSet(ctx, 2, func(i int) {
		m, p, w, sc := sec7LatencyProfile(i == 1, rounds)
		res[i] = prof{m, p, w, sc}
	})
	im, i99, iw := res[0].mean, res[0].p99, res[0].worst
	om, o99, ow, scans := res[1].mean, res[1].p99, res[1].worst, res[1].scans
	return &Table{
		ID: "sec7-ondemand", Title: "per-operation latency: idle-task reclaim vs synchronous on-demand sweeps (604/185)",
		Headers: []string{"metric", "idle reclaim (shipped)", "on-demand sweep (rejected)", ""},
		Rows: [][]string{
			{"mean op latency", us(im), us(om), ""},
			{"p99 op latency", us(i99), us(o99), ""},
			{"worst op latency", us(iw), us(ow), ""},
			{"worst/mean", ratio(iw, im), ratio(ow, om), ""},
			{"synchronous sweeps taken", "0", fmt.Sprintf("%d", scans), ""},
		},
		Paper: [][]string{
			{"", "\"a nice balance ... decent usage ratio\"", "\"performance would be inconsistent if we had to occasionally scan the hash table\"", ""},
		},
		Notes: []string{
			"the paper gives no numbers for the rejected design; this experiment quantifies the inconsistency that motivated the idle-task approach",
			"shape target: comparable means, far worse tail for the on-demand design",
		},
	}
}

// ---------------------------------------------------------------------
// §10 — the future-work proposals, measured.
// ---------------------------------------------------------------------

func runSec10(ctx context.Context, s Scale) *Table {
	// §10.1 on the kernel compile: a cache lock makes even the §9
	// cached-clearing pathology harmless.
	cfg := kbuild.Default()
	cfg.Units = s.pick(6, 24)
	cfg.HotPages = 6
	cfg.WaitEvery = 10
	kb := func(lock bool) kbuild.Result {
		kcfg := kernel.Optimized()
		kcfg.UseHTAB = true
		kcfg.IdleClear = kernel.IdleClearCached
		kcfg.IdleCacheLock = lock
		k := kernel.New(machine.New(clock.PPC604At185()), kcfg)
		r := kbuild.Run(k, cfg)
		mustConsistent(k)
		return r
	}
	// §10.2 on a switch-heavy loop whose tasks storm the cache, so the
	// incoming task's state is always cold at the switch.
	sw := func(preload bool) float64 {
		kcfg := kernel.Optimized()
		kcfg.CachePreload = preload
		k := kernel.New(machine.New(clock.PPC604At185()), kcfg)
		img := k.LoadImage("storm", 4)
		a := k.Spawn(img)
		b := k.Spawn(img)
		storm := func() { k.UserTouch(kernel.UserDataBase+0x40000, 32*1024) }
		k.Switch(a)
		storm()
		k.Switch(b)
		storm()
		iters := s.pick(40, 200)
		var inSwitch clock.Cycles
		for i := 0; i < iters; i++ {
			t0 := k.M.Led.Now()
			k.Switch(a)
			inSwitch += k.M.Led.Now() - t0
			storm()
			t0 = k.M.Led.Now()
			k.Switch(b)
			inSwitch += k.M.Led.Now() - t0
			storm()
		}
		mustConsistent(k)
		return k.M.Led.Micros(inSwitch) / float64(2*iters)
	}
	// Both §10.1 runs and both §10.2 runs are mutually independent.
	var kbRes [2]kbuild.Result
	var swRes [2]float64
	RowSet(ctx, 4, func(i int) {
		if i < 2 {
			kbRes[i] = kb(i == 1)
		} else {
			swRes[i-2] = sw(i == 3)
		}
	})
	base, lock := kbRes[0], kbRes[1]
	plain, pre := swRes[0], swRes[1]

	return &Table{
		ID: "sec10-futures", Title: "the §10 proposals, measured (604/185)",
		Headers: []string{"experiment", "without", "with", "change"},
		Rows: [][]string{
			{"§10.1 idle cache lock: kernel compile w/ cached clearing (sim s)",
				fmt.Sprintf("%.4f", base.ComputeSeconds), fmt.Sprintf("%.4f", lock.ComputeSeconds),
				pct(1-lock.ComputeSeconds/base.ComputeSeconds) + " faster"},
			{"§10.2 switch-path preloads: cold context switch cost",
				us(plain), us(pre), pct(1-pre/plain) + " faster"},
		},
		Paper: [][]string{
			{"§10.1: \"not using the cache on certain data in critical sections ... can improve performance\"", "", "", ""},
			{"§10.2: \"significant gains with intelligent use of cache preloads in context switching and interrupt entry\"", "", "", ""},
		},
		Notes: []string{
			"the paper proposes but does not measure these; the lock neutralizes the §9 cached-clearing pollution, and preloads shave the cold-switch stalls",
			"preload gains are an upper bound: the model assumes perfect overlap of the dcbt fills",
		},
	}
}
