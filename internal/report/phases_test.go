package report

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestTelemetryPhasesGolden pins the rendered phase-breakdown table at
// Quick scale to a checked-in golden file: the phase vocabulary, the
// column layout, the cycle shares, and the reconciliation notes are all
// part of mmureport -all output and must only change deliberately
// (regenerate with `go test ./internal/report -run Golden -update`).
// Rendering through RowSet at -j 1 and -j 4 must also agree byte for
// byte — the telemetry ledger does not break harness determinism.
func TestTelemetryPhasesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the compile workload four times")
	}
	e, ok := Find("telemetry-phases")
	if !ok {
		t.Fatal("telemetry-phases missing")
	}
	SetParallelism(1)
	serial := e.Run(context.Background(), Quick).Render()
	SetParallelism(4)
	parallel := e.Run(context.Background(), Quick).Render()
	SetParallelism(1)
	if serial != parallel {
		t.Fatal("telemetry-phases output differs between -j 1 and -j 4")
	}

	golden := filepath.Join("testdata", "telemetry-phases.quick.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(serial), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if serial != string(want) {
		t.Errorf("telemetry-phases output drifted from %s (regenerate with -update if deliberate)\n--- got ---\n%s\n--- want ---\n%s",
			golden, serial, want)
	}
}
