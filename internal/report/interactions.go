package report

import (
	"context"
	"fmt"

	"mmutricks/internal/ablate"
	"mmutricks/internal/clock"
	"mmutricks/internal/kbuild"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
)

func init() {
	register(Experiment{ID: "interactions", Title: "How the optimizations combine (§4's non-additivity, §5.1's evaporation)", Run: runInteractions})
}

func runInteractions(ctx context.Context, s Scale) *Table {
	bcfg := kbuild.Default()
	bcfg.Units = s.pick(3, 8)
	bcfg.WorkPages = 320
	bcfg.Passes = s.pick(1, 2)
	bcfg.StrayRefs = 6
	metric := func(cfg kernel.Config) clock.Cycles {
		k := kernel.New(machine.New(clock.PPC603At180()), cfg)
		r := kbuild.Run(k, bcfg)
		return r.Cycles - r.IdleCycles
	}
	res := ablate.RunWith(metric, ablate.Knobs(), func(n int, fn func(int)) { RowSet(ctx, n, fn) })

	rows := [][]string{
		{"combined gain (all optimizations)", pct(res.CombinedGain), "", ""},
		{"sum of solo gains", pct(res.SumOfSolos), "", ""},
		{"non-additivity", fmt.Sprintf("%+.1f points", 100*(res.CombinedGain-res.SumOfSolos)), "", ""},
	}
	for _, r := range res.Rows {
		rows = append(rows, []string{
			r.Knob.Name + " (" + r.Knob.Ref + ")",
			pct(r.SoloGain), pct(r.MarginalGain), evaporation(r),
		})
	}
	return &Table{
		ID: "interactions", Title: "kernel-compile gains: each optimization alone vs its marginal value in the full stack (603/180)",
		Headers: []string{"measurement", "solo gain", "marginal gain", ""},
		Rows:    rows,
		Paper: [][]string{
			{"\"the end effect was not the sum off all the optimizations\" (§4)", "", "", ""},
			{"\"nearly all the measured performance improvements we found from using the BAT registers evaporated when TLB miss handling was optimized\" (§5.1)", "", "", ""},
		},
		Notes: []string{
			"solo = enabled alone on the unoptimized kernel; marginal = what it still buys inside the optimized kernel",
			"the BAT row reproduces §5.1's evaporation; knobs whose marginal exceeds their solo gain are the §4 surprises in the other direction",
		},
	}
}

func evaporation(r ablate.Row) string {
	switch {
	case r.SoloGain > 0.01 && r.MarginalGain < r.SoloGain/3:
		return "evaporated"
	case r.MarginalGain > 2*r.SoloGain && r.MarginalGain > 0.02:
		return "amplified"
	default:
		return ""
	}
}
