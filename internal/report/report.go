// Package report is the experiment harness: one registered experiment
// per table, figure and headline in-text result in the paper, each
// regenerating its numbers on the simulator and rendering them next to
// the values the paper reports.
package report

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Scale selects how long experiments run.
type Scale int

const (
	// Quick runs in seconds — used by tests and -quick.
	Quick Scale = iota
	// Full runs the sizes EXPERIMENTS.md records.
	Full
)

// pick returns q under Quick and f under Full.
func (s Scale) pick(q, f int) int {
	if s == Quick {
		return q
	}
	return f
}

// Table is one rendered experiment result.
type Table struct {
	ID    string
	Title string
	// Headers label the columns; Rows hold measured values, first cell
	// is the row label.
	Headers []string
	Rows    [][]string
	// Paper holds the values the paper reports in the same shape as
	// Rows (nil when the paper gives no directly comparable number).
	Paper [][]string
	// Notes carry shape conclusions and caveats.
	Notes []string
}

// Render formats the table (and the paper's values, when present) as
// aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n\n", t.ID, t.Title)
	b.WriteString(renderGrid(t.Headers, t.Rows, "measured"))
	if t.Paper != nil {
		b.WriteString("\n")
		b.WriteString(renderGrid(t.Headers, t.Paper, "paper"))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String()
}

func renderGrid(headers []string, rows [][]string, tag string) string {
	var b strings.Builder
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(&b, "[%s]\n", tag)
	for i, h := range headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteString("\n")
	for i := range headers {
		fmt.Fprintf(&b, "%s  ", strings.Repeat("-", widths[i]))
	}
	b.WriteString("\n")
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Experiment is one registered reproduction. Run receives the
// harness's context so cooperative cancellation reaches row
// granularity: run functions pass it to RowSet, which stops starting
// rows once the context is done. Run functions that never fan out may
// ignore it.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, s Scale) *Table
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("report: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment, sorted by ID.
func All() []Experiment {
	var es []Experiment
	for _, e := range registry { //mmutricks:nondet-ok collection order is erased by the sort on ID below
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
	return es
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// formatting helpers shared by the experiment files.

func us(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f us", v)
	case v >= 10:
		return fmt.Sprintf("%.1f us", v)
	default:
		return fmt.Sprintf("%.2f us", v)
	}
}

func mbps(v float64) string { return fmt.Sprintf("%.1f MB/s", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

func ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
