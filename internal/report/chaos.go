package report

import (
	"context"
	"fmt"

	"mmutricks/internal/chaos"
	"mmutricks/internal/faultinject"
)

func init() {
	register(Experiment{ID: "chaos-soak", Title: "fault-injection soak: every injected fault detected and repaired or escalated", Run: runChaosSoak})
}

// ---------------------------------------------------------------------
// The robustness story as an experiment: soak every workload under the
// deterministic fault injector and report, per fault kind, how many
// corruptions were applied and how the machine-check path disposed of
// each one. The chaos harness enforces the exact identities (applied ==
// repaired/escalated, sum == machine checks); this table is their
// rendered form. A failed audit panics so the runner surfaces it as a
// FAILED experiment rather than a quietly wrong table.
// ---------------------------------------------------------------------

func runChaosSoak(ctx context.Context, s Scale) *Table {
	rep, err := chaos.Run(ctx, chaos.Options{
		Workload: "all",
		CPU:      "604/185",
		Config:   "optimized",
		Iters:    s.pick(30, 150),
		Schedule: "seed=42 rate=1000ppm burst=1 mix=all",
	})
	if err != nil {
		panic(fmt.Sprintf("chaos-soak: %v", err))
	}

	// Aggregate the per-section tallies; the identities audited per
	// section also hold summed.
	applied := map[string]uint64{}
	skipped := map[string]uint64{}
	var mc, sectionsOK, dirty uint64
	for _, sec := range rep.Sections {
		for _, kc := range sec.Injected {
			applied[kc.Kind] += kc.Applied
			skipped[kc.Kind] += kc.Skipped
		}
		mc += sec.MachineChecks
		if sec.OK {
			sectionsOK++
		}
		if !sec.Consistent {
			dirty++
		}
	}
	if !rep.OK {
		for _, sec := range rep.Sections {
			if !sec.OK {
				panic(fmt.Sprintf("chaos-soak: section %s audit failed: %v", sec.Name, sec.Failures))
			}
		}
	}

	disposal := map[faultinject.Kind]string{
		faultinject.TLBFlip:       "repair: invalidate TLB entry, refetch on next use",
		faultinject.TLBSpurious:   "benign: lost entry reloads on miss (no MC raised)",
		faultinject.HTABFlip:      "repair: invalidate HTAB slot + shadow TLB entries",
		faultinject.HTABResurrect: "repair: invalidate HTAB slot + shadow TLB entries",
		faultinject.BATFlip:       "repair: rewrite all BATs from canonical config",
		faultinject.CacheFlip:     "repair: invalidate clean cache line",
		faultinject.PTEFlip:       "escalate: kill owning task, reap via wait",
		faultinject.SpuriousMC:    "sweep: full consistency check finds nothing",
	}
	var rows [][]string
	for k := faultinject.Kind(0); k < faultinject.NumKinds; k++ {
		name := k.String()
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", applied[name]),
			fmt.Sprintf("%d", skipped[name]),
			disposal[k],
		})
	}

	return &Table{
		ID: "chaos-soak", Title: "deterministic fault injection across all workloads (604/185, optimized kernel)",
		Headers: []string{"fault kind", "applied", "skipped", "disposal (audited exactly)"},
		Rows:    rows,
		Paper: [][]string{
			{"(no table — the paper reports no fault-recovery numbers; this experiment guards the kernel/hardware agreement its lazy-flush and HTAB tricks depend on)"},
		},
		Notes: []string{
			fmt.Sprintf("%d/%d sections passed the exact detect→repair audit; %d machine checks delivered; %d dirty post-run sweeps",
				sectionsOK, len(rep.Sections), mc, dirty),
			fmt.Sprintf("schedule %q; every section reseeded via DeriveSeed so the table is identical at any -j", rep.Schedule),
			"skipped counts faults withheld because the pending-MC queue was full (never applied unreported)",
			"the same soak is available as a CLI artifact: mmuchaos -workload all (see EXPERIMENTS.md)",
		},
	}
}
