package report

import (
	"context"
	"fmt"

	"mmutricks/internal/clock"
	"mmutricks/internal/kbuild"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
	"mmutricks/internal/telemetry"
)

func init() {
	register(Experiment{ID: "telemetry-phases", Title: "mmustat phase breakdown of the compile workload", Run: runTelemetryPhases})
}

// ---------------------------------------------------------------------
// The telemetry subsystem as an experiment: run the compile workload
// with the phase ledger enabled on both CPUs and report where every
// simulated cycle went, with the conservation identity and the
// phase-entry/counter reconciliation checked on the way out. This is
// the report-side view of what `mmustat record` + `phases` produce as
// a CLI artifact.
// ---------------------------------------------------------------------

type phaseRun struct {
	cycles  [telemetry.NumPhases]uint64
	enters  [telemetry.NumPhases]uint64
	total   uint64
	okRows  int
	badRows int
	samples int
	dropped uint64
}

func runTelemetryPhases(ctx context.Context, s Scale) *Table {
	cfg := kbuild.Default()
	cfg.Units = s.pick(2, 8)
	cfg.WorkPages = 320
	cfg.Passes = 2
	cfg.StrayRefs = 8

	models := []clock.CPUModel{clock.PPC603At133(), clock.PPC604At185()}
	var res [2]phaseRun
	RowSet(ctx, 2, func(i int) {
		m := machine.New(models[i])
		m.Ph.Enable(telemetry.Options{SampleInterval: 1 << 18})
		before := m.Mon.Snapshot()
		k := kernel.New(m, kernel.Optimized())
		kbuild.Run(k, cfg)
		// mustConsistent includes the phase-cycle conservation sweep:
		// every cycle of the run is attributed to exactly one phase.
		mustConsistent(k)
		m.Ph.Sync()
		delta := m.Mon.Delta(before)
		for _, ph := range telemetry.AllPhases {
			res[i].cycles[ph] = uint64(m.Ph.Cycles(ph))
			res[i].enters[ph] = m.Ph.Enters(ph)
			res[i].total += uint64(m.Ph.Cycles(ph))
		}
		for _, r := range telemetry.Reconcile(m.Ph, &delta) {
			if r.OK {
				res[i].okRows++
			} else {
				res[i].badRows++
			}
		}
		res[i].samples = len(m.Ph.Samples())
		res[i].dropped = m.Ph.Dropped()
	})
	r603, r604 := res[0], res[1]

	share := func(r phaseRun, ph telemetry.Phase) string {
		if r.total == 0 {
			return "-"
		}
		return pct(float64(r.cycles[ph]) / float64(r.total))
	}
	enters := func(r phaseRun, ph telemetry.Phase) string {
		if r.enters[ph] == 0 && r.cycles[ph] == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", r.enters[ph])
	}

	var rows [][]string
	for _, ph := range telemetry.AllPhases {
		if r603.cycles[ph] == 0 && r604.cycles[ph] == 0 {
			continue
		}
		rows = append(rows, []string{
			ph.String(), share(r603, ph), enters(r603, ph), share(r604, ph), enters(r604, ph),
		})
	}

	reconLine := func(name string, r phaseRun) string {
		status := fmt.Sprintf("%d identities OK", r.okRows)
		if r.badRows > 0 {
			status = fmt.Sprintf("%d identities OK, %d MISMATCHED", r.okRows, r.badRows)
		}
		return fmt.Sprintf("%s: %d cycles attributed (conservation exact), phase-entry reconciliation %s; %d samples taken, %d dropped",
			name, r.total, status, r.samples, r.dropped)
	}

	return &Table{
		ID: "telemetry-phases", Title: "phase cycle shares, instrumented kernel compile (optimized kernels)",
		Headers: []string{"phase", "603/133 share", "enters", "604/185 share", "enters"},
		Rows:    rows,
		Paper: [][]string{
			{"(no table — the paper's process ran on exactly this view; §4: \"extensive use of quantitative measures and detailed analysis of low level system performance\")"},
		},
		Notes: []string{
			reconLine("603/133", r603),
			reconLine("604/185", r604),
			"conservation is machine-checked: CheckConsistency fails if attributed phase cycles drift from the clock by even one cycle",
			"the same data is available offline: mmustat record/timeline/phases (see EXPERIMENTS.md)",
		},
	}
}
