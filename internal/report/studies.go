package report

import (
	"context"
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
	"mmutricks/internal/trace"
)

func init() {
	register(Experiment{ID: "tlb-reach", Title: "TLB reach under realistic access patterns (§2/§5.1's Talluri caveat)", Run: runTLBReach})
	register(Experiment{ID: "htab-size", Title: "Hash-table size vs hit rate (§7's RAM trade-off)", Run: runHTABSize})
	register(Experiment{ID: "swap-flush", Title: "Swap storms and per-page flush cost (§6.2 x §7)", Run: runSwapFlush})
}

// ---------------------------------------------------------------------
// Swap: a 32 MB machine thrashes; every page-out must flush its
// translation. On a hash-table kernel that flush is the up-to-16-access
// search of §7; the no-htab 603 (§6.2) pays only a tlbie. Swap storms
// are therefore another place "improving hash tables away" shows up.
// ---------------------------------------------------------------------

func runSwapFlush(ctx context.Context, s Scale) *Table {
	pages := s.pick(8200, 8800)
	passes := s.pick(2, 3)
	run := func(useHtab bool) (perPage float64, outs, searches uint64) {
		cfg := kernel.Optimized()
		cfg.UseHTAB = useHtab
		k := kernel.New(machine.New(clock.PPC603At180()), cfg)
		k.Spawn(k.LoadImage("thrash", 4))
		k.SysBrk(pages + 64)
		k.UserTouchPages(kernel.UserDataBase, pages)
		before := k.M.Mon.Snapshot()
		start := k.M.Led.Now()
		for p := 0; p < passes; p++ {
			k.UserTouchPages(kernel.UserDataBase, pages)
		}
		d := k.M.Mon.Delta(before)
		perPage = float64(k.M.Led.Now()-start) / float64(passes*pages)
		mustConsistent(k)
		return perPage, d.SwapOuts, d.HTABFlushSearches
	}
	type sfRes struct {
		perPage        float64
		outs, searches uint64
	}
	var rs [2]sfRes
	RowSet(ctx, 2, func(i int) {
		pp, o, se := run(i == 0)
		rs[i] = sfRes{pp, o, se}
	})
	htabPP, htabOuts, htabSearches := rs[0].perPage, rs[0].outs, rs[0].searches
	noPP, noOuts, noSearches := rs[1].perPage, rs[1].outs, rs[1].searches
	return &Table{
		ID: "swap-flush", Title: "thrashing a 32 MB 603: page-out flush cost with and without the hash table",
		Headers: []string{"metric", "hash-table kernel", "no-htab kernel (§6.2)", ""},
		Rows: [][]string{
			{"cycles per referenced page", fmt.Sprintf("%.0f", htabPP), fmt.Sprintf("%.0f", noPP), ""},
			{"pages swapped out", fmt.Sprintf("%d", htabOuts), fmt.Sprintf("%d", noOuts), ""},
			{"hash-table flush search loads", fmt.Sprintf("%d", htabSearches), fmt.Sprintf("%d", noSearches), ""},
		},
		Paper: [][]string{
			{"(no table — composes §6.2's no-htab kernel with §7's flush-cost analysis under memory pressure)"},
		},
		Notes: []string{
			"swap device latency is a fixed simulation constant, identical in both columns; the delta is translation maintenance",
			"shape target: the no-htab kernel does zero hash-table searches per page-out and is never slower",
		},
	}
}

// ---------------------------------------------------------------------
// TLB reach: §5.1 admits the LmBench-style benchmarks "do not represent
// applications that really stress TLB capacity" (citing Talluri). This
// study runs trace-driven working sets across the reach cliff on both
// CPUs with the optimized kernel.
// ---------------------------------------------------------------------

func runTLBReach(ctx context.Context, s Scale) *Table {
	refs := s.pick(30_000, 120_000)
	sizes := []int{64, 128, 256, 512, 1024}
	gens := func(pages int) []trace.Generator {
		base := kernel.UserMmapBase
		return []trace.Generator{
			trace.NewSequential(base, pages),
			trace.NewWorkingSet(base, pages, pages/8+1, 90, 1999),
			trace.NewPointerChase(base, pages, 1999),
			trace.NewZipfian(base, max(pages, 100), 1999),
		}
	}

	genNames := []string{"sequential", "working-set 90/10", "pointer-chase", "zipfian"}

	// drive issues n references from g, consuming whole runs when the
	// generator can describe its stream that way.
	drive := func(k *kernel.Kernel, g trace.Generator, n int) {
		if rg, ok := g.(trace.RunGenerator); ok {
			for done := 0; done < n; {
				ea, cnt, stride := rg.NextRun(n - done)
				k.UserRefRun(ea, cnt, stride, false)
				done += cnt
			}
			return
		}
		for i := 0; i < n; i++ {
			k.UserRef(g.Next(), false)
		}
	}

	run := func(model clock.CPUModel, g trace.Generator, pages int) (missRate float64, nsPerRef float64) {
		k := kernel.New(machine.New(model), kernel.Optimized())
		img := k.LoadImage("trace", 4)
		k.Spawn(img)
		k.SysMmap(max(pages, 100))
		// Fault everything in and warm up.
		k.UserTouchPages(kernel.UserMmapBase, max(pages, 100))
		drive(k, g, refs/10)
		before := k.M.Mon.Snapshot()
		start := k.M.Led.Now()
		drive(k, g, refs)
		d := k.M.Mon.Delta(before)
		// A reference that misses is retried after the reload, which
		// shows up as a second TLB event (a hit on the 603, another
		// miss resolved by the hardware walk on the 604); count misses
		// per original reference.
		misses := d.TLBMisses - d.HashMissFaults
		cyc := float64(k.M.Led.Now()-start) / float64(refs)
		return float64(misses) / float64(refs), cyc
	}

	headers := []string{"pattern / pages"}
	for _, p := range sizes {
		headers = append(headers, fmt.Sprintf("%d pg", p))
	}
	// Every (model, pattern, size) cell is an independent simulation;
	// flatten them for the row-level pool and reassemble by index.
	models := []clock.CPUModel{clock.PPC603At180(), clock.PPC604At185()}
	type cell struct{ miss, cyc float64 }
	cells := make([]cell, len(models)*len(genNames)*len(sizes))
	RowSet(ctx, len(cells), func(idx int) {
		mi := idx / (len(genNames) * len(sizes))
		gi := idx / len(sizes) % len(genNames)
		pages := sizes[idx%len(sizes)]
		miss, cyc := run(models[mi], gens(pages)[gi], pages)
		cells[idx] = cell{miss, cyc}
	})
	var rows [][]string
	for mi := range models {
		for gi := range genNames {
			row := []string{fmt.Sprintf("%s %s", models[mi].Name, genNames[gi])}
			for si := range sizes {
				c := cells[(mi*len(genNames)+gi)*len(sizes)+si]
				row = append(row, fmt.Sprintf("%.1f%% (%.0fc)", 100*c.miss, c.cyc))
			}
			rows = append(rows, row)
		}
	}
	return &Table{
		ID: "tlb-reach", Title: "TLB miss rate (and cycles/reference) vs working-set size",
		Headers: headers,
		Rows:    rows,
		Paper: [][]string{
			{"(no table — §5.1 flags the gap: \"it's quite possible that our benchmarks do not represent applications that really stress TLB capacity\")"},
		},
		Notes: []string{
			"reach cliff targets: 128 pages (512 KB) on the 603's 128-entry TLB, 256 pages (1 MB) on the 604's 256 entries",
			"sequential and pointer-chase walks fall off the cliff at exactly TLB capacity; skewed patterns degrade gracefully",
		},
	}
}

// ---------------------------------------------------------------------
// Hash-table size: §7 — "we could have decreased the size of the hash
// table and free RAM for use by the system but ... we decided to keep
// the hash table size fixed to make comparisons more meaningful." This
// is the sweep they skipped.
// ---------------------------------------------------------------------

func runHTABSize(ctx context.Context, s Scale) *Table {
	rounds := s.pick(40, 160)
	run := func(groups int) (hit float64, evict float64, occPct float64, ramKB int, seconds float64) {
		cfg := kernel.Optimized()
		cfg.UseHTAB = true
		k := kernel.New(machine.NewWithOptions(clock.PPC604At185(), machine.Options{HTABGroups: groups}), cfg)
		img := k.LoadImage("churn", 8)
		tasks := make([]*kernel.Task, 6)
		for i := range tasks {
			tasks[i] = k.Spawn(img)
		}
		churn := func(n int) {
			for r := 0; r < n; r++ {
				for _, t := range tasks {
					k.Switch(t)
					if r%2 == 1 {
						k.Exec(img)
					}
					k.UserTouchPages(kernel.UserDataBase, 320)
				}
				k.RunIdleFor(20_000)
			}
		}
		churn(rounds / 2) // steady state
		before := k.M.Mon.Snapshot()
		start := k.M.Led.Now()
		churn(rounds / 2)
		d := k.M.Mon.Delta(before)
		htab := k.M.MMU.HTAB
		mustConsistent(k)
		return d.HTABHitRate(), d.EvictRatio(),
			float64(htab.Occupancy()) / float64(htab.Capacity()),
			groups * arch.PTEGSize * arch.PTEBytes / 1024,
			k.M.Led.Seconds(k.M.Led.Now() - start)
	}
	sweep := []int{256, 512, 1024, 2048, 4096}
	rows := make([][]string, len(sweep))
	RowSet(ctx, len(sweep), func(i int) {
		groups := sweep[i]
		hit, evict, occ, ramKB, secs := run(groups)
		label := fmt.Sprintf("%d PTEs (%d KB)", groups*arch.PTEGSize, ramKB)
		if groups == 2048 {
			label += " [paper's]"
		}
		rows[i] = []string{
			label, pct(hit), pct(evict), pct(occ), fmt.Sprintf("%.4f", secs),
		}
	})
	return &Table{
		ID: "htab-size", Title: "hash-table size sweep under steady context churn (604/185)",
		Headers: []string{"table size", "hash hit rate", "evict ratio", "occupancy", "workload (sim s)"},
		Rows:    rows,
		Paper: [][]string{
			{"16384 PTEs (128 KB)", "85-98%", ">90% -> ~30% with reclaim", "600-2200 live PTEs", "(fixed for comparability)"},
		},
		Notes: []string{
			"the paper kept 16384 PTEs fixed; this sweep answers its what-if: halving the table twice costs hit rate and time, doubling it buys little",
		},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
