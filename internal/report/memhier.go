package report

import (
	"context"
	"fmt"

	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
	"mmutricks/internal/lmbench"
	"mmutricks/internal/machine"
)

func init() {
	register(Experiment{ID: "mem-hierarchy", Title: "Memory-hierarchy curves and the §9 bzero design space", Run: runMemHier})
}

func runMemHier(ctx context.Context, s Scale) *Table {
	refs := s.pick(3000, 12000)
	sizes := []int{8 << 10, 16 << 10, 32 << 10, 128 << 10, 512 << 10, 2 << 20}

	// The §9 bzero comparison at the 604.
	bw := func(mode lmbench.BzeroMode) float64 {
		suite := lmbench.New(kernel.New(machine.New(clock.PPC604At185()), kernel.Optimized()))
		return suite.BzeroBandwidth(64<<10, s.pick(4, 16), mode).MBps
	}

	// Every latency cell and each bandwidth run is its own fresh kernel;
	// flatten them all for the row-level pool.
	models := []clock.CPUModel{clock.PPC603At180(), clock.PPC604At185()}
	latCells := make([]string, len(models)*len(sizes))
	var bws [3]float64
	RowSet(ctx, len(latCells)+3, func(idx int) {
		switch {
		case idx < len(latCells):
			model := models[idx/len(sizes)]
			size := sizes[idx%len(sizes)]
			suite := lmbench.New(kernel.New(machine.New(model), kernel.Optimized()))
			latCells[idx] = fmt.Sprintf("%.1fc", suite.MemReadLatency(size, refs))
		case idx == len(latCells):
			bws[0] = bw(lmbench.BzeroStores)
		case idx == len(latCells)+1:
			bws[1] = bw(lmbench.BzeroDCBZ)
		default:
			suite := lmbench.New(kernel.New(machine.New(clock.PPC604At185()), kernel.Optimized()))
			bws[2] = suite.BcopyBandwidth(64<<10, s.pick(4, 16)).MBps
		}
	})
	stores, dcbz, bcopy := bws[0], bws[1], bws[2]

	headers := []string{"metric"}
	for _, size := range sizes {
		headers = append(headers, fmt.Sprintf("%dK", size>>10))
	}
	var rows [][]string
	for mi, model := range models {
		row := []string{"load latency, " + model.Name}
		row = append(row, latCells[mi*len(sizes):(mi+1)*len(sizes)]...)
		rows = append(rows, row)
	}

	rows = append(rows,
		[]string{"bzero 64K, stores (shipped)", mbps(stores)},
		[]string{"bzero 64K, dcbz (avoided, §9)", mbps(dcbz)},
		[]string{"bcopy 64K", mbps(bcopy)},
	)
	return &Table{
		ID: "mem-hierarchy", Title: "lat_mem_rd-style latency curve and bw_mem-style bandwidths",
		Headers: headers,
		Rows:    rows,
		Paper: [][]string{
			{"(no table — the latency curve locates the L1 and TLB cliffs the paper's costs rest on; §9: \"we did not use the PowerPC instruction that clears entire cache lines at a time when we implemented bzero()\")"},
		},
		Notes: []string{
			"expected cliffs: L1 at 16K (603) / 32K (604); TLB reach at 512K (603) / 1M (604)",
			"dcbz clears faster by skipping the line fills — precisely why its pollution is total (§9)",
		},
	}
}
