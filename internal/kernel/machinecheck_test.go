package kernel

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/faultinject"
	"mmutricks/internal/hwmon"
	"mmutricks/internal/machine"
)

// bootInjected builds a kernel with a fault injector attached. The
// schedule's rate is zero, so nothing fires on its own: tests apply
// corruption by hand (through the same mechanisms the injection sites
// use) and then deliver the machine checks with DrainMachineChecks.
func bootInjected(t *testing.T, model clock.CPUModel, cfg Config) (*Kernel, *faultinject.Injector) {
	t.Helper()
	inj := faultinject.New(faultinject.Schedule{Seed: 12345})
	k := New(machine.NewWithOptions(model, machine.Options{Injector: inj}), cfg)
	k.Spawn(k.LoadImage("test", 8))
	return k, inj
}

// warmUp establishes TLB, HTAB and cache state to corrupt.
func warmUp(k *Kernel) {
	k.UserRun(0, 400)
	k.UserTouchPages(UserDataBase, 16)
	k.UserTouch(UserDataBase, 4096)
}

// TestMCRepairMatrix is the corruption matrix: for every repairable
// fault kind, corrupt the resource, check that the consistency sweep
// detects the poison where the invariants can see it, deliver the
// machine check, and verify the repair counter moved and the post-repair
// sweep is clean.
func TestMCRepairMatrix(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
		// corrupt applies the fault and pushes its error report,
		// returning the injected kind and whether the consistency sweep
		// must detect the poison before repair.
		corrupt func(t *testing.T, k *Kernel, inj *faultinject.Injector) (faultinject.Kind, bool)
		counter func(c *hwmon.Counters) uint64
		post    func(t *testing.T, k *Kernel)
	}{
		{
			name: "tlb-flip",
			cfg:  Unoptimized,
			corrupt: func(t *testing.T, k *Kernel, inj *faultinject.Injector) (faultinject.Kind, bool) {
				victim, ok := k.M.MMU.TLB.CorruptEntry(inj.Rand(), 0)
				if !ok {
					t.Fatal("no valid TLB entry to corrupt")
				}
				inj.Push(faultinject.Pending{Cause: faultinject.CauseTLBParity, VPN: victim})
				return faultinject.TLBFlip, true
			},
			counter: func(c *hwmon.Counters) uint64 { return c.MCRepairsTLB },
		},
		{
			name: "htab-flip",
			cfg:  Unoptimized,
			corrupt: func(t *testing.T, k *Kernel, inj *faultinject.Injector) (faultinject.Kind, bool) {
				g, s, victim, ok := k.M.MMU.HTAB.CorruptPTE(inj.Rand(), 0)
				if !ok {
					t.Fatal("no valid HTAB PTE to corrupt")
				}
				inj.Push(faultinject.Pending{
					Cause: faultinject.CauseHTABECC,
					Addr:  k.M.MMU.HTAB.EntryAddr(g, s),
					VPN:   victim,
				})
				return faultinject.HTABFlip, true
			},
			counter: func(c *hwmon.Counters) uint64 { return c.MCRepairsHTAB },
		},
		{
			name: "htab-resurrect",
			cfg:  Unoptimized,
			corrupt: func(t *testing.T, k *Kernel, inj *faultinject.Injector) (faultinject.Kind, bool) {
				// Unmap a touched region: eager flushing invalidates the
				// HTAB slots in place, leaving stale tags to resurrect.
				addr := k.SysMmap(8)
				k.UserTouchPages(addr, 8)
				k.SysMunmap(addr, 8)
				g, s, victim, ok := k.M.MMU.HTAB.ResurrectPTE(inj.Rand(), 0)
				if !ok {
					t.Fatal("no stale HTAB slot to resurrect")
				}
				inj.Push(faultinject.Pending{
					Cause: faultinject.CauseHTABECC,
					Addr:  k.M.MMU.HTAB.EntryAddr(g, s),
					VPN:   victim,
				})
				return faultinject.HTABResurrect, true
			},
			counter: func(c *hwmon.Counters) uint64 { return c.MCRepairsHTAB },
		},
		{
			name: "bat-flip",
			cfg: func() Config {
				cfg := Unoptimized()
				cfg.KernelBAT = true
				return cfg
			},
			corrupt: func(t *testing.T, k *Kernel, inj *faultinject.Injector) (faultinject.Kind, bool) {
				idx, ok := k.M.MMU.DBAT.CorruptPhys(inj.Rand())
				if !ok {
					t.Fatal("no valid BAT register to corrupt")
				}
				if k.M.MMU.DBAT.Get(idx).Phys == 0 {
					t.Fatal("corruption did not move the BAT physical base")
				}
				inj.Push(faultinject.Pending{Cause: faultinject.CauseBATParity, Addr: arch.PhysAddr(idx)})
				// The consistency invariants do not cover BAT registers —
				// detection is the parity report itself.
				return faultinject.BATFlip, false
			},
			counter: func(c *hwmon.Counters) uint64 { return c.MCRepairsBAT },
			post: func(t *testing.T, k *Kernel) {
				ibat, dbat := k.canonicalBATs()
				for i := 0; i < len(dbat); i++ {
					if k.M.MMU.DBAT.Get(i) != dbat[i] || k.M.MMU.IBAT.Get(i) != ibat[i] {
						t.Fatalf("BAT %d not restored to canonical contents", i)
					}
				}
			},
		},
		{
			name: "cache-flip",
			cfg:  Unoptimized,
			corrupt: func(t *testing.T, k *Kernel, inj *faultinject.Injector) (faultinject.Kind, bool) {
				victim, ok := k.M.DCache.CorruptCleanLine(inj.Rand(), 0)
				if !ok {
					t.Fatal("no clean D-cache line to corrupt")
				}
				inj.Push(faultinject.Pending{Cause: faultinject.CauseCacheParity, Addr: victim})
				return faultinject.CacheFlip, false
			},
			counter: func(c *hwmon.Counters) uint64 { return c.MCRepairsCache },
		},
		{
			name: "spurious-mc",
			cfg:  Unoptimized,
			corrupt: func(t *testing.T, k *Kernel, inj *faultinject.Injector) (faultinject.Kind, bool) {
				inj.Push(faultinject.Pending{Cause: faultinject.CauseSpurious, Addr: 0x1234})
				return faultinject.SpuriousMC, false
			},
			counter: func(c *hwmon.Counters) uint64 { return c.MCSpurious },
		},
	}

	for _, model := range []clock.CPUModel{clock.PPC603At180(), clock.PPC604At185()} {
		for _, tc := range cases {
			t.Run(model.Name+"/"+tc.name, func(t *testing.T) {
				k, inj := bootInjected(t, model, tc.cfg())
				warmUp(k)
				if err := k.CheckConsistency(); err != nil {
					t.Fatalf("pre-corruption sweep: %v", err)
				}

				kind, detectable := tc.corrupt(t, k, inj)
				inj.NoteApplied(kind)
				if detectable {
					if err := k.CheckConsistency(); err == nil {
						t.Fatalf("%v poison not detected by the consistency sweep", kind)
					}
				}

				k.DrainMachineChecks()

				if got := tc.counter(k.M.Mon); got != 1 {
					t.Fatalf("repair counter = %d, want 1", got)
				}
				if k.M.Mon.MachineChecks != 1 {
					t.Fatalf("MachineChecks = %d, want 1", k.M.Mon.MachineChecks)
				}
				if err := k.CheckConsistency(); err != nil {
					t.Fatalf("post-repair sweep: %v", err)
				}
				if tc.post != nil {
					tc.post(t, k)
				}
			})
		}
	}
}

// TestMCEscalateKillsOwner proves the unrepairable path: page-table ECC
// poison escalates to killing the owning task, after which the system
// is consistent and the victim is reapable.
func TestMCEscalateKillsOwner(t *testing.T) {
	k, inj := bootInjected(t, clock.PPC604At185(), Unoptimized())
	runner := k.Current()
	victim := k.Spawn(k.LoadImage("victim", 4))
	k.Switch(victim)
	k.UserTouchPages(UserDataBase, 8)
	k.Switch(runner)
	warmUp(k)

	ea, ok := victim.PT.PickPresent(inj.Rand(), arch.KernelBase)
	if !ok {
		t.Fatal("victim has no present page to corrupt")
	}
	pteAddr, ok := victim.PT.CorruptRPN(ea, 1)
	if !ok {
		t.Fatal("CorruptRPN failed on a present page")
	}
	inj.Push(faultinject.Pending{
		Cause: faultinject.CausePTEECC,
		Addr:  pteAddr,
		PID:   victim.PID,
		EA:    ea,
	})
	inj.NoteApplied(faultinject.PTEFlip)

	k.DrainMachineChecks()

	if k.M.Mon.MCEscalations != 1 {
		t.Fatalf("MCEscalations = %d, want 1", k.M.Mon.MCEscalations)
	}
	if victim.State != TaskZombie {
		t.Fatal("victim task not killed by escalation")
	}
	if k.Current() != runner {
		t.Fatal("escalation must not disturb the current task")
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatalf("post-escalation sweep: %v", err)
	}
	k.Wait(victim)
	if _, ok := k.Task(victim.PID); ok {
		t.Fatal("killed task not reapable")
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatalf("post-reap sweep: %v", err)
	}
}

// TestFaultTickSoak arms the injector over a mixed workload and then
// audits the exact identities the design promises: every applied
// MC-raising fault produced exactly one machine check, and each cause
// incremented exactly its own outcome counter.
func TestFaultTickSoak(t *testing.T) {
	for _, model := range []clock.CPUModel{clock.PPC603At180(), clock.PPC604At185()} {
		t.Run(model.Name, func(t *testing.T) {
			sched := faultinject.DefaultSchedule(99)
			sched.RatePPM = 20000 // 2% of polls: a dense soak
			inj := faultinject.New(sched)
			cfg := Optimized()
			cfg.KernelBAT = true
			k := New(machine.NewWithOptions(model, machine.Options{Injector: inj}), cfg)
			img := k.LoadImage("soak", 8)
			runner := k.Spawn(img)
			other := k.Spawn(img)
			k.Switch(other)
			k.UserTouchPages(UserDataBase, 8)
			k.Switch(runner)

			inj.Arm()
			for i := 0; i < 40; i++ {
				k.UserRun(i%8, 200)
				k.UserTouchPages(UserDataBase, 8)
				addr := k.SysMmap(4)
				k.UserTouchPages(addr, 4)
				k.SysMunmap(addr, 4)
				if o, ok := k.Task(other.PID); ok && o.State == TaskRunnable {
					k.Switch(o)
					k.UserTouch(UserDataBase, 256)
					k.Switch(runner)
				}
			}
			inj.Disarm()
			k.DrainMachineChecks()

			applied := inj.Applied()
			c := k.M.Mon
			idents := []struct {
				name string
				got  uint64
				want uint64
			}{
				{"tlb repairs", c.MCRepairsTLB, applied[faultinject.TLBFlip]},
				{"htab repairs", c.MCRepairsHTAB, applied[faultinject.HTABFlip] + applied[faultinject.HTABResurrect]},
				{"bat repairs", c.MCRepairsBAT, applied[faultinject.BATFlip]},
				{"cache repairs", c.MCRepairsCache, applied[faultinject.CacheFlip]},
				{"escalations", c.MCEscalations, applied[faultinject.PTEFlip]},
				{"spurious", c.MCSpurious, applied[faultinject.SpuriousMC]},
			}
			var raised uint64
			for _, id := range idents {
				if id.got != id.want {
					t.Errorf("%s = %d, want %d (exact identity)", id.name, id.got, id.want)
				}
				raised += id.want
			}
			if c.MachineChecks != raised {
				t.Errorf("MachineChecks = %d, want %d (sum of MC-raising applied faults)", c.MachineChecks, raised)
			}
			if c.MachineChecks == 0 {
				t.Error("soak injected no machine checks; raise the rate")
			}
			if err := k.CheckConsistency(); err != nil {
				t.Fatalf("post-soak sweep: %v", err)
			}
		})
	}
}

// TestInjectorDisabledNeutral proves the zero-injection path changes
// nothing: a machine with a disarmed injector attached produces the
// same cycle count and the same hardware counters as a machine without
// the subsystem at all.
func TestInjectorDisabledNeutral(t *testing.T) {
	run := func(m *machine.Machine) (clock.Cycles, hwmon.Counters) {
		k := New(m, Optimized())
		k.Spawn(k.LoadImage("neutral", 8))
		warmUp(k)
		addr := k.SysMmap(32)
		k.UserTouchPages(addr, 32)
		k.SysMunmap(addr, 32)
		return k.M.Led.Now(), *k.M.Mon
	}
	model := clock.PPC603At180()
	plainCycles, plainCounters := run(machine.New(model))
	inj := faultinject.New(faultinject.DefaultSchedule(7)) // never armed
	injCycles, injCounters := run(machine.NewWithOptions(model, machine.Options{Injector: inj}))
	if plainCycles != injCycles {
		t.Errorf("disarmed injector changed cycles: %d vs %d", plainCycles, injCycles)
	}
	if plainCounters != injCounters {
		t.Errorf("disarmed injector changed counters:\nplain: %+v\nwith:  %+v", plainCounters, injCounters)
	}
	if a := inj.Applied(); a != ([faultinject.NumKinds]uint64{}) {
		t.Errorf("disarmed injector applied faults: %v", a)
	}
}

// TestArmedAccessPathNoAllocs proves the armed injection path allocates
// nothing: corruption, reporting and skipping all run on fixed arrays.
func TestArmedAccessPathNoAllocs(t *testing.T) {
	sched := faultinject.DefaultSchedule(3)
	sched.RatePPM = 500000 // fire on half of all polls
	inj := faultinject.New(sched)
	m := machine.NewWithOptions(clock.PPC604At185(), machine.Options{Injector: inj})
	inj.Arm()
	// Warm the line so the access path is pure hit + injection work.
	m.MemAccess(0x3000, cache.ClassKernelData, false, false)
	avg := testing.AllocsPerRun(2000, func() {
		m.MemAccess(0x3000, cache.ClassKernelData, false, false)
	})
	if avg != 0 {
		t.Fatalf("armed MemAccess allocates %.2f objects per call", avg)
	}
}
