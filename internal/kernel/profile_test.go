package kernel

import (
	"strings"
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
)

func TestProfilerOffByDefault(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	if k.Profile() != nil {
		t.Fatal("profiler should be nil until enabled")
	}
	k.SysNull() // must not crash with profiling off
}

func TestProfilerAttributesPaths(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Unoptimized())
	other := k.Fork()
	k.EnableProfiling()

	for i := 0; i < 20; i++ {
		k.SysNull()
	}
	k.UserTouchPages(UserDataBase+0x100000, 32) // faults + reloads
	k.Switch(other)
	k.Switch(k.tasks[1])
	k.RunIdleFor(20_000)
	a := k.SysMmap(64)
	k.SysMunmap(a, 64) // eager flushing

	p := k.Profile()
	for _, path := range []Path{PathSyscall, PathMiss, PathFault, PathSched, PathIdle, PathFlush} {
		if p.Cycles(path) == 0 {
			t.Errorf("no cycles attributed to %v", path)
		}
	}
	if p.Cycles(PathUser) == 0 {
		t.Error("no user cycles")
	}
	// Fractions sum to ~1.
	var sum float64
	for _, path := range Paths {
		sum += p.Fraction(path)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %f", sum)
	}
	if !strings.Contains(p.String(), "tlb-miss") {
		t.Error("String() missing path names")
	}
	if err := p.CheckConservation(); err != nil {
		t.Errorf("conservation after a mixed workload: %v", err)
	}
	if err := k.CheckConsistency(); err != nil {
		t.Errorf("consistency with profiling on: %v", err)
	}
}

func TestProfilerNesting(t *testing.T) {
	// A page fault taken inside a syscall's copy path must be charged
	// to the fault, not the syscall.
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	p := k.SysPipe()
	k.EnableProfiling()
	// The read lands in untouched user pages: the copy faults them in.
	k.SysPipeWrite(p, UserDataBase, 256)
	k.SysPipeRead(p, UserDataBase+0x3000000%0x100000+0x200000, 256)
	prof := k.Profile()
	if prof.Cycles(PathFault) == 0 {
		t.Fatal("nested fault not attributed")
	}
	if prof.Cycles(PathSyscall) == 0 {
		t.Fatal("syscall cycles missing")
	}
}

// TestProfilerShowsOptimizationShift is the methodology payoff: the
// unoptimized kernel spends a large share of a reload-heavy workload in
// miss handling; the optimized kernel collapses that share.
func TestProfilerShowsOptimizationShift(t *testing.T) {
	missShare := func(cfg Config) float64 {
		k, _ := bootTask(t, clock.PPC603At180(), cfg)
		addr := k.SysMmap(512)
		k.UserTouchPages(addr, 512)
		k.EnableProfiling()
		for i := 0; i < 4; i++ {
			k.UserTouchPages(addr, 512)
			k.UserRun(0, 2000)
		}
		return k.Profile().Fraction(PathMiss)
	}
	unopt := missShare(Unoptimized())
	opt := missShare(Optimized())
	if unopt < 0.5 {
		t.Fatalf("unoptimized miss share only %.2f — workload not reload-bound", unopt)
	}
	if opt >= unopt-0.15 {
		t.Fatalf("optimized miss share %.2f should sit well below unoptimized %.2f", opt, unopt)
	}
	// The kernel-time-to-user-time ratio is the per-miss cost signal;
	// the fast handlers should cut it by at least 3x.
	ratio := func(share float64) float64 { return share / (1 - share) }
	if ratio(opt) >= ratio(unopt)/3 {
		t.Fatalf("per-miss cost ratio: opt %.2f vs unopt %.2f — want >=3x improvement",
			ratio(opt), ratio(unopt))
	}
	_ = arch.PageSize
}
