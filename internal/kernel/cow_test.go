package kernel

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
)

func cowConfig() Config {
	c := Optimized()
	c.COWFork = true
	return c
}

func TestCOWForkSharesThenBreaks(t *testing.T) {
	k, parent := bootTask(t, clock.PPC604At185(), cowConfig())
	k.UserTouch(UserDataBase, arch.PageSize) // fault one heap page (a write happens)
	pe, _ := parent.PT.Lookup(UserDataBase)

	child := k.Fork()
	ce, ok := child.PT.Lookup(UserDataBase)
	if !ok {
		t.Fatal("child missing COW mapping")
	}
	if ce.RPN != pe.RPN {
		t.Fatal("COW fork should share the frame")
	}
	if !parent.isCOW(UserDataBase.PageNumber()) || !child.isCOW(UserDataBase.PageNumber()) {
		t.Fatal("both sides should be marked COW")
	}

	// Child reads: still shared (UserTouchPages issues loads only).
	k.Switch(child)
	k.UserTouchPages(UserDataBase, 1)
	if ce2, _ := child.PT.Lookup(UserDataBase); ce2.RPN != pe.RPN {
		t.Fatal("a read must not break sharing")
	}

	// Child writes: the page is copied for the child.
	before := k.M.Mon.Snapshot()
	k.UserTouch(UserDataBase, 256) // includes a store
	d := k.M.Mon.Delta(before)
	if d.MinorFaults == 0 {
		t.Fatal("COW break should count a fault")
	}
	ce3, _ := child.PT.Lookup(UserDataBase)
	if ce3.RPN == pe.RPN {
		t.Fatal("write did not break sharing")
	}
	if !child.owns(ce3.RPN) {
		t.Fatal("child must own its copy")
	}
	if child.isCOW(UserDataBase.PageNumber()) {
		t.Fatal("child page still marked COW after break")
	}

	// Parent writes: it is the last sharer, so it reclaims the frame
	// without copying.
	k.Switch(parent)
	free0 := k.M.Mem.FreeFrames()
	k.UserTouch(UserDataBase, 256)
	if k.M.Mem.FreeFrames() != free0 {
		t.Fatal("last-sharer break must not allocate")
	}
	if !parent.owns(pe.RPN) {
		t.Fatal("parent should own the frame exclusively again")
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCOWForkIsCheaperThanEagerCopy(t *testing.T) {
	cost := func(cow bool) clock.Cycles {
		cfg := Optimized()
		cfg.COWFork = cow
		k, _ := bootTask(t, clock.PPC604At185(), cfg)
		k.UserTouch(UserDataBase, 32*arch.PageSize) // 32 heap pages
		start := k.M.Led.Now()
		child := k.Fork()
		_ = child
		return k.M.Led.Now() - start
	}
	eager, cow := cost(false), cost(true)
	if cow >= eager {
		t.Fatalf("COW fork (%d cycles) should be cheaper than eager copy (%d)", cow, eager)
	}
}

func TestCOWExitReleasesSharedFrames(t *testing.T) {
	k, parent := bootTask(t, clock.PPC604At185(), cowConfig())
	free0 := k.M.Mem.FreeFrames() + freeHeld(k, parent)
	k.UserTouch(UserDataBase, 8*arch.PageSize)
	child := k.Fork()
	k.Switch(child)
	k.UserTouch(UserDataBase, 2*arch.PageSize) // break two pages
	k.Exit()
	k.Wait(child)
	// Parent still alive and its pages intact (shared frames keep one
	// reference).
	k.Switch(parent)
	k.UserTouchPages(UserDataBase, 8)
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Now the parent exits too: everything must come back.
	k.Exit()
	k.Wait(parent)
	if got := k.M.Mem.FreeFrames(); got != free0 {
		t.Fatalf("frame leak after COW exits: %d free, want %d", got, free0)
	}
	if len(k.sharedFrames) != 0 {
		t.Fatalf("shared-frame table not empty: %v", k.sharedFrames)
	}
}

// freeHeld counts frames a live task holds (for leak baselines).
func freeHeld(k *Kernel, t *Task) int {
	n := t.owned.len()
	n += t.PT.PTEPages() + 1 // PTE pages + PGD
	return n
}

func TestCOWThreeWaySharing(t *testing.T) {
	k, parent := bootTask(t, clock.PPC604At185(), cowConfig())
	k.UserTouch(UserDataBase, arch.PageSize)
	pe, _ := parent.PT.Lookup(UserDataBase)

	c1 := k.Fork()
	k.Switch(c1)
	c2 := k.Fork() // grandchild shares the same frame
	e2, _ := c2.PT.Lookup(UserDataBase)
	if e2.RPN != pe.RPN {
		t.Fatal("grandchild should share the original frame")
	}
	if k.sharedFrames[pe.RPN] != 3 {
		t.Fatalf("refcount = %d, want 3", k.sharedFrames[pe.RPN])
	}
	// Break in c2: refcount drops to 2, parent/c1 still share.
	k.Switch(c2)
	k.UserTouch(UserDataBase, 128)
	if k.sharedFrames[pe.RPN] != 2 {
		t.Fatalf("refcount after break = %d, want 2", k.sharedFrames[pe.RPN])
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCOWMunmapReleasesReferences(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), cowConfig())
	addr := k.SysMmap(4)
	k.UserTouch(addr, 4*arch.PageSize)
	child := k.Fork()
	k.Switch(child)
	e, _ := child.PT.Lookup(addr)
	if k.sharedFrames[e.RPN] != 2 {
		t.Fatalf("refcount = %d", k.sharedFrames[e.RPN])
	}
	k.SysMunmap(addr, 4)
	if k.sharedFrames[e.RPN] != 1 {
		t.Fatalf("refcount after munmap = %d, want 1", k.sharedFrames[e.RPN])
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestCOWFlushesStaleTranslations(t *testing.T) {
	// After a COW break the writer's old translation must be gone from
	// TLB and hash table — otherwise it would keep writing the shared
	// frame. The consistency checker would catch the PT mismatch; this
	// test drives the exact sequence.
	k, parent := bootTask(t, clock.PPC604At185(), cowConfig())
	k.UserTouch(UserDataBase, arch.PageSize)
	child := k.Fork()
	k.Switch(child)
	k.UserTouchPages(UserDataBase, 1) // load: cache the shared translation
	k.UserTouch(UserDataBase, 128)    // store: break
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	_ = parent
}
