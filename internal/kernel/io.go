package kernel

import (
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/ppc"
)

// I/O space (§5.1's second half). The machine has a 2 MB frame buffer
// outside RAM. The kernel can reach it through a fixed window in kernel
// space; processes that call IoremapFB get it mapped into their own
// address space — either with ordinary PTEs (competing for TLB slots
// with everything else) or, the paper's proposal, with a dedicated data
// BAT register switched per process:
//
//	"We have considered having the kernel dedicate a BAT mapping to
//	the frame buffer itself so programs such as X do not compete
//	constantly with other applications or the kernel for TLB space.
//	In fact, the entire mechanism could be done per-process with a
//	call to ioremap() and giving each process its own data BAT entry
//	that could be switched during a context switch."
const (
	// FBPhysBase is the frame buffer's physical base, outside RAM.
	FBPhysBase arch.PhysAddr = 0x78000000
	// FBPages is the frame buffer size: 2 MB of video memory.
	FBPages = 512
	// KernelFBBase is the kernel's fixed window onto the frame buffer.
	KernelFBBase arch.EffectiveAddr = 0xF8000000
	// UserFBBase is where IoremapFB places the frame buffer in a
	// process (BAT blocks must be alignment-sized; 0xB0000000 is 2 MB
	// aligned and in user space).
	UserFBBase arch.EffectiveAddr = 0xB0000000

	fbBytes      = FBPages * arch.PageSize
	ioremapInstr = 500 // build the mapping / program the BAT
)

// fbDBATSlot is the data BAT register dedicated to the per-process
// frame-buffer mapping; slot 1 is the kernel's own I/O window.
const (
	ioDBATSlot = 1
	fbDBATSlot = 2
)

// bootIO programs the kernel's I/O window BAT when configured.
func (k *Kernel) bootIO() {
	if !k.cfg.MapIOWithBAT {
		return
	}
	e := ppc.BATEntry{Valid: true, Base: KernelFBBase, Len: fbBytes, Phys: FBPhysBase, Inhibited: true}
	if err := k.M.MMU.DBAT.Set(ioDBATSlot, e); err != nil {
		panic(fmt.Sprintf("kernel: I/O DBAT: %v", err))
	}
}

// ioLinear translates a kernel I/O-window address. ok is false outside
// the window.
func (k *Kernel) ioLinear(ea arch.EffectiveAddr) (arch.PFN, bool) {
	if ea < KernelFBBase || ea >= KernelFBBase+arch.EffectiveAddr(fbBytes) {
		return 0, false
	}
	return (FBPhysBase + arch.PhysAddr(ea-KernelFBBase)).Frame(), true
}

// IoremapFB maps the frame buffer into the current task at UserFBBase
// and returns that address. With Config.FBBAT the mapping is a
// dedicated per-process data BAT entry loaded at context switch;
// otherwise the pages demand-fault through ordinary PTEs and compete
// for TLB slots.
func (k *Kernel) IoremapFB() arch.EffectiveAddr {
	t := k.cur
	defer k.syscallEntry()()
	k.kexec(textMmap+0x800, ioremapInstr)
	if t.fbMapped {
		return UserFBBase
	}
	t.fbMapped = true
	backing := make([]arch.PFN, FBPages)
	for i := range backing {
		backing[i] = FBPhysBase.Frame() + arch.PFN(i)
	}
	t.regions = append(t.regions, &Region{
		Start: UserFBBase, Pages: FBPages, Kind: RegionIO, Backing: backing,
	})
	k.loadFBBAT(t)
	return UserFBBase
}

// loadFBBAT programs (or clears) the per-process frame-buffer BAT for
// the task taking the CPU.
func (k *Kernel) loadFBBAT(t *Task) {
	if !k.cfg.FBBAT {
		return
	}
	if t != nil && t.fbMapped {
		e := ppc.BATEntry{Valid: true, Base: UserFBBase, Len: fbBytes, Phys: FBPhysBase, Inhibited: true}
		if err := k.M.MMU.DBAT.Set(fbDBATSlot, e); err != nil {
			panic(fmt.Sprintf("kernel: FB DBAT: %v", err))
		}
	} else {
		_ = k.M.MMU.DBAT.Set(fbDBATSlot, ppc.BATEntry{})
	}
	k.M.Led.Charge(2) // the mtspr pair
}

// FBWrite simulates the current task blitting nbytes to the frame
// buffer starting at the given byte offset (wrapping within the frame
// buffer).
func (k *Kernel) FBWrite(off, nbytes int) {
	if k.cur == nil {
		panic("kernel: FBWrite with no current task")
	}
	line := k.M.LineSize()
	total := (nbytes + line - 1) / line
	for done := 0; done < total; {
		o := (off + done*line) % fbBytes
		cnt := min(total-done, (fbBytes-o+line-1)/line)
		k.AccessRun(k.cur, Run{
			EA: UserFBBase + arch.EffectiveAddr(o), Count: cnt, Stride: line,
			Class: cache.ClassIO, Write: true,
		})
		done += cnt
	}
}

// KernelFBWrite simulates kernel console output through the kernel's
// own I/O window.
func (k *Kernel) KernelFBWrite(off, nbytes int) {
	line := k.M.LineSize()
	total := (nbytes + line - 1) / line
	for done := 0; done < total; {
		o := (off + done*line) % fbBytes
		cnt := min(total-done, (fbBytes-o+line-1)/line)
		k.AccessRun(k.cur, Run{
			EA: KernelFBBase + arch.EffectiveAddr(o), Count: cnt, Stride: line,
			Class: cache.ClassIO, Write: true,
		})
		done += cnt
	}
}
