package kernel

import (
	"testing"

	"mmutricks/internal/clock"
	"mmutricks/internal/telemetry"
)

// mixedWorkload drives every phase the kernel can enter without a
// fault injector: syscalls, reloads, faults, switches, flushes, idle
// (with reclaim and pre-zeroing), and enough memory pressure to swap.
func mixedWorkload(k *Kernel) {
	other := k.Fork()
	for i := 0; i < 10; i++ {
		k.SysNull()
	}
	a := k.SysMmap(64)
	k.UserTouchPages(a, 64)
	k.Switch(other)
	k.Switch(k.tasks[1])
	k.RunIdleFor(30_000)
	k.SysMunmap(a, 64)
	// Enough anonymous memory to run the frame allocator dry: the
	// faults beyond free memory reclaim via swapOut, and re-touching
	// the early pages swaps them back in.
	big := k.SysMmap(8000)
	k.UserTouchPages(big, 8000)
	k.UserTouchPages(big, 64)
	k.SysMunmap(big, 8000)
}

// TestConservationCorruptionTable proves CheckConsistency's invariant 7
// has single-cycle resolution: skewing any one phase's total by one
// cycle in either direction must trip it.
func TestConservationCorruptionTable(t *testing.T) {
	for _, ph := range telemetry.AllPhases {
		for _, d := range []int64{-1, 1} {
			k, _ := bootTask(t, clock.PPC604At185(), Optimized())
			k.EnableProfiling()
			mixedWorkload(k)
			if err := k.CheckConsistency(); err != nil {
				t.Fatalf("clean run inconsistent: %v", err)
			}
			k.M.Ph.Skew(ph, d)
			if err := k.CheckConsistency(); err == nil {
				t.Errorf("phase %v skewed by %+d cycles not caught", ph, d)
			}
			k.M.Ph.Skew(ph, -d) // restore for the deferred checks
		}
	}
}

// TestTelemetryNeutrality proves an enabled phase ledger changes
// nothing observable: cycles and every hardware counter are identical
// to the uninstrumented run.
func TestTelemetryNeutrality(t *testing.T) {
	run := func(enable bool) (clock.Cycles, string) {
		k, _ := bootTask(t, clock.PPC604At185(), Optimized())
		if enable {
			k.M.Ph.Enable(telemetry.Options{SampleInterval: 4096, SampleCapacity: 64})
		}
		mixedWorkload(k)
		return k.M.Led.Now(), k.M.Mon.String()
	}
	offCycles, offMon := run(false)
	onCycles, onMon := run(true)
	if offCycles != onCycles {
		t.Errorf("telemetry changed the clock: %d cycles off, %d on", offCycles, onCycles)
	}
	if offMon != onMon {
		t.Errorf("telemetry changed the counters:\noff:\n%s\non:\n%s", offMon, onMon)
	}
}

// TestReconcilePhaseEntries checks the phase-entry/hwmon identities on
// a real workload: every phase entry point sits next to exactly one
// counter increment.
func TestReconcilePhaseEntries(t *testing.T) {
	for _, model := range []clock.CPUModel{clock.PPC603At180(), clock.PPC604At185()} {
		cfg := Optimized()
		cfg.IdleClear = IdleClearUncachedList
		k, _ := bootTask(t, model, cfg)
		before := *k.M.Mon
		k.EnableProfiling()
		mixedWorkload(k)
		k.M.Ph.Sync()
		delta := k.M.Mon.Delta(before)
		for _, row := range telemetry.Reconcile(k.M.Ph, &delta) {
			if !row.OK {
				t.Errorf("%s/%d: %s: %d phase entries vs %d counter events",
					model.Name, model.MHz, row.Name, row.Enters, row.Counter)
			}
		}
		if k.M.Ph.Enters(telemetry.PhaseSwap) == 0 {
			t.Errorf("%s: workload never swapped — reconcile rows untested", model.Name)
		}
		if k.M.Ph.Enters(telemetry.PhasePreZero) == 0 {
			t.Errorf("%s: workload never pre-zeroed", model.Name)
		}
		if err := k.CheckConsistency(); err != nil {
			t.Errorf("%s: %v", model.Name, err)
		}
	}
}
