package kernel

import (
	"fmt"
	"testing"

	"mmutricks/internal/clock"
)

func TestCreatUnlinkRoundTrip(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	k.UserTouch(UserDataBase, 4096) // pre-fault the read buffer
	free0 := k.M.Mem.FreeFrames()
	f := k.SysCreat("hello.o", 4)
	if f.Size() != 4*4096 {
		t.Fatalf("size = %d", f.Size())
	}
	if got, ok := k.SysStat("hello.o"); !ok || got != f {
		t.Fatal("stat did not find the file")
	}
	if n := k.SysRead(f, 0, UserDataBase, 4096); n != 4096 {
		t.Fatalf("read %d", n)
	}
	k.SysUnlink("hello.o")
	if _, ok := k.SysStat("hello.o"); ok {
		t.Fatal("file survives unlink")
	}
	if got := k.M.Mem.FreeFrames(); got != free0 {
		t.Fatalf("frame leak: %d vs %d", got, free0)
	}
}

func TestCreatTruncatesExisting(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	a := k.SysCreat("x", 8)
	b := k.SysCreat("x", 2)
	if a != b {
		t.Fatal("recreating should reuse the inode")
	}
	if b.Size() != 2*4096 {
		t.Fatalf("size after truncate = %d", b.Size())
	}
	k.SysUnlink("x")
}

func TestUnlinkMissingPanics(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	defer func() {
		if recover() == nil {
			t.Error("unlink of missing file should panic")
		}
	}()
	k.SysUnlink("nope")
}

func TestNameiCostScalesWithDirectory(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	stat := func() clock.Cycles {
		start := k.M.Led.Now()
		k.SysStat("target")
		return k.M.Led.Now() - start
	}
	k.SysCreat("target", 0)
	small := stat()
	for i := 0; i < 256; i++ {
		k.SysCreat(fmt.Sprintf("pad%04d", i), 0)
	}
	big := stat()
	if big <= small {
		t.Fatalf("namei in a 257-entry dir (%d cycles) should exceed a 1-entry dir (%d)", big, small)
	}
}
