package kernel

import (
	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/mmtrace"
	"mmutricks/internal/pagetable"
)

// Flush-path instruction lengths.
const (
	flushPageInstr    = 40  // per-page flush routine
	flushRangeInstr   = 60  // range-flush loop setup
	flushContextInstr = 120 // lazy: new context + segment reload
)

// flushPage removes one page's translation from the TLB and the hash
// table. The hash-table half is the expensive part: a search of up to
// 16 PTEs (§7).
func (k *Kernel) flushPage(t *Task, ea arch.EffectiveAddr) {
	defer k.span(PathFlush)()
	k.M.Mon.FlushPage++
	start := k.M.Led.Now()
	k.kexec(textFlush, flushPageInstr)
	vpn := arch.VPNOf(t.Segs[ea.SegIndex()], ea)
	k.M.MMU.InvalidateVPNAll(vpn)
	if k.usesHTAB() {
		_, accesses := k.M.MMU.HTAB.FlushVPN(vpn, k.M)
		k.M.Mon.HTABFlushSearches += uint64(accesses)
	}
	k.M.Trc.Emit(mmtrace.KindFlushPage, vpn.VSID(), ea, k.M.Led.Now()-start, 0)
}

// flushRange removes the translations for [start, start+pages*4K). The
// original kernel walked the whole address range, searching the hash
// table for every page in turn — even pages that were never mapped —
// which is what made mmap() cost milliseconds. With a cutoff
// configured (§7), ranges bigger than the cutoff are converted to a
// whole-context flush whose amortized cost is far lower.
func (k *Kernel) flushRange(t *Task, start arch.EffectiveAddr, pages int) {
	if k.cfg.FlushRangeCutoff > 0 && pages > k.cfg.FlushRangeCutoff {
		// The §7 cutoff decision: this range is big enough that a
		// whole-context flush is cheaper than page-by-page searches.
		// The cutoff path opens no flush span of its own — the emit is
		// free, and flushContext below counts the one flush that
		// actually happens, keeping span entries 1:1 with the flush
		// counters.
		k.M.Trc.Emit(mmtrace.KindFlushCutoff, t.Segs[start.SegIndex()], start, 0, uint32(pages))
		k.flushContext(t)
		return
	}
	defer k.span(PathFlush)()
	k.M.Mon.FlushRange++
	begin := k.M.Led.Now()
	k.kexec(textFlush+0x200, flushRangeInstr)
	for i := 0; i < pages; i++ {
		k.flushPage(t, start+arch.EffectiveAddr(i*arch.PageSize))
	}
	k.M.Trc.Emit(mmtrace.KindFlushRange, t.Segs[start.SegIndex()], start, k.M.Led.Now()-begin, uint32(pages))
}

// flushContext removes every translation belonging to t.
//
// Lazy mode (§7): retire the task's VSIDs, allocate a fresh context and
// reload the segment registers. Old PTEs in the TLB and hash table stay
// "valid" but can never match — they are zombies for the idle task to
// reclaim.
//
// Eager mode: walk every page the task has mapped and hunt its PTE down
// in the hash table (up to 16 accesses each), then invalidate the TLB.
func (k *Kernel) flushContext(t *Task) {
	defer k.span(PathFlush)()
	k.M.Mon.FlushContext++
	// The flushed VSID names the context being destroyed (lazy mode
	// replaces t.Segs before returning).
	oldVSID := t.Segs[0]
	start := k.M.Led.Now()
	if k.cfg.LazyFlush {
		k.kexec(textFlush+0x400, flushContextInstr)
		k.kdata(dataMMContext, 64)
		k.ctx.Retire(t.Ctx)
		k.newContext(t)
		if t == k.cur {
			k.loadSegments(t)
		}
		k.M.Trc.Emit(mmtrace.KindFlushContext, oldVSID, 0, k.M.Led.Now()-start, t.PID)
		return
	}
	k.kexec(textFlush+0x400, flushRangeInstr)
	for _, r := range t.regions {
		var pagesToFlush []arch.EffectiveAddr
		t.PT.Range(r.Start, r.End(), func(ea arch.EffectiveAddr, e pagetable.Entry) bool {
			pagesToFlush = append(pagesToFlush, ea)
			return true
		})
		for _, ea := range pagesToFlush {
			k.flushPage(t, ea)
		}
	}
	k.M.MMU.InvalidateTLBs()
	k.M.Trc.Emit(mmtrace.KindFlushContext, oldVSID, 0, k.M.Led.Now()-start, t.PID)
}

// FlushTaskContext flushes every translation of the current task — the
// flush_tlb_mm entry point, exported for experiments and tools.
func (k *Kernel) FlushTaskContext() {
	if k.cur == nil {
		panic("kernel: FlushTaskContext with no current task")
	}
	k.flushContext(k.cur)
}

// loadSegments programs the user segment registers (0..11) from the
// task's VSID image; the kernel segments are fixed.
func (k *Kernel) loadSegments(t *Task) {
	for seg := 0; seg < 12; seg++ {
		k.M.MMU.SetSegment(seg, t.Segs[seg])
	}
	k.M.Led.Charge(clock.Cycles(12)) // mtsr is one cycle per register
}
