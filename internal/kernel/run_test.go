package kernel

import (
	"reflect"
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/hwmon"
)

// The batched reference pipeline's contract is exact equivalence: a Run
// must leave every observable — hwmon counters, cycle ledger, cache
// statistics, TLB contents — in precisely the state the scalar loop
// would. These tests drive two identically booted kernels, one through
// AccessRun and one through the scalar access loop, and compare the
// full observable state after every step.

// scalarRun replays r reference-for-reference through the scalar access
// path — the ground truth the batched pipeline must reproduce.
func scalarRun(k *Kernel, t *Task, r Run) {
	for i := 0; i < r.Count; i++ {
		k.access(t, r.EA+arch.EffectiveAddr(i*r.Stride), r.Instr, r.Class, r.Write)
	}
}

// runObs is the complete observable state the equivalence proof
// compares. Anything the harness can render derives from these.
type runObs struct {
	Mon    hwmon.Counters
	Cycles clock.Cycles
	DStats cache.Stats
	IStats cache.Stats
	DTLB   map[arch.VPN]arch.PFN
	ITLB   map[arch.VPN]arch.PFN
	Gen    uint64
}

func observeRun(k *Kernel) runObs {
	return runObs{
		Mon:    k.M.Mon.Snapshot(),
		Cycles: k.M.Led.Now(),
		DStats: *k.M.DCache.Stats(),
		IStats: *k.M.ICache.Stats(),
		DTLB:   k.M.MMU.TLB.Snapshot(),
		ITLB:   k.M.MMU.ITLB.Snapshot(),
		Gen:    k.M.MMU.Gen(),
	}
}

// runStep is one step of a differential script: a batch of references
// and/or a translation-invalidating event, applied identically to both
// twins.
type runStep struct {
	name string
	run  *Run
	op   func(k *Kernel, t *Task)
}

func diffRun(t *testing.T, model clock.CPUModel, cfg Config, steps []runStep) {
	t.Helper()
	kb, tb := bootTask(t, model, cfg)
	ks, ts := bootTask(t, model, cfg)
	if b, s := observeRun(kb), observeRun(ks); !reflect.DeepEqual(b, s) {
		t.Fatalf("twins diverge before the script runs:\nbatched %+v\nscalar  %+v", b, s)
	}
	for _, st := range steps {
		if st.run != nil {
			kb.AccessRun(tb, *st.run)
			scalarRun(ks, ts, *st.run)
		}
		if st.op != nil {
			st.op(kb, tb)
			st.op(ks, ts)
		}
		b, s := observeRun(kb), observeRun(ks)
		if !reflect.DeepEqual(b, s) {
			t.Fatalf("%s: batched and scalar state diverge\nbatched %+v\nscalar  %+v", st.name, b, s)
		}
	}
}

func TestAccessRunMatchesScalar(t *testing.T) {
	line := 32
	steps := []runStep{
		{name: "cold user stream, word stride", run: &Run{EA: UserDataBase, Count: 3000, Stride: 4, Class: cache.ClassUser}},
		{name: "warm re-walk", run: &Run{EA: UserDataBase, Count: 3000, Stride: 4, Class: cache.ClassUser}},
		{name: "write stream, line stride", run: &Run{EA: UserDataBase, Count: 600, Stride: line, Class: cache.ClassUser, Write: true}},
		{name: "castout pressure, page-crossing", run: &Run{EA: UserDataBase + 0x8000, Count: 4096, Stride: line, Class: cache.ClassUser, Write: true}},
		{name: "single reference", run: &Run{EA: UserDataBase + 12, Count: 1, Stride: 4, Class: cache.ClassUser}},
		{name: "two-line stride", run: &Run{EA: UserDataBase, Count: 300, Stride: 2 * line, Class: cache.ClassUser}},
		{name: "unaligned sub-line stride", run: &Run{EA: UserDataBase + 6, Count: 2000, Stride: 12, Class: cache.ClassUser}},
		{name: "instruction fetch stream", run: &Run{EA: UserTextBase, Count: 500, Stride: line, Class: cache.ClassUser, Instr: true}},
		{name: "tlb flush then re-walk",
			op: func(k *Kernel, _ *Task) { k.M.MMU.InvalidateTLBs() }},
		{name: "stream after flush must re-translate", run: &Run{EA: UserDataBase, Count: 2000, Stride: 4, Class: cache.ClassUser}},
		{name: "segment reload then re-walk",
			op: func(k *Kernel, _ *Task) {
				k.M.MMU.SetSegment(int(UserDataBase>>28), k.M.MMU.Segment(int(UserDataBase>>28)))
			}},
		{name: "stream after segment reload", run: &Run{EA: UserDataBase, Count: 1000, Stride: 4, Class: cache.ClassUser}},
		{name: "single-vpn invalidate",
			op: func(k *Kernel, _ *Task) { k.M.MMU.InvalidateVPNAll(k.M.MMU.VPNFor(UserDataBase)) }},
		{name: "stream after vpn invalidate", run: &Run{EA: UserDataBase, Count: 64, Stride: 4, Class: cache.ClassUser}},
	}
	for _, model := range []clock.CPUModel{clock.PPC603At180(), clock.PPC604At185()} {
		for _, cfg := range []struct {
			name string
			cfg  Config
		}{{"unoptimized", Unoptimized()}, {"optimized", Optimized()}} {
			t.Run(model.Name+"/"+cfg.name, func(t *testing.T) {
				diffRun(t, model, cfg.cfg, steps)
			})
		}
	}
}

// A context switch reloads segment registers, which advances the
// translation generation; a batched kernel that kept honoring the old
// task's cached translation would charge the wrong stream. The switch
// itself runs scheduler code, so the twins run it identically and the
// comparison covers the whole sequence.
func TestAccessRunAcrossContextSwitch(t *testing.T) {
	kb, tb := bootTask(t, clock.PPC604At185(), Unoptimized())
	ks, ts := bootTask(t, clock.PPC604At185(), Unoptimized())
	tb2 := kb.Spawn(kb.LoadImage("other", 8))
	ts2 := ks.Spawn(ks.LoadImage("other", 8))

	r := Run{EA: UserDataBase, Count: 2000, Stride: 4, Class: cache.ClassUser, Write: true}
	kb.AccessRun(tb, r)
	scalarRun(ks, ts, r)

	kb.Switch(tb2)
	ks.Switch(ts2)
	kb.AccessRun(tb2, r)
	scalarRun(ks, ts2, r)

	kb.Switch(tb)
	ks.Switch(ts)
	kb.AccessRun(tb, r)
	scalarRun(ks, ts, r)

	b, s := observeRun(kb), observeRun(ks)
	if !reflect.DeepEqual(b, s) {
		t.Fatalf("batched and scalar state diverge across context switches\nbatched %+v\nscalar  %+v", b, s)
	}
}

// Once a page is resident the whole batched pipeline — fastpath
// translation, hit replay, batch cache simulation — must run without
// allocating: it executes under the noalloc proof and inside every
// harness inner loop.
func TestAccessRunZeroAllocsWhenResident(t *testing.T) {
	k, task := bootTask(t, clock.PPC604At185(), Unoptimized())
	r := Run{EA: UserDataBase, Count: 1024, Stride: 4, Class: cache.ClassUser, Write: true}
	k.AccessRun(task, r) // fault the pages in
	if n := testing.AllocsPerRun(100, func() {
		k.AccessRun(task, r)
	}); n != 0 {
		t.Fatalf("resident AccessRun allocates %.1f times per op, want 0", n)
	}
}

// FuzzAccessRunParity feeds arbitrary scripts of runs and invalidation
// events to the batched/scalar twins. Any reachable combination of
// stride, width, page crossing, flushes, and context switches in which
// the batched pipeline's counter stream deviates from scalar execution
// is a bug.
func FuzzAccessRunParity(f *testing.F) {
	f.Add([]byte{0, 10, 2, 1, 40, 1, 3, 0, 4})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 1, 255, 31, 0, 5})
	f.Add([]byte{4, 9, 9, 9, 3, 3, 3})
	f.Fuzz(func(t *testing.T, script []byte) {
		kb, tb := bootTask(t, clock.PPC604At185(), Unoptimized())
		ks, ts := bootTask(t, clock.PPC604At185(), Unoptimized())
		i := 0
		next := func() int {
			if i >= len(script) {
				return 0
			}
			v := int(script[i])
			i++
			return v
		}
		for steps := 0; i < len(script) && steps < 64; steps++ {
			switch next() % 6 {
			case 0, 1: // data run (the common case gets more weight)
				r := Run{
					EA:     UserDataBase + arch.EffectiveAddr(next()*64),
					Count:  next()*16 + 1,
					Stride: next()%128 + 1,
					Class:  cache.ClassUser,
					Write:  next()%2 == 1,
				}
				kb.AccessRun(tb, r)
				scalarRun(ks, ts, r)
			case 2: // instruction run
				r := Run{
					EA:     UserTextBase + arch.EffectiveAddr(next()*32),
					Count:  next()%256 + 1,
					Stride: next()%64 + 1,
					Class:  cache.ClassUser,
					Instr:  true,
				}
				kb.AccessRun(tb, r)
				scalarRun(ks, ts, r)
			case 3:
				kb.M.MMU.InvalidateTLBs()
				ks.M.MMU.InvalidateTLBs()
			case 4:
				vpn := kb.M.MMU.VPNFor(UserDataBase + arch.EffectiveAddr(next()*4096))
				kb.M.MMU.InvalidateVPNAll(vpn)
				ks.M.MMU.InvalidateVPNAll(vpn)
			case 5:
				seg := int(UserDataBase >> 28)
				kb.M.MMU.SetSegment(seg, kb.M.MMU.Segment(seg))
				ks.M.MMU.SetSegment(seg, ks.M.MMU.Segment(seg))
			}
			b, s := observeRun(kb), observeRun(ks)
			if !reflect.DeepEqual(b, s) {
				t.Fatalf("step %d: batched and scalar state diverge\nbatched %+v\nscalar  %+v", steps, b, s)
			}
		}
	})
}
