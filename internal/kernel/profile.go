package kernel

import "mmutricks/internal/telemetry"

// Path identifies one kernel code path for cycle attribution — the
// simulated equivalent of the instrumented-kernel profiles the paper's
// methodology leans on ("timing and instrumenting a complete recompile
// of the kernel", "characterize the system's behavior in great
// detail", §4).
//
// Path is the machine-wide telemetry phase: the kernel's span sites
// push phases onto the machine's phase ledger, which also receives the
// instruction-fetch and hardware-walk transfers the machine layer
// attributes below the kernel. The old kernel-private Profiler is
// gone; its seven paths map onto the richer phase taxonomy.
type Path = telemetry.Phase

const (
	PathUser    = telemetry.PhaseUser
	PathMiss    = telemetry.PhaseTLBMiss
	PathFault   = telemetry.PhaseFault
	PathSyscall = telemetry.PhaseSyscall
	PathSched   = telemetry.PhaseCtxSwitch
	PathFlush   = telemetry.PhaseFlush
	PathIdle    = telemetry.PhaseIdle

	// The phases beyond the original profiler's seven.
	PathFetch       = telemetry.PhaseFetch
	PathIdleReclaim = telemetry.PhaseIdleReclaim
	PathPreZero     = telemetry.PhasePreZero
	PathSwap        = telemetry.PhaseSwap
	PathMCRepair    = telemetry.PhaseMCRepair
)

// Paths lists all attribution paths for iteration.
var Paths = telemetry.AllPhases

// EnableProfiling turns the machine's phase ledger on (it is off, and
// one never-taken branch per probe, by default) and resets any
// collected data. Sampling stays off; recordings that want the
// interval sampler enable the ledger with explicit telemetry.Options
// instead.
func (k *Kernel) EnableProfiling() {
	k.M.Ph.Enable(telemetry.Options{})
}

// Profile returns the phase ledger holding the per-path cycle totals
// collected so far; nil if profiling was never enabled.
func (k *Kernel) Profile() *telemetry.Phases {
	if !k.M.Ph.Enabled() {
		return nil
	}
	return k.M.Ph
}

// span enters a path and returns the closure that leaves it; use as
//
//	defer k.span(PathSyscall)()
//
// The phasebalance analyzer proves every span taken is exited on all
// paths, which is what lets CheckConsistency demand exact phase-cycle
// conservation.
func (k *Kernel) span(path Path) func() {
	return k.M.Ph.Span(path)
}
