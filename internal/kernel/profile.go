package kernel

import (
	"fmt"
	"strings"

	"mmutricks/internal/clock"
)

// Path identifies one kernel code path for cycle attribution — the
// simulated equivalent of the instrumented-kernel profiles the paper's
// methodology leans on ("timing and instrumenting a complete recompile
// of the kernel", "characterize the system's behavior in great
// detail", §4).
type Path int

const (
	// PathUser is everything outside the kernel: the program itself.
	PathUser Path = iota
	// PathMiss is TLB/hash-miss reload handling.
	PathMiss
	// PathFault is do_page_fault (demand paging, COW breaks, swap).
	PathFault
	// PathSyscall is syscall entry/exit and in-kernel service work.
	PathSyscall
	// PathSched is the scheduler and context switch.
	PathSched
	// PathFlush is TLB/hash-table flushing.
	PathFlush
	// PathIdle is the idle task.
	PathIdle
	numPaths
)

// Paths lists all attribution paths for iteration.
var Paths = []Path{PathUser, PathMiss, PathFault, PathSyscall, PathSched, PathFlush, PathIdle}

func (p Path) String() string {
	switch p {
	case PathUser:
		return "user"
	case PathMiss:
		return "miss-handlers"
	case PathFault:
		return "page-faults"
	case PathSyscall:
		return "syscalls"
	case PathSched:
		return "scheduler"
	case PathFlush:
		return "flushing"
	case PathIdle:
		return "idle"
	}
	return fmt.Sprintf("path(%d)", int(p))
}

// Profiler attributes simulated cycles to kernel paths. Nesting is
// honoured: cycles inside a miss handler taken during a syscall go to
// the miss handler (the innermost path), as a sampling profiler on the
// real machine would report.
type Profiler struct {
	led     *clock.Ledger
	enabled bool
	stack   []Path
	mark    clock.Cycles
	cycles  [numPaths]clock.Cycles
}

// EnableProfiling turns the profiler on (it is off, and free, by
// default) and resets any collected data.
func (k *Kernel) EnableProfiling() {
	k.prof = &Profiler{led: k.M.Led, enabled: true, mark: k.M.Led.Now()}
}

// Profile returns the per-path cycle totals collected so far; nil if
// profiling was never enabled.
func (k *Kernel) Profile() *Profiler { return k.prof }

// accrue charges the cycles since the last mark to the current path.
func (p *Profiler) accrue() {
	now := p.led.Now()
	cur := PathUser
	if n := len(p.stack); n > 0 {
		cur = p.stack[n-1]
	}
	p.cycles[cur] += now - p.mark
	p.mark = now
}

// span enters a path and returns the closure that leaves it; use as
//
//	defer k.span(PathSyscall)()
func (k *Kernel) span(path Path) func() {
	p := k.prof
	if p == nil || !p.enabled {
		return func() {}
	}
	p.accrue()
	p.stack = append(p.stack, path)
	return func() {
		p.accrue()
		p.stack = p.stack[:len(p.stack)-1]
	}
}

// Cycles returns the cycles attributed to a path.
func (p *Profiler) Cycles(path Path) clock.Cycles {
	return p.cycles[path]
}

// Total returns all attributed cycles (including user time).
func (p *Profiler) Total() clock.Cycles {
	p.accrue()
	var t clock.Cycles
	for _, c := range p.cycles {
		t += c
	}
	return t
}

// Fraction returns a path's share of total attributed cycles.
func (p *Profiler) Fraction(path Path) float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.cycles[path]) / float64(t)
}

// String renders the flat profile.
func (p *Profiler) String() string {
	var b strings.Builder
	t := p.Total()
	if t == 0 {
		t = 1
	}
	for _, path := range Paths {
		fmt.Fprintf(&b, "%-14s %12d cycles %6.2f%%\n", path, p.cycles[path],
			100*float64(p.cycles[path])/float64(t))
	}
	return b.String()
}
