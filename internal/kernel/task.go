package kernel

import (
	"fmt"
	"math/bits"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/mmtrace"
	"mmutricks/internal/pagetable"
	"mmutricks/internal/vsid"
)

// RegionKind classifies a virtual-memory region.
type RegionKind int

const (
	// RegionText is shared, file-backed program text.
	RegionText RegionKind = iota
	// RegionAnon is private anonymous memory (heap, mmap).
	RegionAnon
	// RegionStack is the downward-growing stack (treated as anon).
	RegionStack
	// RegionIO is memory-mapped device space (the frame buffer):
	// shared, cache-inhibited, no frames to allocate or free.
	RegionIO
)

// Region is one VMA of a task's address space.
type Region struct {
	Start arch.EffectiveAddr
	Pages int
	Kind  RegionKind
	// Backing holds the shared page-cache frames for text regions.
	Backing []arch.PFN
}

// End returns the first address past the region.
func (r *Region) End() arch.EffectiveAddr {
	return r.Start + arch.EffectiveAddr(r.Pages*arch.PageSize)
}

// Contains reports whether ea falls inside the region.
func (r *Region) Contains(ea arch.EffectiveAddr) bool {
	return ea >= r.Start && ea < r.End()
}

// TaskState is the scheduling state of a task.
type TaskState int

const (
	// TaskRunnable tasks can be switched to.
	TaskRunnable TaskState = iota
	// TaskZombie tasks have exited and await Wait.
	TaskZombie
)

// Task is one simulated process.
type Task struct {
	PID   uint32
	Ctx   uint32
	Segs  [arch.NumSegments]arch.VSID
	PT    *pagetable.Table
	State TaskState

	// mm is the task's address-space descriptor (mm.go); nil once the
	// task has exited and dropped its user reference.
	mm *MM

	regions []*Region
	// owned are the private frames (anon/stack pages) freed at exit
	// or munmap. A bitset keyed by frame number: ownership is tested
	// on every fault-path frame decision, and the ascending iteration
	// order makes teardown's frees deterministic without sorting.
	owned pfnSet
	// cowPages are page numbers currently shared copy-on-write; a
	// store to one takes a protection fault (cow.go).
	cowPages map[uint32]struct{}
	// fbMapped records that IoremapFB has mapped the frame buffer.
	fbMapped bool
	// reclaimCursor remembers where the swap reclaimer last stole from
	// this task, for fair rotation.
	reclaimCursor uint32
	// roPages are write-protected pages (SysMprotect).
	roPages map[uint32]struct{}
	// Signal state (signal.go).
	sigInstalled    bool
	sigHandlerPage  int
	sigHandlerInstr int
	sigPending      int
	// nextMmap is the address the next anonymous mmap is placed at.
	nextMmap arch.EffectiveAddr
	// image is the program currently executed (nil before Exec).
	image *Image
	// xlat holds the task's last-translation fastpath records (data,
	// instr); see run.go for the generation protocol.
	xlat [2]xlatRec
}

// slotOff returns the task struct's offset in kernel data.
func (t *Task) slotOff() uint32 {
	return uint32(t.PID%64) * taskStructBytes
}

func (t *Task) regionFor(ea arch.EffectiveAddr) *Region {
	for _, r := range t.regions {
		if r.Contains(ea) {
			return r
		}
	}
	return nil
}

// pfnSet is a grow-on-demand bitset of physical frame numbers.
type pfnSet struct {
	bits []uint64
	n    int
}

func (s *pfnSet) add(pfn arch.PFN) {
	w := int(pfn >> 6)
	for w >= len(s.bits) {
		s.bits = append(s.bits, 0)
	}
	m := uint64(1) << (pfn & 63)
	if s.bits[w]&m == 0 {
		s.bits[w] |= m
		s.n++
	}
}

//mmutricks:noalloc
func (s *pfnSet) has(pfn arch.PFN) bool {
	w := int(pfn >> 6)
	return w < len(s.bits) && s.bits[w]&(1<<(pfn&63)) != 0
}

//mmutricks:noalloc
func (s *pfnSet) remove(pfn arch.PFN) {
	w := int(pfn >> 6)
	if w >= len(s.bits) {
		return
	}
	m := uint64(1) << (pfn & 63)
	if s.bits[w]&m != 0 {
		s.bits[w] &^= m
		s.n--
	}
}

func (s *pfnSet) len() int { return s.n }

// forEach visits the members in ascending frame order.
func (s *pfnSet) forEach(fn func(arch.PFN)) {
	for w, word := range s.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(arch.PFN(w<<6 + b))
			word &= word - 1
		}
	}
}

func (s *pfnSet) clear() { s.bits = nil; s.n = 0 }

func (t *Task) ownFrame(pfn arch.PFN) { t.owned.add(pfn) }

//mmutricks:noalloc
func (t *Task) owns(pfn arch.PFN) bool { return t.owned.has(pfn) }

//mmutricks:noalloc
func (t *Task) disownFrame(pfn arch.PFN) { t.owned.remove(pfn) }

func (t *Task) markCOW(pn uint32) {
	if t.cowPages == nil {
		t.cowPages = make(map[uint32]struct{})
	}
	t.cowPages[pn] = struct{}{}
}

func (t *Task) isCOW(pn uint32) bool {
	_, ok := t.cowPages[pn]
	return ok
}

func (t *Task) clearCOW(pn uint32) { delete(t.cowPages, pn) }

// Regions returns a copy of the task's region list.
func (t *Task) Regions() []*Region { return append([]*Region(nil), t.regions...) }

// Image is a program: its text lives in shared page-cache frames.
type Image struct {
	Name      string
	TextPages int
	Backing   []arch.PFN
}

// process-lifecycle instruction-path lengths.
const (
	forkInstr       = 1500
	execInstr       = 1200
	exitInstr       = 800
	waitInstr       = 200
	spawnStackPages = 4
)

// LoadImage creates a program image of the given text size, allocating
// page-cache frames for it. Loading is a setup operation (simulated
// "disk" contents appearing in the page cache); it charges nothing.
func (k *Kernel) LoadImage(name string, textPages int) *Image {
	if img, ok := k.images[name]; ok {
		return img
	}
	img := &Image{Name: name, TextPages: textPages}
	for i := 0; i < textPages; i++ {
		pfn, ok := k.M.Mem.AllocFrame()
		if !ok {
			panic("kernel: out of memory loading image")
		}
		img.Backing = append(img.Backing, pfn)
	}
	k.images[name] = img
	return img
}

// newContext assigns a task a fresh mm context and segment-register
// image.
func (k *Kernel) newContext(t *Task) {
	ctx, wrapped := k.ctx.Alloc()
	if wrapped {
		// The context counter wrapped: zombie tracking restarted, so
		// every stale translation must go now.
		k.M.MMU.InvalidateTLBs()
		k.M.MMU.HTAB.InvalidateAll()
	}
	t.Ctx = ctx
	t.Segs = k.ctx.VSIDs(ctx)
	k.M.Trc.Emit(mmtrace.KindVSIDReassign, t.Segs[0], 0, 0, ctx)
}

// Spawn creates a task running the given image — the boot-time
// equivalent of fork+exec for building workloads. It charges nothing;
// use Fork/Exec for measured process creation. If no task is current
// the new task is switched to immediately.
func (k *Kernel) Spawn(img *Image) *Task {
	t := k.SpawnTask(img)
	if k.cur == nil {
		k.switchTo(t, false)
	}
	return t
}

// SpawnTask creates a runnable task without scheduling it — the
// model's mm_init action: the task exists, owns a fresh address
// space, and waits on the runqueue. It charges nothing.
func (k *Kernel) SpawnTask(img *Image) *Task {
	pt, err := pagetable.New(k.M.Mem)
	if err != nil {
		panic("kernel: out of memory spawning task")
	}
	t := &Task{PID: k.nextPID, PT: pt}
	k.nextPID++
	k.newContext(t)
	k.newMM(t)
	t.image = img
	t.regions = []*Region{
		{Start: UserTextBase, Pages: img.TextPages, Kind: RegionText, Backing: img.Backing},
		{Start: UserDataBase, Pages: 1024, Kind: RegionAnon},
		{Start: UserStackTop - arch.EffectiveAddr(64*arch.PageSize), Pages: 64, Kind: RegionStack},
	}
	t.nextMmap = UserMmapBase
	k.tasks[t.PID] = t
	return t
}

// Fork creates a copy of the current task: shared text, copied anon and
// stack pages. (The real kernel uses copy-on-write; the eager copy here
// charges the same page-copy traffic at fork time instead of fault
// time, which keeps the process-creation benchmarks comparable across
// configurations without modelling COW faults.)
func (k *Kernel) Fork() *Task {
	parent := k.cur
	if parent == nil {
		panic("kernel: Fork with no current task")
	}
	k.M.Mon.Forks++
	k.kexec(textProc, forkInstr)
	k.kdata(dataTaskStructs+((parent.slotOff()+taskStructBytes)%0x8000), taskStructBytes)

	pt, err := pagetable.New(k.M.Mem)
	if err != nil {
		panic("kernel: out of memory in fork")
	}
	child := &Task{PID: k.nextPID, PT: pt, nextMmap: parent.nextMmap, image: parent.image}
	k.nextPID++
	k.newContext(child)
	for _, r := range parent.regions {
		nr := *r
		child.regions = append(child.regions, &nr)
	}
	if k.cfg.COWFork {
		// Share the parent's private pages copy-on-write (cow.go).
		k.forkCOW(parent, child)
	} else {
		// Copy the parent's present private pages eagerly.
		for _, r := range parent.regions {
			if r.Kind == RegionText {
				continue
			}
			parent.PT.Range(r.Start, r.End(), func(ea arch.EffectiveAddr, e pagetable.Entry) bool {
				pfn := k.getFreePage()
				child.ownFrame(pfn)
				k.copyPage(e.RPN, pfn)
				k.mapPage(child, ea, pfn, false)
				return true
			})
		}
	}
	// Text is shared: map nothing; the child demand-faults it (cheap
	// minor faults against the page cache). The mm descriptor and the
	// task-table entry appear together, after the copy traffic: a
	// machine check delivered mid-fork must neither find a registered
	// mm with no visible holder nor escalate against (and tear down)
	// a half-constructed task.
	k.newMM(child)
	k.tasks[child.PID] = child
	return child
}

// copyPage charges a page copy: read source, write destination, line by
// line, through the kernel linear mapping.
func (k *Kernel) copyPage(src, dst arch.PFN) {
	line := k.M.LineSize()
	k.M.MemPairRun(src.Addr(), dst.Addr(), arch.PageSize/line, line,
		cache.ClassKernelData, cache.ClassKernelData, false, true)
	k.M.Led.Charge(clock.Cycles(arch.PageSize / line * 2))
}

// Exec replaces the current task's address space with a fresh one
// running img. The old context is flushed — in lazy mode a VSID
// reassignment, in eager mode a hash-table search per mapped page (§7).
func (k *Kernel) Exec(img *Image) {
	t := k.cur
	if t == nil {
		panic("kernel: Exec with no current task")
	}
	k.M.Mon.Execs++
	k.kexec(textProc+0x400, execInstr)
	k.teardownMM(t)
	t.image = img
	t.regions = []*Region{
		{Start: UserTextBase, Pages: img.TextPages, Kind: RegionText, Backing: img.Backing},
		{Start: UserDataBase, Pages: 1024, Kind: RegionAnon},
		{Start: UserStackTop - arch.EffectiveAddr(64*arch.PageSize), Pages: 64, Kind: RegionStack},
	}
	t.nextMmap = UserMmapBase
}

// Exit terminates the current task, tearing down its address space.
// Another runnable task (or nil) becomes current; call Switch to pick
// the next runner explicitly.
func (k *Kernel) Exit() {
	t := k.cur
	if t == nil {
		panic("kernel: Exit with no current task")
	}
	k.M.Mon.Exits++
	k.kexec(textProc+0x800, exitInstr)
	// exit_mm: the CPU keeps the dying task's address space as a
	// lazy-TLB borrow (mmgrab) across the user-reference drop; the
	// final mmput tears the space down while t is still current, so
	// the flush path charges exactly as a direct teardown would. The
	// task leaves the live set before the teardown traffic starts so
	// a mid-teardown consistency sweep sees a coherent state.
	m := t.mm
	t.mm = nil
	t.State = TaskZombie
	k.mmGrab(m)
	k.mmPut(m)
	k.cur = nil
}

// Wait reaps a zombie child, freeing its task slot.
func (k *Kernel) Wait(child *Task) {
	if child.State != TaskZombie {
		panic(fmt.Sprintf("kernel: Wait on live task %d", child.PID))
	}
	k.kexec(textProc+0xC00, waitInstr)
	delete(k.tasks, child.PID)
}

// teardownMM unmaps everything, frees private frames and flushes the
// task's translations.
func (k *Kernel) teardownMM(t *Task) {
	// Drop copy-on-write references and swap slots before the tree
	// goes away.
	k.releaseTaskCOW(t, 0, arch.KernelBase)
	for key := range k.swapped {
		if key.pid == t.PID {
			delete(k.swapped, key)
		}
	}
	// Flush translations first (eager flushing needs the page tree to
	// know which hash-table entries to hunt down).
	k.flushContext(t)
	// Release the tree's entries and the private frames.
	for _, r := range t.regions {
		var toUnmap []arch.EffectiveAddr
		t.PT.Range(r.Start, r.End(), func(ea arch.EffectiveAddr, e pagetable.Entry) bool {
			toUnmap = append(toUnmap, ea)
			return true
		})
		for _, ea := range toUnmap {
			t.PT.Unmap(ea)
		}
	}
	// Free in ascending frame order — the bitset iterates sorted, so
	// the allocator's free list and all later physical placements are
	// deterministic.
	t.owned.forEach(func(pfn arch.PFN) {
		k.M.Mem.FreeFrame(pfn)
	})
	t.owned.clear()
	t.regions = nil
}

// Task returns the task with the given PID, if it exists.
func (k *Kernel) Task(pid uint32) (*Task, bool) {
	t, ok := k.tasks[pid]
	return t, ok
}

// Current returns the running task.
func (k *Kernel) Current() *Task { return k.cur }

// ZombieVSID reports whether v belongs to a retired context — exported
// for experiments that inspect hash-table composition.
func (k *Kernel) ZombieVSID(v arch.VSID) bool { return k.zombie(v) }

// ContextAllocator exposes the VSID allocator for experiments.
func (k *Kernel) ContextAllocator() *vsid.ContextAllocator { return k.ctx }
