package kernel

import (
	"fmt"

	"mmutricks/internal/clock"
)

// A minimal file namespace, enough for LmBench's lat_fs (create and
// delete files): a single directory whose entries hash onto kernel-data
// buckets, inodes as kernel-data records, and page-cache frames for
// file contents.
const (
	creatInstr  = 420 // namei + dentry insert + inode init
	unlinkInstr = 380 // namei + dentry remove + inode free
	nameiPerEnt = 18  // directory-scan cost per entry examined
	dirBuckets  = 64
)

// dirHash places a name in a directory bucket (FNV-1a folded).
func dirHash(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return h % dirBuckets
}

// namei charges the directory lookup: the bucket's dentry chain is
// scanned entry by entry.
func (k *Kernel) namei(name string) (*File, bool) {
	b := dirHash(name)
	k.kdata(dataPageCache+0x1000+b*64, 64)
	n := 0
	for other := range k.names {
		if dirHash(other) == b {
			n++
		}
	}
	k.M.Led.Charge(clock.Cycles(nameiPerEnt * (n + 1)))
	f, ok := k.names[name]
	return f, ok
}

// SysCreat creates a file of the given size in the page cache and
// enters it in the namespace. Creating an existing name truncates it
// to the new size.
func (k *Kernel) SysCreat(name string, pages int) *File {
	defer k.syscallEntry()()
	k.kexec(textFileIO+0x400, creatInstr)
	if old, ok := k.namei(name); ok {
		k.freeFilePages(old)
		old.Pages = nil
		k.allocFilePages(old, pages)
		return old
	}
	f := &File{ID: k.nextFile}
	k.nextFile++
	k.allocFilePages(f, pages)
	k.files[f.ID] = f
	if k.names == nil {
		k.names = make(map[string]*File)
	}
	k.names[name] = f
	k.kdata(dataPageCache+0x2000+uint32(f.ID%64)*64, 64) // the inode
	return f
}

// SysUnlink removes a file, returning its page-cache frames.
func (k *Kernel) SysUnlink(name string) {
	defer k.syscallEntry()()
	k.kexec(textFileIO+0x600, unlinkInstr)
	f, ok := k.namei(name)
	if !ok {
		panic(fmt.Sprintf("kernel: unlink of missing file %q", name))
	}
	k.freeFilePages(f)
	delete(k.names, name)
	delete(k.files, f.ID)
}

// Lookup resolves a name without mutating anything (a stat).
func (k *Kernel) SysStat(name string) (*File, bool) {
	defer k.syscallEntry()()
	k.kexec(textFileIO+0x700, 160)
	return k.namei(name)
}

func (k *Kernel) allocFilePages(f *File, pages int) {
	for i := 0; i < pages; i++ {
		pfn := k.getFreePage()
		f.Pages = append(f.Pages, pfn)
	}
}

func (k *Kernel) freeFilePages(f *File) {
	for _, pfn := range f.Pages {
		k.M.Mem.FreeFrame(pfn)
	}
	f.Pages = nil
}
