package kernel

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/machine"
)

func split603() clock.CPUModel {
	m := clock.PPC603At180()
	m.SplitTLB = true
	return m
}

func TestSplitTLBSeparatesSides(t *testing.T) {
	k := New(machine.New(split603()), Optimized())
	img := k.LoadImage("test", 8)
	k.Spawn(img)
	mmu := k.M.MMU
	if mmu.ITLB == mmu.TLB {
		t.Fatal("split model shares one TLB")
	}
	if mmu.ITLB.Entries() != 64 || mmu.TLB.Entries() != 64 {
		t.Fatalf("split halves: I=%d D=%d, want 64/64", mmu.ITLB.Entries(), mmu.TLB.Entries())
	}
	k.UserRun(0, 200)                 // instruction fetches
	k.UserTouchPages(UserDataBase, 4) // data
	if mmu.ITLB.Valid() == 0 {
		t.Fatal("instruction fetches did not fill the ITLB")
	}
	if mmu.TLB.Valid() == 0 {
		t.Fatal("data accesses did not fill the DTLB")
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitTLBDataFloodSparesInstructionSide(t *testing.T) {
	// The structural benefit of the split: a data working set larger
	// than the whole TLB cannot evict instruction translations.
	k := New(machine.New(split603()), Optimized())
	img := k.LoadImage("test", 8)
	k.Spawn(img)
	k.UserRun(0, 2000) // establish text translations
	iBefore := k.M.MMU.ITLB.Valid()
	addr := k.SysMmap(256)
	k.UserTouchPages(addr, 256) // flood: 4x the DTLB
	if got := k.M.MMU.ITLB.Valid(); got < iBefore {
		t.Fatalf("data flood evicted ITLB entries: %d -> %d", iBefore, got)
	}
	// Whereas a unified TLB loses text entries to the same flood:
	ku := New(machine.New(clock.PPC603At180()), Optimized())
	ku.Spawn(ku.LoadImage("test", 8))
	ku.UserRun(0, 2000)
	before := ku.M.Mon.Snapshot()
	a2 := ku.SysMmap(256)
	ku.UserTouchPages(a2, 256)
	ku.UserRun(0, 2000) // text refetch now misses
	if d := ku.M.Mon.Delta(before); d.TLBMisses < 256 {
		t.Fatalf("unified flood should force text reloads too: %d misses", d.TLBMisses)
	}
}

func TestSplitTLBFlushHitsBothSides(t *testing.T) {
	k := New(machine.New(split603()), Optimized())
	img := k.LoadImage("test", 8)
	task := k.Spawn(img)
	k.UserRun(0, 500)
	k.UserTouchPages(UserDataBase, 4)
	k.flushContext(task)
	// Everything of the old context is stale; the consistency checker
	// accepts zombies but a fresh touch must re-fault rather than
	// reuse either side's old entries.
	before := k.M.Mon.Snapshot()
	k.UserRun(0, 500)
	k.UserTouchPages(UserDataBase, 4)
	d := k.M.Mon.Delta(before)
	if d.TLBMisses == 0 {
		t.Fatal("stale entries matched after context flush")
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitTLBEagerFlushInvalidatesITLB(t *testing.T) {
	cfg := Unoptimized() // eager flushing physically invalidates
	k := New(machine.New(split603()), cfg)
	img := k.LoadImage("test", 8)
	task := k.Spawn(img)
	k.UserRun(0, 500)
	if k.M.MMU.ITLB.Valid() == 0 {
		t.Fatal("no ITLB entries to flush")
	}
	k.flushContext(task)
	if got := k.M.MMU.ITLB.Valid(); got != 0 {
		t.Fatalf("eager context flush left %d ITLB entries", got)
	}
	_ = arch.PageSize
}
