package kernel

import (
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/mmtrace"
)

// Scheduler and idle-task instruction lengths.
const (
	schedInstr     = 420  // pick-next + hand-optimized switch_to (§6.1)
	schedSlowInstr = 1100 // original C path: full save/restore
	idlePollInstr  = 30   // one idle-loop iteration
	idleClearInstr = 20   // list push and bookkeeping per cleared page
	// idleReclaimGroups is how many hash-table groups one idle poll
	// sweeps. Small: the idle task must switch out quickly when work
	// arrives (§9: "we're only concerned with switching out of it
	// quickly").
	idleReclaimGroups = 8
)

// Switch performs a context switch to t: scheduler path, task-struct
// traffic, and the segment-register reload that gives t its address
// space.
func (k *Kernel) Switch(t *Task) {
	if t.State != TaskRunnable {
		panic(fmt.Sprintf("kernel: switch to non-runnable task %d", t.PID))
	}
	k.switchTo(t, true)
}

func (k *Kernel) switchTo(t *Task, charge bool) {
	if charge {
		defer k.span(PathSched)()
		k.M.Mon.CtxSwitches++
		// The event covers the whole switch (scheduler path, state
		// save/restore, segment reload) and names the incoming task.
		start := k.M.Led.Now()
		defer func() {
			k.M.Trc.Emit(mmtrace.KindCtxSwitch, t.Segs[0], 0, k.M.Led.Now()-start, t.PID)
		}()
		if k.cfg.CachePreload {
			// §10.2: prefetch the incoming task's state so the fills
			// overlap the switch path instead of stalling it.
			line := k.M.LineSize()
			for off := 0; off < 128; off += line {
				k.M.Prefetch(k.dataPA+arch.PhysAddr(dataTaskStructs+t.slotOff()+uint32(off)), cache.ClassKernelData)
			}
			k.M.Prefetch(k.dataPA+dataRunQueue, cache.ClassKernelData)
		}
		if k.cfg.FastReload {
			k.kexec(textSched, schedInstr)
			if k.cur != nil {
				k.kdataW(dataTaskStructs+k.cur.slotOff(), 128) // save
			}
			k.kdata(dataTaskStructs+t.slotOff(), 128) // restore
		} else {
			// The original exception/switch path: full register state
			// saved and restored through C (§6.1 measured a 33%
			// context-switch improvement from rewriting this).
			k.kexec(textSched, schedSlowInstr)
			if k.cur != nil {
				k.kdataW(dataTaskStructs+k.cur.slotOff(), 384)
			}
			k.kdata(dataTaskStructs+t.slotOff(), 384)
		}
		k.kdata(dataRunQueue, 64)
	}
	if k.kthreadMM != nil {
		panic("kernel: context switch during a UseMM span")
	}
	if k.cur == nil {
		// The incoming task's mm replaces a lazy-TLB borrow (idle or
		// post-exit): drop the borrowed space's existence reference.
		k.mmDrop(k.activeMM)
	}
	k.activeMM = t.mm
	k.cur = t
	k.M.Trc.SetTask(t.PID)
	k.M.Ph.SetTask(t.PID, t.mm.ID)
	k.loadSegments(t)
	k.loadFBBAT(t)
	if t.sigPending > 0 {
		k.drainSignals(t)
	}
}

// IdleStats reports what the idle task accomplished.
type IdleStats struct {
	Polls     uint64
	Reclaimed uint64
	Cleared   uint64
}

// RunIdleFor runs the idle task until the ledger has advanced by at
// least the given number of cycles — the simulation of an I/O wait
// ("the idle task runs quite often even on a heavily loaded system ...
// a lot of I/O happens that must be waited for", §9). Depending on
// configuration each poll reclaims zombie hash-table PTEs (§7) and/or
// clears free pages (§9).
func (k *Kernel) RunIdleFor(cycles clock.Cycles) IdleStats {
	defer k.span(PathIdle)()
	k.M.Mon.IdleWaits++
	var st IdleStats
	if k.cfg.IdleCacheLock {
		// §10.1: nothing the idle task does is time-critical, so lock
		// the cache for the duration — idle work may hit but never
		// evicts anyone's lines.
		k.M.SetCacheLock(true)
		defer k.M.SetCacheLock(false)
	}
	deadline := k.M.Led.Now() + cycles
	for k.M.Led.Now() < deadline {
		st.Polls++
		k.M.Mon.IdlePolls++
		k.kexec(textIdle, idlePollInstr)

		if k.cfg.IdleReclaim && k.cfg.LazyFlush && k.usesHTAB() {
			st.Reclaimed += uint64(k.idleReclaimScan())
		}

		switch k.cfg.IdleClear {
		case IdleClearOff:
			// Plain idle loop: spin.
			k.M.Led.Charge(32)
		case IdleClearCached:
			if pfn, ok := k.M.Mem.PopClearedCandidate(); ok {
				k.clearPageIdle(pfn, false)
				k.M.Mem.PushCleared(pfn)
				st.Cleared++
			} else {
				k.M.Led.Charge(32)
			}
		case IdleClearUncached:
			// Control experiment: clear with the cache off but throw
			// the work away (no list).
			if pfn, ok := k.M.Mem.PopClearedCandidate(); ok {
				k.clearPageIdle(pfn, true)
				st.Cleared++
			} else {
				k.M.Led.Charge(32)
			}
		case IdleClearUncachedList:
			if pfn, ok := k.M.Mem.PopClearedCandidate(); ok {
				k.clearPageIdle(pfn, true)
				k.M.Mem.PushCleared(pfn)
				st.Cleared++
			} else {
				k.M.Led.Charge(32)
			}
		}
	}
	return st
}

// idleReclaimScan is one idle-poll sweep over the hash table for
// zombie PTEs (§7), returning how many it reclaimed.
func (k *Kernel) idleReclaimScan() int {
	defer k.span(PathIdleReclaim)()
	k.M.Mon.IdleScans++
	var n int
	scanStart := k.M.Led.Now()
	k.idleScan, n = k.M.MMU.HTAB.ReclaimScan(k.idleScan, idleReclaimGroups, k.M, k.zombie)
	k.M.Mon.ZombiesReclaimed += uint64(n)
	if n > 0 {
		k.M.Trc.Emit(mmtrace.KindIdleReclaim, 0, 0, k.M.Led.Now()-scanStart, uint32(n))
	}
	return n
}

// clearPageIdle clears one page from the idle task: a store per line,
// cached or cache-inhibited per the experiment variant.
func (k *Kernel) clearPageIdle(pfn arch.PFN, inhibited bool) {
	defer k.span(PathPreZero)()
	k.M.Mon.IdlePagesCleared++
	start := k.M.Led.Now()
	k.kexec(textIdle+0x200, idleClearInstr)
	line := k.M.LineSize()
	k.M.MemAccessRun(pfn.Addr(), arch.PageSize/line, line, cache.ClassIdle, inhibited, true)
	// EA carries the physical frame address: the page has no virtual
	// identity yet.
	k.M.Trc.Emit(mmtrace.KindPageZero, 0, arch.EffectiveAddr(pfn.Addr()), k.M.Led.Now()-start, 0)
}
