package kernel

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
)

// overcommit drives the machine past physical memory: ~7600 frames are
// free after boot; three tasks touching 3000 anon pages each must swap.
func overcommit(t *testing.T, cfg Config) (*Kernel, []*Task) {
	t.Helper()
	k, first := bootTask(t, clock.PPC604At185(), cfg)
	tasks := []*Task{first}
	img := k.images["test"]
	for i := 0; i < 2; i++ {
		tasks = append(tasks, k.Spawn(img))
	}
	for _, tk := range tasks {
		k.Switch(tk)
		k.SysBrk(3100)
	}
	return k, tasks
}

func TestSwapUnderPressure(t *testing.T) {
	k, tasks := overcommit(t, Optimized())
	for _, tk := range tasks {
		k.Switch(tk)
		k.UserTouchPages(UserDataBase, 3000)
	}
	st := k.Swap()
	if st.Outs == 0 {
		t.Fatal("overcommit did not swap")
	}
	if st.OnDevice == 0 {
		t.Fatal("nothing resident on the swap device")
	}
	if k.M.Mem.FreeFrames() < 0 {
		t.Fatal("negative free frames")
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapInRestoresPages(t *testing.T) {
	k, tasks := overcommit(t, Optimized())
	a := tasks[0]
	for _, tk := range tasks {
		k.Switch(tk)
		k.UserTouchPages(UserDataBase, 3000)
	}
	// Task a's early pages were stolen; touching them faults them back.
	k.Switch(a)
	before := k.M.Mon.Snapshot()
	k.UserTouchPages(UserDataBase, 64)
	d := k.M.Mon.Delta(before)
	if d.SwapIns == 0 {
		t.Fatal("no swap-ins when re-touching stolen pages")
	}
	for pg := 0; pg < 64; pg++ {
		ea := UserDataBase + arch.EffectiveAddr(pg*arch.PageSize)
		if _, ok := a.PT.Lookup(ea); !ok {
			t.Fatalf("page %d not restored", pg)
		}
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapOutFlushesTranslations(t *testing.T) {
	k, tasks := overcommit(t, Optimized())
	before := k.M.Mon.Snapshot()
	for _, tk := range tasks {
		k.Switch(tk)
		k.UserTouchPages(UserDataBase, 3000)
	}
	d := k.M.Mon.Delta(before)
	if d.FlushPage < d.SwapOuts {
		t.Fatalf("every swap-out must flush its page: %d flushes, %d outs", d.FlushPage, d.SwapOuts)
	}
}

func TestSwapExitDropsSlots(t *testing.T) {
	k, tasks := overcommit(t, Optimized())
	for _, tk := range tasks {
		k.Switch(tk)
		k.UserTouchPages(UserDataBase, 3000)
	}
	victim := tasks[2]
	k.Switch(victim)
	k.Exit()
	k.Wait(victim)
	for key := range k.swapped {
		if key.pid == victim.PID {
			t.Fatal("exited task's pages still on the swap device")
		}
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapThrashCostsTime(t *testing.T) {
	// Two passes over an overcommitted set must be much slower than
	// over a resident set — the thrash penalty is simulated I/O.
	run := func(pages int) clock.Cycles {
		k, _ := bootTask(t, clock.PPC604At185(), Optimized())
		k.SysBrk(pages + 64)
		k.UserTouchPages(UserDataBase, pages)
		start := k.M.Led.Now()
		for pass := 0; pass < 2; pass++ {
			k.UserTouchPages(UserDataBase, pages)
		}
		return (k.M.Led.Now() - start) / clock.Cycles(pages)
	}
	resident := run(2000) // fits
	thrash := run(9000)   // > free RAM by itself
	if thrash < 10*resident {
		t.Fatalf("thrash per-page cost (%d cycles) should dwarf resident cost (%d)", thrash, resident)
	}
}

func TestSwapDeterminism(t *testing.T) {
	run := func() (clock.Cycles, uint64) {
		k, tasks := overcommit(t, Optimized())
		for _, tk := range tasks {
			k.Switch(tk)
			k.UserTouchPages(UserDataBase, 3000)
		}
		return k.M.Led.Now(), k.M.Mon.SwapOuts
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("swap nondeterministic: %d/%d vs %d/%d", c1, s1, c2, s2)
	}
}
