package kernel

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
)

func TestBrkGrowAndUse(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	if k.HeapPages() != 1024 {
		t.Fatalf("initial heap = %d pages", k.HeapPages())
	}
	k.SysBrk(1200)
	if k.HeapPages() != 1200 {
		t.Fatalf("heap after grow = %d", k.HeapPages())
	}
	// The new range is usable.
	k.UserTouch(UserDataBase+arch.EffectiveAddr(1100*arch.PageSize), 4*arch.PageSize)
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestBrkShrinkFreesAndFlushes(t *testing.T) {
	k, task := bootTask(t, clock.PPC604At185(), Unoptimized())
	k.SysBrk(1100)
	k.UserTouch(UserDataBase+arch.EffectiveAddr(1024*arch.PageSize), 60*arch.PageSize)
	free0 := k.M.Mem.FreeFrames()
	before := k.M.Mon.Snapshot()

	k.SysBrk(1024) // drop the 76 pages above the original break

	d := k.M.Mon.Delta(before)
	if d.FlushRange+d.FlushContext == 0 {
		t.Fatal("brk shrink must flush the dropped range")
	}
	// Eager mode flushes page by page: 76 pages searched.
	if d.FlushPage != 76 {
		t.Fatalf("flushed %d pages, want 76", d.FlushPage)
	}
	// 60 data frames come back, plus possibly an emptied PTE page.
	if got := k.M.Mem.FreeFrames(); got < free0+60 || got > free0+62 {
		t.Fatalf("frames freed: %d -> %d, want +60..62", free0, got)
	}
	if task.PT.CountRange(UserDataBase+arch.EffectiveAddr(1024*arch.PageSize), UserDataBase+arch.EffectiveAddr(1100*arch.PageSize)) != 0 {
		t.Fatal("mappings survive the shrink")
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestBrkShrinkUsesCutoff(t *testing.T) {
	// With the tuned kernel a >20-page shrink becomes a context flush —
	// the exact §7 mechanism for malloc's arena releases.
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	k.SysBrk(1100)
	before := k.M.Mon.Snapshot()
	k.SysBrk(1024)
	d := k.M.Mon.Delta(before)
	if d.FlushContext != 1 || d.FlushPage != 0 {
		t.Fatalf("tuned shrink should context-flush: %+v", d)
	}
}

func TestBrkInvalidPanics(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	defer func() {
		if recover() == nil {
			t.Error("brk to zero should panic")
		}
	}()
	k.SysBrk(0)
}

func TestBrkTouchBeyondBreakSegfaults(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	k.SysBrk(1024)
	defer func() {
		if recover() == nil {
			t.Error("touching past the break should fault fatally")
		}
	}()
	k.UserTouch(UserDataBase+arch.EffectiveAddr(1500*arch.PageSize), 64)
}
