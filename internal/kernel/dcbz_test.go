package kernel

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
)

func TestDCBZClearIsFasterButPollutes(t *testing.T) {
	clearCost := func(dcbz bool) (cycles clock.Cycles, kernelLines int) {
		cfg := Unoptimized()
		cfg.KernelBAT = true
		cfg.FastReload = true
		cfg.BzeroDCBZ = dcbz
		k, _ := bootTask(t, clock.PPC604At185(), cfg)
		start := k.M.Led.Now()
		k.UserTouch(UserDataBase, 64) // one demand-zero fault
		return k.M.Led.Now() - start, k.M.DCache.Residency()[cache.ClassKernelData]
	}
	storeCycles, storeLines := clearCost(false)
	dcbzCycles, dcbzLines := clearCost(true)
	if dcbzCycles >= storeCycles {
		t.Fatalf("dcbz clear (%d cycles) should beat store clear (%d)", dcbzCycles, storeCycles)
	}
	// Both dirty the whole page's worth of lines — that's the §9
	// pollution the authors feared; dcbz is not cleaner, just faster.
	if dcbzLines < 128 || storeLines < 128 {
		t.Fatalf("page clear should leave 128 resident lines: dcbz=%d stores=%d", dcbzLines, storeLines)
	}
}

func TestDCBZLinesAreDirty(t *testing.T) {
	cfg := Optimized()
	cfg.IdleClear = IdleClearOff
	cfg.BzeroDCBZ = true
	k, _ := bootTask(t, clock.PPC604At185(), cfg)
	dirty0 := k.M.DCache.DirtyLines()
	k.UserTouch(UserDataBase, 64) // demand-zero via dcbz
	if k.M.DCache.DirtyLines()-dirty0 < 128 {
		t.Fatalf("dcbz must leave the page's lines dirty: %d new",
			k.M.DCache.DirtyLines()-dirty0)
	}
	_ = arch.PageSize
}
