package kernel

// The batched reference pipeline. Long kernel and user loops touch
// memory in equally-strided streaks that stay on one page for dozens
// of references; the scalar path pays a full MMU translation for every
// one of them. A Run resolves the translation once per page streak,
// replays the per-reference translation side effects (hit counters,
// TLB LRU/sequence) in closed form, and hands the streak to the
// machine's batch cache simulation. Anything that can deviate from
// the straight-line pattern — fault injection, COW/RO write checks —
// forces the scalar loop, so counters, trace emits, and cycle charges
// stay reference-for-reference identical to scalar execution.

import (
	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
)

// Run describes a batch of references sharing class, width, and
// direction: Count references at EA, EA+Stride, ... Stride is in
// bytes and must be positive.
type Run struct {
	EA     arch.EffectiveAddr
	Count  int
	Stride int
	Class  cache.Class
	Write  bool
	Instr  bool
}

// xlatRec is one remembered translation: the per-task (and per-side)
// last-translation fastpath consulted before the full MMU walk. It is
// valid only while the MMU's translation generation still equals gen —
// the generation advances on every TLB invalidation, BAT register
// change, and segment load (which covers context switches, VSID
// reassignment, and machine-check repair), so a stale record can never
// produce a hit. TLB-sourced records additionally revalidate the
// remembered way on use, which covers silent eviction by TLB inserts.
type xlatRec struct {
	gen  uint64
	page arch.EffectiveAddr // EA of the page the record translates
	// paPage is the physical page base (BAT records only; BAT blocks
	// are page-linear, so pa = paPage + page offset).
	paPage    arch.PhysAddr
	way       int8 // TLB way holding the translation (TLB records)
	viaBAT    bool
	inhibited bool
}

// pageOf returns the page-aligned base of ea.
//
//mmutricks:noalloc
func pageOf(ea arch.EffectiveAddr) arch.EffectiveAddr {
	return ea &^ arch.EffectiveAddr(arch.PageSize-1)
}

// xrec returns the fastpath record for the given task and access side
// (the kernel's own records when t is nil).
//
//mmutricks:noalloc
func (k *Kernel) xrec(t *Task, instr bool) *xlatRec {
	side := 0
	if instr {
		side = 1
	}
	if t != nil {
		return &t.xlat[side]
	}
	return &k.kxlat[side]
}

// translate resolves ea, consulting the last-translation record before
// the full MMU walk. A record hit performs exactly the counter and TLB
// side effects of the scalar walk it replaces (BATHits++, or a hitting
// TLB lookup at the remembered way); everything else — generation
// mismatch, page mismatch, stale way, attached injector — falls back
// to the full walk.
//
//mmutricks:noalloc
func (k *Kernel) translate(t *Task, ea arch.EffectiveAddr, instr bool) (arch.PhysAddr, bool) {
	mmu := k.M.MMU
	if k.M.Inj == nil {
		rec := k.xrec(t, instr)
		if rec.gen == mmu.Gen() && rec.page == pageOf(ea) {
			if rec.viaBAT {
				k.M.Mon.BATHits++
				return rec.paPage + arch.PhysAddr(ea.Offset()), rec.inhibited
			}
			// The generation proves no BAT was programmed over this
			// page since the record was minted (the scalar walk would
			// still fall through the BAT compare) and the segment is
			// unchanged, so the VPN is the same.
			vpn := mmu.VPNFor(ea)
			if rpn, inh, ok := mmu.TLBFor(instr).LookupWay(vpn, rec.way); ok {
				k.M.Mon.TLBHits++
				return rpn.Addr() + arch.PhysAddr(ea.Offset()), inh
			}
		}
	}
	return k.translateSlow(t, ea, instr) //mmutricks:noalloc-ok the slow path runs the allocating fault handlers by design
}

// note refreshes the last-translation record after a successful full
// walk. With an injector attached the fastpath is disabled, so there
// is nothing to remember.
func (k *Kernel) note(t *Task, ea arch.EffectiveAddr, instr bool, pa arch.PhysAddr, inhibited, viaBAT bool) {
	if k.M.Inj != nil {
		return
	}
	mmu := k.M.MMU
	rec := k.xrec(t, instr)
	if viaBAT {
		*rec = xlatRec{
			gen: mmu.Gen(), page: pageOf(ea),
			paPage: pa - arch.PhysAddr(ea.Offset()),
			viaBAT: true, inhibited: inhibited,
		}
		return
	}
	if way, ok := mmu.TLBFor(instr).WayOf(mmu.VPNFor(ea)); ok {
		*rec = xlatRec{gen: mmu.Gen(), page: pageOf(ea), way: way, inhibited: inhibited}
		return
	}
	*rec = xlatRec{}
}

// replayHits performs the translation side effects of n further
// references to ea's page, which are guaranteed hits: the first
// reference of the streak just resolved, and cache traffic mutates no
// translation state. It mirrors the hardware priority — BAT compare
// first, then the TLB way.
//
//mmutricks:noalloc
func (k *Kernel) replayHits(ea arch.EffectiveAddr, instr bool, n int) {
	mmu := k.M.MMU
	bats := &mmu.DBAT
	if instr {
		bats = &mmu.IBAT
	}
	if _, _, ok := bats.Lookup(ea); ok {
		k.M.Mon.BATHits += uint64(n)
		return
	}
	vpn := mmu.VPNFor(ea)
	tlb := mmu.TLBFor(instr)
	way, ok := tlb.WayOf(vpn)
	if !ok {
		panic("kernel: replayHits: translation vanished inside a run")
	}
	tlb.ReplayWay(vpn, way, n)
	k.M.Mon.TLBHits += uint64(n)
}

// dataResident reports whether a data translation for ea is currently
// resident (BAT-covered or held in the DTLB) — i.e. whether a repeat
// reference is a guaranteed hit.
//
//mmutricks:noalloc
func (k *Kernel) dataResident(ea arch.EffectiveAddr) bool {
	mmu := k.M.MMU
	if _, _, ok := mmu.DBAT.Lookup(ea); ok {
		return true
	}
	_, ok := mmu.TLB.WayOf(mmu.VPNFor(ea))
	return ok
}

// AccessRun performs r.Count accesses on behalf of task t, splitting
// the run at page boundaries: one translation (and fault resolution)
// per page streak, batched cache simulation for the streak's
// references. Fault injection and pending COW/RO write checks force
// the scalar loop — those paths must observe every reference.
//
//mmutricks:noalloc
func (k *Kernel) AccessRun(t *Task, r Run) {
	if r.Count <= 0 {
		return
	}
	if k.M.Inj != nil ||
		(r.Write && t != nil && !r.EA.IsKernel() && (len(t.cowPages) > 0 || len(t.roPages) > 0)) {
		for i := 0; i < r.Count; i++ {
			k.access(t, r.EA+arch.EffectiveAddr(i*r.Stride), r.Instr, r.Class, r.Write) //mmutricks:noalloc-ok scalar fallback runs the allocating fault/COW paths by design
		}
		return
	}
	ea := r.EA
	n := r.Count
	for n > 0 {
		off := int(ea.Offset())
		var cnt int
		if off+(n-1)*r.Stride < arch.PageSize {
			// Whole remainder fits this page — the common shape, no
			// division needed.
			cnt = n
		} else {
			cnt = (arch.PageSize-1-off)/r.Stride + 1
			if cnt > n {
				cnt = n
			}
		}
		pa, inh := k.translate(t, ea, r.Instr)
		if cnt > 1 {
			k.replayHits(ea, r.Instr, cnt-1)
		}
		if r.Instr {
			k.M.FetchRun(pa, cnt, r.Stride, r.Class, inh)
		} else {
			k.M.MemAccessRun(pa, cnt, r.Stride, r.Class, inh, r.Write)
		}
		ea += arch.EffectiveAddr(cnt * r.Stride)
		n -= cnt
	}
}
