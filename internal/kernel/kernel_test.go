package kernel

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/machine"
	"mmutricks/internal/vsid"
)

// newTinyCtx builds a context allocator that wraps after 4 contexts,
// for wrap-path testing.
func newTinyCtx(scatter uint32) *vsid.ContextAllocator {
	return vsid.NewContextAllocator(scatter, 4)
}

// boot builds a machine+kernel with one task running a small image.
// Every booted kernel gets an end-of-test consistency sweep: lazy
// flushing leaves zombie PTEs and unmatchable TLB entries around on
// purpose, and the sweep proves the coherence invariants survived
// whatever the test did — including recovered panics.
func bootTask(t *testing.T, model clock.CPUModel, cfg Config) (*Kernel, *Task) {
	t.Helper()
	k := New(machine.New(model), cfg)
	img := k.LoadImage("test", 8)
	task := k.Spawn(img)
	t.Cleanup(func() {
		if err := k.CheckConsistency(); err != nil {
			t.Errorf("end-of-test consistency sweep: %v", err)
		}
	})
	return k, task
}

func TestBootKernelBAT(t *testing.T) {
	cfg := Unoptimized()
	cfg.KernelBAT = true
	k, _ := bootTask(t, clock.PPC604At185(), cfg)
	// The whole linear map must be covered: a kernel data access makes
	// no TLB traffic at all.
	before := k.M.Mon.Snapshot()
	k.kdata(0, 64)
	d := k.M.Mon.Delta(before)
	if d.TLBMisses != 0 || d.TLBHits != 0 {
		t.Fatalf("BAT-mapped kernel made TLB traffic: %+v", d)
	}
	if d.BATHits == 0 {
		t.Fatal("no BAT hits recorded")
	}
}

func TestBootNoBATUsesTLB(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Unoptimized())
	before := k.M.Mon.Snapshot()
	k.kdata(0, 64)
	d := k.M.Mon.Delta(before)
	if d.BATHits != 0 {
		t.Fatal("unoptimized kernel should not have BAT mappings")
	}
	if d.TLBMisses == 0 {
		t.Fatal("kernel data access should have missed the TLB")
	}
	// Kernel PTEs land in the TLB (the §5.1 footprint).
	if k.M.MMU.TLB.KernelEntries() == 0 {
		t.Fatal("kernel entries missing from TLB")
	}
}

func TestUserTouchFaultsPagesIn(t *testing.T) {
	for _, model := range []clock.CPUModel{clock.PPC603At180(), clock.PPC604At185()} {
		k, task := bootTask(t, model, Unoptimized())
		before := k.M.Mon.Snapshot()
		k.UserTouch(UserDataBase, 64)
		d := k.M.Mon.Delta(before)
		if d.MajorFaults != 1 {
			t.Fatalf("%s: major faults = %d, want 1 (demand-zero)", model.Name, d.MajorFaults)
		}
		if _, ok := task.PT.Lookup(UserDataBase); !ok {
			t.Fatalf("%s: page not mapped after fault", model.Name)
		}
		// Second touch: no fault, translation cached.
		before = k.M.Mon.Snapshot()
		k.UserTouch(UserDataBase, 64)
		d = k.M.Mon.Delta(before)
		if d.MajorFaults != 0 || d.MinorFaults != 0 {
			t.Fatalf("%s: refault on warm page: %+v", model.Name, d)
		}
	}
}

func TestTextFaultsAreMinor(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Unoptimized())
	before := k.M.Mon.Snapshot()
	k.UserRun(0, 64)
	d := k.M.Mon.Delta(before)
	if d.MinorFaults == 0 {
		t.Fatal("text should fault in from the page cache (minor)")
	}
	if d.MajorFaults != 0 {
		t.Fatal("text faults must not allocate")
	}
}

func Test603SoftwareReloadPaths(t *testing.T) {
	// With the hash table: reload searches it, missing the first time
	// and inserting, then hitting after a TLB eviction... simplest
	// check: counters move on the htab path only when UseHTAB.
	cfg := Unoptimized() // UseHTAB = true
	k, _ := bootTask(t, clock.PPC603At180(), cfg)
	before := k.M.Mon.Snapshot()
	k.UserTouch(UserDataBase, 32)
	d := k.M.Mon.Delta(before)
	if d.SoftwareReloads == 0 {
		t.Fatal("603 must take software reloads")
	}
	if d.HTABInserts == 0 {
		t.Fatal("UseHTAB reload should insert into the hash table")
	}
	if d.HardwareWalks != 0 {
		t.Fatal("603 must never hardware-walk")
	}

	cfg.UseHTAB = false
	k2, _ := bootTask(t, clock.PPC603At180(), cfg)
	before = k2.M.Mon.Snapshot()
	k2.UserTouch(UserDataBase, 32)
	d = k2.M.Mon.Delta(before)
	if d.HTABInserts != 0 || d.HTABHits != 0 || d.HTABMisses != 0 {
		t.Fatalf("no-htab 603 touched the hash table: %+v", d)
	}
	if k2.M.MMU.HTAB.Occupancy() != 0 {
		t.Fatal("no-htab kernel populated the hash table")
	}
}

func Test604AlwaysUsesHTAB(t *testing.T) {
	cfg := Optimized() // UseHTAB=false is ignored on the 604
	k, _ := bootTask(t, clock.PPC604At185(), cfg)
	before := k.M.Mon.Snapshot()
	k.UserTouch(UserDataBase, 32)
	d := k.M.Mon.Delta(before)
	if d.HardwareWalks == 0 || d.HTABInserts == 0 {
		t.Fatalf("604 must use the hash table: %+v", d)
	}
}

func Test603HTABSecondLevelTLBCache(t *testing.T) {
	// After the TLB is flushed, a UseHTAB 603 should hit the hash
	// table on reload (it acts as a second-level TLB cache).
	k, _ := bootTask(t, clock.PPC603At180(), Unoptimized())
	k.UserTouchPages(UserDataBase, 8)
	k.M.MMU.TLB.InvalidateAll()
	before := k.M.Mon.Snapshot()
	k.UserTouchPages(UserDataBase, 8)
	d := k.M.Mon.Delta(before)
	if d.HTABHits < 8 {
		// At least the 8 user pages; kernel text/data pages may add
		// hits of their own.
		t.Fatalf("hash hits after TLB flush = %d, want >= 8", d.HTABHits)
	}
	if d.MajorFaults+d.MinorFaults != 0 {
		t.Fatal("no page faults expected on warm pages")
	}
}

func TestFastReloadIsCheaper(t *testing.T) {
	run := func(fast bool) clock.Cycles {
		cfg := Unoptimized()
		cfg.FastReload = fast
		k, _ := bootTask(t, clock.PPC603At180(), cfg)
		k.UserTouchPages(UserDataBase, 64) // fault everything in
		k.M.MMU.TLB.InvalidateAll()
		start := k.M.Led.Now()
		k.UserTouchPages(UserDataBase, 64) // pure reload cost
		return k.M.Led.Now() - start
	}
	slow, fast := run(false), run(true)
	if fast >= slow {
		t.Fatalf("fast reload (%d cycles) not cheaper than C reload (%d)", fast, slow)
	}
	// §6.1 reports large gains; the reload path itself should be at
	// least 2x cheaper.
	if slow < fast*2 {
		t.Logf("note: reload improvement only %.2fx", float64(slow)/float64(fast))
	}
}

func TestForkCopiesPrivateSharesText(t *testing.T) {
	k, parent := bootTask(t, clock.PPC604At185(), Unoptimized())
	k.UserTouch(UserDataBase, arch.PageSize) // fault one heap page
	k.UserRun(0, 64)                         // fault one text page
	child := k.Fork()
	if child.PID == parent.PID {
		t.Fatal("child PID must differ")
	}
	if child.Ctx == parent.Ctx {
		t.Fatal("child must have its own mm context")
	}
	// Child heap page copied.
	ce, ok := child.PT.Lookup(UserDataBase)
	if !ok {
		t.Fatal("child heap page missing")
	}
	pe, _ := parent.PT.Lookup(UserDataBase)
	if ce.RPN == pe.RPN {
		t.Fatal("child shares parent's private page")
	}
	// Text is shared via the page cache: child faults it to the same
	// frame.
	k.Switch(child)
	k.UserRun(0, 64)
	cte, _ := child.PT.Lookup(UserTextBase)
	pte, _ := parent.PT.Lookup(UserTextBase)
	if cte.RPN != pte.RPN {
		t.Fatal("text frames must be shared")
	}
}

func TestExitFreesEverything(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Unoptimized())
	free0 := k.M.Mem.FreeFrames()
	child := k.Fork()
	k.Switch(child)
	k.UserTouch(UserDataBase, 4*arch.PageSize)
	k.UserRun(0, 64)
	k.Exit()
	k.Wait(child)
	if got := k.M.Mem.FreeFrames(); got != free0 {
		t.Fatalf("frame leak: %d free, want %d", got, free0)
	}
	if _, ok := k.Task(child.PID); ok {
		t.Fatal("task not reaped")
	}
}

func TestExecReplacesAddressSpace(t *testing.T) {
	k, task := bootTask(t, clock.PPC604At185(), Unoptimized())
	k.UserTouch(UserDataBase, arch.PageSize)
	img2 := k.LoadImage("other", 4)
	k.Exec(img2)
	if task.image != img2 {
		t.Fatal("image not replaced")
	}
	if _, ok := task.PT.Lookup(UserDataBase); ok {
		t.Fatal("old mappings survived exec")
	}
	// The new text demand-faults fine.
	k.UserRun(0, 64)
}

func TestLazyFlushRetiresVSIDs(t *testing.T) {
	cfg := Optimized()
	k, task := bootTask(t, clock.PPC604At185(), cfg)
	k.UserTouchPages(UserDataBase, 8)
	oldCtx := task.Ctx
	oldVSID := task.Segs[int(UserDataBase>>28)]
	occBefore := k.M.MMU.HTAB.Occupancy()
	before := k.M.Mon.Snapshot()

	k.flushContext(task)

	d := k.M.Mon.Delta(before)
	if d.FlushContext != 1 {
		t.Fatal("flush not counted")
	}
	if d.HTABFlushSearches != 0 {
		t.Fatal("lazy flush must not search the hash table")
	}
	if task.Ctx == oldCtx {
		t.Fatal("context not reassigned")
	}
	if !k.ZombieVSID(oldVSID) {
		t.Fatal("old VSID not zombie")
	}
	// Zombie PTEs remain valid in the table (§7).
	if k.M.MMU.HTAB.Occupancy() != occBefore {
		t.Fatal("lazy flush physically invalidated PTEs")
	}
	if k.M.MMU.HTAB.LiveOccupancy(k.zombie) != occBefore-8 {
		t.Fatalf("live occupancy = %d", k.M.MMU.HTAB.LiveOccupancy(k.zombie))
	}
	// The stale translations never match: touching the pages faults
	// them in freshly rather than reusing zombies.
	before = k.M.Mon.Snapshot()
	k.UserTouchPages(UserDataBase, 8)
	d = k.M.Mon.Delta(before)
	if d.TLBMisses == 0 {
		t.Fatal("stale TLB entries matched after lazy flush")
	}
}

func TestEagerFlushSearchesHTAB(t *testing.T) {
	cfg := Unoptimized()
	k, task := bootTask(t, clock.PPC604At185(), cfg)
	k.UserTouchPages(UserDataBase, 8)
	occBefore := k.M.MMU.HTAB.Occupancy()
	before := k.M.Mon.Snapshot()
	k.flushContext(task)
	d := k.M.Mon.Delta(before)
	if d.HTABFlushSearches == 0 {
		t.Fatal("eager flush must search the hash table")
	}
	if k.M.MMU.HTAB.Occupancy() >= occBefore {
		t.Fatal("eager flush must physically invalidate PTEs")
	}
	if task.Ctx == 0 {
		t.Fatal("task lost its context")
	}
}

func TestFlushRangeCutoff(t *testing.T) {
	cfg := Optimized() // cutoff 20
	k, task := bootTask(t, clock.PPC604At185(), cfg)
	before := k.M.Mon.Snapshot()
	k.flushRange(task, UserMmapBase, 10) // under cutoff: per-page
	d := k.M.Mon.Delta(before)
	if d.FlushRange != 1 || d.FlushPage != 10 || d.FlushContext != 0 {
		t.Fatalf("small range: %+v", d)
	}
	before = k.M.Mon.Snapshot()
	k.flushRange(task, UserMmapBase, 100) // over cutoff: context flush
	d = k.M.Mon.Delta(before)
	if d.FlushContext != 1 || d.FlushPage != 0 {
		t.Fatalf("large range: %+v", d)
	}
}

func TestMmapMunmapLifecycle(t *testing.T) {
	k, task := bootTask(t, clock.PPC604At185(), Unoptimized())
	free0 := k.M.Mem.FreeFrames()
	addr := k.SysMmap(16)
	if addr != UserMmapBase {
		t.Fatalf("mmap placement = %v", addr)
	}
	k.UserTouch(addr, 16*arch.PageSize) // fault all 16 in
	if task.PT.CountRange(addr, addr+16*arch.PageSize) != 16 {
		t.Fatal("pages not mapped")
	}
	k.SysMunmap(addr, 16)
	if task.PT.CountRange(addr, addr+16*arch.PageSize) != 0 {
		t.Fatal("pages still mapped after munmap")
	}
	// Only the PTE page (if any) may differ; frames must be returned.
	if got := k.M.Mem.FreeFrames(); got < free0-1 {
		t.Fatalf("frames leaked by munmap: %d < %d", got, free0)
	}
	defer func() {
		if recover() == nil {
			t.Error("double munmap should panic")
		}
	}()
	k.SysMunmap(addr, 16)
}

func TestPipeRoundTrip(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Unoptimized())
	p := k.SysPipe()
	if p.Space() != arch.PageSize || p.Buffered() != 0 {
		t.Fatal("fresh pipe state wrong")
	}
	// Write beyond capacity: truncated at one page.
	n := k.SysPipeWrite(p, UserDataBase, arch.PageSize+100)
	if n != arch.PageSize {
		t.Fatalf("wrote %d", n)
	}
	if k.SysPipeWrite(p, UserDataBase, 1) != 0 {
		t.Fatal("full pipe accepted a write")
	}
	if got := k.SysPipeRead(p, UserDataBase+0x10000, 512); got != 512 {
		t.Fatalf("read %d", got)
	}
	if p.Buffered() != arch.PageSize-512 {
		t.Fatalf("buffered = %d", p.Buffered())
	}
	// Drain.
	if got := k.SysPipeRead(p, UserDataBase+0x10000, arch.PageSize); got != arch.PageSize-512 {
		t.Fatalf("drain read %d", got)
	}
	if k.SysPipeRead(p, UserDataBase+0x10000, 1) != 0 {
		t.Fatal("empty pipe returned data")
	}
}

func TestFileRead(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Unoptimized())
	f := k.CreateFile(4)
	if f.Size() != 4*arch.PageSize {
		t.Fatal("file size wrong")
	}
	if n := k.SysRead(f, 0, UserDataBase, 6000); n != 6000 {
		t.Fatalf("read %d", n)
	}
	// Reads past EOF truncate / return 0.
	if n := k.SysRead(f, f.Size()-100, UserDataBase, 500); n != 100 {
		t.Fatalf("tail read %d", n)
	}
	if n := k.SysRead(f, f.Size(), UserDataBase, 10); n != 0 {
		t.Fatalf("EOF read %d", n)
	}
}

func TestSyscallCountsAndCost(t *testing.T) {
	cfgFast := Optimized()
	cfgSlow := Unoptimized()
	cost := func(cfg Config) clock.Cycles {
		k, _ := bootTask(t, clock.PPC604At185(), cfg)
		k.SysNull() // warm the path
		k.SysNull()
		start := k.M.Led.Now()
		for i := 0; i < 10; i++ {
			k.SysNull()
		}
		return (k.M.Led.Now() - start) / 10
	}
	fast, slow := cost(cfgFast), cost(cfgSlow)
	if fast >= slow {
		t.Fatalf("fast syscall (%d) not cheaper than slow (%d)", fast, slow)
	}
}

func TestSwitchLoadsSegments(t *testing.T) {
	k, a := bootTask(t, clock.PPC604At185(), Optimized())
	b := k.Fork()
	k.Switch(b)
	if k.Current() != b {
		t.Fatal("current not switched")
	}
	seg := int(UserDataBase >> 28)
	if k.M.MMU.Segment(seg) != b.Segs[seg] {
		t.Fatal("segment registers not loaded")
	}
	k.Switch(a)
	if k.M.MMU.Segment(seg) != a.Segs[seg] {
		t.Fatal("segment registers not restored")
	}
	if k.M.Mon.CtxSwitches != 2 {
		t.Fatalf("ctx switches = %d", k.M.Mon.CtxSwitches)
	}
}

func TestIdleReclaimSweepsZombies(t *testing.T) {
	cfg := Optimized()
	k, task := bootTask(t, clock.PPC604At185(), cfg)
	k.UserTouchPages(UserDataBase, 32)
	k.flushContext(task) // 32 zombies in the table
	if z := k.M.MMU.HTAB.Occupancy() - k.M.MMU.HTAB.LiveOccupancy(k.zombie); z < 32 {
		t.Fatalf("zombies in table = %d", z)
	}
	st := k.RunIdleFor(2_000_000) // long enough to sweep all 2048 groups
	if st.Reclaimed < 32 {
		t.Fatalf("reclaimed %d zombies", st.Reclaimed)
	}
	occ := k.M.MMU.HTAB.Occupancy()
	if occ != k.M.MMU.HTAB.LiveOccupancy(k.zombie) {
		t.Fatalf("zombies remain after full sweep: occ=%d", occ)
	}
}

func TestIdleClearModes(t *testing.T) {
	mk := func(mode IdleClearMode) (*Kernel, IdleStats) {
		cfg := Optimized()
		cfg.IdleClear = mode
		k, _ := bootTask(t, clock.PPC604At185(), cfg)
		st := k.RunIdleFor(500_000)
		return k, st
	}
	k, st := mk(IdleClearOff)
	if st.Cleared != 0 || k.M.Mem.ClearedLen() != 0 {
		t.Fatal("off mode cleared pages")
	}
	k, st = mk(IdleClearCached)
	if st.Cleared == 0 || k.M.Mem.ClearedLen() == 0 {
		t.Fatal("cached mode banked nothing")
	}
	if k.M.DCache.Residency()[cache.ClassIdle] == 0 {
		t.Fatal("cached clearing must pollute the data cache")
	}
	k, st = mk(IdleClearUncached)
	if st.Cleared == 0 {
		t.Fatal("uncached control mode cleared nothing")
	}
	if k.M.Mem.ClearedLen() != 0 {
		t.Fatal("control mode must not bank pages")
	}
	k, st = mk(IdleClearUncachedList)
	if st.Cleared == 0 || k.M.Mem.ClearedLen() == 0 {
		t.Fatal("uncached+list banked nothing")
	}
	if k.M.DCache.Residency()[cache.ClassIdle] != 0 {
		// Zombie-reclaim scans may fill hash-table lines, but the
		// uncached page clears themselves must leave no residue.
		t.Fatal("uncached clearing polluted the cache")
	}
	// The fast path: a demand-zero fault now skips the synchronous
	// clear.
	before := k.M.Mon.Snapshot()
	k.UserTouch(UserDataBase, 64)
	d := k.M.Mon.Delta(before)
	if d.ClearedPageHits != 1 {
		t.Fatalf("pre-cleared page not used: %+v", d)
	}
}

func TestGetFreePageClearsWhenNoList(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Unoptimized())
	start := k.M.Led.Now()
	k.UserTouch(UserDataBase, 64) // demand-zero fault, synchronous clear
	elapsed := k.M.Led.Now() - start
	// 128 line stores at the very least.
	if elapsed < 128 {
		t.Fatalf("synchronous clear too cheap: %d cycles", elapsed)
	}
}

func TestContextWrapGlobalFlush(t *testing.T) {
	cfg := Optimized()
	k, task := bootTask(t, clock.PPC604At185(), cfg)
	// Force the allocator close to its limit by replacing it — instead
	// exercise wrap by flushing repeatedly with a tiny max.
	k.ctx = newTinyCtx(cfg.Scatter)
	k.UserTouchPages(UserDataBase, 4)
	for i := 0; i < 10; i++ {
		k.flushContext(task)
	}
	// After wraps the machine is still consistent: touch works.
	k.UserTouchPages(UserDataBase, 4)
	if task.Ctx == 0 {
		t.Fatal("task has no context")
	}
}

func TestCachePageTablesToggle(t *testing.T) {
	run := func(cached bool) uint64 {
		cfg := Unoptimized()
		cfg.CachePageTables = cached
		k, _ := bootTask(t, clock.PPC604At185(), cfg)
		k.UserTouchPages(UserMmapBase1MB(k), 128)
		st := k.M.DCache.Stats()
		return st.Fills[cache.ClassPageTable] + st.Fills[cache.ClassHashTable]
	}
	if fills := run(false); fills != 0 {
		t.Fatalf("uncached page tables still filled the cache: %d", fills)
	}
	if fills := run(true); fills == 0 {
		t.Fatal("cached page tables made no fills")
	}
}

// UserMmapBase1MB maps 128 pages and returns the base — helper for
// table-walk-heavy tests.
func UserMmapBase1MB(k *Kernel) arch.EffectiveAddr {
	return k.SysMmap(128)
}
