package kernel

import (
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/pagetable"
)

// Syscall instruction-path lengths. The fast figures are the §6.1
// hand-optimized exception entry/exit; the slow figures are the
// original path that saves and restores full state through C.
const (
	// The hand-optimized entry/exit (§6.1) against the original path,
	// which saved and restored full state through C. The paper's own
	// ratio calibrates these: null syscall went from 18 µs to 2 µs at
	// 133 MHz, a ~2100-cycle difference in path cost.
	syscallFastInstr = 180
	syscallSlowInstr = 1600
	trapCycles       = 40 // taking and returning from the trap itself

	pipeOpInstr = 400 // pipe read/write bookkeeping
	mmapInstr   = 380 // build the vma
	munmapInstr = 300 // remove the vma (plus flush costs)
	// The file-read path is per-page heavy: find_page hash walk,
	// locking, read-ahead bookkeeping, and the era's generic file copy
	// loop, which was far slower than the hand-tuned pipe copier. The
	// paper's tables consistently show file reread at roughly half of
	// pipe bandwidth; these constants are held fixed across all
	// configurations.
	filePerPageInstr      = 500
	fileCopyCyclesPerByte = 1
)

// syscallEntry charges the cost of entering and leaving the kernel for
// a system call, and opens the profiler's syscall span; callers write
//
//	defer k.syscallEntry()()
func (k *Kernel) syscallEntry() func() {
	done := k.span(PathSyscall)
	k.M.Mon.Syscalls++
	k.M.Led.Charge(trapCycles)
	if k.cfg.FastReload {
		k.kexec(textSyscall, syscallFastInstr)
		k.kdataW(dataTaskStructs+k.cur.slotOff(), 64)
	} else {
		k.kexec(textSyscall, syscallSlowInstr)
		k.kdataW(dataTaskStructs+k.cur.slotOff(), 256)
	}
	return done
}

// SysNull is the trivial system call (LmBench's getppid loop): pure
// entry/exit overhead.
func (k *Kernel) SysNull() {
	defer k.syscallEntry()()
}

// ---------------------------------------------------------------------
// Pipes
// ---------------------------------------------------------------------

// Pipe is a one-page kernel FIFO.
type Pipe struct {
	ID  int
	buf arch.PFN
	// used is how many bytes are in the buffer; head is the read
	// offset (the buffer is a ring).
	used, head int
}

// Space returns how many bytes a write can currently accept.
func (p *Pipe) Space() int { return arch.PageSize - p.used }

// Buffered returns how many bytes a read can currently return.
func (p *Pipe) Buffered() int { return p.used }

// SysPipe creates a pipe, allocating its kernel buffer page.
func (k *Kernel) SysPipe() *Pipe {
	defer k.syscallEntry()()
	k.kexec(textPipe, 120)
	pfn := k.getFreePage()
	p := &Pipe{ID: k.nextPipe, buf: pfn}
	k.nextPipe++
	k.pipes[p.ID] = p
	return p
}

// SysPipeWrite copies up to n bytes from the user buffer at src into
// the pipe, returning how many were written (0 means the pipe is full
// and the caller would block — the workload is responsible for
// scheduling the reader, as LmBench's ping-pong structure does).
func (k *Kernel) SysPipeWrite(p *Pipe, src arch.EffectiveAddr, n int) int {
	defer k.syscallEntry()()
	k.kexec(textPipe+0x200, pipeOpInstr)
	k.kdata(dataPipeTable+uint32(p.ID%32)*64, 64)
	n = min(n, p.Space())
	if n == 0 {
		return 0
	}
	k.copyUserKernel(src, p.buf, (p.head+p.used)%arch.PageSize, n, true)
	p.used += n
	return n
}

// SysPipeRead copies up to n bytes from the pipe into the user buffer
// at dst, returning how many were read (0 means empty).
func (k *Kernel) SysPipeRead(p *Pipe, dst arch.EffectiveAddr, n int) int {
	defer k.syscallEntry()()
	k.kexec(textPipe+0x400, pipeOpInstr)
	k.kdata(dataPipeTable+uint32(p.ID%32)*64, 64)
	n = min(n, p.used)
	if n == 0 {
		return 0
	}
	k.copyUserKernel(dst, p.buf, p.head, n, false)
	p.head = (p.head + n) % arch.PageSize
	p.used -= n
	return n
}

// copyUserKernel charges a copy between user memory and a kernel frame:
// one load and one store per line, both sides through their real
// translation and cache paths (copy_to_user/copy_from_user).
func (k *Kernel) copyUserKernel(user arch.EffectiveAddr, frame arch.PFN, frameOff, n int, toKernel bool) {
	k.kexec(textCopyInOut, 20+(n/k.M.LineSize()))
	line := k.M.LineSize()
	t := k.cur
	userWrite := !toKernel
	if k.M.Inj != nil || (userWrite && t != nil && (len(t.cowPages) > 0 || len(t.roPages) > 0)) {
		// Injection polls and pending COW/RO write checks are
		// per-reference; keep the scalar interleaving.
		for i := 0; i < n; i += line {
			k.access(t, user+arch.EffectiveAddr(i), false, cache.ClassUser, userWrite)
			koff := (frameOff + i) % arch.PageSize
			k.M.MemAccess(frame.Addr()+arch.PhysAddr(koff), cache.ClassKernelData, false, toKernel)
		}
		k.M.Led.Charge(clock.Cycles(2 * (n / line)))
		return
	}
	total := (n + line - 1) / line
	done := 0
	for done < total {
		ea := user + arch.EffectiveAddr(done*line)
		koff := (frameOff + done*line) % arch.PageSize
		// Chunk: stay on the user page and inside the (wrapping) frame.
		cnt := min(total-done, min(
			(arch.PageSize-int(ea.Offset())+line-1)/line,
			(arch.PageSize-koff+line-1)/line))
		// The first reference translates through the full path, so a
		// user fault resolves at the exact scalar point in the stream.
		pa, inh := k.translate(t, ea, false)
		if inh {
			// Inhibited user page: per-reference latency and emits.
			k.M.MemAccess(pa, cache.ClassUser, true, userWrite)
			k.M.MemAccess(frame.Addr()+arch.PhysAddr(koff), cache.ClassKernelData, false, toKernel)
			done++
			continue
		}
		if cnt > 1 {
			k.replayHits(ea, false, cnt-1)
		}
		k.M.MemPairRun(pa, frame.Addr()+arch.PhysAddr(koff), cnt, line,
			cache.ClassUser, cache.ClassKernelData, userWrite, toKernel)
		done += cnt
	}
	k.M.Led.Charge(clock.Cycles(2 * (n / line)))
}

// ---------------------------------------------------------------------
// mmap / munmap
// ---------------------------------------------------------------------

// SysMmap maps pages of anonymous memory into the current task,
// returning the placement address. Pages are demand-faulted.
func (k *Kernel) SysMmap(pages int) arch.EffectiveAddr {
	t := k.cur
	defer k.syscallEntry()()
	k.kexec(textMmap, mmapInstr)
	k.kdata(dataVMAs+t.slotOff()%0x1000, 128)
	addr := t.nextMmap
	t.nextMmap += arch.EffectiveAddr(pages * arch.PageSize)
	t.regions = append(t.regions, &Region{Start: addr, Pages: pages, Kind: RegionAnon})
	// Mapping new addresses into a process must ensure no stale
	// translations cover the range (§7).
	k.flushRange(t, addr, pages)
	return addr
}

// SysMunmap removes a mapping, freeing its private frames and flushing
// its translations.
func (k *Kernel) SysMunmap(addr arch.EffectiveAddr, pages int) {
	t := k.cur
	defer k.syscallEntry()()
	k.kexec(textMmap+0x400, munmapInstr)
	k.kdata(dataVMAs+t.slotOff()%0x1000, 128)
	idx := -1
	for i, r := range t.regions {
		if r.Start == addr && r.Pages == pages {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("kernel: munmap of unmapped region %v", addr))
	}
	k.flushRange(t, addr, pages)
	end := addr + arch.EffectiveAddr(pages*arch.PageSize)
	k.unmapRangeFrames(t, addr, end)
	t.regions = append(t.regions[:idx], t.regions[idx+1:]...)
}

// unmapRangeFrames removes PT entries in [start,end) and frees the
// task-owned frames they referenced.
func (k *Kernel) unmapRangeFrames(t *Task, start, end arch.EffectiveAddr) {
	k.releaseTaskCOW(t, start, end)
	var eas []arch.EffectiveAddr
	t.PT.Range(start, end, func(ea arch.EffectiveAddr, e pagetable.Entry) bool {
		eas = append(eas, ea)
		return true
	})
	for _, ea := range eas {
		e, ok := t.PT.Unmap(ea)
		if ok && t.owns(e.RPN) {
			t.disownFrame(e.RPN)
			k.M.Mem.FreeFrame(e.RPN)
		}
	}
}

// SysMmapFile maps pages of file f (starting at page offset offPages)
// into the current task. The mapping shares the page-cache frames;
// faults are minor and munmap frees nothing — this is what LmBench's
// lat_mmap actually maps.
func (k *Kernel) SysMmapFile(f *File, offPages, pages int) arch.EffectiveAddr {
	t := k.cur
	defer k.syscallEntry()()
	k.kexec(textMmap, mmapInstr)
	k.kdata(dataVMAs+t.slotOff()%0x1000, 128)
	if offPages < 0 || pages <= 0 || offPages+pages > len(f.Pages) {
		panic(fmt.Sprintf("kernel: mmap of pages [%d,%d) beyond file of %d pages", offPages, offPages+pages, len(f.Pages)))
	}
	addr := t.nextMmap
	t.nextMmap += arch.EffectiveAddr(pages * arch.PageSize)
	t.regions = append(t.regions, &Region{
		Start: addr, Pages: pages, Kind: RegionText,
		Backing: f.Pages[offPages : offPages+pages],
	})
	k.flushRange(t, addr, pages)
	return addr
}

// SysBrk grows or shrinks the current task's heap (the data region) to
// newPages. Shrinking releases the dropped pages and flushes their
// translations — the "ranges of 40-110 pages ... flushed in one shot"
// that §7's tunable cutoff exists for.
func (k *Kernel) SysBrk(newPages int) {
	t := k.cur
	defer k.syscallEntry()()
	k.kexec(textMmap+0xC00, 250)
	heap := t.regionFor(UserDataBase)
	if heap == nil {
		panic("kernel: task has no heap region")
	}
	if newPages <= 0 {
		panic(fmt.Sprintf("kernel: brk to %d pages", newPages))
	}
	old := heap.Pages
	switch {
	case newPages > old:
		heap.Pages = newPages
		// New addresses must carry no stale translations (§7).
		k.flushRange(t, heap.Start+arch.EffectiveAddr(old*arch.PageSize), newPages-old)
	case newPages < old:
		start := heap.Start + arch.EffectiveAddr(newPages*arch.PageSize)
		k.flushRange(t, start, old-newPages)
		k.unmapRangeFrames(t, start, heap.End())
		heap.Pages = newPages
	}
}

// HeapPages returns the current size of the task's data region.
func (k *Kernel) HeapPages() int {
	heap := k.cur.regionFor(UserDataBase)
	if heap == nil {
		return 0
	}
	return heap.Pages
}

// ---------------------------------------------------------------------
// Files and the page cache
// ---------------------------------------------------------------------

// File is a page-cache-resident file.
type File struct {
	ID    int
	Pages []arch.PFN
}

// Size returns the file length in bytes.
func (f *File) Size() int { return len(f.Pages) * arch.PageSize }

// CreateFile makes a file of the given page count fully resident in
// the page cache (setup; charges nothing).
func (k *Kernel) CreateFile(pages int) *File {
	f := &File{ID: k.nextFile}
	k.nextFile++
	for i := 0; i < pages; i++ {
		pfn, ok := k.M.Mem.AllocFrame()
		if !ok {
			panic("kernel: out of memory creating file")
		}
		f.Pages = append(f.Pages, pfn)
	}
	k.files[f.ID] = f
	return f
}

// SysRead copies n bytes of f starting at off into the user buffer at
// dst: a page-cache lookup and a copy_to_user per page — LmBench's
// "file reread" path.
func (k *Kernel) SysRead(f *File, off int, dst arch.EffectiveAddr, n int) int {
	defer k.syscallEntry()()
	k.kexec(textFileIO, 80)
	if off >= f.Size() {
		return 0
	}
	n = min(n, f.Size()-off)
	done := 0
	for done < n {
		page := (off + done) / arch.PageSize
		pageOff := (off + done) % arch.PageSize
		chunk := min(n-done, arch.PageSize-pageOff)
		k.kexec(textFileIO+0x200, filePerPageInstr)
		k.kdata(dataPageCache+uint32(page%128)*32, 256)
		k.copyUserKernel(dst+arch.EffectiveAddr(done), f.Pages[page], pageOff, chunk, false)
		k.M.Led.Charge(clock.Cycles(chunk * fileCopyCyclesPerByte))
		done += chunk
	}
	return n
}

// ---------------------------------------------------------------------
// User-mode execution helpers for workloads
// ---------------------------------------------------------------------

// UserRun simulates the current task executing n instructions of its
// program text starting at the given text page, with the matching
// instruction-fetch traffic.
func (k *Kernel) UserRun(textPage, n int) {
	t := k.cur
	if t == nil {
		panic("kernel: UserRun with no current task")
	}
	k.M.Led.Charge(clock.Cycles(n))
	line := k.M.LineSize()
	instrPerLine := line / 4
	lines := (n + instrPerLine - 1) / instrPerLine
	base := UserTextBase + arch.EffectiveAddr(textPage*arch.PageSize)
	// Wrap fetches within the image's text so the footprint is the
	// image's, not unbounded.
	span := t.image.TextPages * arch.PageSize
	for i := 0; i < lines; {
		off := (i * line) % span
		cnt := min(lines-i, (span-off)/line)
		k.AccessRun(t, Run{
			EA: base + arch.EffectiveAddr(off), Count: cnt, Stride: line,
			Class: cache.ClassUser, Instr: true,
		})
		i += cnt
	}
}

// UserTouch simulates the current task reading/writing nbytes at ea.
func (k *Kernel) UserTouch(ea arch.EffectiveAddr, nbytes int) {
	if k.cur == nil {
		panic("kernel: UserTouch with no current task")
	}
	k.utouch(ea, nbytes)
}

// UserTouchPages touches one word in each of n consecutive pages
// starting at ea — working-set style access for TLB experiments.
func (k *Kernel) UserTouchPages(ea arch.EffectiveAddr, n int) {
	if k.cur == nil {
		panic("kernel: UserTouchPages with no current task")
	}
	k.AccessRun(k.cur, Run{EA: ea, Count: n, Stride: arch.PageSize, Class: cache.ClassUser})
}

// UserRef performs a single user-mode data reference at ea — the
// primitive the trace-driven TLB/cache studies use.
func (k *Kernel) UserRef(ea arch.EffectiveAddr, write bool) {
	if k.cur == nil {
		panic("kernel: UserRef with no current task")
	}
	k.access(k.cur, ea, false, cache.ClassUser, write)
}

// UserRefRun performs count equally-strided user-mode data references
// starting at ea — the batched form of UserRef for generators that can
// describe their stream as runs.
func (k *Kernel) UserRefRun(ea arch.EffectiveAddr, count, stride int, write bool) {
	if k.cur == nil {
		panic("kernel: UserRefRun with no current task")
	}
	k.AccessRun(k.cur, Run{EA: ea, Count: count, Stride: stride, Class: cache.ClassUser, Write: write})
}

// UserZero clears nbytes at ea from user mode, either with ordinary
// stores or with the dcbz cache-line-zero instruction — the §9 bzero
// design space. dcbz establishes each line zeroed and dirty without a
// memory read.
func (k *Kernel) UserZero(ea arch.EffectiveAddr, nbytes int, dcbz bool) {
	t := k.cur
	if t == nil {
		panic("kernel: UserZero with no current task")
	}
	line := k.M.LineSize()
	if k.M.Inj != nil || len(t.cowPages) > 0 {
		for i := 0; i < nbytes; i += line {
			a := ea + arch.EffectiveAddr(i)
			if t.isCOW(a.PageNumber()) {
				k.cowBreak(t, a)
			}
			pa, inhibited := k.translate(t, a, false)
			switch {
			case inhibited:
				k.M.MemAccess(pa, cache.ClassUser, true, true)
			case dcbz:
				k.M.ZeroLine(pa, cache.ClassUser)
			default:
				k.M.MemAccess(pa, cache.ClassUser, false, true)
			}
		}
		// One store-address update per line either way.
		k.M.Led.Charge(clock.Cycles(nbytes / line))
		return
	}
	total := (nbytes + line - 1) / line
	done := 0
	for done < total {
		a := ea + arch.EffectiveAddr(done*line)
		cnt := min(total-done, (arch.PageSize-int(a.Offset())+line-1)/line)
		pa, inhibited := k.translate(t, a, false)
		if inhibited {
			k.M.MemAccess(pa, cache.ClassUser, true, true)
			done++
			continue
		}
		if cnt > 1 {
			k.replayHits(a, false, cnt-1)
		}
		if dcbz {
			k.M.ZeroLineRun(pa, cnt, cache.ClassUser)
		} else {
			k.M.MemAccessRun(pa, cnt, line, cache.ClassUser, false, true)
		}
		done += cnt
	}
	// One store-address update per line either way.
	k.M.Led.Charge(clock.Cycles(nbytes / line))
}

// UserCopy moves nbytes from src to dst in user mode: one load and one
// store per line (an optimized word copy).
func (k *Kernel) UserCopy(dst, src arch.EffectiveAddr, nbytes int) {
	if k.cur == nil {
		panic("kernel: UserCopy with no current task")
	}
	t := k.cur
	line := k.M.LineSize()
	if k.M.Inj != nil || len(t.cowPages) > 0 || len(t.roPages) > 0 {
		for i := 0; i < nbytes; i += line {
			k.access(t, src+arch.EffectiveAddr(i), false, cache.ClassUser, false)
			k.access(t, dst+arch.EffectiveAddr(i), false, cache.ClassUser, true)
		}
		k.M.Led.Charge(clock.Cycles(2 * (nbytes / line)))
		return
	}
	total := (nbytes + line - 1) / line
	done := 0
	for done < total {
		s := src + arch.EffectiveAddr(done*line)
		d := dst + arch.EffectiveAddr(done*line)
		cnt := min(total-done, min(
			(arch.PageSize-int(s.Offset())+line-1)/line,
			(arch.PageSize-int(d.Offset())+line-1)/line))
		// The first load/store pair runs the full path so any fault on
		// either side resolves at the exact scalar point in the stream.
		spa, sinh := k.translate(t, s, false)
		k.M.MemAccess(spa, cache.ClassUser, sinh, false)
		dpa, dinh := k.translate(t, d, false)
		k.M.MemAccess(dpa, cache.ClassUser, dinh, true)
		done++
		cnt--
		if cnt <= 0 || sinh || dinh {
			continue
		}
		// The destination's fault handling may have evicted the source's
		// TLB entry (or vice versa when they share a set); only replay
		// the streak if both translations are still resident, otherwise
		// fall back to per-reference pairs so the re-fault lands where
		// scalar execution would take it.
		if !k.dataResident(s) || !k.dataResident(d) {
			continue
		}
		k.replayHits(s, false, cnt)
		k.replayHits(d, false, cnt)
		k.M.MemPairRun(spa+arch.PhysAddr(line), dpa+arch.PhysAddr(line), cnt, line,
			cache.ClassUser, cache.ClassUser, false, true)
		done += cnt
	}
	k.M.Led.Charge(clock.Cycles(2 * (nbytes / line)))
}

// KernelWork charges n instructions of generic in-kernel work (used by
// the OS-personality layer to model heavier kernels).
func (k *Kernel) KernelWork(n int) {
	k.kexec(textSched+0x800, n)
}

// IPCMessage charges one kernel-mediated message transfer of the given
// size — the copy and port/queue bookkeeping of a microkernel IPC.
func (k *Kernel) IPCMessage(bytes int) {
	k.kexec(textPipe+0x600, 120)
	k.kdata(dataPipeTable+0x800, 64)
	line := k.M.LineSize()
	base := kvirt(k.dataPA + arch.PhysAddr(dataPipeTable+0x1000))
	total := (bytes + line - 1) / line
	for done := 0; done < total; {
		off := (done * line) % 0x1000
		cnt := min(total-done, (0x1000-off)/line)
		k.AccessRun(k.cur, Run{
			EA: base + arch.EffectiveAddr(off), Count: cnt, Stride: line,
			Class: cache.ClassKernelData, Write: true,
		})
		done += cnt
	}
	k.M.Led.Charge(clock.Cycles(2 * (bytes / line)))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
