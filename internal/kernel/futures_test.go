package kernel

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
)

// Tests for the paper's §10 future-work extensions and the §7 rejected
// on-demand reclaim design.

func TestIdleCacheLockPreventsEviction(t *testing.T) {
	run := func(lock bool) (survived int) {
		cfg := Optimized()
		cfg.UseHTAB = true
		cfg.IdleCacheLock = lock
		// Cached idle clearing: the worst polluter. With the lock, its
		// stores must not evict anything.
		cfg.IdleClear = IdleClearCached
		k, _ := bootTask(t, clock.PPC604At185(), cfg)
		k.UserTouch(UserDataBase, 24*1024) // hot user set
		before := k.M.DCache.Residency()[cache.ClassUser] + k.M.DCache.Residency()[cache.ClassKernelData]
		k.RunIdleFor(500_000)
		after := k.M.DCache.Residency()[cache.ClassUser] + k.M.DCache.Residency()[cache.ClassKernelData]
		_ = before
		return after
	}
	unlocked := run(false)
	locked := run(true)
	if locked <= unlocked {
		t.Fatalf("cache lock should preserve resident lines: locked=%d unlocked=%d", locked, unlocked)
	}
}

func TestIdleCacheLockReleasedAfterIdle(t *testing.T) {
	cfg := Optimized()
	cfg.IdleCacheLock = true
	k, _ := bootTask(t, clock.PPC604At185(), cfg)
	k.RunIdleFor(10_000)
	if k.M.CacheLocked() {
		t.Fatal("cache lock left engaged after idle")
	}
	// Normal allocation works again.
	k.UserTouch(UserDataBase, 64)
	if k.M.DCache.Stats().TotalMisses() == 0 {
		t.Fatal("no cache activity after idle")
	}
}

func TestCachePreloadWarmsSwitchPath(t *testing.T) {
	// With preloading, the switch path's task-struct accesses hit.
	run := func(preload bool) clock.Cycles {
		cfg := Optimized()
		cfg.CachePreload = preload
		k, a := bootTask(t, clock.PPC604At185(), cfg)
		b := k.Fork()
		// Storm the cache so the task structs are definitely cold
		// before each switch.
		storm := func() { k.UserTouch(UserDataBase+0x40000, 32*1024) }
		storm()
		k.Switch(b)
		storm()
		k.Switch(a)
		start := k.M.Led.Now()
		for i := 0; i < 20; i++ {
			storm()
			k.Switch(b)
			storm()
			k.Switch(a)
		}
		return k.M.Led.Now() - start
	}
	plain := run(false)
	preloaded := run(true)
	if preloaded >= plain {
		t.Fatalf("preloading should cheapen cold switches: %d vs %d cycles", preloaded, plain)
	}
}

func TestOnDemandReclaimTriggersOnFullBuckets(t *testing.T) {
	cfg := Optimized()
	cfg.UseHTAB = true
	cfg.IdleReclaim = false
	cfg.OnDemandReclaim = true
	k, task := bootTask(t, clock.PPC604At185(), cfg)
	// Fill the table with zombies via context churn (no idle runs, so
	// nothing reclaims them in the background).
	img := k.images["test"]
	for i := 0; i < 80; i++ {
		k.UserTouchPages(UserDataBase, 200)
		k.Exec(img)
	}
	if k.M.Mon.OnDemandScans == 0 {
		t.Fatal("on-demand reclaim never triggered despite zombie pressure")
	}
	if k.M.Mon.ZombiesReclaimed == 0 {
		t.Fatal("on-demand scans reclaimed nothing")
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	_ = task
}

func TestOnDemandReclaimLatencySpikes(t *testing.T) {
	// The paper's reason for rejecting the design: "Performance would
	// also be inconsistent if we had to occasionally scan the hash
	// table". Per-operation worst case must be far above the median
	// when scans run synchronously.
	cfg := Optimized()
	cfg.UseHTAB = true
	cfg.IdleReclaim = false
	cfg.OnDemandReclaim = true
	k, worker := bootTask(t, clock.PPC604At185(), cfg)

	// Stuff the table completely with zombie PTEs (white-box: retired
	// contexts inserted directly, so nothing sweeps during setup).
	htab := k.M.MMU.HTAB
	for htab.Occupancy() < htab.Capacity() {
		ctx, _ := k.ctx.Alloc()
		vs := k.ctx.VSIDs(ctx)
		k.ctx.Retire(ctx)
		for page := 0; page < 64; page++ {
			ea := UserDataBase + arch.EffectiveAddr(page*arch.PageSize)
			htab.Insert(arch.VPNOf(vs[ea.SegIndex()], ea), arch.PFN(page), false, nil, nil)
		}
	}
	if htab.Occupancy() != htab.Capacity() {
		t.Fatalf("could not fill the table: %d", htab.Occupancy())
	}

	// The worker's next insert finds its buckets full and eats the
	// whole-table sweep; the identical op right after runs against a
	// freshly swept table.
	k.Switch(worker)
	scansBefore := k.M.Mon.OnDemandScans
	op := func(i int) clock.Cycles {
		start := k.M.Led.Now()
		k.UserTouchPages(UserDataBase+arch.EffectiveAddr((0x200+i)*arch.PageSize), 1)
		return k.M.Led.Now() - start
	}
	spike := op(0)
	if k.M.Mon.OnDemandScans == scansBefore {
		t.Fatal("full table did not trigger an on-demand sweep")
	}
	calm := op(1)
	if spike < 5*calm {
		t.Fatalf("the triggering op should pay the sweep: spike %d vs calm %d cycles", spike, calm)
	}
}
