package kernel

import (
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/faultinject"
	"mmutricks/internal/mmtrace"
	"mmutricks/internal/ppc"
)

// Machine-check path instruction lengths. Like the other exception
// stubs, the machine-check vector runs physically (the 601..604 take
// machine checks with the MMU off), so every fetch here is a physical
// fetch of the handler text.
const (
	mcEntryInstr  = 200 // vector entry: save state, read SRR1/DSISR, classify
	mcRepairInstr = 80  // targeted repair: invalidate + re-fault bookkeeping
	mcSweepInstr  = 300 // spurious report: full software verification sweep

	// mcMaxPasses bounds the repair-verify loop: a poisoned entry that
	// survives this many invalidation attempts means the repair path
	// itself is broken, and the handler escalates by panicking (in the
	// simulator this is a bug, not a recoverable condition).
	mcMaxPasses = 3
)

// faultTick runs at the end of every top-level kernel access when a
// fault injector is attached: it gives the injector its chance to
// corrupt the software-owned structures (page-table ECC faults fire
// here, not inside the MMU) and then delivers any pending machine
// checks. Ticks inside the fault handlers or the machine-check handler
// itself are skipped — hardware holds machine checks until the
// processor can take them, and the simulator delivers them only at
// access boundaries of ordinary kernel work.
func (k *Kernel) faultTick(t *Task) {
	if k.faultDepth > 0 || k.inMC {
		return
	}
	inj := k.M.Inj
	n := inj.Fire(faultinject.SiteAccess)
	for i := 0; i < n; i++ {
		if kind, ok := inj.PickKind(faultinject.SiteAccess); ok && kind == faultinject.PTEFlip {
			k.injectPTEFlip(inj)
		}
	}
	for inj.HasMC() {
		p, _ := inj.TakeMC()
		k.machineCheck(p)
	}
}

// injectPTEFlip corrupts one RPN bit in the canonical page table of a
// deterministically chosen victim task. The current task is never the
// victim (its in-flight access must not land on the poison), and the
// corruption is only applied if the pending queue can report it — a
// fault the handler never hears about would silently break the
// applied-equals-handled audit.
func (k *Kernel) injectPTEFlip(inj *faultinject.Injector) {
	if inj.QueueFull() {
		inj.NoteSkipped(faultinject.PTEFlip)
		return
	}
	rnd := inj.Rand()
	var victim *Task
	for i := uint32(0); i < k.nextPID; i++ {
		pid := 1 + (uint32(rnd)+i)%k.nextPID
		t, ok := k.tasks[pid]
		if !ok || t == k.cur || t.State != TaskRunnable || t.PT == nil {
			continue
		}
		victim = t
		break
	}
	if victim == nil {
		inj.NoteSkipped(faultinject.PTEFlip)
		return
	}
	ea, ok := victim.PT.PickPresent(inj.Rand(), arch.KernelBase)
	if !ok {
		inj.NoteSkipped(faultinject.PTEFlip)
		return
	}
	pteAddr, ok := victim.PT.CorruptRPN(ea, 1)
	if !ok {
		inj.NoteSkipped(faultinject.PTEFlip)
		return
	}
	inj.Push(faultinject.Pending{
		Cause: faultinject.CausePTEECC,
		Addr:  pteAddr,
		PID:   victim.PID,
		EA:    ea,
	})
	inj.NoteApplied(faultinject.PTEFlip)
}

// machineCheck is the machine-check handler: classify the error report
// and dispatch the repair. Every delivery increments MachineChecks plus
// exactly one outcome counter, chosen purely by the reported cause, so
// the injector's applied counts and the monitor's outcome counts obey
// exact identities regardless of what the poison did in the meantime.
// The injector is suspended for the handler's duration (its own
// repair traffic must not fault-inject recursively).
func (k *Kernel) machineCheck(p faultinject.Pending) {
	inj := k.M.Inj
	inj.Suspend()
	defer inj.Resume()
	k.inMC = true
	defer func() { k.inMC = false }()

	defer k.span(PathMCRepair)()
	k.M.Mon.MachineChecks++
	start := k.M.Led.Now()
	k.fetchPhysText(textMC, mcEntryInstr)
	k.M.Trc.Emit(mmtrace.KindMachineCheck, 0, arch.EffectiveAddr(p.Addr), k.M.Led.Now()-start, uint32(p.Cause))

	switch p.Cause {
	case faultinject.CauseTLBParity:
		k.mcRepairTLB(p)
	case faultinject.CauseHTABECC:
		k.mcRepairHTAB(p)
	case faultinject.CauseBATParity:
		k.mcRepairBAT(p)
	case faultinject.CauseCacheParity:
		k.mcRepairCache(p)
	case faultinject.CausePTEECC:
		k.mcEscalate(p)
	case faultinject.CauseSpurious:
		k.mcSpurious(p)
	default:
		panic(fmt.Sprintf("kernel: machine check with unknown cause %d", p.Cause))
	}
}

// tlbHolds reports whether any TLB array still has an entry for vpn.
func (k *Kernel) tlbHolds(vpn arch.VPN) bool {
	if _, ok := k.M.MMU.TLB.Peek(vpn); ok {
		return true
	}
	if k.M.MMU.ITLB != k.M.MMU.TLB {
		if _, ok := k.M.MMU.ITLB.Peek(vpn); ok {
			return true
		}
	}
	return false
}

// mcRepairTLB recovers from TLB parity poison: invalidate the reported
// translation everywhere and let the next access re-fault from the
// canonical page table. The repair is idempotent — if displacement
// already evicted the poisoned entry, the invalidation simply finds
// nothing. Verified (bounded) before the handler returns.
func (k *Kernel) mcRepairTLB(p faultinject.Pending) {
	start := k.M.Led.Now()
	k.fetchPhysText(textMC+0x400, mcRepairInstr)
	for pass := 0; ; pass++ {
		if pass >= mcMaxPasses {
			panic(fmt.Sprintf("kernel: TLB repair of %#x not sticking", p.VPN))
		}
		k.M.MMU.InvalidateVPNAll(p.VPN)
		if !k.tlbHolds(p.VPN) {
			break
		}
	}
	k.M.Mon.MCRepairsTLB++
	k.M.Trc.Emit(mmtrace.KindMCRepairTLB, p.VPN.VSID(), 0, k.M.Led.Now()-start, 0)
}

// mcRepairHTAB recovers from hash-table ECC poison: invalidate the
// reported slot if it still holds the reported translation (an insert
// may have legitimately replaced it since), and flush the translation
// from the TLBs in case the corrupt PTE was already loaded. The next
// access re-faults and reinserts from the canonical page table.
func (k *Kernel) mcRepairHTAB(p faultinject.Pending) {
	start := k.M.Led.Now()
	k.fetchPhysText(textMC+0x400, mcRepairInstr)
	if g, s, ok := k.M.MMU.HTAB.SlotOf(p.Addr); ok {
		for pass := 0; ; pass++ {
			if pass >= mcMaxPasses {
				panic(fmt.Sprintf("kernel: HTAB repair of slot %#x not sticking", p.Addr))
			}
			e := k.M.MMU.HTAB.ReadSlot(g, s)
			if !e.Valid || e.VPN() != p.VPN {
				break
			}
			k.M.MMU.HTAB.InvalidateSlot(g, s, k.M)
		}
	}
	k.M.MMU.InvalidateVPNAll(p.VPN)
	k.M.Mon.MCRepairsHTAB++
	k.M.Trc.Emit(mmtrace.KindMCRepairHTAB, p.VPN.VSID(), arch.EffectiveAddr(p.Addr), k.M.Led.Now()-start, 0)
}

// canonicalBATs reconstructs what every BAT register should hold from
// the kernel's configuration — the same decisions boot, bootIO and
// loadFBBAT make. BAT contents are pure function of config plus the
// current task's frame-buffer mapping, which is what makes full
// reprogramming (rather than targeted bit repair) the natural recovery.
func (k *Kernel) canonicalBATs() (ibat, dbat [ppc.NumBATs]ppc.BATEntry) {
	if k.cfg.KernelBAT {
		ramLen := uint32(k.M.Mem.Frames() * arch.PageSize)
		e := ppc.BATEntry{Valid: true, Base: arch.KernelBase, Len: ramLen, Phys: 0}
		ibat[0], dbat[0] = e, e
	}
	if k.cfg.MapIOWithBAT {
		dbat[ioDBATSlot] = ppc.BATEntry{Valid: true, Base: KernelFBBase, Len: fbBytes, Phys: FBPhysBase, Inhibited: true}
	}
	if k.cfg.FBBAT && k.cur != nil && k.cur.fbMapped {
		dbat[fbDBATSlot] = ppc.BATEntry{Valid: true, Base: UserFBBase, Len: fbBytes, Phys: FBPhysBase, Inhibited: true}
	}
	return ibat, dbat
}

// mcRepairBAT recovers from BAT parity poison by reprogramming every
// BAT register from the canonical configuration. The poisoned register
// is not trusted even to identify itself — parity errors in the BAT
// array mean the whole array is suspect, and reconstructing all eight
// registers costs the same handful of mtspr instructions.
func (k *Kernel) mcRepairBAT(p faultinject.Pending) {
	start := k.M.Led.Now()
	k.fetchPhysText(textMC+0x400, mcRepairInstr)
	ibat, dbat := k.canonicalBATs()
	for i := 0; i < ppc.NumBATs; i++ {
		if err := k.M.MMU.IBAT.Set(i, ibat[i]); err != nil {
			panic(fmt.Sprintf("kernel: BAT repair: %v", err))
		}
		if err := k.M.MMU.DBAT.Set(i, dbat[i]); err != nil {
			panic(fmt.Sprintf("kernel: BAT repair: %v", err))
		}
	}
	k.M.Led.Charge(2 * ppc.NumBATs) // mtspr upper/lower per register pair
	k.M.Mon.MCRepairsBAT++
	k.M.Trc.Emit(mmtrace.KindMCRepairBAT, 0, arch.EffectiveAddr(p.Addr), k.M.Led.Now()-start, 0)
}

// mcRepairCache recovers from a clean-line parity error: invalidate the
// line (dcbi) and let the next access refill it from memory. The line
// was clean, so no data is lost.
func (k *Kernel) mcRepairCache(p faultinject.Pending) {
	start := k.M.Led.Now()
	k.fetchPhysText(textMC+0x400, mcRepairInstr)
	k.M.DCache.InvalidateLine(p.Addr)
	k.M.Led.Charge(1) // the dcbi itself
	k.M.Mon.MCRepairsCache++
	k.M.Trc.Emit(mmtrace.KindMCRepairCache, 0, arch.EffectiveAddr(p.Addr), k.M.Led.Now()-start, 0)
}

// mcEscalate handles unrepairable corruption: ECC poison in a task's
// canonical page table cannot be repaired from any redundant copy, so
// the owning task is killed — the Unix answer to lost user state. The
// kernel itself survives; the dead task's translations and frames are
// torn down through the ordinary exit path.
func (k *Kernel) mcEscalate(p faultinject.Pending) {
	start := k.M.Led.Now()
	k.fetchPhysText(textMC+0x400, mcRepairInstr)
	if t, ok := k.tasks[p.PID]; ok && t.State != TaskZombie {
		k.killTask(t)
	}
	k.M.Mon.MCEscalations++
	k.M.Trc.Emit(mmtrace.KindMCEscalate, 0, p.EA, k.M.Led.Now()-start, p.PID)
}

// killTask forcibly terminates a task from the machine-check handler.
// Unlike Exit it does not require the victim to be current, and it does
// not count as a voluntary exit.
func (k *Kernel) killTask(t *Task) {
	k.fetchPhysText(textProc+0x800, exitInstr)
	// Same mm protocol as Exit: if the victim is current, the CPU
	// keeps its space as a lazy-TLB borrow; either way the task's
	// user reference is dropped, and the final one (a kernel thread
	// may still hold the space via UseMM) runs the teardown. Refcount
	// and task state settle before the teardown traffic.
	m := t.mm
	borrow := k.cur == t
	t.mm = nil
	t.State = TaskZombie
	if borrow {
		k.mmGrab(m)
	}
	k.mmPut(m)
	if borrow {
		k.cur = nil
	}
}

// mcSpurious handles a machine check that reports no locatable error:
// the handler cannot just ignore it (the report may be the only hint of
// real corruption), so it runs the full software verification sweep —
// the same consistency invariants the test suite checks — and panics if
// the sweep finds anything. A clean sweep dismisses the report.
func (k *Kernel) mcSpurious(p faultinject.Pending) {
	start := k.M.Led.Now()
	k.fetchPhysText(textMC+0x400, mcSweepInstr)
	if err := k.CheckConsistency(); err != nil {
		panic(fmt.Sprintf("kernel: spurious machine check found real corruption: %v", err))
	}
	k.M.Mon.MCSpurious++
	k.M.Trc.Emit(mmtrace.KindMCSpurious, 0, arch.EffectiveAddr(p.Addr), k.M.Led.Now()-start, 0)
}

// DrainMachineChecks delivers every pending machine check immediately.
// Harnesses call it after disarming the injector so that corruption
// applied by a site the kernel never ticked again (a bare Fetch, a
// physical access) is still repaired and audited before the final
// consistency check.
func (k *Kernel) DrainMachineChecks() {
	if k.M.Inj == nil {
		return
	}
	for k.M.Inj.HasMC() {
		p, _ := k.M.Inj.TakeMC()
		k.machineCheck(p)
	}
}
