package kernel

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
)

func TestMmapFileSharesPageCache(t *testing.T) {
	k, task := bootTask(t, clock.PPC604At185(), Optimized())
	f := k.CreateFile(16)
	free0 := k.M.Mem.FreeFrames()
	addr := k.SysMmapFile(f, 0, 16)
	before := k.M.Mon.Snapshot()
	k.UserTouchPages(addr, 16)
	d := k.M.Mon.Delta(before)
	if d.MinorFaults != 16 || d.MajorFaults != 0 {
		t.Fatalf("file mmap faults: %d minor %d major, want 16/0", d.MinorFaults, d.MajorFaults)
	}
	e, _ := task.PT.Lookup(addr)
	if e.RPN != f.Pages[0] {
		t.Fatal("mapping does not share the page-cache frame")
	}
	// munmap returns only the PTE page; the file keeps its frames.
	k.SysMunmap(addr, 16)
	if got := k.M.Mem.FreeFrames(); got < free0-1 {
		t.Fatalf("file frames were freed by munmap: %d vs %d", got, free0)
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMmapFilePartialWindow(t *testing.T) {
	k, task := bootTask(t, clock.PPC604At185(), Optimized())
	f := k.CreateFile(8)
	addr := k.SysMmapFile(f, 4, 2) // pages 4..5
	k.UserTouchPages(addr, 2)
	e, _ := task.PT.Lookup(addr)
	if e.RPN != f.Pages[4] {
		t.Fatal("window offset ignored")
	}
}

func TestMmapFileOutOfRangePanics(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	f := k.CreateFile(4)
	defer func() {
		if recover() == nil {
			t.Error("mapping past EOF should panic")
		}
	}()
	k.SysMmapFile(f, 2, 4)
}

func TestMmapFileLatencyMatchesAnonShape(t *testing.T) {
	// The §7 mmap story holds for file mappings too: the unmap of a
	// large window is dominated by flush strategy.
	cost := func(cfg Config) clock.Cycles {
		k, _ := bootTask(t, clock.PPC604At185(), cfg)
		f := k.CreateFile(512)
		start := k.M.Led.Now()
		for i := 0; i < 4; i++ {
			a := k.SysMmapFile(f, 0, 512)
			k.SysMunmap(a, 512)
		}
		return k.M.Led.Now() - start
	}
	eager := Optimized()
	eager.UseHTAB = true
	eager.LazyFlush = false
	eager.FlushRangeCutoff = 0
	tuned := Optimized()
	tuned.UseHTAB = true
	ce, ct := cost(eager), cost(tuned)
	if ct > ce/10 {
		t.Fatalf("tuned file mmap (%d) should be >=10x cheaper than eager (%d)", ct, ce)
	}
	_ = arch.PageSize
}
