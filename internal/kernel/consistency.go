package kernel

import (
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/pagetable"
)

// vsidOwner records which live task (and which of its segments) a VSID
// belongs to.
type vsidOwner struct {
	t   *Task
	seg int
}

// resolver answers "what is the canonical translation of this VPN?"
// questions against the kernel's authoritative structures (the live
// tasks' page trees and the kernel linear/I-O maps). It is the shared
// classification core of CheckConsistency and the machine-check
// handler: both need to decide whether a cached translation agrees
// with what the software structures say it should be.
type resolver struct {
	k           *Kernel
	live        map[arch.VSID]vsidOwner
	kernelVSIDs map[arch.VSID]int
}

// newResolver indexes the live VSIDs. It fails if two live contexts
// share a VSID (invariant 3).
func (k *Kernel) newResolver() (*resolver, error) {
	r := &resolver{
		k:           k,
		live:        make(map[arch.VSID]vsidOwner),
		kernelVSIDs: make(map[arch.VSID]int),
	}
	for _, t := range k.tasks {
		if t.State == TaskZombie {
			continue
		}
		for seg := 0; seg < 12; seg++ {
			v := t.Segs[seg]
			if prev, dup := r.live[v]; dup && prev.t != t {
				return nil, fmt.Errorf("VSID %#x shared by live tasks %d and %d", v, prev.t.PID, t.PID)
			}
			r.live[v] = vsidOwner{t, seg}
		}
	}
	for seg := 12; seg < 16; seg++ {
		r.kernelVSIDs[k.M.MMU.Segment(seg)] = seg
	}
	return r, nil
}

// canonicalFrame returns the authoritative frame for a VPN under its
// owner, and whether one exists. VPNs belonging to no live context
// (zombies, stale contexts) are exempt: ok is false with no error.
func (r *resolver) canonicalFrame(vpn arch.VPN) (arch.PFN, bool, error) {
	v := vpn.VSID()
	if seg, ok := r.kernelVSIDs[v]; ok {
		ea := arch.EffectiveAddr(uint32(seg)<<arch.SegmentShift | vpn.PageIndex()<<arch.PageShift)
		if rpn, ok := r.k.ioLinear(ea); ok {
			return rpn, true, nil
		}
		rpn, ok := r.k.kernelLinear(ea)
		if !ok {
			return 0, false, fmt.Errorf("kernel VPN %#x outside the linear and I/O maps", vpn)
		}
		return rpn, true, nil
	}
	o, ok := r.live[v]
	if !ok {
		return 0, false, nil // zombie or stale: exempt from checks
	}
	ea := arch.EffectiveAddr(uint32(o.seg)<<arch.SegmentShift | vpn.PageIndex()<<arch.PageShift)
	e, present := o.t.PT.Lookup(ea)
	if !present {
		return 0, false, fmt.Errorf("live VSID %#x (task %d) has cached translation for unmapped %v", v, o.t.PID, ea)
	}
	return e.RPN, true, nil
}

// CheckConsistency verifies the translation-coherence invariants that
// the paper's optimizations must preserve. Lazy flushing deliberately
// leaves stale-looking state around (zombie PTEs, unmatchable TLB
// entries), so the invariants are subtle and worth machine-checking:
//
//  1. Every valid TLB entry whose VSID belongs to a live context must
//     agree with the canonical translation (the task's page tree for
//     user pages, the linear map for kernel pages).
//  2. Every valid, live hash-table PTE must agree the same way.
//  3. No two live contexts share a VSID.
//  4. Frame accounting: every frame referenced by a live page tree is
//     allocated, and no frame is mapped privately by two tasks.
//
// It returns an error describing the first violation found, or nil.
func (k *Kernel) CheckConsistency() error {
	r, err := k.newResolver()
	if err != nil {
		return err
	}

	// 1. TLB agreement (both arrays when split).
	tlbs := []*struct {
		name string
		snap map[arch.VPN]arch.PFN
	}{{"DTLB", k.M.MMU.TLB.Snapshot()}, {"ITLB", nil}}
	if k.M.MMU.ITLB != k.M.MMU.TLB {
		tlbs[1].snap = k.M.MMU.ITLB.Snapshot()
	}
	for _, tl := range tlbs {
		for vpn, rpn := range tl.snap {
			want, ok, err := r.canonicalFrame(vpn)
			if err != nil {
				return fmt.Errorf("%s: %w", tl.name, err)
			}
			if ok && want != rpn {
				return fmt.Errorf("%s entry %#x -> frame %#x disagrees with canonical frame %#x", tl.name, vpn, rpn, want)
			}
		}
	}

	// 2. Hash-table agreement.
	var htabErr error
	k.M.MMU.HTAB.ForEachValid(func(vpn arch.VPN, rpn arch.PFN) bool {
		want, ok, err := r.canonicalFrame(vpn)
		if err != nil {
			htabErr = fmt.Errorf("HTAB: %w", err)
			return false
		}
		if ok && want != rpn {
			htabErr = fmt.Errorf("HTAB entry %#x -> frame %#x disagrees with canonical frame %#x", vpn, rpn, want)
			return false
		}
		return true
	})
	if htabErr != nil {
		return htabErr
	}

	// 4. Frame accounting.
	privateOwner := make(map[arch.PFN]uint32)
	for _, t := range k.tasks {
		if t.State == TaskZombie || t.PT == nil {
			continue
		}
		var walkErr error
		t.PT.Range(0, arch.KernelBase, func(ea arch.EffectiveAddr, e pagetable.Entry) bool {
			if int(e.RPN) >= k.M.Mem.Frames() {
				// Device space (the frame buffer) — not RAM.
				return true
			}
			if !k.M.Mem.InUse(e.RPN) {
				walkErr = fmt.Errorf("task %d maps free frame %#x at %v", t.PID, uint32(e.RPN), ea)
				return false
			}
			if t.owns(e.RPN) {
				if prev, dup := privateOwner[e.RPN]; dup {
					walkErr = fmt.Errorf("frame %#x privately owned by tasks %d and %d", uint32(e.RPN), prev, t.PID)
					return false
				}
				privateOwner[e.RPN] = t.PID
			}
			return true
		})
		if walkErr != nil {
			return walkErr
		}
	}
	return nil
}
