package kernel

import (
	"fmt"
	"sort"

	"mmutricks/internal/arch"
	"mmutricks/internal/pagetable"
)

// vsidOwner records which live task (and which of its segments) a VSID
// belongs to.
type vsidOwner struct {
	t   *Task
	seg int
}

// resolver answers "what is the canonical translation of this VPN?"
// questions against the kernel's authoritative structures (the live
// tasks' page trees and the kernel linear/I-O maps). It is the shared
// classification core of CheckConsistency and the machine-check
// handler: both need to decide whether a cached translation agrees
// with what the software structures say it should be.
type resolver struct {
	k           *Kernel
	live        map[arch.VSID]vsidOwner
	kernelVSIDs map[arch.VSID]int
}

// newResolver indexes the live VSIDs. It fails if two live contexts
// share a VSID (invariant 3).
func (k *Kernel) newResolver() (*resolver, error) {
	r := &resolver{
		k:           k,
		live:        make(map[arch.VSID]vsidOwner),
		kernelVSIDs: make(map[arch.VSID]int),
	}
	for _, t := range k.tasks {
		if t.State == TaskZombie {
			continue
		}
		for seg := 0; seg < 12; seg++ {
			v := t.Segs[seg]
			if prev, dup := r.live[v]; dup && prev.t != t {
				return nil, fmt.Errorf("VSID %#x shared by live tasks %d and %d", v, prev.t.PID, t.PID)
			}
			r.live[v] = vsidOwner{t, seg}
		}
	}
	for seg := 12; seg < 16; seg++ {
		r.kernelVSIDs[k.M.MMU.Segment(seg)] = seg
	}
	return r, nil
}

// canonicalFrame returns the authoritative frame for a VPN under its
// owner, and whether one exists. VPNs belonging to no live context
// (zombies, stale contexts) are exempt: ok is false with no error.
func (r *resolver) canonicalFrame(vpn arch.VPN) (arch.PFN, bool, error) {
	v := vpn.VSID()
	if seg, ok := r.kernelVSIDs[v]; ok {
		ea := arch.EffectiveAddr(uint32(seg)<<arch.SegmentShift | vpn.PageIndex()<<arch.PageShift)
		if rpn, ok := r.k.ioLinear(ea); ok {
			return rpn, true, nil
		}
		rpn, ok := r.k.kernelLinear(ea)
		if !ok {
			return 0, false, fmt.Errorf("kernel VPN %#x outside the linear and I/O maps", vpn)
		}
		return rpn, true, nil
	}
	o, ok := r.live[v]
	if !ok {
		return 0, false, nil // zombie or stale: exempt from checks
	}
	ea := arch.EffectiveAddr(uint32(o.seg)<<arch.SegmentShift | vpn.PageIndex()<<arch.PageShift)
	e, present := o.t.PT.Lookup(ea)
	if !present {
		return 0, false, fmt.Errorf("live VSID %#x (task %d) has cached translation for unmapped %v", v, o.t.PID, ea)
	}
	return e.RPN, true, nil
}

// CheckConsistency verifies the translation-coherence invariants that
// the paper's optimizations must preserve. Lazy flushing deliberately
// leaves stale-looking state around (zombie PTEs, unmatchable TLB
// entries), so the invariants are subtle and worth machine-checking:
//
//  1. Every valid TLB entry whose VSID belongs to a live context must
//     agree with the canonical translation (the task's page tree for
//     user pages, the linear map for kernel pages).
//  2. Every valid, live hash-table PTE must agree the same way.
//  3. No two live contexts share a VSID.
//  4. Frame accounting: every frame referenced by a live page tree is
//     allocated, and no frame is mapped privately by two tasks.
//  5. mm refcount identities (the ctxsw.tla MMInv, exact form): every
//     live descriptor's Users equals its address-space users (owning
//     live task + UseMM kthread) and Count equals the collective user
//     reference + init_mm's permanent reference + lazy-TLB borrows.
//  6. mm structure: live descriptors have Count > 0, the active space
//     is live and matches current's mm, exited tasks hold no mm, and
//     UseMM spans pin the CPU (no current task, active == adopted).
//  7. Phase-cycle conservation: when the telemetry ledger is enabled,
//     its attributed cycles sum exactly to the clock — every simulated
//     cycle belongs to exactly one phase.
//
// It returns an error describing the first violation found, or nil.
func (k *Kernel) CheckConsistency() error {
	r, err := k.newResolver()
	if err != nil {
		return err
	}

	// 1. TLB agreement (both arrays when split).
	tlbs := []*struct {
		name string
		snap map[arch.VPN]arch.PFN
	}{{"DTLB", k.M.MMU.TLB.Snapshot()}, {"ITLB", nil}}
	if k.M.MMU.ITLB != k.M.MMU.TLB {
		tlbs[1].snap = k.M.MMU.ITLB.Snapshot()
	}
	for _, tl := range tlbs {
		for vpn, rpn := range tl.snap {
			want, ok, err := r.canonicalFrame(vpn)
			if err != nil {
				return fmt.Errorf("%s: %w", tl.name, err)
			}
			if ok && want != rpn {
				return fmt.Errorf("%s entry %#x -> frame %#x disagrees with canonical frame %#x", tl.name, vpn, rpn, want)
			}
		}
	}

	// 2. Hash-table agreement.
	var htabErr error
	k.M.MMU.HTAB.ForEachValid(func(vpn arch.VPN, rpn arch.PFN) bool {
		want, ok, err := r.canonicalFrame(vpn)
		if err != nil {
			htabErr = fmt.Errorf("HTAB: %w", err)
			return false
		}
		if ok && want != rpn {
			htabErr = fmt.Errorf("HTAB entry %#x -> frame %#x disagrees with canonical frame %#x", vpn, rpn, want)
			return false
		}
		return true
	})
	if htabErr != nil {
		return htabErr
	}

	// 4. Frame accounting.
	privateOwner := make(map[arch.PFN]uint32)
	for _, t := range k.tasks {
		if t.State == TaskZombie || t.PT == nil {
			continue
		}
		var walkErr error
		t.PT.Range(0, arch.KernelBase, func(ea arch.EffectiveAddr, e pagetable.Entry) bool {
			if int(e.RPN) >= k.M.Mem.Frames() {
				// Device space (the frame buffer) — not RAM.
				return true
			}
			if !k.M.Mem.InUse(e.RPN) {
				walkErr = fmt.Errorf("task %d maps free frame %#x at %v", t.PID, uint32(e.RPN), ea)
				return false
			}
			if t.owns(e.RPN) {
				if prev, dup := privateOwner[e.RPN]; dup {
					walkErr = fmt.Errorf("frame %#x privately owned by tasks %d and %d", uint32(e.RPN), prev, t.PID)
					return false
				}
				privateOwner[e.RPN] = t.PID
			}
			return true
		})
		if walkErr != nil {
			return walkErr
		}
	}

	// 7. Phase-cycle conservation. CheckConservation accrues before
	// checking, so running this sweep from inside a phase (the
	// machine-check handler calls it mid-span) is fine.
	if ph := k.M.Ph; ph.Enabled() {
		if err := ph.CheckConservation(); err != nil {
			return err
		}
	}

	// 5 + 6. mm refcount identities and structure.
	return k.checkMM()
}

// checkMM verifies invariants 5 and 6: the mm_users/mm_count
// identities and the structural facts they rest on. Iteration is in
// sorted ID/PID order so the first violation reported is
// deterministic.
func (k *Kernel) checkMM() error {
	// Structure around the current CPU state.
	if k.activeMM == nil || !k.MMRegistered(k.activeMM) {
		return fmt.Errorf("active mm is nil or freed")
	}
	if k.cur != nil {
		if k.kthreadMM != nil {
			return fmt.Errorf("UseMM span with task %d current", k.cur.PID)
		}
		// cur.mm == nil is the dying-task window: current is past
		// exit_mm and runs on a borrowed active space until the final
		// switch away. Otherwise active must be current's own space.
		if k.cur.mm != nil && k.activeMM != k.cur.mm {
			return fmt.Errorf("current task %d mm does not match active mm", k.cur.PID)
		}
	}
	if k.kthreadMM != nil && k.activeMM != k.kthreadMM {
		return fmt.Errorf("UseMM space %d is not the active mm", k.kthreadMM.ID)
	}

	// Per-task structure, and the expected user counts.
	wantUsers := make(map[uint32]int, len(k.mms))
	pids := make([]uint32, 0, len(k.tasks))
	for pid := range k.tasks {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		t := k.tasks[pid]
		if t.State == TaskZombie {
			if t.mm != nil {
				return fmt.Errorf("zombie task %d still holds mm %d", pid, t.mm.ID)
			}
			continue
		}
		if t.mm == nil {
			return fmt.Errorf("live task %d has no mm", pid)
		}
		if !k.MMRegistered(t.mm) {
			return fmt.Errorf("live task %d holds freed mm %d", pid, t.mm.ID)
		}
		if t.mm.owner != t {
			return fmt.Errorf("task %d holds mm %d owned by another task", pid, t.mm.ID)
		}
		wantUsers[t.mm.ID]++
	}
	if k.kthreadMM != nil {
		wantUsers[k.kthreadMM.ID]++
	}

	// The identities, per live descriptor.
	ids := make([]uint32, 0, len(k.mms))
	for id := range k.mms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m := k.mms[id]
		if m.Count <= 0 {
			return fmt.Errorf("mm %d registered with count %d", id, m.Count)
		}
		if users := wantUsers[id]; m.Users != users {
			return fmt.Errorf("mm %d users=%d but %d task(s) hold it", id, m.Users, users)
		}
		count := 0
		if m.Users > 0 {
			count++ // the users' collective existence reference
		}
		if m == k.initMM {
			count++ // the kernel's permanent reference
		}
		if k.kthreadMM == nil && (k.cur == nil || k.cur.mm == nil) && k.activeMM == m {
			count++ // this CPU's lazy-TLB borrow (idle, or a dying task)
		}
		if m.Count != count {
			return fmt.Errorf("mm %d count=%d but %d reference(s) account for it", id, m.Count, count)
		}
	}
	return nil
}
