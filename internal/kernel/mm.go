package kernel

import (
	"fmt"

	"mmutricks/internal/mmtrace"
)

// MM is the kernel's per-address-space descriptor — the piece of
// struct mm_struct the context-switch state machine cares about. The
// reference semantics follow Linux (and ctxsw.tla):
//
//   - Users counts address-space users: the owning task plus any
//     kernel thread that adopted the space via UseMM (mmget/mmput).
//     When Users drops to zero the address space is torn down.
//   - Count counts existence references: one collective reference on
//     behalf of all users, plus one per lazy-TLB borrower — a CPU
//     whose current task has exited (or gone idle) but whose segment
//     registers still name this space (mmgrab/mmdrop). When Count
//     drops to zero the descriptor itself is freed.
//
// init_mm (the kernel's own address space, borrowed by every CPU at
// boot) holds an extra permanent Count reference and is never freed.
type MM struct {
	ID    uint32
	Users int
	Count int

	// owner is the task whose address space this is; nil for init_mm.
	// The owner pointer outlives the owner's exit: a deferred teardown
	// (the last user reference dropped by a kernel thread after the
	// owner was killed) still needs the region list and page tree.
	owner *Task
}

// use_mm/unuse_mm instruction-path lengths (kthread address-space
// adoption; a segment reload plus refcount bookkeeping).
const (
	useMMInstr   = 150
	unuseMMInstr = 120
)

// bootMM sets up the mm bookkeeping at boot: init_mm carries the
// kernel's permanent reference plus one lazy-TLB borrow for the boot
// CPU (current == nil, active space == init_mm).
func (k *Kernel) bootMM() {
	k.initMM = &MM{ID: 0, Users: 0, Count: 2}
	k.mms = map[uint32]*MM{0: k.initMM}
	k.nextMM = 1
	k.activeMM = k.initMM
}

// newMM allocates a fresh address space owned by t — the mm half of
// fork/spawn. The owner holds the only user reference, and the user
// block collectively holds one existence reference.
func (k *Kernel) newMM(t *Task) {
	m := &MM{ID: k.nextMM, Users: 1, Count: 1, owner: t}
	k.nextMM++
	k.mms[m.ID] = m
	t.mm = m
}

// mmGet takes a user reference (Linux mmget): the space gains an
// address-space user. Only legal while the space still has users.
func (k *Kernel) mmGet(m *MM) {
	if m.Users <= 0 {
		panic(fmt.Sprintf("kernel: mmGet on mm %d with no users", m.ID))
	}
	m.Users++
}

// mmGrab takes an existence reference (Linux mmgrab): a lazy-TLB
// borrower keeps the descriptor alive without using the space.
func (k *Kernel) mmGrab(m *MM) {
	if m.Count <= 0 {
		panic(fmt.Sprintf("kernel: mmGrab on dead mm %d", m.ID))
	}
	m.Count++
}

// mmPut drops a user reference (Linux mmput). The final user releases
// the users' collective existence reference and tears the address
// space down (__mmput). The refcount arithmetic completes before the
// teardown's memory traffic: an asynchronous consistency sweep (a
// spurious machine check delivered inside the flush path) must never
// observe a half-updated refcount state.
func (k *Kernel) mmPut(m *MM) {
	m.Users--
	if m.Users > 0 {
		return
	}
	if m.Users < 0 {
		panic(fmt.Sprintf("kernel: mmPut underflow on mm %d", m.ID))
	}
	t := m.owner
	k.mmDrop(m)
	if t != nil {
		k.teardownMM(t)
		t.PT.Destroy()
	}
}

// mmDrop drops an existence reference (Linux mmdrop); the final one
// frees the descriptor. init_mm's permanent reference keeps it alive
// forever.
func (k *Kernel) mmDrop(m *MM) {
	m.Count--
	if m.Count > 0 {
		return
	}
	if m.Count < 0 {
		panic(fmt.Sprintf("kernel: mmDrop underflow on mm %d", m.ID))
	}
	if m == k.initMM {
		panic("kernel: init_mm freed")
	}
	delete(k.mms, m.ID)
}

// UseMM makes the kernel-thread context (no current task) adopt t's
// address space — Linux kthread_use_mm, the model's use_mm action. The
// thread becomes an address-space user (not a mere borrower), and the
// previously borrowed space loses its lazy reference. Until UnuseMM
// the CPU is pinned: context switches are illegal.
func (k *Kernel) UseMM(t *Task) {
	if k.cur != nil {
		panic("kernel: UseMM while a task is current")
	}
	if k.kthreadMM != nil {
		panic("kernel: nested UseMM")
	}
	if t.State != TaskRunnable || t.mm == nil {
		panic(fmt.Sprintf("kernel: UseMM on task %d without a live mm", t.PID))
	}
	defer k.span(PathSched)()
	k.M.Mon.KthreadMMSwitches++
	k.kexec(textSched+0x600, useMMInstr)
	m := t.mm
	k.mmGet(m)
	old := k.activeMM
	k.activeMM = m
	k.kthreadMM = m
	k.M.Ph.SetTask(0, m.ID)
	k.loadSegments(t)
	k.mmDrop(old)
}

// UnuseMM ends a UseMM span — Linux kthread_unuse_mm, the model's
// unuse_mm action. The CPU keeps the space as a lazy-TLB borrow (the
// segment registers still name it), so an existence reference is
// taken before the user reference is dropped.
func (k *Kernel) UnuseMM() {
	m := k.kthreadMM
	if m == nil {
		panic("kernel: UnuseMM without UseMM")
	}
	defer k.span(PathSched)()
	k.M.Mon.KthreadMMSwitches++
	k.kexec(textSched+0x700, unuseMMInstr)
	k.mmGrab(m)
	k.kthreadMM = nil
	if !mutantSkipUnusePut {
		k.mmPut(m)
	}
}

// SwitchToIdle switches the CPU from the current task to the idle
// loop — the model's borrow_mm action. The idle thread has no address
// space of its own, so it borrows the outgoing task's (lazy TLB,
// Linux's active_mm): no segment reload, one existence reference.
func (k *Kernel) SwitchToIdle() {
	t := k.cur
	if t == nil {
		panic("kernel: SwitchToIdle with no current task")
	}
	if k.kthreadMM != nil {
		panic("kernel: SwitchToIdle during a UseMM span")
	}
	defer k.span(PathSched)()
	k.M.Mon.CtxSwitches++
	start := k.M.Led.Now()
	defer func() {
		// PID 0: the switch lands in the idle loop.
		k.M.Trc.Emit(mmtrace.KindCtxSwitch, t.Segs[0], 0, k.M.Led.Now()-start, 0)
	}()
	if k.cfg.FastReload {
		k.kexec(textSched, schedInstr)
		k.kdataW(dataTaskStructs+t.slotOff(), 128) // save
	} else {
		k.kexec(textSched, schedSlowInstr)
		k.kdataW(dataTaskStructs+t.slotOff(), 384)
	}
	k.kdata(dataRunQueue, 64)
	k.mmGrab(t.mm)
	k.cur = nil
	k.M.Trc.SetTask(0)
	// PID 0 on the borrowed space: idle cycles still attribute to the
	// address space the segment registers name.
	k.M.Ph.SetTask(0, k.activeMM.ID)
}

// MM returns the task's address-space descriptor (nil after exit).
func (t *Task) MM() *MM { return t.mm }

// InitMM returns the kernel's own address space.
func (k *Kernel) InitMM() *MM { return k.initMM }

// ActiveMM returns the address space the CPU currently has loaded —
// the current task's space, or a borrowed one when no task is current.
func (k *Kernel) ActiveMM() *MM { return k.activeMM }

// KthreadMM returns the space adopted by UseMM, or nil outside a span.
func (k *Kernel) KthreadMM() *MM { return k.kthreadMM }

// MMRegistered reports whether m is still a live descriptor (its
// existence references have not all been dropped).
func (k *Kernel) MMRegistered(m *MM) bool {
	got, ok := k.mms[m.ID]
	return ok && got == m
}
