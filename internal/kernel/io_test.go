package kernel

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
)

func TestKernelIOWindowWithoutBAT(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Unoptimized())
	before := k.M.Mon.Snapshot()
	k.KernelFBWrite(0, 4096)
	d := k.M.Mon.Delta(before)
	if d.TLBMisses == 0 {
		t.Fatal("unBATted I/O window should take TLB misses")
	}
	// The device pages must be cache-inhibited: no fills for class IO.
	if k.M.DCache.Stats().Fills[cache.ClassIO] != 0 {
		t.Fatal("device accesses filled the cache")
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelIOWindowWithBAT(t *testing.T) {
	cfg := Unoptimized()
	cfg.MapIOWithBAT = true
	k, _ := bootTask(t, clock.PPC604At185(), cfg)
	before := k.M.Mon.Snapshot()
	k.KernelFBWrite(0, 4096)
	d := k.M.Mon.Delta(before)
	if d.TLBMisses != 0 || d.BATHits == 0 {
		t.Fatalf("I/O BAT not used: %+v", d)
	}
}

func TestIoremapFBPTEPath(t *testing.T) {
	k, task := bootTask(t, clock.PPC604At185(), Unoptimized())
	addr := k.IoremapFB()
	if addr != UserFBBase {
		t.Fatalf("IoremapFB returned %v", addr)
	}
	before := k.M.Mon.Snapshot()
	k.FBWrite(0, 8*arch.PageSize)
	d := k.M.Mon.Delta(before)
	if d.MinorFaults != 8 {
		t.Fatalf("FB pages should demand-fault as minor: %+v", d)
	}
	// The mappings point at device frames, cache-inhibited.
	e, ok := task.PT.Lookup(UserFBBase)
	if !ok || !e.Inhibited || e.RPN != FBPhysBase.Frame() {
		t.Fatalf("FB mapping wrong: %+v ok=%v", e, ok)
	}
	// Re-blitting uses the TLB: entries occupied by the frame buffer.
	before = k.M.Mon.Snapshot()
	k.FBWrite(0, 8*arch.PageSize)
	d = k.M.Mon.Delta(before)
	if d.MinorFaults != 0 {
		t.Fatal("refault on mapped FB pages")
	}
	if d.TLBHits == 0 {
		t.Fatal("PTE-mapped FB should use the TLB")
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if k.IoremapFB() != UserFBBase {
		t.Fatal("second IoremapFB should return the same window")
	}
}

func TestIoremapFBBATPath(t *testing.T) {
	cfg := Optimized()
	cfg.FBBAT = true
	k, _ := bootTask(t, clock.PPC604At185(), cfg)
	k.IoremapFB()
	before := k.M.Mon.Snapshot()
	k.FBWrite(0, 32*arch.PageSize)
	d := k.M.Mon.Delta(before)
	if d.MinorFaults != 0 || d.TLBMisses != 0 {
		t.Fatalf("BAT-mapped FB should bypass faults and TLB: %+v", d)
	}
	if d.BATHits == 0 {
		t.Fatal("no BAT hits on the FB")
	}
}

func TestFBBATSwitchedPerProcess(t *testing.T) {
	cfg := Optimized()
	cfg.FBBAT = true
	k, x := bootTask(t, clock.PPC604At185(), cfg)
	other := k.Fork() // no FB mapping
	k.IoremapFB()     // current task (x) maps it

	// While x runs, the FB BAT is live.
	if _, _, ok := k.M.MMU.DBAT.Lookup(UserFBBase); !ok {
		t.Fatal("FB BAT not loaded for the mapping task")
	}
	// Switch to the other task: the BAT must be gone (it would leak
	// device access into a process that never mapped it).
	k.Switch(other)
	if _, _, ok := k.M.MMU.DBAT.Lookup(UserFBBase); ok {
		t.Fatal("FB BAT leaked across context switch")
	}
	k.Switch(x)
	if _, _, ok := k.M.MMU.DBAT.Lookup(UserFBBase); !ok {
		t.Fatal("FB BAT not restored")
	}
}

// TestFBBATRelievesTLBPressure is the §5.1 proposal's point: an
// X-server-like task blitting the frame buffer while working through
// its own data stops competing for TLB slots once the FB has its own
// BAT.
func TestFBBATRelievesTLBPressure(t *testing.T) {
	run := func(bat bool) uint64 {
		cfg := Optimized()
		cfg.FBBAT = bat
		k, _ := bootTask(t, clock.PPC604At185(), cfg)
		k.IoremapFB()
		ws := k.SysMmap(200) // the server's own pixmaps/state
		k.UserTouchPages(ws, 200)
		k.FBWrite(0, fbBytes) // touch the whole FB once
		before := k.M.Mon.Snapshot()
		for round := 0; round < 6; round++ {
			k.FBWrite(0, fbBytes/2)
			k.UserTouchPages(ws, 200)
		}
		return k.M.Mon.Delta(before).TLBMisses
	}
	pte, bat := run(false), run(true)
	if bat >= pte {
		t.Fatalf("FB BAT should cut TLB misses: %d (BAT) vs %d (PTE)", bat, pte)
	}
}
