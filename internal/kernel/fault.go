package kernel

import (
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/mmtrace"
	"mmutricks/internal/ppc"
)

// Instruction-path lengths of the fault handlers. The fast handlers are
// the §6.1 rewrite: assembly, MMU off, only the four swapped-in scratch
// registers, hand-scheduled. The original path saves full state, turns
// the MMU on and runs C.
const (
	fastMissInstr    = 24  // hand-optimized reload path
	cMissSaveInstr   = 150 // original state save / MMU enable / dispatch
	cMissBodyInstr   = 90  // original C search body
	cMissRegBytes    = 128 // 32 GPRs saved to the task struct
	hashInsertInstr  = 40  // build + store a hash-table PTE
	softSearchPerPTE = 3   // software compare cost per PTE examined (603)
	pageFaultInstr   = 400 // do_page_fault C path
	getFreeInstr     = 60  // get_free_page
)

// fetchPhysText fetches handler instructions physically (the PowerPC
// turns off memory management on an interrupt and the handlers run at
// their physical vector addresses).
func (k *Kernel) fetchPhysText(off uint32, n int) {
	k.M.Led.Charge(clock.Cycles(n))
	line := k.M.LineSize()
	instrPerLine := line / 4
	lines := (n + instrPerLine - 1) / instrPerLine
	k.M.FetchRun(k.textPA+arch.PhysAddr(off), lines, line, cache.ClassKernelText, false)
}

// handlerOverhead charges the fixed part of a software fault handler:
// interrupt entry/exit plus either the tiny assembly path or the
// original save-state-and-call-C path.
func (k *Kernel) handlerOverhead() {
	k.M.Led.Charge(clock.Cycles(k.M.Model.MissHandlerEntry))
	if k.cfg.FastReload {
		k.fetchPhysText(textFastMiss, fastMissInstr)
		return
	}
	// Original path: a physical stub saves state and enables the MMU,
	// then the C body runs translated, touching the task struct. A
	// miss taken *inside* a handler (nested: the C body's own text) is
	// serviced by the stub at its physical address, like the real
	// vector code — otherwise the body fetch would recurse forever.
	k.fetchPhysText(textCMissSave, cMissSaveInstr)
	if t := k.cur; t != nil {
		k.kdataDirect(dataTaskStructs+t.slotOff(), cMissRegBytes, true)
	}
	if k.faultDepth > 1 {
		k.fetchPhysText(textCMissBody, cMissBodyInstr)
		return
	}
	k.kexecHandler(textCMissBody, cMissBodyInstr)
}

// kexecHandler fetches handler-body text through translation, like
// kexec, but is safe to call from inside the fault path (recursion is
// bounded because kernel-text misses resolve via the linear mapping).
func (k *Kernel) kexecHandler(off uint32, n int) {
	k.M.Led.Charge(clock.Cycles(n))
	line := uint32(k.M.LineSize())
	instrPerLine := line / 4
	lines := (uint32(n) + instrPerLine - 1) / instrPerLine
	base := uint32(kvirt(k.textPA)) + off
	k.AccessRun(k.cur, Run{
		EA: arch.EffectiveAddr(base), Count: int(lines), Stride: int(line),
		Class: cache.ClassKernelText, Instr: true,
	})
}

// kdataDirect performs kernel-data accesses physically (handlers with
// the MMU off address the task struct by physical address).
func (k *Kernel) kdataDirect(off uint32, nbytes int, write bool) {
	line := k.M.LineSize()
	base := k.dataPA + arch.PhysAddr(off)
	k.M.MemAccessRun(base, (nbytes+line-1)/line, line, cache.ClassKernelData, false, write)
}

// handleFault services a TLB miss (603) or hash-table miss (604).
func (k *Kernel) handleFault(t *Task, ea arch.EffectiveAddr, r ppc.Result, instr bool) {
	defer k.span(PathMiss)()
	k.faultDepth++
	defer func() { k.faultDepth-- }()
	if k.faultDepth > 6 {
		panic(fmt.Sprintf("kernel: fault recursion at %v", ea))
	}
	// The reload handlers walk the very structures the injector
	// corrupts; poisoning them mid-reload would model a second fault
	// arriving inside the handler, which the hardware holds off.
	k.M.Inj.Suspend()
	defer k.M.Inj.Resume()

	// The handler events carry the whole software path as their cost
	// (entry, search, page fault if one nests, insert); the MMU's own
	// tlb-miss event marks where the miss happened.
	start := k.M.Led.Now()
	switch r.Fault {
	case ppc.FaultTLBMiss:
		k.M.Mon.SoftwareReloads++
		k.handlerOverhead()
		k.reload603(t, ea, r.VPN, instr)
		k.M.Trc.Emit(mmtrace.KindSoftReload, r.VPN.VSID(), ea, k.M.Led.Now()-start, 0)
	case ppc.FaultHashMiss:
		// The MMU already charged the >=91-cycle interrupt cost.
		k.handlerOverhead()
		k.reload604(t, ea, r.VPN)
		k.M.Trc.Emit(mmtrace.KindHashMissFault, r.VPN.VSID(), ea, k.M.Led.Now()-start, 0) //mmutricks:parity-ok HashMissFaults increments at the raise site, ppc.(*MMU).Translate; the emit waits here for the handler cost
	default:
		panic("kernel: unknown fault")
	}
}

// reload603 is the software TLB reload (the 603 lets software write the
// TLB directly). Depending on configuration it searches the hash table
// first (the databook's 604 emulation) or goes straight to the Linux
// page-table tree (§6.2, "improving hash tables away").
func (k *Kernel) reload603(t *Task, ea arch.EffectiveAddr, vpn arch.VPN, instr bool) {
	tlb := k.M.MMU.TLBFor(instr)
	if ea.IsKernel() {
		if rpn, ok := k.ioLinear(ea); ok {
			// Kernel I/O window: cache-inhibited device space.
			if k.cfg.UseHTAB {
				k.htabInsert(vpn, rpn, true)
			}
			tlb.Insert(vpn, rpn, true, true)
			return
		}
		rpn, ok := k.kernelLinear(ea)
		if !ok {
			panic(fmt.Sprintf("kernel: bad kernel address %v", ea))
		}
		if k.cfg.UseHTAB {
			// The original port kept kernel PTEs in the hash table —
			// the footprint §5.1 eliminates. Search, insert on miss.
			if pte := k.softSearch(vpn); pte != nil {
				tlb.Insert(vpn, pte.RPN, pte.CacheInhibited, true)
				return
			}
			k.htabInsert(vpn, rpn, false)
		}
		tlb.Insert(vpn, rpn, false, true)
		return
	}

	if k.cfg.UseHTAB {
		if pte := k.softSearch(vpn); pte != nil {
			tlb.Insert(vpn, pte.RPN, pte.CacheInhibited, false)
			return
		}
	}
	e, ok := k.treeWalk(t, ea)
	if !ok {
		k.pageFault(t, ea)
		if e, ok = k.treeWalk(t, ea); !ok {
			panic(fmt.Sprintf("kernel: page fault did not map %v", ea))
		}
	}
	if k.cfg.UseHTAB {
		k.htabInsert(vpn, e.RPN, e.Inhibited)
	}
	tlb.Insert(vpn, e.RPN, e.Inhibited, false)
}

// reload604 services the 604's hash-table miss interrupt: find the PTE
// in the Linux tree and install it in the hash table. The hardware
// walks the table again when the access retries (the 604 does not let
// software touch the TLB).
func (k *Kernel) reload604(t *Task, ea arch.EffectiveAddr, vpn arch.VPN) {
	if ea.IsKernel() {
		if rpn, ok := k.ioLinear(ea); ok {
			k.htabInsert(vpn, rpn, true)
			return
		}
		rpn, ok := k.kernelLinear(ea)
		if !ok {
			panic(fmt.Sprintf("kernel: bad kernel address %v", ea))
		}
		k.htabInsert(vpn, rpn, false)
		return
	}
	e, ok := k.treeWalk(t, ea)
	if !ok {
		k.pageFault(t, ea)
		if e, ok = k.treeWalk(t, ea); !ok {
			panic(fmt.Sprintf("kernel: page fault did not map %v", ea))
		}
	}
	k.htabInsert(vpn, e.RPN, e.Inhibited)
}

// kernelLinear translates a kernel effective address through the linear
// mapping. No loads are needed; the translation is arithmetic.
func (k *Kernel) kernelLinear(ea arch.EffectiveAddr) (arch.PFN, bool) {
	pa := uint32(ea) - uint32(KernelVirtBase)
	if int(pa) >= k.M.Mem.Frames()*arch.PageSize {
		return 0, false
	}
	return arch.PhysAddr(pa).Frame(), true
}

// softSearch is the 603's software emulation of the 604 hardware hash
// search, charging the per-PTE compare cost plus the table's memory
// traffic. It maintains the same hit counters the 604 hardware does.
func (k *Kernel) softSearch(vpn arch.VPN) *arch.PTE {
	start := k.M.Led.Now()
	pte, primary, accesses := k.M.MMU.HTAB.Search(vpn, k.M)
	k.M.Led.Charge(clock.Cycles(accesses * softSearchPerPTE))
	cost := k.M.Led.Now() - start
	if pte != nil {
		k.M.Mon.HTABHits++
		if primary {
			k.M.Mon.HTABPrimaryHits++
			k.M.Trc.Emit(mmtrace.KindHTABHitPrimary, vpn.VSID(), 0, cost, 0)
		} else {
			k.M.Trc.Emit(mmtrace.KindHTABHitSecondary, vpn.VSID(), 0, cost, 0)
		}
		pte.R = true
	} else {
		k.M.Mon.HTABMisses++
		k.M.Trc.Emit(mmtrace.KindHTABMiss, vpn.VSID(), 0, cost, 0)
	}
	return pte
}

// htabInsert installs a PTE in the hash table, classifying what it
// displaced (§7's evict accounting).
func (k *Kernel) htabInsert(vpn arch.VPN, rpn arch.PFN, inhibited bool) {
	if k.cfg.OnDemandReclaim && k.cfg.LazyFlush && k.M.MMU.HTAB.BucketsFull(vpn) {
		// Space is scarce: stop the world and sweep the table for
		// zombies before inserting — the §7 first-draft design the
		// paper rejected because "performance would be inconsistent if
		// we had to occasionally scan the hash table". The unlucky
		// operation eats a full-table sweep.
		k.M.Mon.OnDemandScans++
		scanStart := k.M.Led.Now()
		_, n := k.M.MMU.HTAB.ReclaimScan(0, k.M.MMU.HTAB.Groups(), k.M, k.zombie)
		k.M.Mon.ZombiesReclaimed += uint64(n)
		k.M.Trc.Emit(mmtrace.KindOnDemandScan, vpn.VSID(), 0, k.M.Led.Now()-scanStart, uint32(n))
	}
	start := k.M.Led.Now()
	k.M.Led.Charge(hashInsertInstr)
	out, _ := k.M.MMU.HTAB.Insert(vpn, rpn, inhibited, k.M, k.zombie)
	k.M.Mon.HTABInserts++
	cost := k.M.Led.Now() - start
	switch out {
	case ppc.InsertFreeSlot:
		k.M.Mon.HTABFreeSlot++
		k.M.Trc.Emit(mmtrace.KindHTABInsertFree, vpn.VSID(), 0, cost, 0)
	case ppc.InsertEvictLive:
		k.M.Mon.HTABEvictsValid++
		k.M.Trc.Emit(mmtrace.KindHTABEvictLive, vpn.VSID(), 0, cost, 0)
	case ppc.InsertEvictZombie:
		k.M.Mon.HTABEvictsZombie++
		k.M.Trc.Emit(mmtrace.KindHTABEvictZombie, vpn.VSID(), 0, cost, 0)
	}
}

// treeWalk walks the Linux two-level page tables for t — the "three
// loads in the worst case" of §6.1: the task's page-directory pointer,
// the directory entry, and the PTE. A single fused descent of the tree
// yields both the entry and the addresses to charge.
func (k *Kernel) treeWalk(t *Task, ea arch.EffectiveAddr) (pagetableEntry, bool) {
	if t == nil {
		panic(fmt.Sprintf("kernel: user access %v with no task", ea))
	}
	inh := k.ptInhibited()
	// Load 1: the mm/pgd pointer in the task struct.
	k.M.MemAccess(k.dataPA+arch.PhysAddr(dataTaskStructs+t.slotOff()), cache.ClassKernelData, false, false)
	e, pgdAddr, pteAddr, present := t.PT.Walk(ea)
	// Load 2: the page-directory entry.
	k.M.MemAccess(pgdAddr, cache.ClassPageTable, inh, false)
	if pteAddr == 0 {
		return pagetableEntry{}, false
	}
	// Load 3: the PTE.
	k.M.MemAccess(pteAddr, cache.ClassPageTable, inh, false)
	if !present {
		return pagetableEntry{}, false
	}
	return pagetableEntry{RPN: e.RPN, Inhibited: e.Inhibited}, true
}

// pagetableEntry mirrors pagetable.Entry without the Present bit.
type pagetableEntry struct {
	RPN       arch.PFN
	Inhibited bool
}

// pageFault is do_page_fault: demand paging for a valid region. An
// access outside every region is a simulation bug and panics (the
// workloads are well-behaved; there is no one to deliver SIGSEGV to).
func (k *Kernel) pageFault(t *Task, ea arch.EffectiveAddr) {
	defer k.span(PathFault)()
	start := k.M.Led.Now()
	k.kexecHandler(textPageFault, pageFaultInstr)
	k.kdataDirect(dataVMAs+t.slotOff()%0x1000, 64, false) // vma lookup
	reg := t.regionFor(ea)
	if reg == nil {
		panic(fmt.Sprintf("kernel: segfault: task %d at %v", t.PID, ea))
	}
	pageIdx := int(ea.PageBase()-reg.Start) / arch.PageSize
	kind := mmtrace.KindMajorFault
	switch reg.Kind {
	case RegionIO:
		// Device space: shared, cache-inhibited, nothing to allocate.
		k.M.Mon.MinorFaults++
		kind = mmtrace.KindMinorFault
		k.mapPage(t, ea.PageBase(), reg.Backing[pageIdx], true)
	case RegionText:
		// File-backed text: the frame is already in the page cache.
		k.M.Mon.MinorFaults++
		kind = mmtrace.KindMinorFault
		k.kdataDirect(dataPageCache, 64, false)
		k.mapPage(t, ea.PageBase(), reg.Backing[pageIdx], false)
	default:
		// Anonymous memory: swapped-out pages come back from the
		// device; fresh pages are demand-zero.
		k.M.Mon.MajorFaults++
		var pfn arch.PFN
		if k.isSwapped(t, ea) {
			pfn = k.swapIn(t, ea)
		} else {
			pfn = k.getFreePageReclaim()
		}
		t.ownFrame(pfn)
		k.mapPage(t, ea.PageBase(), pfn, false)
	}
	k.M.Trc.Emit(kind, t.Segs[ea.SegIndex()], ea, k.M.Led.Now()-start, 0)
}

// mapPage installs a translation in the task's page tree, charging the
// two stores the update takes.
func (k *Kernel) mapPage(t *Task, ea arch.EffectiveAddr, pfn arch.PFN, inhibited bool) {
	if err := t.PT.Map(ea, pfn, inhibited); err != nil {
		panic(fmt.Sprintf("kernel: out of memory mapping %v for task %d", ea, t.PID))
	}
	pgdAddr, pteAddr, ok := t.PT.WalkAddrs(ea)
	inh := k.ptInhibited()
	k.M.MemAccess(pgdAddr, cache.ClassPageTable, inh, true)
	if ok {
		k.M.MemAccess(pteAddr, cache.ClassPageTable, inh, true)
	}
}

// getFreePage is get_free_page(): take a pre-cleared page if the idle
// task banked one (§9), otherwise allocate and clear synchronously —
// 4 KB of stores through the data cache.
func (k *Kernel) getFreePage() arch.PFN {
	k.kexecHandler(textGetFree, getFreeInstr)
	k.kdataDirect(dataRunQueue, 32, false) // the cleared-list check
	pfn, cleared, ok := k.M.Mem.GetFreePage()
	if !ok {
		panic("kernel: out of memory")
	}
	if cleared {
		k.M.Mon.ClearedPageHits++
		return pfn
	}
	if k.cfg.BzeroDCBZ {
		// bzero via dcbz: one cycle per line, no memory reads, maximal
		// cache pollution (§9's rejected bzero implementation).
		k.M.ZeroLineRun(pfn.Addr(), arch.PageSize/k.M.LineSize(), cache.ClassKernelData)
		return pfn
	}
	// Synchronous clear: one store per line over the whole page.
	k.kframe(pfn, 0, arch.PageSize, cache.ClassKernelData, true)
	return pfn
}
