package kernel

import (
	"fmt"
	"sort"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/mmtrace"
	"mmutricks/internal/pagetable"
)

// Demand paging to swap. The paper's machines had 32 MB of RAM and a
// disk; when the frame allocator runs dry, the kernel reclaims resident
// anonymous pages — writing them to a simulated swap device, unmapping
// them and flushing their translations (each flush a §7-style per-page
// hash search on hash-table kernels) — and faults them back in on next
// touch.
//
// Only task-owned anonymous pages are swap candidates: text and file
// pages can be dropped and re-read from the page cache, device pages
// never move, and copy-on-write-shared frames are skipped for
// simplicity (they are transient).
const (
	// swapLatencyCycles is one page of swap-device I/O. A 1999 disk
	// seek is ~10 ms (millions of cycles); this models a well-placed
	// swap partition with request overlap so thrashing workloads stay
	// simulable. The constant only scales the thrash penalty.
	swapLatencyCycles = 60_000
	// swapReclaimBatch is how many pages one reclaim pass steals.
	swapReclaimBatch = 32
	swapOutInstr     = 300 // pick victim, queue the write
	swapInInstr      = 250 // the fault-side path
)

// swapKey names a swapped-out page.
type swapKey struct {
	pid uint32
	pn  uint32
}

// swapSlot records where the page went (the simulated device is a
// growing slot array; contents are cost-only).
type swapSlot int

// swapOut writes one page to the swap device and releases its frame.
func (k *Kernel) swapOut(t *Task, ea arch.EffectiveAddr, pfn arch.PFN) {
	defer k.span(PathSwap)()
	k.M.Mon.SwapOuts++
	start := k.M.Led.Now()
	defer func() {
		k.M.Trc.Emit(mmtrace.KindSwapOut, t.Segs[ea.SegIndex()], ea, k.M.Led.Now()-start, 0)
	}()
	k.kexecHandler(textGetFree+0x200, swapOutInstr)
	// Read the page for the device write (DMA; the device does not
	// pollute the cache but the read costs memory time per line).
	line := k.M.LineSize()
	for off := 0; off < arch.PageSize; off += line {
		k.M.DCache.AccessInhibited(cache.ClassKernelData)
	}
	k.M.Led.Charge(swapLatencyCycles)

	if k.swapped == nil {
		k.swapped = make(map[swapKey]swapSlot)
	}
	k.swapped[swapKey{t.PID, ea.PageNumber()}] = swapSlot(len(k.swapped))
	t.PT.Unmap(ea)
	k.flushPage(t, ea)
	t.disownFrame(pfn)
	k.M.Mem.FreeFrame(pfn)
}

// swapIn brings a swapped page back for the current fault.
func (k *Kernel) swapIn(t *Task, ea arch.EffectiveAddr) arch.PFN {
	defer k.span(PathSwap)()
	key := swapKey{t.PID, ea.PageBase().PageNumber()}
	if _, ok := k.swapped[key]; !ok {
		panic(fmt.Sprintf("kernel: swapIn of resident page %v", ea))
	}
	k.M.Mon.SwapIns++
	start := k.M.Led.Now()
	defer func() {
		k.M.Trc.Emit(mmtrace.KindSwapIn, t.Segs[ea.SegIndex()], ea, k.M.Led.Now()-start, 0)
	}()
	k.kexecHandler(textGetFree+0x400, swapInInstr)
	k.M.Led.Charge(swapLatencyCycles)
	delete(k.swapped, key)
	pfn := k.getFreePageReclaim() // may itself reclaim
	// The device DMAs the content in; the lines are not cached.
	line := k.M.LineSize()
	for off := 0; off < arch.PageSize; off += line {
		k.M.DCache.AccessInhibited(cache.ClassKernelData)
	}
	return pfn
}

// isSwapped reports whether the page holding ea is on the device.
func (k *Kernel) isSwapped(t *Task, ea arch.EffectiveAddr) bool {
	if k.swapped == nil {
		return false
	}
	_, ok := k.swapped[swapKey{t.PID, ea.PageBase().PageNumber()}]
	return ok
}

// reclaimPages steals up to n resident anonymous pages, oldest tasks
// first, round-robin from a persistent cursor so victims rotate fairly
// and deterministically. It returns how many frames it freed.
func (k *Kernel) reclaimPages(n int) int {
	// Deterministic task order.
	pids := make([]uint32, 0, len(k.tasks))
	for pid := range k.tasks {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	freed := 0
	for _, pid := range pids {
		t := k.tasks[pid]
		if t.State == TaskZombie || t.PT == nil {
			continue
		}
		type victim struct {
			ea  arch.EffectiveAddr
			pfn arch.PFN
		}
		var victims []victim
		for _, r := range t.Regions() {
			if r.Kind != RegionAnon && r.Kind != RegionStack {
				continue
			}
			t.PT.Range(r.Start, r.End(), func(ea arch.EffectiveAddr, e pagetable.Entry) bool {
				if len(victims) >= n-freed {
					return false
				}
				if !t.owns(e.RPN) { // COW-shared or otherwise pinned
					return true
				}
				if ea.PageNumber() <= t.reclaimCursor {
					return true // already stolen this sweep; age others first
				}
				victims = append(victims, victim{ea, e.RPN})
				return true
			})
			if len(victims) >= n-freed {
				break
			}
		}
		for _, v := range victims {
			k.swapOut(t, v.ea, v.pfn)
			t.reclaimCursor = v.ea.PageNumber()
			freed++
		}
		if freed > 0 && t.reclaimCursor != 0 && len(victims) == 0 {
			t.reclaimCursor = 0 // wrapped: start over next time
		}
		if freed >= n {
			return freed
		}
		t.reclaimCursor = 0
	}
	return freed
}

// getFreePageReclaim is getFreePage with an out-of-memory fallback:
// steal pages before giving up — the machine swaps instead of dying.
func (k *Kernel) getFreePageReclaim() arch.PFN {
	if k.M.Mem.FreeFrames() == 0 {
		if k.reclaimPages(swapReclaimBatch) == 0 {
			panic("kernel: out of memory and nothing reclaimable")
		}
	}
	return k.getFreePage()
}

// SwapStats reports swap activity.
type SwapStats struct {
	Outs, Ins uint64
	OnDevice  int
}

// Swap returns the current swap statistics.
func (k *Kernel) Swap() SwapStats {
	return SwapStats{
		Outs:     k.M.Mon.SwapOuts,
		Ins:      k.M.Mon.SwapIns,
		OnDevice: len(k.swapped),
	}
}
