package kernel

import (
	"testing"

	"mmutricks/internal/clock"
)

func TestSignalSelfDelivery(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	k.SysSignal(1, 500)
	before := k.M.Mon.Snapshot()
	for i := 0; i < 10; i++ {
		k.SysKill(k.Current())
	}
	d := k.M.Mon.Delta(before)
	if d.Signals != 10 {
		t.Fatalf("delivered %d signals", d.Signals)
	}
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSignalCrossTaskPends(t *testing.T) {
	k, a := bootTask(t, clock.PPC604At185(), Optimized())
	b := k.Fork()
	k.Switch(b)
	k.SysSignal(0, 300)
	k.Switch(a)
	k.SysKill(b) // b isn't running: pends
	if k.SignalsDelivered() != 0 {
		t.Fatal("cross-task signal delivered eagerly")
	}
	k.SysKill(b)
	k.Switch(b) // delivery happens here
	if k.SignalsDelivered() != 2 {
		t.Fatalf("delivered %d on switch, want 2", k.SignalsDelivered())
	}
	if b.sigPending != 0 {
		t.Fatal("pending count not drained")
	}
}

func TestSignalNoHandlerPanics(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	defer func() {
		if recover() == nil {
			t.Error("signal without handler should panic")
		}
	}()
	k.SysKill(k.Current())
}

func TestSignalLatencyFastVsSlowKernel(t *testing.T) {
	// lat_sig: the fast exception paths cut delivery cost, like every
	// other trap in §6.1.
	lat := func(cfg Config) clock.Cycles {
		k, _ := bootTask(t, clock.PPC604At185(), cfg)
		k.SysSignal(0, 100)
		k.SysKill(k.Current()) // warm
		start := k.M.Led.Now()
		for i := 0; i < 20; i++ {
			k.SysKill(k.Current())
		}
		return (k.M.Led.Now() - start) / 20
	}
	fast := lat(Optimized())
	slow := lat(Unoptimized())
	if fast >= slow {
		t.Fatalf("fast kernel signal (%d cycles) should beat slow (%d)", fast, slow)
	}
}
