// Package kernel implements a miniature Linux/PPC-style operating
// system running on the simulated PowerPC machine: tasks and a
// round-robin scheduler, fork/exec/exit, demand paging over a two-level
// page-table tree, pipes, a page cache, and — the heart of the paper —
// every memory-management policy the paper measures, each behind a
// Config switch:
//
//	§5.1  KernelBAT        map kernel space with BAT registers
//	§5.2  Scatter          the VSID scatter constant
//	§6.1  FastReload       hand-optimized assembly miss handlers
//	§6.2  UseHTAB          (603) search the hash table before the tree
//	§7    LazyFlush        VSID-reassignment context flushing
//	§7    FlushRangeCutoff range-flush → context-flush threshold
//	§7    IdleReclaim      idle task sweeps zombie hash-table PTEs
//	§8    CachePageTables  let table walks allocate in the data cache
//	§9    IdleClear        idle-task page clearing variants
package kernel

import "mmutricks/internal/vsid"

// IdleClearMode selects the §9 page-clearing experiment variant.
type IdleClearMode int

const (
	// IdleClearOff: the idle task does not clear pages; get_free_page
	// clears on demand.
	IdleClearOff IdleClearMode = iota
	// IdleClearCached: clear through the cache and bank the page —
	// the paper's first attempt, which nearly doubled kernel-compile
	// time from cache pollution.
	IdleClearCached
	// IdleClearUncached: clear with the cache inhibited but do NOT
	// bank the page — the paper's control experiment (no loss, no gain).
	IdleClearUncached
	// IdleClearUncachedList: clear with the cache inhibited and bank
	// the page for get_free_page — the variant that won.
	IdleClearUncachedList
)

func (m IdleClearMode) String() string {
	switch m {
	case IdleClearOff:
		return "off"
	case IdleClearCached:
		return "cached"
	case IdleClearUncached:
		return "uncached-nolist"
	case IdleClearUncachedList:
		return "uncached+list"
	}
	return "idleclear(?)"
}

// Config selects which of the paper's optimizations are active.
type Config struct {
	// KernelBAT maps kernel text/data (and, because the kernel image,
	// hash table and page tables are all in the one linear region, all
	// of kernel lowmem) with a single BAT pair (§5.1).
	KernelBAT bool

	// Scatter is the VSID scatter constant (§5.2). Zero selects the
	// tuned default.
	Scatter uint32

	// FastReload uses the hand-optimized assembly TLB-miss/hash-miss
	// handlers that run with the MMU off, touch only the swapped-in
	// scratch registers, and take three loads in the worst case (§6.1).
	// Off means the original path: save full state, turn the MMU on,
	// and run C handlers.
	FastReload bool

	// UseHTAB, on the 603, makes the software TLB-miss handler search
	// the hash table first (emulating the 604's hardware search, as the
	// 603 databook recommends). Off is the §6.2 optimization: skip the
	// hash table entirely and walk the Linux page-table tree. Ignored
	// on the 604, whose hardware requires the hash table.
	UseHTAB bool

	// LazyFlush enables VSID-reassignment context flushing (§7): a
	// whole-context flush retires the VSIDs instead of searching the
	// hash table, leaving zombie PTEs behind.
	LazyFlush bool

	// FlushRangeCutoff is the page count above which a range flush is
	// converted into a whole-context flush (§7; the paper settled on
	// 20). Zero disables the conversion (every range flush walks its
	// pages).
	FlushRangeCutoff int

	// IdleReclaim makes the idle task scan the hash table and clear
	// the valid bit of zombie PTEs (§7).
	IdleReclaim bool

	// OnDemandReclaim is the design the paper considered first and
	// rejected (§7): keep the zombie set and scan the hash table
	// synchronously "when hash table space became scarce" — here, when
	// an insert finds both candidate buckets full. The paper's
	// objection was latency inconsistency, which the sec7-ondemand
	// experiment measures.
	OnDemandReclaim bool

	// IdleClear selects the §9 page-clearing variant.
	IdleClear IdleClearMode

	// CachePageTables controls whether hash-table and page-table-tree
	// accesses go through the data cache (true, the stock behaviour §8
	// criticizes) or are performed cache-inhibited (false, the
	// proposed fix).
	CachePageTables bool

	// IdleCacheLock locks the data cache while the idle task runs
	// (§10.1's proposed extension): idle accesses may hit but never
	// allocate, so the idle task cannot evict anyone's working set.
	IdleCacheLock bool

	// CachePreload issues dcbt-style prefetches for the incoming
	// task's state at the top of the context-switch path (§10.2's
	// proposed extension), overlapping the fills with the switch work.
	CachePreload bool

	// MapIOWithBAT maps the kernel's I/O window (the frame buffer)
	// with a BAT register. The paper tried this and found no
	// significant gain — "applications we examined rarely accessed a
	// large number of I/O addresses in a short time" (§5.1).
	MapIOWithBAT bool

	// FBBAT gives each process that calls IoremapFB its own data BAT
	// entry for the frame buffer, switched at context switch — the
	// paper's per-process ioremap() proposal (§5.1).
	FBBAT bool

	// BzeroDCBZ makes the synchronous page clear in get_free_page use
	// the dcbz cache-line-zero instruction instead of plain stores.
	// §9: "For the same reason we did not use the PowerPC instruction
	// that clears entire cache lines at a time when we implemented
	// bzero()" — dcbz is much faster per line but maximally polluting,
	// the trade this switch lets you measure.
	BzeroDCBZ bool

	// COWFork makes fork share anonymous pages copy-on-write instead
	// of copying eagerly; the first store to a shared page takes a
	// protection fault that copies it. This is the real Linux
	// behaviour; the eager copy charges the same traffic at fork time.
	COWFork bool
}

// Unoptimized returns the baseline configuration: the original
// Linux/PPC port before the paper's changes. The hash table is used as
// a second-level TLB (the 603 databook recommendation), handlers are C,
// every flush eagerly searches the hash table, the kernel is mapped
// with PTEs, and the idle task does nothing interesting.
func Unoptimized() Config {
	return Config{
		KernelBAT:        false,
		Scatter:          vsid.DefaultScatter,
		FastReload:       false,
		UseHTAB:          true,
		LazyFlush:        false,
		FlushRangeCutoff: 0,
		IdleReclaim:      false,
		IdleClear:        IdleClearOff,
		CachePageTables:  true,
	}
}

// Named returns a configuration by name, for command-line tools:
// "unoptimized", "optimized", or "optimized+htab" (the fully-tuned
// kernel that still uses the hash table, i.e. the 604-style setup).
func Named(name string) (Config, bool) {
	switch name {
	case "unoptimized":
		return Unoptimized(), true
	case "optimized":
		return Optimized(), true
	case "optimized+htab":
		c := Optimized()
		c.UseHTAB = true
		return c, true
	}
	return Config{}, false
}

// Optimized returns the fully-optimized configuration the paper arrives
// at: BAT-mapped kernel, fast assembly handlers, no hash table on the
// 603, lazy flushes with the 20-page range cutoff, idle-task zombie
// reclaim and uncached idle-task page clearing.
func Optimized() Config {
	return Config{
		KernelBAT:        true,
		Scatter:          vsid.DefaultScatter,
		FastReload:       true,
		UseHTAB:          false,
		LazyFlush:        true,
		FlushRangeCutoff: 20,
		IdleReclaim:      true,
		IdleClear:        IdleClearUncachedList,
		CachePageTables:  true,
	}
}
