package kernel

import (
	"math/rand"
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
)

// TestConsistencyAfterBasicOps checks the coherence invariants after
// ordinary activity, on both CPU kinds and both flush modes.
func TestConsistencyAfterBasicOps(t *testing.T) {
	for _, model := range []clock.CPUModel{clock.PPC603At180(), clock.PPC604At185()} {
		for _, cfg := range []Config{Unoptimized(), Optimized()} {
			k, _ := bootTask(t, model, cfg)
			k.UserTouchPages(UserDataBase, 32)
			k.UserRun(0, 500)
			addr := k.SysMmap(64)
			k.UserTouch(addr, 64*arch.PageSize)
			k.SysMunmap(addr, 64)
			child := k.Fork()
			k.Switch(child)
			k.UserTouchPages(UserDataBase, 8)
			if err := k.CheckConsistency(); err != nil {
				t.Errorf("%s lazy=%v: %v", model.Name, cfg.LazyFlush, err)
			}
		}
	}
}

// TestConsistencyAfterLazyFlushChurn is the interesting case: zombies
// everywhere, yet every *live* cached translation must still be right.
func TestConsistencyAfterLazyFlushChurn(t *testing.T) {
	k, task := bootTask(t, clock.PPC604At185(), Optimized())
	img, _ := k.images["test"]
	for i := 0; i < 12; i++ {
		k.UserTouchPages(UserDataBase, 40)
		k.Exec(img)
	}
	k.UserTouchPages(UserDataBase, 40)
	if err := k.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The hash table should indeed be full of zombies right now —
	// the checker must tolerate them.
	occ := k.M.MMU.HTAB.Occupancy()
	livePTEs := k.M.MMU.HTAB.LiveOccupancy(k.zombie)
	if occ <= livePTEs {
		t.Fatalf("expected zombie PTEs in the table: occ=%d live=%d", occ, livePTEs)
	}
	_ = task
}

// TestConsistencyRandomWorkload drives a random (seeded) op mix and
// checks invariants throughout — a lightweight model-checking pass over
// the kernel's MMU state machine.
func TestConsistencyRandomWorkload(t *testing.T) {
	for _, cfgName := range []string{"unoptimized", "optimized", "optimized+htab"} {
		cfg, _ := Named(cfgName)
		for _, model := range []clock.CPUModel{clock.PPC603At180(), clock.PPC604At185()} {
			k, _ := bootTask(t, model, cfg)
			rng := rand.New(rand.NewSource(42))
			var mappings []struct {
				addr  arch.EffectiveAddr
				pages int
			}
			tasks := []*Task{k.Current()}
			for step := 0; step < 300; step++ {
				switch rng.Intn(14) {
				case 0, 1, 2:
					k.UserTouchPages(UserDataBase+arch.EffectiveAddr(rng.Intn(256)*arch.PageSize), 4)
				case 3:
					k.UserRun(rng.Intn(4), 200)
				case 4:
					pages := 1 + rng.Intn(48)
					addr := k.SysMmap(pages)
					k.UserTouch(addr, pages*arch.PageSize/2)
					mappings = append(mappings, struct {
						addr  arch.EffectiveAddr
						pages int
					}{addr, pages})
				case 5:
					if len(mappings) > 0 {
						m := mappings[len(mappings)-1]
						mappings = mappings[:len(mappings)-1]
						k.SysMunmap(m.addr, m.pages)
					}
				case 6:
					if len(tasks) < 5 {
						child := k.Fork()
						tasks = append(tasks, child)
					}
				case 7:
					k.Switch(tasks[rng.Intn(len(tasks))])
					mappings = nil // mappings belong to another task now
				case 8:
					k.SysNull()
				case 9:
					k.RunIdleFor(5_000)
				case 10:
					// Heap churn: grow then shrink (the §7 range flush).
					k.SysBrk(1024 + rng.Intn(128))
				case 11:
					name := "f" + string(rune('a'+rng.Intn(8)))
					k.SysCreat(name, rng.Intn(3))
					if rng.Intn(2) == 0 {
						k.SysUnlink(name)
					}
				case 12:
					k.SysSignal(0, 100)
					k.SysKill(k.Current())
				case 13:
					cur := k.Current()
					if !cur.fbMapped {
						k.IoremapFB()
					}
					k.FBWrite(rng.Intn(1<<20), 2048)
				}
				if step%50 == 49 {
					if err := k.CheckConsistency(); err != nil {
						t.Fatalf("%s/%s step %d: %v", model.Name, cfgName, step, err)
					}
				}
			}
			if err := k.CheckConsistency(); err != nil {
				t.Fatalf("%s/%s final: %v", model.Name, cfgName, err)
			}
		}
	}
}

// TestConsistencyDetectsCorruption proves the checker is not vacuous:
// one case per invariant deliberately corrupts the matching piece of
// translation state (TLB, hash table, VSID map, frame accounting) and
// asserts the checker fires. Each corruption is undone afterwards so
// the bootTask end-of-test sweep re-proves the repair.
func TestConsistencyDetectsCorruption(t *testing.T) {
	dataVPN := func(task *Task) arch.VPN {
		return arch.VPNOf(task.Segs[int(UserDataBase>>28)], UserDataBase)
	}
	cases := []struct {
		name string
		// corrupt breaks one invariant and returns the repair.
		corrupt func(t *testing.T, k *Kernel, task *Task) (undo func())
	}{
		{
			// Invariant 1: a TLB entry pointing a live VSID's page at
			// the wrong frame.
			name: "tlb-wrong-frame",
			corrupt: func(t *testing.T, k *Kernel, task *Task) func() {
				vpn := dataVPN(task)
				k.M.MMU.TLB.Insert(vpn, 0x1234, false, false)
				return func() { k.M.MMU.TLB.InvalidateVPN(vpn) }
			},
		},
		{
			// Invariant 2: a live hash-table PTE rewritten to the wrong
			// frame.
			name: "htab-wrong-frame",
			corrupt: func(t *testing.T, k *Kernel, task *Task) func() {
				pte, _, _ := k.M.MMU.HTAB.Search(dataVPN(task), k.M)
				if pte == nil {
					t.Fatal("setup: data page has no hash-table PTE")
				}
				old := pte.RPN
				pte.RPN = old ^ 0x3ff
				return func() { pte.RPN = old }
			},
		},
		{
			// Invariant 3: two live tasks sharing a VSID.
			name: "vsid-aliasing",
			corrupt: func(t *testing.T, k *Kernel, task *Task) func() {
				other := k.Fork()
				old := other.Segs[0]
				other.Segs[0] = task.Segs[0]
				return func() { other.Segs[0] = old }
			},
		},
		{
			// Invariant 4: a live page tree mapping an unallocated frame.
			name: "frame-free-mapped",
			corrupt: func(t *testing.T, k *Kernel, task *Task) func() {
				free := arch.PFN(0)
				found := false
				for i := 0; i < k.M.Mem.Frames(); i++ {
					if !k.M.Mem.InUse(arch.PFN(i)) {
						free, found = arch.PFN(i), true
						break
					}
				}
				if !found {
					t.Fatal("setup: no free frame to forge a mapping to")
				}
				ea := UserDataBase + arch.EffectiveAddr(200*arch.PageSize)
				if _, present := task.PT.Lookup(ea); present {
					t.Fatalf("setup: %v unexpectedly mapped", ea)
				}
				if err := task.PT.Map(ea, free, false); err != nil {
					t.Fatalf("setup: forging mapping: %v", err)
				}
				return func() { task.PT.Unmap(ea) }
			},
		},
		{
			// Invariant 5 (users identity): an mm_users reference with
			// no task holding it — the signature of a missed mmput.
			name: "mm-users-leak",
			corrupt: func(t *testing.T, k *Kernel, task *Task) func() {
				task.mm.Users++
				return func() { task.mm.Users-- }
			},
		},
		{
			// Invariant 5 (count identity): a lost existence reference —
			// the signature of a double mmdrop, one step from a
			// use-after-free of the descriptor.
			name: "mm-count-borrow-lost",
			corrupt: func(t *testing.T, k *Kernel, task *Task) func() {
				task.mm.Count--
				return func() { task.mm.Count++ }
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k, task := bootTask(t, clock.PPC604At185(), Unoptimized())
			k.UserTouchPages(UserDataBase, 4)
			if err := k.CheckConsistency(); err != nil {
				t.Fatalf("clean state flagged: %v", err)
			}
			undo := tc.corrupt(t, k, task)
			if err := k.CheckConsistency(); err == nil {
				t.Fatal("corruption not detected")
			}
			undo()
			if err := k.CheckConsistency(); err != nil {
				t.Fatalf("undo left corruption behind: %v", err)
			}
		})
	}
}
