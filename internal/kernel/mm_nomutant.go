//go:build !mmumutant

package kernel

// mutantSkipUnusePut is off in normal builds; see mm_mutant.go.
const mutantSkipUnusePut = false
