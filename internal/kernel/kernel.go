package kernel

import (
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/machine"
	"mmutricks/internal/ppc"
	"mmutricks/internal/vsid"
)

// Kernel is the simulated operating system running on one Machine.
type Kernel struct {
	M   *machine.Machine
	cfg Config

	// textPA/dataPA are the physical bases of kernel text and static
	// data inside the kernel image (text first, data after).
	textPA arch.PhysAddr
	dataPA arch.PhysAddr

	// ctx allocates memory-management contexts. In lazy-flush mode the
	// zombie set drives both eviction classification and idle reclaim;
	// in eager mode contexts are still allocated (they name address
	// spaces) but retiring searches the hash table instead.
	ctx *vsid.ContextAllocator

	nextPID uint32
	tasks   map[uint32]*Task
	cur     *Task

	// mm bookkeeping (mm.go): initMM is the kernel's own address
	// space; activeMM is the space the segment registers name right
	// now (the current task's, or a lazy-TLB borrow when cur == nil);
	// kthreadMM is non-nil inside a UseMM span; mms indexes the live
	// descriptors by ID.
	initMM    *MM
	activeMM  *MM
	kthreadMM *MM
	mms       map[uint32]*MM
	nextMM    uint32

	pipes    map[int]*Pipe
	nextPipe int
	files    map[int]*File
	names    map[string]*File
	nextFile int
	images   map[string]*Image

	// sharedFrames holds copy-on-write reference counts (cow.go).
	sharedFrames map[arch.PFN]int

	// swapped tracks pages resident on the swap device (swap.go).
	swapped map[swapKey]swapSlot

	// idleScan is the idle task's position in its hash-table sweep.
	idleScan int

	// faultDepth guards against unbounded recursion when a reload
	// handler's own kernel-text fetches miss the TLB.
	faultDepth int

	// inMC marks that the machine-check handler is running, so the
	// accesses it performs do not themselves poll the fault injector or
	// try to deliver nested machine checks.
	inMC bool

	// kxlat holds the last-translation fastpath records (data, instr)
	// for accesses issued in pure kernel context (t == nil); per-task
	// records live on the Task.
	kxlat [2]xlatRec
}

// kernelTextBytes and kernelDataBytes size the kernel image regions.
// Together they must not exceed the image size phys.Memory reserves.
const (
	kernelTextBytes = 0x20000 // 128 KB of kernel text
	kernelDataBytes = 0x60000 // 384 KB of static kernel data
)

// New boots a kernel with the given configuration on a fresh machine.
func New(m *machine.Machine, cfg Config) *Kernel {
	if cfg.Scatter == 0 {
		cfg.Scatter = vsid.DefaultScatter
	}
	k := &Kernel{
		M:       m,
		cfg:     cfg,
		textPA:  0,
		dataPA:  kernelTextBytes,
		ctx:     vsid.NewContextAllocator(cfg.Scatter, 0),
		nextPID: 1,
		tasks:   make(map[uint32]*Task),
		pipes:   make(map[int]*Pipe),
		files:   make(map[int]*File),
		images:  make(map[string]*Image),
	}
	k.bootMM()
	k.boot()
	return k
}

// Config returns the kernel's configuration.
func (k *Kernel) Config() Config { return k.cfg }

// boot programs the MMU the way the configuration demands.
func (k *Kernel) boot() {
	mmu := k.M.MMU
	// Kernel segments (0xC..0xF) always carry the kernel's fixed
	// VSIDs (context 0); §7: "We reserved segments for the dynamically
	// mapped parts of the kernel ... and put a fixed VSID in these
	// segments."
	for seg := 12; seg < 16; seg++ {
		mmu.SetSegment(seg, vsid.For(0, seg, k.cfg.Scatter))
	}
	if k.cfg.KernelBAT {
		// One BAT pair maps all of kernel lowmem: the kernel image is
		// a single contiguous chunk of physical memory starting at 0,
		// and the hash table and page tables live in the same linear
		// region, so "mapping the hash table and page-tables is given
		// to us for free" (§5.1).
		ramLen := uint32(k.M.Mem.Frames() * arch.PageSize)
		e := ppc.BATEntry{Valid: true, Base: arch.KernelBase, Len: ramLen, Phys: 0}
		if err := mmu.IBAT.Set(0, e); err != nil {
			panic(fmt.Sprintf("kernel: IBAT: %v", err))
		}
		if err := mmu.DBAT.Set(0, e); err != nil {
			panic(fmt.Sprintf("kernel: DBAT: %v", err))
		}
	}
	// §8: the stock kernel lets table walks allocate in the cache; the
	// proposed fix marks the hash table cache-inhibited.
	mmu.HTAB.SetInhibited(!k.cfg.CachePageTables)
	k.bootIO()
}

// zombie classifies a VSID as belonging to a retired context. In eager
// mode nothing is ever a zombie: flushes physically invalidate.
func (k *Kernel) zombie(v arch.VSID) bool {
	if !k.cfg.LazyFlush {
		return false
	}
	return k.ctx.IsZombie(v)
}

// kvirt returns the kernel virtual address of a physical address (the
// linear mapping).
func kvirt(pa arch.PhysAddr) arch.EffectiveAddr {
	return arch.EffectiveAddr(uint32(KernelVirtBase) + uint32(pa))
}

// usesHTAB reports whether this kernel maintains the hash table: the
// 604's hardware demands it; on the 603 it is the UseHTAB policy (§6.2
// removes it).
func (k *Kernel) usesHTAB() bool {
	return k.cfg.UseHTAB || k.M.Model.Kind == clock.CPU604
}

// ptInhibited reports whether page-table-tree accesses should bypass
// the cache (§8's proposed fix applies to both the hash table and the
// Linux tree).
func (k *Kernel) ptInhibited() bool { return !k.cfg.CachePageTables }

// ---------------------------------------------------------------------
// The central memory-access path: translate, fault, retry, access.
// ---------------------------------------------------------------------

// access performs one memory access at an effective address on behalf
// of task t (nil for pure kernel context), servicing TLB/hash faults
// and page faults on the way. This is the simulated equivalent of one
// load/store (or one line's instruction fetch) issued by running code.
func (k *Kernel) access(t *Task, ea arch.EffectiveAddr, instr bool, class cache.Class, write bool) {
	if write && t != nil && !ea.IsKernel() {
		if len(t.cowPages) > 0 && t.isCOW(ea.PageNumber()) {
			k.cowBreak(t, ea)
		}
		if len(t.roPages) > 0 {
			if _, ro := t.roPages[ea.PageNumber()]; ro {
				k.protFault(t, ea)
			}
		}
	}
	pa, inhibited := k.translate(t, ea, instr)
	if instr {
		k.M.Fetch(pa, class, inhibited)
	} else {
		k.M.MemAccess(pa, class, inhibited, write)
	}
	if k.M.Inj != nil {
		k.faultTick(t)
	}
}

// translateSlow resolves ea through the full MMU walk, running the
// software fault paths until the translation succeeds, and refreshes
// the last-translation record for the fastpath in translate (run.go).
func (k *Kernel) translateSlow(t *Task, ea arch.EffectiveAddr, instr bool) (arch.PhysAddr, bool) {
	for tries := 0; ; tries++ {
		if tries > 8 {
			panic(fmt.Sprintf("kernel: access %v not making progress", ea))
		}
		r := k.M.MMU.Translate(ea, instr)
		if r.Fault == ppc.FaultNone {
			k.note(t, ea, instr, r.PA, r.Inhibited, r.ViaBAT)
			return r.PA, r.Inhibited
		}
		k.handleFault(t, ea, r, instr)
	}
}

// kexec simulates executing n kernel instructions at the given kernel
// text offset: one cycle per instruction plus instruction fetches, one
// per cache line, through translation (BAT, TLB, or the fault path).
func (k *Kernel) kexec(off uint32, n int) {
	k.M.Led.Charge(clock.Cycles(n))
	line := uint32(k.M.LineSize())
	instrPerLine := line / 4
	lines := (uint32(n) + instrPerLine - 1) / instrPerLine
	base := uint32(kvirt(k.textPA)) + off
	k.AccessRun(k.cur, Run{
		EA: arch.EffectiveAddr(base), Count: int(lines), Stride: int(line),
		Class: cache.ClassKernelText, Instr: true,
	})
}

// kdata performs read accesses covering nbytes of kernel static data at
// the given offset, one access per cache line; kdataW is the store
// variant (saving state dirties the lines).
func (k *Kernel) kdata(off uint32, nbytes int) { k.kdataRW(off, nbytes, false) }

func (k *Kernel) kdataW(off uint32, nbytes int) { k.kdataRW(off, nbytes, true) }

func (k *Kernel) kdataRW(off uint32, nbytes int, write bool) {
	line := k.M.LineSize()
	base := uint32(kvirt(k.dataPA)) + off
	k.AccessRun(k.cur, Run{
		EA: arch.EffectiveAddr(base), Count: (nbytes + line - 1) / line, Stride: line,
		Class: cache.ClassKernelData, Write: write,
	})
}

// kframe performs data accesses covering nbytes of an arbitrary
// physical frame through the kernel linear mapping (pipe buffers, page
// cache pages, page clearing).
func (k *Kernel) kframe(pfn arch.PFN, off, nbytes int, class cache.Class, write bool) {
	line := k.M.LineSize()
	base := uint32(kvirt(pfn.Addr())) + uint32(off)
	k.AccessRun(k.cur, Run{
		EA: arch.EffectiveAddr(base), Count: (nbytes + line - 1) / line, Stride: line,
		Class: class, Write: write,
	})
}

// utouch performs user-mode data accesses covering [ea, ea+nbytes), one
// per cache line, on behalf of the current task.
// utouch models a typical user read/write mix: roughly one store per
// four accesses.
func (k *Kernel) utouch(ea arch.EffectiveAddr, nbytes int) {
	line := k.M.LineSize()
	n := (nbytes + line - 1) / line
	for j := 0; j < n; {
		reads := 3
		if rem := n - j; rem < reads {
			reads = rem
		}
		k.AccessRun(k.cur, Run{
			EA: ea + arch.EffectiveAddr(j*line), Count: reads, Stride: line,
			Class: cache.ClassUser,
		})
		j += reads
		if j < n {
			k.AccessRun(k.cur, Run{
				EA: ea + arch.EffectiveAddr(j*line), Count: 1, Stride: line,
				Class: cache.ClassUser, Write: true,
			})
			j++
		}
	}
}
