package kernel

import "mmutricks/internal/arch"

// Kernel virtual-address layout. The kernel occupies the architected
// 0xC0000000.. region and maps physical memory linearly there, exactly
// as Linux does on 32-bit machines; kernel virtual address 0xC0000000+pa
// is physical address pa.
const (
	// KernelVirtBase is where physical 0 appears in kernel space.
	KernelVirtBase = arch.KernelBase
)

// Offsets of kernel routines within kernel text. Each code path lives
// at its own offset so distinct paths occupy distinct cache lines and
// TLB pages — the kernel's instruction footprint is simulated, not
// assumed. The fast assembly handlers sit in the low exception-vector
// pages; the C handlers and the rest of the kernel live higher, so the
// choice of handler changes which (and how many) lines and pages the
// hot paths touch.
const (
	textFastMiss  = 0x00000100 // hand-optimized miss handler (§6.1)
	textSyscall   = 0x00002000 // syscall entry/exit
	textCMissSave = 0x00004000 // original C-handler state save/restore
	textCMissBody = 0x00006000 // original C-handler body
	textPageFault = 0x00008000 // do_page_fault
	textSched     = 0x0000A000 // scheduler + switch_to
	textPipe      = 0x0000C000 // pipe read/write
	textMmap      = 0x0000E000 // mmap/munmap
	textProc      = 0x00010000 // fork/exec/exit/wait
	textIdle      = 0x00012000 // idle loop
	textFlush     = 0x00014000 // TLB/hash flush routines
	textGetFree   = 0x00016000 // get_free_page and friends
	textFileIO    = 0x00018000 // read() and the page cache
	textCopyInOut = 0x0001A000 // copy_to/from_user
	textMC        = 0x0001C000 // machine-check handler (classify/repair)
)

// Offsets of kernel data structures within kernel data (which starts
// after kernel text in the image; see dataBase in Kernel).
const (
	dataTaskStructs = 0x00000 // task structs, one per PID slot
	taskStructBytes = 0x400
	dataRunQueue    = 0x40000
	dataPipeTable   = 0x40400
	dataPageCache   = 0x40800
	dataVMAs        = 0x41000
	dataMMContext   = 0x42000
)

// User virtual-address layout for simulated processes.
const (
	// UserTextBase is where program text is mapped.
	UserTextBase arch.EffectiveAddr = 0x00400000
	// UserDataBase is the heap/static-data region.
	UserDataBase arch.EffectiveAddr = 0x10000000
	// UserMmapBase is where anonymous mmaps are placed.
	UserMmapBase arch.EffectiveAddr = 0x40000000
	// UserStackTop is the top of the stack region (grows down).
	UserStackTop arch.EffectiveAddr = 0x7FFF0000
)
