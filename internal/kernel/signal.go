package kernel

import (
	"fmt"

	"mmutricks/internal/arch"
)

// Signals, enough for LmBench's lat_sig: a process installs a handler;
// delivery builds a signal frame on the user stack, runs the handler in
// user mode, and returns through sigreturn. Delivery to the current
// task is synchronous; to another task it is queued and runs when that
// task is next switched in.
const (
	sigInstallInstr = 180 // sigaction
	sigDeliverInstr = 320 // frame setup + register copyout
	sigReturnInstr  = 220 // sigreturn: frame teardown
	sigFrameBytes   = 192 // the frame written to the user stack
)

// SysSignal installs a signal handler for the current task. The
// handler is hdlrPage of the task's text and runs hdlrInstr
// instructions per delivery.
func (k *Kernel) SysSignal(hdlrPage, hdlrInstr int) {
	t := k.cur
	defer k.syscallEntry()()
	k.kexec(textProc+0x1000, sigInstallInstr)
	t.sigHandlerPage = hdlrPage
	t.sigHandlerInstr = hdlrInstr
	t.sigInstalled = true
}

// SysKill sends a signal to target. Delivery to the current task runs
// the handler before SysKill returns (the lat_sig pattern); otherwise
// the signal is left pending and fires when the target next runs.
func (k *Kernel) SysKill(target *Task) {
	defer k.syscallEntry()()
	k.kexec(textProc+0x1400, 150)
	if !target.sigInstalled {
		panic(fmt.Sprintf("kernel: signal to task %d with no handler", target.PID))
	}
	if target == k.cur {
		k.deliverSignal(target)
		return
	}
	target.sigPending++
}

// deliverSignal runs one signal delivery: kernel frame setup, the user
// handler, and sigreturn.
func (k *Kernel) deliverSignal(t *Task) {
	k.M.Mon.Signals++
	k.kexec(textProc+0x1800, sigDeliverInstr)
	// The frame lands on the user stack.
	k.utouch(UserStackTop-arch.EffectiveAddr(sigFrameBytes), sigFrameBytes)
	// The handler runs in user mode.
	k.UserRun(t.sigHandlerPage, t.sigHandlerInstr)
	// sigreturn.
	k.M.Led.Charge(trapCycles)
	k.kexec(textProc+0x1C00, sigReturnInstr)
	k.kdata(dataTaskStructs+t.slotOff(), 64)
}

// drainSignals delivers pending signals when a task takes the CPU.
func (k *Kernel) drainSignals(t *Task) {
	for t.sigPending > 0 {
		t.sigPending--
		k.deliverSignal(t)
	}
}

// SignalsDelivered reports total deliveries (for tests and tools).
func (k *Kernel) SignalsDelivered() uint64 { return k.M.Mon.Signals }

// SysMprotect write-protects (or unprotects) pages. A store to a
// protected page takes a protection fault delivered as a SIGSEGV to
// the task's handler — LmBench's "prot fault" latency.
func (k *Kernel) SysMprotect(addr arch.EffectiveAddr, pages int, readOnly bool) {
	t := k.cur
	defer k.syscallEntry()()
	k.kexec(textMmap+0x1000, 220)
	for i := 0; i < pages; i++ {
		pn := (addr + arch.EffectiveAddr(i*arch.PageSize)).PageNumber()
		if readOnly {
			if t.roPages == nil {
				t.roPages = make(map[uint32]struct{})
			}
			t.roPages[pn] = struct{}{}
		} else {
			delete(t.roPages, pn)
		}
	}
	// Permission changes must invalidate cached translations (§7's
	// flush discipline applies to protection bits too).
	k.flushRange(t, addr.PageBase(), pages)
}

// protFault services a store to a write-protected page: trap, SIGSEGV
// to the handler (which must exist — there is no one else to kill).
func (k *Kernel) protFault(t *Task, ea arch.EffectiveAddr) {
	defer k.span(PathFault)()
	k.M.Led.Charge(arch.PageSize / arch.PageSize * 32) // trap entry
	k.kexecHandler(textPageFault+0x800, 260)
	if !t.sigInstalled {
		panic(fmt.Sprintf("kernel: unhandled protection fault: task %d at %v", t.PID, ea))
	}
	k.deliverSignal(t)
}
