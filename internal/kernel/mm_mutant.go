//go:build mmumutant

package kernel

// mutantSkipUnusePut — seeded refcount bug for the mmumodel mutation
// gate (CI builds this tag and requires `mmumodel -refine` to produce
// a counterexample): UnuseMM takes the lazy-TLB existence reference
// but never drops the kthread's user reference, leaking Users forever.
const mutantSkipUnusePut = true
