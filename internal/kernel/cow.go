package kernel

import (
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/mmtrace"
	"mmutricks/internal/pagetable"
)

// Copy-on-write fork (Config.COWFork). Fork maps the parent's private
// pages into the child read-only-shared with a reference count; the
// first store to a shared page takes a protection fault that copies it
// and remaps the writer. The real hardware raises the fault from the
// PP bits on the cached translation; here the kernel intercepts the
// store on its way into the access path, which charges the same fault
// cost at the same moment without plumbing protection bits through the
// hardware model (the substitution is recorded in DESIGN.md).

// cowFaultInstr is the protection-fault path: entry, vma lookup,
// decision. The copy and remap costs are charged by the real
// copy/map/flush primitives.
const cowFaultInstr = 350

// shareCOW moves a frame into the shared pool (or bumps its count).
func (k *Kernel) shareCOW(pfn arch.PFN) {
	if k.sharedFrames == nil {
		k.sharedFrames = make(map[arch.PFN]int)
	}
	if n, ok := k.sharedFrames[pfn]; ok {
		k.sharedFrames[pfn] = n + 1
		return
	}
	k.sharedFrames[pfn] = 2 // previous sole owner plus the new sharer
}

// releaseCOW drops one reference; the frame is freed when the last
// sharer lets go. Returns true if the frame was freed.
func (k *Kernel) releaseCOW(pfn arch.PFN) bool {
	n, ok := k.sharedFrames[pfn]
	if !ok {
		panic(fmt.Sprintf("kernel: releaseCOW of unshared frame %#x", uint32(pfn)))
	}
	if n > 1 {
		k.sharedFrames[pfn] = n - 1
		return false
	}
	delete(k.sharedFrames, pfn)
	k.M.Mem.FreeFrame(pfn)
	return true
}

// forkCOW wires the child's address space to share the parent's
// private pages copy-on-write.
func (k *Kernel) forkCOW(parent, child *Task) {
	for _, r := range parent.regions {
		if r.Kind == RegionText {
			continue
		}
		parent.PT.Range(r.Start, r.End(), func(ea arch.EffectiveAddr, e pagetable.Entry) bool {
			pn := ea.PageNumber()
			if parent.isCOW(pn) {
				// Already shared from an earlier fork: one more ref.
				k.sharedFrames[e.RPN]++
			} else {
				parent.disownFrame(e.RPN)
				k.shareCOW(e.RPN)
				parent.markCOW(pn)
			}
			child.markCOW(pn)
			k.mapPage(child, ea, e.RPN, e.Inhibited)
			// The parent's cached translations would permit stores on
			// real hardware until downgraded; flush them so both sides
			// reload read-only state (the flush cost is real, §7).
			k.flushPage(parent, ea)
			return true
		})
	}
}

// cowBreak services the protection fault a store to a shared page
// takes: copy the page for the writer (or reclaim exclusivity if the
// writer is the last sharer) and flush the stale translation.
func (k *Kernel) cowBreak(t *Task, ea arch.EffectiveAddr) {
	defer k.span(PathFault)()
	pn := ea.PageNumber()
	start := k.M.Led.Now()
	defer func() {
		k.M.Trc.Emit(mmtrace.KindMinorFault, t.Segs[ea.SegIndex()], ea, k.M.Led.Now()-start, 0)
	}()
	k.M.Led.Charge(clock.Cycles(k.M.Model.MissHandlerEntry))
	k.kexecHandler(textPageFault+0x400, cowFaultInstr)
	k.M.Mon.MinorFaults++

	e, ok := t.PT.Lookup(ea.PageBase())
	if !ok {
		panic(fmt.Sprintf("kernel: COW break on unmapped page %v", ea))
	}
	t.clearCOW(pn)
	if n := k.sharedFrames[e.RPN]; n <= 1 {
		// Last sharer: take the frame back exclusively.
		delete(k.sharedFrames, e.RPN)
		t.ownFrame(e.RPN)
		return
	}
	k.sharedFrames[e.RPN]--
	pfn := k.getFreePage()
	t.ownFrame(pfn)
	k.copyPage(e.RPN, pfn)
	k.mapPage(t, ea.PageBase(), pfn, e.Inhibited)
	k.flushPage(t, ea.PageBase())
}

// releaseTaskCOW drops the task's references on shared frames inside
// [start, end) — used by munmap and exit teardown.
func (k *Kernel) releaseTaskCOW(t *Task, start, end arch.EffectiveAddr) {
	if len(t.cowPages) == 0 {
		return
	}
	var pns []uint32
	t.PT.Range(start, end, func(ea arch.EffectiveAddr, e pagetable.Entry) bool {
		pn := ea.PageNumber()
		if t.isCOW(pn) {
			k.releaseCOW(e.RPN)
			pns = append(pns, pn)
		}
		return true
	})
	for _, pn := range pns {
		t.clearCOW(pn)
	}
}
