package kernel

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
)

func TestMprotectFaultsOnWrite(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	k.SysSignal(0, 100)
	addr := k.SysMmap(2)
	k.UserTouch(addr, 2*arch.PageSize)
	k.SysMprotect(addr, 2, true)

	before := k.M.Mon.Snapshot()
	k.UserRef(addr, false) // read: allowed, no fault
	if k.M.Mon.Delta(before).Signals != 0 {
		t.Fatal("read faulted on RO page")
	}
	k.UserRef(addr, true) // write: SIGSEGV to handler
	if k.M.Mon.Delta(before).Signals != 1 {
		t.Fatal("write did not fault")
	}
	// Unprotect: writes sail through.
	k.SysMprotect(addr, 2, false)
	before = k.M.Mon.Snapshot()
	k.UserRef(addr, true)
	if k.M.Mon.Delta(before).Signals != 0 {
		t.Fatal("write faulted after unprotect")
	}
}

func TestMprotectWithoutHandlerPanics(t *testing.T) {
	k, _ := bootTask(t, clock.PPC604At185(), Optimized())
	addr := k.SysMmap(1)
	k.UserTouch(addr, 64)
	k.SysMprotect(addr, 1, true)
	defer func() {
		if recover() == nil {
			t.Error("unhandled protection fault should panic")
		}
	}()
	k.UserRef(addr, true)
}
