// Package ablate measures how the paper's optimizations combine. §4
// reports that "many optimizations did not interact as we expected ...
// the end effect was not the sum off all the optimizations. Some
// optimizations even cancelled the effect of previous ones", and §5.1
// records the canonical example: the BAT mapping's wall-clock gains
// "evaporated when TLB miss handling was optimized."
//
// For each optimization the harness measures:
//
//   - solo gain: turning it on alone, against the unoptimized kernel;
//   - marginal gain: turning it off in the fully optimized kernel.
//
// An optimization whose solo gain is large but whose marginal gain is
// near zero has been subsumed by the others — the §5.1 evaporation.
// The sum of solo gains versus the combined gain quantifies the
// non-additivity the authors warn about.
package ablate

import (
	"fmt"
	"strings"

	"mmutricks/internal/clock"
	"mmutricks/internal/kernel"
)

// Knob is one toggleable optimization.
type Knob struct {
	// Name labels the knob in reports.
	Name string
	// Ref cites the paper section.
	Ref string
	// Enable turns the optimization on in a config; Disable turns it
	// off. They must be exact inverses over the configs used here.
	Enable  func(*kernel.Config)
	Disable func(*kernel.Config)
}

// Knobs returns the paper's optimizations in presentation order.
func Knobs() []Knob {
	return []Knob{
		{
			Name: "kernel BAT mapping", Ref: "§5.1",
			Enable:  func(c *kernel.Config) { c.KernelBAT = true },
			Disable: func(c *kernel.Config) { c.KernelBAT = false },
		},
		{
			Name: "fast reload handlers", Ref: "§6.1",
			Enable:  func(c *kernel.Config) { c.FastReload = true },
			Disable: func(c *kernel.Config) { c.FastReload = false },
		},
		{
			Name: "no hash table (603)", Ref: "§6.2",
			Enable:  func(c *kernel.Config) { c.UseHTAB = false },
			Disable: func(c *kernel.Config) { c.UseHTAB = true },
		},
		{
			Name: "lazy flush + cutoff", Ref: "§7",
			Enable:  func(c *kernel.Config) { c.LazyFlush = true; c.FlushRangeCutoff = 20 },
			Disable: func(c *kernel.Config) { c.LazyFlush = false; c.FlushRangeCutoff = 0 },
		},
		{
			Name: "idle zombie reclaim", Ref: "§7",
			Enable:  func(c *kernel.Config) { c.IdleReclaim = true },
			Disable: func(c *kernel.Config) { c.IdleReclaim = false },
		},
		{
			Name: "idle page clearing", Ref: "§9",
			Enable:  func(c *kernel.Config) { c.IdleClear = kernel.IdleClearUncachedList },
			Disable: func(c *kernel.Config) { c.IdleClear = kernel.IdleClearOff },
		},
	}
}

// Metric runs a workload under one configuration and returns its cost
// in simulated cycles (lower is better). It must be deterministic.
type Metric func(kernel.Config) clock.Cycles

// Row is one knob's measured contribution.
type Row struct {
	Knob Knob
	// SoloGain is the fractional improvement of enabling only this
	// knob on the unoptimized kernel.
	SoloGain float64
	// MarginalGain is the fractional improvement the knob still
	// provides inside the fully optimized kernel (optimized-without-it
	// versus optimized).
	MarginalGain float64
}

// Result is a full interaction analysis.
type Result struct {
	// BaselineCycles and OptimizedCycles anchor the gains.
	BaselineCycles, OptimizedCycles clock.Cycles
	// CombinedGain is the full stack's improvement over baseline.
	CombinedGain float64
	// SumOfSolos is what the combined gain "should" be if the
	// optimizations were independent.
	SumOfSolos float64
	Rows       []Row
}

// Each dispatches fn(0..n-1); callers inject a parallel implementation
// (the report harness passes its RowSet) while Run uses a sequential
// loop. Implementations must complete every fn before returning.
type Each func(n int, fn func(i int))

// Run performs the analysis sequentially: 2 + 2*len(knobs) measured
// runs.
func Run(metric Metric, knobs []Knob) Result {
	return RunWith(metric, knobs, func(n int, fn func(i int)) {
		for i := 0; i < n; i++ {
			fn(i)
		}
	})
}

// RunWith performs the analysis with the independent measured runs
// dispatched through each. The config list is built up front and
// results are gathered by index, so the Result is identical for any
// conforming Each.
func RunWith(metric Metric, knobs []Knob, each Each) Result {
	base := kernel.Unoptimized()
	opt := kernel.Optimized()
	// The flat run list: baseline, optimized, then each knob's solo and
	// optimized-without configurations.
	cfgs := make([]kernel.Config, 0, 2+2*len(knobs))
	cfgs = append(cfgs, base, opt)
	for _, k := range knobs {
		solo := base
		k.Enable(&solo)
		without := opt
		k.Disable(&without)
		cfgs = append(cfgs, solo, without)
	}
	cycles := make([]clock.Cycles, len(cfgs))
	each(len(cfgs), func(i int) { cycles[i] = metric(cfgs[i]) })

	baseC, optC := cycles[0], cycles[1]
	res := Result{
		BaselineCycles:  baseC,
		OptimizedCycles: optC,
		CombinedGain:    gain(baseC, optC),
	}
	for i, k := range knobs {
		r := Row{
			Knob:         k,
			SoloGain:     gain(baseC, cycles[2+2*i]),
			MarginalGain: gain(cycles[3+2*i], optC),
		}
		res.SumOfSolos += r.SoloGain
		res.Rows = append(res.Rows, r)
	}
	return res
}

// gain returns the fractional improvement from a to b (positive = b is
// faster).
func gain(a, b clock.Cycles) float64 {
	if a == 0 {
		return 0
	}
	return 1 - float64(b)/float64(a)
}

// String renders the analysis as an aligned table.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline %d cycles, optimized %d cycles: combined gain %.1f%%\n",
		r.BaselineCycles, r.OptimizedCycles, 100*r.CombinedGain)
	fmt.Fprintf(&b, "sum of solo gains %.1f%% (non-additivity: %+.1f points)\n\n",
		100*r.SumOfSolos, 100*(r.CombinedGain-r.SumOfSolos))
	fmt.Fprintf(&b, "%-22s %-6s %12s %14s\n", "optimization", "ref", "solo gain", "marginal gain")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %-6s %11.1f%% %13.1f%%\n",
			row.Knob.Name, row.Knob.Ref, 100*row.SoloGain, 100*row.MarginalGain)
	}
	return b.String()
}
