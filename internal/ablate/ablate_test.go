package ablate

import (
	"strings"
	"testing"

	"mmutricks/internal/clock"
	"mmutricks/internal/kbuild"
	"mmutricks/internal/kernel"
	"mmutricks/internal/machine"
)

// compileMetric is a small reload-heavy compile on the 603.
func compileMetric(cfg kernel.Config) clock.Cycles {
	bcfg := kbuild.Default()
	bcfg.Units = 3
	bcfg.WorkPages = 320
	bcfg.Passes = 1
	bcfg.StrayRefs = 6
	k := kernel.New(machine.New(clock.PPC603At180()), cfg)
	r := kbuild.Run(k, bcfg)
	return r.Cycles - r.IdleCycles
}

func TestKnobsAreInverses(t *testing.T) {
	for _, k := range Knobs() {
		// Enabling then disabling from the unoptimized config must
		// restore it; same from optimized.
		u := kernel.Unoptimized()
		k.Enable(&u)
		k.Disable(&u)
		if u != kernel.Unoptimized() {
			t.Errorf("%s: enable+disable does not restore unoptimized", k.Name)
		}
		o := kernel.Optimized()
		k.Disable(&o)
		k.Enable(&o)
		if o != kernel.Optimized() {
			t.Errorf("%s: disable+enable does not restore optimized", k.Name)
		}
	}
}

func TestOptimizedEnablesEveryKnob(t *testing.T) {
	// Enabling any knob in the optimized config must be a no-op —
	// otherwise Run's "marginal" measurements are comparing against
	// the wrong stack.
	for _, k := range Knobs() {
		o := kernel.Optimized()
		k.Enable(&o)
		if o != kernel.Optimized() {
			t.Errorf("%s: not already enabled in Optimized()", k.Name)
		}
	}
}

func TestRunAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("14 kbuild runs")
	}
	res := Run(compileMetric, Knobs())
	if res.CombinedGain <= 0 {
		t.Fatalf("optimized kernel not faster: gain %.3f", res.CombinedGain)
	}
	if len(res.Rows) != len(Knobs()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The §5.1 evaporation: the BAT mapping's marginal gain inside the
	// full stack must be well below its solo gain... unless both are
	// tiny, which also reproduces "the improvements evaporated".
	bat := res.Rows[0]
	if bat.Knob.Name != "kernel BAT mapping" {
		t.Fatal("row order changed")
	}
	if bat.SoloGain > 0.02 && bat.MarginalGain > bat.SoloGain {
		t.Errorf("BAT marginal gain (%.3f) should not exceed its solo gain (%.3f)",
			bat.MarginalGain, bat.SoloGain)
	}
	// Non-additivity: combined differs from the sum of solos (the §4
	// observation). Demand at least a one-point discrepancy.
	if diff := res.CombinedGain - res.SumOfSolos; diff > -0.01 && diff < 0.01 {
		t.Logf("note: optimizations composed almost additively (diff %.4f)", diff)
	}
	out := res.String()
	for _, want := range []string{"solo gain", "marginal gain", "non-additivity", "§6.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestGainArithmetic(t *testing.T) {
	almost := func(a, b float64) bool { d := a - b; return d > -1e-9 && d < 1e-9 }
	if g := gain(100, 80); !almost(g, 0.2) {
		t.Errorf("gain(100,80) = %v", g)
	}
	if g := gain(100, 120); !almost(g, -0.2) {
		t.Errorf("gain(100,120) = %v", g)
	}
	if g := gain(0, 50); g != 0 {
		t.Errorf("gain(0,50) = %v", g)
	}
}
