package pagetable

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/phys"
)

// The page-table tree sits on the simulator's hottest path (every
// simulated TLB-miss reload walks it), so its read operations must not
// allocate.

func allocTable(t *testing.T) *Table {
	t.Helper()
	mem := phys.NewDefault()
	pt, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		ea := arch.EffectiveAddr(0x1000_0000 + i*arch.PageSize)
		if err := pt.Map(ea, arch.PFN(i+3), false); err != nil {
			t.Fatal(err)
		}
	}
	return pt
}

func TestLookupZeroAllocs(t *testing.T) {
	pt := allocTable(t)
	ea := arch.EffectiveAddr(0x1000_0000 + 17*arch.PageSize)
	if n := testing.AllocsPerRun(100, func() {
		if _, ok := pt.Lookup(ea); !ok {
			t.Fatal("lookup missed a mapped page")
		}
	}); n != 0 {
		t.Fatalf("Lookup allocates %.1f times per op, want 0", n)
	}
}

func TestWalkZeroAllocs(t *testing.T) {
	pt := allocTable(t)
	ea := arch.EffectiveAddr(0x1000_0000 + 40*arch.PageSize)
	if n := testing.AllocsPerRun(100, func() {
		if _, _, _, ok := pt.Walk(ea); !ok {
			t.Fatal("walk missed a mapped page")
		}
	}); n != 0 {
		t.Fatalf("Walk allocates %.1f times per op, want 0", n)
	}
}
