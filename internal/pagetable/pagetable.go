// Package pagetable implements the Linux-style two-level page-table
// tree (an x86-shaped PGD → PTE-page structure) that Linux/PPC keeps as
// the canonical source of translations. The PowerPC hash table is, as
// the paper stresses, only a cache of this tree; the fast TLB-reload
// path of §6.1 walks this tree directly "taking three loads in the
// worst case".
//
// The tree's pages live in simulated physical memory, and WalkAddrs
// exposes the physical addresses a walk touches so the kernel's reload
// handlers can charge those loads through the cache model.
package pagetable

import (
	"fmt"
	"sort"

	"mmutricks/internal/arch"
	"mmutricks/internal/phys"
)

// Geometry of the two-level tree on a 32-bit machine: the top ten bits
// of the effective address index the PGD, the next ten index a PTE
// page, each entry is four bytes.
const (
	// DirShift is the shift selecting the PGD index.
	DirShift = 22
	// EntriesPerPage is the entry count in the PGD and each PTE page.
	EntriesPerPage = 1024
	// EntryBytes is the size of one software PTE.
	EntryBytes = 4
)

// Entry is one software PTE in the tree.
type Entry struct {
	// Present marks the translation valid.
	Present bool
	// RPN is the physical frame.
	RPN arch.PFN
	// Inhibited marks the page cache-inhibited.
	Inhibited bool
}

// Table is one process's page-table tree.
type Table struct {
	mem      *phys.Memory
	pgdFrame arch.PFN
	// pteFrames maps PGD index -> frame holding that PTE page.
	pteFrames map[int]arch.PFN
	// live maps PGD index -> count of present entries in that page,
	// so empty PTE pages can be freed.
	live map[int]int
	// entries holds the actual translations, keyed by effective page
	// number. (The frames above give the walk its addresses; the map
	// gives it its content.)
	entries   map[uint32]Entry
	destroyed bool
}

// New allocates a tree (one PGD page) from physical memory.
func New(mem *phys.Memory) (*Table, error) {
	pgd, ok := mem.AllocFrame()
	if !ok {
		return nil, fmt.Errorf("pagetable: out of memory allocating PGD")
	}
	return &Table{
		mem:       mem,
		pgdFrame:  pgd,
		pteFrames: make(map[int]arch.PFN),
		live:      make(map[int]int),
		entries:   make(map[uint32]Entry),
	}, nil
}

func dirIndex(ea arch.EffectiveAddr) int { return int(ea >> DirShift) }

func pteIndex(ea arch.EffectiveAddr) int {
	return int(ea>>arch.PageShift) & (EntriesPerPage - 1)
}

// Map installs a translation for the page containing ea. It allocates
// a PTE page on first use of a 4 MB region.
func (t *Table) Map(ea arch.EffectiveAddr, rpn arch.PFN, inhibited bool) error {
	if t.destroyed {
		panic("pagetable: use after Destroy")
	}
	di := dirIndex(ea)
	if _, ok := t.pteFrames[di]; !ok {
		f, ok := t.mem.AllocFrame()
		if !ok {
			return fmt.Errorf("pagetable: out of memory allocating PTE page")
		}
		t.pteFrames[di] = f
	}
	key := ea.PageNumber()
	if _, present := t.entries[key]; !present {
		t.live[di]++
	}
	t.entries[key] = Entry{Present: true, RPN: rpn, Inhibited: inhibited}
	return nil
}

// Lookup finds the translation for the page containing ea.
func (t *Table) Lookup(ea arch.EffectiveAddr) (Entry, bool) {
	e, ok := t.entries[ea.PageNumber()]
	return e, ok
}

// Unmap removes the translation, returning the entry it held. Empty
// PTE pages are returned to the allocator.
func (t *Table) Unmap(ea arch.EffectiveAddr) (Entry, bool) {
	key := ea.PageNumber()
	e, ok := t.entries[key]
	if !ok {
		return Entry{}, false
	}
	delete(t.entries, key)
	di := dirIndex(ea)
	t.live[di]--
	if t.live[di] == 0 {
		delete(t.live, di)
		if f, ok := t.pteFrames[di]; ok {
			t.mem.FreeFrame(f)
			delete(t.pteFrames, di)
		}
	}
	return e, true
}

// WalkAddrs returns the physical addresses a hardware-free walk of the
// tree touches for ea: the PGD entry and the PTE entry. ok is false if
// no PTE page covers ea (the walk stops after one load).
func (t *Table) WalkAddrs(ea arch.EffectiveAddr) (pgdAddr, pteAddr arch.PhysAddr, ok bool) {
	di := dirIndex(ea)
	pgdAddr = t.pgdFrame.Addr() + arch.PhysAddr(di*EntryBytes)
	f, present := t.pteFrames[di]
	if !present {
		return pgdAddr, 0, false
	}
	pteAddr = f.Addr() + arch.PhysAddr(pteIndex(ea)*EntryBytes)
	return pgdAddr, pteAddr, true
}

// Count returns the number of present translations.
func (t *Table) Count() int { return len(t.entries) }

// PTEPages returns how many PTE pages are allocated.
func (t *Table) PTEPages() int { return len(t.pteFrames) }

// Range calls fn for every present translation with page number inside
// [start, end) (end exclusive, page-aligned addresses). fn returning
// false stops the walk early.
func (t *Table) Range(start, end arch.EffectiveAddr, fn func(ea arch.EffectiveAddr, e Entry) bool) {
	// Iterate by page to stay deterministic (map order is random).
	for pn := start.PageNumber(); pn < end.PageNumber(); pn++ {
		if e, ok := t.entries[pn]; ok {
			if !fn(arch.EffectiveAddr(pn)<<arch.PageShift, e) {
				return
			}
		}
	}
}

// CountRange returns how many pages are mapped in [start, end).
func (t *Table) CountRange(start, end arch.EffectiveAddr) int {
	n := 0
	t.Range(start, end, func(arch.EffectiveAddr, Entry) bool { n++; return true })
	return n
}

// Destroy frees every frame the tree owns (PGD and PTE pages). The
// mapped data frames are the caller's to free; Destroy only tears down
// the tree itself.
func (t *Table) Destroy() {
	if t.destroyed {
		return
	}
	t.destroyed = true
	// Free in sorted directory order for deterministic allocator state.
	dis := make([]int, 0, len(t.pteFrames))
	for di := range t.pteFrames {
		dis = append(dis, di)
	}
	sort.Ints(dis)
	for _, di := range dis {
		t.mem.FreeFrame(t.pteFrames[di])
		delete(t.pteFrames, di)
	}
	t.mem.FreeFrame(t.pgdFrame)
	t.entries = nil
	t.live = nil
}
