// Package pagetable implements the Linux-style two-level page-table
// tree (an x86-shaped PGD → PTE-page structure) that Linux/PPC keeps as
// the canonical source of translations. The PowerPC hash table is, as
// the paper stresses, only a cache of this tree; the fast TLB-reload
// path of §6.1 walks this tree directly "taking three loads in the
// worst case".
//
// The in-simulator representation mirrors the structure it models: a
// dense 1024-entry PGD array of lazily-allocated PTE pages, each a
// dense 1024-entry array of software PTEs. Lookup, insert and remove
// are two array indexings — no hashing, no map, and zero allocation on
// the lookup path, which is the simulator's single hottest path (every
// simulated TLB-miss reload walks this tree). The §6 lesson applied to
// the simulator itself.
//
// The tree's pages live in simulated physical memory, and WalkAddrs
// exposes the physical addresses a walk touches so the kernel's reload
// handlers can charge those loads through the cache model.
package pagetable

import (
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/phys"
)

// Geometry of the two-level tree on a 32-bit machine: the top ten bits
// of the effective address index the PGD, the next ten index a PTE
// page, each entry is four bytes.
const (
	// DirShift is the shift selecting the PGD index.
	DirShift = 22
	// EntriesPerPage is the entry count in the PGD and each PTE page.
	EntriesPerPage = 1024
	// EntryBytes is the size of one software PTE.
	EntryBytes = 4
)

// Entry is one software PTE in the tree.
type Entry struct {
	// Present marks the translation valid.
	Present bool
	// RPN is the physical frame.
	RPN arch.PFN
	// Inhibited marks the page cache-inhibited.
	Inhibited bool
}

// ptePage is one lazily-allocated PTE page: the frame backing it in
// simulated physical memory, a live-entry count so empty pages can be
// freed, and the 1024 software PTEs themselves.
type ptePage struct {
	frame   arch.PFN
	live    int
	entries [EntriesPerPage]Entry
}

// Table is one process's page-table tree.
type Table struct {
	mem      *phys.Memory
	pgdFrame arch.PFN
	// pages is the dense PGD: pages[dirIndex] is the PTE page covering
	// that 4 MB region, nil until first Map.
	pages [EntriesPerPage]*ptePage
	// count is the number of present translations; ptePages the number
	// of allocated PTE pages.
	count     int
	ptePages  int
	destroyed bool
}

// New allocates a tree (one PGD page) from physical memory.
func New(mem *phys.Memory) (*Table, error) {
	pgd, ok := mem.AllocFrame()
	if !ok {
		return nil, fmt.Errorf("pagetable: out of memory allocating PGD")
	}
	return &Table{mem: mem, pgdFrame: pgd}, nil
}

//mmutricks:noalloc
func dirIndex(ea arch.EffectiveAddr) int { return int(ea >> DirShift) }

//mmutricks:noalloc
func pteIndex(ea arch.EffectiveAddr) int {
	return int(ea>>arch.PageShift) & (EntriesPerPage - 1)
}

// Map installs a translation for the page containing ea. It allocates
// a PTE page on first use of a 4 MB region.
func (t *Table) Map(ea arch.EffectiveAddr, rpn arch.PFN, inhibited bool) error {
	if t.destroyed {
		panic("pagetable: use after Destroy")
	}
	di := dirIndex(ea)
	p := t.pages[di]
	if p == nil {
		f, ok := t.mem.AllocFrame()
		if !ok {
			return fmt.Errorf("pagetable: out of memory allocating PTE page")
		}
		p = &ptePage{frame: f}
		t.pages[di] = p
		t.ptePages++
	}
	pi := pteIndex(ea)
	if !p.entries[pi].Present {
		p.live++
		t.count++
	}
	p.entries[pi] = Entry{Present: true, RPN: rpn, Inhibited: inhibited}
	return nil
}

// Lookup finds the translation for the page containing ea. It is two
// array indexings and performs no allocation.
//
//mmutricks:noalloc
func (t *Table) Lookup(ea arch.EffectiveAddr) (Entry, bool) {
	p := t.pages[dirIndex(ea)]
	if p == nil {
		return Entry{}, false
	}
	e := p.entries[pteIndex(ea)]
	return e, e.Present
}

// Unmap removes the translation, returning the entry it held. Empty
// PTE pages are returned to the allocator.
func (t *Table) Unmap(ea arch.EffectiveAddr) (Entry, bool) {
	di := dirIndex(ea)
	p := t.pages[di]
	if p == nil {
		return Entry{}, false
	}
	pi := pteIndex(ea)
	e := p.entries[pi]
	if !e.Present {
		return Entry{}, false
	}
	p.entries[pi] = Entry{}
	p.live--
	t.count--
	if p.live == 0 {
		t.mem.FreeFrame(p.frame)
		t.pages[di] = nil
		t.ptePages--
	}
	return e, true
}

// WalkAddrs returns the physical addresses a hardware-free walk of the
// tree touches for ea: the PGD entry and the PTE entry. ok is false if
// no PTE page covers ea (the walk stops after one load).
//
//mmutricks:noalloc
func (t *Table) WalkAddrs(ea arch.EffectiveAddr) (pgdAddr, pteAddr arch.PhysAddr, ok bool) {
	di := dirIndex(ea)
	pgdAddr = t.pgdFrame.Addr() + arch.PhysAddr(di*EntryBytes)
	p := t.pages[di]
	if p == nil {
		return pgdAddr, 0, false
	}
	pteAddr = p.frame.Addr() + arch.PhysAddr(pteIndex(ea)*EntryBytes)
	return pgdAddr, pteAddr, true
}

// Walk performs one descent for ea, returning both the entry and the
// physical addresses the walk touches — WalkAddrs and Lookup fused so
// the reload handlers pay a single descent. pteAddr is zero when no
// PTE page covers ea; ok reports a present translation.
//
//mmutricks:noalloc
func (t *Table) Walk(ea arch.EffectiveAddr) (e Entry, pgdAddr, pteAddr arch.PhysAddr, ok bool) {
	di := dirIndex(ea)
	pgdAddr = t.pgdFrame.Addr() + arch.PhysAddr(di*EntryBytes)
	p := t.pages[di]
	if p == nil {
		return Entry{}, pgdAddr, 0, false
	}
	pi := pteIndex(ea)
	e = p.entries[pi]
	pteAddr = p.frame.Addr() + arch.PhysAddr(pi*EntryBytes)
	return e, pgdAddr, pteAddr, e.Present
}

// PickPresent returns the address of an arbitrary (seeded) present
// translation below limit — the fault injector's victim selection for
// page-table ECC faults. The scan starts at a PRNG-chosen directory
// slot and wraps, so victims spread over the tree deterministically.
func (t *Table) PickPresent(rnd uint64, limit arch.EffectiveAddr) (arch.EffectiveAddr, bool) {
	start := int(rnd % EntriesPerPage)
	for i := 0; i < EntriesPerPage; i++ {
		di := (start + i) % EntriesPerPage
		if arch.EffectiveAddr(di)<<DirShift >= limit {
			continue
		}
		p := t.pages[di]
		if p == nil {
			continue
		}
		for pi := range p.entries {
			if !p.entries[pi].Present {
				continue
			}
			ea := arch.EffectiveAddr(di)<<DirShift | arch.EffectiveAddr(pi)<<arch.PageShift
			if ea < limit {
				return ea, true
			}
		}
	}
	return 0, false
}

// CorruptRPN XORs flip into the frame number of the present entry for
// ea — an ECC fault in page-table memory, applied to the canonical
// tree itself (which is why the kernel cannot repair it and must
// escalate). It returns the physical address of the poisoned PTE for
// the machine-check report.
func (t *Table) CorruptRPN(ea arch.EffectiveAddr, flip arch.PFN) (pteAddr arch.PhysAddr, ok bool) {
	p := t.pages[dirIndex(ea)]
	if p == nil {
		return 0, false
	}
	pi := pteIndex(ea)
	if !p.entries[pi].Present {
		return 0, false
	}
	p.entries[pi].RPN ^= flip
	return p.frame.Addr() + arch.PhysAddr(pi*EntryBytes), true
}

// Count returns the number of present translations.
func (t *Table) Count() int { return t.count }

// PTEPages returns how many PTE pages are allocated.
func (t *Table) PTEPages() int { return t.ptePages }

// Range calls fn for every present translation with page number inside
// [start, end) (end exclusive, page-aligned addresses). fn returning
// false stops the walk early. The walk is in ascending page order and
// skips unallocated 4 MB regions wholesale.
func (t *Table) Range(start, end arch.EffectiveAddr, fn func(ea arch.EffectiveAddr, e Entry) bool) {
	const dirPages = EntriesPerPage // page numbers per PGD entry
	endPN := end.PageNumber()
	for pn := start.PageNumber(); pn < endPN; {
		p := t.pages[pn>>(DirShift-arch.PageShift)]
		limit := (pn | (dirPages - 1)) + 1 // first page number of the next region
		if limit > endPN {
			limit = endPN
		}
		if p == nil {
			pn = limit
			continue
		}
		for ; pn < limit; pn++ {
			e := p.entries[pn&(dirPages-1)]
			if e.Present {
				if !fn(arch.EffectiveAddr(pn)<<arch.PageShift, e) {
					return
				}
			}
		}
	}
}

// CountRange returns how many pages are mapped in [start, end).
func (t *Table) CountRange(start, end arch.EffectiveAddr) int {
	n := 0
	t.Range(start, end, func(arch.EffectiveAddr, Entry) bool { n++; return true })
	return n
}

// Destroy frees every frame the tree owns (PGD and PTE pages). The
// mapped data frames are the caller's to free; Destroy only tears down
// the tree itself. Frames are freed in directory order, which the dense
// PGD yields naturally, keeping allocator state deterministic.
func (t *Table) Destroy() {
	if t.destroyed {
		return
	}
	t.destroyed = true
	for di := range t.pages {
		if p := t.pages[di]; p != nil {
			t.mem.FreeFrame(p.frame)
			t.pages[di] = nil
		}
	}
	t.ptePages = 0
	t.count = 0
	t.mem.FreeFrame(t.pgdFrame)
}
