package pagetable

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/phys"
)

// FuzzMapUnmap drives map/unmap/lookup sequences and checks that the
// tree's bookkeeping (entry counts, PTE-page lifecycle, frame returns)
// stays exact.
func FuzzMapUnmap(f *testing.F) {
	f.Add([]byte{1, 0, 0, 2, 0, 0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		mem := phys.New(1<<22, 4*arch.PageSize) // 4 MB arena
		free0 := mem.FreeFrames()
		tab, err := New(mem)
		if err != nil {
			t.Skip("oom")
		}
		live := map[uint32]bool{}
		for i := 0; i+2 < len(ops); i += 3 {
			pn := uint32(ops[i+1])<<8 | uint32(ops[i+2])
			ea := arch.EffectiveAddr(pn) << arch.PageShift
			switch ops[i] % 3 {
			case 0:
				if err := tab.Map(ea, arch.PFN(pn%256), false); err == nil {
					live[pn] = true
				}
			case 1:
				_, ok := tab.Unmap(ea)
				if ok != live[pn] {
					t.Fatalf("unmap(%v) = %v, tracker says %v", ea, ok, live[pn])
				}
				delete(live, pn)
			case 2:
				_, ok := tab.Lookup(ea)
				if ok != live[pn] {
					t.Fatalf("lookup(%v) = %v, tracker says %v", ea, ok, live[pn])
				}
			}
		}
		if tab.Count() != len(live) {
			t.Fatalf("Count() = %d, tracker has %d", tab.Count(), len(live))
		}
		tab.Destroy()
		if mem.FreeFrames() != free0 {
			t.Fatalf("frame leak: %d vs %d", mem.FreeFrames(), free0)
		}
	})
}
