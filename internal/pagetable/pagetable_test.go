package pagetable

import (
	"testing"
	"testing/quick"

	"mmutricks/internal/arch"
	"mmutricks/internal/phys"
)

func newTable(t *testing.T) (*Table, *phys.Memory) {
	t.Helper()
	mem := phys.NewDefault()
	tab, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	return tab, mem
}

func TestMapLookupUnmap(t *testing.T) {
	tab, _ := newTable(t)
	if err := tab.Map(0x00401234, 0x55, false); err != nil {
		t.Fatal(err)
	}
	e, ok := tab.Lookup(0x00401FFF) // same page
	if !ok || e.RPN != 0x55 || !e.Present {
		t.Fatalf("lookup: %+v ok=%v", e, ok)
	}
	if _, ok := tab.Lookup(0x00402000); ok {
		t.Fatal("next page should be unmapped")
	}
	old, ok := tab.Unmap(0x00401000)
	if !ok || old.RPN != 0x55 {
		t.Fatal("unmap did not return the entry")
	}
	if _, ok := tab.Lookup(0x00401234); ok {
		t.Fatal("entry survives unmap")
	}
	if _, ok := tab.Unmap(0x00401000); ok {
		t.Fatal("double unmap reported success")
	}
}

func TestRemapUpdatesInPlace(t *testing.T) {
	tab, _ := newTable(t)
	_ = tab.Map(0x1000, 1, false)
	_ = tab.Map(0x1000, 2, true)
	e, _ := tab.Lookup(0x1000)
	if e.RPN != 2 || !e.Inhibited {
		t.Fatalf("remap: %+v", e)
	}
	if tab.Count() != 1 {
		t.Fatalf("Count = %d", tab.Count())
	}
}

func TestPTEPageAllocationAndRelease(t *testing.T) {
	tab, mem := newTable(t)
	before := mem.FreeFrames()
	// Two pages in the same 4 MB region: one PTE page.
	_ = tab.Map(0x00400000, 1, false)
	_ = tab.Map(0x00401000, 2, false)
	if tab.PTEPages() != 1 {
		t.Fatalf("PTEPages = %d", tab.PTEPages())
	}
	if mem.FreeFrames() != before-1 {
		t.Fatal("should have allocated exactly one PTE page")
	}
	// A page in a different region: second PTE page.
	_ = tab.Map(0x04000000, 3, false)
	if tab.PTEPages() != 2 {
		t.Fatalf("PTEPages = %d", tab.PTEPages())
	}
	// Unmapping everything in a region frees its PTE page.
	tab.Unmap(0x00400000)
	tab.Unmap(0x00401000)
	if tab.PTEPages() != 1 {
		t.Fatal("empty PTE page not freed")
	}
}

func TestWalkAddrs(t *testing.T) {
	tab, _ := newTable(t)
	pgd1, _, ok := tab.WalkAddrs(0x00400000)
	if ok {
		t.Fatal("walk of unmapped region should stop at the PGD")
	}
	_ = tab.Map(0x00400000, 1, false)
	pgd2, pte, ok := tab.WalkAddrs(0x00400000)
	if !ok {
		t.Fatal("walk of mapped region failed")
	}
	if pgd1 != pgd2 {
		t.Fatal("PGD entry address must not depend on mapping state")
	}
	// Adjacent pages in the same region share a PTE page; their PTE
	// addresses differ by EntryBytes.
	_ = tab.Map(0x00401000, 2, false)
	_, pte2, _ := tab.WalkAddrs(0x00401000)
	if pte2-pte != EntryBytes {
		t.Fatalf("PTE stride = %d", pte2-pte)
	}
	// Different regions have different PGD entry addresses.
	_ = tab.Map(0x04000000, 3, false)
	pgd3, _, _ := tab.WalkAddrs(0x04000000)
	if pgd3 == pgd2 {
		t.Fatal("distinct regions share a PGD entry address")
	}
}

func TestRangeAndCountRange(t *testing.T) {
	tab, _ := newTable(t)
	for i := 0; i < 10; i++ {
		_ = tab.Map(arch.EffectiveAddr(0x100000+i*arch.PageSize), arch.PFN(i), false)
	}
	if got := tab.CountRange(0x100000, 0x100000+10*arch.PageSize); got != 10 {
		t.Fatalf("CountRange = %d", got)
	}
	if got := tab.CountRange(0x100000, 0x100000+5*arch.PageSize); got != 5 {
		t.Fatalf("half CountRange = %d", got)
	}
	// Range is ordered and supports early stop.
	var seen []arch.EffectiveAddr
	tab.Range(0, 0xC0000000, func(ea arch.EffectiveAddr, e Entry) bool {
		seen = append(seen, ea)
		return len(seen) < 3
	})
	if len(seen) != 3 || seen[0] != 0x100000 || seen[1] != 0x101000 {
		t.Fatalf("Range order: %v", seen)
	}
}

func TestDestroyReleasesFrames(t *testing.T) {
	mem := phys.NewDefault()
	before := mem.FreeFrames()
	tab, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	_ = tab.Map(0x00400000, 1, false)
	_ = tab.Map(0x04000000, 2, false)
	tab.Destroy()
	if mem.FreeFrames() != before {
		t.Fatalf("leak: %d frames free, want %d", mem.FreeFrames(), before)
	}
	tab.Destroy() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("Map after Destroy should panic")
		}
	}()
	_ = tab.Map(0x1000, 1, false)
}

func TestOOMHandling(t *testing.T) {
	mem := phys.New(64*arch.PageSize, 4*arch.PageSize)
	tab, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust memory.
	for {
		if _, ok := mem.AllocFrame(); !ok {
			break
		}
	}
	if err := tab.Map(0x00400000, 1, false); err == nil {
		t.Fatal("Map should fail when no PTE page can be allocated")
	}
	if _, err := New(mem); err == nil {
		t.Fatal("New should fail with no memory")
	}
}

func TestMapLookupProperty(t *testing.T) {
	tab, _ := newTable(t)
	f := func(ea arch.EffectiveAddr, rpn arch.PFN) bool {
		ea &= 0x7FFFFFFF // keep user range, below kernel
		rpn &= 0xFFFFF
		if err := tab.Map(ea, rpn, false); err != nil {
			return true // OOM is acceptable
		}
		e, ok := tab.Lookup(ea)
		return ok && e.RPN == rpn && e.Present
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCountTracksMappings(t *testing.T) {
	tab, _ := newTable(t)
	f := func(pages []uint16) bool {
		fresh := 0
		seen := map[uint16]bool{}
		for _, p := range pages {
			if !seen[p] {
				fresh++
				seen[p] = true
			}
			if err := tab.Map(arch.EffectiveAddr(p)<<arch.PageShift, 1, false); err != nil {
				return true
			}
		}
		for p := range seen {
			tab.Unmap(arch.EffectiveAddr(p) << arch.PageShift)
		}
		return tab.Count() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
