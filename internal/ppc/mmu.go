package ppc

import (
	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/faultinject"
	"mmutricks/internal/hwmon"
	"mmutricks/internal/mmtrace"
	"mmutricks/internal/telemetry"
)

// MMU ties the translation resources together for one CPU. It performs
// everything the hardware performs — BAT compare, segment lookup, TLB
// lookup, and (on the 604) the hardware hash-table search — and raises
// a Fault when software must take over.
type MMU struct {
	Model clock.CPUModel
	// IBAT and DBAT are the instruction and data BAT arrays.
	IBAT, DBAT BATArray
	// TLB is the data-side lookaside buffer; with a unified model (the
	// default — the paper reasons in total entry counts) ITLB is the
	// same object. With CPUModel.SplitTLB the two are separate halves,
	// as on the real 603.
	TLB *TLB
	// ITLB is the instruction-side buffer (== TLB when unified).
	ITLB *TLB
	// HTAB is the hashed page table in memory.
	HTAB *HTAB

	led *clock.Ledger
	bus Bus
	mon *hwmon.Counters
	trc *mmtrace.Tracer
	// ph is the phase ledger the 604's hardware walk attributes its
	// cycles to (nil = no attribution; the machine always sets one).
	ph *telemetry.Phases
	// inj is the attached fault injector; nil (the default) keeps the
	// injection points to a single never-taken branch.
	inj *faultinject.Injector

	segs [arch.NumSegments]arch.VSID

	// gen is the translation generation: bumped on every event that can
	// invalidate a previously returned translation (TLB invalidation,
	// BAT register change, segment register load). Fastpaths that cache
	// a translation remember the generation it was minted under and
	// treat a mismatch as "revalidate from scratch".
	gen uint64
}

// NewMMU builds an MMU for the given CPU model. trc may be nil (no
// tracing).
func NewMMU(model clock.CPUModel, htab *HTAB, led *clock.Ledger, bus Bus, mon *hwmon.Counters, trc *mmtrace.Tracer) *MMU {
	m := &MMU{
		Model: model,
		HTAB:  htab,
		led:   led,
		bus:   bus,
		mon:   mon,
		trc:   trc,
		ph:    telemetry.New(led, mon),
	}
	if model.SplitTLB {
		m.TLB = NewTLB(model.TLBEntries/2, model.TLBWays)
		m.ITLB = NewTLB(model.TLBEntries/2, model.TLBWays)
	} else {
		m.TLB = NewTLB(model.TLBEntries, model.TLBWays)
		m.ITLB = m.TLB
	}
	m.TLB.gen = &m.gen
	m.ITLB.gen = &m.gen
	m.IBAT.gen = &m.gen
	m.DBAT.gen = &m.gen
	return m
}

// SetPhases replaces the phase ledger the hardware walk attributes to;
// the machine points the MMU at its own ledger during construction.
func (m *MMU) SetPhases(p *telemetry.Phases) { m.ph = p }

// Gen returns the current translation generation. Any cached
// translation minted under an older generation must be revalidated.
//
//mmutricks:noalloc
func (m *MMU) Gen() uint64 { return m.gen }

// TLBFor returns the lookaside buffer serving the given access side.
//
//mmutricks:noalloc
func (m *MMU) TLBFor(instr bool) *TLB {
	if instr {
		return m.ITLB
	}
	return m.TLB
}

// InvalidateVPNAll removes a translation from both TLBs (tlbie hits
// every array on the real parts).
func (m *MMU) InvalidateVPNAll(vpn arch.VPN) {
	m.TLB.InvalidateVPN(vpn)
	if m.ITLB != m.TLB {
		m.ITLB.InvalidateVPN(vpn)
	}
}

// InvalidateTLBs flushes both TLBs.
func (m *MMU) InvalidateTLBs() {
	m.TLB.InvalidateAll()
	if m.ITLB != m.TLB {
		m.ITLB.InvalidateAll()
	}
}

// KernelTLBEntries counts valid kernel translations across both TLBs.
func (m *MMU) KernelTLBEntries() int {
	n := m.TLB.KernelEntries()
	if m.ITLB != m.TLB {
		n += m.ITLB.KernelEntries()
	}
	return n
}

// SetSegment loads segment register i with a VSID (the kernel does this
// on context switch). Loading a segment register remaps every address
// in that segment, so it advances the translation generation.
func (m *MMU) SetSegment(i int, v arch.VSID) {
	m.gen++
	m.segs[i] = v & arch.VSIDMask
}

// Segment returns segment register i.
func (m *MMU) Segment(i int) arch.VSID { return m.segs[i] }

// VPNFor computes the virtual page number the current segment registers
// assign to ea.
//
//mmutricks:noalloc
func (m *MMU) VPNFor(ea arch.EffectiveAddr) arch.VPN {
	return arch.VPNOf(m.segs[ea.SegIndex()], ea)
}

// Result is the outcome of one translation.
type Result struct {
	PA        arch.PhysAddr
	Inhibited bool
	Fault     Fault
	// VPN is the virtual page that faulted (valid when Fault != FaultNone).
	VPN arch.VPN
	// ViaBAT reports the translation was satisfied by a BAT register.
	ViaBAT bool
}

// perPTECost is the fixed pipeline cost of examining one PTE during the
// 604's hardware search, on top of the memory-system cost of the access
// itself. 16 accesses x ~7 cycles plus memory time approximates the
// paper's measured up-to-120-cycle hardware reload.
const perPTECost = 7

// Translate resolves one effective address, charging translation costs
// to the ledger. instr selects the instruction-side BATs. A BAT hit and
// a TLB hit are free (the compares happen in the pipeline); misses cost
// what the paper measured.
//
//mmutricks:noalloc
func (m *MMU) Translate(ea arch.EffectiveAddr, instr bool) Result {
	if m.inj != nil {
		m.injectTranslate(ea, instr)
	}
	bats := &m.DBAT
	if instr {
		bats = &m.IBAT
	}
	if pa, inh, ok := bats.Lookup(ea); ok {
		m.mon.BATHits++
		return Result{PA: pa, Inhibited: inh, ViaBAT: true}
	}
	vpn := m.VPNFor(ea)
	if rpn, inh, ok := m.TLBFor(instr).Lookup(vpn); ok {
		m.mon.TLBHits++
		return Result{PA: rpn.Addr() + arch.PhysAddr(ea.Offset()), Inhibited: inh}
	}
	m.mon.TLBMisses++

	if m.Model.Kind == clock.CPU603 {
		// The 603 interrupts to software immediately; the handler-entry
		// cost is charged by the kernel's handler, which also decides
		// what data structure to search (§6). The handler's soft-reload
		// event carries the cost; this one marks the miss itself.
		m.trc.Emit(mmtrace.KindTLBMiss, vpn.VSID(), ea, 0, 0)
		return Result{Fault: FaultTLBMiss, VPN: vpn}
	}

	// 604: hardware hash-table search.
	m.mon.HardwareWalks++
	walkStart := m.led.Now()
	pte, primary, accesses := m.HTAB.Search(vpn, m.bus)
	m.led.Charge(clock.Cycles(accesses * perPTECost))
	if pte != nil {
		m.mon.HTABHits++
		walkCost := m.led.Now() - walkStart
		if primary {
			m.mon.HTABPrimaryHits++
			m.trc.Emit(mmtrace.KindHTABHitPrimary, vpn.VSID(), ea, walkCost, 0)
		} else {
			m.trc.Emit(mmtrace.KindHTABHitSecondary, vpn.VSID(), ea, walkCost, 0)
		}
		m.trc.Emit(mmtrace.KindTLBMiss, vpn.VSID(), ea, walkCost, 0)
		pte.R = true
		if m.TLBFor(instr).Insert(vpn, pte.RPN, pte.CacheInhibited, ea.IsKernel()) {
			m.trc.Emit(mmtrace.KindTLBEvict, vpn.VSID(), ea, 0, 0)
		}
		m.trc.Emit(mmtrace.KindTLBInsert, vpn.VSID(), ea, 0, 0)
		// The walk ran in hardware, under whatever phase the faulting
		// access belongs to; an exact transfer moves its cycles to
		// tlb-miss without a span (no defer on the noalloc path).
		m.ph.Attribute(telemetry.PhaseTLBMiss, walkCost)
		return Result{PA: pte.RPN.Addr() + arch.PhysAddr(ea.Offset()), Inhibited: pte.CacheInhibited}
	}
	// Neither bucket matched: hash-table miss interrupt (>= 91 cycles
	// just to invoke the handler, §5).
	m.mon.HTABMisses++
	m.mon.HashMissFaults++ //mmutricks:parity-ok the hashmiss-fault event is emitted by kernel.(*Kernel).handleFault once the handler cost is known
	m.led.Charge(clock.Cycles(m.Model.HashMissInterrupt))
	m.trc.Emit(mmtrace.KindHTABMiss, vpn.VSID(), ea, m.led.Now()-walkStart, 0)
	m.trc.Emit(mmtrace.KindTLBMiss, vpn.VSID(), ea, m.led.Now()-walkStart, 0)
	// Failed walk plus the interrupt-invocation cost, transferred like
	// the hit path above; the software handler's span covers the rest.
	m.ph.Attribute(telemetry.PhaseTLBMiss, m.led.Now()-walkStart)
	return Result{Fault: FaultHashMiss, VPN: vpn}
}

// Probe translates without charging cycles or counters — for
// assertions and tools. It reports ok=false if the address has no
// hardware translation right now.
func (m *MMU) Probe(ea arch.EffectiveAddr, instr bool) (arch.PhysAddr, bool) {
	bats := &m.DBAT
	if instr {
		bats = &m.IBAT
	}
	if pa, _, ok := bats.Lookup(ea); ok {
		return pa, true
	}
	vpn := m.VPNFor(ea)
	set := m.TLBFor(instr).set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			return set[i].rpn.Addr() + arch.PhysAddr(ea.Offset()), true
		}
	}
	if pte, _, _ := m.HTAB.Search(vpn, nil); pte != nil {
		return pte.RPN.Addr() + arch.PhysAddr(ea.Offset()), true
	}
	return 0, false
}
