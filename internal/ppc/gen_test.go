package ppc

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
)

// The translation generation is the correctness anchor of the kernel's
// last-translation fastpath: a cached translation is only honored while
// the generation it was minted under is still current, so every
// operation that can invalidate or remap a previously returned
// translation MUST advance it. This table enumerates those operations;
// a new invalidation path added without a bump shows up here as a
// missing case (and as a counter divergence in the kernel's
// scalar-vs-batched differential tests).
func TestGenerationAdvancesOnEveryInvalidation(t *testing.T) {
	bat := BATEntry{Valid: true, Base: 0xC0000000, Len: 4 << 20, Phys: 0}
	cases := []struct {
		name string
		op   func(m *MMU)
	}{
		{"TLB.InvalidateVPN", func(m *MMU) { m.TLB.InvalidateVPN(arch.VPNOf(1, 0x1000)) }},
		{"TLB.InvalidateAll", func(m *MMU) { m.TLB.InvalidateAll() }},
		{"ITLB.InvalidateVPN", func(m *MMU) { m.ITLB.InvalidateVPN(arch.VPNOf(1, 0x1000)) }},
		{"ITLB.InvalidateAll", func(m *MMU) { m.ITLB.InvalidateAll() }},
		{"MMU.InvalidateVPNAll", func(m *MMU) { m.InvalidateVPNAll(arch.VPNOf(1, 0x1000)) }},
		{"MMU.InvalidateTLBs", func(m *MMU) { m.InvalidateTLBs() }},
		{"MMU.SetSegment", func(m *MMU) { m.SetSegment(3, 42) }},
		{"DBAT.Set", func(m *MMU) {
			if err := m.DBAT.Set(0, bat); err != nil {
				t.Fatal(err)
			}
		}},
		{"IBAT.Set", func(m *MMU) {
			if err := m.IBAT.Set(0, bat); err != nil {
				t.Fatal(err)
			}
		}},
		{"DBAT.Clear", func(m *MMU) { m.DBAT.Clear() }},
		{"IBAT.Clear", func(m *MMU) { m.IBAT.Clear() }},
	}
	for _, model := range []clock.CPUModel{clock.PPC603At180(), clock.PPC604At185()} {
		for _, tc := range cases {
			m, _, _, _ := newTestMMU(model)
			before := m.Gen()
			tc.op(m)
			if m.Gen() <= before {
				t.Errorf("%s: %s did not advance the translation generation (%d -> %d)",
					model.Name, tc.name, before, m.Gen())
			}
		}
	}
}

// A TLB insert does not bump the generation (it would invalidate every
// cached translation on every reload); instead the fastpath remembers
// the way it hit and revalidates it. This pins the contract that makes
// that sound: once the remembered entry is evicted by later inserts,
// LookupWay refuses the way rather than returning the newcomer's
// translation.
func TestLookupWayRefusesRecycledWay(t *testing.T) {
	m, _, _, _ := newTestMMU(clock.PPC604At185())
	vpn := arch.VPNOf(7, 0x4000)
	m.TLB.Insert(vpn, 0x123, false, false)
	way, ok := m.TLB.WayOf(vpn)
	if !ok {
		t.Fatal("inserted VPN not found")
	}
	gen := m.Gen()

	// Flood the set with conflicting VPNs until the remembered entry is
	// gone. Same page index, different VSIDs land in the same set.
	for v := arch.VSID(100); v < arch.VSID(100+16); v++ {
		m.TLB.Insert(arch.VPNOf(v, 0x4000), arch.PFN(v), false, false)
	}
	if m.Gen() != gen {
		t.Fatalf("plain inserts must not bump the generation (%d -> %d)", gen, m.Gen())
	}
	if _, ok := m.TLB.WayOf(vpn); ok {
		t.Skip("conflict flood did not evict the entry; geometry changed?")
	}
	if _, _, ok := m.TLB.LookupWay(vpn, way); ok {
		t.Fatal("LookupWay returned a hit on a recycled way — the fastpath would read a stale translation")
	}
}
