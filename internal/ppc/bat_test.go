package ppc

import (
	"testing"
	"testing/quick"

	"mmutricks/internal/arch"
)

func TestBATCoversAndTranslates(t *testing.T) {
	var a BATArray
	// A 4 MB block mapping the kernel: 0xC0000000 -> physical 0.
	err := a.Set(0, BATEntry{Valid: true, Base: 0xC0000000, Len: 4 << 20, Phys: 0})
	if err != nil {
		t.Fatal(err)
	}
	pa, inh, ok := a.Lookup(0xC0123456)
	if !ok || inh || pa != 0x00123456 {
		t.Fatalf("lookup: pa=%v inh=%v ok=%v", pa, inh, ok)
	}
	if _, _, ok := a.Lookup(0xC0400000); ok {
		t.Fatal("address past block end should not match")
	}
	if _, _, ok := a.Lookup(0xBFFFFFFF); ok {
		t.Fatal("address before block should not match")
	}
}

func TestBATValidation(t *testing.T) {
	var a BATArray
	cases := []BATEntry{
		{Valid: true, Base: 0, Len: 64 << 10, Phys: 0},        // too small
		{Valid: true, Base: 0, Len: 3 << 20, Phys: 0},         // not pow2
		{Valid: true, Base: 0x10000, Len: 128 << 10, Phys: 0}, // base misaligned
		{Valid: true, Base: 0, Len: 128 << 10, Phys: 0x10000}, // phys misaligned
	}
	for i, e := range cases {
		if err := a.Set(0, e); err == nil {
			t.Errorf("case %d: invalid BAT accepted: %+v", i, e)
		}
	}
	if err := a.Set(-1, BATEntry{}); err == nil {
		t.Error("negative index accepted")
	}
	if err := a.Set(NumBATs, BATEntry{}); err == nil {
		t.Error("out-of-range index accepted")
	}
	// Invalid entries need no alignment.
	if err := a.Set(0, BATEntry{Valid: false, Len: 3}); err != nil {
		t.Errorf("clearing a BAT should always work: %v", err)
	}
}

func TestBATInhibitedFlag(t *testing.T) {
	var a BATArray
	if err := a.Set(1, BATEntry{Valid: true, Base: 0xF0000000, Len: 1 << 20, Phys: 0x01F00000, Inhibited: true}); err != nil {
		t.Fatal(err)
	}
	_, inh, ok := a.Lookup(0xF00FF000)
	if !ok || !inh {
		t.Fatal("I/O BAT should hit with inhibited set")
	}
}

func TestBATClear(t *testing.T) {
	var a BATArray
	_ = a.Set(0, BATEntry{Valid: true, Base: 0xC0000000, Len: 4 << 20, Phys: 0})
	a.Clear()
	if _, _, ok := a.Lookup(0xC0000000); ok {
		t.Fatal("Clear left a valid mapping")
	}
	if a.Get(0).Valid {
		t.Fatal("Get shows valid after Clear")
	}
}

func TestBATTranslationIsOffsetPreserving(t *testing.T) {
	var a BATArray
	_ = a.Set(0, BATEntry{Valid: true, Base: 0xC0000000, Len: 8 << 20, Phys: 0})
	f := func(off uint32) bool {
		off &= (8 << 20) - 1
		ea := arch.EffectiveAddr(0xC0000000 + off)
		pa, _, ok := a.Lookup(ea)
		return ok && pa == arch.PhysAddr(off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
