package ppc

// Fault-injection mechanisms for the translation resources. The
// faultinject.Injector decides when and what; the methods here apply
// the corruption to TLB/HTAB/BAT state, exactly the way the real
// hazards arise (a parity flip in a TLB frame number, an ECC flip in
// hash-table memory, a zombie PTE coming back valid, a BAT register
// losing a physical-base bit). Everything is reachable from the
// annotated Translate hot path, so it is all //mmutricks:noalloc, and
// the whole layer is behind one nil check in Translate.

import (
	"mmutricks/internal/arch"
	"mmutricks/internal/faultinject"
)

// SetInjector attaches a fault injector to the MMU (nil detaches).
func (m *MMU) SetInjector(inj *faultinject.Injector) { m.inj = inj }

// injectTranslate is the SiteTranslate injection point, polled once
// per translation.
//
//mmutricks:noalloc
func (m *MMU) injectTranslate(ea arch.EffectiveAddr, instr bool) {
	n := m.inj.Fire(faultinject.SiteTranslate)
	for i := 0; i < n; i++ {
		kind, ok := m.inj.PickKind(faultinject.SiteTranslate)
		if !ok {
			return
		}
		m.applyFault(kind, ea, instr)
	}
}

// applyFault lands one fault. Victims always avoid the translation in
// flight (its TLB set, its HTAB buckets), so the poison cannot be
// consumed before its machine check is delivered at the end of the
// current kernel access; anything else the poison could touch is
// repaired by then. Faults that find no eligible victim, or no queue
// space for their error report, are Skipped — corruption is never
// applied unreported.
//
//mmutricks:noalloc
func (m *MMU) applyFault(kind faultinject.Kind, ea arch.EffectiveAddr, instr bool) {
	inj := m.inj
	vpn := m.VPNFor(ea)
	switch kind {
	case faultinject.TLBFlip:
		if inj.QueueFull() {
			inj.NoteSkipped(kind)
			return
		}
		victim, ok := m.TLBFor(instr).CorruptEntry(inj.Rand(), vpn)
		if !ok {
			inj.NoteSkipped(kind)
			return
		}
		inj.Push(faultinject.Pending{Cause: faultinject.CauseTLBParity, VPN: victim})
		inj.NoteApplied(kind)

	case faultinject.TLBSpurious:
		// Benign: the entry refaults and reloads from the page table.
		// No machine check, no repair expected.
		if _, ok := m.TLBFor(instr).SpuriousInvalidate(inj.Rand()); ok {
			inj.NoteApplied(kind)
		} else {
			inj.NoteSkipped(kind)
		}

	case faultinject.HTABFlip:
		if inj.QueueFull() {
			inj.NoteSkipped(kind)
			return
		}
		g, s, victim, ok := m.HTAB.CorruptPTE(inj.Rand(), vpn)
		if !ok {
			inj.NoteSkipped(kind)
			return
		}
		inj.Push(faultinject.Pending{
			Cause: faultinject.CauseHTABECC,
			Addr:  m.HTAB.EntryAddr(g, s),
			VPN:   victim,
		})
		inj.NoteApplied(kind)

	case faultinject.HTABResurrect:
		if inj.QueueFull() {
			inj.NoteSkipped(kind)
			return
		}
		g, s, victim, ok := m.HTAB.ResurrectPTE(inj.Rand(), vpn)
		if !ok {
			inj.NoteSkipped(kind)
			return
		}
		inj.Push(faultinject.Pending{
			Cause: faultinject.CauseHTABECC,
			Addr:  m.HTAB.EntryAddr(g, s),
			VPN:   victim,
		})
		inj.NoteApplied(kind)

	case faultinject.BATFlip:
		if inj.QueueFull() {
			inj.NoteSkipped(kind)
			return
		}
		// Try the data side first, then the instruction side. The
		// pending record's Addr carries the register index and PID the
		// side (0 = DBAT, 1 = IBAT) — informational only: the repair
		// reprograms every register from the kernel's canonical map.
		if idx, ok := m.DBAT.CorruptPhys(inj.Rand()); ok {
			inj.Push(faultinject.Pending{Cause: faultinject.CauseBATParity, Addr: arch.PhysAddr(idx)})
			inj.NoteApplied(kind)
			return
		}
		if idx, ok := m.IBAT.CorruptPhys(inj.Rand()); ok {
			inj.Push(faultinject.Pending{Cause: faultinject.CauseBATParity, Addr: arch.PhysAddr(idx), PID: 1})
			inj.NoteApplied(kind)
			return
		}
		inj.NoteSkipped(kind)

	default:
		inj.NoteSkipped(kind)
	}
}

// CorruptEntry flips the low frame-number bit of an arbitrary valid
// entry — a TLB parity fault. The scan starts at a seeded set and
// skips avoid's set, so the translation in flight is never the victim.
// It returns the poisoned entry's virtual page.
//
//mmutricks:noalloc
func (t *TLB) CorruptEntry(rnd uint64, avoid arch.VPN) (victim arch.VPN, ok bool) {
	start := uint32(rnd) & t.setMask
	avoidSet := avoid.PageIndex() & t.setMask
	for i := 0; i <= int(t.setMask); i++ {
		si := (start + uint32(i)) & t.setMask
		if si == avoidSet {
			continue
		}
		set := t.setLines(si)
		for j := range set {
			if set[j].valid {
				set[j].rpn ^= 1
				return set[j].vpn, true
			}
		}
	}
	return 0, false
}

// SpuriousInvalidate drops an arbitrary valid entry for no reason —
// the stale-translation hazard lazy flushing narrows but cannot
// remove. Benign by construction: the next access refaults and
// reloads.
//
//mmutricks:noalloc
func (t *TLB) SpuriousInvalidate(rnd uint64) (victim arch.VPN, ok bool) {
	start := uint32(rnd) & t.setMask
	for i := 0; i <= int(t.setMask); i++ {
		set := t.setLines((start + uint32(i)) & t.setMask)
		for j := range set {
			if set[j].valid {
				vpn := set[j].vpn
				set[j] = TLBEntry{}
				return vpn, true
			}
		}
	}
	return 0, false
}

// Peek reports the frame a valid entry currently translates vpn to,
// without touching LRU state or counters — for the machine-check
// handler and tests.
//
//mmutricks:noalloc
func (t *TLB) Peek(vpn arch.VPN) (arch.PFN, bool) {
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			return set[i].rpn, true
		}
	}
	return 0, false
}

// CorruptPTE flips the low frame-number bit of an arbitrary valid PTE
// — an ECC fault in hash-table memory. The scan skips both buckets an
// insert or search for avoid would use. It returns the slot and the
// poisoned entry's virtual page.
//
//mmutricks:noalloc
func (h *HTAB) CorruptPTE(rnd uint64, avoid arch.VPN) (group, slot int, victim arch.VPN, ok bool) {
	pg := arch.HashPrimary(avoid, h.groups)
	sg := arch.HashSecondary(avoid, h.groups)
	start := int(rnd % uint64(h.groups))
	for i := 0; i < h.groups; i++ {
		g := (start + i) % h.groups
		if g == pg || g == sg {
			continue
		}
		for s := range h.buckets[g] {
			e := &h.buckets[g][s]
			if e.Valid {
				e.RPN ^= 1
				return g, s, e.VPN(), true
			}
		}
	}
	return 0, 0, 0, false
}

// ResurrectPTE re-validates a stale, previously-used invalid slot with
// a flipped frame — the zombie-PTE hazard forced to happen. Never-used
// (all-zero) slots are not eligible.
//
//mmutricks:noalloc
func (h *HTAB) ResurrectPTE(rnd uint64, avoid arch.VPN) (group, slot int, victim arch.VPN, ok bool) {
	pg := arch.HashPrimary(avoid, h.groups)
	sg := arch.HashSecondary(avoid, h.groups)
	start := int(rnd % uint64(h.groups))
	for i := 0; i < h.groups; i++ {
		g := (start + i) % h.groups
		if g == pg || g == sg {
			continue
		}
		for s := range h.buckets[g] {
			e := &h.buckets[g][s]
			if !e.Valid && (e.RPN != 0 || e.VSID != 0 || e.API != 0) {
				e.Valid = true
				e.RPN ^= 1
				return g, s, e.VPN(), true
			}
		}
	}
	return 0, 0, 0, false
}

// SlotOf maps a physical address inside the table back to its slot —
// the machine-check handler resolves the failing address a CauseHTABECC
// report carries.
func (h *HTAB) SlotOf(pa arch.PhysAddr) (group, slot int, ok bool) {
	if pa < h.base {
		return 0, 0, false
	}
	off := int(pa-h.base) / arch.PTEBytes
	if off >= h.groups*arch.PTEGSize {
		return 0, 0, false
	}
	return off / arch.PTEGSize, off % arch.PTEGSize, true
}

// ReadSlot returns the PTE in a slot (valid or not).
func (h *HTAB) ReadSlot(group, slot int) arch.PTE { return h.buckets[group][slot] }

// InvalidateSlot clears one slot's valid bit, charging the store
// through the bus like every other table write.
func (h *HTAB) InvalidateSlot(group, slot int, bus Bus) {
	if h.buckets[group][slot].Valid {
		h.buckets[group][slot].Valid = false
		h.touch(bus, group, slot, true)
	}
}

// CorruptPhys flips a physical-base bit of an arbitrary valid BAT
// register — a BAT parity fault. It writes the array directly,
// bypassing Set's alignment validation exactly the way a hardware flip
// would.
//
//mmutricks:noalloc
func (a *BATArray) CorruptPhys(rnd uint64) (idx int, ok bool) {
	start := int(rnd % NumBATs)
	for i := 0; i < NumBATs; i++ {
		j := (start + i) % NumBATs
		if a.entries[j].Valid {
			a.entries[j].Phys ^= BATMinBlock
			return j, true
		}
	}
	return -1, false
}
