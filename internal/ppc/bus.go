// Package ppc models the 32-bit PowerPC 603/604 memory-management unit:
// segment registers, BAT (block address translation) registers, the
// translation lookaside buffer, and the architected hashed page table,
// together with the cycle costs of each translation path.
//
// The MMU is policy-free: it raises faults (TLB miss on the 603,
// hash-table miss on the 604) and the kernel package supplies the
// software that services them, which is exactly the division of labour
// the paper exploits.
package ppc

import (
	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
)

// Bus is the memory system the MMU performs table-walk accesses
// through. The machine implements it over the L1 caches, so hash-table
// and page-table walks create (or, when inhibited, avoid creating)
// cache traffic — the effect §8 of the paper analyses.
type Bus interface {
	// MemAccess performs one physical memory access on behalf of
	// class, charging cycles. Inhibited accesses bypass the cache;
	// writes dirty their line (copy-back caches pay a castout when a
	// dirty victim is evicted).
	//
	//mmutricks:noalloc
	MemAccess(pa arch.PhysAddr, class cache.Class, inhibited, write bool)
}

// Fault tells the kernel what software assistance a translation needs.
type Fault int

const (
	// FaultNone: translation completed in hardware.
	FaultNone Fault = iota
	// FaultTLBMiss: the 603 took a TLB-miss interrupt; software must
	// reload the TLB.
	FaultTLBMiss
	// FaultHashMiss: the 604's hardware search found no PTE; software
	// must install one in the hash table.
	FaultHashMiss
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultTLBMiss:
		return "tlb-miss"
	case FaultHashMiss:
		return "hash-miss"
	}
	return "fault(?)"
}
