package ppc

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/hwmon"
)

func newTestMMU(model clock.CPUModel) (*MMU, *countingBus, *hwmon.Counters, *clock.Ledger) {
	bus := &countingBus{}
	mon := &hwmon.Counters{}
	led := clock.NewLedger(model.MHz)
	htab := NewHTAB(arch.DefaultHTABGroups, 0x200000)
	m := NewMMU(model, htab, led, bus, mon, nil)
	return m, bus, mon, led
}

func TestTranslateViaBAT(t *testing.T) {
	m, _, mon, led := newTestMMU(clock.PPC604At185())
	if err := m.DBAT.Set(0, BATEntry{Valid: true, Base: 0xC0000000, Len: 4 << 20, Phys: 0}); err != nil {
		t.Fatal(err)
	}
	r := m.Translate(0xC0001234, false)
	if r.Fault != FaultNone || !r.ViaBAT || r.PA != 0x00001234 {
		t.Fatalf("BAT translate: %+v", r)
	}
	if mon.BATHits != 1 || mon.TLBMisses != 0 {
		t.Fatalf("counters: %+v", mon)
	}
	if led.Now() != 0 {
		t.Fatal("BAT hit should cost no cycles")
	}
	// Instruction-side lookup must use the IBATs, which are clear.
	r = m.Translate(0xC0001234, true)
	if r.ViaBAT {
		t.Fatal("instruction fetch hit a data BAT")
	}
}

func TestTranslate603FaultsToSoftware(t *testing.T) {
	m, _, mon, _ := newTestMMU(clock.PPC603At180())
	m.SetSegment(0, 0x42)
	r := m.Translate(0x00001000, false)
	if r.Fault != FaultTLBMiss {
		t.Fatalf("603 miss should fault to software, got %v", r.Fault)
	}
	if r.VPN != arch.VPNOf(0x42, 0x00001000) {
		t.Fatalf("fault VPN = %#x", r.VPN)
	}
	if mon.TLBMisses != 1 || mon.HardwareWalks != 0 {
		t.Fatalf("counters: %+v", mon)
	}
	// Software (the kernel) loads the TLB and retries.
	m.TLB.Insert(r.VPN, 0x77, false, false)
	r = m.Translate(0x00001234, false)
	if r.Fault != FaultNone || r.PA != 0x77000+0x234 {
		t.Fatalf("after reload: %+v", r)
	}
	if mon.TLBHits != 1 {
		t.Fatal("TLB hit not counted")
	}
}

func TestTranslate604HardwareWalk(t *testing.T) {
	m, bus, mon, led := newTestMMU(clock.PPC604At185())
	m.SetSegment(0, 0x42)
	vpn := arch.VPNOf(0x42, 0x00001000)
	m.HTAB.Insert(vpn, 0x88, false, nil, nil)

	r := m.Translate(0x00001400, false)
	if r.Fault != FaultNone || r.PA != 0x88000+0x400 {
		t.Fatalf("hardware walk: %+v", r)
	}
	if mon.HardwareWalks != 1 || mon.HTABHits != 1 || mon.HTABPrimaryHits != 1 {
		t.Fatalf("counters: %+v", mon)
	}
	if bus.n == 0 {
		t.Fatal("hardware walk made no memory accesses")
	}
	if led.Now() == 0 {
		t.Fatal("hardware walk should cost cycles")
	}
	// The walk loads the TLB: next access hits for free.
	c0 := led.Now()
	r = m.Translate(0x00001800, false)
	if r.Fault != FaultNone || mon.TLBHits != 1 {
		t.Fatalf("TLB not loaded by walk: %+v", r)
	}
	if led.Now() != c0 {
		t.Fatal("TLB hit should cost no cycles")
	}
}

func TestTranslate604HashMissFault(t *testing.T) {
	m, _, mon, led := newTestMMU(clock.PPC604At185())
	m.SetSegment(0, 0x42)
	r := m.Translate(0x00001000, false)
	if r.Fault != FaultHashMiss {
		t.Fatalf("expected hash-miss fault, got %v", r.Fault)
	}
	if mon.HTABMisses != 1 || mon.HashMissFaults != 1 {
		t.Fatalf("counters: %+v", mon)
	}
	// At least the 91-cycle interrupt cost plus the 16-access walk.
	min := clock.Cycles(clock.PPC604At185().HashMissInterrupt)
	if led.Now() < min {
		t.Fatalf("hash miss cost %d cycles, want >= %d", led.Now(), min)
	}
}

func TestSegmentRegistersSelectVSID(t *testing.T) {
	m, _, _, _ := newTestMMU(clock.PPC603At180())
	m.SetSegment(3, 0x111)
	m.SetSegment(4, 0x222)
	if m.Segment(3) != 0x111 {
		t.Fatal("segment readback failed")
	}
	a := m.VPNFor(0x30000000)
	b := m.VPNFor(0x40000000)
	if a.VSID() != 0x111 || b.VSID() != 0x222 {
		t.Fatalf("VPNs: %#x %#x", a, b)
	}
	// Changing the segment register changes the VPN — the mechanism
	// behind lazy context flushing (§7).
	m.SetSegment(3, 0x333)
	if m.VPNFor(0x30000000).VSID() != 0x333 {
		t.Fatal("segment change did not change VPN")
	}
}

func TestVSIDMaskedInSegment(t *testing.T) {
	m, _, _, _ := newTestMMU(clock.PPC603At180())
	m.SetSegment(0, 0xFFFFFFF)
	if m.Segment(0) != arch.VSIDMask {
		t.Fatal("segment register must mask to 24 bits")
	}
}

func TestProbe(t *testing.T) {
	m, _, mon, led := newTestMMU(clock.PPC604At185())
	m.SetSegment(0, 0x42)
	if _, ok := m.Probe(0x00001000, false); ok {
		t.Fatal("probe hit with nothing mapped")
	}
	m.HTAB.Insert(arch.VPNOf(0x42, 0x00001000), 0x88, false, nil, nil)
	pa, ok := m.Probe(0x00001555, false)
	if !ok || pa != 0x88555 {
		t.Fatalf("probe: pa=%v ok=%v", pa, ok)
	}
	if mon.TLBMisses != 0 || led.Now() != 0 {
		t.Fatal("Probe must not charge cycles or counters")
	}
	if err := m.IBAT.Set(0, BATEntry{Valid: true, Base: 0xC0000000, Len: 4 << 20, Phys: 0}); err != nil {
		t.Fatal(err)
	}
	if pa, ok := m.Probe(0xC0000040, true); !ok || pa != 0x40 {
		t.Fatal("probe via IBAT failed")
	}
}

func TestKernelTLBEntriesTagged(t *testing.T) {
	m, _, _, _ := newTestMMU(clock.PPC604At185())
	m.SetSegment(0xC, 0x7)
	vpn := m.VPNFor(0xC0400000)
	m.HTAB.Insert(vpn, 0x99, false, nil, nil)
	if r := m.Translate(0xC0400000, false); r.Fault != FaultNone {
		t.Fatalf("translate: %+v", r)
	}
	if m.TLB.KernelEntries() != 1 {
		t.Fatal("kernel translation not tagged in TLB")
	}
}
