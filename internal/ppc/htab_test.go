package ppc

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
)

// countingBus records the accesses charged during table walks.
type countingBus struct {
	n         int
	inhibited int
	last      arch.PhysAddr
}

//mmutricks:noalloc
func (b *countingBus) MemAccess(pa arch.PhysAddr, class cache.Class, inhibited, write bool) {
	b.n++
	if inhibited {
		b.inhibited++
	}
	b.last = pa
}

func newTestHTAB() *HTAB { return NewHTAB(arch.DefaultHTABGroups, 0x200000) }

func TestHTABGeometryAndPanics(t *testing.T) {
	h := newTestHTAB()
	if h.Groups() != 2048 || h.Capacity() != 16384 {
		t.Fatalf("geometry: %d groups, %d capacity", h.Groups(), h.Capacity())
	}
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two group count should panic")
		}
	}()
	NewHTAB(1000, 0)
}

func TestHTABInsertSearch(t *testing.T) {
	h := newTestHTAB()
	vpn := arch.VPNOf(0x1234, 0x00400000)
	out, _ := h.Insert(vpn, 0x55, false, nil, nil)
	if out != InsertFreeSlot {
		t.Fatalf("first insert outcome = %v", out)
	}
	pte, primary, acc := h.Search(vpn, nil)
	if pte == nil || pte.RPN != 0x55 {
		t.Fatal("search failed after insert")
	}
	if !primary {
		t.Fatal("first insert should land in the primary bucket")
	}
	if acc < 1 || acc > 8 {
		t.Fatalf("primary search took %d accesses", acc)
	}
}

func TestHTABSecondaryOverflow(t *testing.T) {
	h := newTestHTAB()
	// Fill the primary bucket of a target VPN with 8 colliding VPNs,
	// then insert one more: it must go to the secondary bucket and be
	// findable there.
	target := arch.VPNOf(1, 0x00400000)
	pg := arch.HashPrimary(target, h.Groups())
	inserted := 0
	// Find VPNs whose primary bucket is pg by varying the VSID.
	for v := arch.VSID(2); inserted < 8; v++ {
		vpn := arch.VPNOf(v, 0x00400000)
		if arch.HashPrimary(vpn, h.Groups()) == pg {
			h.Insert(vpn, arch.PFN(inserted), false, nil, nil)
			inserted++
		}
	}
	out, _ := h.Insert(target, 0x99, false, nil, nil)
	if out != InsertFreeSlot {
		t.Fatalf("overflow insert outcome = %v (secondary should have room)", out)
	}
	pte, primary, acc := h.Search(target, nil)
	if pte == nil || pte.RPN != 0x99 {
		t.Fatal("secondary search failed")
	}
	if primary {
		t.Fatal("entry should be in the secondary bucket")
	}
	if acc <= 8 || acc > 16 {
		t.Fatalf("secondary search took %d accesses, want 9..16", acc)
	}
	if !pte.Hash {
		t.Fatal("secondary entries must carry the H bit")
	}
}

func TestHTABSearchMissCosts16(t *testing.T) {
	h := newTestHTAB()
	var bus countingBus
	pte, _, acc := h.Search(arch.VPNOf(7, 0x00001000), &bus)
	if pte != nil {
		t.Fatal("empty table matched")
	}
	if acc != 16 || bus.n != 16 {
		t.Fatalf("miss search: %d accesses, bus %d — the paper's worst case is 16", acc, bus.n)
	}
}

func TestHTABEvictionWhenBothBucketsFull(t *testing.T) {
	h := NewHTAB(2, 0) // tiny table: 2 groups of 8 = 16 PTEs
	// With 2 groups, primary and secondary are always the two distinct
	// groups, so 16 inserts fill the whole table.
	var vpns []arch.VPN
	for v := arch.VSID(1); len(vpns) < 16; v++ {
		vpn := arch.VPNOf(v, 0x1000)
		out, _ := h.Insert(vpn, arch.PFN(v), false, nil, nil)
		if out != InsertFreeSlot {
			t.Fatalf("insert %d evicted too early", len(vpns))
		}
		vpns = append(vpns, vpn)
	}
	if h.Occupancy() != 16 {
		t.Fatalf("occupancy = %d", h.Occupancy())
	}
	out, _ := h.Insert(arch.VPNOf(0x999, 0x1000), 0xAA, false, nil, nil)
	if out != InsertEvictLive {
		t.Fatalf("full-table insert outcome = %v, want eviction", out)
	}
	if h.Occupancy() != 16 {
		t.Fatal("eviction must not change occupancy")
	}
}

func TestHTABEvictionZombieClassification(t *testing.T) {
	h := NewHTAB(2, 0)
	for v := arch.VSID(1); v <= 16; v++ {
		h.Insert(arch.VPNOf(v, 0x1000), arch.PFN(v), false, nil, nil)
	}
	// Every resident VSID is zombie.
	allZombie := func(arch.VSID) bool { return true }
	out, _ := h.Insert(arch.VPNOf(0x999, 0x1000), 1, false, nil, allZombie)
	if out != InsertEvictZombie {
		t.Fatalf("outcome = %v, want zombie eviction", out)
	}
}

func TestHTABFlushVPN(t *testing.T) {
	h := newTestHTAB()
	vpn := arch.VPNOf(3, 0x00002000)
	h.Insert(vpn, 9, false, nil, nil)
	var bus countingBus
	found, acc := h.FlushVPN(vpn, &bus)
	if !found {
		t.Fatal("flush did not find the entry")
	}
	if acc < 2 {
		t.Fatalf("flush accesses = %d", acc)
	}
	if pte, _, _ := h.Search(vpn, nil); pte != nil {
		t.Fatal("entry still matches after flush")
	}
	// Flushing a missing entry costs the full 16-access search — the
	// §7 pain point.
	found, acc = h.FlushVPN(arch.VPNOf(0xBEEF, 0x5000), nil)
	if found || acc != 16 {
		t.Fatalf("missing flush: found=%v acc=%d", found, acc)
	}
}

func TestHTABReclaimScan(t *testing.T) {
	h := newTestHTAB()
	live := arch.VSID(1)
	dead := arch.VSID(2)
	for i := 0; i < 50; i++ {
		h.Insert(arch.VPNOf(live, arch.EffectiveAddr(i<<arch.PageShift)), arch.PFN(i), false, nil, nil)
		h.Insert(arch.VPNOf(dead, arch.EffectiveAddr(i<<arch.PageShift)), arch.PFN(i), false, nil, nil)
	}
	isZombie := func(v arch.VSID) bool { return v == dead }
	if got := h.LiveOccupancy(isZombie); got != 50 {
		t.Fatalf("LiveOccupancy = %d", got)
	}
	// Sweep the whole table in two halves.
	next, n1 := h.ReclaimScan(0, h.Groups()/2, nil, isZombie)
	if next != h.Groups()/2 {
		t.Fatalf("next = %d", next)
	}
	_, n2 := h.ReclaimScan(next, h.Groups()/2, nil, isZombie)
	if n1+n2 != 50 {
		t.Fatalf("reclaimed %d zombies, want 50", n1+n2)
	}
	if h.Occupancy() != 50 {
		t.Fatalf("occupancy after reclaim = %d, want 50 live", h.Occupancy())
	}
	// Nil zombie classifier: no-op.
	if _, n := h.ReclaimScan(0, h.Groups(), nil, nil); n != 0 {
		t.Fatal("nil classifier reclaimed entries")
	}
}

func TestHTABOccupancyHistogram(t *testing.T) {
	h := newTestHTAB()
	vpn := arch.VPNOf(1, 0x1000)
	h.Insert(vpn, 1, false, nil, nil)
	hist := h.OccupancyHistogram()
	if hist.Total() != uint64(h.Groups()) {
		t.Fatalf("histogram total = %d", hist.Total())
	}
	if hist.Buckets[1] != 1 || hist.Buckets[0] != uint64(h.Groups()-1) {
		t.Fatalf("histogram = %v...", hist.Buckets)
	}
}

func TestHTABInhibitedAccesses(t *testing.T) {
	h := newTestHTAB()
	h.SetInhibited(true)
	var bus countingBus
	h.Search(arch.VPNOf(1, 0x1000), &bus)
	if bus.inhibited != bus.n || bus.n == 0 {
		t.Fatalf("inhibited table should make inhibited accesses: %d/%d", bus.inhibited, bus.n)
	}
}

func TestHTABInvalidateAll(t *testing.T) {
	h := newTestHTAB()
	h.Insert(arch.VPNOf(1, 0x1000), 1, false, nil, nil)
	h.InvalidateAll()
	if h.Occupancy() != 0 {
		t.Fatal("InvalidateAll left valid entries")
	}
}

func TestHTABEntryAddrDistinct(t *testing.T) {
	h := newTestHTAB()
	seen := map[arch.PhysAddr]bool{}
	for g := 0; g < 4; g++ {
		for s := 0; s < arch.PTEGSize; s++ {
			a := h.EntryAddr(g, s)
			if seen[a] {
				t.Fatalf("duplicate entry address %v", a)
			}
			seen[a] = true
		}
	}
	if h.EntryAddr(0, 1)-h.EntryAddr(0, 0) != arch.PTEBytes {
		t.Fatal("PTE stride wrong")
	}
}
