package ppc

import (
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/hwmon"
)

// InsertOutcome classifies what an HTAB insert displaced.
type InsertOutcome int

const (
	// InsertFreeSlot: an invalid slot was found; nothing displaced.
	InsertFreeSlot InsertOutcome = iota
	// InsertEvictLive: a valid PTE belonging to a live context was
	// replaced.
	InsertEvictLive
	// InsertEvictZombie: a valid PTE whose VSID belongs to an
	// abandoned context was replaced.
	InsertEvictZombie
)

// HTAB is the PowerPC hashed page table: groups (PTEGs) of eight PTEs,
// searched with the primary hash and then the secondary hash. It lives
// at a physical address, and every search/insert/flush step performs a
// bus access there so the table's cache behaviour is simulated, not
// assumed.
type HTAB struct {
	groups  int
	buckets [][]arch.PTE
	base    arch.PhysAddr
	// inhibited marks the table cache-inhibited (§8's proposed fix:
	// don't let page-table walks pollute the cache).
	inhibited bool
	// rr is the rotating replacement cursor implementing the paper's
	// "choose an arbitrary PTE to replace" policy deterministically.
	rr int
}

// NewHTAB builds a hash table with the given group count at the given
// physical base. groups must be a power of two.
func NewHTAB(groups int, base arch.PhysAddr) *HTAB {
	if groups <= 0 || groups&(groups-1) != 0 {
		panic(fmt.Sprintf("ppc: HTAB group count %d not a power of two", groups))
	}
	h := &HTAB{groups: groups, buckets: make([][]arch.PTE, groups), base: base}
	for i := range h.buckets {
		h.buckets[i] = make([]arch.PTE, arch.PTEGSize)
	}
	return h
}

// Groups returns the PTEG count.
func (h *HTAB) Groups() int { return h.groups }

// Capacity returns the total PTE capacity.
func (h *HTAB) Capacity() int { return h.groups * arch.PTEGSize }

// SetInhibited marks the table's storage cache-inhibited (or not).
func (h *HTAB) SetInhibited(v bool) { h.inhibited = v }

// EntryAddr returns the physical address of a PTE, so accesses to it
// can be charged through the cache.
//
//mmutricks:noalloc
func (h *HTAB) EntryAddr(group, slot int) arch.PhysAddr {
	return h.base + arch.PhysAddr((group*arch.PTEGSize+slot)*arch.PTEBytes)
}

//mmutricks:noalloc
func (h *HTAB) touch(bus Bus, group, slot int, write bool) {
	if bus != nil {
		bus.MemAccess(h.EntryAddr(group, slot), cache.ClassHashTable, h.inhibited, write)
	}
}

// runBus is optionally implemented by buses (machine.Machine) that can
// simulate a batch of equally-strided accesses in one call with
// observable behaviour identical to the equivalent scalar loop.
type runBus interface {
	MemAccessRun(pa arch.PhysAddr, n, stride int, class cache.Class, inhibited, write bool)
}

// touchRun performs n consecutive-slot touches starting at slot. The
// PTE compares interleaved with touches in the scalar loops are free
// struct reads with no bus side effects, so hoisting the touches into
// one run leaves the bus operation sequence unchanged.
//
//mmutricks:noalloc
func (h *HTAB) touchRun(bus Bus, group, slot, n int, write bool) {
	if bus == nil || n <= 0 {
		return
	}
	if rb, ok := bus.(runBus); ok {
		rb.MemAccessRun(h.EntryAddr(group, slot), n, arch.PTEBytes, cache.ClassHashTable, h.inhibited, write) //mmutricks:noalloc-ok interface batch entry proven at its machine.Machine implementation
		return
	}
	for i := 0; i < n; i++ {
		h.touch(bus, group, slot+i, write)
	}
}

// Search performs the architected table search: up to eight entries in
// the primary bucket, then up to eight in the secondary. It returns the
// matching PTE (nil if absent) and the number of PTE memory accesses
// performed — up to the 16 the paper cites. The match slot is computed
// first (compares are free), then the touches up to and including it
// are issued as one run — the same addresses in the same order as the
// scalar touch-then-compare loop.
//
//mmutricks:noalloc
func (h *HTAB) Search(vpn arch.VPN, bus Bus) (pte *arch.PTE, primary bool, accesses int) {
	pg := arch.HashPrimary(vpn, h.groups)
	pb := h.buckets[pg]
	for s := range pb {
		if e := &pb[s]; e.Matches(vpn) && !e.Hash {
			h.touchRun(bus, pg, 0, s+1, false)
			return e, true, s + 1
		}
	}
	h.touchRun(bus, pg, 0, arch.PTEGSize, false)
	accesses = arch.PTEGSize
	sg := arch.HashSecondary(vpn, h.groups)
	sb := h.buckets[sg]
	for s := range sb {
		if e := &sb[s]; e.Matches(vpn) && e.Hash {
			h.touchRun(bus, sg, 0, s+1, false)
			return e, false, accesses + s + 1
		}
	}
	h.touchRun(bus, sg, 0, arch.PTEGSize, false)
	return nil, false, accesses + arch.PTEGSize
}

// Insert installs a PTE for vpn. It looks for an invalid slot in the
// primary bucket, then the secondary bucket; if both are full it
// replaces an arbitrary entry (rotating cursor), without regard to
// whether the victim is live or zombie — exactly the non-optimal
// replacement the paper describes in §7. zombie classifies a VSID as
// belonging to an abandoned context (may be nil). The returned access
// count covers finding the slot.
func (h *HTAB) Insert(vpn arch.VPN, rpn arch.PFN, inhibited bool, bus Bus, zombie func(arch.VSID) bool) (InsertOutcome, int) {
	accesses := 0
	pg := arch.HashPrimary(vpn, h.groups)
	sg := arch.HashSecondary(vpn, h.groups)
	// Pass 1: a free slot in either bucket. The free slot is found with
	// free compares first, then the reads up to and including it go out
	// as one run (same bus sequence as the scalar interleaving).
	for _, loc := range []struct {
		g    int
		hash bool
	}{{pg, false}, {sg, true}} {
		b := h.buckets[loc.g]
		for s := range b {
			if !b[s].Valid {
				h.touchRun(bus, loc.g, 0, s+1, false)
				accesses += s + 1
				h.place(loc.g, s, vpn, rpn, inhibited, loc.hash)
				h.touch(bus, loc.g, s, true) // the store
				return InsertFreeSlot, accesses + 1
			}
		}
		h.touchRun(bus, loc.g, 0, arch.PTEGSize, false)
		accesses += arch.PTEGSize
	}
	// Pass 2: both buckets full — replace an arbitrary slot.
	h.rr++
	pick := h.rr % (2 * arch.PTEGSize)
	g, hash := pg, false
	if pick >= arch.PTEGSize {
		g, hash = sg, true
		pick -= arch.PTEGSize
	}
	victim := h.buckets[g][pick]
	h.place(g, pick, vpn, rpn, inhibited, hash)
	h.touch(bus, g, pick, true)
	accesses++
	if zombie != nil && zombie(victim.VSID) {
		return InsertEvictZombie, accesses
	}
	return InsertEvictLive, accesses
}

func (h *HTAB) place(g, s int, vpn arch.VPN, rpn arch.PFN, inhibited, hash bool) {
	h.buckets[g][s] = arch.PTE{
		Valid: true, VSID: vpn.VSID(), API: vpn.PageIndex(),
		Hash: hash, RPN: rpn, R: true, CacheInhibited: inhibited,
	}
}

// BucketsFull reports whether both buckets an insert for vpn could use
// are entirely valid — i.e. the insert would have to evict. Probing is
// free (used by policy decisions before the charged insert).
func (h *HTAB) BucketsFull(vpn arch.VPN) bool {
	for _, g := range []int{arch.HashPrimary(vpn, h.groups), arch.HashSecondary(vpn, h.groups)} {
		for s := range h.buckets[g] {
			if !h.buckets[g][s].Valid {
				return false
			}
		}
	}
	return true
}

// FlushVPN invalidates the PTE for vpn, searching both buckets — the
// up-to-16-access cost that makes eager range flushing so expensive
// (§7). It reports whether an entry was found and how many accesses the
// search took.
func (h *HTAB) FlushVPN(vpn arch.VPN, bus Bus) (found bool, accesses int) {
	pte, _, accesses := h.Search(vpn, bus)
	if pte == nil {
		return false, accesses
	}
	pte.Valid = false
	accesses++ // the invalidating store
	if bus != nil {
		// Charge the store against the group the entry lives in; the
		// search already brought the line in, so this mostly hits.
		bus.MemAccess(h.base, cache.ClassHashTable, h.inhibited, true)
	}
	return true, accesses
}

// ReclaimScan is the idle task's zombie sweep (§7): scan n groups
// starting at group `start`, clearing the valid bit of every PTE whose
// VSID the kernel marks zombie. It returns the next start position and
// the number of PTEs reclaimed. Scanning reads each PTE (one access)
// and writes back reclaimed ones (one more).
func (h *HTAB) ReclaimScan(start, n int, bus Bus, zombie func(arch.VSID) bool) (next, reclaimed int) {
	if zombie == nil {
		return start, 0
	}
	for i := 0; i < n; i++ {
		g := (start + i) % h.groups
		b := h.buckets[g]
		// Groups with nothing to reclaim — the overwhelmingly common
		// case in steady state — are a pure read sweep, so the eight
		// touches collapse into one run. A group with a zombie keeps the
		// scalar loop: its read/write interleaving must be preserved.
		clean := true
		for s := range b {
			if b[s].Valid && zombie(b[s].VSID) {
				clean = false
				break
			}
		}
		if clean {
			h.touchRun(bus, g, 0, arch.PTEGSize, false)
			continue
		}
		for s := range b {
			h.touch(bus, g, s, false)
			e := &b[s]
			if e.Valid && zombie(e.VSID) {
				e.Valid = false
				h.touch(bus, g, s, true)
				reclaimed++
			}
		}
	}
	return (start + n) % h.groups, reclaimed
}

// ForEachValid calls fn for every valid PTE in the table, in bucket
// order; fn returning false stops the walk.
func (h *HTAB) ForEachValid(fn func(vpn arch.VPN, rpn arch.PFN) bool) {
	for g := range h.buckets {
		for s := range h.buckets[g] {
			e := &h.buckets[g][s]
			if e.Valid {
				if !fn(e.VPN(), e.RPN) {
					return
				}
			}
		}
	}
}

// InvalidateAll clears the whole table (boot / full flush).
func (h *HTAB) InvalidateAll() {
	for g := range h.buckets {
		for s := range h.buckets[g] {
			h.buckets[g][s] = arch.PTE{}
		}
	}
}

// Occupancy returns the number of valid PTEs (live + zombie) — the
// paper's 600–700 vs 1400–2200 out of 16384 measurements.
func (h *HTAB) Occupancy() int {
	n := 0
	for g := range h.buckets {
		for s := range h.buckets[g] {
			if h.buckets[g][s].Valid {
				n++
			}
		}
	}
	return n
}

// LiveOccupancy returns how many valid PTEs belong to live contexts.
func (h *HTAB) LiveOccupancy(zombie func(arch.VSID) bool) int {
	n := 0
	for g := range h.buckets {
		for s := range h.buckets[g] {
			e := &h.buckets[g][s]
			if e.Valid && (zombie == nil || !zombie(e.VSID)) {
				n++
			}
		}
	}
	return n
}

// OccupancyHistogram returns the distribution of valid-PTEs-per-bucket
// (0..8) used to find hash hot spots when tuning the VSID scatter
// constant (§5.2).
func (h *HTAB) OccupancyHistogram() *hwmon.Histogram {
	hist := hwmon.NewHistogram(arch.PTEGSize + 1)
	for g := range h.buckets {
		n := 0
		for s := range h.buckets[g] {
			if h.buckets[g][s].Valid {
				n++
			}
		}
		hist.Add(n)
	}
	return hist
}
