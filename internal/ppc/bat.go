package ppc

import (
	"fmt"

	"mmutricks/internal/arch"
)

// BATMinBlock is the smallest block a BAT register can map (128 KB).
const BATMinBlock = 128 << 10

// NumBATs is the number of BAT registers per side (4 instruction + 4
// data on the 603/604).
const NumBATs = 4

// BATEntry maps one virtual block of 128 KB or more onto a contiguous
// physical region, bypassing the TLB and hash table entirely.
type BATEntry struct {
	Valid bool
	// Base is the effective base address; must be aligned to Len.
	Base arch.EffectiveAddr
	// Len is the block length in bytes: a power of two >= 128 KB.
	Len uint32
	// Phys is the physical base the block maps to.
	Phys arch.PhysAddr
	// Inhibited marks the block cache-inhibited (used for I/O space).
	Inhibited bool
}

// Covers reports whether the entry translates ea.
//
//mmutricks:noalloc
func (b *BATEntry) Covers(ea arch.EffectiveAddr) bool {
	return b.Valid && uint32(ea)&^(b.Len-1) == uint32(b.Base)
}

// Translate maps ea within the block. Caller must check Covers first.
//
//mmutricks:noalloc
func (b *BATEntry) Translate(ea arch.EffectiveAddr) arch.PhysAddr {
	return b.Phys + arch.PhysAddr(uint32(ea)&(b.Len-1))
}

// BATArray is one side's four BAT registers (the hardware has separate
// instruction and data arrays).
type BATArray struct {
	entries [NumBATs]BATEntry
	// gen, when wired by the owning MMU, is bumped whenever a register
	// changes so last-translation fastpaths notice remapped blocks.
	gen *uint64
}

func (a *BATArray) bumpGen() {
	if a.gen != nil {
		*a.gen++
	}
}

// Set programs BAT register i. It validates the architected alignment
// and size constraints.
func (a *BATArray) Set(i int, e BATEntry) error {
	if i < 0 || i >= NumBATs {
		return fmt.Errorf("ppc: BAT index %d out of range", i)
	}
	if e.Valid {
		if e.Len < BATMinBlock || e.Len&(e.Len-1) != 0 {
			return fmt.Errorf("ppc: BAT length %#x not a power of two >= 128K", e.Len)
		}
		if uint32(e.Base)&(e.Len-1) != 0 {
			return fmt.Errorf("ppc: BAT base %v not aligned to length %#x", e.Base, e.Len)
		}
		if uint32(e.Phys)&(e.Len-1) != 0 {
			return fmt.Errorf("ppc: BAT phys %v not aligned to length %#x", e.Phys, e.Len)
		}
	}
	a.bumpGen()
	a.entries[i] = e
	return nil
}

// Get returns BAT register i.
func (a *BATArray) Get(i int) BATEntry { return a.entries[i] }

// Clear invalidates all four registers.
func (a *BATArray) Clear() {
	a.bumpGen()
	a.entries = [NumBATs]BATEntry{}
}

// Lookup finds the entry covering ea, if any. On real hardware the BAT
// compare runs in parallel with the segment lookup and wins ties, so a
// BAT hit costs no extra cycles.
//
//mmutricks:noalloc
func (a *BATArray) Lookup(ea arch.EffectiveAddr) (pa arch.PhysAddr, inhibited, ok bool) {
	for i := range a.entries {
		if a.entries[i].Covers(ea) {
			return a.entries[i].Translate(ea), a.entries[i].Inhibited, true
		}
	}
	return 0, false, false
}
