package ppc

import (
	"testing"
	"testing/quick"

	"mmutricks/internal/arch"
)

func TestTLBGeometry(t *testing.T) {
	tlb := NewTLB(128, 2)
	if tlb.Entries() != 128 {
		t.Fatalf("Entries = %d", tlb.Entries())
	}
	for _, g := range [][2]int{{0, 2}, {128, 0}, {127, 2}, {100, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTLB(%d,%d) should panic", g[0], g[1])
				}
			}()
			NewTLB(g[0], g[1])
		}()
	}
}

func TestTLBInsertLookup(t *testing.T) {
	tlb := NewTLB(128, 2)
	vpn := arch.VPNOf(0x42, 0x00400000)
	if _, _, ok := tlb.Lookup(vpn); ok {
		t.Fatal("empty TLB hit")
	}
	tlb.Insert(vpn, 0x123, false, false)
	rpn, inh, ok := tlb.Lookup(vpn)
	if !ok || rpn != 0x123 || inh {
		t.Fatalf("lookup after insert: rpn=%v inh=%v ok=%v", rpn, inh, ok)
	}
	// Same page index, different VSID: must not match (this is the
	// property lazy flushing relies on, §7).
	other := arch.VPNOf(0x43, 0x00400000)
	if _, _, ok := tlb.Lookup(other); ok {
		t.Fatal("TLB matched a different VSID")
	}
}

func TestTLBReinsertUpdates(t *testing.T) {
	tlb := NewTLB(128, 2)
	vpn := arch.VPNOf(1, 0x1000)
	tlb.Insert(vpn, 10, false, false)
	tlb.Insert(vpn, 20, true, false)
	rpn, inh, ok := tlb.Lookup(vpn)
	if !ok || rpn != 20 || !inh {
		t.Fatal("reinsert should update in place")
	}
	if tlb.Valid() != 1 {
		t.Fatalf("duplicate entries after reinsert: %d", tlb.Valid())
	}
}

func TestTLBLRUWithinSet(t *testing.T) {
	tlb := NewTLB(128, 2) // 64 sets; page index selects set
	// Three VPNs that collide in set 5 (page index ≡ 5 mod 64).
	mk := func(vsid arch.VSID) arch.VPN {
		return arch.VPNOf(vsid, arch.EffectiveAddr(5<<arch.PageShift))
	}
	a, b, c := mk(1), mk(2), mk(3)
	tlb.Insert(a, 1, false, false)
	tlb.Insert(b, 2, false, false)
	tlb.Lookup(a) // a is now MRU
	tlb.Insert(c, 3, false, false)
	if _, _, ok := tlb.Lookup(a); !ok {
		t.Fatal("MRU entry was evicted")
	}
	if _, _, ok := tlb.Lookup(b); ok {
		t.Fatal("LRU entry survived")
	}
	if _, _, ok := tlb.Lookup(c); !ok {
		t.Fatal("new entry missing")
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := NewTLB(128, 2)
	vpn := arch.VPNOf(9, 0x2000)
	tlb.Insert(vpn, 1, false, false)
	tlb.InvalidateVPN(vpn)
	if _, _, ok := tlb.Lookup(vpn); ok {
		t.Fatal("InvalidateVPN left the entry")
	}
	tlb.Insert(vpn, 1, false, false)
	tlb.InvalidateAll()
	if tlb.Valid() != 0 {
		t.Fatal("InvalidateAll left entries")
	}
}

func TestTLBKernelFootprint(t *testing.T) {
	tlb := NewTLB(128, 2)
	tlb.Insert(arch.VPNOf(1, 0x00001000), 1, false, false)
	tlb.Insert(arch.VPNOf(0, 0xC0001000), 2, false, true)
	tlb.Insert(arch.VPNOf(0, 0xC0002000), 3, false, true)
	if got := tlb.KernelEntries(); got != 2 {
		t.Fatalf("KernelEntries = %d", got)
	}
	if got := tlb.Valid(); got != 3 {
		t.Fatalf("Valid = %d", got)
	}
}

func TestTLBCountVSIDs(t *testing.T) {
	tlb := NewTLB(128, 2)
	tlb.Insert(arch.VPNOf(7, 0x1000), 1, false, false)
	tlb.Insert(arch.VPNOf(7, 0x2000), 2, false, false)
	tlb.Insert(arch.VPNOf(8, 0x3000), 3, false, false)
	m := tlb.CountVSIDs()
	if m[7] != 2 || m[8] != 1 {
		t.Fatalf("CountVSIDs = %v", m)
	}
}

func TestTLBLookupAfterInsertProperty(t *testing.T) {
	tlb := NewTLB(256, 2)
	f := func(vsid arch.VSID, ea arch.EffectiveAddr, rpn arch.PFN) bool {
		vsid &= arch.VSIDMask
		rpn &= 0xFFFFF
		vpn := arch.VPNOf(vsid, ea)
		tlb.Insert(vpn, rpn, false, false)
		got, _, ok := tlb.Lookup(vpn)
		return ok && got == rpn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLBValidNeverExceedsCapacity(t *testing.T) {
	tlb := NewTLB(128, 2)
	f := func(vsid arch.VSID, ea arch.EffectiveAddr) bool {
		tlb.Insert(arch.VPNOf(vsid&arch.VSIDMask, ea), 1, false, false)
		return tlb.Valid() <= 128
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
