package ppc

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/hwmon"
	"mmutricks/internal/mmtrace"
)

// The TLB-hit translation path runs once per simulated memory
// reference; keeping it allocation-free is what makes the harness
// parallelism pay.

func TestTLBLookupZeroAllocs(t *testing.T) {
	tlb := NewTLB(128, 2)
	vpn := arch.VPNOf(0x42, 0x1234_5000)
	tlb.Insert(vpn, 0x77, false, false)
	if n := testing.AllocsPerRun(100, func() {
		if _, _, ok := tlb.Lookup(vpn); !ok {
			t.Fatal("lookup missed an inserted entry")
		}
	}); n != 0 {
		t.Fatalf("TLB.Lookup allocates %.1f times per op, want 0", n)
	}
}

// nopBus satisfies Bus without touching memory, so Translate's own
// allocation behaviour is isolated.
type nopBus struct{}

//mmutricks:noalloc
func (nopBus) MemAccess(arch.PhysAddr, cache.Class, bool, bool) {}

func TestTranslateTLBHitZeroAllocs(t *testing.T) {
	model := clock.PPC604At185()
	htab := NewHTAB(arch.DefaultHTABGroups, 0x200000)
	m := NewMMU(model, htab, clock.NewLedger(model.MHz), nopBus{}, &hwmon.Counters{}, nil)
	ea := arch.EffectiveAddr(0x1034_5678)
	vpn := m.VPNFor(ea)
	m.TLBFor(false).Insert(vpn, 0x99, false, false)
	if n := testing.AllocsPerRun(100, func() {
		if r := m.Translate(ea, false); r.Fault != FaultNone {
			t.Fatalf("unexpected fault %v", r.Fault)
		}
	}); n != 0 {
		t.Fatalf("Translate (TLB hit) allocates %.1f times per op, want 0", n)
	}
}

// tracedMMU builds an MMU with a tracer in the given state. A nil
// *Tracer (no tracer wired at all) is covered by the test above.
func tracedMMU(model clock.CPUModel, enabled bool) (*MMU, *mmtrace.Tracer) {
	led := clock.NewLedger(model.MHz)
	tr := mmtrace.NewTracer(led, 1024)
	if enabled {
		tr.Enable()
	}
	htab := NewHTAB(arch.DefaultHTABGroups, 0x200000)
	return NewMMU(model, htab, led, nopBus{}, &hwmon.Counters{}, tr), tr
}

// The emit path must stay allocation-free through a full Translate on
// the miss path (where the tracepoints actually fire), enabled or not.
func TestTranslateTracedZeroAllocs(t *testing.T) {
	for _, enabled := range []bool{false, true} {
		m, _ := tracedMMU(clock.PPC603At133(), enabled)
		ea := arch.EffectiveAddr(0x1034_5678)
		vpn := m.VPNFor(ea)
		m.TLBFor(false).Insert(vpn, 0x99, false, false)
		missEA := arch.EffectiveAddr(0x2042_0000)
		if n := testing.AllocsPerRun(100, func() {
			m.Translate(ea, false)     // hit path
			m.Translate(missEA, false) // miss path: emits on the 603
		}); n != 0 {
			t.Fatalf("traced Translate (enabled=%v) allocates %.1f times per op, want 0", enabled, n)
		}
	}
}

// Tracing is observation only: with the tracer disabled (the default),
// Translate must charge exactly the same cycles and counters as an
// MMU with no tracer wired at all — the disabled path is one branch.
func TestDisabledTracerCostNeutral(t *testing.T) {
	run := func(m *MMU) (clock.Cycles, hwmon.Counters) {
		for i := 0; i < 64; i++ {
			ea := arch.EffectiveAddr(0x1000_0000 + i*arch.PageSize)
			vpn := m.VPNFor(ea)
			m.TLBFor(false).Insert(vpn, arch.PFN(0x100+i), false, false)
			m.Translate(ea, false)                  // hit
			m.Translate(ea+arch.PageSize*97, false) // miss
		}
		return m.led.Now(), *m.mon
	}
	for _, model := range []clock.CPUModel{clock.PPC603At133(), clock.PPC604At185()} {
		bare := NewMMU(model, NewHTAB(arch.DefaultHTABGroups, 0x200000),
			clock.NewLedger(model.MHz), nopBus{}, &hwmon.Counters{}, nil)
		traced, _ := tracedMMU(model, false)
		bareCycles, bareMon := run(bare)
		tracedCycles, tracedMon := run(traced)
		if bareCycles != tracedCycles {
			t.Errorf("%s: disabled tracer changed simulated cycles: %d vs %d",
				model.Name, bareCycles, tracedCycles)
		}
		if bareMon != tracedMon {
			t.Errorf("%s: disabled tracer changed counters:\n%v\nvs\n%v",
				model.Name, bareMon.String(), tracedMon.String())
		}
	}
}

func BenchmarkTranslateTLBHit(b *testing.B) {
	bench := func(b *testing.B, m *MMU) {
		ea := arch.EffectiveAddr(0x1034_5678)
		vpn := m.VPNFor(ea)
		m.TLBFor(false).Insert(vpn, 0x99, false, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Translate(ea, false)
		}
	}
	model := clock.PPC604At185()
	b.Run("no-tracer", func(b *testing.B) {
		bench(b, NewMMU(model, NewHTAB(arch.DefaultHTABGroups, 0x200000),
			clock.NewLedger(model.MHz), nopBus{}, &hwmon.Counters{}, nil))
	})
	b.Run("tracer-disabled", func(b *testing.B) {
		m, _ := tracedMMU(model, false)
		bench(b, m)
	})
	b.Run("tracer-enabled", func(b *testing.B) {
		m, _ := tracedMMU(model, true)
		bench(b, m)
	})
}
