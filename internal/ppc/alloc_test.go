package ppc

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/hwmon"
)

// The TLB-hit translation path runs once per simulated memory
// reference; keeping it allocation-free is what makes the harness
// parallelism pay.

func TestTLBLookupZeroAllocs(t *testing.T) {
	tlb := NewTLB(128, 2)
	vpn := arch.VPNOf(0x42, 0x1234_5000)
	tlb.Insert(vpn, 0x77, false, false)
	if n := testing.AllocsPerRun(100, func() {
		if _, _, ok := tlb.Lookup(vpn); !ok {
			t.Fatal("lookup missed an inserted entry")
		}
	}); n != 0 {
		t.Fatalf("TLB.Lookup allocates %.1f times per op, want 0", n)
	}
}

// nopBus satisfies Bus without touching memory, so Translate's own
// allocation behaviour is isolated.
type nopBus struct{}

//mmutricks:noalloc
func (nopBus) MemAccess(arch.PhysAddr, cache.Class, bool, bool) {}

func TestTranslateTLBHitZeroAllocs(t *testing.T) {
	model := clock.PPC604At185()
	htab := NewHTAB(arch.DefaultHTABGroups, 0x200000)
	m := NewMMU(model, htab, clock.NewLedger(model.MHz), nopBus{}, &hwmon.Counters{})
	ea := arch.EffectiveAddr(0x1034_5678)
	vpn := m.VPNFor(ea)
	m.TLBFor(false).Insert(vpn, 0x99, false, false)
	if n := testing.AllocsPerRun(100, func() {
		if r := m.Translate(ea, false); r.Fault != FaultNone {
			t.Fatalf("unexpected fault %v", r.Fault)
		}
	}); n != 0 {
		t.Fatalf("Translate (TLB hit) allocates %.1f times per op, want 0", n)
	}
}
