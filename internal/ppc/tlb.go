package ppc

import (
	"fmt"

	"mmutricks/internal/arch"
)

// TLBEntry is one translation held by the TLB.
type TLBEntry struct {
	valid     bool
	vpn       arch.VPN
	rpn       arch.PFN
	inhibited bool
	kernel    bool // translates a kernel address — for footprint stats
	lru       uint64
}

// TLB is the set-associative translation lookaside buffer. Both the 603
// (128 entries) and 604 (256 entries) are 2-way set-associative indexed
// by the low bits of the effective page index, which is how the real
// parts index their TLBs.
type TLB struct {
	sets    [][]TLBEntry
	ways    int
	setMask uint32
	seq     uint64
}

// NewTLB builds a TLB with the given total entry count and
// associativity. entries/ways must be a power of two.
func NewTLB(entries, ways int) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("ppc: bad TLB geometry %d/%d", entries, ways))
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("ppc: TLB set count %d not a power of two", nsets))
	}
	t := &TLB{sets: make([][]TLBEntry, nsets), ways: ways, setMask: uint32(nsets - 1)}
	for i := range t.sets {
		t.sets[i] = make([]TLBEntry, ways)
	}
	return t
}

// Entries returns the total capacity.
func (t *TLB) Entries() int { return len(t.sets) * t.ways }

//mmutricks:noalloc
func (t *TLB) set(vpn arch.VPN) []TLBEntry {
	return t.sets[vpn.PageIndex()&t.setMask]
}

// Lookup searches for a translation of vpn.
//
//mmutricks:noalloc
func (t *TLB) Lookup(vpn arch.VPN) (rpn arch.PFN, inhibited, ok bool) {
	set := t.set(vpn)
	t.seq++
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].lru = t.seq
			return set[i].rpn, set[i].inhibited, true
		}
	}
	return 0, false, false
}

// Insert installs a translation, evicting the set's LRU entry if full.
// kernel tags entries translating kernel addresses so the OS footprint
// (§5.1's 33%-of-slots measurement) can be read off the TLB. It reports
// whether a valid entry for a different page was displaced, so the
// tracer can see TLB pressure.
//
//mmutricks:noalloc
func (t *TLB) Insert(vpn arch.VPN, rpn arch.PFN, inhibited, kernel bool) (evictedValid bool) {
	set := t.set(vpn)
	t.seq++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			victim = i
			goto install
		}
	}
	for i := range set {
		if !set[i].valid {
			victim = i
			goto install
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	evictedValid = true
install:
	set[victim] = TLBEntry{valid: true, vpn: vpn, rpn: rpn, inhibited: inhibited, kernel: kernel, lru: t.seq}
	return evictedValid
}

// InvalidateVPN removes a single translation (the tlbie instruction).
func (t *TLB) InvalidateVPN(vpn arch.VPN) {
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i] = TLBEntry{}
		}
	}
}

// InvalidateAll flushes the whole TLB (the tlbia instruction).
func (t *TLB) InvalidateAll() {
	for i := range t.sets {
		for j := range t.sets[i] {
			t.sets[i][j] = TLBEntry{}
		}
	}
}

// Valid returns how many entries are currently valid.
func (t *TLB) Valid() int {
	n := 0
	for i := range t.sets {
		for j := range t.sets[i] {
			if t.sets[i][j].valid {
				n++
			}
		}
	}
	return n
}

// KernelEntries returns how many valid entries translate kernel
// addresses — the OS TLB footprint of §5.1.
func (t *TLB) KernelEntries() int {
	n := 0
	for i := range t.sets {
		for j := range t.sets[i] {
			if t.sets[i][j].valid && t.sets[i][j].kernel {
				n++
			}
		}
	}
	return n
}

// Snapshot returns the valid translations currently held, keyed by
// virtual page number — for consistency checking and tools.
func (t *TLB) Snapshot() map[arch.VPN]arch.PFN {
	m := make(map[arch.VPN]arch.PFN)
	for i := range t.sets {
		for j := range t.sets[i] {
			if t.sets[i][j].valid {
				m[t.sets[i][j].vpn] = t.sets[i][j].rpn
			}
		}
	}
	return m
}

// CountVSIDs returns how many valid entries belong to each VSID —
// useful for observing zombie translations lingering after a lazy
// flush.
func (t *TLB) CountVSIDs() map[arch.VSID]int {
	m := make(map[arch.VSID]int)
	for i := range t.sets {
		for j := range t.sets[i] {
			if t.sets[i][j].valid {
				m[t.sets[i][j].vpn.VSID()]++
			}
		}
	}
	return m
}
