package ppc

import (
	"fmt"

	"mmutricks/internal/arch"
)

// TLBEntry is one translation held by the TLB.
type TLBEntry struct {
	valid     bool
	vpn       arch.VPN
	rpn       arch.PFN
	inhibited bool
	kernel    bool // translates a kernel address — for footprint stats
	lru       uint64
}

// TLB is the set-associative translation lookaside buffer. Both the 603
// (128 entries) and 604 (256 entries) are 2-way set-associative indexed
// by the low bits of the effective page index, which is how the real
// parts index their TLBs. Entries are stored flat (set-major) so the
// hit path is one slice index away from the data.
type TLB struct {
	entries []TLBEntry
	ways    int
	setMask uint32
	seq     uint64
	// gen, when wired by the owning MMU, is bumped on every
	// invalidation so last-translation fastpaths can prove their
	// remembered entry was never flushed.
	gen *uint64
}

// NewTLB builds a TLB with the given total entry count and
// associativity. entries/ways must be a power of two.
func NewTLB(entries, ways int) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("ppc: bad TLB geometry %d/%d", entries, ways))
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("ppc: TLB set count %d not a power of two", nsets))
	}
	return &TLB{entries: make([]TLBEntry, entries), ways: ways, setMask: uint32(nsets - 1)}
}

// Entries returns the total capacity.
func (t *TLB) Entries() int { return len(t.entries) }

// bumpGen advances the owning MMU's translation generation (no-op for
// a TLB constructed standalone in tests).
//
//mmutricks:noalloc
func (t *TLB) bumpGen() {
	if t.gen != nil {
		*t.gen++
	}
}

//mmutricks:noalloc
func (t *TLB) set(vpn arch.VPN) []TLBEntry {
	return t.setLines(vpn.PageIndex() & t.setMask)
}

//mmutricks:noalloc
func (t *TLB) setLines(si uint32) []TLBEntry {
	base := int(si) * t.ways
	return t.entries[base : base+t.ways]
}

// Lookup searches for a translation of vpn.
//
//mmutricks:noalloc
func (t *TLB) Lookup(vpn arch.VPN) (rpn arch.PFN, inhibited, ok bool) {
	set := t.set(vpn)
	t.seq++
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].lru = t.seq
			return set[i].rpn, set[i].inhibited, true
		}
	}
	return 0, false, false
}

// Insert installs a translation, evicting the set's LRU entry if full.
// kernel tags entries translating kernel addresses so the OS footprint
// (§5.1's 33%-of-slots measurement) can be read off the TLB. It reports
// whether a valid entry for a different page was displaced, so the
// tracer can see TLB pressure.
//
//mmutricks:noalloc
func (t *TLB) Insert(vpn arch.VPN, rpn arch.PFN, inhibited, kernel bool) (evictedValid bool) {
	set := t.set(vpn)
	t.seq++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			victim = i
			goto install
		}
	}
	for i := range set {
		if !set[i].valid {
			victim = i
			goto install
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	evictedValid = true
install:
	set[victim] = TLBEntry{valid: true, vpn: vpn, rpn: rpn, inhibited: inhibited, kernel: kernel, lru: t.seq}
	return evictedValid
}

// WayOf reports which way of vpn's set currently holds a valid
// translation for it. Pure probe: no LRU, sequence, or statistics side
// effects — fastpaths use it to remember where a hit lives.
//
//mmutricks:noalloc
func (t *TLB) WayOf(vpn arch.VPN) (way int8, ok bool) {
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			return int8(i), true
		}
	}
	return 0, false
}

// LookupWay replays one Lookup hit at a remembered way. On success the
// side effects are exactly those of a hitting Lookup (sequence bump,
// LRU touch); on a stale way — entry invalidated or replaced since it
// was remembered — nothing is touched and the caller must fall back to
// the full Lookup.
//
//mmutricks:noalloc
func (t *TLB) LookupWay(vpn arch.VPN, way int8) (rpn arch.PFN, inhibited, ok bool) {
	set := t.set(vpn)
	if int(way) >= len(set) {
		return 0, false, false
	}
	e := &set[way]
	if !e.valid || e.vpn != vpn {
		return 0, false, false
	}
	t.seq++
	e.lru = t.seq
	return e.rpn, e.inhibited, true
}

// ReplayWay replays n consecutive Lookup hits at a remembered way in
// one step: the sequence advances by n and the entry's LRU stamp lands
// on the final value, exactly as n scalar hitting Lookups would leave
// it (no other entry is touched by a hit, so the intermediate stamps
// are unobservable).
//
//mmutricks:noalloc
func (t *TLB) ReplayWay(vpn arch.VPN, way int8, n int) (rpn arch.PFN, inhibited, ok bool) {
	set := t.set(vpn)
	if int(way) >= len(set) {
		return 0, false, false
	}
	e := &set[way]
	if !e.valid || e.vpn != vpn {
		return 0, false, false
	}
	t.seq += uint64(n)
	e.lru = t.seq
	return e.rpn, e.inhibited, true
}

// InvalidateVPN removes a single translation (the tlbie instruction).
func (t *TLB) InvalidateVPN(vpn arch.VPN) {
	t.bumpGen()
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i] = TLBEntry{}
		}
	}
}

// InvalidateAll flushes the whole TLB (the tlbia instruction).
func (t *TLB) InvalidateAll() {
	t.bumpGen()
	for i := range t.entries {
		t.entries[i] = TLBEntry{}
	}
}

// Valid returns how many entries are currently valid.
func (t *TLB) Valid() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

// KernelEntries returns how many valid entries translate kernel
// addresses — the OS TLB footprint of §5.1.
func (t *TLB) KernelEntries() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].kernel {
			n++
		}
	}
	return n
}

// Snapshot returns the valid translations currently held, keyed by
// virtual page number — for consistency checking and tools.
func (t *TLB) Snapshot() map[arch.VPN]arch.PFN {
	m := make(map[arch.VPN]arch.PFN)
	for i := range t.entries {
		if t.entries[i].valid {
			m[t.entries[i].vpn] = t.entries[i].rpn
		}
	}
	return m
}

// CountVSIDs returns how many valid entries belong to each VSID —
// useful for observing zombie translations lingering after a lazy
// flush.
func (t *TLB) CountVSIDs() map[arch.VSID]int {
	m := make(map[arch.VSID]int)
	for i := range t.entries {
		if t.entries[i].valid {
			m[t.entries[i].vpn.VSID()]++
		}
	}
	return m
}
