package vsid

import (
	"testing"
	"testing/quick"

	"mmutricks/internal/arch"
)

func TestForDistinctSegments(t *testing.T) {
	seen := map[arch.VSID]bool{}
	for seg := 0; seg < arch.NumSegments; seg++ {
		v := For(1, seg, DefaultScatter)
		if seen[v] {
			t.Fatalf("segment %d reuses VSID %#x", seg, v)
		}
		seen[v] = true
	}
}

func TestForDistinctContexts(t *testing.T) {
	// Contexts must occupy disjoint VSID sets (for small context
	// numbers; the 24-bit space eventually wraps).
	seen := map[arch.VSID]uint32{}
	for ctx := uint32(1); ctx <= 1000; ctx++ {
		for seg := 0; seg < arch.NumSegments; seg++ {
			v := For(ctx, seg, DefaultScatter)
			if prev, ok := seen[v]; ok {
				t.Fatalf("ctx %d seg %d collides with ctx %d on VSID %#x", ctx, seg, prev, v)
			}
			seen[v] = ctx
		}
	}
}

func TestSegmentSet(t *testing.T) {
	s := SegmentSet(7, DefaultScatter)
	for i, v := range s {
		if v != For(7, i, DefaultScatter) {
			t.Fatalf("segment %d mismatch", i)
		}
	}
}

func TestVSIDWithinArchitectedWidth(t *testing.T) {
	f := func(ctx uint32, seg uint8) bool {
		v := For(ctx, int(seg%arch.NumSegments), DefaultScatter)
		return uint32(v) <= arch.VSIDMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocMonotonicAndLive(t *testing.T) {
	a := NewContextAllocator(DefaultScatter, 0)
	c1, w1 := a.Alloc()
	c2, w2 := a.Alloc()
	if w1 || w2 {
		t.Fatal("fresh allocator should not wrap")
	}
	if c2 != c1+1 {
		t.Fatalf("contexts not monotonic: %d %d", c1, c2)
	}
	if c1 == 0 {
		t.Fatal("context 0 is reserved for the kernel")
	}
	if a.Live() != 2 {
		t.Fatalf("Live = %d", a.Live())
	}
}

func TestRetireMakesZombies(t *testing.T) {
	a := NewContextAllocator(DefaultScatter, 0)
	ctx, _ := a.Alloc()
	vs := a.VSIDs(ctx)
	for _, v := range vs {
		if a.IsZombie(v) {
			t.Fatal("live VSID reported zombie")
		}
	}
	a.Retire(ctx)
	for _, v := range vs {
		if !a.IsZombie(v) {
			t.Fatal("retired VSID not zombie")
		}
	}
	if a.ZombieVSIDs() != arch.NumSegments {
		t.Fatalf("ZombieVSIDs = %d", a.ZombieVSIDs())
	}
	if a.Live() != 0 {
		t.Fatalf("Live = %d", a.Live())
	}
	// A successor context's VSIDs are not zombies.
	ctx2, _ := a.Alloc()
	for _, v := range a.VSIDs(ctx2) {
		if a.IsZombie(v) {
			t.Fatal("fresh context VSID reported zombie")
		}
	}
}

func TestWrapResetsZombies(t *testing.T) {
	a := NewContextAllocator(DefaultScatter, 4)
	var last uint32
	for i := 0; i < 3; i++ {
		c, wrapped := a.Alloc()
		if wrapped {
			t.Fatalf("premature wrap at %d", c)
		}
		a.Retire(c)
		last = c
	}
	if a.ZombieVSIDs() == 0 {
		t.Fatal("no zombies before wrap")
	}
	c, wrapped := a.Alloc()
	if !wrapped {
		t.Fatalf("expected wrap, got ctx %d after %d", c, last)
	}
	if c != 1 {
		t.Fatalf("post-wrap context = %d, want 1", c)
	}
	if a.ZombieVSIDs() != 0 {
		t.Fatal("wrap must clear the zombie set (kernel does the global flush)")
	}
}

func TestZeroArgumentsDefaults(t *testing.T) {
	a := NewContextAllocator(0, 0)
	if a.Scatter() != DefaultScatter {
		t.Fatalf("default scatter = %d", a.Scatter())
	}
}

// TestScatterQuality demonstrates the §5.2 effect at the hash-function
// level: with a non-power-of-two scatter constant, PTEs from many
// similar address spaces spread across hash buckets far more evenly
// than with a power-of-two constant (or no scattering).
func TestScatterQuality(t *testing.T) {
	load := func(c uint32) (buckets, maxLoad int) {
		counts := map[int]int{}
		// 64 processes mapping the same 32 low pages of segment 0 —
		// "the logical address spaces of processes tend to be similar".
		for ctx := uint32(1); ctx <= 64; ctx++ {
			for page := 0; page < 32; page++ {
				vpn := arch.VPNOf(For(ctx, 0, c), arch.EffectiveAddr(page<<arch.PageShift))
				counts[arch.HashPrimary(vpn, arch.DefaultHTABGroups)]++
			}
		}
		for _, n := range counts {
			if n > maxLoad {
				maxLoad = n
			}
		}
		return len(counts), maxLoad
	}
	poorB, poorMax := load(1)              // VSID = ctx: clustered diffs
	pow2B, pow2Max := load(2048)           // multiple of the group count: total collapse
	goodB, goodMax := load(DefaultScatter) // tuned constant
	if goodB <= pow2B || goodB <= poorB {
		t.Fatalf("bucket coverage: c=1 %d, c=2048 %d, c=897 %d — tuned constant must cover most buckets", poorB, pow2B, goodB)
	}
	if goodMax >= poorMax || goodMax >= pow2Max {
		t.Fatalf("hot spots: max load c=1 %d, c=2048 %d, c=897 %d — tuned constant must flatten hot spots", poorMax, pow2Max, goodMax)
	}
}
