// Package vsid implements the two VSID-allocation strategies the paper
// contrasts in §5.2 and §7:
//
//   - PID-derived VSIDs: each process's segments get VSIDs derived from
//     its process id times a scatter constant. The scatter constant is
//     the §5.2 tuning knob — a small non-power-of-two constant spreads
//     PTEs across the hash table and eliminates hot spots.
//
//   - Context-counter VSIDs: a monotonically increasing memory-
//     management context number is assigned per address space, and
//     flushing a whole context is a VSID *reassignment* — the old VSIDs
//     become "zombies" that are still marked valid in the TLB and hash
//     table but can never match. This is the lazy-flush mechanism of §7,
//     and the zombie set is what the idle task's reclaim pass sweeps.
package vsid

import (
	"mmutricks/internal/arch"
)

// DefaultScatter is the tuned non-power-of-two scatter constant. The
// real Linux/PPC implementation multiplied the context by 897; it is a
// small odd constant co-prime with the hash-table size, which is the
// property that matters.
const DefaultScatter = 897

// For derives the VSID of segment seg for memory-management context (or
// pid) ctx under scatter constant c.
func For(ctx uint32, seg int, c uint32) arch.VSID {
	return arch.VSID((ctx*c + uint32(seg))) & arch.VSIDMask
}

// SegmentSet returns the 16 VSIDs a context loads into the segment
// registers.
func SegmentSet(ctx uint32, c uint32) [arch.NumSegments]arch.VSID {
	var s [arch.NumSegments]arch.VSID
	for i := range s {
		s[i] = For(ctx, i, c)
	}
	return s
}

// ContextAllocator hands out memory-management context numbers and
// tracks which VSIDs belong to abandoned (zombie) contexts.
type ContextAllocator struct {
	scatter uint32
	next    uint32
	max     uint32
	zombies map[arch.VSID]struct{}
	// liveCount is how many contexts are currently live (allocated and
	// not retired) — bookkeeping for tests and reports.
	liveCount int
}

// NewContextAllocator builds an allocator with the given scatter
// constant. max bounds the context counter; 0 selects the architected
// maximum (the 24-bit VSID space divided by 16 segments).
func NewContextAllocator(scatter uint32, max uint32) *ContextAllocator {
	if scatter == 0 {
		scatter = DefaultScatter
	}
	if max == 0 {
		max = 1 << 20
	}
	return &ContextAllocator{
		scatter: scatter,
		next:    1, // context 0 is reserved for the kernel
		max:     max,
		zombies: make(map[arch.VSID]struct{}),
	}
}

// Scatter returns the scatter constant in use.
func (a *ContextAllocator) Scatter() uint32 { return a.scatter }

// Alloc returns a fresh context number. wrapped reports that the
// counter was exhausted and has been reset — the kernel must then flush
// the TLB and hash table completely and re-assign every live task a new
// context, since zombie tracking starts over.
func (a *ContextAllocator) Alloc() (ctx uint32, wrapped bool) {
	if a.next >= a.max {
		a.next = 1
		a.zombies = make(map[arch.VSID]struct{})
		wrapped = true
	}
	ctx = a.next
	a.next++
	a.liveCount++
	return ctx, wrapped
}

// Retire marks every VSID of ctx zombie. Old translations under these
// VSIDs may remain "valid" in the TLB and hash table; they simply never
// match again. This is the whole trick: retiring a context costs a map
// update and 16 register loads instead of a hash-table search per page.
func (a *ContextAllocator) Retire(ctx uint32) {
	for seg := 0; seg < arch.NumSegments; seg++ {
		a.zombies[For(ctx, seg, a.scatter)] = struct{}{}
	}
	a.liveCount--
}

// IsZombie reports whether v belongs to a retired context.
func (a *ContextAllocator) IsZombie(v arch.VSID) bool {
	_, ok := a.zombies[v]
	return ok
}

// ZombieVSIDs returns how many VSIDs are currently tracked as zombies.
func (a *ContextAllocator) ZombieVSIDs() int { return len(a.zombies) }

// Live returns how many contexts are live.
func (a *ContextAllocator) Live() int { return a.liveCount }

// VSIDs returns the segment-register image for ctx.
func (a *ContextAllocator) VSIDs(ctx uint32) [arch.NumSegments]arch.VSID {
	return SegmentSet(ctx, a.scatter)
}
