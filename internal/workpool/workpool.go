// Package workpool holds the process-wide harness worker-token pool.
//
// Every concurrent harness in the repo — the experiment runner in
// internal/report and the chaos soak in internal/chaos — draws from
// this single pool, so total concurrency never exceeds the configured
// -j no matter which level the parallelism comes from. Callers gather
// results by index, which keeps output deterministic at any pool size.
package workpool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
)

var (
	poolMu sync.Mutex
	par    = 1           //mmutricks:guarded-by(poolMu)
	tokens chan struct{} //mmutricks:guarded-by(poolMu)
)

func init() { SetParallelism(runtime.GOMAXPROCS(0)) }

// SetParallelism sizes the worker pool. j < 1 is treated as 1. It must
// not be called while work is running.
func SetParallelism(j int) {
	if j < 1 {
		j = 1
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	par = j
	tokens = make(chan struct{}, j)
	for i := 0; i < j; i++ {
		tokens <- struct{}{}
	}
}

// Parallelism returns the configured worker count.
func Parallelism() int {
	poolMu.Lock()
	defer poolMu.Unlock()
	return par
}

func pool() chan struct{} {
	poolMu.Lock()
	defer poolMu.Unlock()
	return tokens
}

// Acquire blocks for one worker token and returns the function that
// releases it. The release always returns the token to the channel it
// was taken from, so a concurrent SetParallelism cannot leak or
// duplicate tokens.
func Acquire() (release func()) {
	t := pool()
	<-t
	return func() { t <- struct{}{} }
}

// canceledPhrase is the fixed prefix of Canceled.Error. Callers that
// receive a row panic re-raised as a formatted string (the RowSet
// re-raise path) classify it by matching this phrase, so it must not
// change.
const canceledPhrase = "workpool: run canceled"

// Canceled is the panic value RowSet raises when its context is done
// before every row has started: the row set is incomplete, so the
// harness unit cannot render a result and must degrade to a structured
// failure. Rows already running are not interrupted — cancellation is
// cooperative at row granularity.
type Canceled struct {
	// Cause is the context's cause (context.Canceled or
	// context.DeadlineExceeded, or a custom cancel cause).
	Cause error
}

func (c *Canceled) Error() string {
	return fmt.Sprintf("%s: %v", canceledPhrase, c.Cause)
}

// IsCanceled reports whether a contained panic value is a RowSet
// cancellation — either the *Canceled value itself or its fixed
// phrase inside a re-raised row-panic string. timeout reports whether
// the cause was a deadline rather than an explicit cancel.
func IsCanceled(p any) (canceled, timeout bool) {
	if c, ok := p.(*Canceled); ok {
		return true, errors.Is(c.Cause, context.DeadlineExceeded)
	}
	s := fmt.Sprint(p)
	if !strings.Contains(s, canceledPhrase) {
		return false, false
	}
	return true, strings.Contains(s, context.DeadlineExceeded.Error())
}

// RowSet runs fn(0..n-1) — independent rows of one harness unit —
// concurrently on whatever tokens are idle, running the remainder
// inline on the calling goroutine. A panic in any row is re-raised on
// the calling goroutine (annotated with the row's stack), so the
// caller's own panic containment still works.
//
// Cancellation is cooperative at row granularity: before each row is
// started (dispatched or inline) the context is checked, and once it
// is done no further rows start. Rows already running finish normally
// (their cycle-budget watchdog bounds them). If any row was skipped,
// RowSet panics with *Canceled after the running rows complete, so an
// incomplete row set can never be mistaken for a finished one. A nil
// context means Background, and an uncancelled run is byte-identical
// to the pre-context behavior at any pool size.
func RowSet(ctx context.Context, n int, fn func(i int)) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				panic(&Canceled{Cause: context.Cause(ctx)})
			}
			fn(i)
		}
		return
	}
	t := pool()
	done := ctx.Done()
	var wg sync.WaitGroup
	var panicked atomic.Pointer[rowPanic]
	skipped := false
	for i := 0; i < n; i++ {
		if skipped {
			break
		}
		select {
		case <-done:
			skipped = true
			continue
		default:
		}
		select {
		case <-t:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { t <- struct{}{} }()
				defer func() {
					if p := recover(); p != nil {
						panicked.CompareAndSwap(nil, &rowPanic{val: p, stack: debug.Stack()})
					}
				}()
				fn(i)
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(fmt.Sprintf("%v\nrow goroutine stack:\n%s", p.val, p.stack))
	}
	if skipped {
		panic(&Canceled{Cause: context.Cause(ctx)})
	}
}

type rowPanic struct {
	val   any
	stack []byte
}
