// Package workpool holds the process-wide harness worker-token pool.
//
// Every concurrent harness in the repo — the experiment runner in
// internal/report and the chaos soak in internal/chaos — draws from
// this single pool, so total concurrency never exceeds the configured
// -j no matter which level the parallelism comes from. Callers gather
// results by index, which keeps output deterministic at any pool size.
package workpool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

var (
	poolMu sync.Mutex
	par    = 1
	tokens chan struct{}
)

func init() { SetParallelism(runtime.GOMAXPROCS(0)) }

// SetParallelism sizes the worker pool. j < 1 is treated as 1. It must
// not be called while work is running.
func SetParallelism(j int) {
	if j < 1 {
		j = 1
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	par = j
	tokens = make(chan struct{}, j)
	for i := 0; i < j; i++ {
		tokens <- struct{}{}
	}
}

// Parallelism returns the configured worker count.
func Parallelism() int {
	poolMu.Lock()
	defer poolMu.Unlock()
	return par
}

func pool() chan struct{} {
	poolMu.Lock()
	defer poolMu.Unlock()
	return tokens
}

// Acquire blocks for one worker token and returns the function that
// releases it. The release always returns the token to the channel it
// was taken from, so a concurrent SetParallelism cannot leak or
// duplicate tokens.
func Acquire() (release func()) {
	t := pool()
	<-t
	return func() { t <- struct{}{} }
}

// RowSet runs fn(0..n-1) — independent rows of one harness unit —
// concurrently on whatever tokens are idle, running the remainder
// inline on the calling goroutine. A panic in any row is re-raised on
// the calling goroutine (annotated with the row's stack), so the
// caller's own panic containment still works.
func RowSet(n int, fn func(i int)) {
	if n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	t := pool()
	var wg sync.WaitGroup
	var panicked atomic.Pointer[rowPanic]
	for i := 0; i < n; i++ {
		select {
		case <-t:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { t <- struct{}{} }()
				defer func() {
					if p := recover(); p != nil {
						panicked.CompareAndSwap(nil, &rowPanic{val: p, stack: debug.Stack()})
					}
				}()
				fn(i)
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(fmt.Sprintf("%v\nrow goroutine stack:\n%s", p.val, p.stack))
	}
}

type rowPanic struct {
	val   any
	stack []byte
}
