package workpool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

func resetPool(t *testing.T) {
	t.Cleanup(func() { SetParallelism(runtime.GOMAXPROCS(0)) })
}

// TestRowSetCompletesUncancelled pins the baseline: with a live
// context every index runs exactly once, at any pool size.
func TestRowSetCompletesUncancelled(t *testing.T) {
	resetPool(t)
	for _, j := range []int{1, 2, 8} {
		SetParallelism(j)
		ran := make([]int, 64)
		RowSet(context.Background(), len(ran), func(i int) { ran[i]++ })
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("j=%d: row %d ran %d times", j, i, n)
			}
		}
	}
}

// TestRowSetNilContext treats nil as Background.
func TestRowSetNilContext(t *testing.T) {
	resetPool(t)
	ran := make([]bool, 4)
	RowSet(nil, len(ran), func(i int) { ran[i] = true })
	for i, ok := range ran {
		if !ok {
			t.Fatalf("row %d skipped under nil context", i)
		}
	}
}

// TestRowSetCancelSkipsRemainingRows is the cooperative-cancellation
// contract: once the context is cancelled no further rows start, rows
// already dispatched finish, and RowSet panics *Canceled so the caller
// cannot mistake the incomplete row set for a finished one.
func TestRowSetCancelSkipsRemainingRows(t *testing.T) {
	resetPool(t)
	SetParallelism(1)
	ctx, cancel := context.WithCancel(context.Background())
	ran := make([]bool, 16)
	var p any
	func() {
		defer func() { p = recover() }()
		RowSet(ctx, len(ran), func(i int) {
			ran[i] = true
			if i == 3 {
				cancel()
			}
		})
	}()
	if p == nil {
		t.Fatal("cancelled RowSet did not panic")
	}
	c, ok := p.(*Canceled)
	if !ok {
		t.Fatalf("panic value %T, want *Canceled", p)
	}
	if !errors.Is(c.Cause, context.Canceled) {
		t.Errorf("cause = %v, want context.Canceled", c.Cause)
	}
	for i := 0; i <= 3; i++ {
		if !ran[i] {
			t.Errorf("row %d should have run before the cancel", i)
		}
	}
	for i := 5; i < len(ran); i++ {
		if ran[i] {
			t.Errorf("row %d ran after the cancel", i)
		}
	}
}

// TestRowSetCancelAfterLastRowIsComplete: a context cancelled only
// after every row has started must not fail the run — the row set is
// complete.
func TestRowSetCancelAfterLastRowIsComplete(t *testing.T) {
	resetPool(t)
	SetParallelism(1)
	ctx, cancel := context.WithCancel(context.Background())
	ran := make([]bool, 8)
	RowSet(ctx, len(ran), func(i int) {
		ran[i] = true
		if i == 7 {
			// Row 7 is dispatched last, so every row has started by now;
			// the cancel must not fail the (complete) row set.
			cancel()
		}
	})
	for i, ok := range ran {
		if !ok {
			t.Fatalf("row %d never ran", i)
		}
	}
}

// TestIsCanceled covers both arrival shapes: the sentinel itself and
// the re-raised row-goroutine string, with and without a deadline.
func TestIsCanceled(t *testing.T) {
	deadline := &Canceled{Cause: context.DeadlineExceeded}
	plain := &Canceled{Cause: context.Canceled}
	cases := []struct {
		name     string
		p        any
		canceled bool
		timeout  bool
	}{
		{"sentinel-canceled", plain, true, false},
		{"sentinel-deadline", deadline, true, true},
		{"string-canceled", fmt.Sprintf("%v\nrow goroutine stack:\n...", plain.Error()), true, false},
		{"string-deadline", fmt.Sprintf("%v\nrow goroutine stack:\n...", deadline.Error()), true, true},
		{"unrelated-panic", "kaboom", false, false},
		{"budget-panic", "clock: cycle budget exceeded: spent 2 of 1 simulated cycles", false, false},
	}
	for _, tc := range cases {
		canceled, timeout := IsCanceled(tc.p)
		if canceled != tc.canceled || timeout != tc.timeout {
			t.Errorf("%s: IsCanceled = (%v, %v), want (%v, %v)", tc.name, canceled, timeout, tc.canceled, tc.timeout)
		}
	}
}

// TestRowSetDeadline drives the timeout path end to end: an expired
// deadline surfaces as *Canceled with a DeadlineExceeded cause and no
// row ever starts.
func TestRowSetDeadline(t *testing.T) {
	resetPool(t)
	SetParallelism(1)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var p any
	func() {
		defer func() { p = recover() }()
		RowSet(ctx, 1000, func(i int) {
			t.Errorf("row %d ran under an expired deadline", i)
		})
	}()
	c, ok := p.(*Canceled)
	if !ok {
		t.Fatalf("panic value %T (%v), want *Canceled", p, p)
	}
	if !errors.Is(c.Cause, context.DeadlineExceeded) {
		t.Errorf("cause = %v, want DeadlineExceeded", c.Cause)
	}
	if !strings.Contains(c.Error(), "workpool: run canceled") {
		t.Errorf("error %q missing the fixed phrase", c.Error())
	}
}
