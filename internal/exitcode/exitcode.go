// Package exitcode is the repo-wide exit-status contract for the CLI
// tools. Historically every failure collapsed to 1, which made
// scripts/check.sh (and any orchestrator, including the mmud daemon's
// smoke tests) unable to tell a budget-tripped experiment from a
// contained panic from a failed chaos audit. The codes here are
// stable: scripts and CI match on the numeric values.
//
// Precedence when one run carries several failure classes: Panic
// dominates BudgetExceeded dominates Internal — a panic is the most
// actionable signal, a budget trip the next, and the generic class
// last. Usage errors (bad flags) short-circuit before any run starts.
package exitcode

const (
	// OK is success.
	OK = 0
	// Internal is a harness-level failure that fits no specific class:
	// I/O errors, invalid options discovered mid-run, contained
	// failures classified only as canceled/timeout.
	Internal = 1
	// Usage is a command-line usage error (mutually exclusive flags,
	// unknown experiment, missing argument).
	Usage = 2
	// BudgetExceeded means at least one experiment degraded to
	// FAILED(cycle-budget): a ledger charged past its simulated-cycle
	// watchdog and the runner contained the trip.
	BudgetExceeded = 3
	// Panic means at least one experiment degraded to FAILED(panic):
	// the runner contained a crash (including injected-fault
	// escalations that took the workload down).
	Panic = 4
	// AuditFailure means a soak/verification audit failed on an
	// otherwise-healthy run: an mmuchaos identity did not hold, a
	// consistency sweep came back dirty, or a reconciliation row
	// mismatched.
	AuditFailure = 5
)

// ForFailReasons maps the report harness's per-experiment FailReason
// strings to the dominant exit code: Panic over BudgetExceeded over
// Internal, OK when no reasons are present.
func ForFailReasons(reasons []string) int {
	code := OK
	for _, r := range reasons {
		switch r {
		case "panic":
			return Panic
		case "cycle-budget":
			if code < BudgetExceeded {
				code = BudgetExceeded
			}
		case "":
		default: // canceled, timeout, anything new
			if code < Internal {
				code = Internal
			}
		}
	}
	return code
}
