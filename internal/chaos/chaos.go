// Package chaos is the soak harness behind cmd/mmuchaos: it runs the
// standard workloads (lmbench, kbuild, stress) plus an escalation
// workload under a declarative fault schedule, then audits that every
// injected fault was detected and either repaired or deliberately
// escalated.
//
// The audits are exact identities, not statistical claims:
//
//	applied[tlb-flip]                          == MCRepairsTLB
//	applied[htab-flip] + applied[htab-resurrect] == MCRepairsHTAB
//	applied[bat-flip]                          == MCRepairsBAT
//	applied[cache-flip]                        == MCRepairsCache
//	applied[pte-flip]                          == MCEscalations
//	applied[spurious-mc]                       == MCSpurious
//	sum of the above                           == MachineChecks
//
// plus a clean post-run CheckConsistency and a fully-reconciled trace.
// Each section runs on its own machine with its own Injector seeded by
// DeriveSeed(seed, section index), so the report is byte-identical for
// a given schedule at any harness parallelism.
package chaos

import (
	"context"
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/faultinject"
	"mmutricks/internal/kbuild"
	"mmutricks/internal/kernel"
	"mmutricks/internal/lmbench"
	"mmutricks/internal/machine"
	"mmutricks/internal/mmtrace"
	"mmutricks/internal/trace"
	"mmutricks/internal/workpool"
)

// FormatVersion is the report format version.
const FormatVersion = 1

// Options selects what to soak.
type Options struct {
	// Workload is "lmbench", "kbuild", "stress", "escalate", or "all".
	Workload string
	// CPU is the clock.ModelByName spec (e.g. "604/185").
	CPU string
	// Config is the kernel.Named configuration.
	Config string
	// Iters scales the workloads, like mmutrace.
	Iters int
	// Schedule is the faultinject schedule text. The embedded seed is
	// the run seed; each section derives its own stream from it.
	Schedule string
}

// KindCount is one fault kind's injection tally in a section.
type KindCount struct {
	Kind    string `json:"kind"`
	Applied uint64 `json:"applied"`
	Skipped uint64 `json:"skipped"`
}

// SectionResult is one workload section's soak outcome.
type SectionResult struct {
	Name     string `json:"name"`
	Seed     uint64 `json:"seed"`
	Schedule string `json:"schedule"`
	OK       bool   `json:"ok"`
	// Failures lists every audit that failed, in a fixed order; empty
	// for a passing section.
	Failures []string    `json:"failures,omitempty"`
	Injected []KindCount `json:"injected"`

	MachineChecks uint64 `json:"machine_checks"`
	RepairsTLB    uint64 `json:"repairs_tlb"`
	RepairsHTAB   uint64 `json:"repairs_htab"`
	RepairsBAT    uint64 `json:"repairs_bat"`
	RepairsCache  uint64 `json:"repairs_cache"`
	Escalations   uint64 `json:"escalations"`
	Spurious      uint64 `json:"spurious"`

	Consistent bool   `json:"consistent"`
	Cycles     uint64 `json:"cycles"`
}

// Report is the versioned mmuchaos output.
type Report struct {
	Tool     string          `json:"tool"`
	Version  int             `json:"version"`
	Workload string          `json:"workload"`
	CPU      string          `json:"cpu"`
	Config   string          `json:"config"`
	Iters    int             `json:"iters"`
	Schedule string          `json:"schedule"`
	OK       bool            `json:"ok"`
	Sections []SectionResult `json:"sections"`
}

type sectionRun struct {
	name string
	// escalate marks the one section whose schedule keeps pte-flip:
	// page-table poison kills the victim task, so only the section
	// built around sacrificial tasks opts in.
	escalate bool
	run      func(k *kernel.Kernel)
}

// Run executes the soak and returns the report. An error means the
// harness itself could not run (bad options); audit failures are
// reported per section with Report.OK false. Cancelling ctx stops
// starting new sections (cooperative, section granularity); a
// cancelled run panics workpool.Canceled through RowSet, which the
// caller's containment (report.RunOne, the mmud daemon) classifies.
func Run(ctx context.Context, opts Options) (*Report, error) {
	model, ok := clock.ModelByName(opts.CPU)
	if !ok {
		return nil, fmt.Errorf("chaos: unknown cpu %q", opts.CPU)
	}
	cfg, ok := kernel.Named(opts.Config)
	if !ok {
		return nil, fmt.Errorf("chaos: unknown config %q", opts.Config)
	}
	base, err := faultinject.ParseSchedule(opts.Schedule)
	if err != nil {
		return nil, fmt.Errorf("chaos: schedule: %v", err)
	}
	if opts.Iters <= 0 {
		opts.Iters = 100
	}
	runs, err := sections(opts.Workload, opts.Iters)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Tool:     "mmuchaos",
		Version:  FormatVersion,
		Workload: opts.Workload,
		CPU:      model.Name,
		Config:   opts.Config,
		Iters:    opts.Iters,
		Schedule: base.String(),
		OK:       true,
		Sections: make([]SectionResult, len(runs)),
	}
	workpool.RowSet(ctx, len(runs), func(i int) {
		rep.Sections[i] = runSection(model, cfg, base, uint64(i), runs[i])
	})
	for i := range rep.Sections {
		if !rep.Sections[i].OK {
			rep.OK = false
		}
	}
	return rep, nil
}

// runSection soaks one workload section on a fresh machine.
func runSection(model clock.CPUModel, cfg kernel.Config, base faultinject.Schedule, salt uint64, sr sectionRun) SectionResult {
	sched := base
	sched.Seed = faultinject.DeriveSeed(base.Seed, salt)
	if !sr.escalate {
		// Page-table poison is unrepairable and kills its victim; only
		// the escalation section sacrifices tasks on purpose.
		sched.Weights[faultinject.PTEFlip] = 0
	}
	inj := faultinject.New(sched)
	m := machine.NewWithOptions(model, machine.Options{Injector: inj})
	m.Trc.Enable()
	before := m.Mon.Snapshot()
	k := kernel.New(m, cfg)

	res := SectionResult{Name: sr.name, Seed: sched.Seed, Schedule: sched.String()}
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	func() {
		defer func() {
			if r := recover(); r != nil {
				fail("workload panic: %v", r)
			}
		}()
		inj.Arm()
		sr.run(k)
	}()
	inj.Disarm()
	// Deliver stragglers whose corrupting access never reached another
	// kernel-level tick (e.g. a trailing physical access).
	func() {
		defer func() {
			if r := recover(); r != nil {
				fail("machine-check drain panic: %v", r)
			}
		}()
		k.DrainMachineChecks()
	}()

	applied, skipped := inj.Applied(), inj.Skipped()
	for kind := faultinject.Kind(0); kind < faultinject.NumKinds; kind++ {
		res.Injected = append(res.Injected, KindCount{
			Kind:    kind.String(),
			Applied: applied[kind],
			Skipped: skipped[kind],
		})
	}
	d := m.Mon.Delta(before)
	res.MachineChecks = d.MachineChecks
	res.RepairsTLB = d.MCRepairsTLB
	res.RepairsHTAB = d.MCRepairsHTAB
	res.RepairsBAT = d.MCRepairsBAT
	res.RepairsCache = d.MCRepairsCache
	res.Escalations = d.MCEscalations
	res.Spurious = d.MCSpurious
	res.Cycles = uint64(m.Led.Now())

	// The exact detect-and-repair identities.
	idents := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"repairs_tlb", d.MCRepairsTLB, applied[faultinject.TLBFlip]},
		{"repairs_htab", d.MCRepairsHTAB, applied[faultinject.HTABFlip] + applied[faultinject.HTABResurrect]},
		{"repairs_bat", d.MCRepairsBAT, applied[faultinject.BATFlip]},
		{"repairs_cache", d.MCRepairsCache, applied[faultinject.CacheFlip]},
		{"escalations", d.MCEscalations, applied[faultinject.PTEFlip]},
		{"spurious", d.MCSpurious, applied[faultinject.SpuriousMC]},
	}
	var raised uint64
	for _, id := range idents {
		if id.got != id.want {
			fail("identity %s: counter %d != applied %d", id.name, id.got, id.want)
		}
		raised += id.want
	}
	if d.MachineChecks != raised {
		fail("identity machine_checks: %d != %d (sum of MC-raising applied faults)", d.MachineChecks, raised)
	}

	if err := k.CheckConsistency(); err != nil {
		fail("post-run consistency: %v", err)
	} else {
		res.Consistent = true
	}
	for _, row := range mmtrace.Reconcile(m.Trc.Hists(), &d) {
		if !row.OK {
			fail("reconcile %s: trace %d != counter %d", row.Name, row.TraceTotal, row.Counter)
		}
	}
	res.OK = len(res.Failures) == 0
	return res
}

// sections builds the workload section list.
func sections(workload string, iters int) ([]sectionRun, error) {
	lm := func() []sectionRun {
		return []sectionRun{
			{name: "nullsys", run: func(k *kernel.Kernel) { lmbench.New(k).NullSyscall(iters) }},
			{name: "ctxsw", run: func(k *kernel.Kernel) { lmbench.New(k).CtxSwitch(2, 0, maxInt(2, iters/2)) }},
			{name: "pipelat", run: func(k *kernel.Kernel) { lmbench.New(k).PipeLatency(maxInt(2, iters/2)) }},
			{name: "mmaplat", run: func(k *kernel.Kernel) { lmbench.New(k).MmapLatency(1024, maxInt(2, iters/10)) }},
			{name: "pstart", run: func(k *kernel.Kernel) { lmbench.New(k).ProcStart(maxInt(2, iters/10)) }},
		}
	}
	kb := func() []sectionRun {
		kcfg := kbuild.Default()
		kcfg.Units = maxInt(2, iters/10)
		return []sectionRun{{name: "kbuild", run: func(k *kernel.Kernel) { kbuild.Run(k, kcfg) }}}
	}
	st := func() []sectionRun {
		pages := 512
		refs := maxInt(100, iters) * 100
		gen := func(name string, mk func(base arch.EffectiveAddr) trace.Generator) sectionRun {
			return sectionRun{name: name, run: func(k *kernel.Kernel) {
				img := k.LoadImage("stress", 2)
				t := k.Spawn(img)
				k.Switch(t)
				base := k.SysMmap(pages)
				g := mk(base)
				for i := 0; i < refs; i++ {
					k.UserRef(g.Next(), i%4 == 0)
				}
			}}
		}
		return []sectionRun{
			gen("sequential", func(b arch.EffectiveAddr) trace.Generator { return trace.NewSequential(b, pages) }),
			gen("strided", func(b arch.EffectiveAddr) trace.Generator { return trace.NewStrided(b, pages, 17) }),
			gen("workingset", func(b arch.EffectiveAddr) trace.Generator { return trace.NewWorkingSet(b, pages, 32, 90, 1) }),
			gen("pointer-chase", func(b arch.EffectiveAddr) trace.Generator { return trace.NewPointerChase(b, pages, 1) }),
			gen("zipfian", func(b arch.EffectiveAddr) trace.Generator { return trace.NewZipfian(b, pages, 1) }),
		}
	}
	esc := func() []sectionRun {
		return []sectionRun{{name: "escalate", escalate: true, run: escalateRun(iters)}}
	}
	switch workload {
	case "lmbench":
		return lm(), nil
	case "kbuild":
		return kb(), nil
	case "stress":
		return st(), nil
	case "escalate":
		return esc(), nil
	case "all":
		var all []sectionRun
		all = append(all, lm()...)
		all = append(all, kb()...)
		all = append(all, st()...)
		all = append(all, esc()...)
		return all, nil
	}
	return nil, fmt.Errorf("chaos: unknown workload %q (want lmbench, kbuild, stress, escalate, or all)", workload)
}

// escalateRun is the sacrificial-task workload for page-table ECC
// faults: a runner task (always current, so never a victim) keeps a
// population of forked children with mapped pages; poison lands in a
// child's page table, the machine check kills it, and the runner reaps
// and replaces it.
func escalateRun(iters int) func(k *kernel.Kernel) {
	return func(k *kernel.Kernel) {
		img := k.LoadImage("chaos-escalate", 4)
		runner := k.Spawn(img)
		k.Switch(runner)
		k.UserTouchPages(kernel.UserDataBase, 16)
		var children []*kernel.Task
		replenish := func() {
			live := children[:0]
			for _, c := range children {
				if c.State == kernel.TaskZombie {
					k.Wait(c)
					continue
				}
				live = append(live, c)
			}
			children = live
			for len(children) < 4 {
				children = append(children, k.Fork())
			}
		}
		rounds := maxInt(4, iters/4)
		for i := 0; i < rounds; i++ {
			replenish()
			addr := k.SysMmap(4)
			k.UserTouchPages(addr, 4)
			k.SysMunmap(addr, 4)
			k.UserRun(i%4, 200)
		}
		replenish()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
