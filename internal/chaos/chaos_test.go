package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"mmutricks/internal/workpool"
)

// marshal renders a report exactly like cmd/mmuchaos does.
func marshal(t *testing.T, rep *Report) []byte {
	t.Helper()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// TestDeterminismAcrossParallelism is the harness's core promise: the
// same options produce byte-identical JSON whether sections run on one
// worker or many, because every section owns its machine and its
// DeriveSeed-derived injector stream.
func TestDeterminismAcrossParallelism(t *testing.T) {
	opts := Options{
		Workload: "lmbench",
		CPU:      "604/185",
		Config:   "optimized",
		Iters:    30,
		Schedule: "seed=42 rate=2000ppm burst=1 mix=all",
	}
	old := workpool.Parallelism()
	defer workpool.SetParallelism(old)

	workpool.SetParallelism(1)
	seq, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("Run(-j1): %v", err)
	}
	workpool.SetParallelism(8)
	par, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("Run(-j8): %v", err)
	}

	a, b := marshal(t, seq), marshal(t, par)
	if !bytes.Equal(a, b) {
		t.Fatalf("report differs between -j1 and -j8:\n-j1: %s\n-j8: %s", a, b)
	}
	if !seq.OK {
		for _, s := range seq.Sections {
			t.Logf("section %s failures: %v", s.Name, s.Failures)
		}
		t.Fatal("soak audit failed")
	}
	var mc uint64
	for _, s := range seq.Sections {
		mc += s.MachineChecks
		if !s.Consistent {
			t.Errorf("section %s: post-run consistency sweep dirty", s.Name)
		}
	}
	if mc == 0 {
		t.Fatal("no machine checks delivered across the whole soak; schedule too quiet to test anything")
	}
}

// TestEscalateSectionKillsAndRecovers drives the sacrificial-task
// workload hard enough that page-table poison actually lands, and
// checks the kills are accounted as escalations with a clean audit.
func TestEscalateSectionKillsAndRecovers(t *testing.T) {
	rep, err := Run(context.Background(), Options{
		Workload: "escalate",
		CPU:      "604/185",
		Config:   "optimized",
		Iters:    60,
		Schedule: "seed=7 rate=20000ppm burst=1 mix=pte-flip:4,tlb-flip:1",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Sections) != 1 {
		t.Fatalf("got %d sections, want 1", len(rep.Sections))
	}
	s := rep.Sections[0]
	if !s.OK {
		t.Fatalf("escalate section failed: %v", s.Failures)
	}
	if s.Escalations == 0 {
		t.Fatal("no escalations: the pte-flip stream never found a victim")
	}
	if !s.Consistent {
		t.Fatal("post-run consistency sweep dirty after task kills")
	}
}

// TestNonEscalateSectionsDropPTEFlips verifies the schedule guard: a
// plain workload section zeroes the pte-flip weight, so even a
// pte-flip-heavy schedule produces no escalations there.
func TestNonEscalateSectionsDropPTEFlips(t *testing.T) {
	rep, err := Run(context.Background(), Options{
		Workload: "lmbench",
		CPU:      "604/185",
		Config:   "optimized",
		Iters:    20,
		Schedule: "seed=3 rate=20000ppm burst=1 mix=pte-flip:8,tlb-flip:1",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.OK {
		t.Fatalf("soak failed: %+v", rep.Sections)
	}
	for _, s := range rep.Sections {
		if s.Escalations != 0 {
			t.Errorf("section %s: %d escalations in a non-escalate section", s.Name, s.Escalations)
		}
		if !strings.Contains(s.Schedule, "mix=") {
			t.Errorf("section %s: schedule %q lost its mix", s.Name, s.Schedule)
		}
		for _, kc := range s.Injected {
			if kc.Kind == "pte-flip" && (kc.Applied != 0 || kc.Skipped != 0) {
				t.Errorf("section %s: pte-flip injected (applied=%d skipped=%d) despite zeroed weight",
					s.Name, kc.Applied, kc.Skipped)
			}
		}
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"cpu", Options{Workload: "lmbench", CPU: "z80/4", Config: "optimized", Schedule: "seed=1"}},
		{"config", Options{Workload: "lmbench", CPU: "604/185", Config: "turbo", Schedule: "seed=1"}},
		{"workload", Options{Workload: "solitaire", CPU: "604/185", Config: "optimized", Schedule: "seed=1"}},
		{"schedule", Options{Workload: "lmbench", CPU: "604/185", Config: "optimized", Schedule: "seed=1 rate=2000000"}},
	}
	for _, tc := range cases {
		if _, err := Run(context.Background(), tc.opts); err == nil {
			t.Errorf("%s: bad option accepted", tc.name)
		}
	}
}
