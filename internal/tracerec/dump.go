package tracerec

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL streams the recording as JSON Lines: a meta object first,
// then one object per event (annotated with its section), oldest first
// within each section. The format greps and pipes well.
func (r *Recording) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(struct {
		Meta Meta `json:"meta"`
	}{r.Meta}); err != nil {
		return err
	}
	type line struct {
		Section string `json:"section"`
		Ev
	}
	for _, s := range r.Sections {
		for _, e := range s.Events {
			if err := enc.Encode(line{Section: s.Name, Ev: e}); err != nil {
				return err
			}
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event ("X" = complete event). The
// format is what Perfetto and chrome://tracing load: ts/dur in
// microseconds, pid/tid grouping the timeline rows.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint32         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeMeta is a trace-event metadata record (process names).
type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Args map[string]any `json:"args"`
}

// WriteChromeTrace writes the recording in Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each
// section becomes a process (pid = section index), each task a thread;
// an event spans [Time-Cost, Time] converted to microseconds at the
// recorded clock rate.
func (r *Recording) WriteChromeTrace(w io.Writer) error {
	mhz := float64(r.Meta.MHz)
	if mhz == 0 {
		mhz = 1
	}
	us := func(cycles uint64) float64 { return float64(cycles) / mhz }

	out := struct {
		TraceEvents []any  `json:"traceEvents"`
		DisplayUnit string `json:"displayTimeUnit"`
	}{DisplayUnit: "ns"}
	for pid, s := range r.Sections {
		out.TraceEvents = append(out.TraceEvents, chromeMeta{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("%s [%s/%s]", s.Name, r.Meta.CPU, r.Meta.Config)},
		})
		for _, e := range s.Events {
			args := map[string]any{"seq": e.Seq, "ea": e.EA, "vsid": e.VSID}
			if e.Aux != 0 {
				args["aux"] = e.Aux
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Kind,
				Ph:   "X",
				Ts:   us(e.Time - e.Cost),
				Dur:  us(e.Cost),
				Pid:  pid,
				Tid:  e.Task,
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
