package tracerec

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL streams the recording as JSON Lines: a meta object first,
// then one object per event (annotated with its section), oldest first
// within each section. The format greps and pipes well.
func (r *Recording) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(struct {
		Meta Meta `json:"meta"`
	}{r.Meta}); err != nil {
		return err
	}
	type line struct {
		Section string `json:"section"`
		Ev
	}
	for _, s := range r.Sections {
		for _, e := range s.Events {
			if err := enc.Encode(line{Section: s.Name, Ev: e}); err != nil {
				return err
			}
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event ("X" = complete event). The
// format is what Perfetto and chrome://tracing load: ts/dur in
// microseconds, pid/tid grouping the timeline rows.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint32         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeMeta is a trace-event metadata record (process names).
type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Args map[string]any `json:"args"`
}

// chromeCounter is a counter-track sample ("C" event): Perfetto draws
// one stacked area chart per name from the args values.
type chromeCounter struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Args map[string]any `json:"args"`
}

// WriteChromeTrace writes the recording in Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each
// section becomes a process (pid = section index), each task a thread;
// an event spans [Time-Cost, Time] converted to microseconds at the
// recorded clock rate.
func (r *Recording) WriteChromeTrace(w io.Writer) error {
	mhz := float64(r.Meta.MHz)
	if mhz == 0 {
		mhz = 1
	}
	us := func(cycles uint64) float64 { return float64(cycles) / mhz }

	out := struct {
		TraceEvents []any  `json:"traceEvents"`
		DisplayUnit string `json:"displayTimeUnit"`
	}{DisplayUnit: "ns"}
	for pid, s := range r.Sections {
		out.TraceEvents = append(out.TraceEvents, chromeMeta{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("%s [%s/%s]", s.Name, r.Meta.CPU, r.Meta.Config)},
		})
		for _, e := range s.Events {
			args := map[string]any{"seq": e.Seq, "ea": e.EA, "vsid": e.VSID}
			if e.Aux != 0 {
				args["aux"] = e.Aux
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Kind,
				Ph:   "X",
				Ts:   us(e.Time - e.Cost),
				Dur:  us(e.Cost),
				Pid:  pid,
				Tid:  e.Task,
				Args: args,
			})
		}
		// Telemetry samples become counter tracks: per-interval phase
		// cycle deltas (a stacked where-did-the-time-go chart) and the
		// fault rate, on the same timebase as the event spans.
		if td := s.Telemetry; td != nil {
			prev := make([]uint64, len(td.PhaseNames))
			var prevMinor, prevMajor uint64
			for _, smp := range td.Samples {
				phases := map[string]any{}
				for i, name := range td.PhaseNames {
					var c uint64
					if i < len(smp.Phases) {
						c = smp.Phases[i]
					}
					phases[name] = c - prev[i]
					prev[i] = c
				}
				minor := counterAt(td, smp, "MinorFaults")
				major := counterAt(td, smp, "MajorFaults")
				out.TraceEvents = append(out.TraceEvents,
					chromeCounter{Name: "phase cycles", Ph: "C", Ts: us(smp.Cycle), Pid: pid, Args: phases},
					chromeCounter{Name: "faults", Ph: "C", Ts: us(smp.Cycle), Pid: pid, Args: map[string]any{
						"minor": minor - prevMinor, "major": major - prevMajor,
					}})
				prevMinor, prevMajor = minor, major
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
