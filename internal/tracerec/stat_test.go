package tracerec

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mmutricks/internal/report"
	"mmutricks/internal/telemetry"
)

// renderAll runs every mmustat renderer over a recording and returns
// the concatenated output — the byte string the determinism tests
// compare.
func renderAll(t *testing.T, rec *Recording) []byte {
	t.Helper()
	var buf bytes.Buffer
	StatTimeline(&buf, rec)
	StatPhases(&buf, rec)
	StatDiff(&buf, rec, rec)
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The acceptance criterion: recordings made with telemetry enabled,
// and every mmustat view of them, are byte-identical at -j 1 and -j 8
// on both the lmbench suite and the kernel compile.
func TestStatDeterministicAcrossParallelism(t *testing.T) {
	for _, wl := range []string{"lmbench", "kbuild"} {
		opts := RecordOptions{
			Workload: wl, CPU: "604/185", Config: "optimized", Iters: 20,
			Telemetry: true, SampleInterval: 1 << 16, SampleCapacity: 128,
		}
		report.SetParallelism(1)
		recSerial := record(t, opts)
		serialBytes := serialize(t, recSerial)
		serialOut := renderAll(t, recSerial)

		report.SetParallelism(8)
		recPar := record(t, opts)
		report.SetParallelism(1)
		if !bytes.Equal(serialBytes, serialize(t, recPar)) {
			t.Fatalf("%s: telemetry recording differs between -j 1 and -j 8", wl)
		}
		if !bytes.Equal(serialOut, renderAll(t, recPar)) {
			t.Fatalf("%s: mmustat output differs between -j 1 and -j 8", wl)
		}
	}
}

// Telemetry recordings round-trip through save/load, and recordings
// made without telemetry keep the field out of the JSON entirely.
func TestTelemetryRoundTripAndOmission(t *testing.T) {
	plain := record(t, RecordOptions{Workload: "lmbench", CPU: "604/185", Config: "optimized", Iters: 5})
	if bytes.Contains(serialize(t, plain), []byte(`"telemetry"`)) {
		t.Fatal("plain recording serialized a telemetry field")
	}
	if plain.HasTelemetry() {
		t.Fatal("plain recording claims telemetry")
	}

	rec := record(t, RecordOptions{
		Workload: "lmbench", CPU: "604/185", Config: "optimized", Iters: 5,
		Telemetry: true, SampleInterval: 1 << 16,
	})
	if !rec.HasTelemetry() {
		t.Fatal("telemetry recording missing telemetry sections")
	}
	data := serialize(t, rec)
	var back Recording
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, serialize(t, &back)) {
		t.Fatal("telemetry recording changed across a JSON round trip")
	}
}

// The sample ring keeps the first SampleCapacity samples and counts
// the rest as dropped, so a truncated timeline still differenceable
// from its origin.
func TestTelemetrySampleRingOverflow(t *testing.T) {
	rec := record(t, RecordOptions{
		Workload: "kbuild", CPU: "604/185", Config: "optimized", Iters: 40,
		Telemetry: true, SampleInterval: 1 << 12, SampleCapacity: 8,
	})
	td := rec.Sections[0].Telemetry
	if len(td.Samples) != 8 {
		t.Fatalf("ring holds %d samples, want its capacity 8", len(td.Samples))
	}
	if td.Dropped == 0 {
		t.Fatal("a 4Ki-cycle interval over a kbuild run must overflow an 8-slot ring")
	}
	for i := 1; i < len(td.Samples); i++ {
		if td.Samples[i].Boundary <= td.Samples[i-1].Boundary {
			t.Fatalf("sample %d boundary %d not after %d", i, td.Samples[i].Boundary, td.Samples[i-1].Boundary)
		}
	}
}

// The serialized phase totals obey the same conservation identity the
// live ledger proves: they sum to the cycles the section consumed.
func TestTelemetryPhaseTotalsConserve(t *testing.T) {
	rec := record(t, RecordOptions{
		Workload: "stress", CPU: "603/133", Config: "optimized", Iters: 20,
		Telemetry: true,
	})
	for _, s := range rec.Sections {
		td := s.Telemetry
		if td == nil {
			t.Fatalf("section %s: no telemetry", s.Name)
		}
		var attributed uint64
		for _, c := range td.PhaseCycles {
			attributed += c
		}
		var tasks uint64
		for _, row := range td.Tasks {
			tasks += row.Cycles
		}
		if tasks != attributed {
			t.Errorf("section %s: task attribution %d != phase total %d", s.Name, tasks, attributed)
		}
		var mms uint64
		for _, row := range td.MMs {
			mms += row.Cycles
		}
		if mms != attributed {
			t.Errorf("section %s: mm attribution %d != phase total %d", s.Name, mms, attributed)
		}
	}
}

// Every phase-table row and every derived-rate line comes out of
// StatPhases; StatTimeline carries the sample count it promises.
func TestStatRenderersCoverPhases(t *testing.T) {
	rec := record(t, RecordOptions{
		Workload: "lmbench", CPU: "604/185", Config: "optimized", Iters: 20,
		Telemetry: true, SampleInterval: 1 << 14,
	})
	var phases bytes.Buffer
	StatPhases(&phases, rec)
	out := phases.String()
	for _, name := range telemetry.PhaseNames() {
		if !strings.Contains(out, name) {
			t.Errorf("StatPhases output missing phase %q", name)
		}
	}
	for _, want := range []string{"derived rates:", "faults / Mcycle", "per-task cycles", "p999<="} {
		if !strings.Contains(out, want) {
			t.Errorf("StatPhases output missing %q", want)
		}
	}

	var timeline bytes.Buffer
	StatTimeline(&timeline, rec)
	if !strings.Contains(timeline.String(), "dominant") {
		t.Error("StatTimeline missing its header")
	}

	var chrome bytes.Buffer
	if err := rec.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"ph":"C"`) {
		t.Error("chrome dump of a telemetry recording missing counter events")
	}
}
