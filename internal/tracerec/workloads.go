package tracerec

import (
	"context"
	"fmt"

	"mmutricks/internal/arch"
	"mmutricks/internal/clock"
	"mmutricks/internal/kbuild"
	"mmutricks/internal/kernel"
	"mmutricks/internal/lmbench"
	"mmutricks/internal/machine"
	"mmutricks/internal/mmtrace"
	"mmutricks/internal/report"
	"mmutricks/internal/telemetry"
	"mmutricks/internal/trace"
)

// RecordOptions selects what to record.
type RecordOptions struct {
	// Workload is "lmbench", "kbuild", or "stress".
	Workload string
	// CPU is the clock.ModelByName spec (e.g. "604/185").
	CPU string
	// Config is the kernel.Named configuration.
	Config string
	// Iters scales the workload (lmbench iteration count, kbuild
	// units x10, stress references x100).
	Iters int
	// Capacity overrides the trace ring size (0 = default).
	Capacity int
	// Telemetry enables the phase ledger and interval sampler for each
	// section (the mmustat recording mode).
	Telemetry bool
	// SampleInterval is the sampler period in simulated cycles
	// (0 = telemetry.DefaultSampleInterval); SampleCapacity is the
	// sample-ring size (0 = telemetry.DefaultSampleCapacity). Both are
	// ignored unless Telemetry is set.
	SampleInterval int
	SampleCapacity int
}

// Record runs the selected workload with tracing enabled and returns
// the capture. Sections run under report.RowSet, so -j (set via
// report.SetParallelism) parallelizes across sections while the
// result, assembled by index, stays byte-identical at any -j.
func Record(ctx context.Context, opts RecordOptions) (*Recording, error) {
	model, ok := clock.ModelByName(opts.CPU)
	if !ok {
		return nil, fmt.Errorf("tracerec: unknown cpu %q", opts.CPU)
	}
	cfg, ok := kernel.Named(opts.Config)
	if !ok {
		return nil, fmt.Errorf("tracerec: unknown config %q", opts.Config)
	}
	if opts.Iters <= 0 {
		opts.Iters = 100
	}

	type sectionRun struct {
		name string
		run  func(k *kernel.Kernel)
	}
	var runs []sectionRun
	switch opts.Workload {
	case "lmbench":
		iters := opts.Iters
		runs = []sectionRun{
			{"nullsys", func(k *kernel.Kernel) { lmbench.New(k).NullSyscall(iters) }},
			{"ctxsw", func(k *kernel.Kernel) { lmbench.New(k).CtxSwitch(2, 0, maxInt(2, iters/2)) }},
			{"pipelat", func(k *kernel.Kernel) { lmbench.New(k).PipeLatency(maxInt(2, iters/2)) }},
			{"mmaplat", func(k *kernel.Kernel) { lmbench.New(k).MmapLatency(1024, maxInt(2, iters/10)) }},
			{"pstart", func(k *kernel.Kernel) { lmbench.New(k).ProcStart(maxInt(2, iters/10)) }},
		}
	case "kbuild":
		kcfg := kbuild.Default()
		kcfg.Units = maxInt(2, opts.Iters/10)
		runs = []sectionRun{
			{"kbuild", func(k *kernel.Kernel) { kbuild.Run(k, kcfg) }},
		}
	case "stress":
		pages := 512
		refs := maxInt(100, opts.Iters) * 100
		gen := func(mk func(base arch.EffectiveAddr) trace.Generator) func(k *kernel.Kernel) {
			return func(k *kernel.Kernel) {
				img := k.LoadImage("stress", 2)
				t := k.Spawn(img)
				k.Switch(t)
				base := k.SysMmap(pages)
				g := mk(base)
				for i := 0; i < refs; i++ {
					k.UserRef(g.Next(), i%4 == 0)
				}
			}
		}
		runs = []sectionRun{
			{"sequential", gen(func(b arch.EffectiveAddr) trace.Generator { return trace.NewSequential(b, pages) })},
			{"strided", gen(func(b arch.EffectiveAddr) trace.Generator { return trace.NewStrided(b, pages, 17) })},
			{"workingset", gen(func(b arch.EffectiveAddr) trace.Generator { return trace.NewWorkingSet(b, pages, 32, 90, 1) })},
			{"pointer-chase", gen(func(b arch.EffectiveAddr) trace.Generator { return trace.NewPointerChase(b, pages, 1) })},
			{"zipfian", gen(func(b arch.EffectiveAddr) trace.Generator { return trace.NewZipfian(b, pages, 1) })},
		}
	default:
		return nil, fmt.Errorf("tracerec: unknown workload %q (want lmbench, kbuild, or stress)", opts.Workload)
	}

	rec := &Recording{
		Meta: Meta{
			Tool:     "mmutrace",
			Version:  FormatVersion,
			Workload: opts.Workload,
			CPU:      model.Name,
			Config:   opts.Config,
			MHz:      model.MHz,
			Capacity: capacityOf(opts.Capacity),
			Kinds:    KindNames(),
		},
		Sections: make([]Section, len(runs)),
	}
	errs := make([]error, len(runs))
	report.RowSet(ctx, len(runs), func(i int) {
		m := machine.NewWithOptions(model, machine.Options{TraceCapacity: opts.Capacity})
		// Enable before boot and snapshot at the same instant: the
		// section's counter delta then covers exactly the traced
		// window, so the histograms (and the phase-entry identities)
		// reconcile.
		m.Trc.Enable()
		if opts.Telemetry {
			iv := clock.Cycles(opts.SampleInterval)
			if iv == 0 {
				iv = telemetry.DefaultSampleInterval
			}
			m.Ph.Enable(telemetry.Options{SampleInterval: iv, SampleCapacity: opts.SampleCapacity})
		}
		before := m.Mon.Snapshot()
		k := kernel.New(m, cfg)
		runs[i].run(k)
		if err := k.CheckConsistency(); err != nil {
			errs[i] = fmt.Errorf("tracerec: section %s: %w", runs[i].name, err)
			return
		}
		rec.Sections[i] = SectionFrom(runs[i].name, m.Trc, m.Mon.Delta(before))
		if opts.Telemetry {
			rec.Sections[i].Telemetry = TelemetryFrom(m.Ph)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rec, nil
}

func capacityOf(c int) int {
	if c <= 0 {
		return mmtrace.DefaultCapacity
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
