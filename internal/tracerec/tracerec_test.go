package tracerec

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmutricks/internal/report"
)

func record(t *testing.T, opts RecordOptions) *Recording {
	t.Helper()
	rec, err := Record(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func serialize(t *testing.T, rec *Recording) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Two identical runs must produce byte-identical recordings at any -j:
// the PR 1 determinism guarantee extended to the tracing subsystem.
func TestRecordDeterministicAcrossParallelism(t *testing.T) {
	opts := RecordOptions{Workload: "lmbench", CPU: "604/185", Config: "optimized", Iters: 10}

	report.SetParallelism(1)
	serial := serialize(t, record(t, opts))
	report.SetParallelism(4)
	defer report.SetParallelism(1)
	parallel := serialize(t, record(t, opts))
	parallel2 := serialize(t, record(t, opts))

	if !bytes.Equal(serial, parallel) {
		t.Fatal("recording differs between -j 1 and -j 4")
	}
	if !bytes.Equal(parallel, parallel2) {
		t.Fatal("two identical -j 4 recordings differ")
	}
}

// The acceptance criterion: an lmbench recording's per-class histogram
// totals reconcile with the hwmon counter deltas of the same run.
func TestRecordReconcilesWithCounters(t *testing.T) {
	for _, cfg := range []string{"unoptimized", "optimized", "optimized+htab"} {
		for _, cpu := range []string{"603/133", "604/185"} {
			rec := record(t, RecordOptions{Workload: "lmbench", CPU: cpu, Config: cfg, Iters: 20})
			var buf bytes.Buffer
			if n := Summarize(&buf, rec, 5); n != 0 {
				t.Errorf("%s/%s: %d reconciliation mismatches:\n%s", cpu, cfg, n,
					grepLines(buf.String(), "MISMATCH"))
			}
		}
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rec := record(t, RecordOptions{Workload: "stress", CPU: "603/133", Config: "optimized", Iters: 10, Capacity: 256})
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialize(t, rec), serialize(t, got)) {
		t.Fatal("recording changed across save/load")
	}
	if got.Meta.Capacity != 256 {
		t.Fatalf("capacity = %d, want 256", got.Meta.Capacity)
	}
}

func TestLoadRejectsForeignFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.json")
	if err := writeFile(path, `{"meta":{"tool":"other","version":9}}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a foreign file")
	}
}

func TestDumpFormats(t *testing.T) {
	rec := record(t, RecordOptions{Workload: "lmbench", CPU: "604/185", Config: "optimized", Iters: 5})

	var jsonl bytes.Buffer
	if err := rec.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(jsonl.String(), "\n")
	var events int
	for _, s := range rec.Sections {
		events += len(s.Events)
	}
	if lines != events+1 {
		t.Fatalf("JSONL has %d lines, want %d (meta + one per event)", lines, events+1)
	}

	var chrome bytes.Buffer
	if err := rec.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	out := chrome.String()
	if !strings.Contains(out, `"traceEvents"`) || !strings.Contains(out, `"ph":"X"`) {
		t.Fatal("chrome dump missing traceEvents/X records")
	}
}

func TestRecordRejectsBadOptions(t *testing.T) {
	if _, err := Record(context.Background(), RecordOptions{Workload: "nope", CPU: "604/185", Config: "optimized"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Record(context.Background(), RecordOptions{Workload: "lmbench", CPU: "bogus", Config: "optimized"}); err == nil {
		t.Fatal("unknown cpu accepted")
	}
	if _, err := Record(context.Background(), RecordOptions{Workload: "lmbench", CPU: "604/185", Config: "bogus"}); err == nil {
		t.Fatal("unknown config accepted")
	}
}

func TestDiffRunsAndMentionsEveryActiveKind(t *testing.T) {
	a := record(t, RecordOptions{Workload: "lmbench", CPU: "604/185", Config: "optimized", Iters: 5})
	b := record(t, RecordOptions{Workload: "lmbench", CPU: "604/185", Config: "unoptimized", Iters: 5})
	var buf bytes.Buffer
	Diff(&buf, a, b)
	out := buf.String()
	for name := range a.Sections[0].Hists {
		if !strings.Contains(out, name) {
			t.Errorf("diff output missing active kind %q", name)
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
