// Package tracerec records, serializes, and analyzes mmtrace event
// streams. It sits above the simulation packages: internal/mmtrace is
// the in-machine ring buffer the hot paths emit into; tracerec runs
// whole workloads with tracing enabled, snapshots the result into a
// serializable Recording, and implements the dump/summarize/diff
// analyses behind cmd/mmutrace.
package tracerec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"mmutricks/internal/hwmon"
	"mmutricks/internal/mmtrace"
	"mmutricks/internal/telemetry"
)

// FormatVersion stamps recordings so readers can reject files written
// by an incompatible tool.
const FormatVersion = 1

// Meta describes how a recording was made.
type Meta struct {
	Tool     string `json:"tool"`
	Version  int    `json:"version"`
	Workload string `json:"workload"`
	CPU      string `json:"cpu"`
	Config   string `json:"config"`
	MHz      int    `json:"mhz"`
	Capacity int    `json:"capacity"`
	// Kinds lists every event-kind name the writer knew, so readers
	// can detect vocabulary drift.
	Kinds []string `json:"kinds"`
}

// Ev is one serialized event. EA is hex text so dumps read naturally.
type Ev struct {
	Seq  uint64 `json:"seq"`
	Time uint64 `json:"t"`
	Cost uint64 `json:"cost"`
	Kind string `json:"kind"`
	Task uint32 `json:"task"`
	VSID uint32 `json:"vsid"`
	EA   string `json:"ea"`
	Aux  uint32 `json:"aux,omitempty"`
}

// Section is one traced window — one benchmark of a suite, one kbuild
// run, one generator sweep — with its own machine, so its counters and
// events reconcile independently.
type Section struct {
	Name string `json:"name"`
	// Emitted counts every event of the window; Dropped is how many
	// the ring overwrote (Events holds Emitted-Dropped entries).
	Emitted uint64 `json:"emitted"`
	Dropped uint64 `json:"dropped"`
	// Counters is the hwmon delta over the window, for reconciliation.
	Counters hwmon.Counters `json:"counters"`
	// Hists holds the per-event-class cost histograms, nonzero
	// classes only, keyed by kind name.
	Hists map[string]mmtrace.Hist `json:"hists"`
	// Tasks is the per-task attribution.
	Tasks []mmtrace.TaskStat `json:"tasks,omitempty"`
	// Events is the ring contents, oldest first.
	Events []Ev `json:"events"`
	// Telemetry holds the phase-ledger capture when the recording was
	// made with telemetry enabled (mmustat record); nil otherwise, and
	// omitted from the JSON so plain mmutrace recordings are unchanged.
	Telemetry *TelemetryData `json:"telemetry,omitempty"`
}

// TelemetryData is one section's serialized phase-ledger capture:
// end-of-run phase totals, the deterministic interval samples, and the
// per-task/per-mm cycle attribution. Phase and counter values are bare
// arrays aligned with the stored name vectors, so the format survives
// vocabulary growth on both axes.
type TelemetryData struct {
	// Interval is the sampler period in simulated cycles.
	Interval uint64 `json:"interval"`
	// PhaseNames names the indices of PhaseCycles, PhaseEnters, and
	// every sample's Phases array.
	PhaseNames  []string `json:"phase_names"`
	PhaseCycles []uint64 `json:"phase_cycles"`
	PhaseEnters []uint64 `json:"phase_enters"`
	// CounterNames names the indices of every sample's Counters array.
	CounterNames []string `json:"counter_names"`
	// Samples is the interval timeline, oldest first; Dropped counts
	// boundary crossings that arrived after the sample ring filled.
	Samples []SampleData `json:"samples,omitempty"`
	Dropped uint64       `json:"dropped"`
	// Tasks and MMs are the per-task and per-address-space attributed
	// cycles, in ID order.
	Tasks []AttrData `json:"tasks,omitempty"`
	MMs   []AttrData `json:"mms,omitempty"`
}

// SampleData is one serialized interval sample: cumulative state at
// the first attribution point at or after Boundary.
type SampleData struct {
	Cycle    uint64   `json:"cycle"`
	Boundary uint64   `json:"boundary"`
	Task     uint32   `json:"task"`
	MM       uint32   `json:"mm"`
	Phases   []uint64 `json:"phases"`
	Counters []uint64 `json:"counters"`
}

// AttrData is one per-task or per-mm attribution row.
type AttrData struct {
	ID     uint32 `json:"id"`
	Cycles uint64 `json:"cycles"`
}

// TelemetryFrom snapshots an enabled phase ledger into its serialized
// form. The caller is expected to have stopped attributing (end of the
// traced window); Sync folds the in-flight span remainder in first.
func TelemetryFrom(p *telemetry.Phases) *TelemetryData {
	p.Sync()
	td := &TelemetryData{
		Interval:     uint64(p.Interval()),
		PhaseNames:   telemetry.PhaseNames(),
		PhaseCycles:  make([]uint64, telemetry.NumPhases),
		PhaseEnters:  make([]uint64, telemetry.NumPhases),
		CounterNames: hwmon.CounterNames(),
		Dropped:      p.Dropped(),
	}
	for _, ph := range telemetry.AllPhases {
		td.PhaseCycles[ph] = uint64(p.Cycles(ph))
		td.PhaseEnters[ph] = p.Enters(ph)
	}
	for _, s := range p.Samples() {
		td.Samples = append(td.Samples, SampleData{
			Cycle:    s.Cycle,
			Boundary: s.Boundary,
			Task:     s.Task,
			MM:       s.MM,
			Phases:   append([]uint64(nil), s.Phases[:]...),
			Counters: s.Counters.Values(),
		})
	}
	for _, row := range p.TaskAttribution() {
		td.Tasks = append(td.Tasks, AttrData{ID: row.ID, Cycles: row.Cycles})
	}
	for _, row := range p.MMAttribution() {
		td.MMs = append(td.MMs, AttrData{ID: row.ID, Cycles: row.Cycles})
	}
	return td
}

// Recording is a full capture: metadata plus one section per traced
// window.
type Recording struct {
	Meta     Meta      `json:"meta"`
	Sections []Section `json:"sections"`
}

// SectionFrom snapshots a tracer and its counter delta into a Section.
func SectionFrom(name string, tr *mmtrace.Tracer, delta hwmon.Counters) Section {
	s := Section{
		Name:     name,
		Emitted:  tr.Emitted(),
		Dropped:  tr.Dropped(),
		Counters: delta,
		Hists:    map[string]mmtrace.Hist{},
	}
	hists := tr.Hists()
	for k := mmtrace.Kind(0); k < mmtrace.NumKinds; k++ {
		if hists[k].Count > 0 {
			s.Hists[k.String()] = hists[k]
		}
	}
	s.Tasks = tr.TaskStats()
	seq := tr.Dropped()
	for _, e := range tr.Events() {
		s.Events = append(s.Events, Ev{
			Seq:  seq,
			Time: uint64(e.Time),
			Cost: uint64(e.Cost),
			Kind: e.Kind.String(),
			Task: e.Task,
			VSID: uint32(e.VSID),
			EA:   fmt.Sprintf("%#x", uint32(e.EA)),
			Aux:  e.Aux,
		})
		seq++
	}
	return s
}

// KindNames returns every kind name in Kind order.
func KindNames() []string {
	names := make([]string, mmtrace.NumKinds)
	for k := mmtrace.Kind(0); k < mmtrace.NumKinds; k++ {
		names[k] = k.String()
	}
	return names
}

// Write serializes the recording as indented JSON. Output is
// byte-deterministic: map keys sort, and everything else is
// slice-ordered.
func (r *Recording) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// Save writes the recording to a file.
func (r *Recording) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a recording back.
func Load(path string) (*Recording, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Recording
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("tracerec: %s: %w", path, err)
	}
	if r.Meta.Tool != "mmutrace" || r.Meta.Version != FormatVersion {
		return nil, fmt.Errorf("tracerec: %s: not an mmutrace v%d recording (tool %q version %d)",
			path, FormatVersion, r.Meta.Tool, r.Meta.Version)
	}
	return &r, nil
}

// hist retrieves a section's histogram for a kind name (zero when the
// class never fired).
func (s *Section) hist(name string) mmtrace.Hist { return s.Hists[name] }

// HistArray rebuilds the dense per-kind array mmtrace.Reconcile wants.
func (s *Section) HistArray() *[mmtrace.NumKinds]mmtrace.Hist {
	var h [mmtrace.NumKinds]mmtrace.Hist
	for name, v := range s.Hists { //mmutricks:nondet-ok each write lands at its fixed kind index; order cannot show
		if k, ok := mmtrace.KindByName(name); ok {
			h[k] = v
		}
	}
	return &h
}

// sortedHistNames returns the section's nonzero kind names in Kind
// order (stable across runs; map iteration is not).
func (s *Section) sortedHistNames() []string {
	names := make([]string, 0, len(s.Hists))
	for name := range s.Hists { //mmutricks:nondet-ok collection order is erased by the Kind-order sort below
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, _ := mmtrace.KindByName(names[i])
		b, _ := mmtrace.KindByName(names[j])
		return a < b
	})
	return names
}
