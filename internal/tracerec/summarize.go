package tracerec

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"mmutricks/internal/mmtrace"
	"mmutricks/internal/telemetry"
)

// addressedKinds are the event classes whose EA names a virtual page a
// workload actually touched — the ones that make sense to rank pages
// by.
var addressedKinds = map[string]bool{
	"tlb-miss":    true,
	"soft-reload": true,
	"minor-fault": true,
	"major-fault": true,
	"flush-page":  true,
}

// Summarize writes the human-readable analysis of a recording:
// per-event-class cycle-cost histograms, the reconciliation of trace
// totals against the hwmon counters, per-task attribution, the top-N
// hottest pages, and TLB-miss inter-arrival times. It returns how many
// reconciliation rows mismatched (0 = the trace accounts for every
// counted event).
func Summarize(w io.Writer, r *Recording, topN int) int {
	fmt.Fprintf(w, "mmutrace summary: workload=%s cpu=%s config=%s capacity=%d\n",
		r.Meta.Workload, r.Meta.CPU, r.Meta.Config, r.Meta.Capacity)

	mismatches := 0
	for _, s := range r.Sections {
		fmt.Fprintf(w, "\n== section %s: %d events emitted, %d dropped by the ring ==\n",
			s.Name, s.Emitted, s.Dropped)

		// Per-class histogram table. The percentile columns are log2
		// bucket upper bounds (shared helper with the telemetry
		// sampler), so they are exact to within one power of two.
		fmt.Fprintf(w, "%-20s %10s %14s %10s %8s %8s %8s\n",
			"event class", "count", "cycles", "mean", "p50<=", "p99<=", "p999<=")
		for _, name := range s.sortedHistNames() {
			h := s.hist(name)
			ps := telemetry.Percentiles(h.Buckets[:], 0.50, 0.99, 0.999)
			fmt.Fprintf(w, "%-20s %10d %14d %10.1f %8d %8d %8d\n",
				name, h.Count, h.CostTotal, h.Mean(), ps[0], ps[1], ps[2])
			writeBuckets(w, &h)
		}

		// Reconciliation against the hwmon counter delta.
		rows := mmtrace.Reconcile(s.HistArray(), &s.Counters)
		bad := 0
		for _, row := range rows {
			if !row.OK {
				bad++
				fmt.Fprintf(w, "RECONCILE MISMATCH %-24s trace=%d counter=%d\n",
					row.Name, row.TraceTotal, row.Counter)
			}
		}
		if bad == 0 {
			fmt.Fprintf(w, "reconcile: %d rows OK (trace totals == counter deltas)\n", len(rows))
		}
		mismatches += bad

		if len(s.Tasks) > 1 {
			fmt.Fprintf(w, "per-task: ")
			for i, t := range s.Tasks {
				if i > 0 {
					fmt.Fprintf(w, ", ")
				}
				fmt.Fprintf(w, "pid %d: %d ev/%d cyc", t.PID, t.Events, t.CostTotal)
			}
			fmt.Fprintln(w)
		}
	}

	writeHotPages(w, r, topN)
	writeInterArrival(w, r)
	return mismatches
}

// writeBuckets renders one histogram's nonzero log2 buckets with
// proportional bars.
func writeBuckets(w io.Writer, h *mmtrace.Hist) {
	var maxB uint64
	for _, b := range h.Buckets {
		if b > maxB {
			maxB = b
		}
	}
	if maxB == 0 {
		return
	}
	for i, b := range h.Buckets {
		if b == 0 {
			continue
		}
		bar := int(b * 40 / maxB)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(w, "    %12s cyc %10d %s\n", mmtrace.BucketLabel(i), b, strings.Repeat("#", bar))
	}
}

// pageOf parses an event's hex EA and returns its page number.
func pageOf(e Ev) (uint32, bool) {
	v, err := strconv.ParseUint(strings.TrimPrefix(e.EA, "0x"), 16, 32)
	if err != nil {
		return 0, false
	}
	return uint32(v >> 12), true
}

// writeHotPages ranks the pages behind the address-bearing events.
// Ranking uses the ring contents, so on an overflowed recording it
// reflects the trailing window (the histograms above stay complete).
func writeHotPages(w io.Writer, r *Recording, topN int) {
	if topN <= 0 {
		topN = 10
	}
	counts := map[uint32]uint64{}
	for _, s := range r.Sections {
		for _, e := range s.Events {
			if !addressedKinds[e.Kind] {
				continue
			}
			if pg, ok := pageOf(e); ok {
				counts[pg]++
			}
		}
	}
	if len(counts) == 0 {
		return
	}
	type pageCount struct {
		page uint32
		n    uint64
	}
	ranked := make([]pageCount, 0, len(counts))
	for pg, n := range counts { //mmutricks:nondet-ok collection order is erased by the count/page sort below
		ranked = append(ranked, pageCount{pg, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].page < ranked[j].page
	})
	if len(ranked) > topN {
		ranked = ranked[:topN]
	}
	fmt.Fprintf(w, "\n== top %d hottest pages (tlb-miss/reload/fault/flush events in the ring) ==\n", len(ranked))
	for _, pc := range ranked {
		fmt.Fprintf(w, "  page %#010x  %6d events\n", pc.page<<12, pc.n)
	}
}

// writeInterArrival prints the log2 distribution of cycles between
// consecutive TLB misses — the paper's miss-pressure signature.
func writeInterArrival(w io.Writer, r *Recording) {
	var buckets [mmtrace.HistBuckets]uint64
	var n uint64
	for _, s := range r.Sections {
		var last uint64
		have := false
		for _, e := range s.Events {
			if e.Kind != "tlb-miss" {
				continue
			}
			if have {
				gap := e.Time - last
				b := bits.Len64(gap)
				if b >= mmtrace.HistBuckets {
					b = mmtrace.HistBuckets - 1
				}
				buckets[b]++
				n++
			}
			last = e.Time
			have = true
		}
	}
	if n == 0 {
		return
	}
	fmt.Fprintf(w, "\n== tlb-miss inter-arrival (cycles between consecutive misses, %d gaps) ==\n", n)
	h := mmtrace.Hist{Buckets: buckets, Count: n}
	writeBuckets(w, &h)
}

// Diff compares two recordings class by class: aggregate event counts
// and cycle totals across all sections, with the change between them.
func Diff(w io.Writer, a, b *Recording) {
	fmt.Fprintf(w, "mmutrace diff: A=%s/%s/%s  B=%s/%s/%s\n",
		a.Meta.Workload, a.Meta.CPU, a.Meta.Config,
		b.Meta.Workload, b.Meta.CPU, b.Meta.Config)
	fmt.Fprintf(w, "%-20s %12s %12s %9s   %14s %14s\n",
		"event class", "count A", "count B", "Δcount", "cycles A", "cycles B")

	agg := func(r *Recording) map[string]mmtrace.Hist {
		out := map[string]mmtrace.Hist{}
		for _, s := range r.Sections {
			for name, h := range s.Hists { //mmutricks:nondet-ok sums are commutative and the printer walks KindNames order
				t := out[name]
				t.Count += h.Count
				t.CostTotal += h.CostTotal
				t.AuxTotal += h.AuxTotal
				out[name] = t
			}
		}
		return out
	}
	ha, hb := agg(a), agg(b)
	for _, name := range KindNames() {
		va, okA := ha[name]
		vb, okB := hb[name]
		if !okA && !okB {
			continue
		}
		fmt.Fprintf(w, "%-20s %12d %12d %+9d   %14d %14d\n",
			name, va.Count, vb.Count, int64(vb.Count)-int64(va.Count),
			va.CostTotal, vb.CostTotal)
	}
}
