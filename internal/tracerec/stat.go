package tracerec

import (
	"fmt"
	"io"
	"strings"

	"mmutricks/internal/hwmon"
	"mmutricks/internal/telemetry"
)

// This file implements the mmustat analyses: renderers over the
// telemetry half of a recording (phase totals, interval samples,
// attribution). Like every analysis in the package, output is a pure
// function of the recording bytes, so anything recorded at -j N
// renders identically at any parallelism.

// HasTelemetry reports whether every section of the recording carries
// a telemetry capture.
func (r *Recording) HasTelemetry() bool {
	for _, s := range r.Sections {
		if s.Telemetry == nil {
			return false
		}
	}
	return len(r.Sections) > 0
}

// counterIndex finds a counter's index in a recording's name vector
// (-1 when the recording predates the counter).
func counterIndex(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

// counterAt reads one named counter out of a sample's value array.
func counterAt(td *TelemetryData, s SampleData, name string) uint64 {
	if i := counterIndex(td.CounterNames, name); i >= 0 && i < len(s.Counters) {
		return s.Counters[i]
	}
	return 0
}

// endCounter reads one named counter out of a section's end-of-window
// delta (the hwmon.Counters struct serialized with the section).
func endCounter(s *Section, name string) uint64 {
	if i := counterIndex(hwmon.CounterNames(), name); i >= 0 {
		return s.Counters.Values()[i]
	}
	return 0
}

// StatPhases writes the phase-profile view of a recording: per-section
// phase tables with cycle shares and entry counts, derived rates
// against the section's counter delta, per-task/per-mm attribution,
// and event-class cost percentiles from the trace histograms.
func StatPhases(w io.Writer, r *Recording) {
	fmt.Fprintf(w, "mmustat phases: workload=%s cpu=%s config=%s\n",
		r.Meta.Workload, r.Meta.CPU, r.Meta.Config)
	for si := range r.Sections {
		s := &r.Sections[si]
		td := s.Telemetry
		if td == nil {
			fmt.Fprintf(w, "\n== section %s: no telemetry (recorded without mmustat) ==\n", s.Name)
			continue
		}
		total := sumU64(td.PhaseCycles)
		fmt.Fprintf(w, "\n== section %s: %d cycles attributed, %d samples (%d dropped) ==\n",
			s.Name, total, len(td.Samples), td.Dropped)

		fmt.Fprintf(w, "%-14s %14s %7s %10s\n", "phase", "cycles", "%", "enters")
		for i, name := range td.PhaseNames {
			fmt.Fprintf(w, "%-14s %14d %6.2f%% %10d\n",
				name, td.PhaseCycles[i], pctOf(td.PhaseCycles[i], total), td.PhaseEnters[i])
		}

		writeDerivedRates(w, s, td, total)
		writeAttribution(w, "per-task cycles", td.Tasks, total)
		writeAttribution(w, "per-mm cycles", td.MMs, total)
		writeHistPercentiles(w, s)
	}
}

// writeDerivedRates prints the rates the raw tables bury: event
// frequency per million cycles and mean cycles per event, phase
// cycles divided by the matching counter.
func writeDerivedRates(w io.Writer, s *Section, td *TelemetryData, total uint64) {
	if total == 0 {
		return
	}
	mcycles := float64(total) / 1e6
	faults := endCounter(s, "MinorFaults") + endCounter(s, "MajorFaults")
	misses := endCounter(s, "TLBMisses")
	ctxsw := endCounter(s, "CtxSwitches")
	fmt.Fprintf(w, "derived rates:\n")
	fmt.Fprintf(w, "  faults / Mcycle          %12.2f\n", float64(faults)/mcycles)
	fmt.Fprintf(w, "  tlb misses / Mcycle      %12.2f\n", float64(misses)/mcycles)
	if i := phaseIndex(td, "tlb-miss"); i >= 0 && misses > 0 {
		fmt.Fprintf(w, "  miss cycles / miss       %12.2f\n", float64(td.PhaseCycles[i])/float64(misses))
	}
	if i := phaseIndex(td, "flush"); i >= 0 && ctxsw > 0 {
		fmt.Fprintf(w, "  flush cycles / ctxsw     %12.2f\n", float64(td.PhaseCycles[i])/float64(ctxsw))
	}
	if i := phaseIndex(td, "syscall"); i >= 0 {
		if n := endCounter(s, "Syscalls"); n > 0 {
			fmt.Fprintf(w, "  syscall cycles / syscall %12.2f\n", float64(td.PhaseCycles[i])/float64(n))
		}
	}
}

func phaseIndex(td *TelemetryData, name string) int {
	for i, n := range td.PhaseNames {
		if n == name {
			return i
		}
	}
	return -1
}

func writeAttribution(w io.Writer, title string, rows []AttrData, total uint64) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%s: ", title)
	for i, row := range rows {
		if i > 0 {
			fmt.Fprintf(w, ", ")
		}
		fmt.Fprintf(w, "%d: %d (%.1f%%)", row.ID, row.Cycles, pctOf(row.Cycles, total))
	}
	fmt.Fprintln(w)
}

// writeHistPercentiles prints p50/p99/p999 upper bounds for each
// nonzero event-class cost histogram — the log2 buckets condensed to
// the three numbers a regression argument needs.
func writeHistPercentiles(w io.Writer, s *Section) {
	names := s.sortedHistNames()
	if len(names) == 0 {
		return
	}
	fmt.Fprintf(w, "event-class cost percentiles (cycles, log2-bucket upper bounds):\n")
	for _, name := range names {
		h := s.hist(name)
		ps := telemetry.Percentiles(h.Buckets[:], 0.50, 0.99, 0.999)
		fmt.Fprintf(w, "  %-20s p50<=%-8d p99<=%-8d p999<=%d\n", name, ps[0], ps[1], ps[2])
	}
}

// StatTimeline writes the interval timeline of a recording: one line
// per sample with the interval's dominant phase, its share, and the
// fault pressure, differenced from the previous sample.
func StatTimeline(w io.Writer, r *Recording) {
	fmt.Fprintf(w, "mmustat timeline: workload=%s cpu=%s config=%s\n",
		r.Meta.Workload, r.Meta.CPU, r.Meta.Config)
	for si := range r.Sections {
		s := &r.Sections[si]
		td := s.Telemetry
		if td == nil {
			fmt.Fprintf(w, "\n== section %s: no telemetry ==\n", s.Name)
			continue
		}
		fmt.Fprintf(w, "\n== section %s: interval %d cycles, %d samples (%d dropped) ==\n",
			s.Name, td.Interval, len(td.Samples), td.Dropped)
		if len(td.Samples) == 0 {
			continue
		}
		fmt.Fprintf(w, "%4s %14s %5s %4s  %-14s %7s %7s  %s\n",
			"#", "cycle", "task", "mm", "dominant", "share", "faults", "")
		prevPhases := make([]uint64, len(td.PhaseNames))
		var prevFaults uint64
		for i, smp := range td.Samples {
			var dTotal, dMax uint64
			dom := 0
			for p := range td.PhaseNames {
				var c uint64
				if p < len(smp.Phases) {
					c = smp.Phases[p]
				}
				d := c - prevPhases[p]
				dTotal += d
				if d > dMax {
					dMax, dom = d, p
				}
				prevPhases[p] = c
			}
			faults := counterAt(td, smp, "MinorFaults") + counterAt(td, smp, "MajorFaults")
			dFaults := faults - prevFaults
			prevFaults = faults
			share := pctOf(dMax, dTotal)
			fmt.Fprintf(w, "%4d %14d %5d %4d  %-14s %6.1f%% %7d  %s\n",
				i, smp.Cycle, smp.Task, smp.MM, td.PhaseNames[dom], share, dFaults,
				bar(share, 24))
		}
	}
}

// StatDiff compares two telemetry recordings phase by phase: aggregate
// cycles and entry counts across all sections, with the change.
func StatDiff(w io.Writer, a, b *Recording) {
	fmt.Fprintf(w, "mmustat diff: A=%s/%s/%s  B=%s/%s/%s\n",
		a.Meta.Workload, a.Meta.CPU, a.Meta.Config,
		b.Meta.Workload, b.Meta.CPU, b.Meta.Config)
	names, ca, ea := aggPhases(a)
	namesB, cb, eb := aggPhases(b)
	if len(namesB) > len(names) {
		names = namesB
	}
	fmt.Fprintf(w, "%-14s %14s %14s %8s   %10s %10s\n",
		"phase", "cycles A", "cycles B", "Δ%", "enters A", "enters B")
	for i, name := range names {
		va, vb := at(ca, i), at(cb, i)
		fmt.Fprintf(w, "%-14s %14d %14d %8s   %10d %10d\n",
			name, va, vb, deltaPct(va, vb), at(ea, i), at(eb, i))
	}
}

// aggPhases sums phase cycles and enters across a recording's
// telemetry-bearing sections.
func aggPhases(r *Recording) (names []string, cycles, enters []uint64) {
	for si := range r.Sections {
		td := r.Sections[si].Telemetry
		if td == nil {
			continue
		}
		if len(td.PhaseNames) > len(names) {
			names = td.PhaseNames
			cycles = append(cycles, make([]uint64, len(names)-len(cycles))...)
			enters = append(enters, make([]uint64, len(names)-len(enters))...)
		}
		for i := range td.PhaseCycles {
			cycles[i] += td.PhaseCycles[i]
			enters[i] += td.PhaseEnters[i]
		}
	}
	return names, cycles, enters
}

func at(v []uint64, i int) uint64 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

func deltaPct(a, b uint64) string {
	if a == 0 {
		if b == 0 {
			return "0%"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(b)-float64(a))/float64(a))
}

func pctOf(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

func sumU64(v []uint64) uint64 {
	var t uint64
	for _, x := range v {
		t += x
	}
	return t
}

func bar(pct float64, width int) string {
	n := int(pct * float64(width) / 100)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
