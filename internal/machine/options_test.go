package machine

import (
	"testing"

	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
)

func TestOptionsHTABGroups(t *testing.T) {
	m := NewWithOptions(clock.PPC604At185(), Options{HTABGroups: 512})
	if m.MMU.HTAB.Groups() != 512 {
		t.Fatalf("groups = %d", m.MMU.HTAB.Groups())
	}
	// The reserved layout shrinks with the table.
	if m.Mem.Layout().HTABBytes != 512*8*8 {
		t.Fatalf("HTAB bytes = %d", m.Mem.Layout().HTABBytes)
	}
	// Default still the architected table.
	if New(clock.PPC604At185()).MMU.HTAB.Groups() != 2048 {
		t.Fatal("default group count changed")
	}
}

func TestSplitTLBOption(t *testing.T) {
	model := clock.PPC603At180()
	model.SplitTLB = true
	m := New(model)
	if m.MMU.ITLB == m.MMU.TLB {
		t.Fatal("split TLB not split")
	}
	if m.MMU.ITLB.Entries()+m.MMU.TLB.Entries() != 128 {
		t.Fatal("split halves don't sum to the part's capacity")
	}
	// Reset must clear both.
	m.MMU.SetSegment(0, 1)
	m.MMU.ITLB.Insert(1, 1, false, false)
	m.MMU.TLB.Insert(2, 2, false, false)
	m.Reset()
	if m.MMU.ITLB.Valid()+m.MMU.TLB.Valid() != 0 {
		t.Fatal("Reset left split TLB entries")
	}
}

func TestCacheLockCosts(t *testing.T) {
	m := New(clock.PPC604At185())
	lat := clock.Cycles(m.Model.MemLatency)
	m.SetCacheLock(true)
	c0 := m.Led.Now()
	m.MemAccess(0x100000, cache.ClassIdle, false, false) // miss, locked
	if m.Led.Now()-c0 != lat {
		t.Fatalf("locked miss cost = %d, want %d", m.Led.Now()-c0, lat)
	}
	if m.DCache.Contains(0x100000) {
		t.Fatal("locked miss allocated a line")
	}
	m.SetCacheLock(false)
	m.MemAccess(0x100000, cache.ClassUser, false, false) // normal fill
	m.SetCacheLock(true)
	c0 = m.Led.Now()
	m.MemAccess(0x100000, cache.ClassUser, false, false) // locked hit
	if m.Led.Now()-c0 != 1 {
		t.Fatalf("locked hit cost = %d, want 1", m.Led.Now()-c0)
	}
}

func TestPrefetchCost(t *testing.T) {
	m := New(clock.PPC604At185())
	c0 := m.Led.Now()
	m.Prefetch(0x4000, cache.ClassKernelData)
	if m.Led.Now()-c0 != 2 {
		t.Fatalf("prefetch cost = %d, want 2 (issue only)", m.Led.Now()-c0)
	}
	if !m.DCache.Contains(0x4000) {
		t.Fatal("prefetch did not fill the line")
	}
	// The subsequent access hits at full speed.
	c0 = m.Led.Now()
	m.MemAccess(0x4000, cache.ClassKernelData, false, false)
	if m.Led.Now()-c0 != 1 {
		t.Fatalf("post-prefetch access cost = %d, want 1", m.Led.Now()-c0)
	}
}

func TestCastoutCost(t *testing.T) {
	m := New(clock.PPC604At185())
	lat := clock.Cycles(m.Model.MemLatency)
	stride := arch.PhysAddr(m.DCache.Sets() * m.DCache.LineSize())
	// Dirty a full set.
	for i := 0; i < m.DCache.Ways(); i++ {
		m.MemAccess(0x100000+arch.PhysAddr(i)*stride, cache.ClassUser, false, true)
	}
	c0 := m.Led.Now()
	m.MemAccess(0x100000+arch.PhysAddr(m.DCache.Ways())*stride, cache.ClassUser, false, false)
	if got := m.Led.Now() - c0; got != 1+2*lat {
		t.Fatalf("miss-with-castout cost = %d, want %d", got, 1+2*lat)
	}
}

func TestL2Cache(t *testing.T) {
	model := clock.PPC604At185()
	model.L2Size = 512 * 1024
	model.L2Latency = 9
	m := New(model)
	if m.L2 == nil {
		t.Fatal("L2 not built")
	}
	lat := clock.Cycles(model.MemLatency)
	l2 := clock.Cycles(model.L2Latency)

	// First touch: L1 miss, L2 miss -> 1 + L2 + mem.
	c0 := m.Led.Now()
	m.MemAccess(0x300000, cache.ClassUser, false, false)
	if got := m.Led.Now() - c0; got != 1+l2+lat {
		t.Fatalf("cold miss = %d, want %d", got, 1+l2+lat)
	}
	// Evict from L1 by storming its sets; the line stays in L2.
	stride := arch.PhysAddr(m.DCache.Sets() * m.DCache.LineSize())
	for i := 1; i <= m.DCache.Ways(); i++ {
		m.MemAccess(0x300000+arch.PhysAddr(i)*stride, cache.ClassUser, false, false)
	}
	c0 = m.Led.Now()
	m.MemAccess(0x300000, cache.ClassUser, false, false) // L1 miss, L2 hit
	if got := m.Led.Now() - c0; got != 1+l2 {
		t.Fatalf("L2 hit = %d, want %d", got, 1+l2)
	}
	// No-L2 machines are unaffected.
	if New(clock.PPC604At185()).L2 != nil {
		t.Fatal("default model grew an L2")
	}
}
