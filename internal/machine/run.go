package machine

// The run path: batched physical accesses. A Run is a same-translation
// streak of equally-strided references; the kernel resolves the
// translation once and the machine simulates the cache over the whole
// streak in a tight loop. Everything observable — hwmon counters,
// cache statistics, cycle charges, and mmtrace emits — is
// reference-for-reference identical to the equivalent scalar loop:
//
//   - cache state is advanced by cache.AccessRun with exact scalar
//     LRU/dirty/attribution semantics;
//   - hit charges between misses coalesce into one ledger charge; the
//     ledger's cycle count is exact (not sampled), so the cumulative
//     cycles at every emit point — the only places time is read —
//     are unchanged;
//   - the L2 is consulted per miss, in reference order, exactly as the
//     scalar path would;
//   - trace events are emitted per miss at the same cumulative-cycle
//     instants with the same payloads;
//   - an attached fault injector forces the scalar loop (injection
//     polls are per-reference by contract).

import (
	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/mmtrace"
	"mmutricks/internal/telemetry"
)

// runMissCap bounds the per-chunk miss scratch. Runs are chunked so
// the recorded misses always fit: one miss per distinct line for the
// allocating cache, one per reference for the locked cache.
const runMissCap = 256

// runChunk returns how many references of a run can be simulated in
// one cache.AccessRun call without overflowing the miss scratch.
//
//mmutricks:noalloc
func (m *Machine) runChunk(n, stride int, locked bool) int {
	max := runMissCap
	if !locked {
		// At most one miss per distinct line: (chunk-1)*stride spans
		// at most (runMissCap-1) full lines.
		max = (runMissCap-1)*m.Model.LineSize/stride + 1
	}
	if n < max {
		return n
	}
	return max
}

// MemAccessRun performs n equally-strided data accesses (pa,
// pa+stride, ...) on behalf of one traffic class — the batched
// equivalent of n MemAccess calls.
//
//mmutricks:noalloc
func (m *Machine) MemAccessRun(pa arch.PhysAddr, n, stride int, class cache.Class, inhibited, write bool) {
	if n <= 0 {
		return
	}
	if m.Inj != nil {
		// Injection polls are per-reference; keep the scalar loop.
		for i := 0; i < n; i++ {
			m.MemAccess(pa+arch.PhysAddr(i*stride), class, inhibited, write)
		}
		return
	}
	if inhibited {
		// No cache state involved: every reference pays the memory
		// latency and emits one fill event.
		m.DCache.AccessInhibitedN(class, n)
		lat := clock.Cycles(m.Model.MemLatency)
		if !m.Trc.Enabled() {
			m.Led.Charge(lat * clock.Cycles(n))
			return
		}
		for i := 0; i < n; i++ {
			m.Led.Charge(lat)
			m.Trc.Emit(mmtrace.KindCacheFill, 0, arch.EffectiveAddr(pa+arch.PhysAddr(i*stride)), lat, uint32(class))
		}
		return
	}
	if !m.cacheLocked && !m.Trc.Enabled() && m.L2 == nil {
		// Tracer off, no L2: fill costs are closed-form, so the run
		// needs neither per-miss records nor chunking.
		nmiss, ncast := m.DCache.AccessRunCount(pa, n, stride, class, write)
		m.Led.Charge(clock.Cycles(n) + clock.Cycles((nmiss+ncast)*m.Model.MemLatency))
		return
	}
	for n > 0 {
		chunk := m.runChunk(n, stride, m.cacheLocked)
		if m.cacheLocked {
			m.lockedRun(pa, chunk, stride, class, write)
		} else {
			m.cachedRun(pa, chunk, stride, class, write)
		}
		pa += arch.PhysAddr(chunk * stride)
		n -= chunk
	}
}

// cachedRun simulates one chunk through the allocating D-cache.
//
//mmutricks:noalloc
func (m *Machine) cachedRun(pa arch.PhysAddr, n, stride int, class cache.Class, write bool) {
	nmiss := m.DCache.AccessRun(pa, n, stride, class, write, m.missBuf[:])
	if !m.Trc.Enabled() {
		// No emit points inside the chunk, so the per-reference charges
		// coalesce; the L2 is still consulted per miss in order.
		if m.L2 == nil {
			// Without an L2 the fill cost is closed-form: MemLatency
			// per miss, doubled when the victim writes back.
			ncast := 0
			for i := 0; i < nmiss; i++ {
				if m.missBuf[i].Castout {
					ncast++
				}
			}
			m.Led.Charge(clock.Cycles(n) + clock.Cycles((nmiss+ncast)*m.Model.MemLatency))
			return
		}
		total := clock.Cycles(n)
		for i := 0; i < nmiss; i++ {
			mr := m.missBuf[i]
			total += clock.Cycles(m.fillCost(pa+arch.PhysAddr(int(mr.Index)*stride), class, mr.Castout))
		}
		m.Led.Charge(total)
		return
	}
	done := 0
	for i := 0; i < nmiss; i++ {
		mr := m.missBuf[i]
		idx := int(mr.Index)
		if hits := idx - done; hits > 0 {
			m.Led.Charge(clock.Cycles(hits))
		}
		a := pa + arch.PhysAddr(idx*stride)
		fill := clock.Cycles(1 + m.fillCost(a, class, mr.Castout))
		m.Led.Charge(fill)
		m.Trc.Emit(mmtrace.KindCacheFill, 0, arch.EffectiveAddr(a), fill, uint32(class))
		done = idx + 1
	}
	if hits := n - done; hits > 0 {
		m.Led.Charge(clock.Cycles(hits))
	}
}

// lockedRun simulates one chunk under the cache lock: hits behave
// normally, misses read memory without allocating (and without
// touching the L2, matching the scalar locked path).
//
//mmutricks:noalloc
func (m *Machine) lockedRun(pa arch.PhysAddr, n, stride int, class cache.Class, write bool) {
	nmiss := m.DCache.AccessNoAllocRun(pa, n, stride, class, write, m.missBuf[:])
	lat := clock.Cycles(m.Model.MemLatency)
	if !m.Trc.Enabled() {
		m.Led.Charge(clock.Cycles(n-nmiss) + lat*clock.Cycles(nmiss))
		return
	}
	done := 0
	for i := 0; i < nmiss; i++ {
		idx := int(m.missBuf[i].Index)
		if hits := idx - done; hits > 0 {
			m.Led.Charge(clock.Cycles(hits))
		}
		m.Led.Charge(lat)
		m.Trc.Emit(mmtrace.KindCacheFill, 0, arch.EffectiveAddr(pa+arch.PhysAddr(idx*stride)), lat, uint32(class))
		done = idx + 1
	}
	if hits := n - done; hits > 0 {
		m.Led.Charge(clock.Cycles(hits))
	}
}

// FetchRun performs n equally-strided instruction-side accesses — the
// batched equivalent of n Fetch calls (hits cost nothing; fills charge
// the fill cost without the 1-cycle access, and castouts are absorbed
// as on the scalar fetch path).
//
//mmutricks:noalloc
func (m *Machine) FetchRun(pa arch.PhysAddr, n, stride int, class cache.Class, inhibited bool) {
	if n <= 0 {
		return
	}
	if inhibited {
		m.ICache.AccessInhibitedN(class, n)
		lat := clock.Cycles(m.Model.MemLatency)
		if !m.Trc.Enabled() {
			m.Led.Charge(lat * clock.Cycles(n))
			m.Ph.Attribute(telemetry.PhaseFetch, lat*clock.Cycles(n))
			return
		}
		for i := 0; i < n; i++ {
			m.Led.Charge(lat)
			m.Ph.Attribute(telemetry.PhaseFetch, lat)
			m.Trc.Emit(mmtrace.KindCacheFill, 0, arch.EffectiveAddr(pa+arch.PhysAddr(i*stride)), lat, uint32(class))
		}
		return
	}
	if !m.Trc.Enabled() && m.L2 == nil {
		// Fetch misses never cast out a charge (absorbed as on the
		// scalar fetch path), so only the miss count matters.
		nmiss, _ := m.ICache.AccessRunCount(pa, n, stride, class, false)
		if nmiss > 0 {
			fills := clock.Cycles(nmiss * m.Model.MemLatency)
			m.Led.Charge(fills)
			m.Ph.Attribute(telemetry.PhaseFetch, fills)
		}
		return
	}
	for n > 0 {
		chunk := m.runChunk(n, stride, false)
		nmiss := m.ICache.AccessRun(pa, chunk, stride, class, false, m.missBuf[:])
		if !m.Trc.Enabled() {
			var total clock.Cycles
			if m.L2 == nil {
				// Fetch misses never cast out, so every fill costs
				// exactly MemLatency without an L2.
				total = clock.Cycles(nmiss * m.Model.MemLatency)
			} else {
				for i := 0; i < nmiss; i++ {
					total += clock.Cycles(m.fillCost(pa+arch.PhysAddr(int(m.missBuf[i].Index)*stride), class, false))
				}
			}
			if total > 0 {
				m.Led.Charge(total)
				m.Ph.Attribute(telemetry.PhaseFetch, total)
			}
		} else {
			for i := 0; i < nmiss; i++ {
				a := pa + arch.PhysAddr(int(m.missBuf[i].Index)*stride)
				fill := clock.Cycles(m.fillCost(a, class, false))
				m.Led.Charge(fill)
				m.Ph.Attribute(telemetry.PhaseFetch, fill)
				m.Trc.Emit(mmtrace.KindCacheFill, 0, arch.EffectiveAddr(a), fill, uint32(class))
			}
		}
		pa += arch.PhysAddr(chunk * stride)
		n -= chunk
	}
}

// MemPairRun performs n interleaved pairs of data accesses — the copy
// loop's read-a / write-b pattern — with one cache step per reference
// and hit charges coalesced between misses. The a and b streams may
// conflict in the cache, so the interleaving is simulated faithfully.
//
//mmutricks:noalloc
func (m *Machine) MemPairRun(aPA, bPA arch.PhysAddr, n, stride int, aClass, bClass cache.Class, aWrite, bWrite bool) {
	if m.Inj != nil || m.cacheLocked {
		for i := 0; i < n; i++ {
			m.MemAccess(aPA+arch.PhysAddr(i*stride), aClass, false, aWrite)
			m.MemAccess(bPA+arch.PhysAddr(i*stride), bClass, false, bWrite)
		}
		return
	}
	if !m.Trc.Enabled() && m.L2 == nil {
		// No emit points and closed-form fill costs: step the cache per
		// reference (the streams may conflict) but coalesce the whole
		// pair run into one charge.
		nmc := 0
		for i := 0; i < n; i++ {
			if hit, co := m.DCache.Access(aPA+arch.PhysAddr(i*stride), aClass, aWrite); !hit {
				nmc++
				if co {
					nmc++
				}
			}
			if hit, co := m.DCache.Access(bPA+arch.PhysAddr(i*stride), bClass, bWrite); !hit {
				nmc++
				if co {
					nmc++
				}
			}
		}
		m.Led.Charge(clock.Cycles(2*n) + clock.Cycles(nmc*m.Model.MemLatency))
		return
	}
	var pend clock.Cycles
	for i := 0; i < n; i++ {
		pend = m.memStep(aPA+arch.PhysAddr(i*stride), aClass, aWrite, pend)
		pend = m.memStep(bPA+arch.PhysAddr(i*stride), bClass, bWrite, pend)
	}
	if pend > 0 {
		m.Led.Charge(pend)
	}
}

// memStep is one cached data reference with the hit charge deferred
// into pend; a miss flushes pend, then charges and emits at the exact
// scalar point.
//
//mmutricks:noalloc
func (m *Machine) memStep(pa arch.PhysAddr, class cache.Class, write bool, pend clock.Cycles) clock.Cycles {
	hit, castout := m.DCache.Access(pa, class, write)
	if hit {
		return pend + 1
	}
	if pend > 0 {
		m.Led.Charge(pend)
	}
	fill := clock.Cycles(1 + m.fillCost(pa, class, castout))
	m.Led.Charge(fill)
	m.Trc.Emit(mmtrace.KindCacheFill, 0, arch.EffectiveAddr(pa), fill, uint32(class))
	return 0
}

// ZeroLineRun executes n consecutive dcbz line-establishes. The scalar
// path emits no trace events, so the per-line charges coalesce into
// one.
//
//mmutricks:noalloc
func (m *Machine) ZeroLineRun(pa arch.PhysAddr, nlines int, class cache.Class) {
	castouts := m.DCache.ZeroLineRun(pa, nlines, class)
	m.Led.Charge(clock.Cycles(nlines + castouts*m.Model.MemLatency))
}
