// Package machine assembles one simulated PowerPC computer: a CPU model,
// split L1 instruction/data caches, 32 MB of physical memory holding the
// kernel image and the hashed page table, the MMU, a cycle ledger, and
// the performance-monitor counters. It implements the memory bus the MMU
// charges its table walks through, so every hash-table and page-table
// access has real cache behaviour.
package machine

import (
	"mmutricks/internal/arch"
	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
	"mmutricks/internal/faultinject"
	"mmutricks/internal/hwmon"
	"mmutricks/internal/mmtrace"
	"mmutricks/internal/phys"
	"mmutricks/internal/ppc"
	"mmutricks/internal/telemetry"
)

// Machine is one complete simulated computer.
type Machine struct {
	Model  clock.CPUModel
	Led    *clock.Ledger
	Mon    *hwmon.Counters
	ICache *cache.Cache
	DCache *cache.Cache
	// L2 is the optional unified board cache (nil when the model has
	// none).
	L2  *cache.Cache
	Mem *phys.Memory
	MMU *ppc.MMU
	// Trc is the machine's event tracer. Always non-nil, constructed
	// disabled; enable it (and snapshot Mon) to record a window.
	Trc *mmtrace.Tracer
	// Ph is the machine's phase ledger (cycle attribution + interval
	// sampling). Always non-nil, constructed disabled; the kernel's
	// EnableProfiling and the recording drivers enable it.
	Ph *telemetry.Phases

	// Inj is the attached fault injector (nil = no injection; the
	// injection points reduce to one never-taken branch).
	Inj *faultinject.Injector

	// cacheLocked makes data misses bypass allocation (§10.1's
	// locked-cache idle task). Toggled by the kernel around idle work.
	cacheLocked bool

	// missBuf is the preallocated scratch the run paths hand to
	// cache.AccessRun, so batch simulation stays allocation-free.
	missBuf [runMissCap]cache.MissRef
}

// Options tunes non-default machine construction.
type Options struct {
	// HTABGroups overrides the hash-table size (0 = the architected
	// default for 32 MB, 2048 groups / 16384 PTEs).
	HTABGroups int
	// TraceCapacity overrides the tracer's ring size (0 =
	// mmtrace.DefaultCapacity).
	TraceCapacity int
	// Injector attaches a fault injector to the machine and its MMU
	// (nil = no injection).
	Injector *faultinject.Injector
}

// New builds a machine for the given CPU model with the default 32 MB
// of RAM and a 2 MB kernel image.
func New(model clock.CPUModel) *Machine {
	return NewWithOptions(model, Options{})
}

// NewWithOptions builds a machine with overrides.
func NewWithOptions(model clock.CPUModel, opts Options) *Machine {
	groups := opts.HTABGroups
	if groups == 0 {
		groups = arch.DefaultHTABGroups
	}
	m := &Machine{
		Model:  model,
		Led:    clock.NewLedger(model.MHz),
		Mon:    &hwmon.Counters{},
		ICache: cache.New("I", model.L1Size, model.L1Ways, model.LineSize),
		DCache: cache.New("D", model.L1Size, model.L1Ways, model.LineSize),
		Mem:    phys.NewWithHTAB(phys.DefaultRAM, 2<<20, groups),
	}
	if model.L2Size > 0 {
		m.L2 = cache.New("L2", model.L2Size, 1, model.LineSize)
	}
	m.Trc = mmtrace.NewTracer(m.Led, opts.TraceCapacity)
	m.Ph = telemetry.New(m.Led, m.Mon)
	htab := ppc.NewHTAB(groups, m.Mem.Layout().HTABBase)
	m.MMU = ppc.NewMMU(model, htab, m.Led, m, m.Mon, m.Trc)
	m.MMU.SetPhases(m.Ph)
	if opts.Injector != nil {
		m.Inj = opts.Injector
		m.MMU.SetInjector(opts.Injector)
	}
	return m
}

// MemAccess implements ppc.Bus: one physical data access on behalf of a
// traffic class, charged through the D-cache (table walks are data
// traffic). Inhibited accesses bypass the cache and pay the full memory
// latency; misses that evict a dirty line pay the castout writeback on
// top of the fill.
//
//mmutricks:noalloc
func (m *Machine) MemAccess(pa arch.PhysAddr, class cache.Class, inhibited, write bool) {
	if m.Inj != nil {
		m.injectMem(pa)
	}
	if inhibited {
		m.DCache.AccessInhibited(class)
		m.Led.Charge(clock.Cycles(m.Model.MemLatency))
		m.Trc.Emit(mmtrace.KindCacheFill, 0, arch.EffectiveAddr(pa), clock.Cycles(m.Model.MemLatency), uint32(class))
		return
	}
	if m.cacheLocked {
		if m.DCache.AccessNoAlloc(pa, class, write) {
			m.Led.Charge(1)
		} else {
			m.Led.Charge(clock.Cycles(m.Model.MemLatency))
			m.Trc.Emit(mmtrace.KindCacheFill, 0, arch.EffectiveAddr(pa), clock.Cycles(m.Model.MemLatency), uint32(class))
		}
		return
	}
	hit, castout := m.DCache.Access(pa, class, write)
	if hit {
		m.Led.Charge(1)
		return
	}
	fill := clock.Cycles(1 + m.fillCost(pa, class, castout))
	m.Led.Charge(fill)
	m.Trc.Emit(mmtrace.KindCacheFill, 0, arch.EffectiveAddr(pa), fill, uint32(class))
}

// fillCost returns the cycles to service an L1 miss: through the L2
// when present, straight to memory otherwise. Dirty castouts add a
// writeback (absorbed by the L2 when there is one).
//
//mmutricks:noalloc
func (m *Machine) fillCost(pa arch.PhysAddr, class cache.Class, castout bool) int {
	if m.L2 == nil {
		c := m.Model.MemLatency
		if castout {
			c += m.Model.MemLatency
		}
		return c
	}
	l2hit, _ := m.L2.Access(pa, class, false)
	if l2hit {
		return m.Model.L2Latency
	}
	c := m.Model.L2Latency + m.Model.MemLatency
	if castout {
		c += m.Model.L2Latency // the victim lands in the L2
	}
	return c
}

// injectMem is the SiteMemAccess injection point: cache-line parity
// faults and spurious machine-check delivery.
//
//mmutricks:noalloc
func (m *Machine) injectMem(pa arch.PhysAddr) {
	n := m.Inj.Fire(faultinject.SiteMemAccess)
	for i := 0; i < n; i++ {
		kind, ok := m.Inj.PickKind(faultinject.SiteMemAccess)
		if !ok {
			return
		}
		switch kind {
		case faultinject.CacheFlip:
			if m.Inj.QueueFull() {
				m.Inj.NoteSkipped(kind)
				continue
			}
			victim, ok := m.DCache.CorruptCleanLine(m.Inj.Rand(), pa)
			if !ok {
				m.Inj.NoteSkipped(kind)
				continue
			}
			m.Inj.Push(faultinject.Pending{Cause: faultinject.CauseCacheParity, Addr: victim})
			m.Inj.NoteApplied(kind)
		case faultinject.SpuriousMC:
			if m.Inj.QueueFull() {
				m.Inj.NoteSkipped(kind)
				continue
			}
			m.Inj.Push(faultinject.Pending{Cause: faultinject.CauseSpurious, Addr: pa})
			m.Inj.NoteApplied(kind)
		default:
			m.Inj.NoteSkipped(kind)
		}
	}
}

// SetCacheLock engages or releases the data-cache lock (§10.1). While
// locked, misses read straight from memory without allocating.
func (m *Machine) SetCacheLock(locked bool) { m.cacheLocked = locked }

// CacheLocked reports whether the data-cache lock is engaged.
func (m *Machine) CacheLocked() bool { return m.cacheLocked }

// Prefetch issues a dcbt-style data prefetch: the line is filled with
// normal eviction attribution but only the issue cost is charged — the
// fill latency is assumed overlapped with useful work (§10.2).
func (m *Machine) Prefetch(pa arch.PhysAddr, class cache.Class) {
	m.DCache.Prefetch(pa, class)
	m.Led.Charge(prefetchIssueCycles)
}

// prefetchIssueCycles is the cost of issuing one dcbt.
const prefetchIssueCycles = 2

// ZeroLine executes a dcbz: the line is established zeroed and dirty
// with no memory read — one cycle, plus a castout if a dirty victim had
// to leave.
func (m *Machine) ZeroLine(pa arch.PhysAddr, class cache.Class) {
	if m.DCache.ZeroLine(pa, class) {
		m.Led.Charge(clock.Cycles(1 + m.Model.MemLatency))
		return
	}
	m.Led.Charge(1)
}

// Fetch performs one physical instruction-side access (one cache line's
// worth of instructions) through the I-cache.
//
//mmutricks:noalloc
func (m *Machine) Fetch(pa arch.PhysAddr, class cache.Class, inhibited bool) {
	if inhibited {
		m.ICache.AccessInhibited(class)
		m.Led.Charge(clock.Cycles(m.Model.MemLatency))
		m.Ph.Attribute(telemetry.PhaseFetch, clock.Cycles(m.Model.MemLatency))
		m.Trc.Emit(mmtrace.KindCacheFill, 0, arch.EffectiveAddr(pa), clock.Cycles(m.Model.MemLatency), uint32(class))
		return
	}
	if hit, _ := m.ICache.Access(pa, class, false); hit {
		// Fetch hits are covered by the per-instruction execution
		// charge; no extra cycles.
		return
	}
	fill := clock.Cycles(m.fillCost(pa, class, false))
	m.Led.Charge(fill)
	m.Ph.Attribute(telemetry.PhaseFetch, fill)
	m.Trc.Emit(mmtrace.KindCacheFill, 0, arch.EffectiveAddr(pa), fill, uint32(class))
}

// LineSize returns the cache line size for iteration helpers.
func (m *Machine) LineSize() int { return m.Model.LineSize }

// Reset clears caches, TLB and counters but keeps memory contents and
// the hash table — a warm reboot for back-to-back experiments.
func (m *Machine) Reset() {
	m.ICache.InvalidateAll()
	m.DCache.InvalidateAll()
	if m.L2 != nil {
		m.L2.InvalidateAll()
		m.L2.ResetStats()
	}
	m.ICache.ResetStats()
	m.DCache.ResetStats()
	m.MMU.InvalidateTLBs()
	*m.Mon = hwmon.Counters{}
	m.Trc.Reset()
	m.Ph.Restart()
}
