package machine

import (
	"testing"

	"mmutricks/internal/cache"
	"mmutricks/internal/clock"
)

func TestNewWiresEverything(t *testing.T) {
	m := New(clock.PPC604At185())
	if m.MMU == nil || m.MMU.HTAB == nil || m.MMU.TLB == nil {
		t.Fatal("MMU not wired")
	}
	if m.MMU.TLB.Entries() != 256 {
		t.Fatalf("604 TLB entries = %d", m.MMU.TLB.Entries())
	}
	if m.ICache.LineSize() != 32 || m.DCache.Sets() == 0 {
		t.Fatal("caches not built")
	}
	// The hash table must live above the kernel image.
	if m.Mem.Layout().HTABBase == 0 {
		t.Fatal("HTAB at physical zero would overlay the kernel")
	}
}

func TestMemAccessCosts(t *testing.T) {
	m := New(clock.PPC604At185())
	lat := clock.Cycles(m.Model.MemLatency)

	m.MemAccess(0x100000, cache.ClassKernelData, false, false) // miss
	if m.Led.Now() != 1+lat {
		t.Fatalf("miss cost = %d, want %d", m.Led.Now(), 1+lat)
	}
	c0 := m.Led.Now()
	m.MemAccess(0x100000, cache.ClassKernelData, false, false) // hit
	if m.Led.Now()-c0 != 1 {
		t.Fatalf("hit cost = %d, want 1", m.Led.Now()-c0)
	}
	c0 = m.Led.Now()
	m.MemAccess(0x200000, cache.ClassIdle, true, false) // inhibited
	if m.Led.Now()-c0 != lat {
		t.Fatalf("inhibited cost = %d, want %d", m.Led.Now()-c0, lat)
	}
	if m.DCache.Contains(0x200000) {
		t.Fatal("inhibited access filled the cache")
	}
}

func TestFetchCosts(t *testing.T) {
	m := New(clock.PPC603At180())
	lat := clock.Cycles(m.Model.MemLatency)
	m.Fetch(0x1000, cache.ClassKernelText, false) // miss
	if m.Led.Now() != lat {
		t.Fatalf("fetch miss = %d, want %d", m.Led.Now(), lat)
	}
	c0 := m.Led.Now()
	m.Fetch(0x1000, cache.ClassKernelText, false) // hit: free
	if m.Led.Now() != c0 {
		t.Fatal("fetch hit should be free")
	}
	// Instruction and data caches are split: a D access to the same
	// address still misses.
	if m.DCache.Contains(0x1000) {
		t.Fatal("I fetch leaked into D cache")
	}
}

func TestReset(t *testing.T) {
	m := New(clock.PPC604At185())
	m.MemAccess(0x100000, cache.ClassUser, false, false)
	m.MMU.SetSegment(0, 5)
	m.MMU.Translate(0x1000, false) // populates counters
	m.Reset()
	if m.DCache.Contains(0x100000) {
		t.Fatal("Reset left cache lines")
	}
	if m.Mon.TLBMisses != 0 && m.Mon.HashMissFaults != 0 {
		t.Fatal("Reset left counters")
	}
	if m.MMU.Segment(0) != 5 {
		t.Fatal("Reset should preserve segment registers")
	}
}
