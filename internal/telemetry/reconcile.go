package telemetry

import "mmutricks/internal/hwmon"

// ReconcileRow compares one phase's entry count against the hwmon
// counter expression that should equal it.
type ReconcileRow struct {
	// Name labels the comparison (the phase name, with the counter
	// expression when it is a sum).
	Name string
	// Enters is the phase's entry count from the ledger.
	Enters uint64
	// Counter is the hwmon.Counters expression for the same window.
	Counter uint64
	// OK reports Enters == Counter.
	OK bool
}

// Reconcile cross-checks the ledger's phase-entry counts against a
// hwmon.Counters delta covering the same window — the mmtrace.Reconcile
// treatment applied to phases. Every phase entry point in the kernel
// sits next to exactly one counter increment, so each row is an exact
// identity; a mismatch means a span and its counter have drifted apart.
//
// PhaseUser, PhaseFetch and PhaseFault carry no row: user is the stack
// floor (never "entered"), fetch transfers happen per cache fill (no
// dedicated counter — a fill may belong to data or instruction
// traffic), and fault entries deliberately exceed MinorFaults +
// MajorFaults (a protection fault that delivers a signal resolves
// without either counter).
func Reconcile(p *Phases, c *hwmon.Counters) []ReconcileRow {
	row := func(name string, ph Phase, counter uint64) ReconcileRow {
		return ReconcileRow{Name: name, Enters: p.enters[ph], Counter: counter, OK: p.enters[ph] == counter}
	}
	return []ReconcileRow{
		row("tlb-miss (sw+hashmiss+walks)", PhaseTLBMiss, c.SoftwareReloads+c.HashMissFaults+c.HardwareWalks),
		row("syscall", PhaseSyscall, c.Syscalls),
		row("flush (page+range+context)", PhaseFlush, c.FlushPage+c.FlushRange+c.FlushContext),
		row("ctx-switch (+kthread-mm)", PhaseCtxSwitch, c.CtxSwitches+c.KthreadMMSwitches),
		row("idle-reclaim", PhaseIdleReclaim, c.IdleScans),
		row("pre-zero", PhasePreZero, c.IdlePagesCleared),
		row("swap (out+in)", PhaseSwap, c.SwapOuts+c.SwapIns),
		row("mc-repair", PhaseMCRepair, c.MachineChecks),
		row("idle", PhaseIdle, c.IdleWaits),
	}
}
