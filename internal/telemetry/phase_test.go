package telemetry

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"mmutricks/internal/clock"
	"mmutricks/internal/hwmon"
)

func newEnabled(t *testing.T, opt Options) (*Phases, *clock.Ledger, *hwmon.Counters) {
	t.Helper()
	led := clock.NewLedger(185)
	mon := &hwmon.Counters{}
	p := New(led, mon)
	p.Enable(opt)
	return p, led, mon
}

func TestPhaseNamesDistinct(t *testing.T) {
	if len(AllPhases) != int(NumPhases) {
		t.Fatalf("AllPhases lists %d phases, NumPhases is %d", len(AllPhases), NumPhases)
	}
	seen := map[string]bool{}
	for i, ph := range AllPhases {
		if Phase(i) != ph {
			t.Errorf("AllPhases[%d] = %v, want the phase with value %d", i, ph, i)
		}
		name := ph.String()
		if name == "" || strings.HasPrefix(name, "phase(") {
			t.Errorf("phase %d has no name", i)
		}
		if seen[name] {
			t.Errorf("duplicate phase name %q", name)
		}
		seen[name] = true
	}
}

func TestSpanAttributionAndConservation(t *testing.T) {
	p, led, _ := newEnabled(t, Options{})
	led.Charge(10)
	done := p.Span(PhaseFlush)
	led.Charge(5)
	inner := p.Span(PhaseFault)
	led.Charge(3)
	inner()
	led.Charge(2)
	done()
	led.Charge(4)

	if err := p.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if got := p.Cycles(PhaseUser); got != 14 {
		t.Errorf("user cycles = %d, want 14", got)
	}
	if got := p.Cycles(PhaseFlush); got != 7 {
		t.Errorf("flush cycles = %d, want 7", got)
	}
	if got := p.Cycles(PhaseFault); got != 3 {
		t.Errorf("fault cycles = %d, want 3", got)
	}
	if p.Enters(PhaseFlush) != 1 || p.Enters(PhaseFault) != 1 {
		t.Errorf("enters = flush %d fault %d, want 1/1", p.Enters(PhaseFlush), p.Enters(PhaseFault))
	}
	if p.Total() != 24 {
		t.Errorf("total = %d, want 24", p.Total())
	}
}

func TestAttributeTransfersExactly(t *testing.T) {
	p, led, _ := newEnabled(t, Options{})
	led.Charge(10)
	led.Charge(7)
	p.Attribute(PhaseFetch, 7)
	if err := p.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if got := p.Cycles(PhaseUser); got != 10 {
		t.Errorf("user cycles = %d, want 10", got)
	}
	if got := p.Cycles(PhaseFetch); got != 7 {
		t.Errorf("fetch cycles = %d, want 7", got)
	}
	if p.Enters(PhaseFetch) != 1 {
		t.Errorf("fetch enters = %d, want 1", p.Enters(PhaseFetch))
	}
}

func TestAttributeUnderflowPanics(t *testing.T) {
	p, led, _ := newEnabled(t, Options{})
	led.Charge(3)
	defer func() {
		if recover() == nil {
			t.Fatal("over-transfer did not panic")
		}
	}()
	p.Attribute(PhaseFetch, 4)
}

func TestSkewTripsConservation(t *testing.T) {
	for _, ph := range AllPhases {
		for _, d := range []int64{-1, 1} {
			p, led, _ := newEnabled(t, Options{})
			led.Charge(100)
			p.Span(ph)() // make the phase plausible
			p.Skew(ph, d)
			if err := p.CheckConservation(); err == nil {
				t.Errorf("skew %+d on %v not detected", d, ph)
			}
		}
	}
}

func TestDisabledIsInert(t *testing.T) {
	led := clock.NewLedger(185)
	p := New(led, &hwmon.Counters{})
	led.Charge(10)
	p.Span(PhaseFlush)()
	p.Attribute(PhaseFetch, 5)
	p.SetTask(3, 4)
	if p.Total() != 0 {
		t.Errorf("disabled ledger attributed %d cycles", p.Total())
	}
	if err := p.CheckConservation(); err != nil {
		t.Errorf("disabled conservation: %v", err)
	}
}

func TestEnableMidRunUsesBase(t *testing.T) {
	led := clock.NewLedger(185)
	p := New(led, &hwmon.Counters{})
	led.Charge(1000)
	p.Enable(Options{})
	led.Charge(25)
	if err := p.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if p.Total() != 25 {
		t.Errorf("total = %d, want 25", p.Total())
	}
}

func TestSamplerBoundaries(t *testing.T) {
	p, led, mon := newEnabled(t, Options{SampleInterval: 100, SampleCapacity: 8})
	// Cross the first boundary with an attribution at cycle 120.
	led.Charge(120)
	mon.Syscalls = 1
	p.Sync()
	// Cross two boundaries (200, 300) before the next attribution: one
	// sample, covering both.
	led.Charge(190)
	mon.Syscalls = 2
	p.Sync()
	// No boundary crossed: no sample.
	led.Charge(10)
	p.Sync()

	s := p.Samples()
	if len(s) != 2 {
		t.Fatalf("got %d samples, want 2", len(s))
	}
	if s[0].Boundary != 100 || s[0].Cycle != 120 {
		t.Errorf("sample 0 boundary/cycle = %d/%d, want 100/120", s[0].Boundary, s[0].Cycle)
	}
	if s[0].Counters.Syscalls != 1 {
		t.Errorf("sample 0 syscalls = %d, want 1", s[0].Counters.Syscalls)
	}
	if s[1].Boundary != 200 || s[1].Cycle != 310 {
		t.Errorf("sample 1 boundary/cycle = %d/%d, want 200/310", s[1].Boundary, s[1].Cycle)
	}
	if s[1].Counters.Syscalls != 2 {
		t.Errorf("sample 1 syscalls = %d, want 2", s[1].Counters.Syscalls)
	}
	if s[1].Phases[PhaseUser] != 310 {
		t.Errorf("sample 1 user cycles = %d, want 310", s[1].Phases[PhaseUser])
	}
	if p.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", p.Dropped())
	}
	// The next boundary after 310 is 400.
	led.Charge(85)
	p.Sync() // 395: no crossing
	led.Charge(10)
	p.Sync() // 405: sample
	if s := p.Samples(); len(s) != 3 || s[2].Boundary != 400 {
		t.Fatalf("after 405: %d samples (last boundary %d), want 3 with boundary 400", len(s), s[len(s)-1].Boundary)
	}
}

func TestSampleRingKeepsFirstAndCountsDrops(t *testing.T) {
	p, led, _ := newEnabled(t, Options{SampleInterval: 10, SampleCapacity: 2})
	for i := 0; i < 5; i++ {
		led.Charge(10)
		p.Sync()
	}
	s := p.Samples()
	if len(s) != 2 {
		t.Fatalf("got %d samples, want capacity 2", len(s))
	}
	if s[0].Boundary != 10 || s[1].Boundary != 20 {
		t.Errorf("ring kept boundaries %d,%d — must keep the FIRST samples", s[0].Boundary, s[1].Boundary)
	}
	if p.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", p.Dropped())
	}
}

func TestSetTaskAttribution(t *testing.T) {
	p, led, _ := newEnabled(t, Options{})
	led.Charge(10) // task 0
	p.SetTask(7, 3)
	led.Charge(30)
	p.SetTask(8, 3)
	led.Charge(2)
	p.Sync()

	tasks := p.TaskAttribution()
	if len(tasks) != 3 {
		t.Fatalf("task rows = %d, want 3", len(tasks))
	}
	if tasks[0].ID != 0 || tasks[0].Cycles != 10 {
		t.Errorf("task 0 row = %+v", tasks[0])
	}
	if tasks[1].ID != 7 || tasks[1].Cycles != 30 {
		t.Errorf("task 7 row = %+v", tasks[1])
	}
	if tasks[2].ID != 8 || tasks[2].Cycles != 2 {
		t.Errorf("task 8 row = %+v", tasks[2])
	}
	mms := p.MMAttribution()
	if len(mms) != 2 || mms[1].ID != 3 || mms[1].Cycles != 32 {
		t.Fatalf("mm rows = %+v, want mm 3 with 32 cycles", mms)
	}
}

func TestReconcileIdentities(t *testing.T) {
	p, led, _ := newEnabled(t, Options{})
	var c hwmon.Counters
	led.Charge(1)
	p.Span(PhaseSyscall)()
	c.Syscalls++
	p.Span(PhaseFlush)()
	c.FlushPage++
	p.Span(PhaseFlush)()
	c.FlushContext++
	p.Span(PhaseCtxSwitch)()
	c.CtxSwitches++
	p.Span(PhaseCtxSwitch)()
	c.KthreadMMSwitches++
	p.Span(PhaseIdle)()
	c.IdleWaits++
	p.Span(PhaseIdleReclaim)()
	c.IdleScans++
	p.Span(PhasePreZero)()
	c.IdlePagesCleared++
	p.Span(PhaseSwap)()
	c.SwapOuts++
	p.Span(PhaseMCRepair)()
	c.MachineChecks++
	led.Charge(3)
	p.Attribute(PhaseTLBMiss, 2)
	c.HardwareWalks++

	rows := Reconcile(p, &c)
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("row %s: enters %d != counter %d", r.Name, r.Enters, r.Counter)
		}
	}
	// Drift must be visible.
	c.Syscalls++
	bad := 0
	for _, r := range Reconcile(p, &c) {
		if !r.OK {
			bad++
		}
	}
	if bad != 1 {
		t.Fatalf("drifted counter flagged %d rows, want 1", bad)
	}
}

func TestPercentiles(t *testing.T) {
	// 100 values: 50 zeros, 49 in bucket 3 (4-7), 1 in bucket 10
	// (512-1023).
	buckets := make([]uint64, 33)
	buckets[0] = 50
	buckets[3] = 49
	buckets[10] = 1
	got := Percentiles(buckets, 0.50, 0.99, 0.999)
	want := []uint64{0, 7, 1023}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("p%v = %d, want %d", []float64{50, 99, 99.9}[i], got[i], want[i])
		}
	}
	if got := Percentiles(nil, 0.5); got[0] != 0 {
		t.Errorf("empty histogram p50 = %d, want 0", got[0])
	}
	if u := Log2BucketUpper(70); u != ^uint64(0) {
		t.Errorf("bucket 70 upper = %d", u)
	}
}

func TestWriteProfileIsValidGzipWithPhaseNames(t *testing.T) {
	p, led, _ := newEnabled(t, Options{})
	led.Charge(100)
	p.Span(PhaseFlush)()

	var buf bytes.Buffer
	if err := p.WriteProfile(&buf); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cycles", "user", "instr-fetch", "flush", "mc-repair"} {
		if !bytes.Contains(raw, []byte(name)) {
			t.Errorf("profile string table missing %q", name)
		}
	}
	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := p.WriteProfile(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		// buf was consumed by the reader; re-render to compare.
		var buf3 bytes.Buffer
		_ = p.WriteProfile(&buf3)
		if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
			t.Error("profile bytes differ between renders")
		}
	}
}
